// Package asset is the public API of this reproduction of "ASSET: A System
// for Supporting Extended Transactions" (Biliris, Dar, Gehani, Jagadish,
// Ramamritham; SIGMOD 1994). It re-exports the transaction manager and its
// primitives; the extended transaction models of §3 of the paper live in
// the subpackages models (atomic, distributed, contingent, nested,
// split/join, sagas, cooperation, cursor stability) and workflow (§3.2.3).
//
// The primitives map onto the paper as follows (0/1 return codes become
// errors; see each method):
//
//	initiate(f)            m.Initiate(fn) / tx.Initiate(fn)
//	begin(t1..tn)          m.Begin(t1, ..., tn)
//	commit(t)              m.Commit(t)
//	wait(t)                m.Wait(t)
//	abort(t)               m.Abort(t)
//	self(), parent()       tx.ID(), tx.Parent()
//	delegate(ti,tj,obs)    m.Delegate(ti, tj, obs...)
//	permit(ti,tj,obs,ops)  m.Permit(ti, tj, obs, ops)
//	form_dependency        m.FormDependency(dep, ti, tj)
//
// A minimal atomic transaction (the paper's §3.1.1 translation):
//
//	m, _ := asset.Open(asset.Config{})
//	defer m.Close()
//	t, _ := m.Initiate(func(tx *asset.Tx) error {
//		oid, err := tx.Create([]byte("hello"))
//		_ = oid
//		return err
//	})
//	m.Begin(t)
//	if err := m.Commit(t); err != nil { /* aborted */ }
package asset

import (
	"context"

	"repro/internal/core"
	"repro/internal/xid"
)

// Core types, re-exported.
type (
	// Manager is the ASSET transaction manager.
	Manager = core.Manager
	// Tx is the handle passed to every transaction body.
	Tx = core.Tx
	// TxnFunc is a transaction body; returning an error (or panicking)
	// aborts the transaction.
	TxnFunc = core.TxnFunc
	// Config configures Open.
	Config = core.Config
	// Stats are cumulative manager counters.
	Stats = core.Stats
	// TxnInfo describes one transaction in (*Manager).Transactions.
	TxnInfo = core.TxnInfo
	// TxnOptions carries per-transaction resilience settings (context
	// binding, deadline override) for (*Manager).InitiateWith.
	TxnOptions = core.TxnOptions
	// RunOptions configures the Run retry engine (attempt budget, backoff,
	// per-attempt deadline, extra retryable classification).
	RunOptions = core.RunOptions

	// TID identifies a transaction; the zero value is the null tid.
	TID = xid.TID
	// OID identifies a persistent object; the zero value is the null oid.
	OID = xid.OID
	// OpSet is a set of elementary operations (lock modes / permit scope).
	OpSet = xid.OpSet
	// Status is a transaction life-cycle state.
	Status = xid.Status
	// DepType enumerates form_dependency's dependency kinds.
	DepType = xid.DepType
)

// Identifier and operation constants.
const (
	// NilTID is the null transaction identifier.
	NilTID = xid.NilTID
	// NilOID is the null object identifier.
	NilOID = xid.NilOID
	// OpRead is the read operation.
	OpRead = xid.OpRead
	// OpWrite is the update operation.
	OpWrite = xid.OpWrite
	// OpIncr is the commutative counter-increment operation (§5 extension).
	OpIncr = xid.OpIncr
	// OpDecr is the commutative counter-decrement operation (§5 extension);
	// it commutes with OpIncr and itself but conflicts with reads and
	// writes. Bounded escrow accounting charges it against the lower bound.
	OpDecr = xid.OpDecr
	// OpAll is every operation (the permit wildcard).
	OpAll = xid.OpAll
)

// Dependency types accepted by (*Manager).FormDependency.
const (
	// CD is a commit dependency: if both commit, tj cannot commit before ti
	// commits; if ti aborts, tj may still commit.
	CD = xid.DepCD
	// AD is an abort dependency: if ti aborts, tj must abort.
	AD = xid.DepAD
	// GC is a group commit dependency: both ti and tj commit or neither.
	GC = xid.DepGC
	// BD is a begin-on-commit dependency (extension): tj may not begin
	// until ti commits; ti's abort aborts tj.
	BD = xid.DepBD
	// BAD is a begin-on-abort dependency (extension): tj may begin only
	// after ti aborts; ti's commit aborts tj. It is ACTA's compensation
	// pattern expressed as a dependency.
	BAD = xid.DepBAD
	// EXC is an exclusion dependency (extension): at most one of ti and tj
	// commits.
	EXC = xid.DepEXC
)

// Transaction statuses.
const (
	// StatusInitiated is a registered transaction that has not begun.
	StatusInitiated = xid.StatusInitiated
	// StatusRunning is a transaction executing its body.
	StatusRunning = xid.StatusRunning
	// StatusCompleted is a transaction whose body finished but which has
	// not terminated (locks held, changes volatile).
	StatusCompleted = xid.StatusCompleted
	// StatusCommitting is a transaction inside the commit protocol.
	StatusCommitting = xid.StatusCommitting
	// StatusCommitted is a successfully terminated transaction.
	StatusCommitted = xid.StatusCommitted
	// StatusAborting is a transaction inside the abort protocol.
	StatusAborting = xid.StatusAborting
	// StatusAborted is a transaction terminated by abort.
	StatusAborted = xid.StatusAborted
)

// Errors, re-exported from the core package.
var (
	// ErrAborted reports that the transaction aborted.
	ErrAborted = core.ErrAborted
	// ErrAlreadyCommitted reports an abort of a committed transaction.
	ErrAlreadyCommitted = core.ErrAlreadyCommitted
	// ErrNotBegun reports a commit of a never-begun transaction.
	ErrNotBegun = core.ErrNotBegun
	// ErrAlreadyBegun reports a begin of a non-initiated transaction.
	ErrAlreadyBegun = core.ErrAlreadyBegun
	// ErrUnknownTxn reports a tid that names no live transaction.
	ErrUnknownTxn = core.ErrUnknownTxn
	// ErrTooManyTxns reports transaction-limit exhaustion at initiate.
	ErrTooManyTxns = core.ErrTooManyTxns
	// ErrTerminated reports a primitive applied to a terminated target.
	ErrTerminated = core.ErrTerminated
	// ErrNoObject reports a data operation on a missing object.
	ErrNoObject = core.ErrNoObject
	// ErrObjectExists reports CreateAt on an existing oid.
	ErrObjectExists = core.ErrObjectExists
	// ErrClosed reports use of a closed manager.
	ErrClosed = core.ErrClosed
	// ErrDeadlock reports that the transaction was a deadlock victim.
	ErrDeadlock = core.ErrDeadlock
	// ErrLockTimeout reports a lock wait that exceeded Config.LockTimeout.
	ErrLockTimeout = core.ErrLockTimeout
	// ErrEscrow reports an Add whose delta can never be admitted within
	// the counter's declared escrow bounds.
	ErrEscrow = core.ErrEscrow
	// ErrDependencyCycle reports a rejected commit-blocking dependency
	// cycle.
	ErrDependencyCycle = core.ErrDependencyCycle
	// ErrOverload reports a transaction shed by admission control
	// (Config.MaxLive).
	ErrOverload = core.ErrOverload
	// ErrTxnDeadline reports an abort by the watchdog reaper
	// (Config.TxnDeadline or a TxnOptions override).
	ErrTxnDeadline = core.ErrTxnDeadline
	// ErrRetryable tags failures a fresh attempt may not hit again; Run
	// retries errors matching errors.Is(err, ErrRetryable) and the other
	// retryable classes (see Retryable).
	ErrRetryable = core.ErrRetryable
)

// Open creates a Manager. With cfg.Dir set the database is durable (WAL +
// page-store checkpoints, recovered at open); otherwise it is in-memory.
func Open(cfg Config) (*Manager, error) { return core.Open(cfg) }

// Run executes fn as a transaction on m and automatically retries
// retryable failures — deadlock victimhood, lock timeouts, watchdog reaps,
// admission sheds — with capped exponential backoff plus jitter under an
// attempt budget. It is the convenience form of (*Manager).Run; ctx bounds
// the whole engagement.
func Run(ctx context.Context, m *Manager, opts RunOptions, fn TxnFunc) error {
	return m.Run(ctx, opts, fn)
}

// Retryable reports whether err is worth a fresh attempt (the
// classification Run uses): deadlock victims, lock and transaction
// deadline expiries, admission sheds, and anything tagged ErrRetryable.
func Retryable(err error) bool { return core.Retryable(err) }
