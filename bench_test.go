// bench_test.go holds the testing.B entry points, one per experiment table
// in DESIGN.md / EXPERIMENTS.md. They exercise the same code paths as
// cmd/assetbench but integrate with `go test -bench`. Run:
//
//	go test -bench=. -benchmem
package asset_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	asset "repro"
	"repro/internal/htab"
	"repro/internal/latch"
	"repro/internal/lock"
	"repro/internal/waitgraph"
	"repro/internal/wal"
	"repro/internal/xid"
	"repro/models"
	"repro/workflow"
)

func benchManager(b *testing.B) *asset.Manager {
	b.Helper()
	m, err := asset.Open(asset.Config{ReapTerminated: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { m.Close() })
	return m
}

func benchSeed(b *testing.B, m *asset.Manager, n, size int) []asset.OID {
	b.Helper()
	oids := make([]asset.OID, 0, n)
	if err := models.Atomic(m, func(tx *asset.Tx) error {
		for i := 0; i < n; i++ {
			oid, err := tx.Create(make([]byte, size))
			if err != nil {
				return err
			}
			oids = append(oids, oid)
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	return oids
}

// BenchmarkPrimitives — E1: empty-transaction lifecycle cost.
func BenchmarkPrimitives(b *testing.B) {
	noop := func(tx *asset.Tx) error { return nil }
	b.Run("initiate-begin-commit", func(b *testing.B) {
		m := benchManager(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t, err := m.Initiate(noop)
			if err != nil {
				b.Fatal(err)
			}
			if err := m.Begin(t); err != nil {
				b.Fatal(err)
			}
			if err := m.Commit(t); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("initiate-begin-wait-abort", func(b *testing.B) {
		m := benchManager(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t, _ := m.Initiate(noop)
			m.Begin(t)
			m.Wait(t)
			m.Abort(t)
		}
	})
}

// BenchmarkLockThroughput — E2: lock manager under contention.
func BenchmarkLockThroughput(b *testing.B) {
	for _, writePct := range []int{10, 50} {
		b.Run(fmt.Sprintf("write%d", writePct), func(b *testing.B) {
			lm := lock.New(waitgraph.New(), lock.Options{EagerClosure: true})
			b.RunParallel(func(pb *testing.PB) {
				seed := uint64(0)
				i := 0
				for pb.Next() {
					i++
					seed = seed*6364136223846793005 + 1442695040888963407
					tid := xid.TID(seed | 1)
					oid := xid.OID(seed%1000 + 1)
					mode := xid.OpRead
					if i%100 < writePct {
						mode = xid.OpWrite
					}
					if err := lm.Lock(tid, oid, mode); err == nil {
						lm.ReleaseAll(tid)
					}
				}
			})
		})
	}
}

// BenchmarkCooperatePermitVsBlock — E3: handoff cost with commits.
func BenchmarkCooperatePermitVsBlock(b *testing.B) {
	b.Run("commit-per-handoff", func(b *testing.B) {
		m := benchManager(b)
		oid := benchSeed(b, m, 1, 8)[0]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := models.Atomic(m, func(tx *asset.Tx) error {
				return tx.Update(oid, func(bb []byte) []byte { bb[0]++; return bb })
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkNestedVsFlat — E4.
func BenchmarkNestedVsFlat(b *testing.B) {
	for _, depth := range []int{1, 4, 8} {
		m := benchManager(b)
		oids := benchSeed(b, m, depth, 16)
		b.Run(fmt.Sprintf("flat-depth%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				models.Atomic(m, func(tx *asset.Tx) error {
					for _, oid := range oids {
						if err := tx.Write(oid, []byte("flat")); err != nil {
							return err
						}
					}
					return nil
				})
			}
		})
		b.Run(fmt.Sprintf("nested-depth%d", depth), func(b *testing.B) {
			var nest func(tx *asset.Tx, level int) error
			nest = func(tx *asset.Tx, level int) error {
				if err := tx.Write(oids[level], []byte("nest")); err != nil {
					return err
				}
				if level+1 == depth {
					return nil
				}
				return models.Sub(tx, func(c *asset.Tx) error { return nest(c, level+1) })
			}
			for i := 0; i < b.N; i++ {
				models.Atomic(m, func(tx *asset.Tx) error { return nest(tx, 0) })
			}
		})
	}
}

// BenchmarkSagaVsLongTxn — E5: k-step activity cost (the concurrency story
// is in assetbench E5; this measures the activity itself).
func BenchmarkSagaVsLongTxn(b *testing.B) {
	const k = 8
	for _, mode := range []string{"long-txn", "saga"} {
		b.Run(mode, func(b *testing.B) {
			m := benchManager(b)
			oids := benchSeed(b, m, k, 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if mode == "long-txn" {
					models.Atomic(m, func(tx *asset.Tx) error {
						for _, oid := range oids {
							if err := tx.Write(oid, []byte("x")); err != nil {
								return err
							}
						}
						return nil
					})
				} else {
					s := models.NewSaga(m)
					for _, oid := range oids {
						oid := oid
						s.Step("s", func(tx *asset.Tx) error { return tx.Write(oid, []byte("x")) }, nil)
					}
					s.Run()
				}
			}
		})
	}
}

// BenchmarkGroupCommit — E6.
func BenchmarkGroupCommit(b *testing.B) {
	for _, size := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("group%d", size), func(b *testing.B) {
			m := benchManager(b)
			fns := make([]asset.TxnFunc, size)
			for i := range fns {
				fns[i] = func(tx *asset.Tx) error { return nil }
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := models.Distributed(m, fns...); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(m.Stats().LogForces)/float64(m.Stats().Commits), "forces/txn")
		})
	}
}

// BenchmarkDelegate — E7.
func BenchmarkDelegate(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("objects%d", n), func(b *testing.B) {
			m := benchManager(b)
			oids := benchSeed(b, m, n, 32)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				worker, _ := m.Initiate(func(tx *asset.Tx) error {
					for _, oid := range oids {
						if err := tx.Write(oid, []byte("w")); err != nil {
							return err
						}
					}
					return nil
				})
				holder, _ := m.Initiate(func(tx *asset.Tx) error { return nil })
				m.Begin(worker, holder)
				m.Wait(worker)
				if err := m.Delegate(worker, holder); err != nil {
					b.Fatal(err)
				}
				m.Commit(holder)
				m.Commit(worker)
			}
		})
	}
}

// BenchmarkSagaAbort — E8: compensation cost.
func BenchmarkSagaAbort(b *testing.B) {
	const k = 8
	m := benchManager(b)
	oids := benchSeed(b, m, k, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := models.NewSaga(m)
		for _, oid := range oids {
			oid := oid
			s.Step("s",
				func(tx *asset.Tx) error { return tx.Write(oid, []byte("done")) },
				func(tx *asset.Tx) error { return tx.Write(oid, []byte("undone")) })
		}
		s.Step("fail", func(tx *asset.Tx) error { return errors.New("boom") }, nil)
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCursorStability — E9: scan cost per mode.
func BenchmarkCursorStability(b *testing.B) {
	for _, mode := range []models.CursorMode{models.RepeatableRead, models.CursorStability} {
		name := "repeatable-read"
		if mode == models.CursorStability {
			name = "cursor-stability"
		}
		b.Run(name, func(b *testing.B) {
			m := benchManager(b)
			oids := benchSeed(b, m, 64, 32)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				models.Atomic(m, func(tx *asset.Tx) error {
					return models.Scan(tx, mode, oids, func(asset.OID, []byte) error { return nil })
				})
			}
		})
	}
}

// BenchmarkRecovery — E10: log replay throughput.
func BenchmarkRecovery(b *testing.B) {
	recs := make([]*wal.Record, 0, 10_000)
	lsn := uint64(1)
	for t := xid.TID(1); t <= 2000; t++ {
		recs = append(recs, &wal.Record{LSN: lsn, Type: wal.TBegin, TID: t})
		lsn++
		for j := 0; j < 4; j++ {
			recs = append(recs, &wal.Record{
				LSN: lsn, Type: wal.TUpdate, TID: t,
				OID: xid.OID(uint64(t)%256 + 1), Kind: wal.KindModify,
				Before: []byte("before"), After: []byte("after"),
			})
			lsn++
		}
		recs = append(recs, &wal.Record{LSN: lsn, Type: wal.TCommit, TIDs: []xid.TID{t}})
		lsn++
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := wal.RecoverRecords(recs)
		if len(st.Objects) == 0 {
			b.Fatal("recovery produced nothing")
		}
	}
	b.ReportMetric(float64(len(recs)), "records/op")
}

// BenchmarkLockPathFig1 — E11: grant latency vs permit-list length.
func BenchmarkLockPathFig1(b *testing.B) {
	for _, pds := range []int{0, 16, 256} {
		b.Run(fmt.Sprintf("pds%d", pds), func(b *testing.B) {
			lm := lock.New(waitgraph.New(), lock.Options{EagerClosure: true})
			const obj = xid.OID(1)
			lm.Lock(1, obj, xid.OpWrite)
			for i := 0; i < pds; i++ {
				lm.Permit(xid.TID(1000+i), xid.TID(2000+i), []xid.OID{obj}, xid.OpRead)
			}
			lm.Permit(1, xid.NilTID, []xid.OID{obj}, xid.OpAll)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tid := xid.TID(10_000 + i)
				if err := lm.Lock(tid, obj, xid.OpWrite); err != nil {
					b.Fatal(err)
				}
				lm.ReleaseAll(tid)
			}
		})
	}
}

// BenchmarkContingent — E12.
func BenchmarkContingent(b *testing.B) {
	for _, n := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("alternatives%d", n), func(b *testing.B) {
			m := benchManager(b)
			fns := make([]asset.TxnFunc, n)
			for i := range fns {
				last := i == n-1
				fns[i] = func(tx *asset.Tx) error {
					if last {
						return nil
					}
					return errors.New("alternative failed")
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := models.Contingent(m, fns...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWorkflow — E13: the conference-trip activity.
func BenchmarkWorkflow(b *testing.B) {
	m := benchManager(b)
	oids := benchSeed(b, m, 3, 32)
	task := func(name string, oid asset.OID) workflow.Task {
		return workflow.Task{
			Name:       name,
			Action:     func(tx *asset.Tx) error { return tx.Write(oid, []byte(name)) },
			Compensate: func(tx *asset.Tx) error { return tx.Write(oid, []byte("-")) },
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := workflow.New("trip").
			Alternatives("flight", task("Delta", oids[0])).
			Step(task("Equator", oids[1])).
			Race("car", task("National", oids[2]), task("Avis", oids[2])).Optional().
			Run(m)
		if err != nil || res.Err() != nil {
			b.Fatalf("%v %v", err, res.Err())
		}
	}
}

// BenchmarkCommutativity — E14: OpIncr vs RMW on a hot counter.
func BenchmarkCommutativity(b *testing.B) {
	b.Run("opincr", func(b *testing.B) {
		m := benchManager(b)
		var hot asset.OID
		models.Atomic(m, func(tx *asset.Tx) error {
			var err error
			hot, err = tx.Create(make([]byte, 8))
			return err
		})
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				models.Atomic(m, func(tx *asset.Tx) error { return tx.Add(hot, 1) })
			}
		})
	})
	b.Run("rmw", func(b *testing.B) {
		m := benchManager(b)
		var hot asset.OID
		models.Atomic(m, func(tx *asset.Tx) error {
			var err error
			hot, err = tx.Create(make([]byte, 8))
			return err
		})
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				models.AtomicRetry(m, 10, func(tx *asset.Tx) error {
					return tx.Update(hot, func(bb []byte) []byte { bb[0]++; return bb })
				})
			}
		})
	})
}

// BenchmarkLatch — A1.
func BenchmarkLatch(b *testing.B) {
	b.Run("latch-X", func(b *testing.B) {
		var l latch.Latch
		n := 0
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				l.Lock()
				n++
				l.Unlock()
			}
		})
	})
	b.Run("mutex", func(b *testing.B) {
		var mu sync.Mutex
		n := 0
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				mu.Lock()
				n++
				mu.Unlock()
			}
		})
	})
	b.Run("latch-S", func(b *testing.B) {
		var l latch.Latch
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				l.RLock()
				l.RUnlock()
			}
		})
	})
}

// BenchmarkPermitClosure — A2: eager vs lazy transitivity.
func BenchmarkPermitClosure(b *testing.B) {
	for _, eager := range []bool{true, false} {
		name := "lazy"
		if eager {
			name = "eager"
		}
		b.Run(name+"-grant-chain16", func(b *testing.B) {
			lm := lock.New(waitgraph.New(), lock.Options{EagerClosure: eager})
			const obj = xid.OID(1)
			lm.Lock(1, obj, xid.OpWrite)
			for i := 0; i < 15; i++ {
				lm.Permit(xid.TID(i+1), xid.TID(i+2), []xid.OID{obj}, xid.OpAll)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !lm.Permitted(1, 16, obj, xid.OpWrite) {
					b.Fatal("chain permit missing")
				}
			}
		})
	}
}

// BenchmarkHtab — A3.
func BenchmarkHtab(b *testing.B) {
	b.Run("htab", func(b *testing.B) {
		m := htab.New[int](0)
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				i++
				k := uint64(i % 4096)
				if i%4 == 0 {
					m.Put(k, i)
				} else {
					m.Get(k)
				}
			}
		})
	})
	b.Run("mutex-map", func(b *testing.B) {
		mm := map[uint64]int{}
		var mu sync.Mutex
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				i++
				k := uint64(i % 4096)
				mu.Lock()
				if i%4 == 0 {
					mm[k] = i
				} else {
					_ = mm[k]
				}
				mu.Unlock()
			}
		})
	})
}

// BenchmarkDeadlock — A4: transfer workload with real deadlock victims.
func BenchmarkDeadlock(b *testing.B) {
	m := benchManager(b)
	oids := benchSeed(b, m, 16, 8)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			a := oids[i%len(oids)]
			c := oids[(i*7+3)%len(oids)]
			if a == c {
				continue
			}
			models.AtomicRetry(m, 5, func(tx *asset.Tx) error {
				if err := tx.Write(a, []byte("x")); err != nil {
					return err
				}
				return tx.Write(c, []byte("y"))
			})
		}
	})
	b.ReportMetric(float64(m.Stats().Deadlocks), "victims")
}
