package odb

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	asset "repro"
	"repro/models"
)

func TestBTreeSetGetDelete(t *testing.T) {
	db := newDB(t)
	m := db.Manager()
	err := models.Atomic(m, func(tx *asset.Tx) error {
		bt, err := db.BTree(tx, "idx", 4) // tiny order forces splits early
		if err != nil {
			return err
		}
		for i := 0; i < 200; i++ {
			if err := bt.Set(tx, fmt.Sprintf("key-%04d", i), asset.OID(i+1)); err != nil {
				return err
			}
		}
		for i := 0; i < 200; i++ {
			oid, err := bt.Get(tx, fmt.Sprintf("key-%04d", i))
			if err != nil {
				return err
			}
			if oid != asset.OID(i+1) {
				return fmt.Errorf("key-%04d -> %v", i, oid)
			}
		}
		if _, err := bt.Get(tx, "absent"); !errors.Is(err, ErrNotFound) {
			return fmt.Errorf("get absent = %v", err)
		}
		if err := bt.Delete(tx, "key-0100"); err != nil {
			return err
		}
		if _, err := bt.Get(tx, "key-0100"); !errors.Is(err, ErrNotFound) {
			return fmt.Errorf("deleted key still present: %v", err)
		}
		if err := bt.Delete(tx, "key-0100"); !errors.Is(err, ErrNotFound) {
			return fmt.Errorf("double delete = %v", err)
		}
		// Overwrite keeps a single entry.
		if err := bt.Set(tx, "key-0000", 999); err != nil {
			return err
		}
		oid, err := bt.Get(tx, "key-0000")
		if err != nil || oid != 999 {
			return fmt.Errorf("overwrite: %v %v", oid, err)
		}
		n, err := bt.Len(tx)
		if err != nil || n != 199 {
			return fmt.Errorf("len = %d, %v", n, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBTreeRangeOrdered(t *testing.T) {
	db := newDB(t)
	m := db.Manager()
	keys := []string{"delta", "alpha", "echo", "bravo", "charlie", "foxtrot"}
	err := models.Atomic(m, func(tx *asset.Tx) error {
		bt, err := db.BTree(tx, "r", 4)
		if err != nil {
			return err
		}
		for i, k := range keys {
			if err := bt.Set(tx, k, asset.OID(i+1)); err != nil {
				return err
			}
		}
		var got []string
		if err := bt.Range(tx, "", "", func(k string, _ asset.OID) bool {
			got = append(got, k)
			return true
		}); err != nil {
			return err
		}
		want := append([]string(nil), keys...)
		sort.Strings(want)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			return fmt.Errorf("full scan %v, want %v", got, want)
		}
		// Half-open [bravo, echo).
		got = nil
		if err := bt.Range(tx, "bravo", "echo", func(k string, _ asset.OID) bool {
			got = append(got, k)
			return true
		}); err != nil {
			return err
		}
		if fmt.Sprint(got) != "[bravo charlie delta]" {
			return fmt.Errorf("range scan %v", got)
		}
		// Early stop.
		count := 0
		bt.Range(tx, "", "", func(string, asset.OID) bool { count++; return false })
		if count != 1 {
			return fmt.Errorf("early stop visited %d", count)
		}
		k, _, err := bt.Min(tx)
		if err != nil || k != "alpha" {
			return fmt.Errorf("min = %q, %v", k, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBTreeQuickMatchesMap property-tests the tree against a map with a
// random operation sequence and verifies sorted iteration.
func TestBTreeQuickMatchesMap(t *testing.T) {
	db := newDB(t)
	m := db.Manager()
	ref := map[string]asset.OID{}
	step := 0
	f := func(key8, op uint8, val uint16) bool {
		step++
		key := fmt.Sprintf("k%03d", key8)
		ok := true
		err := models.Atomic(m, func(tx *asset.Tx) error {
			bt, err := db.BTree(tx, "q", 4)
			if err != nil {
				return err
			}
			switch op % 3 {
			case 0:
				if err := bt.Set(tx, key, asset.OID(val)+1); err != nil {
					return err
				}
				ref[key] = asset.OID(val) + 1
			case 1:
				err := bt.Delete(tx, key)
				_, inRef := ref[key]
				if inRef != (err == nil) {
					ok = false
				}
				delete(ref, key)
			case 2:
				oid, err := bt.Get(tx, key)
				want, inRef := ref[key]
				if inRef != (err == nil) || (inRef && oid != want) {
					ok = false
				}
			}
			return nil
		})
		if err != nil {
			return false
		}
		if step%25 != 0 {
			return ok
		}
		// Periodically: full scan equals the sorted reference.
		var gotKeys []string
		models.Atomic(m, func(tx *asset.Tx) error {
			bt, _ := db.BTree(tx, "q", 4)
			return bt.Range(tx, "", "", func(k string, o asset.OID) bool {
				gotKeys = append(gotKeys, k)
				if ref[k] != o {
					ok = false
				}
				return true
			})
		})
		if len(gotKeys) != len(ref) {
			return false
		}
		if !sort.StringsAreSorted(gotKeys) {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeAbortRollsBackSplits(t *testing.T) {
	db := newDB(t)
	m := db.Manager()
	// Commit a few keys.
	models.Atomic(m, func(tx *asset.Tx) error {
		bt, err := db.BTree(tx, "s", 4)
		if err != nil {
			return err
		}
		for i := 0; i < 3; i++ {
			if err := bt.Set(tx, fmt.Sprintf("base-%d", i), asset.OID(i+1)); err != nil {
				return err
			}
		}
		return nil
	})
	// A big aborted insert burst (forcing splits and root growth).
	err := models.Atomic(m, func(tx *asset.Tx) error {
		bt, err := db.BTree(tx, "s", 4)
		if err != nil {
			return err
		}
		for i := 0; i < 100; i++ {
			if err := bt.Set(tx, fmt.Sprintf("doomed-%03d", i), asset.OID(1000+i)); err != nil {
				return err
			}
		}
		return errors.New("abort the burst")
	})
	if !errors.Is(err, asset.ErrAborted) {
		t.Fatalf("err = %v", err)
	}
	// The tree is structurally intact with only the committed keys.
	err = models.Atomic(m, func(tx *asset.Tx) error {
		bt, err := db.BTree(tx, "s", 4)
		if err != nil {
			return err
		}
		n, err := bt.Len(tx)
		if err != nil {
			return err
		}
		if n != 3 {
			return fmt.Errorf("len = %d after aborted burst", n)
		}
		for i := 0; i < 3; i++ {
			if _, err := bt.Get(tx, fmt.Sprintf("base-%d", i)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBTreeDurableAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	m, err := asset.Open(asset.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Init(m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	want := map[string]asset.OID{}
	err = models.Atomic(m, func(tx *asset.Tx) error {
		bt, err := db.BTree(tx, "d", 6)
		if err != nil {
			return err
		}
		for i := 0; i < 300; i++ {
			k := fmt.Sprintf("k%05d", rng.Intn(10000))
			v := asset.OID(i + 1)
			if err := bt.Set(tx, k, v); err != nil {
				return err
			}
			want[k] = v
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Close()

	m2, err := asset.Open(asset.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	db2, err := Init(m2)
	if err != nil {
		t.Fatal(err)
	}
	err = models.Atomic(m2, func(tx *asset.Tx) error {
		bt, err := db2.BTree(tx, "d", 6)
		if err != nil {
			return err
		}
		n := 0
		prev := ""
		if err := bt.Range(tx, "", "", func(k string, o asset.OID) bool {
			if k <= prev && prev != "" {
				t.Errorf("order violated: %q after %q", k, prev)
			}
			if want[k] != o {
				t.Errorf("recovered %q -> %v, want %v", k, o, want[k])
			}
			prev = k
			n++
			return true
		}); err != nil {
			return err
		}
		if n != len(want) {
			return fmt.Errorf("recovered %d keys, want %d", n, len(want))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
