// Package odb is a minimal Ode-like object database layer over the ASSET
// transaction manager: named collections of byte records, hash indexes,
// and escrow counters, all accessed inside transactions so that every
// structure update inherits ASSET's locking, logging, and abort semantics.
// It stands in for the Ode/O++ environment the paper hosts ASSET in, and
// hosts the cursor-stability and commutativity experiments (E9, E14).
package odb

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	asset "repro"
)

// RootOID is the reserved object holding the database registry (the map
// from collection/index names to their header objects).
const RootOID asset.OID = 1 << 62

// ErrNotFound reports a missing collection, index, or key.
var ErrNotFound = errors.New("odb: not found")

// Database is a handle over an ASSET manager with the registry object
// initialized.
type Database struct {
	m *asset.Manager
}

// Init returns a Database over m, creating the registry object if this is
// a fresh store.
func Init(m *asset.Manager) (*Database, error) {
	if _, ok := m.Cache().Read(RootOID); ok {
		return &Database{m: m}, nil
	}
	t, err := m.Initiate(func(tx *asset.Tx) error {
		return tx.CreateAt(RootOID, encodeDir(map[string]asset.OID{}))
	})
	if err != nil {
		return nil, err
	}
	if err := m.Begin(t); err != nil {
		return nil, err
	}
	if err := m.Commit(t); err != nil {
		return nil, err
	}
	return &Database{m: m}, nil
}

// Manager returns the underlying transaction manager.
func (db *Database) Manager() *asset.Manager { return db.m }

// encodeDir / decodeDir (de)serialize name→oid directories with gob.
func encodeDir(d map[string]asset.OID) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(d); err != nil {
		panic(fmt.Sprintf("odb: encode directory: %v", err)) // cannot fail for this type
	}
	return buf.Bytes()
}

func decodeDir(b []byte) (map[string]asset.OID, error) {
	d := map[string]asset.OID{}
	if len(b) == 0 {
		return d, nil
	}
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&d); err != nil {
		return nil, fmt.Errorf("odb: corrupt directory: %w", err)
	}
	return d, nil
}

func encodeOIDs(oids []asset.OID) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(oids); err != nil {
		panic(fmt.Sprintf("odb: encode oid list: %v", err))
	}
	return buf.Bytes()
}

func decodeOIDs(b []byte) ([]asset.OID, error) {
	var oids []asset.OID
	if len(b) == 0 {
		return nil, nil
	}
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&oids); err != nil {
		return nil, fmt.Errorf("odb: corrupt oid list: %w", err)
	}
	return oids, nil
}

// registryLookup finds (or, when create is true, creates) the named entry
// in the registry, where mk builds the initial header contents.
func (db *Database) registryLookup(tx *asset.Tx, name string, create bool, mk func() []byte) (asset.OID, error) {
	raw, err := tx.Read(RootOID)
	if err != nil {
		return asset.NilOID, err
	}
	dir, err := decodeDir(raw)
	if err != nil {
		return asset.NilOID, err
	}
	if oid, ok := dir[name]; ok {
		return oid, nil
	}
	if !create {
		return asset.NilOID, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	head, err := tx.Create(mk())
	if err != nil {
		return asset.NilOID, err
	}
	dir[name] = head
	if err := tx.Write(RootOID, encodeDir(dir)); err != nil {
		return asset.NilOID, err
	}
	return head, nil
}

// Collection is a named set of record objects. The header object stores
// the member oid list; records are ordinary objects, so member reads and
// writes lock only the records they touch.
type Collection struct {
	db   *Database
	name string
	head asset.OID
}

// Collection returns the named collection, creating it if needed. It must
// run inside a transaction.
func (db *Database) Collection(tx *asset.Tx, name string) (*Collection, error) {
	head, err := db.registryLookup(tx, "c:"+name, true, func() []byte { return encodeOIDs(nil) })
	if err != nil {
		return nil, err
	}
	return &Collection{db: db, name: name, head: head}, nil
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// Insert creates a record holding data and adds it to the collection.
func (c *Collection) Insert(tx *asset.Tx, data []byte) (asset.OID, error) {
	oid, err := tx.Create(data)
	if err != nil {
		return asset.NilOID, err
	}
	raw, err := tx.Read(c.head)
	if err != nil {
		return asset.NilOID, err
	}
	oids, err := decodeOIDs(raw)
	if err != nil {
		return asset.NilOID, err
	}
	oids = append(oids, oid)
	if err := tx.Write(c.head, encodeOIDs(oids)); err != nil {
		return asset.NilOID, err
	}
	return oid, nil
}

// Remove deletes a record from the collection and the store.
func (c *Collection) Remove(tx *asset.Tx, oid asset.OID) error {
	raw, err := tx.Read(c.head)
	if err != nil {
		return err
	}
	oids, err := decodeOIDs(raw)
	if err != nil {
		return err
	}
	found := false
	out := oids[:0]
	for _, o := range oids {
		if o == oid {
			found = true
			continue
		}
		out = append(out, o)
	}
	if !found {
		return fmt.Errorf("%w: %v in collection %q", ErrNotFound, oid, c.name)
	}
	if err := tx.Write(c.head, encodeOIDs(out)); err != nil {
		return err
	}
	return tx.Delete(oid)
}

// OIDs returns the member oids in insertion order.
func (c *Collection) OIDs(tx *asset.Tx) ([]asset.OID, error) {
	raw, err := tx.Read(c.head)
	if err != nil {
		return nil, err
	}
	return decodeOIDs(raw)
}

// Len returns the member count.
func (c *Collection) Len(tx *asset.Tx) (int, error) {
	oids, err := c.OIDs(tx)
	return len(oids), err
}

// Index is a persistent hash index from string keys to oids, stored as a
// header object pointing at bucket objects so concurrent transactions on
// different buckets do not conflict.
type Index struct {
	db      *Database
	name    string
	head    asset.OID
	buckets []asset.OID
}

type indexEntry struct {
	Key string
	Oid asset.OID
}

func encodeBucket(es []indexEntry) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(es); err != nil {
		panic(fmt.Sprintf("odb: encode bucket: %v", err))
	}
	return buf.Bytes()
}

func decodeBucket(b []byte) ([]indexEntry, error) {
	var es []indexEntry
	if len(b) == 0 {
		return nil, nil
	}
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&es); err != nil {
		return nil, fmt.Errorf("odb: corrupt bucket: %w", err)
	}
	return es, nil
}

// Index returns the named hash index, creating it with the given bucket
// count (rounded up to at least 1) if needed.
func (db *Database) Index(tx *asset.Tx, name string, buckets int) (*Index, error) {
	if buckets < 1 {
		buckets = 16
	}
	var created []asset.OID
	head, err := db.registryLookup(tx, "i:"+name, true, func() []byte { return encodeOIDs(nil) })
	if err != nil {
		return nil, err
	}
	raw, err := tx.Read(head)
	if err != nil {
		return nil, err
	}
	bs, err := decodeOIDs(raw)
	if err != nil {
		return nil, err
	}
	if len(bs) == 0 {
		for i := 0; i < buckets; i++ {
			b, err := tx.Create(encodeBucket(nil))
			if err != nil {
				return nil, err
			}
			created = append(created, b)
		}
		if err := tx.Write(head, encodeOIDs(created)); err != nil {
			return nil, err
		}
		bs = created
	}
	return &Index{db: db, name: name, head: head, buckets: bs}, nil
}

func (ix *Index) bucketFor(key string) asset.OID {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return ix.buckets[h%uint64(len(ix.buckets))]
}

// Set maps key to oid, replacing any existing mapping.
func (ix *Index) Set(tx *asset.Tx, key string, oid asset.OID) error {
	b := ix.bucketFor(key)
	raw, err := tx.Read(b)
	if err != nil {
		return err
	}
	es, err := decodeBucket(raw)
	if err != nil {
		return err
	}
	for i := range es {
		if es[i].Key == key {
			es[i].Oid = oid
			return tx.Write(b, encodeBucket(es))
		}
	}
	es = append(es, indexEntry{Key: key, Oid: oid})
	return tx.Write(b, encodeBucket(es))
}

// Get returns the oid mapped to key.
func (ix *Index) Get(tx *asset.Tx, key string) (asset.OID, error) {
	raw, err := tx.Read(ix.bucketFor(key))
	if err != nil {
		return asset.NilOID, err
	}
	es, err := decodeBucket(raw)
	if err != nil {
		return asset.NilOID, err
	}
	for _, e := range es {
		if e.Key == key {
			return e.Oid, nil
		}
	}
	return asset.NilOID, fmt.Errorf("%w: key %q", ErrNotFound, key)
}

// Delete removes key's mapping; deleting an absent key is an error.
func (ix *Index) Delete(tx *asset.Tx, key string) error {
	b := ix.bucketFor(key)
	raw, err := tx.Read(b)
	if err != nil {
		return err
	}
	es, err := decodeBucket(raw)
	if err != nil {
		return err
	}
	for i := range es {
		if es[i].Key == key {
			es = append(es[:i], es[i+1:]...)
			return tx.Write(b, encodeBucket(es))
		}
	}
	return fmt.Errorf("%w: key %q", ErrNotFound, key)
}

// Counter is an escrow counter object: concurrent transactions increment
// it without conflicting (the §5 commutativity extension), and reads see a
// stable committed value.
type Counter struct {
	Oid asset.OID
}

// NewCounter creates a counter initialized to v inside tx.
func NewCounter(tx *asset.Tx, v uint64) (Counter, error) {
	oid, err := tx.Create(counterImage(v))
	return Counter{Oid: oid}, err
}

// Add increments the counter by delta (mod 2^64) under a commuting
// increment lock.
func (c Counter) Add(tx *asset.Tx, delta uint64) error { return tx.Add(c.Oid, int64(delta)) }

// Sub decrements the counter by delta under a commuting decrement lock.
func (c Counter) Sub(tx *asset.Tx, delta uint64) error { return tx.Add(c.Oid, -int64(delta)) }

// Value reads the counter under a read lock (conflicts with in-flight
// increments, so it sees only committed values).
func (c Counter) Value(tx *asset.Tx) (uint64, error) { return tx.ReadCounter(c.Oid) }

// BoundedCounter is a Counter with declared escrow bounds: the committed
// value can never leave [Lo, Hi]. Concurrent deltas still commute; a delta
// that would overdraw the bounds — even in the worst case over in-flight
// reservations — blocks until headroom frees, or fails with
// asset.ErrEscrow when no in-flight resolution could admit it. The classic
// use is inventory or account balances that must not go negative.
type BoundedCounter struct {
	Counter
	Lo, Hi uint64
}

// NewBoundedCounter creates a counter initialized to v with escrow bounds
// [lo, hi] inside tx. Bounds are runtime state, not persisted: after
// reopening a store, re-declare them with Declare.
func NewBoundedCounter(tx *asset.Tx, v, lo, hi uint64) (BoundedCounter, error) {
	c, err := NewCounter(tx, v)
	if err != nil {
		return BoundedCounter{}, err
	}
	b := BoundedCounter{Counter: c, Lo: lo, Hi: hi}
	return b, tx.DeclareEscrow(c.Oid, lo, hi)
}

// Declare re-declares the counter's escrow bounds from its current
// committed value (after reopening a store, say). The caller's transaction
// takes a write lock on the counter for the declaration, serializing it
// against in-flight deltas.
func (b BoundedCounter) Declare(tx *asset.Tx) error {
	return tx.DeclareEscrow(b.Oid, b.Lo, b.Hi)
}

func counterImage(v uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return b
}
