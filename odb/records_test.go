package odb

import (
	"errors"
	"testing"

	asset "repro"
	"repro/models"
)

type employee struct {
	Name   string
	Salary int
	Dept   string
}

func TestTypedRecordsRoundTrip(t *testing.T) {
	db := newDB(t)
	m := db.Manager()
	var oid asset.OID
	err := models.Atomic(m, func(tx *asset.Tx) error {
		var err error
		oid, err = Put(tx, employee{Name: "ada", Salary: 120, Dept: "eng"})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	err = models.Atomic(m, func(tx *asset.Tx) error {
		e, err := Get[employee](tx, oid)
		if err != nil {
			return err
		}
		if e.Name != "ada" || e.Salary != 120 {
			t.Fatalf("got %+v", e)
		}
		e.Salary = 130
		return Set(tx, oid, e)
	})
	if err != nil {
		t.Fatal(err)
	}
	models.Atomic(m, func(tx *asset.Tx) error {
		e, err := Get[employee](tx, oid)
		if err != nil {
			return err
		}
		if e.Salary != 130 {
			t.Fatalf("salary = %d", e.Salary)
		}
		return nil
	})
}

func TestModifyReadModifyWrite(t *testing.T) {
	db := newDB(t)
	m := db.Manager()
	var oid asset.OID
	models.Atomic(m, func(tx *asset.Tx) error {
		var err error
		oid, err = Put(tx, employee{Name: "bob", Salary: 100})
		return err
	})
	// Concurrent raise attempts must not lose updates (Modify locks
	// before reading).
	const workers, raises = 4, 10
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for i := 0; i < raises; i++ {
				err := models.AtomicRetry(m, 20, func(tx *asset.Tx) error {
					return Modify(tx, oid, func(e *employee) error {
						e.Salary++
						return nil
					})
				})
				if err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	models.Atomic(m, func(tx *asset.Tx) error {
		e, err := Get[employee](tx, oid)
		if err != nil {
			return err
		}
		if e.Salary != 100+workers*raises {
			t.Fatalf("salary = %d, want %d", e.Salary, 100+workers*raises)
		}
		return nil
	})
}

func TestModifyAbortPropagates(t *testing.T) {
	db := newDB(t)
	m := db.Manager()
	var oid asset.OID
	models.Atomic(m, func(tx *asset.Tx) error {
		var err error
		oid, err = Put(tx, employee{Name: "eve", Salary: 90})
		return err
	})
	err := models.Atomic(m, func(tx *asset.Tx) error {
		return Modify(tx, oid, func(e *employee) error {
			e.Salary = 9999
			return errors.New("policy violation")
		})
	})
	if !errors.Is(err, asset.ErrAborted) {
		t.Fatalf("err = %v", err)
	}
	models.Atomic(m, func(tx *asset.Tx) error {
		e, _ := Get[employee](tx, oid)
		if e.Salary != 90 {
			t.Fatalf("salary = %d after aborted modify", e.Salary)
		}
		return nil
	})
}

func TestUnmarshalCorrupt(t *testing.T) {
	var e employee
	if err := Unmarshal([]byte("not-gob"), &e); err == nil {
		t.Fatal("corrupt decode succeeded")
	}
}
