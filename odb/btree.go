package odb

import (
	"bytes"
	"encoding/gob"
	"fmt"

	asset "repro"
)

// BTree is a persistent B+tree index from string keys to oids. Every node
// is an ordinary object, so tree operations inherit transaction locking
// (readers share nodes, writers exclude along their path) and abort rolls
// back structural changes. Leaves are chained for range scans.
//
// Deletion is lazy (keys are removed; underfull nodes are not rebalanced),
// the strategy several production B-trees use: the tree stays correct and
// ordered, and space is reclaimed when emptied leaves are reused by later
// splits of their neighbours' key space.
type BTree struct {
	db   *Database
	name string
	head asset.OID // header object: {Root, Order}
}

const defaultBTreeOrder = 32

type btreeHeader struct {
	Root  asset.OID
	Order int
}

type btreeNode struct {
	Leaf     bool
	Keys     []string
	Vals     []asset.OID // leaf: values; parallel to Keys
	Children []asset.OID // internal: len(Keys)+1 children
	Next     asset.OID   // leaf chain
}

func encodeNode(v any) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		panic(fmt.Sprintf("odb: encode btree node: %v", err))
	}
	return buf.Bytes()
}

func decodeHeader(b []byte) (btreeHeader, error) {
	var h btreeHeader
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&h)
	return h, err
}

func decodeNode(b []byte) (*btreeNode, error) {
	var n btreeNode
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&n); err != nil {
		return nil, fmt.Errorf("odb: corrupt btree node: %w", err)
	}
	return &n, nil
}

// BTree returns the named sorted index, creating it (with the given order,
// ≥ 4; 0 selects the default) if needed.
func (db *Database) BTree(tx *asset.Tx, name string, order int) (*BTree, error) {
	if order == 0 {
		order = defaultBTreeOrder
	}
	if order < 4 {
		order = 4
	}
	head, err := db.registryLookup(tx, "b:"+name, true, func() []byte {
		return encodeNode(btreeHeader{Order: order})
	})
	if err != nil {
		return nil, err
	}
	t := &BTree{db: db, name: name, head: head}
	// Create the root leaf on first use.
	h, err := t.header(tx)
	if err != nil {
		return nil, err
	}
	if h.Root.IsNil() {
		root, err := tx.Create(encodeNode(btreeNode{Leaf: true}))
		if err != nil {
			return nil, err
		}
		h.Root = root
		if err := tx.Write(t.head, encodeNode(h)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func (t *BTree) header(tx *asset.Tx) (btreeHeader, error) {
	raw, err := tx.Read(t.head)
	if err != nil {
		return btreeHeader{}, err
	}
	return decodeHeader(raw)
}

func (t *BTree) node(tx *asset.Tx, oid asset.OID) (*btreeNode, error) {
	raw, err := tx.Read(oid)
	if err != nil {
		return nil, err
	}
	return decodeNode(raw)
}

func (t *BTree) writeNode(tx *asset.Tx, oid asset.OID, n *btreeNode) error {
	return tx.Write(oid, encodeNode(n))
}

// lowerBound returns the first index i with keys[i] >= key.
func lowerBound(keys []string, key string) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex returns which child of an internal node covers key.
func childIndex(keys []string, key string) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if key < keys[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Get returns the oid stored under key.
func (t *BTree) Get(tx *asset.Tx, key string) (asset.OID, error) {
	h, err := t.header(tx)
	if err != nil {
		return asset.NilOID, err
	}
	cur := h.Root
	for {
		n, err := t.node(tx, cur)
		if err != nil {
			return asset.NilOID, err
		}
		if n.Leaf {
			i := lowerBound(n.Keys, key)
			if i < len(n.Keys) && n.Keys[i] == key {
				return n.Vals[i], nil
			}
			return asset.NilOID, fmt.Errorf("%w: key %q", ErrNotFound, key)
		}
		cur = n.Children[childIndex(n.Keys, key)]
	}
}

// Set maps key to oid, replacing any existing mapping.
func (t *BTree) Set(tx *asset.Tx, key string, oid asset.OID) error {
	h, err := t.header(tx)
	if err != nil {
		return err
	}
	promotedKey, newChild, err := t.insert(tx, h.Root, key, oid, h.Order)
	if err != nil {
		return err
	}
	if newChild.IsNil() {
		return nil
	}
	// Root split: grow the tree by one level.
	newRoot, err := tx.Create(encodeNode(btreeNode{
		Keys:     []string{promotedKey},
		Children: []asset.OID{h.Root, newChild},
	}))
	if err != nil {
		return err
	}
	h.Root = newRoot
	return tx.Write(t.head, encodeNode(h))
}

// insert adds key→oid under node `cur`. If cur splits, it returns the
// promoted separator key and the new right sibling's oid.
func (t *BTree) insert(tx *asset.Tx, cur asset.OID, key string, oid asset.OID, order int) (string, asset.OID, error) {
	n, err := t.node(tx, cur)
	if err != nil {
		return "", asset.NilOID, err
	}
	if n.Leaf {
		i := lowerBound(n.Keys, key)
		if i < len(n.Keys) && n.Keys[i] == key {
			n.Vals[i] = oid // overwrite
			return "", asset.NilOID, t.writeNode(tx, cur, n)
		}
		n.Keys = append(n.Keys, "")
		copy(n.Keys[i+1:], n.Keys[i:])
		n.Keys[i] = key
		n.Vals = append(n.Vals, 0)
		copy(n.Vals[i+1:], n.Vals[i:])
		n.Vals[i] = oid
		if len(n.Keys) < order {
			return "", asset.NilOID, t.writeNode(tx, cur, n)
		}
		// Split the leaf: right half moves to a new node chained after cur.
		mid := len(n.Keys) / 2
		right := &btreeNode{
			Leaf: true,
			Keys: append([]string(nil), n.Keys[mid:]...),
			Vals: append([]asset.OID(nil), n.Vals[mid:]...),
			Next: n.Next,
		}
		rightOID, err := tx.Create(encodeNode(right))
		if err != nil {
			return "", asset.NilOID, err
		}
		sep := n.Keys[mid]
		n.Keys = n.Keys[:mid]
		n.Vals = n.Vals[:mid]
		n.Next = rightOID
		if err := t.writeNode(tx, cur, n); err != nil {
			return "", asset.NilOID, err
		}
		return sep, rightOID, nil
	}
	// Internal node: descend, then absorb a child split if one happened.
	ci := childIndex(n.Keys, key)
	promoted, newChild, err := t.insert(tx, n.Children[ci], key, oid, order)
	if err != nil || newChild.IsNil() {
		return "", asset.NilOID, err
	}
	n.Keys = append(n.Keys, "")
	copy(n.Keys[ci+1:], n.Keys[ci:])
	n.Keys[ci] = promoted
	n.Children = append(n.Children, 0)
	copy(n.Children[ci+2:], n.Children[ci+1:])
	n.Children[ci+1] = newChild
	if len(n.Keys) < order {
		return "", asset.NilOID, t.writeNode(tx, cur, n)
	}
	// Split the internal node; the middle key moves up (B-tree style).
	mid := len(n.Keys) / 2
	sep := n.Keys[mid]
	right := &btreeNode{
		Keys:     append([]string(nil), n.Keys[mid+1:]...),
		Children: append([]asset.OID(nil), n.Children[mid+1:]...),
	}
	rightOID, err := tx.Create(encodeNode(right))
	if err != nil {
		return "", asset.NilOID, err
	}
	n.Keys = n.Keys[:mid]
	n.Children = n.Children[:mid+1]
	if err := t.writeNode(tx, cur, n); err != nil {
		return "", asset.NilOID, err
	}
	return sep, rightOID, nil
}

// Delete removes key's mapping; deleting an absent key is an error.
func (t *BTree) Delete(tx *asset.Tx, key string) error {
	h, err := t.header(tx)
	if err != nil {
		return err
	}
	cur := h.Root
	for {
		n, err := t.node(tx, cur)
		if err != nil {
			return err
		}
		if n.Leaf {
			i := lowerBound(n.Keys, key)
			if i >= len(n.Keys) || n.Keys[i] != key {
				return fmt.Errorf("%w: key %q", ErrNotFound, key)
			}
			n.Keys = append(n.Keys[:i], n.Keys[i+1:]...)
			n.Vals = append(n.Vals[:i], n.Vals[i+1:]...)
			return t.writeNode(tx, cur, n)
		}
		cur = n.Children[childIndex(n.Keys, key)]
	}
}

// Range calls fn for every key in [from, to) in ascending order; an empty
// `to` means "to the end". fn returning false stops the scan.
func (t *BTree) Range(tx *asset.Tx, from, to string, fn func(key string, oid asset.OID) bool) error {
	h, err := t.header(tx)
	if err != nil {
		return err
	}
	// Descend to the leaf covering `from`.
	cur := h.Root
	for {
		n, err := t.node(tx, cur)
		if err != nil {
			return err
		}
		if n.Leaf {
			break
		}
		cur = n.Children[childIndex(n.Keys, from)]
	}
	// Walk the leaf chain.
	for !cur.IsNil() {
		n, err := t.node(tx, cur)
		if err != nil {
			return err
		}
		for i, k := range n.Keys {
			if k < from {
				continue
			}
			if to != "" && k >= to {
				return nil
			}
			if !fn(k, n.Vals[i]) {
				return nil
			}
		}
		cur = n.Next
	}
	return nil
}

// Len counts the stored keys (a full leaf-chain walk).
func (t *BTree) Len(tx *asset.Tx) (int, error) {
	count := 0
	err := t.Range(tx, "", "", func(string, asset.OID) bool {
		count++
		return true
	})
	return count, err
}

// Min returns the smallest key and its oid.
func (t *BTree) Min(tx *asset.Tx) (string, asset.OID, error) {
	var key string
	var oid asset.OID
	found := false
	err := t.Range(tx, "", "", func(k string, o asset.OID) bool {
		key, oid, found = k, o, true
		return false
	})
	if err != nil {
		return "", asset.NilOID, err
	}
	if !found {
		return "", asset.NilOID, fmt.Errorf("%w: empty tree", ErrNotFound)
	}
	return key, oid, nil
}
