package odb

import (
	"errors"
	"fmt"
	"testing"

	asset "repro"
	"repro/models"
)

func newDB(t *testing.T) *Database {
	t.Helper()
	m, err := asset.Open(asset.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	db, err := Init(m)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestInitIdempotent(t *testing.T) {
	db := newDB(t)
	if _, err := Init(db.Manager()); err != nil {
		t.Fatal(err)
	}
}

func TestCollectionInsertScanRemove(t *testing.T) {
	db := newDB(t)
	m := db.Manager()
	var removed asset.OID
	err := models.Atomic(m, func(tx *asset.Tx) error {
		c, err := db.Collection(tx, "parts")
		if err != nil {
			return err
		}
		for i := 0; i < 5; i++ {
			oid, err := c.Insert(tx, []byte(fmt.Sprintf("part-%d", i)))
			if err != nil {
				return err
			}
			if i == 2 {
				removed = oid
			}
		}
		if n, err := c.Len(tx); err != nil || n != 5 {
			return fmt.Errorf("len = %d, %v", n, err)
		}
		return c.Remove(tx, removed)
	})
	if err != nil {
		t.Fatal(err)
	}
	err = models.Atomic(m, func(tx *asset.Tx) error {
		c, err := db.Collection(tx, "parts")
		if err != nil {
			return err
		}
		oids, err := c.OIDs(tx)
		if err != nil {
			return err
		}
		if len(oids) != 4 {
			return fmt.Errorf("len = %d, want 4", len(oids))
		}
		for _, oid := range oids {
			if _, err := tx.Read(oid); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectionAbortRollsBackInsert(t *testing.T) {
	db := newDB(t)
	m := db.Manager()
	models.Atomic(m, func(tx *asset.Tx) error {
		_, err := db.Collection(tx, "c")
		return err
	})
	err := models.Atomic(m, func(tx *asset.Tx) error {
		c, err := db.Collection(tx, "c")
		if err != nil {
			return err
		}
		if _, err := c.Insert(tx, []byte("doomed")); err != nil {
			return err
		}
		return errors.New("abort")
	})
	if !errors.Is(err, asset.ErrAborted) {
		t.Fatalf("err = %v", err)
	}
	models.Atomic(m, func(tx *asset.Tx) error {
		c, _ := db.Collection(tx, "c")
		if n, _ := c.Len(tx); n != 0 {
			t.Errorf("len = %d after aborted insert", n)
		}
		return nil
	})
}

func TestIndexSetGetDelete(t *testing.T) {
	db := newDB(t)
	m := db.Manager()
	err := models.Atomic(m, func(tx *asset.Tx) error {
		ix, err := db.Index(tx, "by-name", 8)
		if err != nil {
			return err
		}
		for i := 0; i < 50; i++ {
			oid, err := tx.Create([]byte{byte(i)})
			if err != nil {
				return err
			}
			if err := ix.Set(tx, fmt.Sprintf("key-%d", i), oid); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = models.Atomic(m, func(tx *asset.Tx) error {
		ix, err := db.Index(tx, "by-name", 8)
		if err != nil {
			return err
		}
		for i := 0; i < 50; i++ {
			oid, err := ix.Get(tx, fmt.Sprintf("key-%d", i))
			if err != nil {
				return err
			}
			data, err := tx.Read(oid)
			if err != nil {
				return err
			}
			if data[0] != byte(i) {
				return fmt.Errorf("key-%d maps to %v", i, data)
			}
		}
		if err := ix.Delete(tx, "key-7"); err != nil {
			return err
		}
		if _, err := ix.Get(tx, "key-7"); !errors.Is(err, ErrNotFound) {
			return fmt.Errorf("get deleted = %v", err)
		}
		if err := ix.Delete(tx, "never-there"); !errors.Is(err, ErrNotFound) {
			return fmt.Errorf("delete absent = %v", err)
		}
		// Overwrite.
		if err := ix.Set(tx, "key-8", 42); err != nil {
			return err
		}
		oid, err := ix.Get(tx, "key-8")
		if err != nil || oid != 42 {
			return fmt.Errorf("overwrite: %v %v", oid, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIndexBucketsReduceConflicts(t *testing.T) {
	// Two transactions touching different buckets commit concurrently.
	db := newDB(t)
	m := db.Manager()
	models.Atomic(m, func(tx *asset.Tx) error {
		_, err := db.Index(tx, "ix", 64)
		return err
	})
	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			errs <- models.AtomicRetry(m, 10, func(tx *asset.Tx) error {
				ix, err := db.Index(tx, "ix", 64)
				if err != nil {
					return err
				}
				return ix.Set(tx, fmt.Sprintf("worker-%d", w), asset.OID(w+1))
			})
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestCounterEscrow(t *testing.T) {
	db := newDB(t)
	m := db.Manager()
	var ctr Counter
	models.Atomic(m, func(tx *asset.Tx) error {
		var err error
		ctr, err = NewCounter(tx, 1000)
		return err
	})
	const workers, iters = 8, 25
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for i := 0; i < iters; i++ {
				if err := models.Atomic(m, func(tx *asset.Tx) error { return ctr.Add(tx, 2) }); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	models.Atomic(m, func(tx *asset.Tx) error {
		v, err := ctr.Value(tx)
		if err != nil {
			return err
		}
		if v != 1000+2*workers*iters {
			t.Errorf("counter = %d, want %d", v, 1000+2*workers*iters)
		}
		return nil
	})
}

func TestCounterSub(t *testing.T) {
	db := newDB(t)
	m := db.Manager()
	var ctr Counter
	models.Atomic(m, func(tx *asset.Tx) error {
		var err error
		ctr, err = NewCounter(tx, 50)
		return err
	})
	models.Atomic(m, func(tx *asset.Tx) error { return ctr.Sub(tx, 20) })
	models.Atomic(m, func(tx *asset.Tx) error {
		v, _ := ctr.Value(tx)
		if v != 30 {
			t.Errorf("counter = %d, want 30", v)
		}
		return nil
	})
}

func TestDurableODBAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	m, err := asset.Open(asset.Config{Dir: dir, SyncCommits: true})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Init(m)
	if err != nil {
		t.Fatal(err)
	}
	err = models.Atomic(m, func(tx *asset.Tx) error {
		c, err := db.Collection(tx, "inventory")
		if err != nil {
			return err
		}
		oid, err := c.Insert(tx, []byte("widget"))
		if err != nil {
			return err
		}
		ix, err := db.Index(tx, "sku", 8)
		if err != nil {
			return err
		}
		return ix.Set(tx, "W-1", oid)
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Close()

	m2, err := asset.Open(asset.Config{Dir: dir, SyncCommits: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	db2, err := Init(m2)
	if err != nil {
		t.Fatal(err)
	}
	err = models.Atomic(m2, func(tx *asset.Tx) error {
		ix, err := db2.Index(tx, "sku", 8)
		if err != nil {
			return err
		}
		oid, err := ix.Get(tx, "W-1")
		if err != nil {
			return err
		}
		data, err := tx.Read(oid)
		if err != nil {
			return err
		}
		if string(data) != "widget" {
			return fmt.Errorf("recovered record = %q", data)
		}
		c, err := db2.Collection(tx, "inventory")
		if err != nil {
			return err
		}
		if n, _ := c.Len(tx); n != 1 {
			return fmt.Errorf("collection len = %d", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
