package odb

import (
	"bytes"
	"encoding/gob"
	"fmt"

	asset "repro"
)

// Marshal encodes a Go value into an object image with encoding/gob. It is
// the typed-record convenience the Ode layer offers over raw byte objects.
func Marshal(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("odb: marshal %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// Unmarshal decodes an object image produced by Marshal into out (a
// pointer).
func Unmarshal(data []byte, out any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(out); err != nil {
		return fmt.Errorf("odb: unmarshal %T: %w", out, err)
	}
	return nil
}

// Put stores v (gob-encoded) as a new object and returns its oid.
func Put[T any](tx *asset.Tx, v T) (asset.OID, error) {
	data, err := Marshal(v)
	if err != nil {
		return asset.NilOID, err
	}
	return tx.Create(data)
}

// Get reads the object at oid and decodes it into a T.
func Get[T any](tx *asset.Tx, oid asset.OID) (T, error) {
	var out T
	data, err := tx.Read(oid)
	if err != nil {
		return out, err
	}
	err = Unmarshal(data, &out)
	return out, err
}

// Set overwrites the object at oid with v (gob-encoded).
func Set[T any](tx *asset.Tx, oid asset.OID, v T) error {
	data, err := Marshal(v)
	if err != nil {
		return err
	}
	return tx.Write(oid, data)
}

// Modify reads the T at oid, applies fn, and writes the result back, all
// under the transaction's write lock.
func Modify[T any](tx *asset.Tx, oid asset.OID, fn func(*T) error) error {
	// Take the write lock first so the read-modify-write is stable.
	if err := tx.Lock(oid, asset.OpWrite); err != nil {
		return err
	}
	v, err := Get[T](tx, oid)
	if err != nil {
		return err
	}
	if err := fn(&v); err != nil {
		return err
	}
	return Set(tx, oid, v)
}
