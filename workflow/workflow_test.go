package workflow

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	asset "repro"
	"repro/models"
)

func newMem(t *testing.T) *asset.Manager {
	t.Helper()
	m, err := asset.Open(asset.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func seed(t *testing.T, m *asset.Manager, data []byte) asset.OID {
	t.Helper()
	var oid asset.OID
	if err := models.Atomic(m, func(tx *asset.Tx) error {
		var err error
		oid, err = tx.Create(data)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	return oid
}

func readObj(t *testing.T, m *asset.Manager, oid asset.OID) string {
	t.Helper()
	b, ok := m.Cache().Read(oid)
	if !ok {
		return "<missing>"
	}
	return string(b)
}

func set(oid asset.OID, val string) asset.TxnFunc {
	return func(tx *asset.Tx) error { return tx.Write(oid, []byte(val)) }
}

func fail(msg string) asset.TxnFunc {
	return func(tx *asset.Tx) error { return errors.New(msg) }
}

func TestLinearWorkflowCommits(t *testing.T) {
	m := newMem(t)
	a := seed(t, m, []byte("-"))
	b := seed(t, m, []byte("-"))
	res, err := New("two-steps").
		Step(Task{Name: "first", Action: set(a, "A")}).
		Step(Task{Name: "second", Action: set(b, "B")}).
		Run(m)
	if err != nil || res.Err() != nil {
		t.Fatalf("err=%v resErr=%v", err, res.Err())
	}
	if readObj(t, m, a) != "A" || readObj(t, m, b) != "B" {
		t.Fatal("step effects missing")
	}
}

func TestRequiredFailureCompensatesInReverse(t *testing.T) {
	m := newMem(t)
	var events []string
	mk := func(name string) Task {
		return Task{
			Name:       name,
			Action:     func(tx *asset.Tx) error { events = append(events, name); return nil },
			Compensate: func(tx *asset.Tx) error { events = append(events, "undo-"+name); return nil },
		}
	}
	res, err := New("failing").
		Step(mk("s1")).
		Step(mk("s2")).
		Step(Task{Name: "s3", Action: fail("nope")}).
		Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Err(), ErrFailed) || res.FailedStep != "s3" {
		t.Fatalf("res = %+v", res)
	}
	want := "[s1 s2 undo-s2 undo-s1]"
	if fmt.Sprint(events) != want {
		t.Fatalf("events = %v, want %v", events, want)
	}
}

func TestAlternativesPreferenceOrder(t *testing.T) {
	m := newMem(t)
	oid := seed(t, m, []byte("-"))
	res, err := New("flight").
		Alternatives("book-flight",
			Task{Name: "Delta", Action: fail("full")},
			Task{Name: "United", Action: set(oid, "United")},
			Task{Name: "American", Action: set(oid, "American")},
		).Run(m)
	if err != nil || res.Err() != nil {
		t.Fatalf("err=%v resErr=%v", err, res.Err())
	}
	if res.Steps[0].Chosen != "United" {
		t.Fatalf("chosen = %q, want United (preference order)", res.Steps[0].Chosen)
	}
	if readObj(t, m, oid) != "United" {
		t.Fatal("wrong alternative committed")
	}
}

func TestOptionalStepFailureTolerated(t *testing.T) {
	m := newMem(t)
	a := seed(t, m, []byte("-"))
	res, err := New("optional").
		Step(Task{Name: "required", Action: set(a, "done")}).
		Step(Task{Name: "car", Action: fail("no cars")}).Optional().
		Run(m)
	if err != nil || res.Err() != nil {
		t.Fatalf("err=%v resErr=%v", err, res.Err())
	}
	if len(res.Compensated) != 0 {
		t.Fatal("optional failure triggered compensation")
	}
	if readObj(t, m, a) != "done" {
		t.Fatal("required step lost")
	}
}

func TestRaceFirstCompletionWins(t *testing.T) {
	m := newMem(t)
	oid := seed(t, m, []byte("-"))
	slowRelease := make(chan struct{})
	defer close(slowRelease)
	res, err := New("race").
		Race("car",
			Task{Name: "slow", Action: func(tx *asset.Tx) error {
				<-slowRelease
				return tx.Write(oid, []byte("slow"))
			}},
			Task{Name: "fast", Action: set(oid, "fast")},
		).Run(m)
	if err != nil || res.Err() != nil {
		t.Fatalf("err=%v resErr=%v", err, res.Err())
	}
	if res.Steps[0].Chosen != "fast" {
		t.Fatalf("winner = %q, want fast", res.Steps[0].Chosen)
	}
	if readObj(t, m, oid) != "fast" {
		t.Fatalf("object = %q (loser committed?)", readObj(t, m, oid))
	}
}

func TestRaceAllFail(t *testing.T) {
	m := newMem(t)
	res, err := New("race").
		Race("car", Task{Name: "a", Action: fail("x")}, Task{Name: "b", Action: fail("y")}).
		Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err() == nil {
		t.Fatal("race with no finisher succeeded")
	}
}

func TestCompensationRetriesUntilCommit(t *testing.T) {
	m := newMem(t)
	var attempts atomic.Int32
	res, err := New("retry").
		Step(Task{
			Name:   "s1",
			Action: func(tx *asset.Tx) error { return nil },
			Compensate: func(tx *asset.Tx) error {
				if attempts.Add(1) < 4 {
					return errors.New("transient")
				}
				return nil
			},
		}).
		Step(Task{Name: "s2", Action: fail("down")}).
		Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if attempts.Load() != 4 || len(res.Compensated) != 1 {
		t.Fatalf("attempts=%d compensated=%v", attempts.Load(), res.Compensated)
	}
}

// TestConferenceWorkflow reproduces the appendix's X_conference program
// end to end (experiment E13): preference-ordered flights, a required
// hotel with flight compensation on failure, and an optional car-rental
// race.
func TestConferenceWorkflow(t *testing.T) {
	type fixture struct {
		m                        *asset.Manager
		flight, hotel, car       asset.OID
		deltaFull, unitedFull    bool
		americanFull, hotelFull  bool
		nationalFail, avisFail   bool
		nationalSlow, avisSlowCh chan struct{}
	}
	build := func(t *testing.T, f *fixture) *Workflow {
		m := f.m
		book := func(name string, full *bool, oid asset.OID, val string) Task {
			return Task{
				Name: name,
				Action: func(tx *asset.Tx) error {
					if *full {
						return fmt.Errorf("%s: sold out", name)
					}
					return tx.Write(oid, []byte(val))
				},
				Compensate: func(tx *asset.Tx) error { return tx.Write(oid, []byte("-")) },
			}
		}
		_ = m
		car := func(name string, failFlag *bool, gate chan struct{}) Task {
			return Task{
				Name: name,
				Action: func(tx *asset.Tx) error {
					if gate != nil {
						<-gate
					}
					if *failFlag {
						return fmt.Errorf("%s: no cars", name)
					}
					return tx.Write(f.car, []byte(name))
				},
			}
		}
		return New("X_conference").
			Alternatives("flight",
				book("Delta", &f.deltaFull, f.flight, "Delta 6/11-6/14"),
				book("United", &f.unitedFull, f.flight, "United 6/11-6/14"),
				book("American", &f.americanFull, f.flight, "American 6/11-6/14"),
			).
			Step(book("Equator", &f.hotelFull, f.hotel, "Equator 6/11-6/14")).
			Race("car-rental",
				car("National", &f.nationalFail, f.nationalSlow),
				car("Avis", &f.avisFail, f.avisSlowCh),
			).Optional()
	}
	newFixture := func(t *testing.T) *fixture {
		m := newMem(t)
		return &fixture{
			m:      m,
			flight: seed(t, m, []byte("-")),
			hotel:  seed(t, m, []byte("-")),
			car:    seed(t, m, []byte("-")),
		}
	}

	t.Run("all-preferred-available", func(t *testing.T) {
		f := newFixture(t)
		res, err := build(t, f).Run(f.m)
		if err != nil || res.Err() != nil {
			t.Fatalf("err=%v resErr=%v", err, res.Err())
		}
		if got := readObj(t, f.m, f.flight); got != "Delta 6/11-6/14" {
			t.Fatalf("flight = %q", got)
		}
		if got := readObj(t, f.m, f.hotel); got != "Equator 6/11-6/14" {
			t.Fatalf("hotel = %q", got)
		}
		if got := readObj(t, f.m, f.car); got != "National" && got != "Avis" {
			t.Fatalf("car = %q", got)
		}
	})

	t.Run("falls-back-to-american", func(t *testing.T) {
		f := newFixture(t)
		f.deltaFull, f.unitedFull = true, true
		res, err := build(t, f).Run(f.m)
		if err != nil || res.Err() != nil {
			t.Fatalf("err=%v resErr=%v", err, res.Err())
		}
		if got := readObj(t, f.m, f.flight); got != "American 6/11-6/14" {
			t.Fatalf("flight = %q, want American", got)
		}
	})

	t.Run("no-flight-cancels-trip", func(t *testing.T) {
		f := newFixture(t)
		f.deltaFull, f.unitedFull, f.americanFull = true, true, true
		res, err := build(t, f).Run(f.m)
		if err != nil {
			t.Fatal(err)
		}
		if res.Err() == nil || res.FailedStep != "flight" {
			t.Fatalf("res = %+v", res)
		}
	})

	t.Run("hotel-failure-compensates-flight", func(t *testing.T) {
		f := newFixture(t)
		f.hotelFull = true
		res, err := build(t, f).Run(f.m)
		if err != nil {
			t.Fatal(err)
		}
		if res.Err() == nil || res.FailedStep != "Equator" {
			t.Fatalf("res = %+v", res)
		}
		if got := readObj(t, f.m, f.flight); got != "-" {
			t.Fatalf("flight = %q, want compensated (-)", got)
		}
		if len(res.Compensated) != 1 {
			t.Fatalf("compensated = %v", res.Compensated)
		}
	})

	t.Run("no-car-trip-proceeds", func(t *testing.T) {
		f := newFixture(t)
		f.nationalFail, f.avisFail = true, true
		res, err := build(t, f).Run(f.m)
		if err != nil || res.Err() != nil {
			t.Fatalf("err=%v resErr=%v", err, res.Err())
		}
		if got := readObj(t, f.m, f.car); got != "-" {
			t.Fatalf("car = %q, want none", got)
		}
		if got := readObj(t, f.m, f.hotel); got != "Equator 6/11-6/14" {
			t.Fatal("trip did not proceed without a car")
		}
	})

	t.Run("avis-wins-when-national-slow", func(t *testing.T) {
		f := newFixture(t)
		f.nationalSlow = make(chan struct{})
		defer close(f.nationalSlow)
		res, err := build(t, f).Run(f.m)
		if err != nil || res.Err() != nil {
			t.Fatalf("err=%v resErr=%v", err, res.Err())
		}
		if got := readObj(t, f.m, f.car); got != "Avis" {
			t.Fatalf("car = %q, want Avis (first to complete wins)", got)
		}
	})
}

func TestParallelAllGroupCommits(t *testing.T) {
	m := newMem(t)
	a := seed(t, m, []byte("-"))
	b := seed(t, m, []byte("-"))
	res, err := New("par").
		ParallelAll("both-sites",
			Task{Name: "siteA", Action: set(a, "A"),
				Compensate: set(a, "-")},
			Task{Name: "siteB", Action: set(b, "B"),
				Compensate: set(b, "-")},
		).Run(m)
	if err != nil || res.Err() != nil {
		t.Fatalf("err=%v resErr=%v", err, res.Err())
	}
	if readObj(t, m, a) != "A" || readObj(t, m, b) != "B" {
		t.Fatal("parallel group effects missing")
	}
	if res.Steps[0].Chosen != "all(2)" {
		t.Fatalf("label = %q", res.Steps[0].Chosen)
	}
}

func TestParallelAllAtomicFailure(t *testing.T) {
	m := newMem(t)
	a := seed(t, m, []byte("-"))
	res, err := New("par").
		ParallelAll("both",
			Task{Name: "good", Action: set(a, "A")},
			Task{Name: "bad", Action: fail("site down")},
		).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err() == nil {
		t.Fatal("group with a failing member succeeded")
	}
	if readObj(t, m, a) != "-" {
		t.Fatal("group abort not atomic")
	}
}

func TestParallelAllCompensatedByLaterFailure(t *testing.T) {
	m := newMem(t)
	a := seed(t, m, []byte("-"))
	b := seed(t, m, []byte("-"))
	res, err := New("par").
		ParallelAll("group",
			Task{Name: "siteA", Action: set(a, "A"), Compensate: set(a, "-")},
			Task{Name: "siteB", Action: set(b, "B"), Compensate: set(b, "-")},
		).
		Step(Task{Name: "later", Action: fail("boom")}).
		Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err() == nil || res.FailedStep != "later" {
		t.Fatalf("res = %+v", res)
	}
	if len(res.Compensated) != 2 {
		t.Fatalf("compensated = %v, want both group members", res.Compensated)
	}
	if readObj(t, m, a) != "-" || readObj(t, m, b) != "-" {
		t.Fatal("group members not compensated")
	}
}
