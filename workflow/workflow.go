// Package workflow implements §3.2.3 of the ASSET paper: long-lived
// activities composed of transaction-like steps with inter-related
// dependencies, compensations, preference-ordered alternatives, optional
// steps, and parallel races ("whichever completes first wins", as in the
// appendix's car-rental reservation). It is the higher-level language the
// paper says could be designed over the primitives; a Workflow compiles
// down to the same initiate/begin/commit/abort/wait sequences the appendix
// program spells out by hand.
package workflow

import (
	"errors"
	"fmt"

	asset "repro"
	"repro/models"
)

// Task is one transactional unit of work with an optional compensating
// transaction that semantically undoes it.
type Task struct {
	Name       string
	Action     asset.TxnFunc
	Compensate asset.TxnFunc
}

// ErrFailed reports that a required step failed and the workflow was
// compensated.
var ErrFailed = errors.New("workflow: activity failed")

// stepKind discriminates the step constructors.
type stepKind int

const (
	kindTask stepKind = iota
	kindAlternatives
	kindRace
	kindParallelAll
)

type step struct {
	name     string
	kind     stepKind
	tasks    []Task
	optional bool
}

// Workflow is an ordered list of steps. Build with New and the fluent
// methods, then Run it.
type Workflow struct {
	name  string
	steps []step
}

// New returns an empty workflow with the given activity name.
func New(name string) *Workflow { return &Workflow{name: name} }

// Step appends a required single-task step.
func (w *Workflow) Step(t Task) *Workflow {
	w.steps = append(w.steps, step{name: t.Name, kind: kindTask, tasks: []Task{t}})
	return w
}

// Alternatives appends a required step that tries the tasks in preference
// order and commits at most one (contingent transactions, §3.1.3 — the
// appendix's Delta/United/American flight preference).
func (w *Workflow) Alternatives(name string, tasks ...Task) *Workflow {
	w.steps = append(w.steps, step{name: name, kind: kindAlternatives, tasks: tasks})
	return w
}

// Race appends a required step that starts every task in parallel and
// commits whichever completes first, aborting the rest (the appendix's
// National-vs-Avis car rental).
func (w *Workflow) Race(name string, tasks ...Task) *Workflow {
	w.steps = append(w.steps, step{name: name, kind: kindRace, tasks: tasks})
	return w
}

// ParallelAll appends a required step whose tasks run in parallel and
// commit as one group (distributed-transaction semantics, §3.1.2): either
// every task commits or none does. On failure nothing from this step needs
// compensating; earlier steps compensate as usual. The step's compensation,
// when triggered by a *later* failure, runs every task's compensation.
func (w *Workflow) ParallelAll(name string, tasks ...Task) *Workflow {
	w.steps = append(w.steps, step{name: name, kind: kindParallelAll, tasks: tasks})
	return w
}

// Optional marks the most recently appended step as optional: its failure
// does not fail the workflow ("if a car cannot be rented, the trip can
// still proceed").
func (w *Workflow) Optional() *Workflow {
	if len(w.steps) > 0 {
		w.steps[len(w.steps)-1].optional = true
	}
	return w
}

// StepResult reports one step's outcome.
type StepResult struct {
	Step      string
	Chosen    string // the task that committed ("" if none)
	Committed bool
}

// Result reports a workflow execution.
type Result struct {
	// Steps holds per-step outcomes in order, up to the failure point.
	Steps []StepResult
	// FailedStep is the required step that failed ("" on success).
	FailedStep string
	// Compensated lists compensations run, in execution (reverse) order.
	Compensated []string
}

// Err returns nil on success and ErrFailed (wrapped) otherwise.
func (r *Result) Err() error {
	if r.FailedStep == "" {
		return nil
	}
	return fmt.Errorf("%w at step %q (%d compensations)", ErrFailed, r.FailedStep, len(r.Compensated))
}

// Run executes the workflow on m. A required step that fails triggers the
// compensations of every previously committed task in reverse order (each
// retried until it commits, like a saga), and the workflow reports failure
// through the result's Err.
func (w *Workflow) Run(m *asset.Manager) (*Result, error) {
	res := &Result{}
	var undoStack []Task // committed tasks with compensations, in order
	for _, s := range w.steps {
		committed, label, err := runStep(m, s)
		if err != nil {
			return res, err // infrastructure error
		}
		if committed == nil {
			if s.optional {
				res.Steps = append(res.Steps, StepResult{Step: s.name})
				continue
			}
			res.FailedStep = s.name
			if err := compensate(m, undoStack, res); err != nil {
				return res, err
			}
			return res, nil
		}
		res.Steps = append(res.Steps, StepResult{Step: s.name, Chosen: label, Committed: true})
		for _, task := range committed {
			if task.Compensate != nil {
				undoStack = append(undoStack, task)
			}
		}
	}
	return res, nil
}

// runStep executes one step. It returns the committed tasks (nil if the
// step failed) and a display label for the result.
func runStep(m *asset.Manager, s step) ([]Task, string, error) {
	switch s.kind {
	case kindTask, kindAlternatives:
		for i := range s.tasks {
			task := s.tasks[i]
			err := models.Atomic(m, task.Action)
			if err == nil {
				return []Task{task}, task.Name, nil
			}
			if !errors.Is(err, asset.ErrAborted) && !errors.Is(err, asset.ErrDeadlock) {
				return nil, "", err
			}
		}
		return nil, "", nil
	case kindRace:
		winner, err := runRace(m, s.tasks)
		if err != nil || winner == nil {
			return nil, "", err
		}
		return []Task{*winner}, winner.Name, nil
	case kindParallelAll:
		fns := make([]asset.TxnFunc, len(s.tasks))
		for i := range s.tasks {
			fns[i] = s.tasks[i].Action
		}
		err := models.Distributed(m, fns...)
		if err == nil {
			return append([]Task(nil), s.tasks...), fmt.Sprintf("all(%d)", len(s.tasks)), nil
		}
		if errors.Is(err, asset.ErrAborted) || errors.Is(err, asset.ErrDeadlock) {
			return nil, "", nil // the group aborted atomically
		}
		return nil, "", err
	default:
		return nil, "", fmt.Errorf("workflow: unknown step kind %d", s.kind)
	}
}

// runRace begins every task in parallel; the first to *complete* is
// committed and the rest are aborted, mirroring the appendix's
//
//	if (wait(t5)) { abort(t6); commit(t5); } else commit(t6);
//
// generalized to n competitors. If every competitor aborts, the race fails.
func runRace(m *asset.Manager, tasks []Task) (*Task, error) {
	if len(tasks) == 0 {
		return nil, nil
	}
	tids := make([]asset.TID, len(tasks))
	for i := range tasks {
		t, err := m.Initiate(tasks[i].Action)
		if err != nil {
			for _, prev := range tids[:i] {
				m.Abort(prev)
			}
			return nil, err
		}
		tids[i] = t
	}
	if err := m.Begin(tids...); err != nil {
		return nil, err
	}
	// One waiter per competitor; completions and aborts both report in.
	type outcome struct {
		idx int
		err error
	}
	ch := make(chan outcome, len(tasks))
	for i, t := range tids {
		//asset:goroutine joined-by=channel
		go func(i int, t asset.TID) { ch <- outcome{i, m.Wait(t)} }(i, t)
	}
	failures := 0
	for failures < len(tasks) {
		o := <-ch
		if o.err != nil {
			failures++
			continue
		}
		// First completion wins: abort everyone else, commit the winner.
		for j, other := range tids {
			if j != o.idx {
				m.Abort(other)
			}
		}
		if err := m.Commit(tids[o.idx]); err != nil {
			// The winner aborted between completion and commit; keep
			// listening for another completion.
			failures++
			continue
		}
		return &tasks[o.idx], nil
	}
	return nil, nil // every competitor aborted
}

// compensate runs the undo stack in reverse order, retrying each
// compensating transaction until it commits.
func compensate(m *asset.Manager, undo []Task, res *Result) error {
	const retries = 100
	for i := len(undo) - 1; i >= 0; i-- {
		task := undo[i]
		var lastErr error
		done := false
		for attempt := 0; attempt < retries; attempt++ {
			if lastErr = models.Atomic(m, task.Compensate); lastErr == nil {
				done = true
				break
			}
		}
		if !done {
			return fmt.Errorf("workflow: compensation %q stuck: %w", task.Name, lastErr)
		}
		res.Compensated = append(res.Compensated, task.Name)
	}
	return nil
}
