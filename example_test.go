package asset_test

import (
	"errors"
	"fmt"

	asset "repro"
	"repro/models"
)

// ExampleOpen shows the paper's §3.1.1 atomic-transaction translation:
// initiate, begin, commit.
func ExampleOpen() {
	m, _ := asset.Open(asset.Config{}) // in-memory
	defer m.Close()

	t, _ := m.Initiate(func(tx *asset.Tx) error {
		oid, err := tx.Create([]byte("hello"))
		if err != nil {
			return err
		}
		data, _ := tx.Read(oid)
		fmt.Printf("created %v = %s\n", oid, data)
		return nil
	})
	m.Begin(t)
	if err := m.Commit(t); err == nil {
		fmt.Println("committed")
	}
	// Output:
	// created ob1 = hello
	// committed
}

// ExampleManager_Delegate shows responsibility transfer: the delegatee's
// commit makes the delegator's write permanent even though the delegator
// aborts.
func ExampleManager_Delegate() {
	m, _ := asset.Open(asset.Config{})
	defer m.Close()
	var oid asset.OID
	models.Atomic(m, func(tx *asset.Tx) error {
		var err error
		oid, err = tx.Create([]byte("v0"))
		return err
	})

	worker, _ := m.Initiate(func(tx *asset.Tx) error { return tx.Write(oid, []byte("worked")) })
	holder, _ := m.Initiate(func(tx *asset.Tx) error { return nil })
	m.Begin(worker, holder)
	m.Wait(worker)
	m.Wait(holder)

	m.Delegate(worker, holder) // all of worker's operations
	m.Abort(worker)            // no longer undoes the delegated write
	m.Commit(holder)

	data, _ := m.Cache().Read(oid)
	fmt.Printf("%s\n", data)
	// Output: worked
}

// ExampleManager_FormDependency shows group commit: committing any member
// commits the whole group.
func ExampleManager_FormDependency() {
	m, _ := asset.Open(asset.Config{})
	defer m.Close()

	t1, _ := m.Initiate(func(tx *asset.Tx) error { return nil })
	t2, _ := m.Initiate(func(tx *asset.Tx) error { return nil })
	m.FormDependency(asset.GC, t1, t2)
	m.Begin(t1, t2)
	m.Commit(t1) // commits t2 as well

	fmt.Println(m.StatusOf(t2))
	// Output: committed
}

// ExampleManager_Permit shows the §3.2.1 cooperation pattern: ti lets tj
// perform a conflicting write without waiting for ti to commit.
func ExampleManager_Permit() {
	m, _ := asset.Open(asset.Config{})
	defer m.Close()
	var oid asset.OID
	models.Atomic(m, func(tx *asset.Tx) error {
		var err error
		oid, err = tx.Create([]byte("draft"))
		return err
	})

	wrote := make(chan struct{})
	hold := make(chan struct{})
	ti, _ := m.Initiate(func(tx *asset.Tx) error {
		if err := tx.Write(oid, []byte("ti's edit")); err != nil {
			return err
		}
		close(wrote)
		<-hold // ti stays active while tj works
		return nil
	})
	tj, _ := m.Initiate(func(tx *asset.Tx) error {
		<-wrote
		return tx.Write(oid, []byte("tj's edit over ti's"))
	})
	m.FormDependency(asset.CD, ti, tj) // tj cannot commit before ti terminates
	m.Begin(ti)
	<-wrote
	m.Permit(ti, tj, []asset.OID{oid}, asset.OpWrite)
	m.Begin(tj)
	m.Wait(tj) // tj's conflicting write proceeded
	close(hold)
	m.Commit(ti)
	m.Commit(tj)

	data, _ := m.Cache().Read(oid)
	fmt.Printf("%s\n", data)
	// Output: tj's edit over ti's
}

// Example_saga shows a compensated failure.
func Example_saga() {
	m, _ := asset.Open(asset.Config{})
	defer m.Close()
	var acct asset.OID
	models.Atomic(m, func(tx *asset.Tx) error {
		var err error
		acct, err = tx.Create([]byte("100"))
		return err
	})

	res, _ := models.NewSaga(m).
		Step("debit",
			func(tx *asset.Tx) error { return tx.Write(acct, []byte("50")) },
			func(tx *asset.Tx) error { return tx.Write(acct, []byte("100")) }).
		Step("ship",
			func(tx *asset.Tx) error { return errors.New("carrier down") }, nil).
		Run()

	fmt.Println("failed step:", res.FailedStep)
	fmt.Println("compensated:", res.Compensated)
	data, _ := m.Cache().Read(acct)
	fmt.Printf("balance: %s\n", data)
	// Output:
	// failed step: ship
	// compensated: [debit]
	// balance: 100
}
