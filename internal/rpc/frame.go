// Package rpc is the wire protocol of the networked ASSET tier: a
// length-prefixed, CRC-guarded binary framing with a compact uvarint
// message codec, plus an error encoding that carries sentinel identity
// (errors.Is membership) across the connection.
//
// Design rules, all driven by fault tolerance:
//
//   - One frame per Write call, so the faultnet message faults (drop,
//     dup, reorder, truncate) operate on exactly one protocol message.
//   - Every frame is CRC32-checked; a truncated or corrupted frame is
//     ErrBadFrame, never a misparse. Connections die loudly, not
//     silently wrong.
//   - Every request carries a session-unique request ID; the server
//     remembers completed responses so a retransmitted request (the
//     client's answer to a lost response) returns the recorded verdict
//     instead of re-executing — exactly-once decisions over
//     at-least-once delivery.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame layout: magic byte, uint32 LE payload length, uint32 LE CRC32
// (IEEE) of the payload, payload.
const (
	frameMagic  = 0xA5
	frameHdrLen = 9
	// MaxFrame bounds a frame's payload; larger lengths mean a corrupt
	// header and kill the connection before a bad length allocates GBs.
	MaxFrame = 1 << 20
)

// ErrBadFrame reports a corrupt frame: wrong magic, ludicrous length, or
// CRC mismatch (the signature of a truncate-mid-frame fault).
var ErrBadFrame = errors.New("rpc: bad frame")

// WriteFrame sends payload as one frame in a single Write call, the
// contract that makes message-granularity fault injection meaningful.
func WriteFrame(w io.Writer, payload []byte) error {
	buf := make([]byte, frameHdrLen+len(payload))
	buf[0] = frameMagic
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[5:9], crc32.ChecksumIEEE(payload))
	copy(buf[frameHdrLen:], payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads and verifies one frame, returning its payload.
// Transport errors pass through; structural damage is ErrBadFrame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != frameMagic {
		return nil, fmt.Errorf("%w: magic %#x", ErrBadFrame, hdr[0])
	}
	n := binary.LittleEndian.Uint32(hdr[1:5])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: length %d exceeds %d", ErrBadFrame, n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		// A short body is how a truncate-mid-frame fault usually lands:
		// the header arrived, the tail never will.
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: truncated body: %w", ErrBadFrame, err)
		}
		return nil, err
	}
	if got := crc32.ChecksumIEEE(payload); got != binary.LittleEndian.Uint32(hdr[5:9]) {
		return nil, fmt.Errorf("%w: crc mismatch", ErrBadFrame)
	}
	return payload, nil
}
