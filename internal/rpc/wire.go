package rpc

import (
	"encoding/binary"
	"fmt"
)

// Op identifies a protocol request kind.
type Op byte

// Protocol operations. Session control first, then the ASSET primitives
// in paper order, then data operations.
const (
	// OpHello opens or resumes a session: Other carries the session
	// token to resume (0 = new session), Mode the server epoch the
	// client last saw (0 = none). The response returns the session token
	// in TID, the server epoch in Val, and the lease TTL in Aux
	// (microseconds).
	OpHello Op = 1 + iota
	// OpHeartbeat renews the session lease; the response's Aux echoes
	// the remaining TTL in microseconds.
	OpHeartbeat
	// OpBye ends the session gracefully, aborting its live transactions.
	OpBye
	// OpCancel withdraws an in-flight request: the server cancels the
	// per-request context of the request named by Other. Fire-and-forget
	// semantics — the cancelled request itself answers (with its result
	// or cancellation error), not OpCancel.
	OpCancel

	// OpInitiate creates a transaction (response TID).
	OpInitiate
	// OpBegin begins TID.
	OpBegin
	// OpCommit commits TID — the one request whose retransmission
	// MUST hit the completed-request table, never re-execute.
	OpCommit
	// OpAbort aborts TID.
	OpAbort
	// OpWait waits for TID to terminate (response Status).
	OpWait
	// OpStatus queries TID's status without waiting (response Status) —
	// the recovery path a reconnecting client uses to learn a verdict
	// its old session never heard.
	OpStatus
	// OpDelegate delegates locks on OID (Mode ops; OID 0 = all) from
	// TID to Other.
	OpDelegate
	// OpPermit grants Other conflict permission on TID's locks.
	OpPermit
	// OpFormDep forms a dependency of kind Mode from TID on Other.
	OpFormDep

	// OpLock acquires Mode on OID for TID.
	OpLock
	// OpRead reads OID (response Data).
	OpRead
	// OpWrite writes Data to OID.
	OpWrite
	// OpCreate creates an object holding Data (response OID).
	OpCreate
	// OpDelete deletes OID.
	OpDelete
	// OpAdd escrow-adds Delta to counter OID.
	OpAdd
	// OpDeclareEscrow declares escrow bounds [Lo, Hi] on OID.
	OpDeclareEscrow
	// OpReadCounter reads counter OID (response Val).
	OpReadCounter

	// OpPrepare asks the manager to prepare the GC closure of the
	// transactions listed in Data (EncodeTIDs) as distributed group Other.
	// Success is the participant's yes vote: the group is durably
	// prepared and immune to unilateral abort.
	OpPrepare
	// OpDecide delivers the coordinator's verdict for group Other: Mode 1
	// commits, 0 aborts. Idempotent under duplication and reordering.
	OpDecide
	// OpVerdictQuery asks the coordinator co-located with this server for
	// the durable verdict on group Other (response Val: 1 commit, 2
	// abort). Querying an undecided group forces a durable abort decision
	// (presumed abort) — the recovery path a restarted participant uses.
	OpVerdictQuery

	opMax
)

var opNames = [...]string{
	OpHello: "hello", OpHeartbeat: "heartbeat", OpBye: "bye", OpCancel: "cancel",
	OpInitiate: "initiate", OpBegin: "begin", OpCommit: "commit", OpAbort: "abort",
	OpWait: "wait", OpStatus: "status", OpDelegate: "delegate", OpPermit: "permit",
	OpFormDep: "formdep", OpLock: "lock", OpRead: "read", OpWrite: "write",
	OpCreate: "create", OpDelete: "delete", OpAdd: "add", OpDeclareEscrow: "declare",
	OpReadCounter: "readcounter",
	OpPrepare:     "prepare", OpDecide: "decide", OpVerdictQuery: "verdictquery",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", byte(o))
}

// Valid reports whether o is a defined operation.
func (o Op) Valid() bool { return o > 0 && o < opMax }

// Request is one client→server message. Fields are op-specific (see the
// Op doc comments); unused fields encode as single zero bytes.
type Request struct {
	// ReqID is the session-unique request ID, monotonically increasing
	// per session. The server's inflight/completed tables key on it.
	ReqID uint64
	// Ack is the highest ReqID for which the client has received (and
	// will never re-ask about) every response — the server's license to
	// prune its completed-request table up to that point.
	Ack   uint64
	Op    Op
	TID   uint64
	OID   uint64
	Other uint64 // peer TID / resumed session token / cancelled ReqID
	Mode  uint64 // lock OpSet / dep type / hello epoch
	Delta int64
	Lo    uint64
	Hi    uint64
	Data  []byte
}

// Response is one server→client message, matched to its request by
// ReqID. Bits==0 means success; otherwise Bits/Msg/RetryAfter decode to
// a *WireError (see errors.go).
type Response struct {
	ReqID uint64
	// Bits is the error encoding: 0 success, bit 0 = generic error,
	// bit i+1 = errors.Is(err, Sentinels[i]).
	Bits uint64
	// RetryAfter is a server backoff hint in microseconds, sent with
	// ErrOverload; the client's retry engine floors its backoff with it.
	RetryAfter uint64
	Msg        string
	TID        uint64 // initiate result / hello session token
	OID        uint64 // create result
	Val        uint64 // counter value / hello epoch
	Aux        uint64 // hello & heartbeat lease TTL (µs)
	Status     byte   // xid.Status for wait/status
	Data       []byte
}

// EncodeRequest serializes r.
func EncodeRequest(r *Request) []byte {
	b := make([]byte, 0, 64+len(r.Data))
	b = binary.AppendUvarint(b, r.ReqID)
	b = binary.AppendUvarint(b, r.Ack)
	b = append(b, byte(r.Op))
	b = binary.AppendUvarint(b, r.TID)
	b = binary.AppendUvarint(b, r.OID)
	b = binary.AppendUvarint(b, r.Other)
	b = binary.AppendUvarint(b, r.Mode)
	b = binary.AppendVarint(b, r.Delta)
	b = binary.AppendUvarint(b, r.Lo)
	b = binary.AppendUvarint(b, r.Hi)
	b = appendBytes(b, r.Data)
	return b
}

// DecodeRequest parses a request payload.
func DecodeRequest(b []byte) (*Request, error) {
	d := &decoder{b: b}
	r := &Request{
		ReqID: d.u64(),
		Ack:   d.u64(),
		Op:    Op(d.byte()),
		TID:   d.u64(),
		OID:   d.u64(),
		Other: d.u64(),
		Mode:  d.u64(),
		Delta: d.i64(),
		Lo:    d.u64(),
		Hi:    d.u64(),
		Data:  d.bytes(),
	}
	if d.err != nil {
		return nil, fmt.Errorf("%w: request: %w", ErrBadFrame, d.err)
	}
	if !r.Op.Valid() {
		return nil, fmt.Errorf("%w: unknown op %d", ErrBadFrame, r.Op)
	}
	return r, nil
}

// EncodeResponse serializes r.
func EncodeResponse(r *Response) []byte {
	b := make([]byte, 0, 64+len(r.Data)+len(r.Msg))
	b = binary.AppendUvarint(b, r.ReqID)
	b = binary.AppendUvarint(b, r.Bits)
	b = binary.AppendUvarint(b, r.RetryAfter)
	b = appendBytes(b, []byte(r.Msg))
	b = binary.AppendUvarint(b, r.TID)
	b = binary.AppendUvarint(b, r.OID)
	b = binary.AppendUvarint(b, r.Val)
	b = binary.AppendUvarint(b, r.Aux)
	b = append(b, r.Status)
	b = appendBytes(b, r.Data)
	return b
}

// DecodeResponse parses a response payload.
func DecodeResponse(b []byte) (*Response, error) {
	d := &decoder{b: b}
	r := &Response{
		ReqID:      d.u64(),
		Bits:       d.u64(),
		RetryAfter: d.u64(),
		Msg:        string(d.bytes()),
		TID:        d.u64(),
		OID:        d.u64(),
		Val:        d.u64(),
		Aux:        d.u64(),
		Status:     d.byte(),
		Data:       d.bytes(),
	}
	if d.err != nil {
		return nil, fmt.Errorf("%w: response: %w", ErrBadFrame, d.err)
	}
	return r, nil
}

func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// EncodeTIDs packs a transaction-id list for an OpPrepare Data field.
func EncodeTIDs(tids []uint64) []byte {
	b := binary.AppendUvarint(nil, uint64(len(tids)))
	for _, t := range tids {
		b = binary.AppendUvarint(b, t)
	}
	return b
}

// DecodeTIDs unpacks an EncodeTIDs list. A truncated or corrupt list
// returns ErrBadFrame — never a silently shortened decode.
func DecodeTIDs(b []byte) ([]uint64, error) {
	d := &decoder{b: b}
	n := d.u64()
	if d.err == nil && n > uint64(len(d.b)) {
		// Each tid takes at least one byte; a count beyond the remaining
		// bytes is corrupt, not merely large.
		d.err = fmt.Errorf("tid count %d exceeds %d remaining bytes", n, len(d.b))
	}
	var tids []uint64
	for i := uint64(0); i < n && d.err == nil; i++ {
		tids = append(tids, d.u64())
	}
	if d.err == nil && len(d.b) != 0 {
		d.err = fmt.Errorf("%d trailing bytes", len(d.b))
	}
	if d.err != nil {
		return nil, fmt.Errorf("%w: tid list: %w", ErrBadFrame, d.err)
	}
	return tids, nil
}

// decoder is a sticky-error cursor over a payload.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.err = fmt.Errorf("short uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.err = fmt.Errorf("short varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) == 0 {
		d.err = fmt.Errorf("short byte")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) bytes() []byte {
	n := d.u64()
	if d.err != nil {
		return nil
	}
	if uint64(len(d.b)) < n {
		d.err = fmt.Errorf("short bytes: want %d have %d", n, len(d.b))
		return nil
	}
	v := d.b[:n:n]
	d.b = d.b[n:]
	return v
}
