package rpc

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func TestDistOpsRoundTrip(t *testing.T) {
	reqs := []*Request{
		{ReqID: 1, Op: OpPrepare, Other: 0xfeed, Data: EncodeTIDs([]uint64{3, 5, 900})},
		{ReqID: 2, Op: OpDecide, Other: 7, Mode: 1},
		{ReqID: 3, Op: OpDecide, Other: 7, Mode: 0},
		{ReqID: 4, Op: OpVerdictQuery, Other: 1 << 60},
	}
	for _, in := range reqs {
		out, err := DecodeRequest(EncodeRequest(in))
		if err != nil {
			t.Fatalf("%v: %v", in.Op, err)
		}
		if len(out.Data) == 0 && len(in.Data) == 0 {
			out.Data, in.Data = nil, nil
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("%v round trip: %+v vs %+v", in.Op, out, in)
		}
	}
	for _, op := range []Op{OpPrepare, OpDecide, OpVerdictQuery} {
		if !op.Valid() {
			t.Fatalf("%v not valid", op)
		}
		if op.String() == "" || op.String()[0] == 'o' && op.String()[1] == 'p' {
			t.Fatalf("%v has no name", op)
		}
	}
}

func TestTIDListRoundTrip(t *testing.T) {
	lists := [][]uint64{nil, {1}, {1, 2, 3}, {1 << 63, 0, 42}}
	for _, in := range lists {
		out, err := DecodeTIDs(EncodeTIDs(in))
		if err != nil {
			t.Fatalf("%v: %v", in, err)
		}
		if len(out) != len(in) {
			t.Fatalf("%v decoded as %v", in, out)
		}
		for i := range in {
			if out[i] != in[i] {
				t.Fatalf("%v decoded as %v", in, out)
			}
		}
	}
	// Every strict prefix of a non-empty encoding must fail with
	// ErrBadFrame — no silent partial decode.
	full := EncodeTIDs([]uint64{7, 300, 1 << 40})
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeTIDs(full[:cut]); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("truncated tid list at %d decoded: %v", cut, err)
		}
	}
	// An absurd count with no bytes behind it is corrupt, not an
	// allocation request.
	if _, err := DecodeTIDs([]byte{0xff, 0xff, 0xff, 0xff, 0x0f}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("huge count decoded: %v", err)
	}
	// Trailing garbage is rejected too.
	if _, err := DecodeTIDs(append(EncodeTIDs([]uint64{1}), 0x00)); !errors.Is(err, ErrBadFrame) {
		t.Fatal("trailing bytes accepted")
	}
}

// FuzzDecodeTIDs drives the tid-list decoder with corrupt inputs: any
// successful decode must be canonical (re-encoding reproduces the input
// exactly), so a truncated or padded frame can never half-decode.
func FuzzDecodeTIDs(f *testing.F) {
	f.Add(EncodeTIDs(nil))
	f.Add(EncodeTIDs([]uint64{1}))
	f.Add(EncodeTIDs([]uint64{3, 5, 900}))
	f.Add(EncodeTIDs([]uint64{1 << 63, 0, 42}))
	f.Add(EncodeTIDs([]uint64{7, 300, 1 << 40})[:3]) // truncated
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x0f})      // absurd count
	f.Add(append(EncodeTIDs([]uint64{1}), 0x00))     // trailing byte
	f.Fuzz(func(t *testing.T, b []byte) {
		tids, err := DecodeTIDs(b)
		if err != nil {
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("non-ErrBadFrame failure: %v", err)
			}
			return
		}
		if !bytes.Equal(EncodeTIDs(tids), b) {
			t.Fatalf("non-canonical decode: %x -> %v", b, tids)
		}
	})
}

// FuzzDecodeRequest covers the full request decoder with the new
// distributed ops seeded; a decode either fails or is total.
func FuzzDecodeRequest(f *testing.F) {
	f.Add(EncodeRequest(&Request{ReqID: 1, Op: OpPrepare, Other: 9, Data: EncodeTIDs([]uint64{3, 5})}))
	f.Add(EncodeRequest(&Request{ReqID: 2, Op: OpDecide, Other: 9, Mode: 1}))
	f.Add(EncodeRequest(&Request{ReqID: 3, Op: OpVerdictQuery, Other: 9}))
	f.Add(EncodeRequest(&Request{ReqID: 4, Op: OpCommit, TID: 8})[:5]) // truncated
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := DecodeRequest(b)
		if err != nil {
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("non-ErrBadFrame failure: %v", err)
			}
			return
		}
		if !r.Op.Valid() {
			t.Fatalf("decoded invalid op %d", r.Op)
		}
	})
}
