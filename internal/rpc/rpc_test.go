package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("asset"), 1000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("got %q want %q", got, p)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("empty stream: %v", err)
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	frame := func() []byte {
		var buf bytes.Buffer
		WriteFrame(&buf, []byte("payload of frame"))
		return buf.Bytes()
	}
	cases := map[string]func([]byte) []byte{
		"bad magic":    func(b []byte) []byte { b[0] = 0x00; return b },
		"flipped bit":  func(b []byte) []byte { b[12] ^= 0x40; return b },
		"bad crc":      func(b []byte) []byte { b[5] ^= 0xFF; return b },
		"huge length":  func(b []byte) []byte { b[3] = 0xFF; b[4] = 0xFF; return b },
		"truncated":    func(b []byte) []byte { return b[:len(b)-4] },
		"short header": func(b []byte) []byte { return b[:5] },
	}
	for name, corrupt := range cases {
		b := corrupt(frame())
		_, err := ReadFrame(bytes.NewReader(b))
		if err == nil {
			t.Fatalf("%s: read succeeded", name)
		}
		// Header cut below 9 bytes is an io error; all structural damage
		// must be ErrBadFrame.
		if name != "short header" && !errors.Is(err, ErrBadFrame) {
			t.Fatalf("%s: %v, want ErrBadFrame", name, err)
		}
	}
}

func TestRequestRoundTrip(t *testing.T) {
	f := func(reqID, ack, tid, oid, other, mode, lo, hi uint64, delta int64, data []byte) bool {
		in := &Request{ReqID: reqID, Ack: ack, Op: OpAdd, TID: tid, OID: oid,
			Other: other, Mode: mode, Delta: delta, Lo: lo, Hi: hi, Data: data}
		out, err := DecodeRequest(EncodeRequest(in))
		if err != nil {
			return false
		}
		if len(out.Data) == 0 && len(in.Data) == 0 {
			out.Data, in.Data = nil, nil
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	f := func(reqID, bits, ra, tid, oid, val, aux uint64, status byte, msg string, data []byte) bool {
		in := &Response{ReqID: reqID, Bits: bits, RetryAfter: ra, Msg: msg,
			TID: tid, OID: oid, Val: val, Aux: aux, Status: status, Data: data}
		out, err := DecodeResponse(EncodeResponse(in))
		if err != nil {
			return false
		}
		if len(out.Data) == 0 && len(in.Data) == 0 {
			out.Data, in.Data = nil, nil
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeRequest([]byte{0x01}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short request: %v", err)
	}
	if _, err := DecodeResponse([]byte{0x80}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short response: %v", err)
	}
	// Valid shape, invalid op.
	r := EncodeRequest(&Request{Op: Op(200)})
	if _, err := DecodeRequest(r); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad op: %v", err)
	}
	// Claimed bytes length longer than the buffer.
	if _, err := DecodeResponse([]byte{1, 0, 0, 0xFF}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("overlong bytes: %v", err)
	}
}

func TestWireErrorPreservesSentinels(t *testing.T) {
	// Multi-sentinel identity: an abort caused by manager close must
	// answer errors.Is for both, plus the generic retryable tag it rode
	// in with.
	orig := fmt.Errorf("%w: shutting down: %w", core.ErrAborted, core.ErrClosed)
	var resp Response
	resp.SetError(orig, 0)
	err := resp.Err()
	if err == nil {
		t.Fatal("nil error decoded")
	}
	for _, want := range []error{core.ErrAborted, core.ErrClosed} {
		if !errors.Is(err, want) {
			t.Fatalf("lost sentinel %v across the wire", want)
		}
	}
	for _, not := range []error{core.ErrDeadlock, core.ErrOverload, core.ErrEscrow} {
		if errors.Is(err, not) {
			t.Fatalf("gained sentinel %v across the wire", not)
		}
	}
	if err.Error() != orig.Error() {
		t.Fatalf("message %q, want %q", err.Error(), orig.Error())
	}
}

func TestWireErrorRetryableClassification(t *testing.T) {
	// The PR-3 retry policy must see through the wire encoding: what was
	// retryable server-side stays retryable client-side, and vice versa.
	cases := []struct {
		err  error
		want bool
	}{
		{core.ErrDeadlock, true},
		{core.ErrLockTimeout, true},
		{fmt.Errorf("%w (MaxLive=4)", core.ErrOverload), true},
		{core.ErrTxnDeadline, true},
		{core.ErrLeaseExpired, true},
		{core.ErrConnLost, true},
		{core.ErrAborted, false},
		{core.ErrUnknownOutcome, false},
		{core.ErrNoObject, false},
		{errors.New("opaque server failure"), false},
	}
	for _, c := range cases {
		var resp Response
		resp.SetError(c.err, 0)
		if got := core.Retryable(resp.Err()); got != c.want {
			t.Fatalf("Retryable(wire(%v)) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestRetryAfterHint(t *testing.T) {
	var resp Response
	resp.SetError(core.ErrOverload, 1500*time.Microsecond)
	err := resp.Err()
	if got := RetryAfterHint(err); got != 1500*time.Microsecond {
		t.Fatalf("hint = %v", got)
	}
	if got := RetryAfterHint(fmt.Errorf("wrapped: %w", err)); got != 1500*time.Microsecond {
		t.Fatalf("wrapped hint = %v", got)
	}
	if got := RetryAfterHint(errors.New("plain")); got != 0 {
		t.Fatalf("plain error hint = %v", got)
	}
	out, err2 := DecodeResponse(EncodeResponse(&resp))
	if err2 != nil {
		t.Fatal(err2)
	}
	if got := RetryAfterHint(out.Err()); got != 1500*time.Microsecond {
		t.Fatalf("hint lost in round trip: %v", got)
	}
}

func TestSentinelTableStable(t *testing.T) {
	// The bitmask is wire ABI: position changes silently corrupt error
	// identity between mismatched builds. Pin the first rows and the
	// length floor.
	want := []error{core.ErrAborted, core.ErrAlreadyCommitted, core.ErrNotBegun}
	for i, s := range want {
		if Sentinels[i] != s {
			t.Fatalf("Sentinels[%d] = %v, want %v", i, Sentinels[i], s)
		}
	}
	if len(Sentinels) < 21 {
		t.Fatalf("sentinel table shrank to %d entries", len(Sentinels))
	}
	if len(Sentinels) > 62 {
		t.Fatal("sentinel table exceeds the 64-bit bitmask")
	}
}

func TestOpStrings(t *testing.T) {
	for o := Op(1); o < opMax; o++ {
		if !o.Valid() {
			t.Fatalf("op %d invalid inside range", o)
		}
		if s := o.String(); s == "" || s[0] == 'o' && s[1] == 'p' && s[2] == '(' {
			t.Fatalf("op %d has no name", o)
		}
	}
	if Op(0).Valid() || Op(200).Valid() {
		t.Fatal("out-of-range op valid")
	}
}
