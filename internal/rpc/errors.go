package rpc

import (
	"errors"
	"time"

	"repro/internal/core"
)

// Sentinels is the wire error table: the fixed, ordered list of sentinel
// errors whose errors.Is membership survives the network. The server
// encodes an error as a bitmask over this table (bit i+1 = sentinel i;
// bit 0 = "some error"), and the client-side WireError answers errors.Is
// against the same table — so errors.Is(err, asset.ErrAborted) works on
// both sides of the wire, including multi-sentinel identities like an
// abort caused by manager close.
//
// Order is wire ABI: append only, never reorder.
var Sentinels = []error{
	core.ErrAborted,
	core.ErrAlreadyCommitted,
	core.ErrNotBegun,
	core.ErrAlreadyBegun,
	core.ErrUnknownTxn,
	core.ErrTooManyTxns,
	core.ErrTerminated,
	core.ErrNoObject,
	core.ErrObjectExists,
	core.ErrClosed,
	core.ErrNotQuiescent,
	core.ErrOverload,
	core.ErrTxnDeadline,
	core.ErrRetryable,
	core.ErrDeadlock,
	core.ErrLockTimeout,
	core.ErrEscrow,
	core.ErrDependencyCycle,
	core.ErrLeaseExpired,
	core.ErrConnLost,
	core.ErrUnknownOutcome,
	core.ErrPrepared,
	core.ErrUnknownGroup,
}

// WireError is an error decoded from a response: the message text plus
// the sentinel membership bits, so errors.Is classification (and the
// Retryable policy built on it) is transparent to the network.
type WireError struct {
	Bits uint64
	Msg  string
	// RetryAfterHint is the server's requested backoff floor (from an
	// overload shed); zero when the server sent none.
	RetryAfterHint time.Duration
}

// Error returns the server-side message text.
func (e *WireError) Error() string {
	if e.Msg == "" {
		return "rpc: remote error"
	}
	return e.Msg
}

// Is reports sentinel membership recorded at encode time.
func (e *WireError) Is(target error) bool {
	for i, s := range Sentinels {
		if target == s && e.Bits&(1<<(uint(i)+1)) != 0 {
			return true
		}
	}
	return false
}

// EncodeError flattens err into wire bits + message. A nil err is 0.
func EncodeError(err error) (bits uint64, msg string) {
	if err == nil {
		return 0, ""
	}
	bits = 1
	for i, s := range Sentinels {
		if errors.Is(err, s) {
			bits |= 1 << (uint(i) + 1)
		}
	}
	return bits, err.Error()
}

// Err materializes the response's error, or nil on success.
func (r *Response) Err() error {
	if r.Bits == 0 {
		return nil
	}
	return &WireError{
		Bits:           r.Bits,
		Msg:            r.Msg,
		RetryAfterHint: time.Duration(r.RetryAfter) * time.Microsecond,
	}
}

// SetError records err (and an optional backoff hint) on the response.
func (r *Response) SetError(err error, retryAfter time.Duration) {
	r.Bits, r.Msg = EncodeError(err)
	if retryAfter > 0 {
		r.RetryAfter = uint64(retryAfter / time.Microsecond)
	}
}

// RetryAfterHint extracts a server backoff floor from err, if one rode
// along a WireError; the client retry engine plugs this into
// RunOptions.RetryAfter.
func RetryAfterHint(err error) time.Duration {
	var we *WireError
	if errors.As(err, &we) {
		return we.RetryAfterHint
	}
	return 0
}
