package faultfs

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// CrashMode selects which unsynced writes survive in a crash image. Real
// crashes land anywhere between the two extremes; recovery must be
// correct at both corners (plus torn boundary writes, which Rule.Keep
// and ActTorn model).
type CrashMode int

const (
	// KeepAll assumes the OS wrote every issued write through to disk
	// before dying: all non-lost unsynced writes survive, the crashing
	// write itself torn to its Keep prefix.
	KeepAll CrashMode = iota
	// DropUnsynced assumes nothing left the OS cache: only explicitly
	// fsynced state survives.
	DropUnsynced
)

func (m CrashMode) String() string {
	if m == DropUnsynced {
		return "drop-unsynced"
	}
	return "keep-all"
}

type opKind uint8

const (
	opWrite opKind = iota
	opTrunc
)

// pendingOp is one unsynced mutation of a file.
type pendingOp struct {
	seq  int
	kind opKind
	off  int64  // opWrite
	data []byte // opWrite
	size int64  // opTrunc
	keep int    // torn write: surviving prefix at crash; -1 = all
	lost bool   // dropped by a failed fsync; will never become durable
}

// memNode is the shared state of one file.
type memNode struct {
	name    string
	data    []byte // current content: what reads (the "page cache") see
	durable []byte // content as of the last successful sync
	pending []pendingOp
}

// MemFS is an in-memory filesystem with an explicit durability model and
// optional fault injection. All methods are safe for concurrent use.
//
// Durability is modeled at two levels, the way a disk plus directory
// metadata behaves: file *content* becomes durable on File.Sync, and a
// file's *directory entry* (its creation, rename, or removal) becomes
// durable on FS.SyncDir of the parent directory. A fully-fsynced file
// whose entry was never dir-synced vanishes from a DropUnsynced crash
// image — the real POSIX failure mode a missing directory fsync leaves.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memNode
	// durFiles is the durable namespace: the entries (and the nodes they
	// pointed at) as of each directory's last SyncDir. A rename swaps the
	// cache-visible entry immediately but the durable one only at the
	// next SyncDir, exactly like a journaling filesystem's unsynced
	// directory update.
	durFiles map[string]*memNode
	dirs     map[string]bool
	script   *Script
	ops      int // durability-relevant ops issued (writes, truncates, syncs)
	crashed  bool
}

// NewMem returns an empty in-memory filesystem.
func NewMem() *MemFS {
	return &MemFS{
		files:    make(map[string]*memNode),
		durFiles: make(map[string]*memNode),
		dirs:     make(map[string]bool),
	}
}

// SetScript installs the fault script (nil disables injection).
func (m *MemFS) SetScript(s *Script) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.script = s
}

// Ops reports how many durability-relevant operations (writes,
// truncates, syncs) have been issued — the sweep domain for a crash
// matrix.
func (m *MemFS) Ops() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// Crashed reports whether an ActCrash rule has fired.
func (m *MemFS) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// OpenFile opens or creates the file at path.
func (m *MemFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	path = filepath.Clean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, &os.PathError{Op: "open", Path: path, Err: ErrCrashed}
	}
	n, ok := m.files[path]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, &os.PathError{Op: "open", Path: path, Err: fs.ErrNotExist}
		}
		n = &memNode{name: path}
		m.files[path] = n
	}
	h := &memHandle{fs: m, node: n}
	if flag&os.O_TRUNC != 0 && len(n.data) > 0 {
		m.mu.Unlock()
		err := h.Truncate(0)
		m.mu.Lock()
		if err != nil {
			return nil, err
		}
	}
	return h, nil
}

// MkdirAll records the directory; MemFS does not enforce parent
// existence.
func (m *MemFS) MkdirAll(path string, perm os.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	m.dirs[filepath.Clean(path)] = true
	return nil
}

// Remove deletes the file at path from the cache-visible namespace. The
// removal's durability follows the directory model: until the parent is
// SyncDir'd, a DropUnsynced crash image resurrects the file (with its
// last-synced content), as an unsynced unlink would on a real disk. A
// crash injected on the remove leaves the file untouched.
func (m *MemFS) Remove(path string) error {
	path = filepath.Clean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	m.ops++
	if rule, ok := m.script.decide(OpRemove, path); ok {
		switch rule.Action {
		case ActError:
			return rule.error()
		case ActCrash:
			m.crashed = true
			return ErrCrashed
		}
	}
	if _, ok := m.files[path]; !ok {
		return &os.PathError{Op: "remove", Path: path, Err: fs.ErrNotExist}
	}
	delete(m.files, path)
	return nil
}

// Rename atomically renames oldpath to newpath in the cache-visible
// namespace, replacing any existing file there. The rename is atomic but
// NOT immediately durable: a DropUnsynced crash image rolls the
// directory back to its last SyncDir'd state (the old names, each with
// its own synced content), so an atomic-replace protocol must SyncDir
// after the rename before acting on it. A crash injected on the rename
// itself leaves both names as they were.
func (m *MemFS) Rename(oldpath, newpath string) error {
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	m.ops++
	// Matched against the destination: fault scripts target the name a
	// recovering opener would look for (e.g. "wal.manifest").
	if rule, ok := m.script.decide(OpRename, newpath); ok {
		switch rule.Action {
		case ActError:
			return rule.error()
		case ActCrash:
			m.crashed = true
			return ErrCrashed
		}
	}
	n, ok := m.files[oldpath]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	delete(m.files, oldpath)
	n.name = newpath
	m.files[newpath] = n
	return nil
}

// SyncDir folds the directory's pending entry mutations into the
// durable namespace: files created or renamed into path become
// crash-durable entries, and entries removed or renamed away are
// durably forgotten. File content durability is untouched — entries
// and content sync independently, as on a real disk.
func (m *MemFS) SyncDir(path string) error {
	path = filepath.Clean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	m.ops++
	if rule, ok := m.script.decide(OpSyncDir, path); ok {
		switch rule.Action {
		case ActError:
			return rule.error()
		case ActCrash:
			m.crashed = true
			return ErrCrashed
		}
	}
	for p, n := range m.files {
		if filepath.Dir(p) == path {
			m.durFiles[p] = n
		}
	}
	for p := range m.durFiles {
		if filepath.Dir(p) != path {
			continue
		}
		if _, live := m.files[p]; !live {
			delete(m.durFiles, p)
		}
	}
	return nil
}

// ReadImage returns a copy of the file's current ("page cache") content.
func (m *MemFS) ReadImage(path string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.files[filepath.Clean(path)]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), n.data...), true
}

// CrashImage reconstructs the filesystem a rebooted machine would find.
// In KeepAll mode the OS is assumed to have written everything through
// before dying: the cache-visible namespace survives, each file holding
// its synced image plus unsynced writes (except those dropped by a
// failed fsync), with torn writes cut to their surviving prefix. In
// DropUnsynced mode nothing unsynced survives: only the SyncDir'd
// directory entries exist, each holding only its last-synced content —
// so a created or renamed file whose directory was never synced is
// simply absent, and an unsynced removal resurrects the old file. The
// result is a fresh fault-free MemFS suitable for reopening the
// database.
func (m *MemFS) CrashImage(mode CrashMode) *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := NewMem()
	src := m.files
	if mode == DropUnsynced {
		src = m.durFiles
	}
	for path, n := range src {
		img := append([]byte(nil), n.durable...)
		if mode == KeepAll {
			for _, op := range n.pending {
				if op.lost {
					continue
				}
				img = applyImage(img, op, true)
			}
		}
		node := &memNode{name: path, data: img, durable: append([]byte(nil), img...)}
		out.files[path] = node
		out.durFiles[path] = node
	}
	for d := range m.dirs {
		out.dirs[d] = true
	}
	return out
}

// applyImage applies one mutation to an image. atCrash honors torn-write
// prefixes; folding at sync applies writes in full.
func applyImage(img []byte, op pendingOp, atCrash bool) []byte {
	switch op.kind {
	case opTrunc:
		if int64(len(img)) > op.size {
			return img[:op.size]
		}
		return append(img, make([]byte, op.size-int64(len(img)))...)
	default:
		n := len(op.data)
		if atCrash && op.keep >= 0 && op.keep < n {
			n = op.keep
		}
		end := op.off + int64(n)
		if int64(len(img)) < end {
			img = append(img, make([]byte, end-int64(len(img)))...)
		}
		copy(img[op.off:end], op.data[:n])
		return img
	}
}

// write runs one write through the script and records it.
func (m *MemFS) write(n *memNode, off int64, p []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return 0, ErrCrashed
	}
	m.ops++
	op := pendingOp{seq: m.ops, kind: opWrite, off: off, data: append([]byte(nil), p...), keep: -1}
	rule, ok := m.script.decide(OpWrite, n.name)
	if ok {
		switch rule.Action {
		case ActError:
			return 0, rule.error()
		case ActShortWrite:
			k := rule.Keep
			if k < 0 {
				k = 0
			}
			if k > len(p) {
				k = len(p)
			}
			op.data = op.data[:k]
			n.record(op)
			return k, rule.error()
		case ActTorn:
			op.keep = rule.Keep
			n.record(op)
			return len(p), nil
		case ActCrash:
			m.crashed = true
			if rule.Keep >= 0 {
				op.keep = rule.Keep
				n.record(op)
			}
			return 0, ErrCrashed
		}
	}
	n.record(op)
	return len(p), nil
}

// truncate runs one truncation through the script and records it.
func (m *MemFS) truncate(n *memNode, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	if size < 0 {
		return &os.PathError{Op: "truncate", Path: n.name, Err: os.ErrInvalid}
	}
	m.ops++
	rule, ok := m.script.decide(OpTruncate, n.name)
	if ok {
		switch rule.Action {
		case ActError:
			return rule.error()
		case ActCrash:
			m.crashed = true
			return ErrCrashed
		}
	}
	n.record(pendingOp{seq: m.ops, kind: opTrunc, size: size, keep: -1})
	return nil
}

// sync folds the file's pending mutations into its durable image. A
// failed sync models the fsync-gate: the kernel reported the error and
// marked the dirty pages clean, so those writes are permanently lost to
// durability even though reads still see them.
func (m *MemFS) sync(n *memNode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	m.ops++
	rule, ok := m.script.decide(OpSync, n.name)
	if ok {
		switch rule.Action {
		case ActError:
			for i := range n.pending {
				n.pending[i].lost = true
			}
			return rule.error()
		case ActCrash:
			m.crashed = true
			return ErrCrashed
		}
	}
	for _, op := range n.pending {
		if !op.lost {
			n.durable = applyImage(n.durable, op, false)
		}
	}
	n.pending = nil
	return nil
}

// record applies op to the current content and queues it as unsynced.
func (n *memNode) record(op pendingOp) {
	n.data = applyImage(n.data, op, false)
	n.pending = append(n.pending, op)
}

// read serves Read/ReadAt through the script.
func (m *MemFS) read(n *memNode, off int64, p []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return 0, ErrCrashed
	}
	if rule, ok := m.script.decide(OpRead, n.name); ok && rule.Action == ActError {
		return 0, rule.error()
	}
	if off >= int64(len(n.data)) {
		return 0, io.EOF
	}
	cnt := copy(p, n.data[off:])
	if cnt < len(p) {
		return cnt, io.EOF
	}
	return cnt, nil
}

// memHandle is one open handle on a node; handles share node state but
// keep their own offset.
type memHandle struct {
	fs   *MemFS
	node *memNode

	mu     sync.Mutex
	off    int64
	closed bool
}

func (h *memHandle) checkOpen() error {
	if h.closed {
		return os.ErrClosed
	}
	return nil
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.checkOpen(); err != nil {
		return 0, err
	}
	n, err := h.fs.read(h.node, h.off, p)
	h.off += int64(n)
	return n, err
}

func (h *memHandle) ReadAt(p []byte, off int64) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.checkOpen(); err != nil {
		return 0, err
	}
	return h.fs.read(h.node, off, p)
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.checkOpen(); err != nil {
		return 0, err
	}
	n, err := h.fs.write(h.node, h.off, p)
	h.off += int64(n)
	return n, err
}

func (h *memHandle) WriteAt(p []byte, off int64) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.checkOpen(); err != nil {
		return 0, err
	}
	return h.fs.write(h.node, off, p)
}

func (h *memHandle) Seek(offset int64, whence int) (int64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.checkOpen(); err != nil {
		return 0, err
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = h.off
	case io.SeekEnd:
		h.fs.mu.Lock()
		base = int64(len(h.node.data))
		h.fs.mu.Unlock()
	default:
		return 0, os.ErrInvalid
	}
	if base+offset < 0 {
		return 0, os.ErrInvalid
	}
	h.off = base + offset
	return h.off, nil
}

func (h *memHandle) Truncate(size int64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.checkOpen(); err != nil {
		return err
	}
	return h.fs.truncate(h.node, size)
}

func (h *memHandle) Sync() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.checkOpen(); err != nil {
		return err
	}
	return h.fs.sync(h.node)
}

func (h *memHandle) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return os.ErrClosed
	}
	h.closed = true
	return nil
}

func (h *memHandle) Stat() (os.FileInfo, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.checkOpen(); err != nil {
		return nil, err
	}
	h.fs.mu.Lock()
	size := int64(len(h.node.data))
	h.fs.mu.Unlock()
	return memInfo{name: filepath.Base(h.node.name), size: size}, nil
}

// memInfo is a deterministic os.FileInfo for in-memory files.
type memInfo struct {
	name string
	size int64
}

func (i memInfo) Name() string       { return i.name }
func (i memInfo) Size() int64        { return i.size }
func (i memInfo) Mode() os.FileMode  { return 0o644 }
func (i memInfo) ModTime() time.Time { return time.Time{} }
func (i memInfo) IsDir() bool        { return false }
func (i memInfo) Sys() any           { return nil }
