package faultfs

import (
	"bytes"
	"errors"
	"io"
	"os"
	"testing"
)

func mustOpen(t *testing.T, fsys FS, path string) File {
	t.Helper()
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestMemFSBasicIO(t *testing.T) {
	m := NewMem()
	f := mustOpen(t, m, "/db/a")
	if n, err := f.Write([]byte("hello ")); n != 6 || err != nil {
		t.Fatalf("write = %d,%v", n, err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(f)
	if err != nil || string(got) != "hello world" {
		t.Fatalf("read = %q,%v", got, err)
	}
	var at [5]byte
	if n, err := f.ReadAt(at[:], 6); n != 5 || err != nil || string(at[:]) != "world" {
		t.Fatalf("readat = %q,%d,%v", at[:], n, err)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatal(err)
	}
	st, err := f.Stat()
	if err != nil || st.Size() != 5 {
		t.Fatalf("stat = %v,%v", st, err)
	}
	// WriteAt past EOF zero-fills the gap.
	if _, err := f.WriteAt([]byte("x"), 8); err != nil {
		t.Fatal(err)
	}
	img, _ := m.ReadImage("/db/a")
	if !bytes.Equal(img, []byte("hello\x00\x00\x00x")) {
		t.Fatalf("image = %q", img)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("y")); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("write after close = %v", err)
	}
}

func TestMemFSNotExist(t *testing.T) {
	m := NewMem()
	_, err := m.OpenFile("/missing", os.O_RDONLY, 0)
	if !os.IsNotExist(err) {
		t.Fatalf("want not-exist, got %v", err)
	}
}

func TestCrashImageModes(t *testing.T) {
	m := NewMem()
	f := mustOpen(t, m, "/a")
	if err := m.SyncDir("/"); err != nil { // make the entry durable
		t.Fatal(err)
	}
	f.Write([]byte("durable."))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("pending."))

	if img, _ := m.CrashImage(DropUnsynced).ReadImage("/a"); string(img) != "durable." {
		t.Fatalf("drop-unsynced image = %q", img)
	}
	if img, _ := m.CrashImage(KeepAll).ReadImage("/a"); string(img) != "durable.pending." {
		t.Fatalf("keep-all image = %q", img)
	}
}

func TestFailedSyncLosesWritesForever(t *testing.T) {
	m := NewMem()
	m.SetScript(NewScript(Rule{Op: OpSync, Nth: 1, Action: ActError}))
	f := mustOpen(t, m, "/a")
	if err := m.SyncDir("/"); err != nil { // OpSyncDir doesn't trip the OpSync rule
		t.Fatal(err)
	}
	f.Write([]byte("doomed."))
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync = %v", err)
	}
	// Reads (the page cache) still see the write...
	if img, _ := m.ReadImage("/a"); string(img) != "doomed." {
		t.Fatalf("cache image = %q", img)
	}
	f.Write([]byte("later."))
	// ...and a later successful sync persists only post-failure writes:
	// the lost bytes leave a zero hole, as on a real fsync-gate kernel.
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	img, _ := m.CrashImage(DropUnsynced).ReadImage("/a")
	want := append(make([]byte, 7), []byte("later.")...)
	if !bytes.Equal(img, want) {
		t.Fatalf("durable image = %q, want %q", img, want)
	}
}

func TestShortAndTornWrites(t *testing.T) {
	m := NewMem()
	m.SetScript(NewScript(
		Rule{Op: OpWrite, Nth: 1, Action: ActShortWrite, Keep: 3},
		Rule{Op: OpWrite, Nth: 2, Action: ActTorn, Keep: 2},
	))
	f := mustOpen(t, m, "/a")
	if n, err := f.Write([]byte("abcdef")); n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("short write = %d,%v", n, err)
	}
	// The torn write reads back whole before the crash...
	if n, err := f.Write([]byte("XY")); n != 2 || err != nil {
		t.Fatalf("torn write = %d,%v", n, err)
	}
	if img, _ := m.ReadImage("/a"); string(img) != "abcXY" {
		t.Fatalf("cache image = %q", img)
	}
	// ...but only its Keep prefix survives a crash (here all 2 bytes; a
	// Keep shorter than the write leaves the tail at its old content).
	if img, _ := m.CrashImage(KeepAll).ReadImage("/a"); string(img) != "abcXY" {
		t.Fatalf("crash image = %q", img)
	}
}

func TestTornWritePrefixSurvival(t *testing.T) {
	m := NewMem()
	m.SetScript(NewScript(Rule{Op: OpWrite, Nth: 2, Action: ActTorn, Keep: 2}))
	f := mustOpen(t, m, "/a")
	f.Write([]byte("aaaa"))
	f.WriteAt([]byte("ZZZZ"), 0) // torn: only "ZZ" survives a crash
	if img, _ := m.CrashImage(KeepAll).ReadImage("/a"); string(img) != "ZZaa" {
		t.Fatalf("crash image = %q", img)
	}
}

func TestCrashFreezesFilesystem(t *testing.T) {
	m := NewMem()
	m.SetScript(NewScript(Rule{Op: OpAny, Nth: 3, Action: ActCrash}))
	f := mustOpen(t, m, "/a")
	f.Write([]byte("one."))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("two.")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashing write = %v", err)
	}
	if !m.Crashed() {
		t.Fatal("fs not crashed")
	}
	if _, err := f.Write([]byte("three.")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write = %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync = %v", err)
	}
	if _, err := m.OpenFile("/b", os.O_CREATE|os.O_RDWR, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open = %v", err)
	}
	// The crashing write never took effect.
	if img, _ := m.CrashImage(KeepAll).ReadImage("/a"); string(img) != "one." {
		t.Fatalf("crash image = %q", img)
	}
}

func TestCrashWithTornBoundaryWrite(t *testing.T) {
	m := NewMem()
	m.SetScript(NewScript(Rule{Op: OpWrite, Nth: 2, Action: ActCrash, Keep: 1}))
	f := mustOpen(t, m, "/a")
	f.Write([]byte("base"))
	if _, err := f.Write([]byte("XY")); !errors.Is(err, ErrCrashed) {
		t.Fatal(err)
	}
	if img, _ := m.CrashImage(KeepAll).ReadImage("/a"); string(img) != "baseX" {
		t.Fatalf("crash image = %q", img)
	}
	// DropUnsynced drops the boundary write along with everything else.
	if img, _ := m.CrashImage(DropUnsynced).ReadImage("/a"); len(img) != 0 {
		t.Fatalf("drop-unsynced image = %q", img)
	}
}

func TestScriptDeterminismAndPathFilter(t *testing.T) {
	run := func() (int, error) {
		m := NewMem()
		m.SetScript(NewScript(Rule{Op: OpWrite, Path: "target", Nth: 2, Action: ActError}))
		a := mustOpen(t, m, "/other")
		b := mustOpen(t, m, "/target")
		var err error
		writes := 0
		for i := 0; i < 4 && err == nil; i++ {
			if _, err = a.Write([]byte("x")); err != nil {
				break
			}
			writes++
			if _, err = b.Write([]byte("y")); err != nil {
				break
			}
			writes++
		}
		return writes, err
	}
	n1, err1 := run()
	n2, err2 := run()
	if n1 != n2 || !errors.Is(err1, ErrInjected) || !errors.Is(err2, ErrInjected) {
		t.Fatalf("non-deterministic: (%d,%v) vs (%d,%v)", n1, err1, n2, err2)
	}
	if n1 != 3 { // other, target, other succeed; 2nd target write fails
		t.Fatalf("fault fired after %d writes, want 3", n1)
	}
}

func TestRandomScriptIsDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a, b := RandomScript(seed, 50), RandomScript(seed, 50)
		if len(a.rules) != 1 || a.rules[0] != b.rules[0] {
			t.Fatalf("seed %d: %+v vs %+v", seed, a.rules, b.rules)
		}
	}
}

func TestOpsCounterAndReadExclusion(t *testing.T) {
	m := NewMem()
	f := mustOpen(t, m, "/a")
	f.Write([]byte("abc"))
	f.Sync()
	f.Truncate(1)
	var p [1]byte
	f.ReadAt(p[:], 0)
	if m.Ops() != 3 {
		t.Fatalf("ops = %d, want 3 (reads excluded)", m.Ops())
	}
}

// TestDirEntryDurability: a fully-fsynced file whose directory entry was
// never SyncDir'd is absent from a DropUnsynced crash image (the POSIX
// lost-directory-entry failure mode), present in KeepAll, and durable in
// both once the parent directory is synced.
func TestDirEntryDurability(t *testing.T) {
	m := NewMem()
	f := mustOpen(t, m, "/db/a")
	f.Write([]byte("content"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.CrashImage(DropUnsynced).ReadImage("/db/a"); ok {
		t.Fatal("unsynced directory entry survived a drop-unsynced crash")
	}
	if img, ok := m.CrashImage(KeepAll).ReadImage("/db/a"); !ok || string(img) != "content" {
		t.Fatalf("keep-all image = %q,%v", img, ok)
	}
	if err := m.SyncDir("/db"); err != nil {
		t.Fatal(err)
	}
	if img, ok := m.CrashImage(DropUnsynced).ReadImage("/db/a"); !ok || string(img) != "content" {
		t.Fatalf("post-SyncDir drop-unsynced image = %q,%v", img, ok)
	}
}

// TestRenameEntryDurability models the atomic-replace protocol the WAL
// manifest uses: until the directory is synced, a crash rolls the name
// back to the old file; after SyncDir the new file owns the name.
func TestRenameEntryDurability(t *testing.T) {
	m := NewMem()
	old := mustOpen(t, m, "/db/m")
	old.Write([]byte("old"))
	old.Sync()
	if err := m.SyncDir("/db"); err != nil {
		t.Fatal(err)
	}
	tmp := mustOpen(t, m, "/db/m.tmp")
	tmp.Write([]byte("new"))
	tmp.Sync()
	tmp.Close()
	if err := m.Rename("/db/m.tmp", "/db/m"); err != nil {
		t.Fatal(err)
	}
	// Unsynced rename: the durable directory still holds the old file.
	img := m.CrashImage(DropUnsynced)
	if got, _ := img.ReadImage("/db/m"); string(got) != "old" {
		t.Fatalf("pre-SyncDir drop-unsynced /db/m = %q, want old content", got)
	}
	// KeepAll sees the rename (and no leftover tmp).
	img = m.CrashImage(KeepAll)
	if got, _ := img.ReadImage("/db/m"); string(got) != "new" {
		t.Fatalf("keep-all /db/m = %q, want new content", got)
	}
	if _, ok := img.ReadImage("/db/m.tmp"); ok {
		t.Fatal("keep-all image still has the renamed-away tmp")
	}
	if err := m.SyncDir("/db"); err != nil {
		t.Fatal(err)
	}
	img = m.CrashImage(DropUnsynced)
	if got, _ := img.ReadImage("/db/m"); string(got) != "new" {
		t.Fatalf("post-SyncDir drop-unsynced /db/m = %q, want new content", got)
	}
	if _, ok := img.ReadImage("/db/m.tmp"); ok {
		t.Fatal("post-SyncDir image resurrected the tmp file")
	}
}

// TestRemoveEntryDurability: an unsynced unlink resurrects the file in a
// DropUnsynced crash image; SyncDir makes the removal stick.
func TestRemoveEntryDurability(t *testing.T) {
	m := NewMem()
	f := mustOpen(t, m, "/db/a")
	f.Write([]byte("x"))
	f.Sync()
	f.Close()
	if err := m.SyncDir("/db"); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("/db/a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.CrashImage(DropUnsynced).ReadImage("/db/a"); !ok {
		t.Fatal("unsynced removal was durable; the old entry should resurrect")
	}
	if _, ok := m.CrashImage(KeepAll).ReadImage("/db/a"); ok {
		t.Fatal("keep-all image resurrected a removed file")
	}
	if err := m.SyncDir("/db"); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.CrashImage(DropUnsynced).ReadImage("/db/a"); ok {
		t.Fatal("removal not durable after SyncDir")
	}
}

// TestSyncDirFaults: SyncDir is a scriptable crash-sweep point; a crash
// injected on it leaves the directory's pending entries volatile, and an
// injected error folds nothing.
func TestSyncDirFaults(t *testing.T) {
	m := NewMem()
	m.SetScript(NewScript(
		Rule{Op: OpSyncDir, Nth: 1, Action: ActError},
		Rule{Op: OpSyncDir, Nth: 2, Action: ActCrash, Keep: -1},
	))
	f := mustOpen(t, m, "/db/a")
	f.Sync()
	if err := m.SyncDir("/db"); !errors.Is(err, ErrInjected) {
		t.Fatalf("first SyncDir = %v, want injected error", err)
	}
	if _, ok := m.CrashImage(DropUnsynced).ReadImage("/db/a"); ok {
		t.Fatal("failed SyncDir still folded the entry")
	}
	if err := m.SyncDir("/db"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("second SyncDir = %v, want crash", err)
	}
	if !m.Crashed() {
		t.Fatal("fs not crashed")
	}
	if _, ok := m.CrashImage(DropUnsynced).ReadImage("/db/a"); ok {
		t.Fatal("crashing SyncDir folded the entry")
	}
}

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	var fsys FS = OS{}
	if err := fsys.MkdirAll(dir+"/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.OpenFile(dir+"/sub/f", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dir + "/sub"); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.OpenFile(dir+"/nope", os.O_RDONLY, 0); !os.IsNotExist(err) {
		t.Fatalf("want not-exist, got %v", err)
	}
	if err := fsys.Remove(dir + "/sub/f"); err != nil {
		t.Fatal(err)
	}
}
