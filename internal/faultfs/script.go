package faultfs

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
)

// OpKind classifies the filesystem operations a Rule can target.
type OpKind uint8

const (
	// OpWrite matches Write/WriteAt calls.
	OpWrite OpKind = iota
	// OpTruncate matches Truncate calls.
	OpTruncate
	// OpSync matches Sync calls.
	OpSync
	// OpAny matches every durability-relevant operation (writes,
	// truncates, syncs, renames, removes, and directory syncs — the
	// crash-sweep domain). Reads are never matched by OpAny; target them
	// with OpRead explicitly.
	OpAny
	// OpRead matches Read/ReadAt calls.
	OpRead
	// OpRename matches FS.Rename calls (matched against the destination
	// path — the name a recovering opener would look for).
	OpRename
	// OpRemove matches FS.Remove calls.
	OpRemove
	// OpSyncDir matches FS.SyncDir calls (matched against the directory
	// path).
	OpSyncDir
)

func (k OpKind) String() string {
	switch k {
	case OpWrite:
		return "write"
	case OpTruncate:
		return "truncate"
	case OpSync:
		return "sync"
	case OpAny:
		return "any"
	case OpRead:
		return "read"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpSyncDir:
		return "syncdir"
	}
	return fmt.Sprintf("opkind(%d)", k)
}

// Action is what a fired Rule does to its operation.
type Action uint8

const (
	// ActError fails the operation with Rule.Err; it has no effect on the
	// file.
	ActError Action = iota + 1
	// ActShortWrite applies only the first Keep bytes of a write, then
	// returns Rule.Err (the os.File contract: n < len(p) with err != nil).
	ActShortWrite
	// ActTorn lets the write succeed, but marks it torn: if the write is
	// still unsynced when the filesystem crashes, only its first Keep
	// bytes survive in the crash image.
	ActTorn
	// ActCrash freezes the filesystem: the operation fails with
	// ErrCrashed, as does everything after it. For a crashing write,
	// Keep >= 0 lets that prefix of it reach the crash image (a tear at
	// the moment of death); Keep < 0 drops the write entirely.
	ActCrash
)

func (a Action) String() string {
	switch a {
	case ActError:
		return "error"
	case ActShortWrite:
		return "short-write"
	case ActTorn:
		return "torn"
	case ActCrash:
		return "crash"
	}
	return fmt.Sprintf("action(%d)", a)
}

// Rule injects one fault: on the Nth operation matching (Op, Path), do
// Action. Each rule fires at most once.
type Rule struct {
	// Op selects which operations count toward Nth.
	Op OpKind
	// Path, when non-empty, restricts matches to files whose path
	// contains it as a substring.
	Path string
	// Nth is the 1-based index of the matching operation to fault.
	Nth int
	// Action is the fault to inject.
	Action Action
	// Keep is the surviving byte-prefix length for ActShortWrite,
	// ActTorn, and ActCrash. Negative means "nothing survives" for
	// ActCrash and is invalid for the others.
	Keep int
	// Err overrides ErrInjected for ActError and ActShortWrite.
	Err error
}

func (r Rule) error() error {
	if r.Err != nil {
		return r.Err
	}
	return ErrInjected
}

// Script is a deterministic fault plan: an ordered set of Rules with
// per-rule match counters. The same script applied to the same operation
// sequence always fires at the same points.
type Script struct {
	mu    sync.Mutex
	rules []Rule
	count []int
	fired []bool
}

// NewScript builds a script from rules.
func NewScript(rules ...Rule) *Script {
	return &Script{
		rules: rules,
		count: make([]int, len(rules)),
		fired: make([]bool, len(rules)),
	}
}

// decide is called by the filesystem for each operation; it returns the
// first not-yet-fired rule whose counter reaches Nth, if any.
func (s *Script) decide(kind OpKind, path string) (Rule, bool) {
	if s == nil {
		return Rule{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var hit Rule
	var ok bool
	for i, r := range s.rules {
		if !matchKind(r.Op, kind) {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		s.count[i]++
		if !ok && !s.fired[i] && s.count[i] == r.Nth {
			s.fired[i] = true
			hit, ok = r, true
		}
	}
	return hit, ok
}

func matchKind(want, got OpKind) bool {
	if want == got {
		return true
	}
	return want == OpAny && got != OpRead
}

// RandomScript derives a single-fault script from seed alone: the fault
// position (within totalOps operations), kind, and tear length are pure
// functions of the seed, so a failing seed replays exactly.
func RandomScript(seed int64, totalOps int) *Script {
	rng := rand.New(rand.NewSource(seed))
	if totalOps < 1 {
		totalOps = 1
	}
	r := Rule{Nth: 1 + rng.Intn(totalOps), Keep: -1}
	switch rng.Intn(5) {
	case 0:
		r.Op, r.Action = OpWrite, ActError
	case 1:
		r.Op, r.Action = OpSync, ActError
	case 2:
		r.Op, r.Action, r.Keep = OpWrite, ActShortWrite, rng.Intn(512)
	case 3:
		r.Op, r.Action, r.Keep = OpWrite, ActTorn, rng.Intn(4096)
	case 4:
		r.Op, r.Action = OpAny, ActCrash
		if rng.Intn(2) == 0 {
			r.Keep = rng.Intn(1024)
		}
	}
	return NewScript(r)
}
