// Package faultfs is the pluggable file abstraction beneath the durable
// layers (the write-ahead log and the page store), plus a deterministic
// fault-injection implementation of it.
//
// Production code runs on OS, a zero-cost passthrough to the real
// filesystem. Tests run on MemFS, an in-memory filesystem that models
// durability the way a disk does: every write lands in a volatile
// "page cache" immediately but only becomes crash-durable when the file
// is fsynced, and a file's directory entry (creation, rename, removal)
// only becomes crash-durable when its parent directory is SyncDir'd.
// A Script injects faults at exact operation counts — fail
// the Nth write, short-write k bytes, tear a write so only a prefix
// survives a crash, fail an fsync, or crash the whole filesystem — and
// MemFS.CrashImage reconstructs what a machine would find on disk after
// the crash, so recovery can be exercised at every I/O boundary.
package faultfs

import (
	"errors"
	"io"
	"os"
)

// File is the handle surface the WAL and page store need. *os.File
// satisfies it directly.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.WriterAt
	io.Seeker
	io.Closer
	Truncate(size int64) error
	Sync() error
	Stat() (os.FileInfo, error)
}

// FS opens files. Implementations must return errors satisfying
// os.IsNotExist for missing files opened without O_CREATE. Rename must
// replace newpath atomically when it exists (the POSIX rename contract
// the segmented WAL's manifest update relies on).
//
// Creations, renames, and removals mutate a directory, and on a real
// POSIX filesystem the directory entry is only crash-durable after the
// directory itself is fsynced — a fully-fsynced file can vanish in a
// crash if its entry never made it to disk. SyncDir is that barrier;
// the durable layers must call it before relying on a new or renamed
// file's existence.
type FS interface {
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	MkdirAll(path string, perm os.FileMode) error
	Remove(path string) error
	Rename(oldpath, newpath string) error
	SyncDir(path string) error
}

// Errors returned by injected faults.
var (
	// ErrInjected is the default error produced by ActError and
	// ActShortWrite rules.
	ErrInjected = errors.New("faultfs: injected fault")
	// ErrCrashed is returned by every operation once the filesystem has
	// crashed (an ActCrash rule fired).
	ErrCrashed = errors.New("faultfs: filesystem crashed")
)

// OS is the passthrough filesystem over the real one.
type OS struct{}

// OpenFile opens path on the host filesystem.
func (OS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(path, flag, perm)
}

// MkdirAll creates the directory path on the host filesystem.
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// Remove deletes path from the host filesystem.
func (OS) Remove(path string) error { return os.Remove(path) }

// Rename atomically renames oldpath to newpath on the host filesystem.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// SyncDir fsyncs the directory at path, forcing its entries to disk.
func (OS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
