// Package txcoord implements the coordinator half of ASSET's distributed
// group commit: two-phase commit over the GC dependencies of transactions
// spread across several managers (§3.1.2 scaled out — "both or neither"
// across nodes instead of within one).
//
// The protocol against each participant (core.Manager, usually reached
// through a client session):
//
//  1. Prepare: the participant drives the GC closure of its members to
//     completion, forces a TPrepare record, and moves them to the
//     prepared state — the yes vote. From then on no unilateral abort
//     (lease expiry, watchdog, crash) can touch them.
//  2. The coordinator collects the votes and records the verdict —
//     commit iff every vote was yes — in its own durable decision log
//     BEFORE releasing it to anyone.
//  3. Decide: the verdict is delivered to every participant,
//     best-effort. Delivery may fail or duplicate freely: participants
//     apply verdicts idempotently, and a participant that restarts in
//     doubt queries the coordinator (Resolve) until it learns the truth.
//
// Resolve is presumed abort with teeth: asking about an undecided group
// FORCES a durable abort decision, so the answer is final either way —
// the "always learn the verdict, never guess" property. The decision
// log is the one source of truth; losing it loses the system's memory,
// so it is synced on every decision.
package txcoord

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/wal"
	"repro/internal/xid"
)

// Coordinator owns a durable decision log and runs commit rounds over it.
type Coordinator struct {
	// The coordinator latch is the outermost in the system — ordered
	// before even the networked tier's — and is held only around the
	// decision map and log append, never across a participant call.
	//asset:latch order=1
	mu      sync.Mutex
	fsys    faultfs.FS
	path    string
	log     *wal.FileLog
	decided map[uint64]bool
	retired int // decisions forgotten since the last compaction

	// DeliverAttempts is how many times CommitGroup tries to deliver the
	// verdict to each participant before leaving it to recovery-time
	// Resolve. Zero means 3.
	DeliverAttempts int
	// DeliverBackoff spaces delivery retries; zero means 10ms.
	DeliverBackoff time.Duration
	// RetireAcked makes CommitGroup forget a decision once every member
	// acknowledged its delivery, bounding the decided map (Compact bounds
	// the log). Standard presumed-abort garbage collection: with all acks
	// in, no participant can ever be in doubt about the group again, so
	// nobody protocol-bound will ask. Enable it ONLY when every
	// participant of every round is listed as a Member of that round — a
	// participant prepared out-of-band still relies on Resolve, and
	// resolving a forgotten commit re-answers presumed abort.
	RetireAcked bool
	// CompactEvery triggers an automatic log compaction after that many
	// retired decisions. 0 means 1024; negative disables auto-compaction
	// (explicit Compact still works).
	CompactEvery int
}

// Open opens (creating if needed) the decision log in dir. A nil fsys
// means the real filesystem. Every verdict previously recorded is
// reloaded; a torn tail (crash mid-append) cleanly drops the unwritten
// decision — which is exactly a coordinator that crashed before
// deciding, and resolves as presumed abort.
func Open(fsys faultfs.FS, dir string) (*Coordinator, error) {
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("txcoord: mkdir %s: %w", dir, err)
	}
	path := filepath.Join(dir, "coord.log")
	decided := make(map[uint64]bool)
	if err := wal.ScanFileFS(fsys, path, func(r *wal.Record) error {
		if r.Type == wal.TDecide {
			if _, ok := decided[r.GID]; !ok { // first writer won
				decided[r.GID] = r.Commit
			}
		}
		return nil
	}); err != nil {
		return nil, fmt.Errorf("txcoord: scan %s: %w", path, err)
	}
	log, err := wal.OpenFileFS(fsys, path, true)
	if err != nil {
		return nil, err
	}
	return &Coordinator{fsys: fsys, path: path, log: log, decided: decided}, nil
}

// Close closes the decision log.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.log.Close()
}

// NewGID mints a fresh nonzero group id. Random rather than sequential:
// a gid handed to participants before the coordinator crashed never
// reaches the decision log, so a restart cannot safely reuse a counter.
func (c *Coordinator) NewGID() uint64 {
	return rand.Uint64() | 1
}

// Verdict reports the recorded verdict for gid without forcing one.
func (c *Coordinator) Verdict(gid uint64) (commit, decided bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	commit, decided = c.decided[gid]
	return commit, decided
}

// decide records the verdict for gid durably and returns the winning
// one. First writer wins: a racing Resolve (forced abort) and commit
// round serialize here, and exactly one verdict ever exists. The verdict
// is on disk before it is returned — nothing downstream can observe a
// decision a crash could unmake.
func (c *Coordinator) decide(gid uint64, commit bool) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.decided[gid]; ok {
		return v, nil
	}
	if _, err := c.log.Append(&wal.Record{Type: wal.TDecide, GID: gid, Commit: commit}); err != nil {
		return false, fmt.Errorf("txcoord: append decision for group %d: %w", gid, err)
	}
	if err := c.log.Flush(); err != nil {
		return false, fmt.Errorf("txcoord: force decision for group %d: %w", gid, err)
	}
	c.decided[gid] = commit
	return commit, nil
}

// Resolve answers "did group gid commit?" from durable state, forcing a
// durable abort decision for a group never decided (presumed abort).
// This is the recovery oracle: an in-doubt participant may ask any
// number of times, across any number of coordinator restarts, and every
// answer agrees. It also implements server.VerdictResolver.
func (c *Coordinator) Resolve(gid uint64) (commit bool, err error) {
	return c.decide(gid, false)
}

// retire forgets a fully-acknowledged decision. Every participant has
// durably applied (or never held) the verdict, so no protocol party is
// left to ask about gid and the entry is dead weight. The forget is
// in-memory — a restart resurrects retired decisions from the log until a
// compaction rewrites it, which is merely over-retention, never loss.
func (c *Coordinator) retire(gid uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.decided[gid]; !ok {
		return
	}
	delete(c.decided, gid)
	c.retired++
	every := c.CompactEvery
	if every == 0 {
		every = 1024
	}
	if every > 0 && c.retired >= every {
		// Best-effort: a failed auto-compaction leaves the log intact and
		// merely oversized; the next retirement tries again.
		if err := c.compactLocked(); err == nil {
			c.retired = 0
		}
	}
}

// Compact rewrites the decision log to hold exactly the still-live
// decisions, durably dropping retired ones and bounding the log's
// otherwise append-only growth. Crash-safe: the replacement is written
// aside, synced, and renamed over the old log, so every point of failure
// leaves one intact log containing at least the live decisions.
func (c *Coordinator) Compact() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.compactLocked(); err != nil {
		return err
	}
	c.retired = 0
	return nil
}

// compactLocked rewrites the decision log as one TDecide per decided
// group and atomically swaps it in. The write-aside log must be fully
// durable (nl.Close flushes and fsyncs) before the rename publishes it
// as the log of record. Caller holds c.mu.
//asset:durable before=Rename
func (c *Coordinator) compactLocked() error {
	tmp := c.path + ".compact"
	_ = c.fsys.Remove(tmp) // stale leftover from a crashed compaction
	nl, err := wal.OpenFileFS(c.fsys, tmp, true)
	if err != nil {
		return fmt.Errorf("txcoord: compact: %w", err)
	}
	gids := make([]uint64, 0, len(c.decided))
	for gid := range c.decided {
		gids = append(gids, gid)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	for _, gid := range gids {
		if _, err := nl.Append(&wal.Record{Type: wal.TDecide, GID: gid, Commit: c.decided[gid]}); err != nil {
			nl.Close()
			_ = c.fsys.Remove(tmp)
			return fmt.Errorf("txcoord: compact append: %w", err)
		}
	}
	if err := nl.Close(); err != nil { // Close flushes and fsyncs
		_ = c.fsys.Remove(tmp)
		return fmt.Errorf("txcoord: compact force: %w", err)
	}
	if err := c.log.Close(); err != nil {
		// The old log failed to flush its tail; keep it as the log of
		// record rather than replacing it with a possibly-older view.
		reopenErr := c.reopenLocked()
		return errors.Join(fmt.Errorf("txcoord: compact close: %w", err), reopenErr)
	}
	if err := c.fsys.Rename(tmp, c.path); err != nil {
		reopenErr := c.reopenLocked()
		return errors.Join(fmt.Errorf("txcoord: compact rename: %w", err), reopenErr)
	}
	if err := c.fsys.SyncDir(filepath.Dir(c.path)); err != nil {
		reopenErr := c.reopenLocked()
		return errors.Join(fmt.Errorf("txcoord: compact sync dir: %w", err), reopenErr)
	}
	return c.reopenLocked()
}

// reopenLocked re-opens the decision log at c.path after a compaction
// attempt released the previous handle. Caller holds c.mu.
func (c *Coordinator) reopenLocked() error {
	log, err := wal.OpenFileFS(c.fsys, c.path, true)
	if err != nil {
		return fmt.Errorf("txcoord: compact reopen: %w", err)
	}
	c.log = log
	return nil
}

// Member is one participant's stake in a commit round: the transactions
// it contributes and how to reach it. The closures are usually a
// client session's Prepare/Decide (see Remote) or a co-located
// manager's (see Local).
type Member struct {
	Name    string
	TIDs    []xid.TID
	Prepare func(ctx context.Context, gid uint64, tids []xid.TID) error
	Decide  func(ctx context.Context, gid uint64, commit bool) error
}

// Remote binds a client session's participant surface to a member.
type remoteSession interface {
	Prepare(ctx context.Context, gid uint64, tids ...xid.TID) error
	Decide(ctx context.Context, gid uint64, commit bool) error
}

// Remote adapts a connected client session into a Member contributing
// tids. (client.Client satisfies the session interface.)
func Remote(name string, cli remoteSession, tids ...xid.TID) Member {
	return Member{
		Name: name,
		TIDs: tids,
		Prepare: func(ctx context.Context, gid uint64, tids []xid.TID) error {
			return cli.Prepare(ctx, gid, tids...)
		},
		Decide: func(ctx context.Context, gid uint64, commit bool) error {
			return cli.Decide(ctx, gid, commit)
		},
	}
}

// Local adapts a co-located manager into a Member contributing tids —
// no RPC hop, same protocol.
func Local(name string, m *core.Manager, tids ...xid.TID) Member {
	return Member{
		Name: name,
		TIDs: tids,
		Prepare: func(ctx context.Context, gid uint64, tids []xid.TID) error {
			return m.PrepareCtx(ctx, gid, tids...)
		},
		Decide: func(ctx context.Context, gid uint64, commit bool) error {
			return m.Decide(gid, commit)
		},
	}
}

// CommitGroup runs one full commit round for gid over the members:
// parallel prepares, a durable verdict (commit iff every vote was yes),
// then best-effort parallel delivery. It returns whether the group
// committed; a non-nil error with commit=false carries the vote (or
// log) failure. Verdict delivery failures are NOT errors — a
// participant that missed the verdict holds its group in doubt and
// learns the truth from Resolve after its restart or retry.
//
// Decide-before-release: the durable decision (decide forces the
// coordinator log) must dominate every verdict delivery, including the
// delivery goroutines — the checker inlines them at their spawn point.
//asset:durable before=Decide
func (c *Coordinator) CommitGroup(ctx context.Context, gid uint64, members []Member) (bool, error) {
	if gid == 0 {
		return false, fmt.Errorf("txcoord: zero group id")
	}
	// Phase 1: collect votes in parallel. Any error is a no vote.
	voteErrs := make([]error, len(members))
	var wg sync.WaitGroup
	for i, mb := range members {
		wg.Add(1)
		//asset:goroutine joined-by=waitgroup
		go func() {
			defer wg.Done()
			if err := mb.Prepare(ctx, gid, mb.TIDs); err != nil {
				voteErrs[i] = fmt.Errorf("txcoord: %s voted no: %w", mb.Name, err)
			}
		}()
	}
	wg.Wait()
	var voteErr error
	for _, err := range voteErrs {
		if err != nil {
			voteErr = err
			break
		}
	}
	// Phase 2: the commit point. decide() may lose to a Resolve that
	// already forced an abort — the durable log arbitrates.
	verdict, err := c.decide(gid, voteErr == nil)
	if err != nil {
		// No verdict was released; participants stay prepared and will
		// resolve (as presumed abort) against whatever log state survived.
		return false, err
	}
	// Phase 3: deliver the verdict, best-effort with bounded retries.
	attempts := c.DeliverAttempts
	if attempts <= 0 {
		attempts = 3
	}
	backoff := c.DeliverBackoff
	if backoff <= 0 {
		backoff = 10 * time.Millisecond
	}
	acked := make([]bool, len(members))
	for i, mb := range members {
		wg.Add(1)
		//asset:goroutine joined-by=waitgroup
		go func() {
			defer wg.Done()
			for try := 0; try < attempts; try++ {
				err := mb.Decide(ctx, gid, verdict)
				if err == nil || errors.Is(err, core.ErrUnknownGroup) {
					// ErrUnknownGroup is an ack, not a failure: nothing is
					// left to decide there. The participant voted no (so an
					// abort verdict finds neither prepared state nor a
					// recorded verdict), or it already applied the verdict
					// and has since restarted or pruned it.
					acked[i] = true
					return
				}
				if ctx.Err() != nil {
					return
				}
				select {
				case <-time.After(backoff << uint(try)):
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.RetireAcked {
		all := true
		for _, a := range acked {
			if !a {
				all = false
				break
			}
		}
		if all {
			c.retire(gid)
		}
	}
	if !verdict {
		if voteErr != nil {
			return false, voteErr
		}
		return false, fmt.Errorf("txcoord: group %d aborted by a prior forced decision", gid)
	}
	return true, nil
}

// ResolveInDoubt drives every in-doubt group of a restarted participant
// to resolution: the resolver (a coordinator's Resolve, locally or over
// a session's QueryVerdict) supplies the verdict and the manager applies
// it. Multi-shot: safe to call again after a partial failure.
func ResolveInDoubt(m *core.Manager, resolve func(gid uint64) (bool, error)) error {
	for _, gid := range m.InDoubt() {
		commit, err := resolve(gid)
		if err != nil {
			return fmt.Errorf("txcoord: resolving group %d: %w", gid, err)
		}
		if err := m.Decide(gid, commit); err != nil {
			return fmt.Errorf("txcoord: applying verdict for group %d: %w", gid, err)
		}
	}
	return nil
}
