// The multi-node chaos matrix: two assetd participants (durable managers
// behind real servers, dialed through faultnet fabrics) plus a durable
// coordinator, driven through the full distributed commit protocol while
// each cell injects one failure — coordinator crash before/after the
// decision-log write, a partitioned participant, duplicated and
// reordered verdict delivery, lease expiry mid-prepare, and a
// participant crash+restart. Every cell ends with the same three
// assertions: the transfer is all-or-nothing across nodes, the escrow
// counters conserve exactly, and no group lingers in doubt once
// recovery + verdict query have run.
package txcoord_test

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/faultnet"
	"repro/internal/server"
	"repro/internal/txcoord"
	"repro/internal/xid"
)

const nodeSeed = 100 // each node's counter starts here; the invariant is 2×this

// resolverBox is the verdict service the servers are wired to: a level of
// indirection so a restarted coordinator incarnation can take over
// without restarting the participant servers.
type resolverBox struct {
	mu sync.Mutex
	r  server.VerdictResolver
}

func (b *resolverBox) Resolve(gid uint64) (bool, error) {
	b.mu.Lock()
	r := b.r
	b.mu.Unlock()
	return r.Resolve(gid)
}

func (b *resolverBox) set(r server.VerdictResolver) {
	b.mu.Lock()
	b.r = r
	b.mu.Unlock()
}

// distNode is one participant: a durable manager on a crashable memfs,
// served over its own faultnet fabric.
type distNode struct {
	name   string
	mem    *faultfs.MemFS
	m      *core.Manager
	srv    *server.Server
	fabric *faultnet.Network
	oid    xid.OID
}

func startNode(t *testing.T, name string, mem *faultfs.MemFS, fabric *faultnet.Network, box *resolverBox) *distNode {
	t.Helper()
	m, err := core.Open(core.Config{Dir: "db", FS: mem, SyncCommits: true})
	if err != nil {
		t.Fatalf("%s: Open: %v", name, err)
	}
	lis, err := fabric.Listen("assetd")
	if err != nil {
		t.Fatalf("%s: Listen: %v", name, err)
	}
	srv := server.Serve(m, lis, server.Config{LeaseTTL: 150 * time.Millisecond, Verdicts: box})
	return &distNode{name: name, mem: mem, m: m, srv: srv, fabric: fabric}
}

// crash closes the node and returns the disk image a restart sees: every
// unsynced write gone.
func (n *distNode) crash() *faultfs.MemFS {
	n.srv.Close()
	img := n.mem.CrashImage(faultfs.DropUnsynced)
	n.m.Close() //nolint:errcheck
	return img
}

type distWorld struct {
	t        *testing.T
	coordMem *faultfs.MemFS
	coord    *txcoord.Coordinator
	box      *resolverBox
	a, b     *distNode
}

func newDistWorld(t *testing.T) *distWorld {
	t.Helper()
	coordMem := faultfs.NewMem()
	coord, err := txcoord.Open(coordMem, "coord")
	if err != nil {
		t.Fatal(err)
	}
	box := &resolverBox{r: coord}
	w := &distWorld{t: t, coordMem: coordMem, coord: coord, box: box}
	for _, nm := range []string{"a", "b"} {
		fabric := faultnet.New()
		t.Cleanup(fabric.Close)
		n := startNode(t, nm, faultfs.NewMem(), fabric, box)
		t.Cleanup(func() {
			n.srv.Close()
			n.m.Close() //nolint:errcheck
		})
		if err := n.m.Run(context.Background(), core.RunOptions{}, func(tx *core.Tx) error {
			oid, err := tx.Create(counterBytes(nodeSeed))
			if err != nil {
				return err
			}
			n.oid = oid
			return tx.DeclareEscrow(oid, 0, 10*nodeSeed)
		}); err != nil {
			t.Fatalf("%s: seed: %v", nm, err)
		}
		if nm == "a" {
			w.a = n
		} else {
			w.b = n
		}
	}
	t.Cleanup(func() { w.coord.Close() }) //nolint:errcheck
	return w
}

func counterBytes(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

// dial connects a client to a node with chaos-compressed timers.
func (w *distWorld) dial(n *distNode) *client.Client {
	w.t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	cli, err := client.Dial(ctx, client.Options{
		Dial: func(ctx context.Context) (net.Conn, error) {
			return n.fabric.DialContext(ctx, "assetd")
		},
		RetransmitEvery:  4 * time.Millisecond,
		HeartbeatEvery:   20 * time.Millisecond,
		ProbeTimeout:     25 * time.Millisecond,
		HandshakeTimeout: 40 * time.Millisecond,
	})
	if err != nil {
		w.t.Fatalf("%s: dial: %v", n.name, err)
	}
	w.t.Cleanup(func() { cli.Close() }) //nolint:errcheck
	return cli
}

// buildHalf runs one side of the transfer as an interactive session txn:
// initiated, begun, delta applied — NOT committed. The interactive body
// stays open; the server's prepare path finishes it when the vote is
// requested. The client session must stay alive (unless the cell is
// specifically about killing it).
func (w *distWorld) buildHalf(cli *client.Client, n *distNode, delta int64) xid.TID {
	w.t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	tid, err := cli.Initiate(ctx)
	if err != nil {
		w.t.Fatalf("%s: initiate: %v", n.name, err)
	}
	if err := cli.Begin(ctx, tid); err != nil {
		w.t.Fatalf("%s: begin: %v", n.name, err)
	}
	if err := cli.Tx(tid).Add(ctx, n.oid, delta); err != nil {
		w.t.Fatalf("%s: add: %v", n.name, err)
	}
	return tid
}

// transfer builds the canonical cross-node move of k: -k on node a, +k on
// node b, each in its own application session. Returns the tids and the
// coordinator-side sessions used for prepare/decide traffic.
type transfer struct {
	k          int64
	tidA, tidB xid.TID
	appA, appB *client.Client // application sessions (owners of the txns)
	coA, coB   *client.Client // coordinator sessions (prepare/decide/query)
}

func (w *distWorld) buildTransfer(k int64) *transfer {
	w.t.Helper()
	tr := &transfer{k: k}
	tr.appA, tr.appB = w.dial(w.a), w.dial(w.b)
	tr.coA, tr.coB = w.dial(w.a), w.dial(w.b)
	tr.tidA = w.buildHalf(tr.appA, w.a, -k)
	tr.tidB = w.buildHalf(tr.appB, w.b, +k)
	return tr
}

// members returns the real wire-backed members for a commit round.
func (w *distWorld) members(tr *transfer) []txcoord.Member {
	return []txcoord.Member{
		txcoord.Remote("a", tr.coA, tr.tidA),
		txcoord.Remote("b", tr.coB, tr.tidB),
	}
}

// lostDecide wraps members so verdict delivery silently fails — the
// coordinator decides durably but nobody hears (a total delivery-phase
// partition). Prepares still ride the real wire.
func lostDecide(ms []txcoord.Member) []txcoord.Member {
	out := make([]txcoord.Member, len(ms))
	for i, m := range ms {
		m.Decide = func(ctx context.Context, gid uint64, commit bool) error {
			return fmt.Errorf("verdict lost in transit")
		}
		out[i] = m
	}
	return out
}

// settle waits for both nodes to quiesce and then asserts the matrix
// invariants: all-or-nothing across nodes, exact conservation, no group
// in doubt, and clean lock tables.
func (w *distWorld) settle(tr *transfer, wantCommit bool) {
	w.t.Helper()
	for _, n := range []*distNode{w.a, w.b} {
		waitQuiesce(w.t, n)
	}
	stA, stB := w.a.m.StatusOf(tr.tidA), w.b.m.StatusOf(tr.tidB)
	want := xid.StatusAborted
	if wantCommit {
		want = xid.StatusCommitted
	}
	if stA != want || stB != want {
		w.t.Fatalf("all-or-nothing violated: a=%v b=%v, want both %v", stA, stB, want)
	}
	va, vb := counterOn(w.t, w.a), counterOn(w.t, w.b)
	if va+vb != 2*nodeSeed {
		w.t.Fatalf("conservation violated: a=%d b=%d sum=%d, want %d", va, vb, va+vb, 2*nodeSeed)
	}
	wantA, wantB := uint64(nodeSeed), uint64(nodeSeed)
	if wantCommit {
		wantA -= uint64(tr.k)
		wantB += uint64(tr.k)
	}
	if va != wantA || vb != wantB {
		w.t.Fatalf("counters a=%d b=%d, want %d/%d", va, vb, wantA, wantB)
	}
	if d := w.a.m.InDoubt(); len(d) != 0 {
		w.t.Fatalf("node a still in doubt: %v", d)
	}
	if d := w.b.m.InDoubt(); len(d) != 0 {
		w.t.Fatalf("node b still in doubt: %v", d)
	}
}

func waitQuiesce(t *testing.T, n *distNode) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		live := 0
		for _, info := range n.m.Transactions() {
			switch info.Status {
			case xid.StatusCommitted, xid.StatusAborted:
			default:
				live++
			}
		}
		if live == 0 {
			if bad := n.m.LockManager().CheckInvariants(); len(bad) == 0 {
				return
			} else if time.Now().After(deadline) {
				t.Fatalf("%s: lock invariants violated: %v", n.name, bad)
			}
		} else if time.Now().After(deadline) {
			t.Fatalf("%s: %d transactions still live: %+v", n.name, live, n.m.Transactions())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func counterOn(t *testing.T, n *distNode) uint64 {
	t.Helper()
	var v uint64
	if err := n.m.Run(context.Background(), core.RunOptions{}, func(tx *core.Tx) error {
		var err error
		v, err = tx.ReadCounter(n.oid)
		return err
	}); err != nil {
		t.Fatalf("%s: read counter: %v", n.name, err)
	}
	return v
}

// resolveOverWire drives a node's in-doubt groups through the wire-level
// recovery protocol: QueryVerdict (which forces presumed abort for
// undecided groups) then Decide, both on a live client session.
func resolveOverWire(t *testing.T, cli *client.Client, n *distNode) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, gid := range n.m.InDoubt() {
		commit, err := cli.QueryVerdict(ctx, gid)
		if err != nil {
			t.Fatalf("%s: query verdict %d: %v", n.name, gid, err)
		}
		if err := cli.Decide(ctx, gid, commit); err != nil {
			t.Fatalf("%s: deliver verdict %d: %v", n.name, gid, err)
		}
	}
}

// --- The matrix ---

// Fault-free round: both halves commit, the transfer lands exactly once.
func TestDistCommitClean(t *testing.T) {
	w := newDistWorld(t)
	tr := w.buildTransfer(30)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ok, err := w.coord.CommitGroup(ctx, w.coord.NewGID(), w.members(tr))
	if err != nil || !ok {
		t.Fatalf("CommitGroup = %v, %v", ok, err)
	}
	w.settle(tr, true)
}

// One participant's half is already dead: the whole cross-node group
// aborts, nothing moves on either node.
func TestDistAbortVote(t *testing.T) {
	w := newDistWorld(t)
	tr := w.buildTransfer(30)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := tr.appB.Abort(ctx, tr.tidB); err != nil {
		t.Fatalf("abort b half: %v", err)
	}
	ok, err := w.coord.CommitGroup(ctx, w.coord.NewGID(), w.members(tr))
	if ok || err == nil {
		t.Fatalf("CommitGroup = %v, %v, want abort", ok, err)
	}
	w.settle(tr, false)
}

// Coordinator crashes after collecting votes but BEFORE the decision-log
// write: the restarted incarnation has no verdict, so recovery resolves
// as presumed abort — both prepared halves roll back.
func TestDistCoordCrashBeforeDecision(t *testing.T) {
	w := newDistWorld(t)
	tr := w.buildTransfer(30)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	gid := w.coord.NewGID()
	if err := tr.coA.Prepare(ctx, gid, tr.tidA); err != nil {
		t.Fatalf("prepare a: %v", err)
	}
	if err := tr.coB.Prepare(ctx, gid, tr.tidB); err != nil {
		t.Fatalf("prepare b: %v", err)
	}
	// Crash: no decision was appended, and the crash image proves it.
	w.coord.Close() //nolint:errcheck
	coord2, err := txcoord.Open(w.coordMem.CrashImage(faultfs.DropUnsynced), "coord")
	if err != nil {
		t.Fatalf("coordinator restart: %v", err)
	}
	t.Cleanup(func() { coord2.Close() }) //nolint:errcheck
	w.box.set(coord2)
	if _, decided := coord2.Verdict(gid); decided {
		t.Fatal("undelivered decision survived the crash")
	}
	// Both nodes are in doubt; wire recovery forces the abort.
	if d := w.a.m.InDoubt(); len(d) != 1 || d[0] != gid {
		t.Fatalf("node a in doubt = %v, want [%d]", d, gid)
	}
	resolveOverWire(t, tr.coA, w.a)
	resolveOverWire(t, tr.coB, w.b)
	w.settle(tr, false)
}

// Coordinator crashes AFTER the decision-log write but before any
// delivery: the verdict is durable, so recovery commits both halves.
func TestDistCoordCrashAfterDecision(t *testing.T) {
	w := newDistWorld(t)
	tr := w.buildTransfer(30)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	gid := w.coord.NewGID()
	// Real prepares over the wire; delivery is lost (the crash eats it).
	w.coord.DeliverAttempts = 1
	w.coord.DeliverBackoff = time.Millisecond
	ok, err := w.coord.CommitGroup(ctx, gid, lostDecide(w.members(tr)))
	if err != nil || !ok {
		t.Fatalf("CommitGroup = %v, %v", ok, err)
	}
	w.coord.Close() //nolint:errcheck
	coord2, err := txcoord.Open(w.coordMem.CrashImage(faultfs.DropUnsynced), "coord")
	if err != nil {
		t.Fatalf("coordinator restart: %v", err)
	}
	t.Cleanup(func() { coord2.Close() }) //nolint:errcheck
	w.box.set(coord2)
	if commit, decided := coord2.Verdict(gid); !decided || !commit {
		t.Fatalf("durable verdict lost: commit=%v decided=%v", commit, decided)
	}
	resolveOverWire(t, tr.coA, w.a)
	resolveOverWire(t, tr.coB, w.b)
	w.settle(tr, true)
}

// One participant is partitioned away exactly when the verdict goes out:
// the other commits immediately, the partitioned one stays prepared (in
// doubt) until the partition heals and it queries the verdict.
func TestDistPartitionedParticipantDecide(t *testing.T) {
	w := newDistWorld(t)
	tr := w.buildTransfer(30)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	gid := w.coord.NewGID()
	w.coord.DeliverAttempts = 1
	w.coord.DeliverBackoff = time.Millisecond
	ms := w.members(tr)
	// Node b's delivery hits a partition that never heals on its own: the
	// fabric cuts the connection at the next message and the decide call
	// times out.
	realDecideB := ms[1].Decide
	ms[1].Decide = func(_ context.Context, gid uint64, commit bool) error {
		w.b.fabric.SetScript(faultnet.NewScript(faultnet.Rule{Kind: faultnet.Partition}))
		short, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
		defer cancel()
		return realDecideB(short, gid, commit)
	}
	ok, err := w.coord.CommitGroup(ctx, gid, ms)
	if err != nil || !ok {
		t.Fatalf("CommitGroup = %v, %v", ok, err)
	}
	// Node a heard the verdict; node b is marooned in doubt.
	if got := w.a.m.StatusOf(tr.tidA); got != xid.StatusCommitted {
		t.Fatalf("node a status = %v, want committed", got)
	}
	if got := w.b.m.StatusOf(tr.tidB); got != xid.StatusPrepared {
		t.Fatalf("node b status = %v, want still prepared", got)
	}
	// Heal. The client's probe machinery declares the dead connection and
	// redials; the idempotent recovery protocol finishes the job.
	w.b.fabric.SetScript(nil)
	resolveOverWire(t, tr.coB, w.b)
	w.settle(tr, true)
}

// Verdict delivery is duplicated by the network and a stale prepare
// arrives after the verdict (reordering): every duplicate is an ack, the
// transfer lands exactly once, and the stale prepare is cleanly refused.
func TestDistDupReorderedDecide(t *testing.T) {
	w := newDistWorld(t)
	tr := w.buildTransfer(30)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	gid := w.coord.NewGID()
	if err := tr.coA.Prepare(ctx, gid, tr.tidA); err != nil {
		t.Fatalf("prepare a: %v", err)
	}
	if err := tr.coB.Prepare(ctx, gid, tr.tidB); err != nil {
		t.Fatalf("prepare b: %v", err)
	}
	// Every message on node a's fabric is duplicated during delivery: the
	// session layer's at-most-once table absorbs the copies.
	w.a.fabric.SetScript(faultnet.NewScript(faultnet.Rule{Kind: faultnet.Dup, Nth: 0}))
	ok, err := w.coord.CommitGroup(ctx, gid, w.members(tr))
	if err != nil || !ok {
		t.Fatalf("CommitGroup = %v, %v", ok, err)
	}
	w.a.fabric.SetScript(nil)
	// Application-level duplicates: the verdict again, twice more.
	if err := tr.coA.Decide(ctx, gid, true); err != nil {
		t.Fatalf("dup decide a: %v", err)
	}
	if err := tr.coB.Decide(ctx, gid, true); err != nil {
		t.Fatalf("dup decide b: %v", err)
	}
	// A reordered (stale) prepare arriving after the verdict must be
	// refused with the committed identity, not re-prepare anything.
	if err := tr.coA.Prepare(ctx, gid, tr.tidA); !errors.Is(err, core.ErrAlreadyCommitted) {
		t.Fatalf("stale prepare after commit = %v, want ErrAlreadyCommitted", err)
	}
	// The contradictory verdict is refused too.
	if err := tr.coB.Decide(ctx, gid, false); err == nil {
		t.Fatal("contradictory verdict accepted")
	}
	w.settle(tr, true)
}

// The application session dies mid-prepare: its lease expires between
// the prepare and the verdict. A prepared transaction must survive lease
// expiry — no unilateral abort — and commit when the verdict lands.
func TestDistLeaseExpiryMidPrepare(t *testing.T) {
	w := newDistWorld(t)
	tr := w.buildTransfer(30)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	gid := w.coord.NewGID()
	if err := tr.coA.Prepare(ctx, gid, tr.tidA); err != nil {
		t.Fatalf("prepare a: %v", err)
	}
	if err := tr.coB.Prepare(ctx, gid, tr.tidB); err != nil {
		t.Fatalf("prepare b: %v", err)
	}
	// Kill node a's application session and let its lease lapse.
	tr.appA.Close()                    //nolint:errcheck
	time.Sleep(400 * time.Millisecond) // >> LeaseTTL (150ms)
	if got := w.a.m.StatusOf(tr.tidA); got != xid.StatusPrepared {
		t.Fatalf("prepared txn after lease expiry = %v, want still prepared", got)
	}
	if err := tr.coA.Decide(ctx, gid, true); err != nil {
		t.Fatalf("decide a: %v", err)
	}
	if err := tr.coB.Decide(ctx, gid, true); err != nil {
		t.Fatalf("decide b: %v", err)
	}
	w.settle(tr, true)
}

// A participant crashes after voting yes and restarts from its crash
// image: the TPrepare record resurrects the group in doubt, holding
// locks, and the wire-level verdict query completes the commit with the
// redo images recovered from the log.
func TestDistParticipantCrashRestart(t *testing.T) {
	w := newDistWorld(t)
	tr := w.buildTransfer(30)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	gid := w.coord.NewGID()
	w.coord.DeliverAttempts = 1
	w.coord.DeliverBackoff = time.Millisecond
	// Votes collected over the real wire; the verdict is durable at the
	// coordinator but reaches nobody.
	ok, err := w.coord.CommitGroup(ctx, gid, lostDecide(w.members(tr)))
	if err != nil || !ok {
		t.Fatalf("CommitGroup = %v, %v", ok, err)
	}
	// Node b dies and comes back from the crash image.
	img := w.b.crash()
	n2 := startNode(t, "b2", img, w.b.fabric, w.box)
	t.Cleanup(func() {
		n2.srv.Close()
		n2.m.Close() //nolint:errcheck
	})
	n2.oid = w.b.oid
	w.b = n2
	if d := n2.m.InDoubt(); len(d) != 1 || d[0] != gid {
		t.Fatalf("restarted node in doubt = %v, want [%d]", d, gid)
	}
	// Fresh session to the new incarnation; recovery is multi-shot and
	// idempotent, so a second pass is a no-op.
	cli2 := w.dial(n2)
	resolveOverWire(t, cli2, n2)
	resolveOverWire(t, cli2, n2)
	resolveOverWire(t, tr.coA, w.a)
	w.settle(tr, true)
}
