package txcoord

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/xid"
)

func openCoord(t *testing.T, mfs *faultfs.MemFS) *Coordinator {
	t.Helper()
	c, err := Open(mfs, "coord")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func memManager(t *testing.T) *core.Manager {
	t.Helper()
	m, err := core.Open(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// done initiates+begins fn and waits for its body to finish, leaving the
// transaction completed and ready to prepare.
func done(t *testing.T, m *core.Manager, fn core.TxnFunc) xid.TID {
	t.Helper()
	id, err := m.Initiate(fn)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(id); err != nil {
		t.Fatal(err)
	}
	if err := m.Wait(id); err != nil {
		t.Fatal(err)
	}
	return id
}

func TestVerdictDurableAcrossReopen(t *testing.T) {
	mfs := faultfs.NewMem()
	c := openCoord(t, mfs)
	// An empty member list is a vacuous all-yes: the round records a
	// durable commit verdict.
	if ok, err := c.CommitGroup(context.Background(), 7, nil); err != nil || !ok {
		t.Fatalf("CommitGroup = %v, %v", ok, err)
	}
	// Resolve on an undecided group forces a durable abort.
	if commit, err := c.Resolve(9); err != nil || commit {
		t.Fatalf("Resolve(9) = %v, %v, want forced abort", commit, err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2 := openCoord(t, mfs)
	if commit, decided := c2.Verdict(7); !decided || !commit {
		t.Fatalf("group 7 after reopen: commit=%v decided=%v", commit, decided)
	}
	if commit, decided := c2.Verdict(9); !decided || commit {
		t.Fatalf("group 9 after reopen: commit=%v decided=%v", commit, decided)
	}
	// The forced abort is final: a later commit round loses to it.
	if ok, err := c2.CommitGroup(context.Background(), 9, nil); ok || err == nil {
		t.Fatalf("CommitGroup after forced abort = %v, %v", ok, err)
	}
	// And Resolve keeps agreeing with itself.
	if commit, err := c2.Resolve(7); err != nil || !commit {
		t.Fatalf("Resolve(7) = %v, %v, want commit", commit, err)
	}
}

// fakeMember records the protocol a member observes.
type fakeMember struct {
	prepared  atomic.Int64
	decides   atomic.Int64
	gotCommit atomic.Bool
	voteErr   error
	failFirst int32 // Decide failures to inject before succeeding
	fails     atomic.Int32
}

func (f *fakeMember) member(name string) Member {
	return Member{
		Name: name,
		TIDs: []xid.TID{1},
		Prepare: func(ctx context.Context, gid uint64, tids []xid.TID) error {
			f.prepared.Add(1)
			return f.voteErr
		},
		Decide: func(ctx context.Context, gid uint64, commit bool) error {
			if f.fails.Add(1) <= f.failFirst {
				return fmt.Errorf("transient delivery failure")
			}
			f.decides.Add(1)
			f.gotCommit.Store(commit)
			return nil
		},
	}
}

func TestCommitGroupVoting(t *testing.T) {
	mfs := faultfs.NewMem()
	c := openCoord(t, mfs)
	yes1, yes2 := &fakeMember{}, &fakeMember{}
	ok, err := c.CommitGroup(context.Background(), 11, []Member{yes1.member("a"), yes2.member("b")})
	if err != nil || !ok {
		t.Fatalf("all-yes round = %v, %v", ok, err)
	}
	if !yes1.gotCommit.Load() || !yes2.gotCommit.Load() {
		t.Fatal("commit verdict not delivered to every member")
	}

	no := &fakeMember{voteErr: errors.New("load shed")}
	yes3 := &fakeMember{}
	ok, err = c.CommitGroup(context.Background(), 12, []Member{yes3.member("a"), no.member("b")})
	if ok || err == nil {
		t.Fatalf("one-no round = %v, %v, want abort", ok, err)
	}
	if yes3.gotCommit.Load() {
		t.Fatal("yes voter was told commit despite a no vote")
	}
	if yes3.decides.Load() != 1 {
		t.Fatal("abort verdict not delivered to the yes voter")
	}
	if commit, decided := c.Verdict(12); !decided || commit {
		t.Fatalf("group 12 verdict: commit=%v decided=%v, want durable abort", commit, decided)
	}
}

func TestDeliveryRetries(t *testing.T) {
	mfs := faultfs.NewMem()
	c := openCoord(t, mfs)
	c.DeliverAttempts = 3
	c.DeliverBackoff = 1 // nanosecond — keep the test fast
	flaky := &fakeMember{failFirst: 2}
	if ok, err := c.CommitGroup(context.Background(), 13, []Member{flaky.member("flaky")}); err != nil || !ok {
		t.Fatalf("round = %v, %v", ok, err)
	}
	if flaky.decides.Load() != 1 {
		t.Fatalf("delivery count = %d, want 1 after retries", flaky.decides.Load())
	}
}

// TestNoVoterDeliveryShortCircuit: a participant that voted no has
// neither prepared state nor a recorded verdict, so abort-verdict
// delivery to it reports ErrUnknownGroup — which is an ack (nothing left
// to decide there), not a failure to retry through the backoff schedule.
func TestNoVoterDeliveryShortCircuit(t *testing.T) {
	c := openCoord(t, faultfs.NewMem())
	c.DeliverAttempts = 5
	c.DeliverBackoff = time.Hour // a retry would hang the test
	m := memManager(t)
	id := done(t, m, func(tx *core.Tx) error {
		_, err := tx.Create([]byte("doomed"))
		return err
	})
	if err := m.Abort(id); err != nil {
		t.Fatal(err)
	}
	var decides atomic.Int64
	mb := Local("m", m, id)
	inner := mb.Decide
	mb.Decide = func(ctx context.Context, gid uint64, commit bool) error {
		decides.Add(1)
		return inner(ctx, gid, commit)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ok, err := c.CommitGroup(ctx, 19, []Member{mb})
	if ok || err == nil {
		t.Fatalf("round with aborted member = %v, %v, want abort", ok, err)
	}
	if got := decides.Load(); got != 1 {
		t.Fatalf("deliveries to no-voter = %d, want 1 (ErrUnknownGroup is an ack)", got)
	}
}

// TestRetireAckedCompactsLog: with RetireAcked on, a decision every
// member acknowledged is forgotten, and compaction durably drops it from
// the decision log; an unacknowledged decision survives both.
func TestRetireAckedCompactsLog(t *testing.T) {
	mfs := faultfs.NewMem()
	c := openCoord(t, mfs)
	c.RetireAcked = true
	c.CompactEvery = 1 // compact on every retirement
	c.DeliverAttempts = 1
	c.DeliverBackoff = 1

	acker := &fakeMember{}
	if ok, err := c.CommitGroup(context.Background(), 31, []Member{acker.member("acker")}); err != nil || !ok {
		t.Fatalf("acked round = %v, %v", ok, err)
	}
	if _, decided := c.Verdict(31); decided {
		t.Fatal("fully-acknowledged decision was not retired")
	}

	deaf := &fakeMember{failFirst: 1 << 30} // never acks
	if ok, err := c.CommitGroup(context.Background(), 32, []Member{deaf.member("deaf")}); err != nil || !ok {
		t.Fatalf("unacked round = %v, %v", ok, err)
	}
	if commit, decided := c.Verdict(32); !decided || !commit {
		t.Fatalf("unacknowledged decision retired early: commit=%v decided=%v", commit, decided)
	}

	// The compacted log is the durable truth: the retired decision is
	// gone after a restart, the unacknowledged one intact.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2 := openCoord(t, mfs)
	if _, decided := c2.Verdict(31); decided {
		t.Fatal("retired decision resurrected from the compacted log")
	}
	if commit, decided := c2.Verdict(32); !decided || !commit {
		t.Fatalf("live decision lost by compaction: commit=%v decided=%v", commit, decided)
	}
}

func TestCommitGroupLocalManagers(t *testing.T) {
	c := openCoord(t, faultfs.NewMem())
	m1, m2 := memManager(t), memManager(t)
	var o1, o2 xid.OID
	id1 := done(t, m1, func(tx *core.Tx) error {
		var err error
		o1, err = tx.Create([]byte("left"))
		return err
	})
	id2 := done(t, m2, func(tx *core.Tx) error {
		var err error
		o2, err = tx.Create([]byte("right"))
		return err
	})
	gid := c.NewGID()
	ok, err := c.CommitGroup(context.Background(), gid,
		[]Member{Local("m1", m1, id1), Local("m2", m2, id2)})
	if err != nil || !ok {
		t.Fatalf("round = %v, %v", ok, err)
	}
	if got := m1.StatusOf(id1); got != xid.StatusCommitted {
		t.Fatalf("m1 txn = %v, want committed", got)
	}
	if got := m2.StatusOf(id2); got != xid.StatusCommitted {
		t.Fatalf("m2 txn = %v, want committed", got)
	}
	if _, present := m1.Cache().Read(o1); !present {
		t.Fatal("m1 payload missing")
	}
	if _, present := m2.Cache().Read(o2); !present {
		t.Fatal("m2 payload missing")
	}

	// A member that already aborted drags the whole cross-node group down.
	id3 := done(t, m1, func(tx *core.Tx) error {
		_, err := tx.Create([]byte("doomed"))
		return err
	})
	id4 := done(t, m2, func(tx *core.Tx) error {
		var err error
		o2, err = tx.Create([]byte("survivor?"))
		return err
	})
	if err := m1.Abort(id3); err != nil {
		t.Fatal(err)
	}
	gid2 := c.NewGID()
	ok, err = c.CommitGroup(context.Background(), gid2,
		[]Member{Local("m1", m1, id3), Local("m2", m2, id4)})
	if ok || err == nil {
		t.Fatalf("round with aborted member = %v, %v", ok, err)
	}
	if got := m2.StatusOf(id4); got != xid.StatusAborted {
		t.Fatalf("m2 txn after cross-node abort = %v, want aborted", got)
	}
	if _, present := m2.Cache().Read(o2); present {
		t.Fatal("aborted payload visible on m2")
	}
	if got := m1.InDoubt(); len(got) != 0 {
		t.Fatalf("m1 in doubt = %v, want none", got)
	}
	if got := m2.InDoubt(); len(got) != 0 {
		t.Fatalf("m2 in doubt = %v, want none", got)
	}
}

func TestResolveInDoubt(t *testing.T) {
	c := openCoord(t, faultfs.NewMem())
	m := memManager(t)

	// Group A: prepared, then the coordinator decides commit but the
	// delivery is "lost" (we never call Decide on the manager).
	idA := done(t, m, func(tx *core.Tx) error {
		_, err := tx.Create([]byte("A"))
		return err
	})
	if err := m.PrepareCtx(context.Background(), 21, idA); err != nil {
		t.Fatal(err)
	}
	if ok, err := c.CommitGroup(context.Background(), 21, nil); err != nil || !ok {
		t.Fatalf("decide 21 = %v, %v", ok, err)
	}
	// Group B: prepared but the coordinator never decided — presumed abort.
	idB := done(t, m, func(tx *core.Tx) error {
		_, err := tx.Create([]byte("B"))
		return err
	})
	if err := m.PrepareCtx(context.Background(), 22, idB); err != nil {
		t.Fatal(err)
	}

	if err := ResolveInDoubt(m, c.Resolve); err != nil {
		t.Fatal(err)
	}
	if got := m.StatusOf(idA); got != xid.StatusCommitted {
		t.Fatalf("group 21 member = %v, want committed", got)
	}
	if got := m.StatusOf(idB); got != xid.StatusAborted {
		t.Fatalf("group 22 member = %v, want aborted", got)
	}
	if got := m.InDoubt(); len(got) != 0 {
		t.Fatalf("in doubt after resolution = %v", got)
	}
	// Multi-shot: nothing left, still fine.
	if err := ResolveInDoubt(m, c.Resolve); err != nil {
		t.Fatal(err)
	}
}
