package waitgraph

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/xid"
)

func TestNoCycleNoVictim(t *testing.T) {
	g := New()
	if v, _ := g.Add(1, 2); !v.IsNil() {
		t.Fatalf("victim %v on acyclic add", v)
	}
	if v, _ := g.Add(2, 3); !v.IsNil() {
		t.Fatalf("victim %v on acyclic add", v)
	}
	if v, _ := g.Add(1, 3); !v.IsNil() {
		t.Fatalf("victim %v on acyclic add", v)
	}
}

func TestTwoCycleVictimIsYoungest(t *testing.T) {
	g := New()
	g.Add(1, 2)
	v, cycle := g.Add(2, 1)
	if v != 2 {
		t.Fatalf("victim = %v, want t2 (youngest)", v)
	}
	if len(cycle) != 2 || cycle[0] != 2 {
		t.Fatalf("cycle = %v, want rotated to start at victim", cycle)
	}
}

func TestThreeCycle(t *testing.T) {
	g := New()
	g.Add(3, 7)
	g.Add(7, 5)
	v, cycle := g.Add(5, 3)
	if v != 7 {
		t.Fatalf("victim = %v, want t7", v)
	}
	if len(cycle) != 3 {
		t.Fatalf("cycle length = %d, want 3", len(cycle))
	}
}

func TestSelfEdgeIgnored(t *testing.T) {
	g := New()
	if v, _ := g.Add(4, 4); !v.IsNil() {
		t.Fatalf("self edge produced victim %v", v)
	}
	if len(g.Waiters()) != 0 {
		t.Fatal("self edge stored")
	}
}

func TestRefcountedRemove(t *testing.T) {
	g := New()
	g.Add(1, 2)
	g.Add(1, 2) // second mechanism blocks 1 on 2
	g.Remove(1, 2)
	// Edge must still exist: closing the cycle should detect it.
	if v, _ := g.Add(2, 1); v.IsNil() {
		t.Fatal("edge dropped after single Remove of double-added edge")
	}
	g.Remove(2, 1)
	g.Remove(1, 2)
	if v, _ := g.Add(2, 1); !v.IsNil() {
		t.Fatal("cycle detected after all edges removed")
	}
}

func TestRemoveWaiterAndNode(t *testing.T) {
	g := New()
	g.Add(1, 2)
	g.Add(2, 3)
	g.RemoveWaiter(1)
	if v, _ := g.Add(2, 1); !v.IsNil() {
		t.Fatal("cycle via removed waiter")
	}
	g.RemoveNode(2)
	if got := g.Waiters(); len(got) != 0 {
		t.Fatalf("Waiters after RemoveNode = %v", got)
	}
}

func TestMultiHolderAdd(t *testing.T) {
	g := New()
	g.Add(1, 2, 3, 4)
	g.Add(4, 5)
	v, cycle := g.Add(5, 1)
	if v != 5 {
		t.Fatalf("victim = %v, want t5", v)
	}
	if len(cycle) != 3 {
		t.Fatalf("cycle = %v, want length 3 (1->4->5)", cycle)
	}
}

// TestQuickAcyclicNeverVictims: inserting only forward edges (small tid
// waits on larger tid) can never produce a cycle.
func TestQuickAcyclicNeverVictims(t *testing.T) {
	f := func(pairs [][2]uint8) bool {
		g := New()
		for _, p := range pairs {
			a, b := xid.TID(p[0])+1, xid.TID(p[1])+1
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			if v, _ := g.Add(a, b); !v.IsNil() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCycleAlwaysDetected: adding a ring of edges must report a victim
// on the closing edge.
func TestQuickCycleAlwaysDetected(t *testing.T) {
	f := func(n uint8) bool {
		size := int(n%10) + 2
		g := New()
		for i := 1; i < size; i++ {
			if v, _ := g.Add(xid.TID(i), xid.TID(i+1)); !v.IsNil() {
				return false
			}
		}
		v, cycle := g.Add(xid.TID(size), 1)
		return v == xid.TID(size) && len(cycle) == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestDoomedVictimNotSelectedTwice: once a victim is selected, further
// cycles through it must not select it (or anyone else on its behalf)
// again until its blocking episode ends.
func TestDoomedVictimNotSelectedTwice(t *testing.T) {
	g := New()
	g.Add(1, 2)
	v, _ := g.Add(2, 1)
	if v != 2 {
		t.Fatalf("victim = %v, want t2", v)
	}
	if !g.Doomed(2) {
		t.Fatal("victim not marked doomed")
	}
	// A second mechanism blocks 2 on 1 again: same cycle, but the victim
	// is already being resolved — no second selection.
	if v, _ := g.Add(2, 1); !v.IsNil() {
		t.Fatalf("doomed victim re-selected: %v", v)
	}
	// A third transaction closing a cycle THROUGH the doomed victim also
	// sees no deadlock: 3 -> 2 (doomed) -> 1 -> ... is already breaking.
	g.Add(1, 3)
	if v, _ := g.Add(3, 2); !v.IsNil() {
		t.Fatalf("cycle through doomed victim selected %v", v)
	}
	// Once the victim stops waiting (abort removed its waits), the mark
	// clears and fresh cycles are detected again.
	g.RemoveWaiter(2)
	if g.Doomed(2) {
		t.Fatal("doomed mark survived end of blocking episode")
	}
	v, _ = g.Add(3, 1) // 1->3 already present: closes 1<->3
	if v != 3 {
		t.Fatalf("victim after episode end = %v, want t3", v)
	}
}

// TestDoomedClearedByLastEdgeRemove: clearing must trigger through Remove
// and through RemoveNode side effects, not only RemoveWaiter.
func TestDoomedClearedByLastEdgeRemove(t *testing.T) {
	g := New()
	g.Add(1, 2)
	if v, _ := g.Add(2, 1); v != 2 {
		t.Fatal("setup: no victim")
	}
	g.Remove(2, 1) // last outgoing edge of the victim
	if g.Doomed(2) {
		t.Fatal("doomed mark survived Remove of last edge")
	}

	g2 := New()
	g2.Add(1, 2)
	if v, _ := g2.Add(2, 1); v != 2 {
		t.Fatal("setup: no victim")
	}
	g2.RemoveNode(1) // deletes 2's only holder, emptying 2's edge set
	if g2.Doomed(2) {
		t.Fatal("doomed mark survived RemoveNode emptying the edge set")
	}
}

// TestStressConcurrentCycles hammers the detector with concurrent cycle
// creation and resolution across many disjoint rings at once (the shape
// the sharded lock manager produces: detections fired from many shard
// latches in parallel). Per ring it runs three phases:
//
//  1. ringSize goroutines concurrently add the ring's edges — exactly one
//     of them must be told it closed a deadlock (one victim per episode);
//  2. with the victim still doomed, ringSize goroutines concurrently
//     re-add the same edges — none may select a second victim, even
//     though the cycle is structurally present on every one of those
//     calls;
//  3. resolution and teardown run concurrently across rings.
//
// Completion of the test is itself the "detector never deadlocks" check.
func TestStressConcurrentCycles(t *testing.T) {
	const (
		rounds   = 100
		ringsPer = 8 // concurrent rings per round
		ringSize = 5
	)
	g := New()
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for r := 0; r < ringsPer; r++ {
			// Disjoint tid ranges per ring so rings share the graph and its
			// doomed set but not nodes: cross-ring interference cannot mask
			// a double selection within a ring.
			base := xid.TID(round*ringsPer*ringSize + r*ringSize + 1)
			edge := func(i int) (w, h xid.TID) {
				return base + xid.TID(i), base + xid.TID((i+1)%ringSize)
			}
			round, r := round, r
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Phase 1: build the ring concurrently. Adds serialize on
				// g.mu, so whichever Add lands last completes the cycle and
				// must be the single one that reports a victim.
				var selected int32
				var victim atomic.Uint64
				var inner sync.WaitGroup
				for i := 0; i < ringSize; i++ {
					i := i
					inner.Add(1)
					go func() {
						defer inner.Done()
						w, h := edge(i)
						if v, _ := g.Add(w, h); !v.IsNil() {
							atomic.AddInt32(&selected, 1)
							victim.Store(uint64(v))
						}
					}()
				}
				inner.Wait()
				if n := atomic.LoadInt32(&selected); n != 1 {
					t.Errorf("round %d ring %d: %d victims on creation, want exactly 1", round, r, n)
					return
				}
				v := xid.TID(victim.Load())
				// Phase 2: the victim is doomed and unresolved; concurrent
				// re-adds of every ring edge all see the complete cycle but
				// must not select again.
				var second int32
				for i := 0; i < ringSize; i++ {
					i := i
					inner.Add(1)
					go func() {
						defer inner.Done()
						w, h := edge(i)
						if v2, _ := g.Add(w, h); !v2.IsNil() {
							atomic.AddInt32(&second, 1)
						}
					}()
				}
				inner.Wait()
				if n := atomic.LoadInt32(&second); n != 0 {
					t.Errorf("round %d ring %d: %d extra victims while episode unresolved", round, r, n)
					return
				}
				// Phase 3: resolve as the lock manager would — the victim
				// stops waiting and terminates — then tear the ring down,
				// racing the other rings' phases.
				g.RemoveWaiter(v)
				g.RemoveNode(v)
				for i := 0; i < ringSize; i++ {
					g.RemoveNode(base + xid.TID(i))
				}
			}()
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		if got := g.Waiters(); len(got) != 0 {
			t.Fatalf("round %d: graph not empty after teardown: %v", round, got)
		}
	}
}

// TestDoomAttractsNoEdges: a transaction condemned via Doom (being aborted
// by context cancellation or deadline) must not attract new edges, and
// cycles through it must not select fresh victims — the abort already
// breaks them.
func TestDoomAttractsNoEdges(t *testing.T) {
	g := New()
	g.Doom(2)
	if v, _ := g.Add(1, 2); !v.IsNil() {
		t.Fatalf("victim %v from edge to doomed holder", v)
	}
	// The edge was not recorded: 1 is not a waiter.
	if ws := g.Waiters(); len(ws) != 0 {
		t.Fatalf("edge toward doomed holder recorded: waiters %v", ws)
	}
	// A would-be cycle through the doomed node selects no victim.
	if v, _ := g.Add(2, 3); !v.IsNil() {
		t.Fatalf("doomed waiter's own add selected victim %v", v)
	}
	if v, _ := g.Add(3, 2); !v.IsNil() {
		t.Fatalf("victim %v for a cycle the abort already breaks", v)
	}
	// Termination clears the mark with the node.
	g.RemoveNode(2)
	if g.Doomed(2) {
		t.Fatal("doomed mark survived RemoveNode")
	}
	// After the doomed transaction is gone, real cycles detect normally.
	if v, _ := g.Add(4, 3); !v.IsNil() {
		t.Fatalf("unexpected victim %v", v)
	}
	if v, _ := g.Add(3, 4); v.IsNil() {
		t.Fatal("genuine cycle not detected after doomed node removed")
	}
}
