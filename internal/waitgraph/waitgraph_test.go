package waitgraph

import (
	"testing"
	"testing/quick"

	"repro/internal/xid"
)

func TestNoCycleNoVictim(t *testing.T) {
	g := New()
	if v, _ := g.Add(1, 2); !v.IsNil() {
		t.Fatalf("victim %v on acyclic add", v)
	}
	if v, _ := g.Add(2, 3); !v.IsNil() {
		t.Fatalf("victim %v on acyclic add", v)
	}
	if v, _ := g.Add(1, 3); !v.IsNil() {
		t.Fatalf("victim %v on acyclic add", v)
	}
}

func TestTwoCycleVictimIsYoungest(t *testing.T) {
	g := New()
	g.Add(1, 2)
	v, cycle := g.Add(2, 1)
	if v != 2 {
		t.Fatalf("victim = %v, want t2 (youngest)", v)
	}
	if len(cycle) != 2 || cycle[0] != 2 {
		t.Fatalf("cycle = %v, want rotated to start at victim", cycle)
	}
}

func TestThreeCycle(t *testing.T) {
	g := New()
	g.Add(3, 7)
	g.Add(7, 5)
	v, cycle := g.Add(5, 3)
	if v != 7 {
		t.Fatalf("victim = %v, want t7", v)
	}
	if len(cycle) != 3 {
		t.Fatalf("cycle length = %d, want 3", len(cycle))
	}
}

func TestSelfEdgeIgnored(t *testing.T) {
	g := New()
	if v, _ := g.Add(4, 4); !v.IsNil() {
		t.Fatalf("self edge produced victim %v", v)
	}
	if len(g.Waiters()) != 0 {
		t.Fatal("self edge stored")
	}
}

func TestRefcountedRemove(t *testing.T) {
	g := New()
	g.Add(1, 2)
	g.Add(1, 2) // second mechanism blocks 1 on 2
	g.Remove(1, 2)
	// Edge must still exist: closing the cycle should detect it.
	if v, _ := g.Add(2, 1); v.IsNil() {
		t.Fatal("edge dropped after single Remove of double-added edge")
	}
	g.Remove(2, 1)
	g.Remove(1, 2)
	if v, _ := g.Add(2, 1); !v.IsNil() {
		t.Fatal("cycle detected after all edges removed")
	}
}

func TestRemoveWaiterAndNode(t *testing.T) {
	g := New()
	g.Add(1, 2)
	g.Add(2, 3)
	g.RemoveWaiter(1)
	if v, _ := g.Add(2, 1); !v.IsNil() {
		t.Fatal("cycle via removed waiter")
	}
	g.RemoveNode(2)
	if got := g.Waiters(); len(got) != 0 {
		t.Fatalf("Waiters after RemoveNode = %v", got)
	}
}

func TestMultiHolderAdd(t *testing.T) {
	g := New()
	g.Add(1, 2, 3, 4)
	g.Add(4, 5)
	v, cycle := g.Add(5, 1)
	if v != 5 {
		t.Fatalf("victim = %v, want t5", v)
	}
	if len(cycle) != 3 {
		t.Fatalf("cycle = %v, want length 3 (1->4->5)", cycle)
	}
}

// TestQuickAcyclicNeverVictims: inserting only forward edges (small tid
// waits on larger tid) can never produce a cycle.
func TestQuickAcyclicNeverVictims(t *testing.T) {
	f := func(pairs [][2]uint8) bool {
		g := New()
		for _, p := range pairs {
			a, b := xid.TID(p[0])+1, xid.TID(p[1])+1
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			if v, _ := g.Add(a, b); !v.IsNil() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCycleAlwaysDetected: adding a ring of edges must report a victim
// on the closing edge.
func TestQuickCycleAlwaysDetected(t *testing.T) {
	f := func(n uint8) bool {
		size := int(n%10) + 2
		g := New()
		for i := 1; i < size; i++ {
			if v, _ := g.Add(xid.TID(i), xid.TID(i+1)); !v.IsNil() {
				return false
			}
		}
		v, cycle := g.Add(xid.TID(size), 1)
		return v == xid.TID(size) && len(cycle) == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
