// Package waitgraph maintains a single waits-for graph spanning every kind
// of blocking in ASSET: transactions waiting for conflicting locks (§4.2
// read-lock/write-lock step 1b) and transactions whose commit is delayed by
// commit/abort dependencies (§4.2 commit steps 2a/2b). Because both kinds of
// wait feed one graph, deadlocks that cross the two mechanisms — ti blocked
// in commit on tj while tj is blocked on a lock ti holds — are detected,
// not just lock-lock cycles.
//
// An edge waiter → holder means "waiter cannot proceed until holder changes
// state". A cycle is a deadlock. Cycles are detected eagerly when an edge is
// added; the victim is the youngest transaction on the cycle (the one with
// the largest tid, since tids are assigned monotonically), which minimizes
// lost work.
//
// Victim selection is exactly-once per blocking episode: a selected victim
// is marked doomed until it stops waiting, and doomed transactions are
// treated as non-blocking by the cycle search (their outgoing edges are
// about to disappear — the victim is being aborted or is returning
// ErrDeadlock to its caller). Concurrent detectors racing through
// overlapping cycles therefore never double-select the same victim, which
// matters now that the sharded lock manager runs detection from many latches
// at once instead of under one global mutex.
package waitgraph

import (
	"sort"
	"sync"

	"repro/internal/xid"
)

// Graph is a concurrent waits-for graph. The zero value is not usable;
// create one with New. Its mutex is a leaf in the system's latch order: it
// is acquired with lock-shard latches held, and no Graph method calls back
// into the lock manager.
type Graph struct {
	//asset:latch order=50
	mu    sync.Mutex
	edges map[xid.TID]map[xid.TID]int // waiter -> holder -> refcount
	// doomed holds transactions selected as deadlock victims whose blocking
	// episode has not ended yet (they still have outgoing edges). They are
	// skipped by the cycle search and never re-selected.
	doomed map[xid.TID]bool
}

// New returns an empty waits-for graph.
func New() *Graph {
	return &Graph{
		edges:  make(map[xid.TID]map[xid.TID]int),
		doomed: make(map[xid.TID]bool),
	}
}

// Add records that waiter is blocked on each holder. If the new edges close
// one or more cycles, Add selects the youngest transaction on the first
// cycle found as the deadlock victim and returns it together with the cycle
// path (victim first). When no deadlock arises, the returned victim is the
// null tid.
//
// A cycle that passes through an already-doomed transaction reports no
// victim: that cycle is already being resolved, and resolving it twice
// would abort two transactions where one suffices.
//
// Edges are reference counted: a waiter blocked on the same holder through
// two mechanisms must Remove twice.
func (g *Graph) Add(waiter xid.TID, holders ...xid.TID) (victim xid.TID, cycle []xid.TID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	m := g.edges[waiter]
	if m == nil {
		m = make(map[xid.TID]int)
		g.edges[waiter] = m
	}
	for _, h := range holders {
		if h == waiter || h.IsNil() {
			continue
		}
		if g.doomed[h] {
			// The holder is already condemned (deadlock victim being
			// aborted, or a transaction cancelled by its context): its locks
			// are about to be released, so recording an edge toward it would
			// only let detectors pick a second victim for a cycle that is
			// already breaking. Dying transactions attract no edges.
			continue
		}
		m[h]++
	}
	if len(m) == 0 {
		delete(g.edges, waiter)
		return xid.NilTID, nil
	}
	cycle = g.findCycleFrom(waiter)
	if cycle == nil {
		return xid.NilTID, nil
	}
	victim = youngest(cycle)
	g.doomed[victim] = true
	// Rotate the cycle so the victim is first, for readable diagnostics.
	for i, t := range cycle {
		if t == victim {
			cycle = append(cycle[i:], cycle[:i]...)
			break
		}
	}
	return victim, cycle
}

// Doom marks t as condemned outside victim selection: the transaction is
// being aborted (context cancellation, deadline expiry, explicit abort) and
// its locks will be released shortly. Until its node is removed, the cycle
// search treats it as non-blocking — cycles through it never select a fresh
// victim — and new waiters record no edges toward it. The abort path calls
// this before cancelling the transaction's lock waits, so concurrent
// detectors racing the teardown cannot kill an innocent second transaction
// for a deadlock the abort is already resolving.
func (g *Graph) Doom(t xid.TID) {
	g.mu.Lock()
	g.doomed[t] = true
	g.mu.Unlock()
}

// Remove drops one reference on the edge waiter → holder. Removing a
// non-existent edge is a no-op. A waiter that loses its last outgoing edge
// has ended its blocking episode, so its doomed mark (if any) is cleared.
func (g *Graph) Remove(waiter, holder xid.TID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if m := g.edges[waiter]; m != nil {
		if m[holder] > 1 {
			m[holder]--
		} else {
			delete(m, holder)
			if len(m) == 0 {
				g.dropWaiterLocked(waiter)
			}
		}
	}
}

// RemoveWaiter drops every outgoing edge of waiter (it stopped waiting).
func (g *Graph) RemoveWaiter(waiter xid.TID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.dropWaiterLocked(waiter)
}

// RemoveNode drops the transaction entirely, both as waiter and as holder,
// when it terminates.
func (g *Graph) RemoveNode(t xid.TID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.dropWaiterLocked(t)
	for w, m := range g.edges {
		delete(m, t)
		if len(m) == 0 {
			g.dropWaiterLocked(w)
		}
	}
}

// dropWaiterLocked removes w's outgoing edges and ends its blocking
// episode. Caller holds g.mu.
func (g *Graph) dropWaiterLocked(w xid.TID) {
	delete(g.edges, w)
	delete(g.doomed, w)
}

// Waiters returns the transactions currently blocked, in ascending tid
// order. Intended for diagnostics and tests.
func (g *Graph) Waiters() []xid.TID {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]xid.TID, 0, len(g.edges))
	for w := range g.edges {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Doomed reports whether t has been selected as a deadlock victim and has
// not yet stopped waiting. Diagnostics and tests.
func (g *Graph) Doomed(t xid.TID) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.doomed[t]
}

// findCycleFrom performs a DFS from start and returns the first cycle that
// passes through start, or nil. Doomed transactions are treated as
// non-blocking and not traversed: their outgoing edges are about to vanish,
// so any cycle through them is already scheduled to break. Caller holds
// g.mu.
func (g *Graph) findCycleFrom(start xid.TID) []xid.TID {
	if g.doomed[start] {
		// The requester itself is already a pending victim; its episode
		// resolves without a second selection.
		return nil
	}
	var path []xid.TID
	onPath := make(map[xid.TID]bool)
	visited := make(map[xid.TID]bool)
	var dfs func(t xid.TID) []xid.TID
	dfs = func(t xid.TID) []xid.TID {
		path = append(path, t)
		onPath[t] = true
		visited[t] = true
		for h := range g.edges[t] {
			if g.doomed[h] {
				continue
			}
			if onPath[h] {
				// Found a cycle: the suffix of path from h onward.
				for i, p := range path {
					if p == h {
						return append([]xid.TID(nil), path[i:]...)
					}
				}
			}
			if !visited[h] {
				if c := dfs(h); c != nil {
					return c
				}
			}
		}
		path = path[:len(path)-1]
		onPath[t] = false
		return nil
	}
	return dfs(start)
}

func youngest(cycle []xid.TID) xid.TID {
	v := cycle[0]
	for _, t := range cycle[1:] {
		if t > v {
			v = t
		}
	}
	return v
}
