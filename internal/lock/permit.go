package lock

import (
	"repro/internal/xid"
)

// Permit records that grantor allows grantee to perform ops on the given
// objects despite conflicts with grantor's locks (§2.2 of the paper).
// Wildcards follow the paper's additional forms:
//
//   - grantee == NilTID: any transaction may perform the operations
//     (permit(ti, ob_set, operations));
//   - ops == 0: all operations (permit(ti, tj));
//   - oids == nil: every object grantor has accessed or has permission to
//     access (permit(ti, tj, operations)), materialized per §4.2 by walking
//     grantor's LRD list and incoming permits.
//
// Transitivity: with the default eager closure, inserting a permit from g
// derives the implied permits for every transaction that had permitted g on
// the same object (ops intersected), recursively. With lazy closure (A2
// ablation) the derivation happens at lock time instead.
//
// Cross-shard discipline: the grantor/grantee transaction states are
// resolved before any shard latch is taken; each object's PD work then runs
// under that object's shard latch alone.
func (m *Manager) Permit(grantor, grantee xid.TID, oids []xid.OID, ops xid.OpSet) {
	if ops == 0 {
		ops = xid.OpAll
	}
	// Materialize both transaction states up front so PD insertion under
	// shard latches only ever looks them up.
	grantorTS := m.txnOf(grantor)
	if !grantee.IsNil() {
		m.txnOf(grantee)
	}
	if oids == nil {
		oids = m.accessible(grantorTS)
	}
	for _, oid := range oids {
		s := m.shardOf(oid)
		s.lat.Lock()
		m.permitOneLocked(grantor, grantee, s.od(oid), ops)
		s.lat.Unlock()
	}
}

// accessible lists the objects grantor has accessed (its LRDs) or has
// permission to access (permits naming it as grantee). Reads the
// transaction state under its latch alone; permit liveness is an atomic
// flag, so no shard latch is needed.
func (m *Manager) accessible(ts *txnState) []xid.OID {
	ts.lat.Lock()
	defer ts.lat.Unlock()
	seen := make(map[xid.OID]bool)
	var out []xid.OID
	for oid := range ts.locks {
		if !seen[oid] {
			seen[oid] = true
			out = append(out, oid)
		}
	}
	for _, p := range ts.byGrantee {
		if p.isDead() {
			continue
		}
		if !seen[p.od.oid] {
			seen[p.od.oid] = true
			out = append(out, p.od.oid)
		}
	}
	return out
}

// permitOneLocked inserts (or widens) one PD and, under eager closure,
// materializes the implied transitive permits. Caller holds the shard
// latch of od.
func (m *Manager) permitOneLocked(grantor, grantee xid.TID, od *objDesc, ops xid.OpSet) {
	type ins struct {
		grantor, grantee xid.TID
		ops              xid.OpSet
	}
	work := []ins{{grantor, grantee, ops}}
	for len(work) > 0 {
		w := work[len(work)-1]
		work = work[:len(work)-1]
		if w.grantor == w.grantee && !w.grantee.IsNil() {
			continue
		}
		grew := m.insertPD(od, w.grantor, w.grantee, w.ops)
		if !grew || !m.opts.EagerClosure {
			continue
		}
		// Anyone who permitted w.grantor on this object implicitly permits
		// w.grantee for the intersection.
		for _, p := range od.permits {
			if p.isDead() {
				continue
			}
			if (p.grantee == w.grantor || p.grantee.IsNil()) && p.grantor != w.grantor {
				if shared := p.ops.Intersect(w.ops); shared != 0 {
					work = append(work, ins{p.grantor, w.grantee, shared})
				}
			}
		}
	}
	od.cond.Broadcast() // new permission may unblock waiters
}

// insertPD adds or widens the PD (grantor→grantee, ops) on od and reports
// whether the permission actually grew (for closure termination). A new
// descriptor registers in the grantor's and grantee's transaction states;
// if either side's state is dead or gone — the transaction terminated, and
// its ReleaseAll snapshot will not cover this descriptor — the permit dies
// with it immediately. Caller holds the shard latch; txnState latches nest
// inside it, one at a time.
func (m *Manager) insertPD(od *objDesc, grantor, grantee xid.TID, ops xid.OpSet) bool {
	for _, p := range od.permits {
		if p.isDead() || p.grantor != grantor || p.grantee != grantee {
			continue
		}
		if p.ops.Has(ops) {
			return false
		}
		p.ops = p.ops.Union(ops)
		return true
	}
	grantorTS, ok := m.txns.Get(uint64(grantor))
	if !ok {
		return false // grantor terminated; nothing to permit
	}
	p := &permit{od: od, grantor: grantor, grantee: grantee, ops: ops}
	grantorTS.lat.Lock()
	if grantorTS.dead {
		grantorTS.lat.Unlock()
		return false
	}
	grantorTS.byGrantor = append(grantorTS.byGrantor, p)
	grantorTS.lat.Unlock()
	od.permits = append(od.permits, p)
	if !grantee.IsNil() {
		granteeTS, ok := m.txns.Get(uint64(grantee))
		alive := false
		if ok {
			granteeTS.lat.Lock()
			if !granteeTS.dead {
				granteeTS.byGrantee = append(granteeTS.byGrantee, p)
				alive = true
			}
			granteeTS.lat.Unlock()
		}
		if !alive {
			// Grantee terminated: a permission to it is dead on arrival.
			// The grantor-side index entry lingers, skipped lazily.
			od.dropPermit(p)
			return false
		}
	}
	return true
}

// permits reports whether holder allows requester to perform ops on od,
// either by a direct PD or — under lazy closure — through a chain of
// permits starting at holder. Caller holds the shard latch.
func (m *Manager) permits(holder, requester xid.TID, od *objDesc, ops xid.OpSet) bool {
	if m.opts.EagerClosure {
		for _, p := range od.permits {
			if p.isDead() || p.grantor != holder {
				continue
			}
			if (p.grantee == requester || p.grantee.IsNil()) && p.ops.Has(ops) {
				return true
			}
		}
		return false
	}
	// Lazy closure: DFS along grantor chains, intersecting operations.
	type node struct {
		tid xid.TID
		ops xid.OpSet
	}
	visited := make(map[xid.TID]xid.OpSet)
	stack := []node{{holder, xid.OpAll}}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[n.tid].Has(n.ops) {
			continue
		}
		visited[n.tid] = visited[n.tid].Union(n.ops)
		for _, p := range od.permits {
			if p.isDead() || p.grantor != n.tid {
				continue
			}
			shared := p.ops.Intersect(n.ops)
			if !shared.Has(ops) {
				continue
			}
			if p.grantee == requester || p.grantee.IsNil() {
				return true
			}
			stack = append(stack, node{p.grantee, shared})
		}
	}
	return false
}

// Permitted reports whether holder currently permits requester to perform
// ops on oid (diagnostics and tests).
func (m *Manager) Permitted(holder, requester xid.TID, oid xid.OID, ops xid.OpSet) bool {
	s := m.shardOf(oid)
	s.lat.Lock()
	defer s.lat.Unlock()
	od := s.ods[oid]
	if od == nil {
		return false
	}
	return m.permits(holder, requester, od, ops)
}

// PermitCount returns the number of live permit descriptors on oid
// (benchmark E11 scans this list).
func (m *Manager) PermitCount(oid xid.OID) int {
	s := m.shardOf(oid)
	s.lat.Lock()
	defer s.lat.Unlock()
	od := s.ods[oid]
	if od == nil {
		return 0
	}
	return len(od.permits)
}
