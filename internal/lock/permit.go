package lock

import (
	"repro/internal/xid"
)

// Permit records that grantor allows grantee to perform ops on the given
// objects despite conflicts with grantor's locks (§2.2 of the paper).
// Wildcards follow the paper's additional forms:
//
//   - grantee == NilTID: any transaction may perform the operations
//     (permit(ti, ob_set, operations));
//   - ops == 0: all operations (permit(ti, tj));
//   - oids == nil: every object grantor has accessed or has permission to
//     access (permit(ti, tj, operations)), materialized per §4.2 by walking
//     grantor's LRD list and incoming permits.
//
// Transitivity: with the default eager closure, inserting a permit from g
// derives the implied permits for every transaction that had permitted g on
// the same object (ops intersected), recursively. With lazy closure (A2
// ablation) the derivation happens at lock time instead.
func (m *Manager) Permit(grantor, grantee xid.TID, oids []xid.OID, ops xid.OpSet) {
	if ops == 0 {
		ops = xid.OpAll
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if oids == nil {
		oids = m.accessibleLocked(grantor)
	}
	for _, oid := range oids {
		m.permitOneLocked(grantor, grantee, m.od(oid), ops)
	}
}

// accessibleLocked lists the objects grantor has accessed (its LRDs) or has
// permission to access (permits naming it as grantee). Caller holds m.mu.
func (m *Manager) accessibleLocked(grantor xid.TID) []xid.OID {
	seen := make(map[xid.OID]bool)
	var out []xid.OID
	for oid := range m.byTxn[grantor] {
		if !seen[oid] {
			seen[oid] = true
			out = append(out, oid)
		}
	}
	for _, p := range m.byGrantee[grantor] {
		if p.dead {
			continue
		}
		if !seen[p.od.oid] {
			seen[p.od.oid] = true
			out = append(out, p.od.oid)
		}
	}
	return out
}

// permitOneLocked inserts (or widens) one PD and, under eager closure,
// materializes the implied transitive permits. Caller holds m.mu.
func (m *Manager) permitOneLocked(grantor, grantee xid.TID, od *objDesc, ops xid.OpSet) {
	type ins struct {
		grantor, grantee xid.TID
		ops              xid.OpSet
	}
	work := []ins{{grantor, grantee, ops}}
	for len(work) > 0 {
		w := work[len(work)-1]
		work = work[:len(work)-1]
		if w.grantor == w.grantee && !w.grantee.IsNil() {
			continue
		}
		grew, _ := m.insertPD(od, w.grantor, w.grantee, w.ops)
		if !grew || !m.opts.EagerClosure {
			continue
		}
		// Anyone who permitted w.grantor on this object implicitly permits
		// w.grantee for the intersection.
		for _, p := range od.permits {
			if p.dead {
				continue
			}
			if (p.grantee == w.grantor || p.grantee.IsNil()) && p.grantor != w.grantor {
				if shared := p.ops.Intersect(w.ops); shared != 0 {
					work = append(work, ins{p.grantor, w.grantee, shared})
				}
			}
		}
	}
	od.cond.Broadcast() // new permission may unblock waiters
}

// insertPD adds or widens the PD (grantor→grantee, ops) on od. It reports
// whether the permission actually grew (for closure termination) and
// returns the descriptor.
func (m *Manager) insertPD(od *objDesc, grantor, grantee xid.TID, ops xid.OpSet) (bool, *permit) {
	for _, p := range od.permits {
		if p.dead || p.grantor != grantor || p.grantee != grantee {
			continue
		}
		if p.ops.Has(ops) {
			return false, p
		}
		p.ops = p.ops.Union(ops)
		return true, p
	}
	p := &permit{od: od, grantor: grantor, grantee: grantee, ops: ops}
	od.permits = append(od.permits, p)
	m.byGrantor[grantor] = append(m.byGrantor[grantor], p)
	if !grantee.IsNil() {
		m.byGrantee[grantee] = append(m.byGrantee[grantee], p)
	}
	return true, p
}

// permits reports whether holder allows requester to perform ops on od,
// either by a direct PD or — under lazy closure — through a chain of
// permits starting at holder. Caller holds m.mu.
func (m *Manager) permits(holder, requester xid.TID, od *objDesc, ops xid.OpSet) bool {
	if m.opts.EagerClosure {
		for _, p := range od.permits {
			if p.dead || p.grantor != holder {
				continue
			}
			if (p.grantee == requester || p.grantee.IsNil()) && p.ops.Has(ops) {
				return true
			}
		}
		return false
	}
	// Lazy closure: DFS along grantor chains, intersecting operations.
	type node struct {
		tid xid.TID
		ops xid.OpSet
	}
	visited := make(map[xid.TID]xid.OpSet)
	stack := []node{{holder, xid.OpAll}}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[n.tid].Has(n.ops) {
			continue
		}
		visited[n.tid] = visited[n.tid].Union(n.ops)
		for _, p := range od.permits {
			if p.dead || p.grantor != n.tid {
				continue
			}
			shared := p.ops.Intersect(n.ops)
			if !shared.Has(ops) {
				continue
			}
			if p.grantee == requester || p.grantee.IsNil() {
				return true
			}
			stack = append(stack, node{p.grantee, shared})
		}
	}
	return false
}

// Permitted reports whether holder currently permits requester to perform
// ops on oid (diagnostics and tests).
func (m *Manager) Permitted(holder, requester xid.TID, oid xid.OID, ops xid.OpSet) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	od := m.ods[oid]
	if od == nil {
		return false
	}
	return m.permits(holder, requester, od, ops)
}

// PermitCount returns the number of live permit descriptors on oid
// (benchmark E11 scans this list).
func (m *Manager) PermitCount(oid xid.OID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	od := m.ods[oid]
	if od == nil {
		return 0
	}
	return len(od.permits)
}
