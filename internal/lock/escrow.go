package lock

import (
	"context"
	"errors"

	"repro/internal/xid"
)

// ErrEscrow is returned by EscrowReserve when a bounded reservation can
// never be admitted: even if every other in-flight reservation resolves in
// the requester's favour (conflicting increments abort, helpful decrements
// commit), the declared bounds would still be violated. Blocking would be
// pointless — no termination of any current holder can make the request
// admissible — so the escrow test of O'Neil's method fails fast instead.
var ErrEscrow = errors.New("lock: escrow bounds would be violated")

// escrowState is the per-object side of bounded escrow accounting (the
// "in-flight min/max" ledger of the Malta/Martinez commutativity model):
// the committed value as seen through escrow traffic, the declared bounds,
// and the sums of in-flight reserved deltas by sign. Guarded by the home
// shard's latch, like the rest of the OD.
//
// The ledger maintains two inequalities as invariants (CheckInvariants
// verifies them as the escrow-accounting family):
//
//	val + infPos <= hi   — even if every in-flight increment commits,
//	                       the counter stays at or below the upper bound
//	val - infNeg >= lo   — even if every in-flight decrement commits,
//	                       the counter stays at or above the lower bound
//
// Admission preserves them; commit folds a holder's deltas into val and
// shrinks the in-flight sums by the same amounts; abort shrinks the sums
// alone. Both free headroom, so both broadcast the OD's cond.
type escrowState struct {
	bounded bool
	lo, hi  uint64
	val     uint64 // committed value (escrow traffic only; reads see the cache)
	infPos  uint64 // sum of in-flight positive reserved deltas
	infNeg  uint64 // sum of magnitudes of in-flight negative reserved deltas
	holders map[xid.TID]*escrowRes
}

// escrowRes is one transaction's outstanding reservation on one object:
// the positive and negative delta magnitudes it has reserved but not yet
// terminated.
type escrowRes struct {
	pos, neg uint64
}

// admit runs the escrow test for tid reserving delta. It returns
// admit=true when the worst-case resolution of every in-flight reservation
// keeps the counter in bounds; otherwise never=true when no favourable
// resolution of the *other* holders' reservations could ever admit the
// request (the requester's own reservations terminate with it, so they
// count as certain), and the other holders as blockers when waiting could
// help. Caller holds the shard latch.
func (e *escrowState) admit(tid xid.TID, delta int64) (ok, never bool, blockers []xid.TID) {
	if !e.bounded {
		return true, false, nil
	}
	var ownPos, ownNeg uint64
	if own := e.holders[tid]; own != nil {
		ownPos, ownNeg = own.pos, own.neg
	}
	if delta >= 0 {
		d := uint64(delta)
		// Worst case for hi: every in-flight increment commits.
		if headroom := e.hi - e.val - e.infPos; d <= headroom {
			return true, false, nil
		}
		// Best case: other increments abort, every decrement commits. Own
		// reservations are certain — they commit or abort together with
		// this request, so they cannot resolve in its favour.
		slack := e.hi - (e.val - e.infNeg)
		if d > slack || ownPos > slack-d {
			return false, true, nil
		}
	} else {
		g := uint64(-delta)
		// Worst case for lo: every in-flight decrement commits.
		if legroom := e.val - e.infNeg - e.lo; g <= legroom {
			return true, false, nil
		}
		// Best case: other decrements abort, every increment commits.
		slack := (e.val + e.infPos) - e.lo
		if g > slack || ownNeg > slack-g {
			return false, true, nil
		}
	}
	for h := range e.holders {
		if h != tid {
			blockers = append(blockers, h)
		}
	}
	if len(blockers) == 0 {
		// Only the requester's own reservations stand in the way, and they
		// cannot terminate while it blocks: waiting would deadlock on self.
		return false, true, nil
	}
	return false, false, blockers
}

// reserve records delta against tid's reservation. Caller holds the shard
// latch and has already passed admit.
func (e *escrowState) reserve(tid xid.TID, delta int64) {
	r := e.holders[tid]
	if r == nil {
		r = &escrowRes{}
		e.holders[tid] = r
	}
	if delta >= 0 {
		r.pos += uint64(delta)
		e.infPos += uint64(delta)
	} else {
		r.neg += uint64(-delta)
		e.infNeg += uint64(-delta)
	}
}

// unreserve backs a single delta out of tid's reservation (the operation
// failed after reserving; its effect never reached the cache). It reports
// whether the holder entry is now empty. Caller holds the shard latch.
func (e *escrowState) unreserve(tid xid.TID, delta int64) bool {
	r := e.holders[tid]
	if r == nil {
		return false
	}
	if delta >= 0 {
		d := min(uint64(delta), r.pos)
		r.pos -= d
		e.infPos -= d
	} else {
		g := min(uint64(-delta), r.neg)
		r.neg -= g
		e.infNeg -= g
	}
	if r.pos == 0 && r.neg == 0 {
		delete(e.holders, tid)
		return true
	}
	return false
}

// settle terminates tid's reservation: commit folds the net delta into the
// committed value, abort discards it. Either way the in-flight sums shrink
// and headroom is freed. Caller holds the shard latch.
func (e *escrowState) settle(tid xid.TID, commit bool) {
	r := e.holders[tid]
	if r == nil {
		return
	}
	if commit {
		e.val = e.val + r.pos - r.neg
	}
	e.infPos -= r.pos
	e.infNeg -= r.neg
	delete(e.holders, tid)
}

// DeclareEscrow declares (or re-declares) bounded escrow accounting for
// oid: the counter's committed value val and the inclusive bounds
// [lo, hi]. Subsequent EscrowReserve traffic on the object is charged
// against the bounds. Declaration requires a quiescent object — no
// in-flight reservations — because val is supplied by the caller and an
// in-flight delta would make it ambiguous; the lock-side value is
// authoritative from then on, maintained purely from committed escrow
// deltas, so it stays in step with a cache updated by the same deltas.
func (m *Manager) DeclareEscrow(oid xid.OID, val, lo, hi uint64) error {
	if lo > hi {
		return errors.New("lock: escrow bounds inverted (lo > hi)")
	}
	if val < lo || val > hi {
		return errors.New("lock: escrow value outside declared bounds")
	}
	s := m.shardOf(oid)
	s.lat.Lock()
	defer s.lat.Unlock()
	od := s.od(oid)
	if od.esc != nil && len(od.esc.holders) > 0 {
		return errors.New("lock: escrow declaration with reservations in flight")
	}
	od.esc = &escrowState{
		bounded: true, lo: lo, hi: hi, val: val,
		holders: make(map[xid.TID]*escrowRes),
	}
	od.cond.Broadcast()
	return nil
}

// DropEscrow removes oid's escrow declaration (the object was deleted, or
// its creation rolled back). Outstanding reservations are discarded with
// it; callers ensure quiescence the same way deletion does, by holding a
// conflicting write lock.
func (m *Manager) DropEscrow(oid xid.OID) {
	s := m.shardOf(oid)
	s.lat.Lock()
	if od := s.ods[oid]; od != nil && od.esc != nil {
		od.esc = nil
		od.cond.Broadcast()
	}
	s.lat.Unlock()
}

// EscrowInfo returns the declared escrow ledger for oid: the committed
// value, bounds, and in-flight sums. ok is false when no escrow is
// declared.
func (m *Manager) EscrowInfo(oid xid.OID) (val, lo, hi, infPos, infNeg uint64, ok bool) {
	s := m.shardOf(oid)
	s.lat.Lock()
	defer s.lat.Unlock()
	od := s.ods[oid]
	if od == nil || od.esc == nil {
		return 0, 0, 0, 0, 0, false
	}
	e := od.esc
	return e.val, e.lo, e.hi, e.infPos, e.infNeg, true
}

// EscrowReserve acquires the commutative lock mode for delta's sign
// (increment for delta >= 0, decrement for delta < 0) on oid and, when the
// object has a declared escrow, reserves delta against its bounds. It
// blocks — composing with deadlock detection, victim marking, timeouts,
// and cancellation exactly like Lock — while other holders' in-flight
// reservations exhaust the headroom, and fails fast with ErrEscrow when no
// resolution of theirs could ever admit the request.
func (m *Manager) EscrowReserve(tid xid.TID, oid xid.OID, delta int64) error {
	return m.EscrowReserveCtx(context.Background(), tid, oid, delta)
}

// EscrowReserveCtx is EscrowReserve bounded by a context, with LockCtx's
// abandonment semantics.
func (m *Manager) EscrowReserveCtx(ctx context.Context, tid xid.TID, oid xid.OID, delta int64) error {
	mode := xid.OpIncr
	if delta < 0 {
		mode = xid.OpDecr
	}
	return m.acquire(ctx, tid, oid, mode, delta, true)
}

// EscrowUnreserve backs out one reserved delta whose operation failed
// after the reservation was granted (missing object, log append failure):
// the delta never reached the cache, so folding it at commit would
// diverge. The lock mode itself stays granted, like any other lock.
func (m *Manager) EscrowUnreserve(tid xid.TID, oid xid.OID, delta int64) {
	s := m.shardOf(oid)
	s.lat.Lock()
	defer s.lat.Unlock()
	od := s.ods[oid]
	if od == nil || od.esc == nil {
		return
	}
	if od.esc.unreserve(tid, delta) {
		// The holder entry emptied; drop the index entry under the same
		// shard-latch hold (ts.lat nests inside it) so the ledger and the
		// index never disagree at a quiescent point.
		if ts, ok := m.txns.Get(uint64(tid)); ok {
			ts.lat.Lock()
			delete(ts.escrows, oid)
			ts.lat.Unlock()
		}
	}
	od.cond.Broadcast()
}

// EscrowCommit folds every in-flight reservation of tid into its object's
// committed value — the commit half of reservation settlement. The commit
// path calls it after the commit record is durable and before ReleaseAll;
// reservations still present at ReleaseAll (the abort path) are discarded
// instead. Visits shards one at a time, like every cross-shard operation.
func (m *Manager) EscrowCommit(tid xid.TID) {
	m.settleEscrows(tid, true)
}

// settleEscrows snapshots and clears tid's reservation index, then settles
// each object under its own shard latch.
func (m *Manager) settleEscrows(tid xid.TID, commit bool) {
	ts, ok := m.txns.Get(uint64(tid))
	if !ok {
		return
	}
	ts.lat.Lock()
	ods := make([]*objDesc, 0, len(ts.escrows))
	for _, od := range ts.escrows {
		ods = append(ods, od)
	}
	ts.escrows = nil
	ts.lat.Unlock()
	for _, od := range ods {
		s := od.home
		s.lat.Lock()
		if od.esc != nil {
			od.esc.settle(tid, commit)
			od.cond.Broadcast()
		}
		s.lat.Unlock()
	}
}
