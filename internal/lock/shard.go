package lock

import (
	"runtime"
	"sync"

	"repro/internal/htab"
	"repro/internal/latch"
	"repro/internal/xid"
)

// defaultShards is the lock-table shard count when Options.Shards is 0.
// 64 shards keep hot-spot collisions rare for tens of workers while the
// per-shard footprint (one latch, one map) stays trivial.
const defaultShards = 64

// lockShard is one slice of the lock table. It owns every object descriptor
// whose oid hashes to it — the OD's granted/pending LRD chains and PD list —
// all guarded by the shard latch, mirroring the paper's §4.1 use of EOS
// test-and-set latches on the OD hash chains. Condition variables (one per
// OD, built on the shard latch) park blocked requests.
type lockShard struct {
	//asset:latch order=20 spin
	lat latch.Latch
	ods map[xid.OID]*objDesc
	// Pad to a cache line so adjacent shards' latch words don't false-share.
	_ [64 - 8 - 8]byte
}

// shardOf returns the shard owning oid.
func (m *Manager) shardOf(oid xid.OID) *lockShard {
	return &m.shards[htab.Hash(uint64(oid))&m.shardMask]
}

// od returns oid's object descriptor, creating it if absent. Caller holds
// s.lat in X mode.
func (s *lockShard) od(oid xid.OID) *objDesc {
	od := s.ods[oid]
	if od == nil {
		od = &objDesc{oid: oid, home: s}
		od.cond = sync.NewCond(&s.lat)
		s.ods[oid] = od
	}
	return od
}

// ownerReq returns tid's granted LRD on od, or nil. Caller holds the shard
// latch. The OD chain — not the transaction's own index — is the ground
// truth consulted by the grant path, so a delegation that retagged or merged
// the LRD is always observed.
func (od *objDesc) ownerReq(tid xid.TID) *lockReq {
	for _, gl := range od.granted {
		if gl.tid == tid {
			return gl
		}
	}
	return nil
}

// dropGranted removes gl from od's granted chain by identity and reports
// whether it was present. Caller holds the shard latch.
func (od *objDesc) dropGranted(gl *lockReq) bool {
	for i, g := range od.granted {
		if g == gl {
			od.granted = append(od.granted[:i], od.granted[i+1:]...)
			return true
		}
	}
	return false
}

// dropPermit marks p dead and removes it from od's PD list. The descriptor
// stays in the transaction-side indexes and is skipped there lazily. Caller
// holds the shard latch.
func (od *objDesc) dropPermit(p *permit) {
	if p.dead.Swap(true) {
		return
	}
	for i, q := range od.permits {
		if q == p {
			od.permits = append(od.permits[:i], od.permits[i+1:]...)
			break
		}
	}
}

// txnState is the per-transaction side of the lock table: the transaction's
// LRD index ("list of t's lock requests" in the paper's TD), its registered
// pending requests, and its permit descriptors by grantor/grantee role.
// All fields are guarded by lat, which in the latch order comes AFTER shard
// latches: it is only ever acquired with at most one shard latch held, or
// with none.
type txnState struct {
	//asset:latch order=40 spin
	lat  latch.Latch
	tid  xid.TID
	dead bool // ReleaseAll tore this state down; registrations must not land here
	// locks indexes the granted LRDs by oid. Kept in step with the OD
	// chains: installGrant adds, delegation moves, ReleaseAll snapshots.
	locks map[xid.OID]*lockReq
	// waits holds the transaction's currently registered pending requests,
	// so CancelWaits and victim marking touch exactly the shards involved
	// instead of scanning the whole table.
	waits map[*lockReq]bool
	// escrows indexes the objects this transaction holds escrow
	// reservations on (lazily allocated), so settlement at termination
	// touches exactly the shards involved. Kept in step with the OD
	// ledgers: installGrant adds, delegation moves, settlement clears.
	escrows map[xid.OID]*objDesc
	// Permit descriptors naming this transaction as grantor / grantee.
	// Dead descriptors linger and are skipped; ReleaseAll drops them all.
	byGrantor []*permit
	byGrantee []*permit
}

// txnOf returns tid's live txnState, creating one if needed. If a concurrent
// ReleaseAll is tearing the state down (dead set, htab entry not yet gone),
// it waits out the teardown and starts fresh — a grant must never register
// into a state whose release snapshot has already been taken.
func (m *Manager) txnOf(tid xid.TID) *txnState {
	for {
		if ts, ok := m.txns.Get(uint64(tid)); ok {
			ts.lat.Lock()
			dead := ts.dead
			ts.lat.Unlock()
			if !dead {
				return ts
			}
			runtime.Gosched() // teardown in progress; retry after it unmaps
			continue
		}
		ts := &txnState{
			tid:   tid,
			locks: make(map[xid.OID]*lockReq),
			waits: make(map[*lockReq]bool),
		}
		if _, inserted := m.txns.PutIfAbsent(uint64(tid), ts); inserted {
			return ts
		}
	}
}

// registerWait records req in its transaction's wait set. Caller holds the
// shard latch of req's OD; ts.lat nests inside it. Registration into a
// dead state is skipped: the release already snapshotted the wait set, and
// the waiter's own grant path detects the dead state and gives up.
func (ts *txnState) registerWait(req *lockReq) {
	ts.lat.Lock()
	if !ts.dead {
		ts.waits[req] = true
	}
	ts.lat.Unlock()
}

// unregisterWait removes req from the wait set.
func (ts *txnState) unregisterWait(req *lockReq) {
	ts.lat.Lock()
	delete(ts.waits, req)
	ts.lat.Unlock()
}

// snapshotWaits returns the registered pending requests at this instant.
// Taken with no shard latch held (ts.lat alone is always safe to acquire).
func (ts *txnState) snapshotWaits() []*lockReq {
	ts.lat.Lock()
	out := make([]*lockReq, 0, len(ts.waits))
	for req := range ts.waits {
		out = append(out, req)
	}
	ts.lat.Unlock()
	return out
}
