package lock

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/waitgraph"
	"repro/internal/xid"
)

// TestLockCtxCancelWakesWaiter: cancelling the context of a blocked request
// wakes it promptly, returns ErrContext wrapping context.Canceled, and
// leaves the lock table as if the request had never been made (no pending
// LRD, no wait-graph edges, invariants clean).
func TestLockCtxCancelWakesWaiter(t *testing.T) {
	wg := waitgraph.New()
	m := New(wg, Options{EagerClosure: true})
	holder, waiter := xid.TID(1), xid.TID(2)
	oid := xid.OID(7)
	if err := m.Lock(holder, oid, xid.OpWrite); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan error, 1)
	go func() { res <- m.LockCtx(ctx, waiter, oid, xid.OpWrite) }()
	waitForWaiters(t, wg, 1)
	cancel()
	select {
	case err := <-res:
		if !errors.Is(err, ErrContext) || !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want ErrContext wrapping context.Canceled", err)
		}
	case <-time.After(100 * time.Millisecond):
		t.Fatal("cancelled waiter did not return within 100ms")
	}
	if ws := wg.Waiters(); len(ws) != 0 {
		t.Fatalf("wait-graph edges left behind: %v", ws)
	}
	if bad := m.CheckInvariants(); len(bad) != 0 {
		t.Fatalf("invariants violated: %v", bad)
	}
	// The object is still usable: release the holder, a third party locks.
	m.ReleaseAll(holder)
	if err := m.Lock(xid.TID(3), oid, xid.OpWrite); err != nil {
		t.Fatalf("post-cancel lock failed: %v", err)
	}
	m.ReleaseAll(xid.TID(3))
}

// TestLockCtxDeadline: a context deadline is the per-request wait bound and
// reports context.DeadlineExceeded.
func TestLockCtxDeadline(t *testing.T) {
	m := New(waitgraph.New(), Options{EagerClosure: true})
	holder, waiter := xid.TID(1), xid.TID(2)
	oid := xid.OID(9)
	if err := m.Lock(holder, oid, xid.OpWrite); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := m.LockCtx(ctx, waiter, oid, xid.OpRead)
	if !errors.Is(err, ErrContext) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want ErrContext wrapping DeadlineExceeded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("deadline wait took %v", d)
	}
	if bad := m.CheckInvariants(); len(bad) != 0 {
		t.Fatalf("invariants violated: %v", bad)
	}
	m.ReleaseAll(holder)
}

// TestLockCtxPreCancelled: a dead context fails fast even when the lock is
// free — the caller is tearing down and must not pick up new grants.
func TestLockCtxPreCancelled(t *testing.T) {
	m := New(waitgraph.New(), Options{EagerClosure: true})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m.LockCtx(ctx, 1, 5, xid.OpRead); !errors.Is(err, ErrContext) {
		t.Fatalf("got %v, want ErrContext", err)
	}
	if m.Holds(1, 5, xid.OpRead) {
		t.Fatal("grant installed despite dead context")
	}
}

// TestReleaseRaceDoesNotSuspendWithoutGrant is the regression for the
// half-merged-grant audit: when a permitted requester's transaction is
// released (cancelled) in the window between becoming grantable and
// installing its grant, the grantor's conflicting lock must NOT be left
// suspended — suspension is only justified by a conflicting grant that
// actually landed.
func TestReleaseRaceDoesNotSuspendWithoutGrant(t *testing.T) {
	for round := 0; round < 400; round++ {
		// WaitTimeout bounds the case where ReleaseAll wins the race and
		// strips the permit first: the lock attempt then faces a genuine
		// conflict and must time out rather than park forever.
		m := New(waitgraph.New(), Options{EagerClosure: true, WaitTimeout: 50 * time.Millisecond})
		grantor, grantee := xid.TID(1), xid.TID(2)
		oid, other := xid.OID(11), xid.OID(200)
		if err := m.Lock(grantor, oid, xid.OpWrite); err != nil {
			t.Fatal(err)
		}
		m.Permit(grantor, grantee, []xid.OID{oid}, xid.OpAll)
		// Materialize the grantee's txnState so ReleaseAll has state to tear
		// down while the racing Lock is in flight.
		if err := m.Lock(grantee, other, xid.OpRead); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		var lockErr error
		go func() {
			defer wg.Done()
			// Either granted (suspending the grantor) or cancelled/timed out
			// by the concurrent release; all are legal outcomes.
			lockErr = m.Lock(grantee, oid, xid.OpWrite)
		}()
		go func() {
			defer wg.Done()
			m.ReleaseAll(grantee)
		}()
		wg.Wait()
		m.ReleaseAll(grantee) // in case the grant won the race
		if lockErr != nil && !m.Holds(grantor, oid, xid.OpWrite) {
			// The grant never landed (the release won), so nothing may have
			// suspended the grantor's lock: Holds reporting false means the
			// half-merged state this test pins — suspension with no
			// conflicting grant to justify it. (When lockErr is nil the
			// grant did land and suspension is the documented sticky
			// semantics, which the grantor clears by re-acquiring.)
			t.Fatalf("round %d: grantor's lock suspended with no conflicting grant", round)
		}
		if bad := m.CheckInvariants(); len(bad) != 0 {
			t.Fatalf("round %d: invariants violated: %v", round, bad)
		}
	}
}

// TestTimeoutDuringDelegateMerge stresses the satellite audit: lock
// requests timing out (and being cancelled by context) while delegations
// repeatedly merge and move LRDs on the same object must never corrupt the
// table — no duplicate grants, no orphaned suspension, indexes in step.
func TestTimeoutDuringDelegateMerge(t *testing.T) {
	for _, shards := range []int{1, 8} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			m := New(waitgraph.New(), Options{
				EagerClosure: true,
				Shards:       shards,
				WaitTimeout:  2 * time.Millisecond,
				NoDetection:  true, // timeouts resolve the induced conflicts
			})
			oid := xid.OID(42)
			from, to := xid.TID(1), xid.TID(2)
			if err := m.Lock(from, oid, xid.OpWrite); err != nil {
				t.Fatal(err)
			}
			// to also holds a read lock elsewhere plus a read lock on oid is
			// impossible (conflict), so give it a lock on another object to
			// exercise the multi-entry delegate path.
			if err := m.Lock(from, xid.OID(43), xid.OpRead); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			stop := make(chan struct{})
			// Waiters: a steady stream of short-timeout and short-ctx
			// requests against the contested object.
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(tid xid.TID) {
					defer wg.Done()
					i := 0
					for {
						select {
						case <-stop:
							return
						default:
						}
						i++
						var err error
						if i%2 == 0 {
							ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
							err = m.LockCtx(ctx, tid, oid, xid.OpWrite)
							cancel()
						} else {
							err = m.Lock(tid, oid, xid.OpWrite)
						}
						if err == nil {
							m.ReleaseAll(tid)
						}
						switch {
						case err == nil,
							errors.Is(err, ErrTimeout),
							errors.Is(err, ErrContext),
							errors.Is(err, ErrCancelled):
						default:
							t.Errorf("waiter %v: unexpected error %v", tid, err)
							return
						}
					}
				}(xid.TID(10 + w))
			}
			// Delegator: bounce the contested LRD between from and to, which
			// exercises the retag path and (when a waiter sneaks a grant in
			// between) the merge path.
			wg.Add(1)
			go func() {
				defer wg.Done()
				cur, next := from, to
				for i := 0; i < 600; i++ {
					m.Delegate(cur, next, nil)
					cur, next = next, cur
				}
				close(stop)
			}()
			wg.Wait()
			if bad := m.CheckInvariants(); len(bad) != 0 {
				t.Fatalf("invariants violated after delegate/timeout storm: %v", bad)
			}
		})
	}
}

// waitForWaiters spins until the wait graph records n waiters.
func waitForWaiters(t *testing.T, wg *waitgraph.Graph, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for len(wg.Waiters()) < n {
		if time.Now().After(deadline) {
			t.Fatalf("never saw %d waiters (have %v)", n, wg.Waiters())
		}
		time.Sleep(time.Millisecond)
	}
}
