// Package lock implements the ASSET lock manager of §4 of the paper: object
// descriptors (OD) holding granted and pending lock request descriptors
// (LRD) and a list of permit descriptors (PD), the read-lock/write-lock
// algorithm with permit-driven suspension, lock delegation, and release at
// transaction termination.
//
// Two behaviours distinguish it from a classical lock manager:
//
//   - permit: a transaction ti can allow tj to acquire locks that conflict
//     with ti's own. When that happens, ti's conflicting granted lock is
//     *suspended* — it stays on the object, and ti must in turn obtain
//     permission (or wait) before operating on the object again. Permits
//     compose transitively: once ti has permitted tj, a permit from tj to tk
//     implies one from ti to tk on the intersection of objects/operations.
//
//   - delegate: the lock (and thereby undo/commit responsibility, handled by
//     the caller) moves from ti to tj, as used by nested, split/join and
//     similar models.
//
// Blocking requests join a FIFO pending queue per object; every block
// registers edges in the shared waits-for graph, so deadlocks — including
// ones crossing into commit dependencies — are detected at block time.
//
// # Sharding and latch order
//
// The lock table is sharded: oids hash onto Options.Shards lockShards, each
// owning its ODs' LRD/PD chains under one short-term latch, the way §4.1
// latches the OD hash chains in EOS. Lock traffic on objects in different
// shards never serializes. Transaction-side state (LRD index, wait set,
// permit indexes) lives in per-transaction txnState records in a sharded
// hash table. Latches nest in one global order (see DESIGN.md §8):
//
//	shard latch  →  txnState latch  →  wait-graph mutex
//
// with the added rule that ordinary operations hold at most ONE shard latch
// at a time — cross-shard operations (delegate and permit over object sets,
// multi-object release, victim marking) visit shards sequentially, making
// cross-shard latch deadlock structurally impossible. Only the invariant
// checker (invariants.go) holds all shard latches at once, acquiring them
// in ascending index order.
package lock

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/htab"
	"repro/internal/waitgraph"
	"repro/internal/xid"
)

// Errors returned by Lock.
var (
	// ErrDeadlock is returned to a requester chosen as a deadlock victim.
	ErrDeadlock = errors.New("lock: deadlock victim")
	// ErrCancelled is returned when the waiter's transaction was aborted
	// while it was blocked.
	ErrCancelled = errors.New("lock: wait cancelled (transaction aborted)")
	// ErrTimeout is returned when a request waited longer than the
	// configured WaitTimeout (the fallback resolution when deadlock
	// detection is disabled).
	ErrTimeout = errors.New("lock: wait timed out")
	// ErrContext is returned by LockCtx when the request's context was
	// cancelled or its deadline expired; the returned error wraps the
	// context's cancellation cause (context.Cause), so errors.Is against
	// context.Canceled, context.DeadlineExceeded, or a caller-supplied
	// cause (e.g. a session's lease expiry) classifies the abandonment.
	// Per-request deadlines travel in the context, superseding the single
	// global WaitTimeout for callers that use them.
	ErrContext = errors.New("lock: wait abandoned by context")
)

// reqStatus is the LRD status field: granted, pending, or upgrading (a
// pending request by a transaction that already holds a weaker lock).
type reqStatus int8

const (
	statusGranted reqStatus = iota
	statusPending
	statusUpgrading
)

// lockReq is the lock request descriptor (LRD) of §4.1: one transaction's
// granted or pending request on one object. All fields after od are guarded
// by the owning shard's latch.
type lockReq struct {
	tid       xid.TID
	od        *objDesc
	mode      xid.OpSet
	status    reqStatus
	suspended bool  // granted lock suspended by a permitted conflicting grant
	cancelled bool  // waiter was aborted; it must give up
	victim    bool  // waiter was chosen as deadlock victim
	timedOut  bool  // waiter exceeded Options.WaitTimeout
	ctxErr    error // waiter's context was cancelled or expired
	escrow    bool  // request carries an escrow reservation of delta
	delta     int64 // reserved delta (meaningful when escrow)
	escNever  bool  // escrow test concluded the reservation can never be admitted
}

// objDesc is the object descriptor (OD) of Figure 1: granted and pending
// LRD lists and the object's permit list, guarded by the home shard's latch.
type objDesc struct {
	oid     xid.OID
	home    *lockShard
	granted []*lockReq
	pending []*lockReq // FIFO
	permits []*permit
	esc     *escrowState // bounded escrow ledger; nil when not declared
	cond    *sync.Cond   // on the shard latch; signalled on release/suspension change
}

// permit is the permit descriptor (PD): grantor allows grantee (NilTID =
// any transaction) to perform ops on the object even when they conflict with
// grantor's locks. ops is guarded by the shard latch; dead is atomic because
// transaction-side index scans (accessible, invariant checks) read it under
// a txnState latch while shard-side code flips it under the shard latch.
type permit struct {
	od      *objDesc
	grantor xid.TID
	grantee xid.TID // NilTID = any transaction
	ops     xid.OpSet
	dead    atomic.Bool // lazily removed from secondary indexes
}

func (p *permit) isDead() bool { return p.dead.Load() }

// Options configures a lock manager.
type Options struct {
	// OnVictim is invoked (on its own goroutine) when deadlock detection
	// selects a transaction other than the requester as the victim; the
	// transaction system should abort it. May be nil.
	OnVictim func(xid.TID)
	// NoQueueFairness disables FIFO ordering of pending requests (a request
	// is granted as soon as it is compatible with the granted group). Used
	// by ablation benchmarks.
	NoQueueFairness bool
	// EagerClosure controls permit transitivity. When true (the default
	// used by New), implied permits are materialized at insertion. When
	// false they are discovered by walking grantor chains at lock time
	// (ablation A2).
	EagerClosure bool
	// WaitTimeout bounds how long a request may block; 0 means forever.
	// Timeouts are the deadlock resolution of last resort when detection
	// is disabled (and a belt-and-braces bound when it is not).
	WaitTimeout time.Duration
	// NoDetection disables deadlock victim selection entirely (ablation
	// A4): wait-for edges are still recorded for diagnostics, but cycles
	// go unnoticed and blocked requests wait until granted, cancelled, or
	// timed out. Combine with WaitTimeout, or deadlocks wait forever.
	NoDetection bool
	// Shards is the lock-table shard count, rounded up to a power of two;
	// <= 0 selects the default (64). 1 reproduces the legacy fully-serial
	// lock table.
	Shards int
}

// Manager is the sharded lock manager. Object state lives in shards (one
// latch each); transaction state lives in txnState records.
type Manager struct {
	opts      Options
	shards    []lockShard
	shardMask uint64
	txns      *htab.Map[*txnState]
	wg        *waitgraph.Graph
}

// New returns a lock manager wired to the shared waits-for graph.
func New(wg *waitgraph.Graph, opts Options) *Manager {
	if wg == nil {
		wg = waitgraph.New()
	}
	n := opts.Shards
	if n <= 0 {
		n = defaultShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	m := &Manager{
		opts:      opts,
		shards:    make([]lockShard, p),
		shardMask: uint64(p - 1),
		txns:      htab.New[*txnState](0),
		wg:        wg,
	}
	for i := range m.shards {
		m.shards[i].ods = make(map[xid.OID]*objDesc)
	}
	return m
}

// NumShards returns the configured shard count (after power-of-two
// rounding). Tests and benchmarks use it to label configurations.
func (m *Manager) NumShards() int { return len(m.shards) }

// Lock acquires (or upgrades to) the given mode on oid for tid, blocking
// until granted. It returns ErrDeadlock if the request was chosen as a
// deadlock victim and ErrCancelled if the transaction was aborted while
// waiting.
func (m *Manager) Lock(tid xid.TID, oid xid.OID, mode xid.OpSet) error {
	return m.LockCtx(context.Background(), tid, oid, mode)
}

// LockCtx is Lock with a caller-supplied context: a cancelled or
// deadline-expired context wakes the waiter parked on the object's cond and
// returns ErrContext (wrapping the context error), with the pending request
// removed and its wait-graph edges cleared — the lock table is left exactly
// as if the request had never been made. Context deadlines are the
// per-request replacement for the single global Options.WaitTimeout, which
// still applies as a backstop when both are configured. A background (or
// never-cancellable) context adds no overhead over Lock.
func (m *Manager) LockCtx(ctx context.Context, tid xid.TID, oid xid.OID, mode xid.OpSet) error {
	return m.acquire(ctx, tid, oid, mode, 0, false)
}

// acquire is the shared body of LockCtx and EscrowReserveCtx. An escrow
// request additionally runs the bounds-admission test at grant time and
// records its reservation atomically with the grant; it can fail with
// ErrEscrow when the test proves the reservation can never be admitted.
func (m *Manager) acquire(ctx context.Context, tid xid.TID, oid xid.OID, mode xid.OpSet, delta int64, escrow bool) error {
	if mode == 0 {
		return fmt.Errorf("lock: empty mode requested on %v", oid)
	}
	if ctx.Err() != nil {
		return fmt.Errorf("%w: %w", ErrContext, context.Cause(ctx))
	}
	ts := m.txnOf(tid)
	s := m.shardOf(oid)
	s.lat.Lock()
	od := s.od(oid)

	own := od.ownerReq(tid)
	// Fast path: own unsuspended covering lock (§4.2 step 1a). An escrow
	// request on an object with a declared ledger cannot take it — the
	// reservation must still pass admission — but with no ledger the
	// reservation is vacuous and the covering mode suffices.
	if own != nil && !own.suspended && own.mode.Has(mode) && (!escrow || od.esc == nil) {
		s.lat.Unlock()
		return nil
	}

	// Enqueue a pending/upgrading request and register it with the
	// transaction so cancel/victim marking can find it without a table scan.
	req := &lockReq{tid: tid, od: od, mode: mode, status: statusPending, escrow: escrow, delta: delta}
	if own != nil {
		req.status = statusUpgrading
	}
	od.pending = append(od.pending, req)
	ts.registerWait(req)
	if m.opts.WaitTimeout > 0 {
		timer := time.AfterFunc(m.opts.WaitTimeout, func() {
			s.lat.Lock()
			req.timedOut = true
			od.cond.Broadcast()
			s.lat.Unlock()
		})
		defer timer.Stop()
	}
	if done := ctx.Done(); done != nil {
		// A watcher goroutine converts context death into a cond wake-up.
		// It may fire after the request is already resolved (the stop and
		// the cancellation race); setting ctxErr on a request that has left
		// the pending queue is harmless, and the stray broadcast only makes
		// other waiters re-evaluate.
		stop := make(chan struct{})
		defer close(stop)
		//asset:goroutine joined-by=ctx
		go func() {
			select {
			case <-done:
				s.lat.Lock()
				// Cause, not Err: a session teardown cancelling the request
				// carries its reason (e.g. lease expiry) as the cause, and
				// that reason must survive into the returned error.
				req.ctxErr = context.Cause(ctx)
				od.cond.Broadcast()
				s.lat.Unlock()
			case <-stop:
			}
		}()
	}

	// Wait-for edges registered for the current blocker set. Always cleared
	// while the shard latch is still held, so an observer holding every
	// shard latch sees edges if and only if the pending request is present.
	var waitedOn []xid.TID
	clearEdges := func() {
		for _, h := range waitedOn {
			m.wg.Remove(tid, h)
		}
		waitedOn = nil
	}
	// exit finalizes a non-grant outcome under the shard latch.
	exit := func(err error) error {
		m.removePending(od, req)
		ts.unregisterWait(req)
		clearEdges()
		s.lat.Unlock()
		return err
	}

	var lastKilled xid.TID
	for {
		blockers, permitted := m.tryGrant(req)
		if req.cancelled {
			return exit(ErrCancelled)
		}
		if req.victim {
			return exit(ErrDeadlock)
		}
		if req.ctxErr != nil {
			// Context death abandons the request even when it became
			// grantable in the same wake-up: the caller is tearing the
			// transaction down and must not pick up new grants.
			return exit(fmt.Errorf("%w: %w", ErrContext, req.ctxErr))
		}
		if req.timedOut && len(blockers) > 0 {
			return exit(ErrTimeout)
		}
		if req.escNever {
			// The escrow test proved no resolution of the other holders'
			// reservations can admit this delta within the declared bounds.
			return exit(ErrEscrow)
		}
		if len(blockers) == 0 {
			// Grant: install first, then suspend the permitted conflicting
			// locks. The order matters: installGrant refuses (returns false)
			// when a concurrent ReleaseAll tore the transaction down while
			// we raced to the grant, and suspending the permitted holders
			// before knowing the grant landed would leave their locks
			// suspended with no conflicting grant to justify it — a
			// half-merged state nothing would ever repair. Both steps happen
			// under the same continuous latch hold, so the reordering is
			// invisible to other threads.
			m.removePending(od, req)
			ts.unregisterWait(req)
			clearEdges()
			granted := m.installGrant(ts, od, tid, mode, delta, escrow)
			if granted {
				for _, gl := range permitted {
					gl.suspended = true
				}
				if len(permitted) > 0 {
					od.cond.Broadcast() // suspension may unblock re-checkers
				}
			}
			s.lat.Unlock()
			if !granted {
				// The transaction was released while we raced to the grant;
				// nothing was installed, treat as an aborted waiter.
				return ErrCancelled
			}
			return nil
		}
		// Re-register wait edges against the current blocker set.
		clearEdges()
		victim, _ := m.wg.Add(tid, blockers...)
		waitedOn = append(waitedOn, blockers...)
		if !m.opts.NoDetection && !victim.IsNil() {
			if victim == tid {
				return exit(ErrDeadlock)
			}
			if victim != lastKilled {
				lastKilled = victim
				// Victim marking touches other shards; drop ours first
				// (ordinary operations hold at most one shard latch).
				s.lat.Unlock()
				m.killVictim(victim)
				s.lat.Lock()
				continue
			}
		}
		od.cond.Wait()
	}
}

// tryGrant evaluates §4.2 steps 1a/1b for req. It returns the transactions
// that block the request (empty means grantable) and the conflicting
// granted locks whose holders permit the requester (to be suspended on
// grant). The requester's own granted LRD, if any, is recognized by tid on
// the OD chain — never by a caller-held pointer, which delegation can
// stale. Caller holds the shard latch.
func (m *Manager) tryGrant(req *lockReq) (blockers []xid.TID, permitted []*lockReq) {
	od := req.od
	for _, gl := range od.granted {
		if gl.tid == req.tid {
			continue // our own lock never blocks us
		}
		// Suspended locks conflict like granted ones: only the holder's own
		// fast path is affected by suspension. A third party without
		// permission must still wait (it would otherwise see uncommitted
		// data of the suspended holder).
		if !gl.mode.Conflicts(req.mode) {
			continue
		}
		if m.permits(gl.tid, req.tid, od, req.mode) {
			permitted = append(permitted, gl)
			continue
		}
		blockers = append(blockers, gl.tid)
	}
	// FIFO fairness: an ordinary pending request also waits behind earlier
	// conflicting pending requests; upgrades jump the queue.
	if !m.opts.NoQueueFairness && req.status != statusUpgrading {
		for _, p := range od.pending {
			if p == req {
				break
			}
			if p.tid != req.tid && p.mode.Conflicts(req.mode) &&
				!p.victim && !p.cancelled && !p.timedOut && p.ctxErr == nil {
				blockers = append(blockers, p.tid)
			}
		}
	}
	if len(blockers) > 0 {
		return blockers, nil
	}
	// Mode-compatible escrow request: run the bounds-admission test. A
	// failing test blocks on the other reservation holders — any of their
	// terminations (commit of a helpful delta, abort of a competing one)
	// frees headroom and broadcasts the cond — unless no resolution of
	// theirs could ever admit the delta, which fails fast via escNever.
	if req.escrow && od.esc != nil {
		ok, never, holders := od.esc.admit(req.tid, req.delta)
		if !ok {
			if never {
				req.escNever = true
				return nil, nil
			}
			return holders, nil
		}
	}
	return nil, permitted
}

// installGrant merges the granted mode into the requester's LRD on the OD
// chain (creating one if needed) and clears any suspension (§4.2 step 2).
// An escrow grant also records its reservation in the OD's ledger and the
// transaction's reservation index under the same txnState-latch hold, so a
// concurrent ReleaseAll either sees both the grant and the reservation in
// its snapshot or neither. It reports false — installing nothing — if the
// transaction's state was torn down by a concurrent ReleaseAll, in which
// case a new grant would leak. Caller holds the shard latch.
func (m *Manager) installGrant(ts *txnState, od *objDesc, tid xid.TID, mode xid.OpSet, delta int64, escrow bool) bool {
	reserve := escrow && od.esc != nil
	// Re-look up rather than trusting the caller's possibly-stale own
	// pointer: a delegation may have handed us a lock while we slept.
	if gl := od.ownerReq(tid); gl != nil && !reserve {
		gl.mode = gl.mode.Union(mode)
		gl.suspended = false
		return true
	}
	ts.lat.Lock()
	if ts.dead {
		ts.lat.Unlock()
		return false
	}
	if gl := od.ownerReq(tid); gl != nil {
		gl.mode = gl.mode.Union(mode)
		gl.suspended = false
	} else {
		gl := &lockReq{tid: tid, od: od, mode: mode, status: statusGranted}
		od.granted = append(od.granted, gl)
		ts.locks[od.oid] = gl
	}
	if reserve {
		od.esc.reserve(tid, delta)
		if ts.escrows == nil {
			ts.escrows = make(map[xid.OID]*objDesc)
		}
		ts.escrows[od.oid] = od
	}
	ts.lat.Unlock()
	return true
}

// removePending drops req from its OD's pending queue (by identity) and
// wakes later waiters, whose queue position improved. Caller holds the
// shard latch.
func (m *Manager) removePending(od *objDesc, req *lockReq) {
	for i, p := range od.pending {
		if p == req {
			od.pending = append(od.pending[:i], od.pending[i+1:]...)
			break
		}
	}
	od.cond.Broadcast()
}

// killVictim marks the victim's pending requests and notifies the
// transaction system so it aborts the victim. Called with NO latches held.
func (m *Manager) killVictim(victim xid.TID) {
	m.markVictim(victim)
	if m.opts.OnVictim != nil {
		// The victim callback is the one sanctioned fire-and-forget spawn:
		// it is the notification seam to the transaction system, which owns
		// its own lifetime (core aborts run on the caller's stack there).
		//lint:allow goroleak fire-and-forget victim notification; callee owns its lifetime
		go m.opts.OnVictim(victim)
	}
}

// markVictim flags every registered pending request of the victim, one
// shard at a time. Called with no latches held.
func (m *Manager) markVictim(victim xid.TID) {
	ts, ok := m.txns.Get(uint64(victim))
	if !ok {
		return
	}
	for _, req := range ts.snapshotWaits() {
		s := req.od.home
		s.lat.Lock()
		req.victim = true
		req.od.cond.Broadcast()
		s.lat.Unlock()
	}
}

// CancelWaits wakes every pending request of tid with ErrCancelled; the
// abort path calls it before releasing locks.
func (m *Manager) CancelWaits(tid xid.TID) {
	ts, ok := m.txns.Get(uint64(tid))
	if !ok {
		return
	}
	for _, req := range ts.snapshotWaits() {
		s := req.od.home
		s.lat.Lock()
		req.cancelled = true
		req.od.cond.Broadcast()
		s.lat.Unlock()
	}
}

// Holds reports whether tid currently holds an unsuspended lock covering
// mode on oid.
func (m *Manager) Holds(tid xid.TID, oid xid.OID, mode xid.OpSet) bool {
	s := m.shardOf(oid)
	s.lat.Lock()
	defer s.lat.Unlock()
	od := s.ods[oid]
	if od == nil {
		return false
	}
	gl := od.ownerReq(tid)
	return gl != nil && !gl.suspended && gl.mode.Has(mode)
}

// HeldObjects returns the objects tid holds locks on, in unspecified order.
func (m *Manager) HeldObjects(tid xid.TID) []xid.OID {
	ts, ok := m.txns.Get(uint64(tid))
	if !ok {
		return nil
	}
	ts.lat.Lock()
	defer ts.lat.Unlock()
	out := make([]xid.OID, 0, len(ts.locks))
	for oid := range ts.locks {
		out = append(out, oid)
	}
	return out
}

// ReleaseAll implements §4.2 commit step 6 / abort step 3: drop every lock
// tid holds and every permission given by or to tid, then wake waiters.
// Escrow reservations still indexed here are discarded — the abort half of
// reservation settlement; the commit path folds them into the ledger via
// EscrowCommit first, which clears the index. The transaction's state is
// snapshotted and marked dead under its latch, then each affected shard is
// visited in turn — at most one shard latch held at a time.
func (m *Manager) ReleaseAll(tid xid.TID) {
	ts, ok := m.txns.Get(uint64(tid))
	if ok {
		ts.lat.Lock()
		ts.dead = true
		locks := make([]*lockReq, 0, len(ts.locks))
		for _, gl := range ts.locks {
			locks = append(locks, gl)
		}
		permits := append(ts.byGrantor, ts.byGrantee...)
		escrows := make([]*objDesc, 0, len(ts.escrows))
		for _, od := range ts.escrows {
			escrows = append(escrows, od)
		}
		ts.locks, ts.waits, ts.escrows = nil, nil, nil
		ts.byGrantor, ts.byGrantee = nil, nil
		ts.lat.Unlock()
		m.txns.Delete(uint64(tid))

		for _, od := range escrows {
			s := od.home
			s.lat.Lock()
			if od.esc != nil {
				od.esc.settle(tid, false)
				od.cond.Broadcast()
			}
			s.lat.Unlock()
		}
		for _, gl := range locks {
			s := gl.od.home
			s.lat.Lock()
			// Re-check ownership under the latch: a racing delegation may
			// have retagged this very LRD to another transaction, whose
			// lock must survive.
			if gl.tid == tid {
				gl.od.dropGranted(gl)
				gl.od.cond.Broadcast()
			}
			s.lat.Unlock()
		}
		for _, p := range permits {
			s := p.od.home
			s.lat.Lock()
			if !p.isDead() {
				p.od.dropPermit(p)
				p.od.cond.Broadcast()
			}
			s.lat.Unlock()
		}
	}
	m.wg.RemoveNode(tid)
}
