// Package lock implements the ASSET lock manager of §4 of the paper: object
// descriptors (OD) holding granted and pending lock request descriptors
// (LRD) and a list of permit descriptors (PD), the read-lock/write-lock
// algorithm with permit-driven suspension, lock delegation, and release at
// transaction termination.
//
// Two behaviours distinguish it from a classical lock manager:
//
//   - permit: a transaction ti can allow tj to acquire locks that conflict
//     with ti's own. When that happens, ti's conflicting granted lock is
//     *suspended* — it stays on the object, and ti must in turn obtain
//     permission (or wait) before operating on the object again. Permits
//     compose transitively: once ti has permitted tj, a permit from tj to tk
//     implies one from ti to tk on the intersection of objects/operations.
//
//   - delegate: the lock (and thereby undo/commit responsibility, handled by
//     the caller) moves from ti to tj, as used by nested, split/join and
//     similar models.
//
// Blocking requests join a FIFO pending queue per object; every block
// registers edges in the shared waits-for graph, so deadlocks — including
// ones crossing into commit dependencies — are detected at block time.
package lock

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/waitgraph"
	"repro/internal/xid"
)

// Errors returned by Lock.
var (
	// ErrDeadlock is returned to a requester chosen as a deadlock victim.
	ErrDeadlock = errors.New("lock: deadlock victim")
	// ErrCancelled is returned when the waiter's transaction was aborted
	// while it was blocked.
	ErrCancelled = errors.New("lock: wait cancelled (transaction aborted)")
	// ErrTimeout is returned when a request waited longer than the
	// configured WaitTimeout (the fallback resolution when deadlock
	// detection is disabled).
	ErrTimeout = errors.New("lock: wait timed out")
)

// reqStatus is the LRD status field: granted, pending, or upgrading (a
// pending request by a transaction that already holds a weaker lock).
type reqStatus int8

const (
	statusGranted reqStatus = iota
	statusPending
	statusUpgrading
)

// lockReq is the lock request descriptor (LRD) of §4.1: one transaction's
// granted or pending request on one object.
type lockReq struct {
	tid       xid.TID
	od        *objDesc
	mode      xid.OpSet
	status    reqStatus
	suspended bool // granted lock suspended by a permitted conflicting grant
	cancelled bool // waiter was aborted; it must give up
	victim    bool // waiter was chosen as deadlock victim
	timedOut  bool // waiter exceeded Options.WaitTimeout
}

// objDesc is the object descriptor (OD) of Figure 1: granted and pending
// LRD lists and the object's permit list.
type objDesc struct {
	oid     xid.OID
	granted []*lockReq
	pending []*lockReq // FIFO
	permits []*permit
	cond    *sync.Cond // signalled on any release/suspension change
}

// permit is the permit descriptor (PD): grantor allows grantee (NilTID =
// any transaction) to perform ops on the object even when they conflict with
// grantor's locks.
type permit struct {
	od      *objDesc
	grantor xid.TID
	grantee xid.TID // NilTID = any transaction
	ops     xid.OpSet
	dead    bool // lazily removed from secondary indexes
}

// Options configures a lock manager.
type Options struct {
	// OnVictim is invoked (on its own goroutine) when deadlock detection
	// selects a transaction other than the requester as the victim; the
	// transaction system should abort it. May be nil.
	OnVictim func(xid.TID)
	// NoQueueFairness disables FIFO ordering of pending requests (a request
	// is granted as soon as it is compatible with the granted group). Used
	// by ablation benchmarks.
	NoQueueFairness bool
	// EagerClosure controls permit transitivity. When true (the default
	// used by New), implied permits are materialized at insertion. When
	// false they are discovered by walking grantor chains at lock time
	// (ablation A2).
	EagerClosure bool
	// WaitTimeout bounds how long a request may block; 0 means forever.
	// Timeouts are the deadlock resolution of last resort when detection
	// is disabled (and a belt-and-braces bound when it is not).
	WaitTimeout time.Duration
	// NoDetection disables deadlock victim selection entirely (ablation
	// A4): wait-for edges are still recorded for diagnostics, but cycles
	// go unnoticed and blocked requests wait until granted, cancelled, or
	// timed out. Combine with WaitTimeout, or deadlocks wait forever.
	NoDetection bool
}

// Manager is the lock manager. All state is guarded by one mutex; condition
// variables per object descriptor wake blocked requests.
type Manager struct {
	mu   sync.Mutex
	opts Options
	ods  map[xid.OID]*objDesc
	// txn LRD lists ("list of t's lock requests" in the TD).
	byTxn map[xid.TID]map[xid.OID]*lockReq
	// Permit secondary indexes, doubly hashed per §4.1: by grantor and by
	// grantee.
	byGrantor map[xid.TID][]*permit
	byGrantee map[xid.TID][]*permit
	wg        *waitgraph.Graph
}

// New returns a lock manager wired to the shared waits-for graph.
func New(wg *waitgraph.Graph, opts Options) *Manager {
	if wg == nil {
		wg = waitgraph.New()
	}
	return &Manager{
		opts:      opts,
		ods:       make(map[xid.OID]*objDesc),
		byTxn:     make(map[xid.TID]map[xid.OID]*lockReq),
		byGrantor: make(map[xid.TID][]*permit),
		byGrantee: make(map[xid.TID][]*permit),
		wg:        wg,
	}
}

func (m *Manager) od(oid xid.OID) *objDesc {
	od := m.ods[oid]
	if od == nil {
		od = &objDesc{oid: oid}
		od.cond = sync.NewCond(&m.mu)
		m.ods[oid] = od
	}
	return od
}

// Lock acquires (or upgrades to) the given mode on oid for tid, blocking
// until granted. It returns ErrDeadlock if the request was chosen as a
// deadlock victim and ErrCancelled if the transaction was aborted while
// waiting.
func (m *Manager) Lock(tid xid.TID, oid xid.OID, mode xid.OpSet) error {
	if mode == 0 {
		return fmt.Errorf("lock: empty mode requested on %v", oid)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	od := m.od(oid)

	own := m.byTxn[tid][oid]
	// Fast path: own unsuspended covering lock (§4.2 step 1a).
	if own != nil && own.status == statusGranted && !own.suspended && own.mode.Has(mode) {
		return nil
	}

	// Enqueue a pending/upgrading request.
	req := &lockReq{tid: tid, od: od, mode: mode, status: statusPending}
	if own != nil && own.status == statusGranted {
		req.status = statusUpgrading
	}
	od.pending = append(od.pending, req)
	if m.opts.WaitTimeout > 0 {
		timer := time.AfterFunc(m.opts.WaitTimeout, func() {
			m.mu.Lock()
			req.timedOut = true
			od.cond.Broadcast()
			m.mu.Unlock()
		})
		defer timer.Stop()
	}

	var waitedOn []xid.TID
	clearEdges := func() {
		for _, h := range waitedOn {
			m.wg.Remove(tid, h)
		}
		waitedOn = nil
	}
	defer clearEdges()

	for {
		blockers, permitted := m.tryGrant(req, own)
		if req.cancelled {
			m.removePending(od, req)
			return ErrCancelled
		}
		if req.victim {
			m.removePending(od, req)
			return ErrDeadlock
		}
		if req.timedOut && len(blockers) > 0 {
			m.removePending(od, req)
			return ErrTimeout
		}
		if len(blockers) == 0 {
			// Grant: suspend the permitted conflicting locks, then install.
			for _, gl := range permitted {
				if !gl.suspended {
					gl.suspended = true
				}
			}
			m.removePending(od, req)
			m.installGrant(tid, od, own, mode)
			if len(permitted) > 0 {
				od.cond.Broadcast() // suspension may unblock re-checkers
			}
			return nil
		}
		// Re-register wait edges against the current blocker set.
		clearEdges()
		victim, _ := m.wg.Add(tid, blockers...)
		waitedOn = append(waitedOn, blockers...)
		if !m.opts.NoDetection && !victim.IsNil() {
			if victim == tid {
				m.removePending(od, req)
				return ErrDeadlock
			}
			m.killVictim(victim)
		}
		od.cond.Wait()
		if own != nil { // refresh: delegation may have moved/merged our lock
			own = m.byTxn[tid][oid]
		}
	}
}

// tryGrant evaluates §4.2 steps 1a/1b for req. It returns the transactions
// that block the request (empty means grantable) and the conflicting
// granted locks whose holders permit the requester (to be suspended on
// grant). Caller holds m.mu.
func (m *Manager) tryGrant(req *lockReq, own *lockReq) (blockers []xid.TID, permitted []*lockReq) {
	od := req.od
	for _, gl := range od.granted {
		if gl.tid == req.tid {
			continue // our own lock never blocks us
		}
		// Suspended locks conflict like granted ones: only the holder's own
		// fast path is affected by suspension. A third party without
		// permission must still wait (it would otherwise see uncommitted
		// data of the suspended holder).
		if !gl.mode.Conflicts(req.mode) {
			continue
		}
		if m.permits(gl.tid, req.tid, od, req.mode) {
			permitted = append(permitted, gl)
			continue
		}
		blockers = append(blockers, gl.tid)
	}
	// FIFO fairness: an ordinary pending request also waits behind earlier
	// conflicting pending requests; upgrades jump the queue.
	if !m.opts.NoQueueFairness && req.status != statusUpgrading {
		for _, p := range od.pending {
			if p == req {
				break
			}
			if p.tid != req.tid && p.mode.Conflicts(req.mode) && !p.victim && !p.cancelled {
				blockers = append(blockers, p.tid)
			}
		}
	}
	if len(blockers) > 0 {
		return blockers, nil
	}
	return nil, permitted
}

// installGrant merges the granted mode into the requester's LRD (creating
// one if needed) and clears any suspension (§4.2 step 2).
func (m *Manager) installGrant(tid xid.TID, od *objDesc, own *lockReq, mode xid.OpSet) {
	if own != nil && own.status == statusGranted {
		own.mode = own.mode.Union(mode)
		own.suspended = false
		return
	}
	gl := &lockReq{tid: tid, od: od, mode: mode, status: statusGranted}
	od.granted = append(od.granted, gl)
	byOid := m.byTxn[tid]
	if byOid == nil {
		byOid = make(map[xid.OID]*lockReq)
		m.byTxn[tid] = byOid
	}
	byOid[od.oid] = gl
}

func (m *Manager) removePending(od *objDesc, req *lockReq) {
	for i, p := range od.pending {
		if p == req {
			od.pending = append(od.pending[:i], od.pending[i+1:]...)
			break
		}
	}
	od.cond.Broadcast() // queue order changed; later waiters may proceed
}

// killVictim marks any pending requests of the victim and notifies the
// transaction system so it aborts the victim.
func (m *Manager) killVictim(victim xid.TID) {
	m.markVictimLocked(victim)
	if m.opts.OnVictim != nil {
		go m.opts.OnVictim(victim)
	}
}

func (m *Manager) markVictimLocked(victim xid.TID) {
	for _, od := range m.ods {
		changed := false
		for _, p := range od.pending {
			if p.tid == victim {
				p.victim = true
				changed = true
			}
		}
		if changed {
			od.cond.Broadcast()
		}
	}
}

// CancelWaits wakes every pending request of tid with ErrCancelled; the
// abort path calls it before releasing locks.
func (m *Manager) CancelWaits(tid xid.TID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, od := range m.ods {
		changed := false
		for _, p := range od.pending {
			if p.tid == tid {
				p.cancelled = true
				changed = true
			}
		}
		if changed {
			od.cond.Broadcast()
		}
	}
}

// Holds reports whether tid currently holds an unsuspended lock covering
// mode on oid.
func (m *Manager) Holds(tid xid.TID, oid xid.OID, mode xid.OpSet) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	gl := m.byTxn[tid][oid]
	return gl != nil && gl.status == statusGranted && !gl.suspended && gl.mode.Has(mode)
}

// HeldObjects returns the objects tid holds locks on, in unspecified order.
func (m *Manager) HeldObjects(tid xid.TID) []xid.OID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]xid.OID, 0, len(m.byTxn[tid]))
	for oid := range m.byTxn[tid] {
		out = append(out, oid)
	}
	return out
}

// ReleaseAll implements §4.2 commit step 6 / abort step 3: drop every lock
// tid holds and every permission given by or to tid, then wake waiters.
func (m *Manager) ReleaseAll(tid xid.TID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, gl := range m.byTxn[tid] {
		od := gl.od
		for i, g := range od.granted {
			if g == gl {
				od.granted = append(od.granted[:i], od.granted[i+1:]...)
				break
			}
		}
		od.cond.Broadcast()
	}
	delete(m.byTxn, tid)
	m.dropPermitsOf(tid)
	m.wg.RemoveNode(tid)
}

// dropPermitsOf removes permissions given by or given to tid. Caller holds
// m.mu.
func (m *Manager) dropPermitsOf(tid xid.TID) {
	kill := func(ps []*permit) {
		for _, p := range ps {
			if p.dead {
				continue
			}
			p.dead = true
			od := p.od
			for i, q := range od.permits {
				if q == p {
					od.permits = append(od.permits[:i], od.permits[i+1:]...)
					break
				}
			}
			od.cond.Broadcast()
		}
	}
	kill(m.byGrantor[tid])
	kill(m.byGrantee[tid])
	delete(m.byGrantor, tid)
	delete(m.byGrantee, tid)
}
