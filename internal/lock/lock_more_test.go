package lock

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/waitgraph"
	"repro/internal/xid"
)

func TestIncrementLocksCommute(t *testing.T) {
	m := newTest(Options{})
	mustLock(t, m, 1, 100, xid.OpIncr)
	mustLock(t, m, 2, 100, xid.OpIncr)
	mustLock(t, m, 3, 100, xid.OpIncr)
	// A reader must wait for all three.
	ch := lockAsync(m, 4, 100, xid.OpRead)
	assertBlocked(t, ch)
	m.ReleaseAll(1)
	m.ReleaseAll(2)
	assertBlocked(t, ch)
	m.ReleaseAll(3)
	assertGranted(t, ch)
}

func TestIncrementConflictsWithWriter(t *testing.T) {
	m := newTest(Options{})
	mustLock(t, m, 1, 100, xid.OpWrite)
	ch := lockAsync(m, 2, 100, xid.OpIncr)
	assertBlocked(t, ch)
	m.ReleaseAll(1)
	assertGranted(t, ch)
}

func TestPermitCoversIncrement(t *testing.T) {
	m := newTest(Options{})
	mustLock(t, m, 1, 100, xid.OpWrite)
	m.Permit(1, 2, []xid.OID{100}, xid.OpIncr)
	mustLock(t, m, 2, 100, xid.OpIncr) // permitted despite the write lock
	ch := lockAsync(m, 2, 100, xid.OpWrite)
	assertBlocked(t, ch) // write not permitted
	m.ReleaseAll(1)
	assertGranted(t, ch)
}

func TestNoQueueFairnessAllowsReaderOvertaking(t *testing.T) {
	m := New(waitgraph.New(), Options{EagerClosure: true, NoQueueFairness: true})
	mustLock(t, m, 1, 100, xid.OpRead)
	chW := lockAsync(m, 2, 100, xid.OpWrite)
	assertBlocked(t, chW)
	// Without FIFO fairness a new reader jumps past the queued writer.
	done := make(chan error, 1)
	go func() { done <- m.Lock(3, 100, xid.OpRead) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader waited behind the writer despite NoQueueFairness")
	}
	m.ReleaseAll(1)
	m.ReleaseAll(3)
	assertGranted(t, chW)
}

func TestHeldObjectsAndHolds(t *testing.T) {
	m := newTest(Options{})
	mustLock(t, m, 1, 100, xid.OpRead)
	mustLock(t, m, 1, 101, xid.OpWrite)
	objs := m.HeldObjects(1)
	if len(objs) != 2 {
		t.Fatalf("HeldObjects = %v", objs)
	}
	if !m.Holds(1, 101, xid.OpWrite) || m.Holds(1, 100, xid.OpWrite) {
		t.Fatal("Holds mode check wrong")
	}
	if m.Holds(2, 100, xid.OpRead) {
		t.Fatal("phantom hold")
	}
}

// TestManyWaitersAllWake: releasing a write lock must wake every queued
// reader (broadcast, not signal).
func TestManyWaitersAllWake(t *testing.T) {
	m := newTest(Options{})
	mustLock(t, m, 1, 100, xid.OpWrite)
	const readers = 16
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(tid xid.TID) {
			defer wg.Done()
			errs <- m.Lock(tid, 100, xid.OpRead)
		}(xid.TID(10 + i))
	}
	time.Sleep(30 * time.Millisecond)
	m.ReleaseAll(1)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("some readers never woke (lost wakeup)")
	}
	for i := 0; i < readers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestSuspendedHolderReleaseWakesWaiters: a waiter blocked on a suspended
// lock must wake when the suspended holder terminates.
func TestSuspendedHolderReleaseWakesWaiters(t *testing.T) {
	m := newTest(Options{})
	mustLock(t, m, 1, 100, xid.OpWrite)
	m.Permit(1, 2, []xid.OID{100}, xid.OpAll)
	mustLock(t, m, 2, 100, xid.OpWrite) // t1 suspended
	m.ReleaseAll(2)                     // grantee done
	ch := lockAsync(m, 3, 100, xid.OpWrite)
	assertBlocked(t, ch) // t1's suspended lock still excludes t3
	m.ReleaseAll(1)
	assertGranted(t, ch)
}

// TestDelegateWhileWaiterQueued: delegation must not strand a queued
// waiter when the delegatee releases.
func TestDelegateWhileWaiterQueued(t *testing.T) {
	m := newTest(Options{})
	mustLock(t, m, 1, 100, xid.OpWrite)
	ch := lockAsync(m, 2, 100, xid.OpRead)
	assertBlocked(t, ch)
	m.Delegate(1, 3, nil)
	m.ReleaseAll(1) // delegator has nothing; must not grant the waiter
	assertBlocked(t, ch)
	m.ReleaseAll(3)
	assertGranted(t, ch)
}

func TestPermitIdempotentAndWidening(t *testing.T) {
	m := newTest(Options{})
	mustLock(t, m, 1, 100, xid.OpWrite)
	m.Permit(1, 2, []xid.OID{100}, xid.OpRead)
	m.Permit(1, 2, []xid.OID{100}, xid.OpRead) // idempotent
	if n := m.PermitCount(100); n != 1 {
		t.Fatalf("PermitCount = %d, want 1 (no duplicate PDs)", n)
	}
	m.Permit(1, 2, []xid.OID{100}, xid.OpWrite) // widens in place
	if n := m.PermitCount(100); n != 1 {
		t.Fatalf("PermitCount after widening = %d, want 1", n)
	}
	if !m.Permitted(1, 2, 100, xid.OpRead) || !m.Permitted(1, 2, 100, xid.OpWrite) {
		t.Fatal("widened permit incomplete")
	}
}

func TestWaitTimeout(t *testing.T) {
	m := New(waitgraph.New(), Options{EagerClosure: true, WaitTimeout: 50 * time.Millisecond})
	mustLock(t, m, 1, 100, xid.OpWrite)
	start := time.Now()
	err := m.Lock(2, 100, xid.OpWrite)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if d := time.Since(start); d < 40*time.Millisecond || d > 2*time.Second {
		t.Fatalf("timed out after %v", d)
	}
	// The holder is unaffected and the waiter can retry later.
	m.ReleaseAll(1)
	mustLock(t, m, 2, 100, xid.OpWrite)
}

func TestWaitTimeoutDoesNotFireWhenGranted(t *testing.T) {
	m := New(waitgraph.New(), Options{EagerClosure: true, WaitTimeout: 30 * time.Millisecond})
	mustLock(t, m, 1, 100, xid.OpWrite)
	ch := lockAsync(m, 2, 100, xid.OpWrite)
	time.Sleep(10 * time.Millisecond)
	m.ReleaseAll(1) // grant before the timeout
	assertGranted(t, ch)
}

func TestTimeoutResolvesUndetectedDeadlock(t *testing.T) {
	// Detection off (no OnVictim, timeouts as the only resolution): a
	// lock-order deadlock must resolve via ErrTimeout rather than hang.
	m := New(waitgraph.New(), Options{EagerClosure: true, WaitTimeout: 60 * time.Millisecond})
	mustLock(t, m, 1, 100, xid.OpWrite)
	mustLock(t, m, 2, 200, xid.OpWrite)
	ch1 := lockAsync(m, 1, 200, xid.OpWrite)
	ch2 := lockAsync(m, 2, 100, xid.OpWrite)
	// Deadlock detection may fire first (it is still on in this manager);
	// accept either resolution, but nobody may hang.
	for _, ch := range []<-chan error{ch1, ch2} {
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatal("deadlocked request hung past the timeout")
		}
	}
}
