package lock

import (
	"sort"

	"repro/internal/xid"
)

// Delegate implements the lock-manager half of the delegate primitive (§4.2):
// for each delegated object, from's LRD moves to to's lock list, and every
// permission *given by* from on that object becomes a permission given by
// to. A nil oids delegates everything from is responsible for. It returns
// the objects whose locks actually moved, so the caller can log the
// delegation and move undo responsibility the same way.
//
// Cross-shard discipline: the candidate set is snapshotted from from's
// txnState (its latch alone), then each shard is visited once, in ascending
// index order, with only that shard's latch held; every per-object decision
// is re-validated under the owning shard latch, so candidates that moved or
// vanished in the window are simply skipped.
func (m *Manager) Delegate(from, to xid.TID, oids []xid.OID) []xid.OID {
	if from == to {
		return nil
	}
	fromTS, ok := m.txns.Get(uint64(from))
	if !ok {
		// Nothing held and nothing granted by from; still ensure the
		// grantee side exists for the caller's subsequent operations.
		return nil
	}
	toTS := m.txnOf(to)

	// Snapshot the candidate objects and the PDs granted by from.
	fromTS.lat.Lock()
	var candidates []xid.OID
	if oids == nil {
		for oid := range fromTS.locks {
			candidates = append(candidates, oid)
		}
	} else {
		for _, oid := range oids {
			if _, held := fromTS.locks[oid]; held {
				candidates = append(candidates, oid)
			}
		}
	}
	grantorPDs := append([]*permit(nil), fromTS.byGrantor...)
	fromTS.lat.Unlock()

	// Visit shards in ascending order, one latch at a time.
	byShard := make(map[*lockShard][]xid.OID)
	for _, oid := range candidates {
		s := m.shardOf(oid)
		byShard[s] = append(byShard[s], oid)
	}
	var moved []xid.OID
	m.forShardsAscending(byShard, func(s *lockShard, oids []xid.OID) {
		s.lat.Lock()
		for _, oid := range oids {
			if m.delegateOneLocked(fromTS, toTS, s, oid) {
				moved = append(moved, oid)
			}
		}
		s.lat.Unlock()
	})

	// §4.2 delegate step (b): permissions given by from on the delegated
	// objects (all of them for delegate-all) become permissions given by to,
	// whether or not from also held a lock there.
	m.reassignGrantor(fromTS, toTS, grantorPDs, oids)
	return moved
}

// forShardsAscending runs fn over the shard groups in ascending shard-index
// order. Ordering is not required for deadlock freedom (only one latch is
// held at a time) but makes delegation outcomes deterministic for tests.
func (m *Manager) forShardsAscending(groups map[*lockShard][]xid.OID, fn func(*lockShard, []xid.OID)) {
	idx := make([]int, 0, len(groups))
	for s := range groups {
		idx = append(idx, m.shardIndex(s))
	}
	sort.Ints(idx)
	for _, i := range idx {
		s := &m.shards[i]
		fn(s, groups[s])
	}
}

func (m *Manager) shardIndex(s *lockShard) int {
	for i := range m.shards {
		if &m.shards[i] == s {
			return i
		}
	}
	panic("lock: shard not owned by manager")
}

// delegateOneLocked moves from's LRD on oid into to's lock list, merging
// with any lock to already holds there, and reports whether a lock moved.
// Any escrow reservation from holds on the object moves with the lock —
// the delegatee inherits the in-flight delta along with the undo
// responsibility the caller transfers — unless the delegatee is dead, in
// which case both are dropped. Caller holds s.lat; the txnState latches
// nest inside it, taken one at a time.
func (m *Manager) delegateOneLocked(fromTS, toTS *txnState, s *lockShard, oid xid.OID) bool {
	od := s.ods[oid]
	if od == nil {
		return false
	}
	gl := od.ownerReq(fromTS.tid)
	if gl == nil {
		return false // released or already delegated since the snapshot
	}
	fromTS.lat.Lock()
	delete(fromTS.locks, oid)
	delete(fromTS.escrows, oid)
	fromTS.lat.Unlock()
	if existing := od.ownerReq(toTS.tid); existing != nil {
		// Merge: the union of modes. Suspension is sticky — clearing it just
		// because one input was unsuspended could leave the merged hold in
		// unsuspended conflict with a third party's permitted grant, exposing
		// that party's uncommitted work (invariant 1). Re-validate instead:
		// the merged hold comes back unsuspended only if no other granted
		// LRD conflicts with the merged mode.
		suspended := existing.suspended || gl.suspended
		existing.mode = existing.mode.Union(gl.mode)
		od.dropGranted(gl)
		if suspended {
			suspended = false
			for _, other := range od.granted {
				if other.tid != toTS.tid && other.mode.Conflicts(existing.mode) {
					suspended = true
					break
				}
			}
		}
		existing.suspended = suspended
		m.moveReservationLocked(od, fromTS.tid, toTS)
	} else {
		toTS.lat.Lock()
		if toTS.dead {
			// The grantee terminated mid-delegation: its locks are gone, so
			// the moved lock must not outlive it. Drop it instead.
			toTS.lat.Unlock()
			od.dropGranted(gl)
			if od.esc != nil {
				od.esc.settle(fromTS.tid, false)
			}
		} else {
			gl.tid = toTS.tid
			toTS.locks[oid] = gl
			toTS.lat.Unlock()
			m.moveReservationLocked(od, fromTS.tid, toTS)
		}
	}
	// Blocked requests were waiting on `from`; their blocker is now `to`
	// (or gone).
	od.cond.Broadcast()
	return true
}

// moveReservationLocked re-tags from's escrow reservation on od to the
// delegatee, merging with any reservation the delegatee already holds
// there, and records it in the delegatee's reservation index. The
// in-flight sums are unchanged — the delta merely changes owner. If the
// delegatee died in the window, the reservation is discarded like an
// abort. Caller holds od's shard latch.
func (m *Manager) moveReservationLocked(od *objDesc, from xid.TID, toTS *txnState) {
	if od.esc == nil {
		return
	}
	r := od.esc.holders[from]
	if r == nil {
		return
	}
	delete(od.esc.holders, from)
	toTS.lat.Lock()
	if toTS.dead {
		toTS.lat.Unlock()
		od.esc.infPos -= r.pos
		od.esc.infNeg -= r.neg
		return
	}
	tr := od.esc.holders[toTS.tid]
	if tr == nil {
		od.esc.holders[toTS.tid] = r
	} else {
		tr.pos += r.pos
		tr.neg += r.neg
	}
	if toTS.escrows == nil {
		toTS.escrows = make(map[xid.OID]*objDesc)
	}
	toTS.escrows[od.oid] = od
	toTS.lat.Unlock()
}

// reassignGrantor rewrites PDs of the form (from, tk, op) to (to, tk, op)
// on the given objects (nil = all), working from the snapshot taken by
// Delegate. Each PD is re-validated under its own shard latch.
func (m *Manager) reassignGrantor(fromTS, toTS *txnState, pds []*permit, oids []xid.OID) {
	var want map[xid.OID]bool
	if oids != nil {
		want = make(map[xid.OID]bool, len(oids))
		for _, o := range oids {
			want[o] = true
		}
	}
	for _, p := range pds {
		if want != nil && !want[p.od.oid] {
			continue
		}
		s := p.od.home
		s.lat.Lock()
		if p.isDead() {
			s.lat.Unlock()
			continue
		}
		od := p.od
		if p.grantee == toTS.tid {
			// A permission from `from` to `to` collapses on delegation:
			// to does not need its own permission.
			od.dropPermit(p)
		} else {
			// Re-grant under to's name (widening any PD to already has
			// there), then retire from's descriptor.
			m.insertPD(od, toTS.tid, p.grantee, p.ops)
			od.dropPermit(p)
		}
		od.cond.Broadcast()
		s.lat.Unlock()
	}
}
