package lock

import (
	"repro/internal/xid"
)

// Delegate implements the lock-manager half of the delegate primitive (§4.2):
// for each delegated object, from's LRD moves to to's lock list, and every
// permission *given by* from on that object becomes a permission given by
// to. A nil oids delegates everything from is responsible for. It returns
// the objects whose locks actually moved, so the caller can log the
// delegation and move undo responsibility the same way.
func (m *Manager) Delegate(from, to xid.TID, oids []xid.OID) []xid.OID {
	if from == to {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var moved []xid.OID
	if oids == nil {
		for oid := range m.byTxn[from] {
			moved = append(moved, oid)
		}
	} else {
		for _, oid := range oids {
			if _, held := m.byTxn[from][oid]; held {
				moved = append(moved, oid)
			}
		}
	}
	for _, oid := range moved {
		m.delegateOneLocked(from, to, oid)
	}
	// §4.2 delegate step (b): permissions given by from on the delegated
	// objects (all of them for delegate-all) become permissions given by to,
	// whether or not from also held a lock there.
	m.reassignGrantor(from, to, oids)
	return moved
}

// delegateOneLocked moves from's LRD on oid into to's lock list, merging
// with any lock to already holds there. Caller holds m.mu.
func (m *Manager) delegateOneLocked(from, to xid.TID, oid xid.OID) {
	gl := m.byTxn[from][oid]
	if gl == nil {
		return
	}
	delete(m.byTxn[from], oid)
	od := gl.od
	toLocks := m.byTxn[to]
	if toLocks == nil {
		toLocks = make(map[xid.OID]*lockReq)
		m.byTxn[to] = toLocks
	}
	if existing := toLocks[oid]; existing != nil {
		// Merge: the union of modes; the merged lock is suspended only if
		// both inputs were (an unsuspended hold stays usable).
		existing.mode = existing.mode.Union(gl.mode)
		existing.suspended = existing.suspended && gl.suspended
		for i, g := range od.granted {
			if g == gl {
				od.granted = append(od.granted[:i], od.granted[i+1:]...)
				break
			}
		}
	} else {
		gl.tid = to
		toLocks[oid] = gl
	}
	// Blocked requests were waiting on `from`; their blocker is now `to`.
	od.cond.Broadcast()
}

// reassignGrantor rewrites PDs of the form (from, tk, op) to (to, tk, op)
// on the given objects (nil = all). Caller holds m.mu.
func (m *Manager) reassignGrantor(from, to xid.TID, oids []xid.OID) {
	var want map[xid.OID]bool
	if oids != nil {
		want = make(map[xid.OID]bool, len(oids))
		for _, o := range oids {
			want[o] = true
		}
	}
	var kept []*permit
	for _, p := range m.byGrantor[from] {
		if p.dead {
			continue
		}
		if want != nil && !want[p.od.oid] {
			kept = append(kept, p)
			continue
		}
		if p.grantee == to {
			// A permission from `from` to `to` collapses on delegation:
			// to does not need its own permission.
			p.dead = true
			od := p.od
			for i, q := range od.permits {
				if q == p {
					od.permits = append(od.permits[:i], od.permits[i+1:]...)
					break
				}
			}
			od.cond.Broadcast()
			continue
		}
		// Widen any existing PD of to, or retag this one.
		if grew, existing := m.insertPD(p.od, to, p.grantee, p.ops); grew || existing != p {
			// Merged into to's PD: retire the old descriptor.
			p.dead = true
			od := p.od
			for i, q := range od.permits {
				if q == p {
					od.permits = append(od.permits[:i], od.permits[i+1:]...)
					break
				}
			}
		}
		p.od.cond.Broadcast()
	}
	if kept == nil {
		delete(m.byGrantor, from)
	} else {
		m.byGrantor[from] = kept
	}
}
