package lock

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/waitgraph"
	"repro/internal/xid"
)

func newTest(opts Options) *Manager {
	opts.EagerClosure = true
	return New(waitgraph.New(), opts)
}

// lockAsync runs Lock on a goroutine and returns a channel with the result.
func lockAsync(m *Manager, tid xid.TID, oid xid.OID, mode xid.OpSet) <-chan error {
	ch := make(chan error, 1)
	go func() { ch <- m.Lock(tid, oid, mode) }()
	return ch
}

func mustLock(t *testing.T, m *Manager, tid xid.TID, oid xid.OID, mode xid.OpSet) {
	t.Helper()
	if err := m.Lock(tid, oid, mode); err != nil {
		t.Fatalf("Lock(%v,%v,%v): %v", tid, oid, mode, err)
	}
}

func assertBlocked(t *testing.T, ch <-chan error) {
	t.Helper()
	select {
	case err := <-ch:
		t.Fatalf("request completed (%v), want blocked", err)
	case <-time.After(30 * time.Millisecond):
	}
}

func assertGranted(t *testing.T, ch <-chan error) {
	t.Helper()
	select {
	case err := <-ch:
		if err != nil {
			t.Fatalf("request failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("request still blocked, want granted")
	}
}

func TestSharedReadersCompatible(t *testing.T) {
	m := newTest(Options{})
	mustLock(t, m, 1, 100, xid.OpRead)
	mustLock(t, m, 2, 100, xid.OpRead)
	mustLock(t, m, 3, 100, xid.OpRead)
	if !m.Holds(2, 100, xid.OpRead) {
		t.Fatal("reader 2 does not hold its lock")
	}
}

func TestWriteBlocksUntilRelease(t *testing.T) {
	m := newTest(Options{})
	mustLock(t, m, 1, 100, xid.OpWrite)
	ch := lockAsync(m, 2, 100, xid.OpWrite)
	assertBlocked(t, ch)
	m.ReleaseAll(1)
	assertGranted(t, ch)
}

func TestReadBlocksWrite(t *testing.T) {
	m := newTest(Options{})
	mustLock(t, m, 1, 100, xid.OpRead)
	ch := lockAsync(m, 2, 100, xid.OpWrite)
	assertBlocked(t, ch)
	m.ReleaseAll(1)
	assertGranted(t, ch)
}

func TestReentrantAndUpgrade(t *testing.T) {
	m := newTest(Options{})
	mustLock(t, m, 1, 100, xid.OpRead)
	mustLock(t, m, 1, 100, xid.OpRead) // re-entrant
	mustLock(t, m, 1, 100, xid.OpWrite)
	if !m.Holds(1, 100, xid.OpWrite) || !m.Holds(1, 100, xid.OpRead) {
		t.Fatal("upgrade lost a mode")
	}
}

func TestUpgradeWaitsForOtherReaders(t *testing.T) {
	m := newTest(Options{})
	mustLock(t, m, 1, 100, xid.OpRead)
	mustLock(t, m, 2, 100, xid.OpRead)
	ch := lockAsync(m, 1, 100, xid.OpWrite)
	assertBlocked(t, ch)
	m.ReleaseAll(2)
	assertGranted(t, ch)
}

func TestUpgradeJumpsQueue(t *testing.T) {
	// t1 holds R; t3 waits for W; t1's upgrade must not wait behind t3
	// (that would deadlock: t3 waits for t1's R, t1 waits for t3's turn).
	m := newTest(Options{})
	mustLock(t, m, 1, 100, xid.OpRead)
	ch3 := lockAsync(m, 3, 100, xid.OpWrite)
	assertBlocked(t, ch3)
	mustLock(t, m, 1, 100, xid.OpWrite) // upgrade succeeds immediately
	m.ReleaseAll(1)
	assertGranted(t, ch3)
}

func TestFIFOFairnessPreventsWriterStarvation(t *testing.T) {
	m := newTest(Options{})
	mustLock(t, m, 1, 100, xid.OpRead)
	chW := lockAsync(m, 2, 100, xid.OpWrite)
	assertBlocked(t, chW)
	// A new reader must now queue behind the writer.
	chR := lockAsync(m, 3, 100, xid.OpRead)
	assertBlocked(t, chR)
	m.ReleaseAll(1)
	assertGranted(t, chW)
	assertBlocked(t, chR) // writer holds
	m.ReleaseAll(2)
	assertGranted(t, chR)
}

func TestDeadlockVictimIsYoungest(t *testing.T) {
	m := newTest(Options{})
	mustLock(t, m, 1, 100, xid.OpWrite)
	mustLock(t, m, 2, 200, xid.OpWrite)
	ch1 := lockAsync(m, 1, 200, xid.OpWrite)
	assertBlocked(t, ch1)
	// t2 requesting 100 closes the cycle; t2 is youngest -> victim.
	err := m.Lock(2, 100, xid.OpWrite)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	// t1 still blocked until t2 releases.
	m.ReleaseAll(2)
	assertGranted(t, ch1)
}

func TestDeadlockVictimCallback(t *testing.T) {
	var victims atomic.Int64
	var victimTID atomic.Uint64
	m := newTest(Options{OnVictim: func(t xid.TID) {
		victims.Add(1)
		victimTID.Store(uint64(t))
	}})
	// Make the older transaction close the cycle, so the victim is the
	// *other* (younger) transaction and the callback fires.
	mustLock(t, m, 1, 100, xid.OpWrite)
	mustLock(t, m, 2, 200, xid.OpWrite)
	ch2 := lockAsync(m, 2, 100, xid.OpWrite)
	assertBlocked(t, ch2)
	ch1 := lockAsync(m, 1, 200, xid.OpWrite) // closes cycle; victim = t2
	err := <-ch2
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("victim wait err = %v, want ErrDeadlock", err)
	}
	// The callback fires on its own goroutine; give it time to land.
	deadline := time.Now().Add(5 * time.Second)
	for victims.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if victims.Load() != 1 || victimTID.Load() != 2 {
		t.Fatalf("OnVictim calls=%d tid=%d, want 1, t2", victims.Load(), victimTID.Load())
	}
	m.ReleaseAll(2) // the abort the callback would perform
	assertGranted(t, ch1)
}

func TestCancelWaits(t *testing.T) {
	m := newTest(Options{})
	mustLock(t, m, 1, 100, xid.OpWrite)
	ch := lockAsync(m, 2, 100, xid.OpWrite)
	assertBlocked(t, ch)
	m.CancelWaits(2)
	err := <-ch
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
}

func TestPermitAllowsConflictAndSuspends(t *testing.T) {
	m := newTest(Options{})
	mustLock(t, m, 1, 100, xid.OpWrite)
	m.Permit(1, 2, []xid.OID{100}, xid.OpWrite)
	mustLock(t, m, 2, 100, xid.OpWrite) // would conflict; permitted
	// t1's lock is suspended: its own fast path fails and it needs t2's
	// permission to operate again.
	if m.Holds(1, 100, xid.OpWrite) {
		t.Fatal("t1's lock not suspended after permitted conflicting grant")
	}
	ch := lockAsync(m, 1, 100, xid.OpWrite)
	assertBlocked(t, ch) // no ping-pong permit yet
	m.Permit(2, 1, []xid.OID{100}, xid.OpWrite)
	assertGranted(t, ch)
	if !m.Holds(1, 100, xid.OpWrite) {
		t.Fatal("t1's suspension not cleared on re-grant")
	}
}

func TestPermitDoesNotAdmitThirdParty(t *testing.T) {
	m := newTest(Options{})
	mustLock(t, m, 1, 100, xid.OpWrite)
	m.Permit(1, 2, []xid.OID{100}, xid.OpWrite)
	mustLock(t, m, 2, 100, xid.OpWrite)
	ch := lockAsync(m, 3, 100, xid.OpWrite)
	assertBlocked(t, ch) // t3 has no permission from either holder
	m.ReleaseAll(2)
	assertBlocked(t, ch) // t1's suspended lock still excludes t3
	m.ReleaseAll(1)
	assertGranted(t, ch)
}

func TestPermitSpecificOperationOnly(t *testing.T) {
	m := newTest(Options{})
	mustLock(t, m, 1, 100, xid.OpWrite)
	m.Permit(1, 2, []xid.OID{100}, xid.OpRead)
	mustLock(t, m, 2, 100, xid.OpRead) // read permitted
	ch := lockAsync(m, 2, 100, xid.OpWrite)
	assertBlocked(t, ch) // write not permitted
	m.ReleaseAll(1)
	assertGranted(t, ch)
}

func TestPermitAnyTransaction(t *testing.T) {
	// permit(ti, ob, op): cursor stability's "any transaction may write".
	m := newTest(Options{})
	mustLock(t, m, 1, 100, xid.OpRead)
	m.Permit(1, xid.NilTID, []xid.OID{100}, xid.OpWrite)
	mustLock(t, m, 2, 100, xid.OpWrite)
	mustLock(t, m, 3, 200, xid.OpRead) // unrelated
}

func TestPermitAllObjects(t *testing.T) {
	// permit(ti, tj): every object ti accessed.
	m := newTest(Options{})
	mustLock(t, m, 1, 100, xid.OpWrite)
	mustLock(t, m, 1, 101, xid.OpWrite)
	m.Permit(1, 2, nil, 0)
	mustLock(t, m, 2, 100, xid.OpWrite)
	mustLock(t, m, 2, 101, xid.OpRead)
}

func TestPermitTransitivity(t *testing.T) {
	// permit(t1,t2) then permit(t2,t3) implies permit(t1,t3) on the
	// intersection.
	m := newTest(Options{})
	mustLock(t, m, 1, 100, xid.OpWrite)
	m.Permit(1, 2, []xid.OID{100}, xid.OpAll)
	m.Permit(2, 3, []xid.OID{100}, xid.OpWrite)
	if !m.Permitted(1, 3, 100, xid.OpWrite) {
		t.Fatal("transitive permit t1->t3 missing")
	}
	if m.Permitted(1, 3, 100, xid.OpRead) {
		t.Fatal("transitive permit wider than intersection")
	}
	mustLock(t, m, 3, 100, xid.OpWrite)
}

func TestPermitTransitivityIntersection(t *testing.T) {
	m := newTest(Options{})
	mustLock(t, m, 1, 100, xid.OpWrite)
	mustLock(t, m, 1, 101, xid.OpWrite)
	m.Permit(1, 2, []xid.OID{100}, xid.OpRead) // only ob100, only read
	m.Permit(2, 3, []xid.OID{100, 101}, xid.OpAll)
	if !m.Permitted(1, 3, 100, xid.OpRead) {
		t.Fatal("t1->t3 read on ob100 missing")
	}
	if m.Permitted(1, 3, 100, xid.OpWrite) {
		t.Fatal("t1->t3 write on ob100 must not exist")
	}
	if m.Permitted(1, 3, 101, xid.OpRead) {
		t.Fatal("t1->t3 on ob101 must not exist (t1 never permitted 101)")
	}
}

func TestLazyClosureMatchesEager(t *testing.T) {
	for _, eager := range []bool{true, false} {
		m := New(waitgraph.New(), Options{EagerClosure: eager})
		mustLock(t, m, 1, 100, xid.OpWrite)
		m.Permit(1, 2, []xid.OID{100}, xid.OpAll)
		m.Permit(2, 3, []xid.OID{100}, xid.OpWrite)
		m.Permit(3, 4, []xid.OID{100}, xid.OpAll)
		if !m.Permitted(1, 4, 100, xid.OpWrite) {
			t.Fatalf("eager=%v: chain t1->t4 write missing", eager)
		}
		if m.Permitted(1, 4, 100, xid.OpRead) {
			t.Fatalf("eager=%v: chain t1->t4 read must be excluded", eager)
		}
		if err := m.Lock(4, 100, xid.OpWrite); err != nil {
			t.Fatalf("eager=%v: permitted chain lock failed: %v", eager, err)
		}
	}
}

func TestReleaseDropsPermits(t *testing.T) {
	m := newTest(Options{})
	mustLock(t, m, 1, 100, xid.OpWrite)
	m.Permit(1, 2, []xid.OID{100}, xid.OpAll)
	m.ReleaseAll(1)
	if m.Permitted(1, 2, 100, xid.OpWrite) {
		t.Fatal("permits survived grantor's release")
	}
	// Permissions given TO the terminated transaction also disappear.
	mustLock(t, m, 3, 100, xid.OpWrite)
	m.Permit(3, 4, []xid.OID{100}, xid.OpAll)
	m.ReleaseAll(4)
	if m.Permitted(3, 4, 100, xid.OpWrite) {
		t.Fatal("permits to terminated grantee survived")
	}
}

func TestDelegateMovesLock(t *testing.T) {
	m := newTest(Options{})
	mustLock(t, m, 1, 100, xid.OpWrite)
	moved := m.Delegate(1, 2, []xid.OID{100})
	if len(moved) != 1 || moved[0] != 100 {
		t.Fatalf("moved = %v", moved)
	}
	if m.Holds(1, 100, xid.OpWrite) {
		t.Fatal("delegator still holds the lock")
	}
	if !m.Holds(2, 100, xid.OpWrite) {
		t.Fatal("delegatee did not receive the lock")
	}
	// A subsequent operation by t1 now conflicts with its own prior work.
	ch := lockAsync(m, 1, 100, xid.OpWrite)
	assertBlocked(t, ch)
	m.ReleaseAll(2)
	assertGranted(t, ch)
}

func TestDelegateAll(t *testing.T) {
	m := newTest(Options{})
	mustLock(t, m, 1, 100, xid.OpWrite)
	mustLock(t, m, 1, 101, xid.OpRead)
	moved := m.Delegate(1, 2, nil)
	if len(moved) != 2 {
		t.Fatalf("moved = %v, want both objects", moved)
	}
	if len(m.HeldObjects(1)) != 0 {
		t.Fatal("delegator kept locks after delegate-all")
	}
}

func TestDelegateMergesWithExistingLock(t *testing.T) {
	m := newTest(Options{})
	mustLock(t, m, 1, 100, xid.OpRead)
	mustLock(t, m, 2, 100, xid.OpRead)
	m.Delegate(1, 2, []xid.OID{100})
	if !m.Holds(2, 100, xid.OpRead) {
		t.Fatal("merged lock lost")
	}
	// Only one granted entry should remain for t2.
	s := m.shardOf(100)
	s.lat.Lock()
	n := len(s.ods[100].granted)
	s.lat.Unlock()
	if n != 1 {
		t.Fatalf("granted list has %d entries, want 1 after merge", n)
	}
}

func TestDelegateMergeKeepsSuspensionUnderConflict(t *testing.T) {
	// Regression: t3 holds Read suspended under a wildcard OpIncr permit
	// while t1 and t2 hold permitted unsuspended Incrs. Delegating t1's Incr
	// into t3's suspended hold must not un-suspend the merge: t2's Incr is
	// still granted, and an unsuspended Read|Incr beside it violates mutual
	// exclusion and would let t3 read t2's uncommitted increments.
	m := newTest(Options{})
	mustLock(t, m, 3, 100, xid.OpRead)
	m.Permit(3, xid.NilTID, []xid.OID{100}, xid.OpIncr)
	mustLock(t, m, 1, 100, xid.OpIncr) // permitted; suspends t3's Read
	mustLock(t, m, 2, 100, xid.OpIncr) // compatible with t1, permitted vs t3
	if m.Holds(3, 100, xid.OpRead) {
		t.Fatal("t3's lock not suspended after permitted conflicting grants")
	}
	m.Delegate(1, 3, []xid.OID{100})
	if m.Holds(3, 100, xid.OpRead) {
		t.Fatal("merge un-suspended t3's hold while t2's conflicting Incr is granted")
	}
	if bad := m.CheckInvariants(); len(bad) != 0 {
		t.Fatalf("invariants violated after merge: %v", bad)
	}
	// Once the conflict clears, t3 re-validates through Lock as usual.
	m.ReleaseAll(2)
	mustLock(t, m, 3, 100, xid.OpRead)
	if !m.Holds(3, 100, xid.OpRead) {
		t.Fatal("t3 cannot reclaim its lock after the conflict cleared")
	}
}

func TestDelegateMergeRevalidatesSuspension(t *testing.T) {
	// The counterpart: when the delegated lock IS the conflicting hold that
	// suspended the delegatee, merging them removes the conflict and the
	// merged hold may come back unsuspended without a re-Lock.
	m := newTest(Options{})
	mustLock(t, m, 1, 100, xid.OpWrite)
	m.Permit(1, 2, []xid.OID{100}, xid.OpWrite)
	mustLock(t, m, 2, 100, xid.OpWrite) // permitted; suspends t1
	if m.Holds(1, 100, xid.OpWrite) {
		t.Fatal("t1 not suspended by the permitted conflicting grant")
	}
	m.Delegate(2, 1, []xid.OID{100})
	if !m.Holds(1, 100, xid.OpWrite) {
		t.Fatal("suspension not cleared after the conflicting hold merged back")
	}
	if bad := m.CheckInvariants(); len(bad) != 0 {
		t.Fatalf("invariants violated after merge: %v", bad)
	}
}

func TestDelegateReassignsPermits(t *testing.T) {
	m := newTest(Options{})
	mustLock(t, m, 1, 100, xid.OpWrite)
	m.Permit(1, 3, []xid.OID{100}, xid.OpWrite)
	m.Delegate(1, 2, []xid.OID{100})
	if !m.Permitted(2, 3, 100, xid.OpWrite) {
		t.Fatal("permission (t1,t3) not rewritten to (t2,t3)")
	}
	// t3 can now lock despite t2's (delegated) conflicting lock.
	mustLock(t, m, 3, 100, xid.OpWrite)
}

func TestDelegateToGranteeCollapsesPermit(t *testing.T) {
	m := newTest(Options{})
	mustLock(t, m, 1, 100, xid.OpWrite)
	m.Permit(1, 2, []xid.OID{100}, xid.OpAll)
	m.Delegate(1, 2, []xid.OID{100})
	if m.Permitted(2, 2, 100, xid.OpWrite) {
		t.Fatal("self-permission materialized by delegation")
	}
	if !m.Holds(2, 100, xid.OpWrite) {
		t.Fatal("lock not delegated")
	}
}

func TestDelegateWakesWaiters(t *testing.T) {
	// t2 waits on t1's lock; t1 delegates to t3 which then releases.
	m := newTest(Options{})
	mustLock(t, m, 1, 100, xid.OpWrite)
	ch := lockAsync(m, 2, 100, xid.OpWrite)
	assertBlocked(t, ch)
	m.Delegate(1, 3, []xid.OID{100})
	assertBlocked(t, ch)
	m.ReleaseAll(3)
	assertGranted(t, ch)
}

func TestConcurrentLockStress(t *testing.T) {
	m := newTest(Options{})
	const goroutines = 16
	const objects = 8
	var wg sync.WaitGroup
	var deadlocks atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tid := xid.TID(id + 1)
			for i := 0; i < 100; i++ {
				o1 := xid.OID(i%objects + 1)
				o2 := xid.OID((i+3)%objects + 1)
				err1 := m.Lock(tid, o1, xid.OpWrite)
				var err2 error
				if err1 == nil && o1 != o2 {
					err2 = m.Lock(tid, o2, xid.OpRead)
				}
				if errors.Is(err1, ErrDeadlock) || errors.Is(err2, ErrDeadlock) {
					deadlocks.Add(1)
				}
				m.ReleaseAll(tid)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stress test hung (likely lost wakeup or undetected deadlock)")
	}
	t.Logf("deadlock victims: %d", deadlocks.Load())
}
