package lock

import (
	"errors"
	"testing"

	"repro/internal/waitgraph"
	"repro/internal/xid"
)

func newEscrowManager(t *testing.T, oid xid.OID, val, lo, hi uint64) *Manager {
	t.Helper()
	m := New(waitgraph.New(), Options{})
	if err := m.DeclareEscrow(oid, val, lo, hi); err != nil {
		t.Fatalf("DeclareEscrow: %v", err)
	}
	return m
}

func escrowVal(t *testing.T, m *Manager, oid xid.OID) (val, infPos, infNeg uint64) {
	t.Helper()
	val, _, _, infPos, infNeg, ok := m.EscrowInfo(oid)
	if !ok {
		t.Fatalf("escrow declaration for %v lost", oid)
	}
	return val, infPos, infNeg
}

func wantClean(t *testing.T, m *Manager, ctx string) {
	t.Helper()
	for _, e := range m.CheckInvariants() {
		t.Errorf("%s: invariant: %s", ctx, e)
	}
}

// TestEscrowDelegationMovesReservation: delegating an object with an
// in-flight escrow reservation moves the reservation with the increment
// grant — the delegatee's commit folds the delta exactly once, and the
// delegator's release leaves no residue.
func TestEscrowDelegationMovesReservation(t *testing.T) {
	const oid = xid.OID(7)
	m := newEscrowManager(t, oid, 50, 0, 100)
	t1, t2 := xid.TID(1), xid.TID(2)

	if err := m.EscrowReserve(t1, oid, 5); err != nil {
		t.Fatalf("reserve: %v", err)
	}
	if moved := m.Delegate(t1, t2, []xid.OID{oid}); len(moved) != 1 || moved[0] != oid {
		t.Fatalf("Delegate moved %v, want [%v]", moved, oid)
	}
	wantClean(t, m, "after delegate")
	if _, infPos, _ := escrowVal(t, m, oid); infPos != 5 {
		t.Fatalf("in-flight +%d after delegation, want +5 (reservation lost or doubled)", infPos)
	}

	// The delegator terminating must not touch the moved reservation.
	m.ReleaseAll(t1)
	if _, infPos, _ := escrowVal(t, m, oid); infPos != 5 {
		t.Fatalf("delegator release disturbed the reservation: in-flight +%d, want +5", infPos)
	}

	m.EscrowCommit(t2)
	m.ReleaseAll(t2)
	val, infPos, infNeg := escrowVal(t, m, oid)
	if val != 55 || infPos != 0 || infNeg != 0 {
		t.Fatalf("after delegatee commit: val=%d inflight=+%d/-%d, want 55 +0/-0", val, infPos, infNeg)
	}
	wantClean(t, m, "after settle")
}

// TestEscrowDelegationMergesReservations: when the delegatee already holds
// its own reservation on the object, the moved reservation merges into it
// and one commit folds both deltas.
func TestEscrowDelegationMergesReservations(t *testing.T) {
	const oid = xid.OID(3)
	m := newEscrowManager(t, oid, 50, 0, 100)
	t1, t2 := xid.TID(1), xid.TID(2)

	if err := m.EscrowReserve(t2, oid, 3); err != nil {
		t.Fatalf("delegatee reserve: %v", err)
	}
	if err := m.EscrowReserve(t1, oid, 5); err != nil {
		t.Fatalf("delegator reserve +5: %v", err)
	}
	if err := m.EscrowReserve(t1, oid, -2); err != nil {
		t.Fatalf("delegator reserve -2: %v", err)
	}
	if moved := m.Delegate(t1, t2, nil); len(moved) != 1 {
		t.Fatalf("Delegate moved %v, want one object", moved)
	}
	wantClean(t, m, "after merge delegate")
	if _, infPos, infNeg := escrowVal(t, m, oid); infPos != 8 || infNeg != 2 {
		t.Fatalf("merged in-flight +%d/-%d, want +8/-2", infPos, infNeg)
	}

	m.EscrowCommit(t2)
	m.ReleaseAll(t2)
	m.ReleaseAll(t1)
	val, infPos, infNeg := escrowVal(t, m, oid)
	if val != 56 || infPos != 0 || infNeg != 0 {
		t.Fatalf("after merged commit: val=%d inflight=+%d/-%d, want 56 +0/-0", val, infPos, infNeg)
	}
	wantClean(t, m, "after merged settle")
}

// TestEscrowAbortReleasesHeadroom: a holder whose reservation fills the
// remaining headroom blocks a second reservation; the holder's release
// (the lock-level effect of an abort or watchdog reap) must free the
// in-flight sum and wake the blocked request.
func TestEscrowAbortReleasesHeadroom(t *testing.T) {
	const oid = xid.OID(9)
	m := newEscrowManager(t, oid, 0, 0, 10)
	t1, t2 := xid.TID(1), xid.TID(2)

	if err := m.EscrowReserve(t1, oid, 10); err != nil {
		t.Fatalf("reserve +10: %v", err)
	}
	granted := make(chan error, 1)
	go func() { granted <- m.EscrowReserve(t2, oid, 1) }()
	// t2 is bounds-blocked (0+10+1 > 10) but admittable once t1 goes.
	m.ReleaseAll(t1) // abort: discard the in-flight +10
	if err := <-granted; err != nil {
		t.Fatalf("blocked reservation after holder aborted: %v", err)
	}
	m.EscrowCommit(t2)
	m.ReleaseAll(t2)
	val, infPos, infNeg := escrowVal(t, m, oid)
	if val != 1 || infPos != 0 || infNeg != 0 {
		t.Fatalf("val=%d inflight=+%d/-%d, want 1 +0/-0 (aborted +10 leaked?)", val, infPos, infNeg)
	}
	wantClean(t, m, "after abort+commit")
}

// TestEscrowNeverAdmittable: a delta no future holder set can admit fails
// fast with ErrEscrow instead of blocking forever — including when the
// requester's own reservations are what exhausted the headroom (waiting
// on oneself would deadlock).
func TestEscrowNeverAdmittable(t *testing.T) {
	const oid = xid.OID(4)
	m := newEscrowManager(t, oid, 5, 0, 10)
	t1 := xid.TID(1)

	if err := m.EscrowReserve(t1, oid, 100); !errors.Is(err, ErrEscrow) {
		t.Fatalf("reserve +100 on [0,10]: err=%v, want ErrEscrow", err)
	}
	if err := m.EscrowReserve(t1, oid, 5); err != nil {
		t.Fatalf("reserve +5: %v", err)
	}
	// Headroom is exhausted by t1's own reservation; only t1's own
	// termination could admit +1, so blocking would self-deadlock.
	if err := m.EscrowReserve(t1, oid, 1); !errors.Is(err, ErrEscrow) {
		t.Fatalf("self-exhausted reserve +1: err=%v, want ErrEscrow", err)
	}
	m.ReleaseAll(t1)
	wantClean(t, m, "after never-admittable probes")
}

// TestEscrowInvariantsDetectCorruption: the escrow-accounting invariant
// family actually fires — manually corrupting the in-flight sum under the
// shard latch must produce a report, and restoring it must clear it.
func TestEscrowInvariantsDetectCorruption(t *testing.T) {
	const oid = xid.OID(6)
	m := newEscrowManager(t, oid, 50, 0, 100)
	t1 := xid.TID(1)
	if err := m.EscrowReserve(t1, oid, 5); err != nil {
		t.Fatalf("reserve: %v", err)
	}
	wantClean(t, m, "before corruption")

	s := m.shardOf(oid)
	s.lat.Lock()
	s.ods[oid].esc.infPos += 7 // ledger no longer matches the holders
	s.lat.Unlock()

	if errs := m.CheckInvariants(); len(errs) == 0 {
		t.Fatal("corrupted infPos not reported by CheckInvariants")
	}

	s.lat.Lock()
	s.ods[oid].esc.infPos -= 7
	s.lat.Unlock()
	wantClean(t, m, "after repair")

	m.EscrowCommit(t1)
	m.ReleaseAll(t1)
	if val, _, _ := escrowVal(t, m, oid); val != 55 {
		t.Fatalf("val=%d, want 55", val)
	}
}
