package locktest

import (
	"testing"
	"time"
)

// TestEscrowModel sweeps the escrow model checker across the shard counts
// the issue calls out: 1 (the legacy serial table, maximal latch
// conflict), 4 (heavy cross-shard traffic), and 64 (the default spread).
// Tight bounds [0,100] with ±8 deltas and 8 workers keep the counters
// under constant bound pressure so blocking admission, never-admittable
// rejection, and timeout withdrawal all fire. Run with -race.
func TestEscrowModel(t *testing.T) {
	for _, shards := range []int{1, 4, 64} {
		shards := shards
		t.Run(map[int]string{1: "shards1", 4: "shards4", 64: "shards64"}[shards], func(t *testing.T) {
			t.Parallel()
			RunEscrow(t, EscrowConfig{
				Shards: shards,
				Seed:   int64(shards)*100 + 7,
			})
		})
	}
}

// TestEscrowModelHotSpot drives every worker at a single counter with the
// tightest workable bounds, so nearly every reservation contends with
// every other and the in-flight sums ride the bound edges.
func TestEscrowModelHotSpot(t *testing.T) {
	RunEscrow(t, EscrowConfig{
		Shards:       4,
		Workers:      12,
		Batches:      3,
		TxnsPerBatch: 30,
		Objects:      1,
		Init:         20,
		Lo:           0,
		Hi:           40,
		MaxDelta:     12,
		Seed:         99,
		WaitTimeout:  20 * time.Millisecond,
	})
}
