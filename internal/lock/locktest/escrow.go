package locktest

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/lock"
	"repro/internal/waitgraph"
	"repro/internal/xid"
)

// EscrowConfig parameterizes an escrow model-checker run.
type EscrowConfig struct {
	Shards       int           // lock-table shard count (0 = manager default)
	Workers      int           // concurrent workers
	Batches      int           // quiescent points = Batches (checked after each)
	TxnsPerBatch int           // transactions per worker per batch
	OpsPerTxn    int           // reservation attempts per transaction
	Objects      int           // escrow counters under test
	Seed         int64         // root seed; worker w uses Seed + w
	Init         uint64        // every counter's starting value
	Lo, Hi       uint64        // escrow bounds (tight: force blocking + never)
	MaxDelta     int64         // deltas drawn from [-MaxDelta, MaxDelta]\{0}
	WaitTimeout  time.Duration // 0 picks a stress default
}

func (c *EscrowConfig) fill() {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Batches <= 0 {
		c.Batches = 4
	}
	if c.TxnsPerBatch <= 0 {
		c.TxnsPerBatch = 40
	}
	if c.OpsPerTxn <= 0 {
		c.OpsPerTxn = 6
	}
	if c.Objects <= 0 {
		c.Objects = 4
	}
	if c.Hi == 0 {
		c.Init, c.Lo, c.Hi = 50, 0, 100
	}
	if c.MaxDelta <= 0 {
		c.MaxDelta = 8
	}
	if c.WaitTimeout <= 0 {
		c.WaitTimeout = 50 * time.Millisecond
	}
}

// RunEscrow model-checks the escrow lock modes: randomized concurrent
// transactions reserve positive and negative deltas against counters with
// tight declared bounds, then commit or abort, while a mutex-serialized
// sequential reference model tracks what the committed value must be.
//
// Checked properties:
//
//   - Bounds are never violated: each committed transaction's deltas,
//     applied in commit order, keep every counter within [Lo, Hi] — the
//     admission test's guarantee that ANY subset of in-flight
//     reservations can fold safely.
//   - Exact settlement: at every quiescent point (all transactions
//     terminated) each counter's lock-side value equals the reference
//     model's — aborted reservations left no residue, committed ones
//     folded exactly once — and both in-flight sums are zero.
//   - Structural sanity: (*lock.Manager).CheckInvariants, including the
//     escrow accounting family, reports nothing at every quiescent point.
//
// The op mix includes plain read/write locks on the counters (which
// conflict with increment/decrement grants), immediate unreserves
// (simulating a failed downstream operation), never-admittable deltas
// (ErrEscrow), and bounds-blocked waits resolved by WaitTimeout, so the
// pending-queue interplay is exercised, not just the commuting fast
// path. Run under -race.
func RunEscrow(t *testing.T, cfg EscrowConfig) {
	t.Helper()
	cfg.fill()

	wg := waitgraph.New()
	lm := lock.New(wg, lock.Options{
		Shards:       cfg.Shards,
		EagerClosure: true,
		WaitTimeout:  cfg.WaitTimeout,
	})

	oids := make([]xid.OID, cfg.Objects)
	for i := range oids {
		oids[i] = xid.OID(i + 1)
		if err := lm.DeclareEscrow(oids[i], cfg.Init, cfg.Lo, cfg.Hi); err != nil {
			t.Fatalf("DeclareEscrow(%d): %v", oids[i], err)
		}
	}

	// Sequential reference model: committed value per counter, applied
	// under refMu in the same order the lock manager folds (EscrowCommit
	// runs under refMu too, so commit order and reference order agree).
	ref := make([]uint64, cfg.Objects)
	for i := range ref {
		ref[i] = cfg.Init
	}
	var refMu sync.Mutex
	var nextTID atomic.Uint64
	var committed, abortedCnt, neverCnt, timeoutCnt atomic.Uint64

	type pendingDelta struct {
		obj   int
		delta int64
	}

	runTxn := func(rng *rand.Rand) {
		tid := xid.TID(nextTID.Add(1))
		var local []pendingDelta
		doomed := false
	ops:
		for op := 0; op < cfg.OpsPerTxn; op++ {
			o := rng.Intn(cfg.Objects)
			switch r := rng.Float64(); {
			case r < 0.08: // conflicting read/write lock on the counter
				mode := xid.OpRead
				if rng.Intn(2) == 0 {
					mode = xid.OpWrite
				}
				err := lm.Lock(tid, oids[o], mode)
				switch {
				case err == nil, errors.Is(err, lock.ErrTimeout):
				case errors.Is(err, lock.ErrDeadlock), errors.Is(err, lock.ErrCancelled):
					doomed = true
					break ops
				default:
					t.Errorf("Lock(%v): unexpected error %v", tid, err)
					doomed = true
					break ops
				}
			default:
				d := rng.Int63n(2*cfg.MaxDelta+1) - cfg.MaxDelta
				if d == 0 {
					d = 1
				}
				err := lm.EscrowReserve(tid, oids[o], d)
				switch {
				case err == nil:
					if rng.Float64() < 0.10 {
						// Downstream failure: give the reservation back.
						lm.EscrowUnreserve(tid, oids[o], d)
					} else {
						local = append(local, pendingDelta{o, d})
					}
				case errors.Is(err, lock.ErrEscrow):
					neverCnt.Add(1) // never admittable; txn continues
				case errors.Is(err, lock.ErrTimeout):
					timeoutCnt.Add(1) // bounds-blocked, withdrew; txn continues
				case errors.Is(err, lock.ErrDeadlock), errors.Is(err, lock.ErrCancelled):
					doomed = true
					break ops
				default:
					t.Errorf("EscrowReserve(%v, %+d): unexpected error %v", tid, d, err)
					doomed = true
					break ops
				}
			}
		}
		if !doomed && rng.Intn(100) < 60 {
			refMu.Lock()
			lm.EscrowCommit(tid)
			for _, p := range local {
				ref[p.obj] += uint64(p.delta)
				if ref[p.obj] < cfg.Lo || ref[p.obj] > cfg.Hi {
					t.Errorf("bounds violated: counter %d = %d outside [%d, %d] after tid %v committed %+d",
						p.obj, ref[p.obj], cfg.Lo, cfg.Hi, tid, p.delta)
				}
			}
			refMu.Unlock()
			committed.Add(1)
		} else {
			abortedCnt.Add(1)
		}
		lm.ReleaseAll(tid)
	}

	checkQuiescent := func(batch int) {
		t.Helper()
		for i, oid := range oids {
			val, lo, hi, infPos, infNeg, ok := lm.EscrowInfo(oid)
			if !ok {
				t.Errorf("batch %d: counter %d lost its escrow declaration", batch, i)
				continue
			}
			if infPos != 0 || infNeg != 0 {
				t.Errorf("batch %d: counter %d quiescent but in-flight sums +%d/-%d", batch, i, infPos, infNeg)
			}
			if val != ref[i] {
				t.Errorf("batch %d: counter %d lock-side value %d, reference model %d", batch, i, val, ref[i])
			}
			if val < lo || val > hi {
				t.Errorf("batch %d: counter %d value %d outside [%d, %d]", batch, i, val, lo, hi)
			}
		}
		for _, e := range lm.CheckInvariants() {
			t.Errorf("batch %d: invariant: %s", batch, e)
		}
	}

	for batch := 0; batch < cfg.Batches; batch++ {
		var wgrp sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			wgrp.Add(1)
			//asset:goroutine joined-by=waitgroup
			go func(w int) {
				defer wgrp.Done()
				rng := rand.New(rand.NewSource(cfg.Seed + int64(batch*cfg.Workers+w)))
				for i := 0; i < cfg.TxnsPerBatch; i++ {
					runTxn(rng)
				}
			}(w)
		}
		wgrp.Wait()
		checkQuiescent(batch)
	}

	// Final drain: a fresh transaction must be able to write-lock every
	// counter immediately (no grant survived its transaction).
	drain := xid.TID(nextTID.Add(1))
	for _, oid := range oids {
		if err := lm.Lock(drain, oid, xid.OpWrite); err != nil {
			t.Errorf("drain: write lock on %d: %v", oid, err)
		}
	}
	lm.ReleaseAll(drain)

	t.Logf("escrow checker: %d committed, %d aborted, %d never-admittable, %d bounds-blocked timeouts",
		committed.Load(), abortedCnt.Load(), neverCnt.Load(), timeoutCnt.Load())
	if committed.Load() == 0 {
		t.Error("escrow checker: no transaction committed — workload degenerate")
	}
	if neverCnt.Load() == 0 {
		t.Error("escrow checker: never-admittable path untested — loosen bounds or raise MaxDelta")
	}
}
