// Package locktest drives randomized concurrent workloads against a
// lock.Manager and verifies the manager's cross-shard invariants at
// quiescent points. It exists so the lock package's own stress tests, the
// core-level torture tests, and ad-hoc debugging sessions share one
// harness instead of each growing a weaker copy.
//
// The harness model: a fixed set of workers, each owning one live
// transaction id at a time, performs batches of randomized operations
// (lock, permit, delegate, release-and-renew). Between batches every
// worker goroutine has terminated, so the manager is quiescent — no
// request is in flight, though locks and permits persist — and
// (*lock.Manager).CheckInvariants runs against a frozen table. A final
// drain releases every transaction and asserts the table emptied: no
// grant survives its transaction, no waiter lingers in the waits-for
// graph, and every object is immediately lockable by a fresh transaction.
//
// Transaction retirement is guarded by a reader/writer lock so that no
// worker delegates to — or permits — a transaction id whose ReleaseAll
// already ran. The core manager provides the same guarantee with its own
// mutex; without it the lock manager would resurrect a terminated id's
// state, which is outside its contract.
package locktest

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/lock"
	"repro/internal/waitgraph"
	"repro/internal/xid"
)

// Config parameterizes a harness run.
type Config struct {
	Shards       int           // lock-table shard count (0 = manager default)
	Workers      int           // concurrent workers, one live txn each
	Batches      int           // quiescent points = Batches + 1
	OpsPerBatch  int           // operations per worker per batch
	Objects      int           // size of the shared hot object set
	Seed         int64         // root seed; worker w uses Seed + w
	EagerClosure bool          // permit transitivity mode
	WaitTimeout  time.Duration // 0 picks a default suited to stress runs
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Batches <= 0 {
		c.Batches = 4
	}
	if c.OpsPerBatch <= 0 {
		c.OpsPerBatch = 150
	}
	if c.Objects <= 0 {
		c.Objects = 24
	}
	if c.WaitTimeout <= 0 {
		// Short enough that a worker blocked behind a held lock cannot
		// stall a batch, long enough that grants still happen under -race.
		c.WaitTimeout = 3 * time.Millisecond
	}
}

// Run executes the harness and fails t on any invariant violation.
func Run(t *testing.T, cfg Config) {
	t.Helper()
	cfg.fill()
	wg := waitgraph.New()
	m := lock.New(wg, lock.Options{
		Shards:       cfg.Shards,
		EagerClosure: cfg.EagerClosure,
		WaitTimeout:  cfg.WaitTimeout,
	})

	h := &harness{cfg: cfg, m: m, wg: wg, tids: make([]xid.TID, cfg.Workers)}
	for w := range h.tids {
		h.tids[w] = h.nextTID()
	}

	for batch := 0; batch <= cfg.Batches; batch++ {
		var group sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			group.Add(1)
			//asset:goroutine joined-by=waitgroup
			go func(w, batch int) {
				defer group.Done()
				h.workerBatch(w, rand.New(rand.NewSource(cfg.Seed+int64(w)+int64(batch)*7919)))
			}(w, batch)
		}
		group.Wait()
		if errs := m.CheckInvariants(); len(errs) > 0 {
			t.Fatalf("invariants violated at quiescent point after batch %d (shards=%d eager=%v seed=%d):\n%s",
				batch, m.NumShards(), cfg.EagerClosure, cfg.Seed, joinLines(errs))
		}
	}

	// Drain: terminate every transaction, then the table must be empty.
	h.reg.Lock()
	for w := range h.tids {
		m.ReleaseAll(h.tids[w])
	}
	h.reg.Unlock()
	if errs := m.CheckInvariants(); len(errs) > 0 {
		t.Fatalf("invariants violated after full drain (shards=%d seed=%d):\n%s",
			m.NumShards(), cfg.Seed, joinLines(errs))
	}
	if ws := wg.Waiters(); len(ws) > 0 {
		t.Fatalf("waits-for graph not empty after drain: %v", ws)
	}
	// Every object must be immediately lockable: a leaked grant would make
	// this exclusive request time out.
	probe := h.nextTID()
	for i := 0; i < cfg.Objects; i++ {
		if err := m.Lock(probe, xid.OID(i+1), xid.OpWrite); err != nil {
			t.Fatalf("object %d not lockable after drain: %v (leaked grant)", i+1, err)
		}
	}
	m.ReleaseAll(probe)
}

type harness struct {
	cfg  Config
	m    *lock.Manager
	wg   *waitgraph.Graph
	tidc xid.TID
	tidm sync.Mutex

	// reg guards transaction retirement: readers hold it across any
	// operation naming another worker's tid (permit, delegate), the writer
	// holds it across ReleaseAll-and-renew, so no operation ever targets a
	// terminated id.
	reg  sync.RWMutex
	tids []xid.TID
}

func (h *harness) nextTID() xid.TID {
	h.tidm.Lock()
	defer h.tidm.Unlock()
	h.tidc++
	return h.tidc
}

var modes = []xid.OpSet{xid.OpRead, xid.OpWrite, xid.OpIncr, xid.OpRead | xid.OpIncr}

func (h *harness) workerBatch(w int, rng *rand.Rand) {
	for op := 0; op < h.cfg.OpsPerBatch; op++ {
		my := h.tids[w]
		oid := xid.OID(rng.Intn(h.cfg.Objects) + 1)
		switch r := rng.Intn(100); {
		case r < 70:
			err := h.m.Lock(my, oid, modes[rng.Intn(len(modes))])
			if err != nil {
				// Deadlock victim, timeout, or cancelled: the transaction
				// gives up and a new one takes its place, exactly like an
				// abort in the full system.
				h.retire(w)
			}
		case r < 82:
			h.reg.RLock()
			grantee := xid.NilTID
			if rng.Intn(3) > 0 {
				grantee = h.tids[rng.Intn(len(h.tids))]
			}
			var oids []xid.OID
			if rng.Intn(3) > 0 {
				oids = []xid.OID{oid}
			}
			h.m.Permit(h.tids[w], grantee, oids, modes[rng.Intn(len(modes))])
			h.reg.RUnlock()
		case r < 92:
			h.reg.RLock()
			to := h.tids[rng.Intn(len(h.tids))]
			var oids []xid.OID
			if rng.Intn(2) == 0 {
				oids = []xid.OID{oid}
			}
			h.m.Delegate(h.tids[w], to, oids)
			h.reg.RUnlock()
		default:
			h.retire(w)
		}
	}
}

// retire terminates worker w's transaction and gives it a fresh one.
func (h *harness) retire(w int) {
	h.reg.Lock()
	h.m.ReleaseAll(h.tids[w])
	h.tids[w] = h.nextTID()
	h.reg.Unlock()
}

func joinLines(errs []string) string {
	out := ""
	for i, e := range errs {
		if i > 0 {
			out += "\n"
		}
		out += fmt.Sprintf("  - %s", e)
	}
	return out
}
