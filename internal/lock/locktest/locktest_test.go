package locktest

import (
	"testing"
	"time"
)

// TestInvariantsUnderStress runs the randomized concurrent harness across
// the shard counts the issue calls out (1 = the legacy serial table, a
// small count forcing heavy cross-shard traffic, and the default) in both
// permit-closure modes. Run with -race; the harness is as much a data-race
// probe as an invariant check.
func TestInvariantsUnderStress(t *testing.T) {
	for _, shards := range []int{1, 4, 64} {
		for _, eager := range []bool{true, false} {
			shards, eager := shards, eager
			name := map[bool]string{true: "eager", false: "lazy"}[eager]
			t.Run(map[int]string{1: "shards1", 4: "shards4", 64: "shards64"}[shards]+"/"+name, func(t *testing.T) {
				t.Parallel()
				Run(t, Config{
					Shards:       shards,
					Workers:      8,
					Batches:      4,
					OpsPerBatch:  120,
					Objects:      16,
					Seed:         int64(shards)*1000 + 17,
					EagerClosure: eager,
				})
			})
		}
	}
}

// TestInvariantsHotSpot drives every worker at a tiny object set so almost
// every operation contends, maximizing suspension, delegation merges, and
// victim traffic through a handful of ODs.
func TestInvariantsHotSpot(t *testing.T) {
	Run(t, Config{
		Shards:      4,
		Workers:     12,
		Batches:     3,
		OpsPerBatch: 100,
		Objects:     3,
		Seed:        42,
		WaitTimeout: 2 * time.Millisecond,
	})
}
