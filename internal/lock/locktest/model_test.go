package locktest

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/lock"
	"repro/internal/waitgraph"
	"repro/internal/xid"
)

// refModel is a deliberately naive single-structure reference
// implementation of the ASSET lock-manager semantics: one flat lock map,
// one flat permit list, no latches, no queues. Applied to a sequential
// schedule it must agree exactly with the sharded manager — any divergence
// means the sharding refactor changed semantics, not just concurrency.
//
// Sequential schedules keep the pending queues empty (a blocked request
// times out and is withdrawn before the next operation runs), so queue
// fairness never influences outcomes and the model can decide grant/block
// from the granted group and permit set alone.
type refModel struct {
	eager   bool
	locks   map[xid.OID]map[xid.TID]*refLock
	permits []*refPermit
}

type refLock struct {
	mode      xid.OpSet
	suspended bool
}

type refPermit struct {
	grantor, grantee xid.TID
	oid              xid.OID
	ops              xid.OpSet
}

func newRefModel(eager bool) *refModel {
	return &refModel{eager: eager, locks: make(map[xid.OID]map[xid.TID]*refLock)}
}

// lock attempts the acquisition and reports whether it was granted,
// mirroring §4.2 steps 1a/1b/2 as implemented by the manager.
func (r *refModel) lock(tid xid.TID, oid xid.OID, mode xid.OpSet) bool {
	own := r.locks[oid][tid]
	if own != nil && !own.suspended && own.mode.Has(mode) {
		return true
	}
	var permitted []*refLock
	for htid, hl := range r.locks[oid] {
		if htid == tid || !hl.mode.Conflicts(mode) {
			continue
		}
		if !r.permitsQ(htid, tid, oid, mode) {
			return false // blocked; the real manager times out
		}
		permitted = append(permitted, hl)
	}
	for _, hl := range permitted {
		hl.suspended = true
	}
	if own != nil {
		own.mode = own.mode.Union(mode)
		own.suspended = false
		return true
	}
	if r.locks[oid] == nil {
		r.locks[oid] = make(map[xid.TID]*refLock)
	}
	r.locks[oid][tid] = &refLock{mode: mode}
	return true
}

func (r *refModel) holds(tid xid.TID, oid xid.OID, mode xid.OpSet) bool {
	gl := r.locks[oid][tid]
	return gl != nil && !gl.suspended && gl.mode.Has(mode)
}

// permitsQ answers "does holder permit requester for ops on oid": a direct
// descriptor scan under eager closure, a grantor-chain DFS under lazy.
func (r *refModel) permitsQ(holder, requester xid.TID, oid xid.OID, ops xid.OpSet) bool {
	if r.eager {
		for _, p := range r.permits {
			if p.oid == oid && p.grantor == holder &&
				(p.grantee == requester || p.grantee.IsNil()) && p.ops.Has(ops) {
				return true
			}
		}
		return false
	}
	type node struct {
		tid xid.TID
		ops xid.OpSet
	}
	visited := make(map[xid.TID]xid.OpSet)
	stack := []node{{holder, xid.OpAll}}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[n.tid].Has(n.ops) {
			continue
		}
		visited[n.tid] = visited[n.tid].Union(n.ops)
		for _, p := range r.permits {
			if p.oid != oid || p.grantor != n.tid {
				continue
			}
			shared := p.ops.Intersect(n.ops)
			if !shared.Has(ops) {
				continue
			}
			if p.grantee == requester || p.grantee.IsNil() {
				return true
			}
			stack = append(stack, node{p.grantee, shared})
		}
	}
	return false
}

// insertPD adds or widens one descriptor, reporting whether the permission
// grew — the same contract the manager's insertPD has.
func (r *refModel) insertPD(oid xid.OID, grantor, grantee xid.TID, ops xid.OpSet) bool {
	for _, p := range r.permits {
		if p.oid != oid || p.grantor != grantor || p.grantee != grantee {
			continue
		}
		if p.ops.Has(ops) {
			return false
		}
		p.ops = p.ops.Union(ops)
		return true
	}
	r.permits = append(r.permits, &refPermit{grantor: grantor, grantee: grantee, oid: oid, ops: ops})
	return true
}

func (r *refModel) permit(grantor, grantee xid.TID, oids []xid.OID, ops xid.OpSet) {
	if ops == 0 {
		ops = xid.OpAll
	}
	if oids == nil {
		oids = r.accessible(grantor)
	}
	for _, oid := range oids {
		// Worklist identical to the manager's permitOneLocked: under eager
		// closure a grown permission from g derives one from everyone who
		// permitted g, recursively (the paper's backward transitivity rule).
		type ins struct {
			grantor, grantee xid.TID
			ops              xid.OpSet
		}
		work := []ins{{grantor, grantee, ops}}
		for len(work) > 0 {
			w := work[len(work)-1]
			work = work[:len(work)-1]
			if w.grantor == w.grantee && !w.grantee.IsNil() {
				continue
			}
			grew := r.insertPD(oid, w.grantor, w.grantee, w.ops)
			if !grew || !r.eager {
				continue
			}
			for _, p := range r.permits {
				if p.oid == oid && (p.grantee == w.grantor || p.grantee.IsNil()) && p.grantor != w.grantor {
					if shared := p.ops.Intersect(w.ops); shared != 0 {
						work = append(work, ins{p.grantor, w.grantee, shared})
					}
				}
			}
		}
	}
}

func (r *refModel) accessible(tid xid.TID) []xid.OID {
	seen := make(map[xid.OID]bool)
	var out []xid.OID
	for oid, holders := range r.locks {
		if holders[tid] != nil && !seen[oid] {
			seen[oid] = true
			out = append(out, oid)
		}
	}
	for _, p := range r.permits {
		if p.grantee == tid && !seen[p.oid] {
			seen[p.oid] = true
			out = append(out, p.oid)
		}
	}
	return out
}

func (r *refModel) delegate(from, to xid.TID, oids []xid.OID) {
	if from == to {
		return
	}
	var candidates []xid.OID
	if oids == nil {
		for oid, holders := range r.locks {
			if holders[from] != nil {
				candidates = append(candidates, oid)
			}
		}
	} else {
		for _, oid := range oids {
			if r.locks[oid][from] != nil {
				candidates = append(candidates, oid)
			}
		}
	}
	for _, oid := range candidates {
		gl := r.locks[oid][from]
		delete(r.locks[oid], from)
		if existing := r.locks[oid][to]; existing != nil {
			existing.mode = existing.mode.Union(gl.mode)
			existing.suspended = existing.suspended && gl.suspended
		} else {
			r.locks[oid][to] = gl
		}
	}
	// Permissions given by from on the delegated objects (all, for
	// delegate-all) move to to — widening via plain insertPD, with no
	// transitive closure, exactly like the manager's reassignGrantor.
	var want map[xid.OID]bool
	if oids != nil {
		want = make(map[xid.OID]bool, len(oids))
		for _, o := range oids {
			want[o] = true
		}
	}
	kept := r.permits[:0]
	var regrant []*refPermit
	for _, p := range r.permits {
		if p.grantor != from || (want != nil && !want[p.oid]) {
			kept = append(kept, p)
			continue
		}
		if p.grantee != to {
			regrant = append(regrant, p)
		}
	}
	r.permits = kept
	for _, p := range regrant {
		r.insertPD(p.oid, to, p.grantee, p.ops)
	}
}

func (r *refModel) releaseAll(tid xid.TID) {
	for _, holders := range r.locks {
		delete(holders, tid)
	}
	kept := r.permits[:0]
	for _, p := range r.permits {
		if p.grantor == tid || p.grantee == tid {
			continue
		}
		kept = append(kept, p)
	}
	r.permits = kept
}

// TestShardedMatchesReferenceModel replays randomized sequential schedules
// of lock/permit/delegate/release operations against both the sharded
// manager and the single-structure reference model and requires identical
// grant decisions, hold states, and permission answers, across shard
// counts and closure modes.
func TestShardedMatchesReferenceModel(t *testing.T) {
	const (
		nTxns    = 6
		nObjects = 8
		nOps     = 400
	)
	for _, shards := range []int{1, 2, 64} {
		for _, eager := range []bool{true, false} {
			for seed := int64(1); seed <= 6; seed++ {
				shards, eager, seed := shards, eager, seed
				mode := map[bool]string{true: "eager", false: "lazy"}[eager]
				t.Run(map[int]string{1: "shards1", 2: "shards2", 64: "shards64"}[shards]+"/"+mode, func(t *testing.T) {
					runModelComparison(t, shards, eager, seed, nTxns, nObjects, nOps)
				})
			}
		}
	}
}

func runModelComparison(t *testing.T, shards int, eager bool, seed int64, nTxns, nObjects, nOps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := lock.New(waitgraph.New(), lock.Options{
		Shards:       shards,
		EagerClosure: eager,
		// A blocked sequential request must withdraw quickly so the
		// schedule can continue; 1ms keeps the full sweep fast.
		WaitTimeout: time.Millisecond,
	})
	ref := newRefModel(eager)

	tid := func(i int) xid.TID { return xid.TID(i + 1) }
	randOps := func() xid.OpSet { return modes[rng.Intn(len(modes))] }

	for op := 0; op < nOps; op++ {
		me := tid(rng.Intn(nTxns))
		oid := xid.OID(rng.Intn(nObjects) + 1)
		switch r := rng.Intn(100); {
		case r < 55:
			mode := randOps()
			want := ref.lock(me, oid, mode)
			err := m.Lock(me, oid, mode)
			if got := err == nil; got != want {
				t.Fatalf("op %d (seed %d): Lock(%v,%v,%v) granted=%v, model says %v (err=%v)",
					op, seed, me, oid, mode, got, want, err)
			}
			if err != nil && err != lock.ErrTimeout {
				t.Fatalf("op %d (seed %d): sequential blocked Lock returned %v, want ErrTimeout", op, seed, err)
			}
		case r < 72:
			grantee := xid.NilTID
			if rng.Intn(3) > 0 {
				grantee = tid(rng.Intn(nTxns))
			}
			var oids []xid.OID
			if rng.Intn(3) > 0 {
				oids = []xid.OID{oid}
			}
			ops := randOps()
			m.Permit(me, grantee, oids, ops)
			ref.permit(me, grantee, oids, ops)
		case r < 85:
			to := tid(rng.Intn(nTxns))
			var oids []xid.OID
			if rng.Intn(2) == 0 {
				oids = []xid.OID{oid}
			}
			m.Delegate(me, to, oids)
			ref.delegate(me, to, oids)
		default:
			m.ReleaseAll(me)
			ref.releaseAll(me)
		}

		// Cross-check observable state on a sampled slice of the space.
		for probe := 0; probe < 4; probe++ {
			pt := tid(rng.Intn(nTxns))
			po := xid.OID(rng.Intn(nObjects) + 1)
			pm := modes[rng.Intn(len(modes))]
			if got, want := m.Holds(pt, po, pm), ref.holds(pt, po, pm); got != want {
				t.Fatalf("op %d (seed %d): Holds(%v,%v,%v)=%v, model says %v", op, seed, pt, po, pm, got, want)
			}
			qt := tid(rng.Intn(nTxns))
			if got, want := m.Permitted(pt, qt, po, pm), ref.permitsQ(pt, qt, po, pm); got != want {
				t.Fatalf("op %d (seed %d): Permitted(%v,%v,%v,%v)=%v, model says %v", op, seed, pt, qt, po, pm, got, want)
			}
		}
	}
	if errs := m.CheckInvariants(); len(errs) > 0 {
		t.Fatalf("invariants violated at end of schedule (seed %d):\n%s", seed, joinLines(errs))
	}
}
