package lock

import (
	"fmt"

	"repro/internal/xid"
)

// CheckInvariants verifies the cross-shard consistency of the whole lock
// table and returns a description of every violation found (empty means
// consistent). It is the one operation permitted to hold more than one
// shard latch: it acquires ALL shard latches in ascending index order —
// the documented exception in the latch-ordering discipline (DESIGN.md §8)
// — so it observes a single global snapshot. Transaction-state latches and
// the wait-graph mutex still nest inside the shard latches as usual.
//
// Checked invariants:
//
//  1. Mutual exclusion: no two unsuspended granted LRDs with conflicting
//     modes coexist on one object (suspension is the only sanctioned form
//     of conflicting co-grant, per the permit semantics of §2.2).
//  2. Index agreement: every granted LRD belongs to a live transaction
//     whose LRD index points back at it, and vice versa — so no grant is
//     held by a terminated (released) transaction, and ReleaseAll can
//     always find what it must free.
//  3. Wait registration: every pending request is registered in its
//     transaction's wait set and vice versa, so aborts and victim marking
//     reach every blocked request.
//  4. Permit chains: every live PD is indexed by its grantor (and grantee,
//     when named), both of which are live transactions; every live indexed
//     PD is present on its object's chain.
//  5. Wait-graph agreement: every waiter in the graph has at least one
//     registered pending request. (Assumes the graph is used by this
//     manager alone, as in the lock-level test harnesses; the full system
//     also records commit-dependency waits in the same graph.)
//  6. Escrow accounting: every declared ledger's in-flight sums equal the
//     sums over its holder records; a bounded ledger keeps both worst-case
//     inequalities (val+infPos <= hi, val-infNeg >= lo, so the committed
//     value can never leave [lo, hi] whatever the in-flight reservations
//     resolve to); every reservation is held by a live transaction that
//     holds a granted increment/decrement-mode lock on the object and
//     indexes the reservation, and vice versa.
//
// The intended use is at quiescent points of a concurrent workload (no
// Lock/Delegate/Permit/ReleaseAll in flight); it is safe, but noisier, to
// call mid-flight, since transient states (e.g. a waiter whose blocker
// terminated but which has not yet re-evaluated) are not violations.
func (m *Manager) CheckInvariants() []string {
	for i := range m.shards {
		// The all-shard freeze is the one sanctioned exception to the
		// ≤1-shard-latch rule: a consistent cross-shard snapshot needs every
		// shard stopped at once. Deadlock-free because shards are taken in
		// ascending index order and nothing else ever holds two.
		//lint:allow latchorder sanctioned all-shard freeze for invariant snapshot
		m.shards[i].lat.Lock()
	}
	defer func() {
		for i := range m.shards {
			m.shards[i].lat.Unlock()
		}
	}()

	var bad []string
	report := func(format string, args ...any) {
		bad = append(bad, fmt.Sprintf(format, args...))
	}

	// tsOf fetches a live txnState without creating one.
	tsOf := func(tid xid.TID) *txnState {
		ts, ok := m.txns.Get(uint64(tid))
		if !ok {
			return nil
		}
		return ts
	}

	pendingTids := make(map[xid.TID]bool)

	// Object-side walk: shards own the ground truth.
	for si := range m.shards {
		for oid, od := range m.shards[si].ods {
			if od.oid != oid || od.home != &m.shards[si] {
				report("od %v: misfiled (oid %v, shard %d)", oid, od.oid, si)
			}
			seen := make(map[xid.TID]bool)
			for _, gl := range od.granted {
				if gl.od != od {
					report("granted LRD %v/%v: od backpointer wrong", gl.tid, oid)
				}
				if seen[gl.tid] {
					report("object %v: duplicate granted LRD for txn %v", oid, gl.tid)
				}
				seen[gl.tid] = true
				ts := tsOf(gl.tid)
				if ts == nil {
					report("object %v: grant held by terminated txn %v", oid, gl.tid)
					continue
				}
				ts.lat.Lock()
				indexed := ts.locks[oid]
				dead := ts.dead
				ts.lat.Unlock()
				if dead {
					report("object %v: grant held by dead txn %v", oid, gl.tid)
				} else if indexed != gl {
					report("object %v: txn %v LRD index disagrees with OD chain", oid, gl.tid)
				}
				// Mutual exclusion among unsuspended grants.
				if !gl.suspended {
					for _, other := range od.granted {
						if other != gl && !other.suspended && other.tid != gl.tid &&
							other.mode.Conflicts(gl.mode) {
							report("object %v: unsuspended conflicting grants %v(%v) vs %v(%v)",
								oid, gl.tid, gl.mode, other.tid, other.mode)
						}
					}
				}
			}
			for _, req := range od.pending {
				if req.od != od {
					report("pending LRD %v/%v: od backpointer wrong", req.tid, oid)
				}
				pendingTids[req.tid] = true
				ts := tsOf(req.tid)
				if ts == nil {
					report("object %v: pending request by unknown txn %v", oid, req.tid)
					continue
				}
				ts.lat.Lock()
				registered := ts.waits[req]
				ts.lat.Unlock()
				if !registered {
					report("object %v: pending request by %v not in its wait set", oid, req.tid)
				}
			}
			if e := od.esc; e != nil {
				var sumPos, sumNeg uint64
				for tid, r := range e.holders {
					sumPos += r.pos
					sumNeg += r.neg
					ts := tsOf(tid)
					if ts == nil {
						report("object %v: escrow reservation by terminated txn %v", oid, tid)
						continue
					}
					gl := od.ownerReq(tid)
					if gl == nil || !gl.mode.Has(xid.OpIncr) && !gl.mode.Has(xid.OpDecr) {
						report("object %v: escrow reservation by %v without an incr/decr grant", oid, tid)
					}
					ts.lat.Lock()
					indexed := ts.escrows[oid] == od
					ts.lat.Unlock()
					if !indexed {
						report("object %v: escrow reservation by %v missing from its index", oid, tid)
					}
				}
				if sumPos != e.infPos || sumNeg != e.infNeg {
					report("object %v: escrow in-flight sums (+%d/-%d) disagree with holders (+%d/-%d)",
						oid, e.infPos, e.infNeg, sumPos, sumNeg)
				}
				if e.bounded {
					if e.val < e.lo || e.val > e.hi {
						report("object %v: escrow value %d outside bounds [%d,%d]", oid, e.val, e.lo, e.hi)
					}
					if e.infPos > e.hi-e.val {
						report("object %v: escrow over-reserved high: val %d + inflight %d > hi %d",
							oid, e.val, e.infPos, e.hi)
					}
					if e.infNeg > e.val-e.lo {
						report("object %v: escrow over-reserved low: val %d - inflight %d < lo %d",
							oid, e.val, e.infNeg, e.lo)
					}
				}
			}
			for _, p := range od.permits {
				if p.isDead() {
					report("object %v: dead PD (%v→%v) still chained", oid, p.grantor, p.grantee)
					continue
				}
				if p.od != od {
					report("PD (%v→%v) on %v: od backpointer wrong", p.grantor, p.grantee, oid)
				}
				gts := tsOf(p.grantor)
				if gts == nil {
					report("object %v: PD by terminated grantor %v", oid, p.grantor)
				} else if !permitIndexed(gts, p, true) {
					report("object %v: PD (%v→%v) missing from grantor index", oid, p.grantor, p.grantee)
				}
				if !p.grantee.IsNil() {
					ets := tsOf(p.grantee)
					if ets == nil {
						report("object %v: PD to terminated grantee %v", oid, p.grantee)
					} else if !permitIndexed(ets, p, false) {
						report("object %v: PD (%v→%v) missing from grantee index", oid, p.grantor, p.grantee)
					}
				}
			}
		}
	}

	// Transaction-side walk: indexes must not point at anything the OD
	// chains no longer contain.
	m.txns.Range(func(_ uint64, ts *txnState) bool {
		ts.lat.Lock()
		defer ts.lat.Unlock()
		if ts.dead {
			report("txn %v: dead state still mapped", ts.tid)
			return true
		}
		for oid, gl := range ts.locks {
			if gl.tid != ts.tid {
				report("txn %v: indexed LRD on %v tagged %v", ts.tid, oid, gl.tid)
			}
			if gl.od.ownerReq(ts.tid) != gl {
				report("txn %v: indexed LRD on %v absent from OD chain", ts.tid, oid)
			}
		}
		for req := range ts.waits {
			found := false
			for _, p := range req.od.pending {
				if p == req {
					found = true
					break
				}
			}
			if !found {
				report("txn %v: wait-set request on %v not pending", ts.tid, req.od.oid)
			}
		}
		for oid, od := range ts.escrows {
			if od.oid != oid {
				report("txn %v: escrow index entry for %v points at od %v", ts.tid, oid, od.oid)
				continue
			}
			if od.esc == nil || od.esc.holders[ts.tid] == nil {
				report("txn %v: escrow index entry for %v without a ledger reservation", ts.tid, oid)
			}
		}
		for _, p := range ts.byGrantor {
			if p.isDead() {
				continue
			}
			if p.grantor != ts.tid {
				report("txn %v: grantor index holds PD by %v", ts.tid, p.grantor)
			}
			if !permitChained(p) {
				report("txn %v: live grantor PD on %v not chained", ts.tid, p.od.oid)
			}
		}
		for _, p := range ts.byGrantee {
			if p.isDead() {
				continue
			}
			if p.grantee != ts.tid {
				report("txn %v: grantee index holds PD to %v", ts.tid, p.grantee)
			}
			if !permitChained(p) {
				report("txn %v: live grantee PD on %v not chained", ts.tid, p.od.oid)
			}
		}
		return true
	})

	// Wait-graph agreement: no edges without a blocked request behind them.
	for _, w := range m.wg.Waiters() {
		if !pendingTids[w] {
			report("wait-graph: waiter %v has no pending lock request", w)
		}
	}
	return bad
}

// permitIndexed reports whether p appears in ts's grantor (or grantee)
// index. Takes ts.lat; caller holds shard latches only.
func permitIndexed(ts *txnState, p *permit, asGrantor bool) bool {
	ts.lat.Lock()
	defer ts.lat.Unlock()
	list := ts.byGrantee
	if asGrantor {
		list = ts.byGrantor
	}
	for _, q := range list {
		if q == p {
			return true
		}
	}
	return false
}

// permitChained reports whether p is on its object's PD chain. Caller holds
// all shard latches.
func permitChained(p *permit) bool {
	for _, q := range p.od.permits {
		if q == p {
			return true
		}
	}
	return false
}
