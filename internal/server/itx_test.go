package server

import (
	"context"
	"testing"
	"time"
)

// TestFinishBodyWaitsOutBeginning: a commit racing an in-flight begin
// must wait the begin out and still deliver the finish op — returning
// early would hand CommitCtx a body that never completes and, once the
// tid was forgotten, leak the body goroutine forever (nothing left to
// unwind it).
func TestFinishBodyWaitsOutBeginning(t *testing.T) {
	t.Parallel()
	ti := newItx(context.Background())
	ti.mu.Lock()
	ti.state = stBeginning
	ti.mu.Unlock()
	// The begin settles shortly and the body starts draining ops, the way
	// BeginCtx returning flips the state in begin().
	go func() {
		time.Sleep(5 * time.Millisecond)
		ti.mu.Lock()
		ti.state = stRunning
		ti.mu.Unlock()
		ti.body()(nil) //nolint:errcheck
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ti.finishBody(ctx); err != nil {
		t.Fatalf("finishBody: %v", err)
	}
	select {
	case <-ti.gone:
	case <-time.After(5 * time.Second):
		t.Fatal("body still running after finishBody returned")
	}
}

// TestFinishBodyBeginningCancelled: cancellation while waiting out the
// begin reports the abandonment instead of pretending the body finished.
func TestFinishBodyBeginningCancelled(t *testing.T) {
	t.Parallel()
	ti := newItx(context.Background())
	ti.mu.Lock()
	ti.state = stBeginning
	ti.mu.Unlock()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ti.finishBody(ctx); err == nil {
		t.Fatal("finishBody with cancelled ctx = nil, want error")
	}
	ti.mu.Lock()
	st := ti.state
	ti.mu.Unlock()
	if st != stBeginning {
		t.Fatalf("state = %v, want stBeginning left intact", st)
	}
}
