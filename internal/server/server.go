// Package server is the networked front end of an ASSET manager: assetd
// sessions speak the internal/rpc protocol over any net.Listener (TCP in
// production, faultnet in tests) and drive one shared core.Manager.
//
// Robustness design, in the order the chaos matrix attacks it:
//
//   - Sessions, not connections, own transactions. A connection dying
//     (drop, partition, reset) leaves the session — and its live
//     transactions — intact; the client redials and resumes the session
//     by token, and every response finds its way back on whatever
//     connection the session currently has.
//   - Each session holds a lease renewed by heartbeat. When heartbeats
//     stop (crashed or partitioned client), the lease expires and the
//     session's live transactions are aborted cleanly: no stranded
//     locks, no leaked body goroutines, admission slots returned.
//   - Every request carries a session-unique request ID. Completed
//     responses are recorded until the client acknowledges them, so a
//     retransmitted request — the client's answer to a lost response —
//     returns the recorded verdict instead of executing twice. Commit
//     in particular is an exactly-once decision over at-least-once
//     delivery: CommitCtx only ever returns final verdicts, and the
//     table makes the verdict stable across retries.
//   - Cancellation is a first-class request (OpCancel): it cancels the
//     per-request context server-side, which unwinds lock waits via
//     LockCtx and aborts pre-commit-point commits — the transaction is
//     always left aborted or intact, never half-committed.
//
// Latch order: Server.mu (4) and session.mu (6) are acquired outside —
// never across — core.Manager calls (Manager.mu is order 10); the
// per-connection write latch (8) is innermost of the server's own.
package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/xid"
)

// Config tunes a server.
type Config struct {
	// LeaseTTL is how long a session survives without a heartbeat;
	// 0 means 2s. Tests compress this to tens of milliseconds.
	LeaseTTL time.Duration
	// RetryAfter is the backoff hint attached to ErrOverload responses;
	// 0 means LeaseTTL/4.
	RetryAfter time.Duration
	// Verdicts, when non-nil, makes this server answer OpVerdictQuery: it
	// is co-located with a distributed-commit coordinator whose durable
	// decision log can resolve — or, for an undecided group, force — the
	// verdict. Without it the op fails with ErrUnknownGroup.
	Verdicts VerdictResolver
}

// VerdictResolver answers "did group gid commit?" from durable state,
// forcing a presumed-abort decision for groups it never decided.
// txcoord.Coordinator implements it.
type VerdictResolver interface {
	Resolve(gid uint64) (commit bool, err error)
}

// Server serves the ASSET wire protocol on one listener.
type Server struct {
	m        *core.Manager
	lis      net.Listener
	ttl      time.Duration
	hint     time.Duration
	epoch    uint64
	verdicts VerdictResolver

	// mu guards the session table and the closed flag. Held only for
	// table surgery, never across manager calls or frame I/O.
	//asset:latch order=4
	mu       sync.Mutex
	sessions map[uint64]*session
	closed   bool

	closeCh chan struct{}
	wg      sync.WaitGroup
}

// Serve starts serving m's protocol on lis. The caller owns both: Close
// stops the server but closes neither the manager nor (beyond unblocking
// Accept) the listener's existing connections.
func Serve(m *core.Manager, lis net.Listener, cfg Config) *Server {
	ttl := cfg.LeaseTTL
	if ttl <= 0 {
		ttl = 2 * time.Second
	}
	hint := cfg.RetryAfter
	if hint <= 0 {
		hint = ttl / 4
	}
	s := &Server{
		m:        m,
		lis:      lis,
		ttl:      ttl,
		hint:     hint,
		epoch:    rand.Uint64() | 1, // nonzero: 0 means "no epoch known"
		verdicts: cfg.Verdicts,
		sessions: make(map[uint64]*session),
		closeCh:  make(chan struct{}),
	}
	s.wg.Add(2)
	//asset:goroutine joined-by=waitgroup
	go s.acceptLoop()
	//asset:goroutine joined-by=waitgroup
	go s.leaseWatch()
	return s
}

// Epoch identifies this server incarnation; a client that saw a
// different epoch knows the server restarted and unlearned verdicts.
func (s *Server) Epoch() uint64 { return s.epoch }

// Close stops accepting, expires every session (aborting live
// transactions), and waits for the server's goroutines.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	close(s.closeCh)
	s.lis.Close()
	for _, sess := range sessions {
		s.expire(sess, fmt.Errorf("%w: server shutting down", core.ErrClosed))
	}
	s.wg.Wait()
}

// SessionCounts reports (live, expired) sessions — the "no stranded
// leases" assertion of the chaos matrix.
func (s *Server) SessionCounts() (live, expired int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sess := range s.sessions {
		sess.mu.Lock()
		if sess.dead {
			expired++
		} else {
			live++
		}
		sess.mu.Unlock()
	}
	return live, expired
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.lis.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		//asset:goroutine joined-by=waitgroup
		go func() {
			defer s.wg.Done()
			s.serveConn(nc)
		}()
	}
}

// leaseWatch expires sessions whose lease lapsed. The tick is a quarter
// TTL so a lease is never honored much past its expiry.
func (s *Server) leaseWatch() {
	defer s.wg.Done()
	tick := time.NewTicker(max(s.ttl/4, time.Millisecond))
	defer tick.Stop()
	for {
		select {
		case <-s.closeCh:
			return
		case <-tick.C:
		}
		now := time.Now()
		var lapsed []*session
		s.mu.Lock()
		for _, sess := range s.sessions {
			sess.mu.Lock()
			if !sess.dead && now.After(sess.leaseUntil) {
				lapsed = append(lapsed, sess)
			}
			sess.mu.Unlock()
		}
		s.mu.Unlock()
		for _, sess := range lapsed {
			s.expire(sess, fmt.Errorf("%w: no heartbeat within %v", core.ErrLeaseExpired, s.ttl))
		}
	}
}

// expire kills a session: in-flight requests are cancelled, live
// transactions aborted, transaction bodies unwound. The session stays in
// the table marked dead so a resume attempt learns ErrLeaseExpired
// (rather than being mistaken for an unknown token).
func (s *Server) expire(sess *session, reason error) {
	sess.mu.Lock()
	if sess.dead {
		sess.mu.Unlock()
		return
	}
	sess.dead = true
	txns := sess.txns
	sess.txns = make(map[xid.TID]*itx)
	// sess.completed is deliberately kept: verdicts already decided must
	// stay fetchable by retransmission even after the session dies —
	// expiry strands no locks, but it must also unlearn no decisions.
	sess.mu.Unlock()
	sess.cancel(reason)
	for tid, t := range txns {
		tid, t := tid, t
		s.wg.Add(1)
		//asset:goroutine joined-by=waitgroup
		go func() {
			defer s.wg.Done()
			// Unwind first so the abort reason seen by in-flight work is
			// the session's death (reason), not a generic abort; then
			// Abort as the backstop for bodies that finished cleanly.
			// Abort is a no-op (ErrAlreadyCommitted) for transactions past
			// the commit point: expiry never rolls back a decided commit.
			t.unwindWith(reason)
			s.m.Abort(tid) //nolint:errcheck
		}()
	}
}

// serveConn runs one connection: handshake, then a read loop that
// dispatches each request on its own goroutine (so a blocked lock wait
// never stalls heartbeats sharing the connection).
func (s *Server) serveConn(nc net.Conn) {
	defer nc.Close()
	conn := &srvConn{c: nc}
	sess := s.handshake(conn)
	if sess == nil {
		return
	}
	for {
		payload, err := rpc.ReadFrame(nc)
		if err != nil {
			// Transport death or a truncated/corrupt frame: drop the
			// connection. The session survives on its lease; a resumed
			// connection picks the work back up.
			return
		}
		req, err := rpc.DecodeRequest(payload)
		if err != nil {
			return
		}
		switch req.Op {
		case rpc.OpHeartbeat:
			sess.heartbeat(conn, req, s.ttl)
		case rpc.OpCancel:
			sess.cancelRequest(req.Other)
		case rpc.OpBye:
			// Handled inline, before the dispatch dedup gate: the client
			// sends Bye fire-and-forget with no request ID, which the gate
			// would silently drop — leaving the session to linger holding
			// its transactions and locks until the lease lapsed.
			sess.bye()
			return
		default:
			s.wg.Add(1)
			//asset:goroutine joined-by=waitgroup
			go func() {
				defer s.wg.Done()
				sess.dispatch(conn, req)
			}()
		}
	}
}

// handshake consumes the OpHello that must open every connection and
// either creates a session, resumes one by token, or reports why not
// (expired lease, unknown token, closed server).
func (s *Server) handshake(conn *srvConn) *session {
	payload, err := rpc.ReadFrame(conn.c)
	if err != nil {
		return nil
	}
	req, err := rpc.DecodeRequest(payload)
	if err != nil || req.Op != rpc.OpHello {
		return nil
	}
	resp := &rpc.Response{ReqID: req.ReqID, Val: s.epoch, Aux: uint64(s.ttl / time.Microsecond)}
	sess, err := s.resolveSession(req.Other)
	if err != nil {
		resp.SetError(err, 0)
		conn.send(resp) //nolint:errcheck
		return nil
	}
	sess.mu.Lock()
	sess.leaseUntil = time.Now().Add(s.ttl)
	sess.mu.Unlock()
	resp.TID = sess.id
	// The hello reply goes out before the connection is published: once
	// sess.conn is set, dispatch goroutines finishing old requests route
	// their responses here, and one of those frames must not beat the
	// handshake response onto the wire. (The client matches the reply by
	// request ID regardless — this ordering keeps the common path clean.)
	if conn.send(resp) != nil {
		return nil
	}
	sess.mu.Lock()
	sess.conn = conn
	sess.mu.Unlock()
	return sess
}

// resolveSession maps a hello token to a session: 0 creates one, a known
// live token resumes, a dead or unknown token is an expired lease (an
// unknown token can only be a session this incarnation already forgot).
func (s *Server) resolveSession(token uint64) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, core.ErrClosed
	}
	if token == 0 {
		sess := newSession(s)
		s.sessions[sess.id] = sess
		return sess, nil
	}
	sess := s.sessions[token]
	if sess == nil {
		return nil, fmt.Errorf("%w: unknown session %#x", core.ErrLeaseExpired, token)
	}
	sess.mu.Lock()
	dead := sess.dead
	sess.mu.Unlock()
	if dead {
		return nil, fmt.Errorf("%w: session %#x expired", core.ErrLeaseExpired, token)
	}
	return sess, nil
}

// srvConn serializes frame writes on one connection; responses from
// concurrent dispatch goroutines interleave at frame granularity only.
type srvConn struct {
	//asset:latch order=8
	mu sync.Mutex
	c  net.Conn
}

func (c *srvConn) send(resp *rpc.Response) error {
	payload := rpc.EncodeResponse(resp)
	c.mu.Lock()
	defer c.mu.Unlock()
	return rpc.WriteFrame(c.c, payload)
}

// session is the unit of fault tolerance: it outlives connections and
// dies only by Bye, lease expiry, or server close.
type session struct {
	id  uint64
	srv *Server

	ctx       context.Context // parent of every transaction ctx
	cancelCtx context.CancelCauseFunc

	// mu guards everything below. Held for table surgery and frame
	// sends only — never across manager calls.
	//asset:latch order=6
	mu         sync.Mutex
	dead       bool
	leaseUntil time.Time
	conn       *srvConn
	txns       map[xid.TID]*itx
	inflight   map[uint64]context.CancelCauseFunc
	completed  map[uint64]*rpc.Response
	acked      uint64
}

func newSession(s *Server) *session {
	ctx, cancel := context.WithCancelCause(context.Background())
	return &session{
		id:         rand.Uint64() | 1,
		srv:        s,
		ctx:        ctx,
		cancelCtx:  cancel,
		leaseUntil: time.Now().Add(s.ttl),
		txns:       make(map[xid.TID]*itx),
		inflight:   make(map[uint64]context.CancelCauseFunc),
		completed:  make(map[uint64]*rpc.Response),
	}
}

func (sess *session) cancel(reason error) { sess.cancelCtx(reason) }

func (sess *session) heartbeat(conn *srvConn, req *rpc.Request, ttl time.Duration) {
	resp := &rpc.Response{ReqID: req.ReqID}
	sess.mu.Lock()
	if sess.dead {
		resp.SetError(core.ErrLeaseExpired, 0)
	} else {
		sess.leaseUntil = time.Now().Add(ttl)
		resp.Aux = uint64(ttl / time.Microsecond)
	}
	sess.mu.Unlock()
	conn.send(resp) //nolint:errcheck
}

// cancelRequest serves OpCancel: cancelling an in-flight request's
// context. Unknown request IDs (already answered, or the request frame
// itself was lost) are a silent no-op.
func (sess *session) cancelRequest(reqID uint64) {
	sess.mu.Lock()
	cancel := sess.inflight[reqID]
	sess.mu.Unlock()
	if cancel != nil {
		cancel(fmt.Errorf("server: request %d cancelled by client", reqID))
	}
}

// dispatch is the idempotency gate: a completed request replays its
// recorded response, an executing request stays deduplicated, and only a
// genuinely new request executes — under a per-request context that
// OpCancel (or session death) can cancel.
func (sess *session) dispatch(conn *srvConn, req *rpc.Request) {
	sess.mu.Lock()
	if req.Ack > sess.acked {
		// The client has the responses up to Ack; their verdicts can go.
		for id := range sess.completed {
			if id <= req.Ack {
				delete(sess.completed, id)
			}
		}
		sess.acked = req.Ack
	}
	if req.ReqID <= sess.acked {
		// An acknowledged ID can only be a network ghost — a duplicated,
		// delayed, or reordered copy of a request whose response the
		// client already has (or abandoned). Its verdict may already be
		// pruned, so executing it again would double-apply; at-most-once
		// means acknowledged IDs are a hard floor.
		sess.mu.Unlock()
		return
	}
	// Recorded verdicts answer first — even on a dead session. A commit
	// that was decided before the lease lapsed must keep returning its
	// decision, never a lease error that would invite a re-run.
	if resp, ok := sess.completed[req.ReqID]; ok {
		sess.mu.Unlock()
		conn.send(resp) //nolint:errcheck
		return
	}
	if sess.dead {
		sess.mu.Unlock()
		resp := &rpc.Response{ReqID: req.ReqID}
		resp.SetError(core.ErrLeaseExpired, 0)
		conn.send(resp) //nolint:errcheck
		return
	}
	if _, executing := sess.inflight[req.ReqID]; executing {
		// A retransmit raced the original; the original will answer.
		sess.mu.Unlock()
		return
	}
	reqCtx, cancel := context.WithCancelCause(sess.ctx)
	sess.inflight[req.ReqID] = cancel
	sess.mu.Unlock()

	resp := sess.execute(reqCtx, req)
	resp.ReqID = req.ReqID
	cancel(nil)

	sess.mu.Lock()
	delete(sess.inflight, req.ReqID)
	if req.ReqID > sess.acked {
		// Recorded even on a dead session: the verdict may already have
		// been durably decided, and retransmits must learn it.
		sess.completed[req.ReqID] = resp
	}
	cur := sess.conn
	sess.mu.Unlock()
	if cur != nil {
		// Route to the session's *current* connection: the one the request
		// arrived on may be long dead. A failed send is fine — the response
		// is recorded, and the retransmit will fetch it.
		cur.send(resp) //nolint:errcheck
	}
}

// txn returns the session's interactive transaction for tid.
func (sess *session) txn(tid xid.TID) *itx {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.txns[tid]
}

// execute performs one request against the manager. Every blocking path
// observes ctx, so a client cancel (or session death) unwinds it.
func (sess *session) execute(ctx context.Context, req *rpc.Request) *rpc.Response {
	m := sess.srv.m
	resp := &rpc.Response{}
	tid := xid.TID(req.TID)
	fail := func(err error) *rpc.Response {
		var hint time.Duration
		if errors.Is(err, core.ErrOverload) {
			hint = sess.srv.hint
		}
		resp.SetError(err, hint)
		return resp
	}
	switch req.Op {
	case rpc.OpInitiate:
		t := newItx(sess.ctx)
		id, err := m.InitiateWith(t.body(), core.TxnOptions{})
		if err != nil {
			return fail(err)
		}
		t.tid = id
		sess.mu.Lock()
		if sess.dead {
			sess.mu.Unlock()
			m.Abort(id) //nolint:errcheck
			t.unwind()
			return fail(core.ErrLeaseExpired)
		}
		sess.txns[id] = t
		sess.mu.Unlock()
		resp.TID = uint64(id)
	case rpc.OpBegin:
		t := sess.txn(tid)
		if t == nil {
			return fail(core.ErrUnknownTxn)
		}
		if err := t.begin(ctx, m); err != nil {
			return fail(err)
		}
	case rpc.OpCommit:
		t := sess.txn(tid)
		if t != nil {
			if err := t.finishBody(ctx); err != nil {
				return fail(err)
			}
		}
		err := m.CommitCtx(ctx, tid)
		if err == nil || m.StatusOf(tid).Terminated() {
			// Only a terminal transaction leaves the table: a commit that
			// failed with the transaction still alive (e.g. ErrNotBegun
			// racing a begin) must stay tracked, or expiry would never
			// unwind its body goroutine. A terminal failure (aborted
			// underneath) unwinds the body here, since forget makes this
			// the last chance.
			if t != nil && err != nil {
				t.unwind()
			}
			sess.forget(tid)
		}
		if err != nil {
			return fail(err)
		}
		resp.Status = byte(xid.StatusCommitted)
	case rpc.OpAbort:
		err := m.Abort(tid)
		if t := sess.txn(tid); t != nil {
			t.unwind()
		}
		sess.forget(tid)
		if err != nil {
			return fail(err)
		}
		resp.Status = byte(xid.StatusAborted)
	case rpc.OpWait:
		if err := m.WaitCtx(ctx, tid); err != nil {
			resp.Status = byte(m.StatusOf(tid))
			return fail(err)
		}
		resp.Status = byte(m.StatusOf(tid))
	case rpc.OpStatus:
		resp.Status = byte(m.StatusOf(tid))
	case rpc.OpDelegate:
		if err := m.Delegate(tid, xid.TID(req.Other), oidsOf(req)...); err != nil {
			return fail(err)
		}
	case rpc.OpPermit:
		if err := m.Permit(tid, xid.TID(req.Other), oidsOf(req), xid.OpSet(req.Mode)); err != nil {
			return fail(err)
		}
	case rpc.OpFormDep:
		if err := m.FormDependency(xid.DepType(req.Mode), tid, xid.TID(req.Other)); err != nil {
			return fail(err)
		}
	case rpc.OpPrepare:
		raw, err := rpc.DecodeTIDs(req.Data)
		if err != nil {
			return fail(err)
		}
		ids := make([]xid.TID, len(raw))
		for i, r := range raw {
			ids[i] = xid.TID(r)
			// Drive each body to completion first, wherever its session is
			// — the prepare usually arrives on the coordinator's session
			// for transactions built by the application's.
			if _, t := sess.srv.findItx(ids[i]); t != nil {
				if err := t.finishBody(ctx); err != nil {
					return fail(err)
				}
			}
		}
		if err := m.PrepareCtx(ctx, req.Other, ids...); err != nil {
			sess.srv.reapTerminated(ids)
			return fail(err)
		}
	case rpc.OpDecide:
		members := m.PreparedMembers(req.Other)
		if err := m.Decide(req.Other, req.Mode == 1); err != nil {
			return fail(err)
		}
		sess.srv.reapTerminated(members)
	case rpc.OpVerdictQuery:
		if sess.srv.verdicts == nil {
			return fail(fmt.Errorf("%w: no coordinator at this server", core.ErrUnknownGroup))
		}
		commit, err := sess.srv.verdicts.Resolve(req.Other)
		if err != nil {
			return fail(err)
		}
		if commit {
			resp.Val = 1
		} else {
			resp.Val = 2
		}
	case rpc.OpLock, rpc.OpRead, rpc.OpWrite, rpc.OpCreate, rpc.OpDelete,
		rpc.OpAdd, rpc.OpDeclareEscrow, rpc.OpReadCounter:
		t := sess.txn(tid)
		if t == nil {
			return fail(core.ErrUnknownTxn)
		}
		if err := t.do(ctx, sess.dataOp(ctx, req, resp)); err != nil {
			return fail(err)
		}
	default:
		// OpBye never reaches here: serveConn intercepts it pre-dispatch.
		return fail(fmt.Errorf("server: unsupported op %v", req.Op))
	}
	return resp
}

// dataOp builds the closure a data operation runs inside the transaction
// body. Operations that can block on locks pre-acquire via the ctx-aware
// paths (LockCtx, AddCtx) so client cancellation unwinds the wait.
func (sess *session) dataOp(ctx context.Context, req *rpc.Request, resp *rpc.Response) func(*core.Tx) error {
	oid := xid.OID(req.OID)
	return func(tx *core.Tx) error {
		switch req.Op {
		case rpc.OpLock:
			return tx.LockCtx(ctx, oid, xid.OpSet(req.Mode))
		case rpc.OpRead:
			if err := tx.LockCtx(ctx, oid, xid.OpRead); err != nil {
				return err
			}
			data, err := tx.Read(oid)
			resp.Data = data
			return err
		case rpc.OpWrite:
			if err := tx.LockCtx(ctx, oid, xid.OpWrite); err != nil {
				return err
			}
			return tx.Write(oid, req.Data)
		case rpc.OpCreate:
			id, err := tx.Create(req.Data)
			resp.OID = uint64(id)
			return err
		case rpc.OpDelete:
			if err := tx.LockCtx(ctx, oid, xid.OpWrite); err != nil {
				return err
			}
			return tx.Delete(oid)
		case rpc.OpAdd:
			return tx.AddCtx(ctx, oid, req.Delta)
		case rpc.OpDeclareEscrow:
			return tx.DeclareEscrow(oid, req.Lo, req.Hi)
		case rpc.OpReadCounter:
			if err := tx.LockCtx(ctx, oid, xid.OpRead); err != nil {
				return err
			}
			v, err := tx.ReadCounter(oid)
			resp.Val = v
			return err
		}
		return fmt.Errorf("server: not a data op: %v", req.Op)
	}
}

// findItx locates tid's interactive body across every session: prepare
// and decide arrive on the coordinator's session but operate on
// transactions other sessions built.
func (s *Server) findItx(tid xid.TID) (*session, *itx) {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.mu.Lock()
		t := sess.txns[tid]
		sess.mu.Unlock()
		if t != nil {
			return sess, t
		}
	}
	return nil, nil
}

// reapTerminated unwinds and forgets the listed transactions wherever a
// vote or verdict terminated them, releasing their interactive bodies.
func (s *Server) reapTerminated(ids []xid.TID) {
	for _, id := range ids {
		if !s.m.StatusOf(id).Terminated() {
			continue
		}
		if owner, t := s.findItx(id); t != nil {
			t.unwind()
			owner.forget(id)
		}
	}
}

// forget drops tid from the session's transaction table (terminal ops).
func (sess *session) forget(tid xid.TID) {
	sess.mu.Lock()
	delete(sess.txns, tid)
	sess.mu.Unlock()
}

// bye ends the session gracefully (client-initiated); live transactions
// abort exactly as on lease expiry.
func (sess *session) bye() {
	sess.srv.expire(sess, fmt.Errorf("%w: session closed by client", core.ErrAborted))
	sess.srv.mu.Lock()
	delete(sess.srv.sessions, sess.id)
	sess.srv.mu.Unlock()
}

func oidsOf(req *rpc.Request) []xid.OID {
	if req.OID == 0 {
		return nil
	}
	return []xid.OID{xid.OID(req.OID)}
}
