package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/xid"
)

// itx is a server-side interactive transaction: the client's operations
// arrive as RPCs and are executed one at a time inside the transaction's
// body goroutine (core runs the body on its own goroutine; the Tx handle
// only exists there). Unlike the assetsh shell's single-threaded
// variant, every op carries its own result channel — concurrent RPC
// dispatch must not cross-deliver results — and delivery is guarded
// against the body being gone.
type itx struct {
	tid xid.TID

	// ctx governs the transaction's lifetime: a child of the session
	// ctx, so session death (lease expiry, Bye, server close) aborts the
	// transaction through core's context watcher.
	ctx       context.Context
	cancelCtx context.CancelCauseFunc

	ops  chan srvOp
	gone chan struct{} // closed when the body has returned (or never will run)

	mu    sync.Mutex
	state itxState

	goneOnce sync.Once
}

type itxState int

const (
	stCreated   itxState = iota // initiated; no body goroutine yet
	stBeginning                 // BeginCtx in flight
	stRunning                   // body goroutine draining ops
	stDone                      // body returned or begin failed
)

type srvOp struct {
	f      func(*core.Tx) error
	finish bool
	res    chan error // buffered(1): the body never blocks replying
}

func newItx(sessCtx context.Context) *itx {
	ctx, cancel := context.WithCancelCause(sessCtx)
	return &itx{
		ctx:       ctx,
		cancelCtx: cancel,
		ops:       make(chan srvOp),
		gone:      make(chan struct{}),
	}
}

// body returns the core.TxnFunc executing this transaction: loop on ops
// until a finish op (commit/abort path) ends it. The body keeps draining
// even after an external abort — ops then fail with ErrAborted — so
// senders never hang on a live body.
func (t *itx) body() core.TxnFunc {
	return func(tx *core.Tx) error {
		defer t.closeGone()
		for op := range t.ops {
			if op.finish {
				op.res <- nil
				return nil
			}
			op.res <- op.f(tx)
		}
		return nil
	}
}

func (t *itx) closeGone() { t.goneOnce.Do(func() { close(t.gone) }) }

// begin starts the transaction. reqCtx cancellation while Begin blocks
// (admission queue, begin-dependency gates) aborts the transaction —
// there is no half-begun state to leave behind.
func (t *itx) begin(reqCtx context.Context, m *core.Manager) error {
	t.mu.Lock()
	if t.state != stCreated {
		t.mu.Unlock()
		return core.ErrAlreadyBegun
	}
	t.state = stBeginning
	t.mu.Unlock()
	// Bridge the per-request cancel onto the transaction's own ctx for
	// the duration of the begin: BeginCtx waits observe the txn ctx.
	stop := context.AfterFunc(reqCtx, func() {
		t.cancelCtx(fmt.Errorf("begin cancelled: %w", context.Cause(reqCtx)))
	})
	err := m.BeginCtx(t.ctx, t.tid)
	stop()
	t.mu.Lock()
	if err != nil {
		t.state = stDone
		t.closeGone()
	} else {
		t.state = stRunning
	}
	t.mu.Unlock()
	return err
}

// do runs f inside the body. Cancellation before delivery leaves the
// transaction untouched; after delivery the op itself observes the
// request ctx (LockCtx/AddCtx), so do waits for its result
// unconditionally — the reply is prompt and attributes the op's true
// outcome.
func (t *itx) do(ctx context.Context, f func(*core.Tx) error) error {
	t.mu.Lock()
	st := t.state
	t.mu.Unlock()
	switch st {
	case stCreated, stBeginning:
		return core.ErrNotBegun
	case stDone:
		return core.ErrTerminated
	}
	op := srvOp{f: f, res: make(chan error, 1)}
	select {
	case t.ops <- op:
		return <-op.res
	case <-t.gone:
		return core.ErrTerminated
	case <-ctx.Done():
		return fmt.Errorf("server: op abandoned: %w", context.Cause(ctx))
	}
}

// finishBody ends the body's op loop ahead of commit: the transaction
// must reach StatusCompleted (body returned) before CommitCtx drives the
// group. Cancellation before the finish op lands leaves the body — and
// the transaction — running and intact. A commit racing an in-flight
// begin waits the begin out (the way unwindWith does) rather than
// skipping the finish op — skipping would hand CommitCtx a body that
// never completes.
func (t *itx) finishBody(ctx context.Context) error {
	for {
		t.mu.Lock()
		st := t.state
		if st == stCreated {
			// Never begun: no body to finish; CommitCtx will say ErrNotBegun.
			t.state = stDone
			t.closeGone()
		}
		t.mu.Unlock()
		switch st {
		case stCreated, stDone:
			return nil
		case stBeginning:
			select {
			case <-t.gone:
				return nil // begin failed; no body ever ran
			case <-ctx.Done():
				return fmt.Errorf("server: commit abandoned before completion: %w", context.Cause(ctx))
			case <-time.After(time.Millisecond):
			}
		case stRunning:
			op := srvOp{finish: true, res: make(chan error, 1)}
			select {
			case t.ops <- op:
				<-op.res
				return nil
			case <-t.gone:
				return nil // already finished (e.g. an earlier commit attempt)
			case <-ctx.Done():
				return fmt.Errorf("server: commit abandoned before completion: %w", context.Cause(ctx))
			}
		}
	}
}

// unwind makes the body exit unconditionally — the teardown path for
// abort, lease expiry, Bye, and server close. The transaction ctx is
// cancelled first (unblocking any op stuck inside the body), then the
// finish op is delivered. Never blocks forever: a body stuck in an op
// observes its request ctx (child of the cancelled session ctx) or the
// transaction's abort.
func (t *itx) unwind() { t.unwindWith(core.ErrTerminated) }

// unwindWith is unwind with an explicit cancellation cause: the abort
// reason in-flight operations observe (e.g. ErrLeaseExpired), which the
// wire error encoding then carries to the client intact.
func (t *itx) unwindWith(reason error) {
	t.cancelCtx(reason)
	for {
		t.mu.Lock()
		st := t.state
		if st == stCreated {
			t.state = stDone
			t.closeGone()
		}
		t.mu.Unlock()
		switch st {
		case stCreated, stDone:
			return
		case stBeginning:
			// BeginCtx is unblocking on the cancelled ctx; wait it out.
			select {
			case <-t.gone:
				return
			case <-time.After(time.Millisecond):
			}
		case stRunning:
			select {
			case t.ops <- srvOp{finish: true, res: make(chan error, 1)}:
				return
			case <-t.gone:
				return
			}
		}
	}
}
