// End-to-end tests for the networked stack: a real client (package
// repro/client) speaking the wire protocol through a faultnet fabric to a
// server fronting a core.Manager. The fault-free paths live here; the
// network chaos matrix and the mixed network+disk torture live in
// chaos_test.go.
package server_test

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/rpc"
	"repro/internal/server"
	"repro/internal/xid"
)

// fixture is one server stack: manager, server, and the faultnet fabric
// clients dial through.
type fixture struct {
	t      *testing.T
	m      *core.Manager
	srv    *server.Server
	fabric *faultnet.Network
}

func newFixture(t *testing.T, cfg core.Config, scfg server.Config) *fixture {
	t.Helper()
	if scfg.LeaseTTL == 0 {
		scfg.LeaseTTL = 250 * time.Millisecond
	}
	m, err := core.Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	fabric := faultnet.New()
	lis, err := fabric.Listen("assetd")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	srv := server.Serve(m, lis, scfg)
	f := &fixture{t: t, m: m, srv: srv, fabric: fabric}
	t.Cleanup(func() {
		srv.Close()
		fabric.Close()
		m.Close() //nolint:errcheck
	})
	return f
}

// dial connects a client through the fabric with test-compressed timers.
func (f *fixture) dial(opts client.Options) *client.Client {
	f.t.Helper()
	if opts.Dial == nil {
		opts.Dial = func(ctx context.Context) (net.Conn, error) {
			return f.fabric.DialContext(ctx, "assetd")
		}
	}
	if opts.RetransmitEvery == 0 {
		opts.RetransmitEvery = 5 * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	cli, err := client.Dial(ctx, opts)
	if err != nil {
		f.t.Fatalf("Dial: %v", err)
	}
	f.t.Cleanup(func() { cli.Close() }) //nolint:errcheck
	return cli
}

// quiesce waits for every transaction to reach a terminal state and then
// asserts the lock table's invariants hold — the "no stranded locks"
// check every networked test ends with.
func (f *fixture) quiesce() {
	f.t.Helper()
	quiesceManager(f.t, f.m)
}

func quiesceManager(t *testing.T, m *core.Manager) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		live := 0
		for _, info := range m.Transactions() {
			switch info.Status {
			case xid.StatusCommitted, xid.StatusAborted:
			default:
				live++
			}
		}
		if live == 0 {
			if bad := m.LockManager().CheckInvariants(); len(bad) == 0 {
				return
			} else if time.Now().After(deadline) {
				t.Fatalf("lock invariants violated: %v", bad)
			}
		} else if time.Now().After(deadline) {
			t.Fatalf("%d transactions still live: %+v", live, m.Transactions())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func counterBytes(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

// seedCounter creates an escrow counter through the wire and returns its
// oid; bounds [0, hi].
func seedCounter(ctx context.Context, t *testing.T, cli *client.Client, init, hi uint64) xid.OID {
	t.Helper()
	var oid xid.OID
	err := cli.Run(ctx, core.RunOptions{}, func(ctx context.Context, tx *client.Tx) error {
		id, err := tx.Create(ctx, counterBytes(init))
		if err != nil {
			return err
		}
		if err := tx.DeclareEscrow(ctx, id, 0, hi); err != nil {
			return err
		}
		oid = id
		return nil
	})
	if err != nil {
		t.Fatalf("seed counter: %v", err)
	}
	return oid
}

func TestEndToEndCommitAndRead(t *testing.T) {
	f := newFixture(t, core.Config{}, server.Config{})
	cli := f.dial(client.Options{})
	ctx := context.Background()

	var oid xid.OID
	err := cli.Run(ctx, core.RunOptions{}, func(ctx context.Context, tx *client.Tx) error {
		id, err := tx.Create(ctx, []byte("hello"))
		if err != nil {
			return err
		}
		oid = id
		return tx.Write(ctx, id, []byte("world"))
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	// Explicit primitives on a second transaction: the value committed.
	tid, err := cli.Initiate(ctx)
	if err != nil {
		t.Fatalf("Initiate: %v", err)
	}
	if err := cli.Begin(ctx, tid); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	tx := cli.Tx(tid)
	if err := tx.Lock(ctx, oid, xid.OpRead); err != nil {
		t.Fatalf("Lock: %v", err)
	}
	data, err := tx.Read(ctx, oid)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if string(data) != "world" {
		t.Fatalf("read %q, want %q", data, "world")
	}
	if err := cli.Commit(ctx, tid); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if st, err := cli.Status(ctx, tid); err != nil || st != xid.StatusCommitted {
		t.Fatalf("Status = %v, %v; want committed", st, err)
	}
	f.quiesce()
}

func TestEndToEndAbortRollsBack(t *testing.T) {
	f := newFixture(t, core.Config{}, server.Config{})
	cli := f.dial(client.Options{})
	ctx := context.Background()

	var oid xid.OID
	if err := cli.Run(ctx, core.RunOptions{}, func(ctx context.Context, tx *client.Tx) error {
		id, err := tx.Create(ctx, []byte("keep"))
		oid = id
		return err
	}); err != nil {
		t.Fatalf("seed: %v", err)
	}

	tid, err := cli.Initiate(ctx)
	if err != nil {
		t.Fatalf("Initiate: %v", err)
	}
	if err := cli.Begin(ctx, tid); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := cli.Tx(tid).Write(ctx, oid, []byte("clobber")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := cli.Abort(ctx, tid); err != nil {
		t.Fatalf("Abort: %v", err)
	}

	var got []byte
	if err := cli.Run(ctx, core.RunOptions{}, func(ctx context.Context, tx *client.Tx) error {
		data, err := tx.Read(ctx, oid)
		got = data
		return err
	}); err != nil {
		t.Fatalf("read back: %v", err)
	}
	if string(got) != "keep" {
		t.Fatalf("after abort value = %q, want %q", got, "keep")
	}
	f.quiesce()
}

func TestEndToEndEscrowCounter(t *testing.T) {
	f := newFixture(t, core.Config{}, server.Config{})
	cli := f.dial(client.Options{})
	ctx := context.Background()
	oid := seedCounter(ctx, t, cli, 10, 1000)

	const workers, each = 4, 5
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := cli.Run(ctx, core.RunOptions{}, func(ctx context.Context, tx *client.Tx) error {
					return tx.Add(ctx, oid, 1)
				}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("worker: %v", err)
	}

	var got uint64
	if err := cli.Run(ctx, core.RunOptions{}, func(ctx context.Context, tx *client.Tx) error {
		v, err := tx.ReadCounter(ctx, oid)
		got = v
		return err
	}); err != nil {
		t.Fatalf("read counter: %v", err)
	}
	if want := uint64(10 + workers*each); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	f.quiesce()
}

// TestWireErrorIdentity pins that core sentinel errors survive the wire:
// errors.Is works on client-side errors exactly as it does locally.
func TestWireErrorIdentity(t *testing.T) {
	f := newFixture(t, core.Config{}, server.Config{})
	cli := f.dial(client.Options{})
	ctx := context.Background()

	// Unknown transaction.
	if err := cli.Begin(ctx, xid.TID(0xdead)); !errors.Is(err, core.ErrUnknownTxn) {
		t.Fatalf("Begin(unknown) = %v, want ErrUnknownTxn", err)
	}
	// Missing object inside a transaction body.
	err := cli.Run(ctx, core.RunOptions{}, func(ctx context.Context, tx *client.Tx) error {
		_, err := tx.Read(ctx, xid.OID(0xbeef))
		if !errors.Is(err, core.ErrNoObject) {
			t.Errorf("Read(missing) = %v, want ErrNoObject", err)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Abort after commit.
	tid, _ := cli.Initiate(ctx)
	cli.Begin(ctx, tid)  //nolint:errcheck
	cli.Commit(ctx, tid) //nolint:errcheck
	if err := cli.Abort(ctx, tid); !errors.Is(err, core.ErrAlreadyCommitted) {
		t.Fatalf("Abort(committed) = %v, want ErrAlreadyCommitted", err)
	}
	f.quiesce()
}

// TestWaitAcrossSessions: wait is a cross-session primitive — one client
// blocks on another client's transaction and observes its termination.
func TestWaitAcrossSessions(t *testing.T) {
	f := newFixture(t, core.Config{}, server.Config{})
	owner := f.dial(client.Options{})
	waiter := f.dial(client.Options{})
	ctx := context.Background()

	tid, err := owner.Initiate(ctx)
	if err != nil {
		t.Fatalf("Initiate: %v", err)
	}
	if err := owner.Begin(ctx, tid); err != nil {
		t.Fatalf("Begin: %v", err)
	}

	done := make(chan error, 1)
	go func() { done <- waiter.Wait(ctx, tid) }()
	select {
	case err := <-done:
		t.Fatalf("Wait returned %v before termination", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := owner.Commit(ctx, tid); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Wait after commit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait never observed the commit")
	}
	f.quiesce()
}

// TestManagerCloseFailsRemoteWaiters is the Manager.Close satellite: a
// client blocked in a remote wait must promptly observe ErrClosed when
// the manager shuts down — never hang.
func TestManagerCloseFailsRemoteWaiters(t *testing.T) {
	f := newFixture(t, core.Config{}, server.Config{})
	owner := f.dial(client.Options{})
	waiter := f.dial(client.Options{})
	ctx := context.Background()

	tid, err := owner.Initiate(ctx)
	if err != nil {
		t.Fatalf("Initiate: %v", err)
	}
	if err := owner.Begin(ctx, tid); err != nil {
		t.Fatalf("Begin: %v", err)
	}

	done := make(chan error, 1)
	go func() { done <- waiter.Wait(ctx, tid) }()
	time.Sleep(30 * time.Millisecond) // let the wait park server-side

	if err := f.m.Close(); err != nil {
		t.Fatalf("Manager.Close: %v", err)
	}
	select {
	case err := <-done:
		// The manager aborts live transactions at close, so the waiter sees
		// the abort with the close as its cause.
		if !errors.Is(err, core.ErrClosed) && !errors.Is(err, core.ErrAborted) {
			t.Fatalf("Wait after Close = %v, want ErrClosed/ErrAborted cause", err)
		}
		if err == nil {
			t.Fatal("Wait after Close reported success for an aborted transaction")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait hung across Manager.Close")
	}
}

// TestOverloadHintFloorsBackoff is the admission-control satellite: an
// ErrOverload response carries the server's retry-after hint, errors.Is
// classifies it retryable across the wire, and client.Run's backoff
// honors the floor.
func TestOverloadHintFloorsBackoff(t *testing.T) {
	const hint = 60 * time.Millisecond
	f := newFixture(t, core.Config{MaxLive: 1}, server.Config{RetryAfter: hint})
	cli := f.dial(client.Options{})
	ctx := context.Background()

	// Occupy the single admission slot with an idle interactive txn.
	holder, err := cli.Initiate(ctx)
	if err != nil {
		t.Fatalf("Initiate: %v", err)
	}
	if err := cli.Begin(ctx, holder); err != nil {
		t.Fatalf("Begin: %v", err)
	}

	// A second begin sheds with ErrOverload; the wire error is retryable
	// and carries the hint.
	tid, err := cli.Initiate(ctx)
	if err != nil {
		t.Fatalf("Initiate: %v", err)
	}
	err = cli.Begin(ctx, tid)
	if !errors.Is(err, core.ErrOverload) {
		t.Fatalf("Begin over capacity = %v, want ErrOverload", err)
	}
	if !core.Retryable(err) {
		t.Fatalf("overload error not retryable across the wire: %v", err)
	}
	if got := rpc.RetryAfterHint(err); got != hint {
		t.Fatalf("RetryAfterHint = %v, want %v", got, hint)
	}
	if err := cli.Abort(ctx, tid); err != nil {
		t.Fatalf("Abort: %v", err)
	}

	// Run retries through the hint: release the slot shortly after the
	// first shed, and the retry — floored at the hint — must succeed no
	// sooner than the hint.
	start := time.Now()
	time.AfterFunc(10*time.Millisecond, func() { cli.Abort(ctx, holder) }) //nolint:errcheck
	err = cli.Run(ctx, core.RunOptions{BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
		func(ctx context.Context, tx *client.Tx) error { return nil })
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if elapsed := time.Since(start); elapsed < hint {
		t.Fatalf("Run succeeded after %v, before the %v retry-after floor", elapsed, hint)
	}
	f.quiesce()
}

// TestSessionSurvivesDisconnect: a hard connection reset mid-workload is
// absorbed by redial + session resume; the same session keeps its
// transactions and the workload completes.
func TestSessionSurvivesDisconnect(t *testing.T) {
	f := newFixture(t, core.Config{}, server.Config{})
	cli := f.dial(client.Options{})
	ctx := context.Background()

	var oid xid.OID
	if err := cli.Run(ctx, core.RunOptions{}, func(ctx context.Context, tx *client.Tx) error {
		id, err := tx.Create(ctx, []byte("v0"))
		oid = id
		return err
	}); err != nil {
		t.Fatalf("seed: %v", err)
	}

	sess := cli.Session()
	tid, err := cli.Initiate(ctx)
	if err != nil {
		t.Fatalf("Initiate: %v", err)
	}
	if err := cli.Begin(ctx, tid); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := cli.Tx(tid).Write(ctx, oid, []byte("v1")); err != nil {
		t.Fatalf("Write: %v", err)
	}

	// Kill the connection under the session's feet.
	f.fabric.SetScript(faultnet.NewScript(faultnet.Rule{Kind: faultnet.Disconnect, Nth: f.fabric.Messages() + 1}))

	// The next operations ride the redial: same session, same live txn.
	wctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := cli.Tx(tid).Write(wctx, oid, []byte("v2")); err != nil {
		t.Fatalf("Write across disconnect: %v", err)
	}
	if err := cli.Commit(wctx, tid); err != nil {
		t.Fatalf("Commit across disconnect: %v", err)
	}
	if got := cli.Session(); got != sess {
		t.Fatalf("session changed across disconnect: %#x -> %#x", sess, got)
	}

	var got []byte
	if err := cli.Run(ctx, core.RunOptions{}, func(ctx context.Context, tx *client.Tx) error {
		data, err := tx.Read(ctx, oid)
		got = data
		return err
	}); err != nil {
		t.Fatalf("read back: %v", err)
	}
	if string(got) != "v2" {
		t.Fatalf("value = %q, want %q", got, "v2")
	}
	f.quiesce()
}

// TestLeaseExpiryAbortsAndRecovers: a client that stops heartbeating
// loses its lease; its live transactions are aborted cleanly (locks
// released, another session can take them), its next operation learns
// ErrLeaseExpired (classified retryable), and Run recovers on a fresh
// session.
func TestLeaseExpiryAbortsAndRecovers(t *testing.T) {
	f := newFixture(t, core.Config{}, server.Config{LeaseTTL: 40 * time.Millisecond})
	// HeartbeatEvery far beyond the TTL: the lease always lapses.
	mute := f.dial(client.Options{HeartbeatEvery: time.Hour})
	healthy := f.dial(client.Options{})
	ctx := context.Background()

	var oid xid.OID
	if err := healthy.Run(ctx, core.RunOptions{}, func(ctx context.Context, tx *client.Tx) error {
		id, err := tx.Create(ctx, []byte("contested"))
		oid = id
		return err
	}); err != nil {
		t.Fatalf("seed: %v", err)
	}

	// The mute client grabs a write lock, then goes quiet past its TTL.
	tid, err := mute.Initiate(ctx)
	if err != nil {
		t.Fatalf("Initiate: %v", err)
	}
	if err := mute.Begin(ctx, tid); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := mute.Tx(tid).Lock(ctx, oid, xid.OpWrite); err != nil {
		t.Fatalf("Lock: %v", err)
	}
	time.Sleep(120 * time.Millisecond)

	// Expiry released the lock: the healthy session can take it promptly.
	lctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := healthy.Run(lctx, core.RunOptions{}, func(ctx context.Context, tx *client.Tx) error {
		return tx.Write(ctx, oid, []byte("taken"))
	}); err != nil {
		t.Fatalf("lock after expiry: %v", err)
	}
	if st := f.m.StatusOf(tid); st != xid.StatusAborted {
		t.Fatalf("expired txn status = %v, want aborted", st)
	}

	// The mute client's next operation on the dead session learns the
	// lease error — retryable — and Run recovers on a fresh session.
	_, err = mute.Initiate(ctx)
	if !errors.Is(err, core.ErrLeaseExpired) {
		t.Fatalf("Initiate on dead session = %v, want ErrLeaseExpired", err)
	}
	if !core.Retryable(err) {
		t.Fatalf("lease expiry not retryable: %v", err)
	}
	if err := mute.Run(lctx, core.RunOptions{}, func(ctx context.Context, tx *client.Tx) error {
		_, err := tx.Read(ctx, oid)
		return err
	}); err != nil {
		t.Fatalf("Run after expiry: %v", err)
	}
	f.quiesce()
}

// TestCancelSweep is the context-cancellation satellite: for every RPC
// kind, cancelling the call mid-flight must leave the server transaction
// aborted or intact — never half-done, never holding orphaned locks.
// Each case parks the operation behind a conflicting lock held by a
// second session, cancels, then releases the conflict and checks the
// world.
func TestCancelSweep(t *testing.T) {
	ops := []struct {
		name string
		op   func(ctx context.Context, tx *client.Tx, oid xid.OID) error
	}{
		{"lock", func(ctx context.Context, tx *client.Tx, oid xid.OID) error {
			return tx.Lock(ctx, oid, xid.OpWrite)
		}},
		{"read", func(ctx context.Context, tx *client.Tx, oid xid.OID) error {
			_, err := tx.Read(ctx, oid)
			return err
		}},
		{"write", func(ctx context.Context, tx *client.Tx, oid xid.OID) error {
			return tx.Write(ctx, oid, []byte("cancelled"))
		}},
		{"delete", func(ctx context.Context, tx *client.Tx, oid xid.OID) error {
			return tx.Delete(ctx, oid)
		}},
		{"readcounter", func(ctx context.Context, tx *client.Tx, oid xid.OID) error {
			_, err := tx.ReadCounter(ctx, oid)
			return err
		}},
		{"add", func(ctx context.Context, tx *client.Tx, oid xid.OID) error {
			return tx.Add(ctx, oid, 1)
		}},
	}
	for _, tc := range ops {
		t.Run(tc.name, func(t *testing.T) {
			f := newFixture(t, core.Config{}, server.Config{})
			holder := f.dial(client.Options{})
			victim := f.dial(client.Options{})
			ctx := context.Background()

			var oid xid.OID
			if err := holder.Run(ctx, core.RunOptions{}, func(ctx context.Context, tx *client.Tx) error {
				id, err := tx.Create(ctx, counterBytes(7))
				oid = id
				return err
			}); err != nil {
				t.Fatalf("seed: %v", err)
			}

			// The holder parks a write lock on the object.
			hTid, err := holder.Initiate(ctx)
			if err != nil {
				t.Fatalf("Initiate holder: %v", err)
			}
			if err := holder.Begin(ctx, hTid); err != nil {
				t.Fatalf("Begin holder: %v", err)
			}
			if err := holder.Tx(hTid).Lock(ctx, oid, xid.OpWrite); err != nil {
				t.Fatalf("holder Lock: %v", err)
			}

			// The victim's op blocks on the conflict; cancel it mid-wait.
			vTid, err := victim.Initiate(ctx)
			if err != nil {
				t.Fatalf("Initiate victim: %v", err)
			}
			if err := victim.Begin(ctx, vTid); err != nil {
				t.Fatalf("Begin victim: %v", err)
			}
			opCtx, cancel := context.WithCancel(ctx)
			done := make(chan error, 1)
			go func() { done <- tc.op(opCtx, victim.Tx(vTid), oid) }()
			time.Sleep(30 * time.Millisecond) // let the wait park server-side
			cancel()
			select {
			case err := <-done:
				if err == nil {
					t.Fatalf("%s returned nil after cancel", tc.name)
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("%s hung after cancel", tc.name)
			}

			// Release the conflict. The victim transaction must be aborted
			// or intact: if still running it can be aborted cleanly, and
			// the holder's view of the object is unchanged either way.
			if err := holder.Commit(ctx, hTid); err != nil {
				t.Fatalf("holder Commit: %v", err)
			}
			victim.Abort(ctx, vTid) //nolint:errcheck
			st := f.m.StatusOf(vTid)
			if st != xid.StatusAborted {
				t.Fatalf("victim status = %v, want aborted", st)
			}
			var v uint64
			if err := holder.Run(ctx, core.RunOptions{}, func(ctx context.Context, tx *client.Tx) error {
				got, err := tx.ReadCounter(ctx, oid)
				v = got
				return err
			}); err != nil {
				if tc.name == "delete" && errors.Is(err, core.ErrNoObject) {
					t.Fatalf("cancelled delete still removed the object")
				}
				t.Fatalf("read back: %v", err)
			}
			if v != 7 {
				t.Fatalf("object value = %d after cancelled %s, want 7", v, tc.name)
			}
			f.quiesce()
		})
	}
}

// TestCancelSweepCommit: cancelling a commit mid-protocol must resolve to
// a terminal verdict — committed or aborted, never in between — and a
// retried commit on the same transaction returns that verdict.
func TestCancelSweepCommit(t *testing.T) {
	f := newFixture(t, core.Config{}, server.Config{})
	cli := f.dial(client.Options{})
	ctx := context.Background()

	// tj's commit blocks on a commit dependency on running ti.
	ti, err := cli.Initiate(ctx)
	if err != nil {
		t.Fatalf("Initiate ti: %v", err)
	}
	if err := cli.Begin(ctx, ti); err != nil {
		t.Fatalf("Begin ti: %v", err)
	}
	tj, err := cli.Initiate(ctx)
	if err != nil {
		t.Fatalf("Initiate tj: %v", err)
	}
	if err := cli.Begin(ctx, tj); err != nil {
		t.Fatalf("Begin tj: %v", err)
	}
	if err := cli.FormDependency(ctx, xid.DepCD, ti, tj); err != nil {
		t.Fatalf("FormDependency: %v", err)
	}

	opCtx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() { done <- cli.Commit(opCtx, tj) }()
	time.Sleep(30 * time.Millisecond) // commit parks on the CD gate
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Commit hung after cancel")
	}

	// The transaction settles terminal; a fresh commit call on the same
	// tid reports the recorded verdict, not a second protocol run.
	deadline := time.Now().Add(5 * time.Second)
	var st xid.Status
	for {
		st = f.m.StatusOf(tj)
		if st == xid.StatusCommitted || st == xid.StatusAborted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tj never settled; status %v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	err = cli.Commit(ctx, tj)
	switch st {
	case xid.StatusCommitted:
		if err != nil {
			t.Fatalf("recommit of committed tj = %v, want nil", err)
		}
	case xid.StatusAborted:
		if err == nil {
			t.Fatal("recommit of aborted tj = nil, want abort error")
		}
	}
	if err := cli.Commit(ctx, ti); err != nil {
		t.Fatalf("Commit ti: %v", err)
	}
	f.quiesce()
}

// TestCancelSweepBegin: cancelling a begin parked in the admission queue
// leaves the transaction terminal (aborted), not stuck in the gate.
func TestCancelSweepBegin(t *testing.T) {
	f := newFixture(t, core.Config{MaxLive: 1, AdmitTimeout: time.Hour}, server.Config{})
	cli := f.dial(client.Options{})
	ctx := context.Background()

	holder, err := cli.Initiate(ctx)
	if err != nil {
		t.Fatalf("Initiate: %v", err)
	}
	if err := cli.Begin(ctx, holder); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	tid, err := cli.Initiate(ctx)
	if err != nil {
		t.Fatalf("Initiate: %v", err)
	}
	opCtx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() { done <- cli.Begin(opCtx, tid) }()
	time.Sleep(30 * time.Millisecond) // park in the admission queue
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Begin returned nil after cancel")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Begin hung after cancel")
	}
	if err := cli.Abort(ctx, holder); err != nil {
		t.Fatalf("Abort holder: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := f.m.StatusOf(tid); st == xid.StatusAborted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancelled begin left status %v, want aborted", f.m.StatusOf(tid))
		}
		time.Sleep(2 * time.Millisecond)
	}
	f.quiesce()
}

// TestCommitVerdictSurvivesLeaseExpiry is the exactly-once crown jewel:
// the commit executes, its response is eaten by the network, the session
// lease expires before the retransmit lands — and the retransmitted
// commit still fetches the recorded verdict instead of a lease error
// that would invite a double-apply.
func TestCommitVerdictSurvivesLeaseExpiry(t *testing.T) {
	f := newFixture(t, core.Config{}, server.Config{LeaseTTL: 40 * time.Millisecond})
	cli := f.dial(client.Options{
		HeartbeatEvery:  time.Hour, // lease will lapse during the blackout
		RetransmitEvery: 15 * time.Millisecond,
	})
	ctx := context.Background()
	oid := seedCounter(ctx, t, cli, 0, 1000)

	tid, err := cli.Initiate(ctx)
	if err != nil {
		t.Fatalf("Initiate: %v", err)
	}
	if err := cli.Begin(ctx, tid); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := cli.Tx(tid).Add(ctx, oid, 5); err != nil {
		t.Fatalf("Add: %v", err)
	}

	// Black out every server→client message: the commit request gets
	// through and executes, but its response — and every retransmitted
	// response — vanishes until the lease is long dead.
	f.fabric.SetScript(faultnet.NewScript(faultnet.Rule{Dir: faultnet.ServerToClient, Kind: faultnet.Drop}))
	done := make(chan error, 1)
	cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	go func() { done <- cli.Commit(cctx, tid) }()
	time.Sleep(150 * time.Millisecond) // > 3× TTL: expiry certain
	f.fabric.SetScript(nil)            // heal; the next retransmit gets answered

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Commit across blackout = %v, want recorded verdict (nil)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Commit never resolved after heal")
	}
	if st := f.m.StatusOf(tid); st != xid.StatusCommitted {
		t.Fatalf("status = %v, want committed", st)
	}

	// Exactly once: the counter moved by 5, not 10.
	var v uint64
	if err := cli.Run(ctx, core.RunOptions{}, func(ctx context.Context, tx *client.Tx) error {
		got, err := tx.ReadCounter(ctx, oid)
		v = got
		return err
	}); err != nil {
		t.Fatalf("read counter: %v", err)
	}
	if v != 5 {
		t.Fatalf("counter = %d, want 5 (exactly-once commit)", v)
	}
	f.quiesce()
}

// TestServerCloseFailsSessions: closing the server fails in-flight
// session RPCs with ErrClosed rather than hanging them.
func TestServerCloseFailsSessions(t *testing.T) {
	f := newFixture(t, core.Config{}, server.Config{})
	cli := f.dial(client.Options{})
	ctx := context.Background()

	tid, err := cli.Initiate(ctx)
	if err != nil {
		t.Fatalf("Initiate: %v", err)
	}
	if err := cli.Begin(ctx, tid); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cli.Wait(ctx, tid) }()
	time.Sleep(30 * time.Millisecond)

	f.srv.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Wait returned nil across server close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait hung across server close")
	}
	if st := f.m.StatusOf(tid); st != xid.StatusAborted {
		t.Fatalf("status after server close = %v, want aborted", st)
	}
}

// TestByeReleasesSessionPromptly: Close sends a fire-and-forget Bye with
// no request ID, which the dispatch dedup gate would silently drop if it
// ever reached it — so it must be handled before the gate. A dropped Bye
// leaves the closed client's session holding its transactions and locks
// until the lease TTL; here the TTL is far beyond the test's patience,
// so only an honored Bye can explain a prompt release.
func TestByeReleasesSessionPromptly(t *testing.T) {
	f := newFixture(t, core.Config{}, server.Config{LeaseTTL: 30 * time.Second})
	leaver := f.dial(client.Options{})
	stayer := f.dial(client.Options{})
	ctx := context.Background()

	var oid xid.OID
	if err := stayer.Run(ctx, core.RunOptions{}, func(ctx context.Context, tx *client.Tx) error {
		id, err := tx.Create(ctx, []byte("contested"))
		oid = id
		return err
	}); err != nil {
		t.Fatalf("seed: %v", err)
	}

	tid, err := leaver.Initiate(ctx)
	if err != nil {
		t.Fatalf("Initiate: %v", err)
	}
	if err := leaver.Begin(ctx, tid); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := leaver.Tx(tid).Lock(ctx, oid, xid.OpWrite); err != nil {
		t.Fatalf("Lock: %v", err)
	}
	if err := leaver.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The lock must come free well inside the 30s lease.
	lctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := stayer.Run(lctx, core.RunOptions{}, func(ctx context.Context, tx *client.Tx) error {
		return tx.Write(ctx, oid, []byte("taken"))
	}); err != nil {
		t.Fatalf("lock after Bye: %v", err)
	}
	if st := f.m.StatusOf(tid); st != xid.StatusAborted {
		t.Fatalf("closed client's txn status = %v, want aborted", st)
	}
	// And the session left the table entirely — not lingering on its lease.
	deadline := time.Now().Add(2 * time.Second)
	for {
		live, expired := f.srv.SessionCounts()
		if live == 1 && expired == 0 { // the stayer only
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sessions after Bye: live=%d expired=%d, want 1/0", live, expired)
		}
		time.Sleep(2 * time.Millisecond)
	}
	f.quiesce()
}

// TestLeaseExpiryDrainsPendingCalls: when one call observes the
// session's lease expiry, calls still pending must not be left for the
// retransmit loop to replay onto the fresh token-0 session — there their
// TIDs are unknown and a retryable lease expiry would curdle into a
// terminal ErrUnknownTxn. Two ops park behind a conflicting lock so both
// are in flight when the lease lapses; whichever response lands first,
// neither may surface ErrUnknownTxn.
func TestLeaseExpiryDrainsPendingCalls(t *testing.T) {
	f := newFixture(t, core.Config{}, server.Config{LeaseTTL: 40 * time.Millisecond})
	mute := f.dial(client.Options{HeartbeatEvery: time.Hour})
	healthy := f.dial(client.Options{})
	ctx := context.Background()

	var oidA, oidB xid.OID
	if err := healthy.Run(ctx, core.RunOptions{}, func(ctx context.Context, tx *client.Tx) error {
		a, err := tx.Create(ctx, []byte("a"))
		if err != nil {
			return err
		}
		b, err := tx.Create(ctx, []byte("b"))
		oidA, oidB = a, b
		return err
	}); err != nil {
		t.Fatalf("seed: %v", err)
	}

	// The healthy session holds both locks, parking the mute ops.
	hold, err := healthy.Initiate(ctx)
	if err != nil {
		t.Fatalf("Initiate holder: %v", err)
	}
	if err := healthy.Begin(ctx, hold); err != nil {
		t.Fatalf("Begin holder: %v", err)
	}
	for _, oid := range []xid.OID{oidA, oidB} {
		if err := healthy.Tx(hold).Lock(ctx, oid, xid.OpWrite); err != nil {
			t.Fatalf("holder Lock: %v", err)
		}
	}

	tid, err := mute.Initiate(ctx)
	if err != nil {
		t.Fatalf("Initiate: %v", err)
	}
	if err := mute.Begin(ctx, tid); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	errs := make(chan error, 2)
	for _, oid := range []xid.OID{oidA, oidB} {
		oid := oid
		go func() {
			octx, cancel := context.WithTimeout(ctx, 10*time.Second)
			defer cancel()
			errs <- mute.Tx(tid).Lock(octx, oid, xid.OpWrite)
		}()
	}
	// Both ops are parked; the mute client never heartbeats, so the lease
	// lapses under them.
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Fatal("parked lock succeeded across lease expiry")
			}
			if errors.Is(err, core.ErrUnknownTxn) {
				t.Fatalf("parked lock = %v, want a lease/abort error, not ErrUnknownTxn", err)
			}
			if !errors.Is(err, core.ErrLeaseExpired) && !errors.Is(err, core.ErrAborted) {
				t.Fatalf("parked lock = %v, want ErrLeaseExpired or ErrAborted", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("parked lock never resolved after lease expiry")
		}
	}
	if err := healthy.Abort(ctx, hold); err != nil {
		t.Fatalf("Abort holder: %v", err)
	}
	f.quiesce()
}

// TestHandshakeIgnoresRacedResponse: on a resumed connection a dispatch
// goroutine finishing an old request can race its response ahead of the
// hello reply. The client must match the handshake by request ID —
// adopting the raced frame would install a garbage session token and
// epoch — and deliver the raced response to its waiter. A hand-rolled
// server forces the exact frame order.
func TestHandshakeIgnoresRacedResponse(t *testing.T) {
	const (
		tok   = uint64(0xA11CE)
		epoch = uint64(0xE90C4)
	)
	ttlUS := uint64(time.Minute / time.Microsecond)
	fabric := faultnet.New()
	defer fabric.Close()
	lis, err := fabric.Listen("fake")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}

	srvErr := make(chan error, 1)
	go func() {
		srvErr <- func() error {
			// Connection 1: answer the hello, swallow the next request, die.
			c1, err := lis.Accept()
			if err != nil {
				return fmt.Errorf("accept 1: %w", err)
			}
			hello1, err := readReq(c1)
			if err != nil {
				return fmt.Errorf("read hello 1: %w", err)
			}
			if err := writeResp(c1, &rpc.Response{ReqID: hello1.ReqID, TID: tok, Val: epoch, Aux: ttlUS}); err != nil {
				return fmt.Errorf("send hello 1: %w", err)
			}
			op, err := readReq(c1)
			if err != nil {
				return fmt.Errorf("read op: %w", err)
			}
			c1.Close()

			// Connection 2 (the redial): the old request's response beats
			// the hello reply onto the wire.
			c2, err := lis.Accept()
			if err != nil {
				return fmt.Errorf("accept 2: %w", err)
			}
			defer c2.Close()
			hello2, err := readReq(c2)
			if err != nil {
				return fmt.Errorf("read hello 2: %w", err)
			}
			stale := &rpc.Response{ReqID: op.ReqID, TID: 0xDEAD, Status: byte(xid.StatusCommitted)}
			if err := writeResp(c2, stale); err != nil {
				return fmt.Errorf("send raced response: %w", err)
			}
			if err := writeResp(c2, &rpc.Response{ReqID: hello2.ReqID, TID: tok, Val: epoch, Aux: ttlUS}); err != nil {
				return fmt.Errorf("send hello 2: %w", err)
			}
			// Drain whatever else arrives (retransmits, the Bye) until EOF.
			for {
				if _, err := rpc.ReadFrame(c2); err != nil {
					return nil
				}
			}
		}()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cli, err := client.Dial(ctx, client.Options{
		Dial: func(ctx context.Context) (net.Conn, error) {
			return fabric.DialContext(ctx, "fake")
		},
		RetransmitEvery: 5 * time.Millisecond,
		HeartbeatEvery:  time.Hour,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cli.Close() //nolint:errcheck

	st, err := cli.Status(ctx, 1)
	if err != nil {
		t.Fatalf("Status across handshake race: %v", err)
	}
	if st != xid.StatusCommitted {
		t.Fatalf("raced response status = %v, want committed (the stale frame's verdict)", st)
	}
	if got := cli.Session(); got != tok {
		t.Fatalf("session token = %#x, want %#x (handshake adopted a raced frame)", got, tok)
	}
	if got := cli.Epoch(); got != epoch {
		t.Fatalf("epoch = %#x, want %#x", got, epoch)
	}
	cli.Close() //nolint:errcheck — unblocks the fake server's drain loop
	if err := <-srvErr; err != nil {
		t.Fatalf("fake server: %v", err)
	}
}

func readReq(c net.Conn) (*rpc.Request, error) {
	payload, err := rpc.ReadFrame(c)
	if err != nil {
		return nil, err
	}
	return rpc.DecodeRequest(payload)
}

func writeResp(c net.Conn, resp *rpc.Response) error {
	return rpc.WriteFrame(c, rpc.EncodeResponse(resp))
}
