// The network chaos matrix and the mixed network+disk torture.
//
// The matrix sweeps one scripted fault across every message position of a
// canonical workload × every fault kind, asserting after each cell that
// the client-observed verdicts match the server's durable state, that
// counters conserve, and that no locks or transactions are stranded. The
// torture run layers a seeded random network fault script over a durable
// manager, crashes the disk mid-run (faultfs crash image), restarts the
// server as a new incarnation, and checks the acked ≤ applied ≤
// acked+unknown accounting plus conservation at the end.
package server_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/faultnet"
	"repro/internal/server"
	"repro/internal/xid"
)

// chaosClientOptions are timers compressed for fault tests: fast
// retransmit so drops cost milliseconds, fast heartbeat so one-way
// partitions are detected quickly.
func chaosClientOptions(fabric *faultnet.Network) client.Options {
	return client.Options{
		Dial: func(ctx context.Context) (net.Conn, error) {
			return fabric.DialContext(ctx, "assetd")
		},
		RetransmitEvery:  4 * time.Millisecond,
		HeartbeatEvery:   20 * time.Millisecond,
		ProbeTimeout:     25 * time.Millisecond,
		HandshakeTimeout: 40 * time.Millisecond,
	}
}

// dialRetry dials through faults: the initial handshake itself is in the
// sweep's blast radius, so connection setup must retry like everything
// else.
func dialRetry(ctx context.Context, opts client.Options) (*client.Client, error) {
	var lastErr error
	for {
		cli, err := client.Dial(ctx, opts)
		if err == nil {
			return cli, nil
		}
		lastErr = err
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("dial never succeeded: %w (last: %v)", ctx.Err(), lastErr)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// chaosWorkload drives the canonical exchange the matrix sweeps: seed two
// escrow counters, transfer between them twice, and read the result. All
// through client.Run, so every retryable fault is absorbed by the backoff
// engine. Returns the seeded oids.
func chaosWorkload(ctx context.Context, cli *client.Client) (a, b xid.OID, err error) {
	opts := core.RunOptions{MaxAttempts: 50, BaseBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond}
	err = cli.Run(ctx, opts, func(ctx context.Context, tx *client.Tx) error {
		id, err := tx.Create(ctx, counterBytes(40))
		if err != nil {
			return err
		}
		if err := tx.DeclareEscrow(ctx, id, 0, 1000); err != nil {
			return err
		}
		a = id
		if id, err = tx.Create(ctx, counterBytes(0)); err != nil {
			return err
		}
		if err := tx.DeclareEscrow(ctx, id, 0, 1000); err != nil {
			return err
		}
		b = id
		return nil
	})
	if err != nil {
		return 0, 0, fmt.Errorf("seed: %w", err)
	}
	for i := 0; i < 2; i++ {
		err = cli.Run(ctx, opts, func(ctx context.Context, tx *client.Tx) error {
			if err := tx.Add(ctx, a, -1); err != nil {
				return err
			}
			return tx.Add(ctx, b, 1)
		})
		if err != nil {
			return a, b, fmt.Errorf("transfer %d: %w", i, err)
		}
	}
	return a, b, nil
}

// readCounters reads both counters directly on the manager — the durable
// truth the client's observed verdicts are checked against.
func readCounters(t *testing.T, m *core.Manager, a, b xid.OID) (va, vb uint64) {
	t.Helper()
	err := m.Run(context.Background(), core.RunOptions{}, func(tx *core.Tx) error {
		var err error
		if va, err = tx.ReadCounter(a); err != nil {
			return err
		}
		vb, err = tx.ReadCounter(b)
		return err
	})
	if err != nil {
		t.Fatalf("read counters on manager: %v", err)
	}
	return va, vb
}

// matrixKinds is every fault kind the matrix sweeps, including both the
// self-healing and the never-healing partition (the latter is recovered
// by the heartbeat probe declaring the connection dead and redialing).
var matrixKinds = []faultnet.Rule{
	{Kind: faultnet.Delay, Duration: 2 * time.Millisecond},
	{Kind: faultnet.Drop},
	{Kind: faultnet.Dup},
	{Kind: faultnet.Reorder},
	{Kind: faultnet.Truncate, Keep: 5},
	{Kind: faultnet.Partition, Duration: 15 * time.Millisecond},
	{Kind: faultnet.Partition}, // never heals: probe + redial recovers
	{Kind: faultnet.Disconnect},
}

// TestChaosMatrix sweeps a single scripted fault across every protocol
// step of the canonical workload × every fault kind. Every cell must end
// with the workload fully successful (faults are transient or recoverable
// by redial), counters conserved, exactly the acked number of transfers
// applied, and no stranded locks or transactions.
func TestChaosMatrix(t *testing.T) {
	// Dry run: bound the sweep domain by the fault-free message count.
	dry := newFixture(t, core.Config{}, server.Config{LeaseTTL: 500 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cli, err := dialRetry(ctx, chaosClientOptions(dry.fabric))
	if err != nil {
		t.Fatalf("dry dial: %v", err)
	}
	if _, _, err := chaosWorkload(ctx, cli); err != nil {
		t.Fatalf("dry workload: %v", err)
	}
	cli.Close() //nolint:errcheck
	msgs := dry.fabric.Messages()
	if msgs < 10 {
		t.Fatalf("dry run saw only %d messages", msgs)
	}

	stride := 3
	if testing.Short() {
		stride = 7
	}
	for _, kind := range matrixKinds {
		kind := kind
		name := kind.Kind.String()
		if kind.Kind == faultnet.Partition && kind.Duration == 0 {
			name = "partition-forever"
		}
		t.Run(name, func(t *testing.T) {
			for step := 1; step <= msgs; step += stride {
				rule := kind
				rule.Nth = step
				f := newFixture(t, core.Config{}, server.Config{LeaseTTL: 500 * time.Millisecond})
				f.fabric.SetScript(faultnet.NewScript(rule))
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				cli, err := dialRetry(ctx, chaosClientOptions(f.fabric))
				if err != nil {
					cancel()
					t.Fatalf("step %d: dial: %v", step, err)
				}
				a, b, err := chaosWorkload(ctx, cli)
				if err != nil {
					cancel()
					t.Fatalf("step %d: workload: %v", step, err)
				}
				cli.Close() //nolint:errcheck
				cancel()
				// Client observed both transfers committed; the durable
				// state must agree exactly (exactly-once, conservation).
				va, vb := readCounters(t, f.m, a, b)
				if va+vb != 40 || vb != 2 {
					t.Fatalf("step %d: counters (%d, %d), want sum 40 and b == 2", step, va, vb)
				}
				f.quiesce()
			}
		})
	}
}

// tortureTally is one worker's accounting: acked transfers were observed
// committed, unknown ones died with ErrUnknownOutcome (server restarted
// with the commit in flight), slop is the final attempt a shutdown cut
// mid-flight (outcome unknowable without blocking shutdown).
type tortureTally struct {
	acked, unknown, slop int
}

// TestChaosTortureMixed is the seeded mixed-fault torture: random network
// faults over a durable manager, a disk crash (faultfs crash image,
// harshest mode) with server restart mid-run, concurrent transfer
// workers throughout. Invariants at the end: counters conserve exactly,
// and applied transfers land in [acked, acked+unknown+slop] — every
// acknowledged commit survived the crash, nothing applied twice.
func TestChaosTortureMixed(t *testing.T) {
	seeds := []int64{1, 42}
	phase := 300 * time.Millisecond
	if testing.Short() {
		seeds = seeds[:1]
		phase = 150 * time.Millisecond
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const total = 5000
			const workers = 4

			mem := faultfs.NewMem()
			openManager := func(fs *faultfs.MemFS) *core.Manager {
				m, err := core.Open(core.Config{Dir: "db", FS: fs, SyncCommits: true})
				if err != nil {
					t.Fatalf("Open: %v", err)
				}
				return m
			}
			m1 := openManager(mem)

			// Seed the counters locally; the oids are durable and survive
			// the crash-restart.
			var oidA, oidB xid.OID
			if err := m1.Run(context.Background(), core.RunOptions{}, func(tx *core.Tx) error {
				var err error
				if oidA, err = tx.Create(counterBytes(total)); err != nil {
					return err
				}
				oidB, err = tx.Create(counterBytes(0))
				return err
			}); err != nil {
				t.Fatalf("seed: %v", err)
			}

			fabric := faultnet.New()
			defer fabric.Close()
			lis, err := fabric.Listen("assetd")
			if err != nil {
				t.Fatalf("Listen: %v", err)
			}
			srv1 := server.Serve(m1, lis, server.Config{LeaseTTL: 150 * time.Millisecond})
			fabric.SetScript(faultnet.RandomScript(seed, 30))

			stopCtx, stop := context.WithCancel(context.Background())
			defer stop()
			opts := core.RunOptions{MaxAttempts: 200, BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond}
			tallies := make([]tortureTally, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					dctx, dcancel := context.WithTimeout(stopCtx, 5*time.Second)
					cli, err := dialRetry(dctx, chaosClientOptions(fabric))
					dcancel()
					if err != nil {
						t.Errorf("worker %d: dial: %v", w, err)
						return
					}
					defer cli.Close() //nolint:errcheck
					for stopCtx.Err() == nil {
						err := cli.Run(stopCtx, opts, func(ctx context.Context, tx *client.Tx) error {
							if err := tx.Add(ctx, oidA, -1); err != nil {
								return err
							}
							return tx.Add(ctx, oidB, 1)
						})
						switch {
						case err == nil:
							tallies[w].acked++
						case errors.Is(err, core.ErrUnknownOutcome):
							tallies[w].unknown++
						case stopCtx.Err() != nil:
							// Shutdown cut the attempt; its commit may or may
							// not have landed.
							tallies[w].slop++
						default:
							// Budget exhausted this round (every constituent
							// error is commit-did-not-happen class); go again.
						}
					}
				}()
			}

			time.Sleep(phase)

			// Crash. Closing the server first stops all acking: every
			// commit acknowledged to any client is already fsynced
			// (SyncCommits), so it must be in the crash image. The image
			// drops everything unsynced — the harshest corner.
			srv1.Close()
			img := mem.CrashImage(faultfs.DropUnsynced)
			m1.Close() //nolint:errcheck

			m2 := openManager(img)
			lis2, err := fabric.Listen("assetd")
			if err != nil {
				t.Fatalf("re-Listen: %v", err)
			}
			srv2 := server.Serve(m2, lis2, server.Config{LeaseTTL: 150 * time.Millisecond})
			defer srv2.Close()
			defer m2.Close() //nolint:errcheck

			time.Sleep(phase)
			stop()
			wg.Wait()
			fabric.SetScript(nil)

			var sum tortureTally
			for _, tl := range tallies {
				sum.acked += tl.acked
				sum.unknown += tl.unknown
				sum.slop += tl.slop
			}
			if sum.acked == 0 {
				t.Fatalf("no transfer ever succeeded (unknown=%d slop=%d)", sum.unknown, sum.slop)
			}

			// Let straggler sessions expire and their transactions settle.
			quiesceManager(t, m2)
			va, vb := readCounters(t, m2, oidA, oidB)
			if va+vb != total {
				t.Fatalf("conservation violated: %d + %d != %d", va, vb, total)
			}
			applied := int(vb)
			if applied < sum.acked || applied > sum.acked+sum.unknown+sum.slop {
				t.Fatalf("applied %d transfers, want within [acked=%d, acked+unknown+slop=%d]",
					applied, sum.acked, sum.acked+sum.unknown+sum.slop)
			}
			t.Logf("seed %d: acked=%d unknown=%d slop=%d applied=%d faults=%d msgs=%d",
				seed, sum.acked, sum.unknown, sum.slop, applied, 0, fabric.Messages())
		})
	}
}
