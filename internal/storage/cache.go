package storage

import (
	"sync"
	"sync/atomic"

	"repro/internal/latch"
	"repro/internal/xid"
)

// Object is one entry of the shared cache. Lat is the object's S/X latch;
// per §4.2 of the paper a reader holds it in S mode across the read and a
// writer holds it in X mode across logging the before image, performing the
// write, and logging the after image. Data and SetData access the raw buffer
// and require the caller to hold the latch in the appropriate mode.
type Object struct {
	Lat  latch.Latch
	data []byte
}

// Data returns the object's buffer without copying. The caller must hold
// Lat (S for inspection, X for mutation via SetData).
func (o *Object) Data() []byte { return o.data }

// SetData replaces the object's contents. The caller must hold Lat in X
// mode.
func (o *Object) SetData(b []byte) { o.data = b }

// Cache is the shared object cache transactions operate on directly. The
// map itself is protected by a latch; individual objects carry their own
// latches.
type Cache struct {
	lat     latch.Latch
	objs    map[xid.OID]*Object
	nextOID atomic.Uint64
}

// NewCache returns an empty cache whose first allocated oid will be 1.
func NewCache() *Cache {
	return &Cache{objs: make(map[xid.OID]*Object)}
}

// AllocOID reserves a fresh object identifier without creating the object.
func (c *Cache) AllocOID() xid.OID {
	return xid.OID(c.nextOID.Add(1))
}

// SetNextOID advances the allocator so future AllocOIDs exceed floor;
// recovery calls it with the largest recovered oid.
func (c *Cache) SetNextOID(floor xid.OID) {
	for {
		cur := c.nextOID.Load()
		if cur >= uint64(floor) || c.nextOID.CompareAndSwap(cur, uint64(floor)) {
			return
		}
	}
}

// Object returns the cached object for oid, or nil if it does not exist.
func (c *Cache) Object(oid xid.OID) *Object {
	c.lat.RLock()
	o := c.objs[oid]
	c.lat.RUnlock()
	return o
}

// Read returns a copy of the object's contents, taking the object's S latch
// for the duration of the copy.
func (c *Cache) Read(oid xid.OID) ([]byte, bool) {
	o := c.Object(oid)
	if o == nil {
		return nil, false
	}
	o.Lat.RLock()
	out := make([]byte, len(o.data))
	copy(out, o.data)
	o.Lat.RUnlock()
	return out, true
}

// Install creates or replaces the object outright (recovery and undo paths;
// transactional writes go through Object and its latch so the before image
// can be logged under the same X hold). It returns the previous contents,
// if any.
func (c *Cache) Install(oid xid.OID, data []byte) (prev []byte, existed bool) {
	c.lat.Lock()
	o := c.objs[oid]
	if o == nil {
		o = &Object{data: data}
		c.objs[oid] = o
		c.lat.Unlock()
		return nil, false
	}
	c.lat.Unlock()
	o.Lat.Lock()
	prev = o.data
	o.data = data
	o.Lat.Unlock()
	return prev, true
}

// Create inserts a new object under oid. It reports false if the oid is
// already present.
func (c *Cache) Create(oid xid.OID, data []byte) bool {
	c.lat.Lock()
	defer c.lat.Unlock()
	if _, exists := c.objs[oid]; exists {
		return false
	}
	c.objs[oid] = &Object{data: data}
	return true
}

// Delete removes the object, returning its final contents.
func (c *Cache) Delete(oid xid.OID) ([]byte, bool) {
	c.lat.Lock()
	o := c.objs[oid]
	if o == nil {
		c.lat.Unlock()
		return nil, false
	}
	delete(c.objs, oid)
	c.lat.Unlock()
	o.Lat.RLock()
	data := o.data
	o.Lat.RUnlock()
	return data, true
}

// Len returns the number of cached objects.
func (c *Cache) Len() int {
	c.lat.RLock()
	defer c.lat.RUnlock()
	return len(c.objs)
}

// ForEach calls fn with a copy of every object's contents. Objects created
// or deleted during the iteration may or may not be visited.
func (c *Cache) ForEach(fn func(oid xid.OID, data []byte) bool) {
	c.lat.RLock()
	oids := make([]xid.OID, 0, len(c.objs))
	for oid := range c.objs {
		oids = append(oids, oid)
	}
	c.lat.RUnlock()
	for _, oid := range oids {
		data, ok := c.Read(oid)
		if !ok {
			continue
		}
		if !fn(oid, data) {
			return
		}
	}
}

// Backend persists committed cache state across restarts. The manager loads
// it at open and writes changed objects at checkpoint.
type Backend interface {
	// LoadAll streams every stored object into fn.
	LoadAll(fn func(oid xid.OID, data []byte) error) error
	// Put stores (or replaces) one object.
	Put(oid xid.OID, data []byte) error
	// Delete removes one object.
	Delete(oid xid.OID) error
	// Sync makes preceding Puts/Deletes durable.
	Sync() error
	// Close releases the backend.
	Close() error
}

// NullBackend is the no-durability backend for purely in-memory managers.
type NullBackend struct{}

// LoadAll loads nothing.
func (NullBackend) LoadAll(func(xid.OID, []byte) error) error { return nil }

// Put discards the object.
func (NullBackend) Put(xid.OID, []byte) error { return nil }

// Delete discards the deletion.
func (NullBackend) Delete(xid.OID) error { return nil }

// Sync does nothing.
func (NullBackend) Sync() error { return nil }

// Close does nothing.
func (NullBackend) Close() error { return nil }

// PageBackend adapts a PageStore to the Backend interface.
type PageBackend struct {
	Store *PageStore
}

// LoadAll streams the page store contents.
func (b PageBackend) LoadAll(fn func(xid.OID, []byte) error) error {
	return b.Store.ForEach(fn)
}

// Put stores one object in the page store.
func (b PageBackend) Put(oid xid.OID, data []byte) error { return b.Store.Put(oid, data) }

// Delete removes one object from the page store.
func (b PageBackend) Delete(oid xid.OID) error {
	_, err := b.Store.Delete(oid)
	return err
}

// Sync flushes the page store durably.
func (b PageBackend) Sync() error { return b.Store.Sync() }

// Close closes the page store.
func (b PageBackend) Close() error { return b.Store.Close() }

// MemBackend keeps a map copy; it exists so tests can observe checkpoint
// contents without disk.
type MemBackend struct {
	mu   sync.Mutex
	objs map[xid.OID][]byte
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend { return &MemBackend{objs: make(map[xid.OID][]byte)} }

// LoadAll streams the backend contents.
func (b *MemBackend) LoadAll(fn func(xid.OID, []byte) error) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for oid, data := range b.objs {
		if err := fn(oid, data); err != nil {
			return err
		}
	}
	return nil
}

// Put stores a copy of data.
func (b *MemBackend) Put(oid xid.OID, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	b.objs[oid] = cp
	return nil
}

// Delete removes the object.
func (b *MemBackend) Delete(oid xid.OID) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.objs, oid)
	return nil
}

// Sync does nothing.
func (b *MemBackend) Sync() error { return nil }

// Close does nothing.
func (b *MemBackend) Close() error { return nil }

// Len returns the number of stored objects.
func (b *MemBackend) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.objs)
}

// Get returns the stored object.
func (b *MemBackend) Get(oid xid.OID) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.objs[oid]
	return v, ok
}
