package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/xid"
)

func openTestStore(t *testing.T, dir string) *PageStore {
	t.Helper()
	s, err := OpenPageStore(dir, PageStoreOptions{PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetDeleteSmall(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	defer s.Close()
	if err := s.Put(1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(1)
	if err != nil || !ok || string(got) != "hello" {
		t.Fatalf("Get = %q,%v,%v", got, ok, err)
	}
	if _, ok, _ := s.Get(2); ok {
		t.Fatal("Get of absent oid returned ok")
	}
	if err := s.Put(1, []byte("hi")); err != nil { // shrink in place
		t.Fatal(err)
	}
	got, _, _ = s.Get(1)
	if string(got) != "hi" {
		t.Fatalf("after shrink Get = %q", got)
	}
	if err := s.Put(1, bytes.Repeat([]byte("x"), 100)); err != nil { // grow
		t.Fatal(err)
	}
	got, _, _ = s.Get(1)
	if len(got) != 100 {
		t.Fatalf("after grow len = %d", len(got))
	}
	existed, err := s.Delete(1)
	if err != nil || !existed {
		t.Fatalf("Delete = %v,%v", existed, err)
	}
	if existed, _ := s.Delete(1); existed {
		t.Fatal("second Delete reported existed")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestPersistAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	for i := 1; i <= 500; i++ {
		if err := s.Put(xid.OID(i), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Delete(7)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openTestStore(t, dir)
	defer s2.Close()
	if s2.Len() != 499 {
		t.Fatalf("reopened Len = %d, want 499", s2.Len())
	}
	for i := 1; i <= 500; i++ {
		got, ok, err := s2.Get(xid.OID(i))
		if err != nil {
			t.Fatal(err)
		}
		if i == 7 {
			if ok {
				t.Fatal("deleted object resurrected")
			}
			continue
		}
		if !ok || string(got) != fmt.Sprintf("value-%d", i) {
			t.Fatalf("oid %d = %q,%v", i, got, ok)
		}
	}
}

func TestLargeObjectsBlobChains(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	big := make([]byte, 3*PageSize+123)
	rnd := rand.New(rand.NewSource(1))
	rnd.Read(big)
	if err := s.Put(9, big); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(9)
	if err != nil || !ok || !bytes.Equal(got, big) {
		t.Fatalf("blob round trip failed: ok=%v err=%v len=%d", ok, err, len(got))
	}
	// Replace with a different big object; old chain pages must be reused.
	big2 := make([]byte, 2*PageSize)
	rnd.Read(big2)
	if err := s.Put(9, big2); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openTestStore(t, dir)
	defer s2.Close()
	got, ok, err = s2.Get(9)
	if err != nil || !ok || !bytes.Equal(got, big2) {
		t.Fatal("blob lost across reopen")
	}
	// Delete frees the chain; a new blob should not grow the file much.
	if _, err := s2.Delete(9); err != nil {
		t.Fatal(err)
	}
	before := fileSize(t, filepath.Join(dir, "store.dat"))
	if err := s2.Put(10, big2); err != nil {
		t.Fatal(err)
	}
	if err := s2.Sync(); err != nil {
		t.Fatal(err)
	}
	after := fileSize(t, filepath.Join(dir, "store.dat"))
	if after > before+PageSize {
		t.Fatalf("freed blob pages not reused: %d -> %d", before, after)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

func TestCompactionReclaimsSpace(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	defer s.Close()
	// Fill a page with records, delete every other one, then insert a
	// record that only fits after compaction.
	rec := bytes.Repeat([]byte("a"), 700)
	for i := 1; i <= 11; i++ { // 11*(700+16) ≈ 7876, nearly fills one page
		if err := s.Put(xid.OID(i), rec); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 11; i += 2 {
		if _, err := s.Delete(xid.OID(i)); err != nil {
			t.Fatal(err)
		}
	}
	big := bytes.Repeat([]byte("b"), 3000)
	if err := s.Put(100, big); err != nil {
		t.Fatal(err)
	}
	got, ok, _ := s.Get(100)
	if !ok || !bytes.Equal(got, big) {
		t.Fatal("record lost after compaction insert")
	}
	// Survivors intact after compaction moved them.
	for i := 2; i <= 10; i += 2 {
		got, ok, _ := s.Get(xid.OID(i))
		if !ok || !bytes.Equal(got, rec) {
			t.Fatalf("survivor %d damaged after compaction", i)
		}
	}
}

func TestManyObjectsSmallPool(t *testing.T) {
	// With an 8-frame pool, thousands of objects force constant eviction.
	s := openTestStore(t, t.TempDir())
	defer s.Close()
	const n = 3000
	for i := 1; i <= n; i++ {
		if err := s.Put(xid.OID(i), []byte(fmt.Sprintf("%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= n; i++ {
		got, ok, err := s.Get(xid.OID(i))
		if err != nil || !ok || string(got) != fmt.Sprintf("%06d", i) {
			t.Fatalf("oid %d = %q,%v,%v", i, got, ok, err)
		}
	}
}

func TestDoubleWriteReplayFixesTornPage(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	for i := 1; i <= 50; i++ {
		s.Put(xid.OID(i), bytes.Repeat([]byte{byte(i)}, 64))
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// Capture a new batch in the journal, then simulate a crash after the
	// journal write but with a torn in-place write: corrupt a data page
	// directly while leaving the journal intact.
	for i := 1; i <= 50; i++ {
		s.Put(xid.OID(i), bytes.Repeat([]byte{byte(i + 100)}, 64))
	}
	s.mu.Lock()
	var dirty []*frame
	for _, fr := range s.pool.frames {
		if fr.dirty {
			dirty = append(dirty, fr)
		}
	}
	for _, fr := range dirty {
		sealPage(fr.data)
	}
	if err := s.pool.dw.capture(dirty); err != nil {
		t.Fatal(err)
	}
	s.mu.Unlock()
	// Tear page 1 on disk (half-written garbage), bypassing the store.
	s.f.WriteAt(bytes.Repeat([]byte{0xAB}, PageSize/2), PageSize)
	s.f.Sync()
	s.f.Close() // abandon without flushing frames ("crash")
	s.dw.close()

	s2 := openTestStore(t, dir) // must replay the journal
	defer s2.Close()
	for i := 1; i <= 50; i++ {
		got, ok, err := s2.Get(xid.OID(i))
		if err != nil || !ok || !bytes.Equal(got, bytes.Repeat([]byte{byte(i + 100)}, 64)) {
			t.Fatalf("oid %d not recovered from double-write journal: %v %v", i, ok, err)
		}
	}
}

func TestTornPageWithoutJournalDetected(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	s.Put(1, []byte("x"))
	s.Close()
	// Corrupt the data page and empty the journal.
	f, _ := os.OpenFile(filepath.Join(dir, "store.dat"), os.O_WRONLY, 0)
	f.WriteAt([]byte{0xFF, 0xEE, 0xDD}, PageSize+100)
	f.Close()
	os.Truncate(filepath.Join(dir, "store.dw"), 0)
	if _, err := OpenPageStore(dir, PageStoreOptions{PoolPages: 8}); err == nil {
		t.Fatal("open of corrupted store succeeded; checksum must catch it")
	}
}

// TestQuickStoreMatchesMap drives random Put/Delete/Get against a reference
// map, including occasional large values.
func TestQuickStoreMatchesMap(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	defer s.Close()
	ref := map[xid.OID][]byte{}
	f := func(oid8, op, size uint8, fill byte) bool {
		oid := xid.OID(oid8%32) + 1
		switch op % 3 {
		case 0, 1:
			n := int(size) * 40 // up to ~10KB, crossing the blob threshold
			val := bytes.Repeat([]byte{fill}, n)
			if err := s.Put(oid, val); err != nil {
				return false
			}
			ref[oid] = val
		case 2:
			delete(ref, oid)
			if _, err := s.Delete(oid); err != nil {
				return false
			}
		}
		got, ok, err := s.Get(oid)
		if err != nil {
			return false
		}
		want, wok := ref[oid]
		return ok == wok && (!ok || bytes.Equal(got, want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != len(ref) {
		t.Fatalf("Len = %d, ref = %d", s.Len(), len(ref))
	}
}

func TestForEachVisitsAll(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	defer s.Close()
	want := map[xid.OID]string{}
	for i := 1; i <= 20; i++ {
		v := fmt.Sprintf("v%d", i)
		s.Put(xid.OID(i), []byte(v))
		want[xid.OID(i)] = v
	}
	got := map[xid.OID]string{}
	err := s.ForEach(func(oid xid.OID, data []byte) error {
		got[oid] = string(data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("ForEach[%v] = %q, want %q", k, got[k], v)
		}
	}
}
