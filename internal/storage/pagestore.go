package storage

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/faultfs"
	"repro/internal/xid"
)

// PageStore is a persistent object store over slotted pages. It maps OIDs to
// variable-length byte records; records larger than a page spill into blob
// page chains. All access is serialized by one store mutex (the store is the
// checkpoint backend, not the concurrency hot path — the shared cache is).
type PageStore struct {
	mu        sync.Mutex
	f         faultfs.File
	pool      *pool
	dw        *dwJournal
	dir       map[xid.OID]dirEntry
	freeSpace map[uint64]int // data page -> free bytes after compaction
	freePages []uint64       // reusable (freed blob) pages
	hintPage  uint64         // last page that had room
	closed    bool
}

type dirEntry struct {
	page uint64
	slot int
}

// PageStoreOptions configures OpenPageStore.
type PageStoreOptions struct {
	// PoolPages is the buffer pool capacity in pages (default 256).
	PoolPages int
	// NoDoubleWrite disables the torn-write journal (benchmarks only).
	NoDoubleWrite bool
	// FS, when non-nil, replaces the OS filesystem (fault injection and
	// crash simulation).
	FS faultfs.FS
}

var storeMagic = []byte("ASSETPG1")

// OpenPageStore opens or creates the store rooted at dir, replaying any
// pending double-write journal first.
func OpenPageStore(dir string, opts PageStoreOptions) (*PageStore, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, "store.dat")
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	var dw *dwJournal
	if !opts.NoDoubleWrite {
		dw, err = openDWJournal(fsys, filepath.Join(dir, "store.dw"))
		if err != nil {
			f.Close()
			return nil, err
		}
	}
	// store.dat / store.dw may have just been created; their directory
	// entries must be durable before any page or journal write is relied
	// upon, or a crash can lose the files entirely.
	if err := fsys.SyncDir(dir); err != nil {
		if dw != nil {
			dw.close()
		}
		f.Close()
		return nil, err
	}
	if dw != nil {
		if err := dw.replay(f); err != nil {
			dw.close()
			f.Close()
			return nil, err
		}
	}
	if opts.PoolPages == 0 {
		opts.PoolPages = 256
	}
	pl, err := newPool(f, opts.PoolPages, dw)
	if err != nil {
		f.Close()
		return nil, err
	}
	s := &PageStore{
		f:         f,
		pool:      pl,
		dw:        dw,
		dir:       make(map[xid.OID]dirEntry),
		freeSpace: make(map[uint64]int),
	}
	if pl.pageCount == 0 {
		// Fresh store: write the header page.
		fr, pageNo, err := pl.alloc()
		if err != nil {
			return nil, err
		}
		if pageNo != 0 {
			return nil, fmt.Errorf("storage: header page allocated at %d", pageNo)
		}
		setPageType(fr.data, 3) // header
		copy(fr.data[pageHeaderSize:], storeMagic)
		pl.unpin(fr, true)
		if err := pl.flushAll(); err != nil {
			return nil, err
		}
		return s, nil
	}
	if err := s.scan(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// scan rebuilds the directory, free-space map, and free-page list from the
// on-disk pages.
func (s *PageStore) scan() error {
	// Verify the header.
	hdr, err := s.pool.get(0)
	if err != nil {
		return err
	}
	magicOK := string(hdr.data[pageHeaderSize:pageHeaderSize+len(storeMagic)]) == string(storeMagic)
	s.pool.unpin(hdr, false)
	if !magicOK {
		return fmt.Errorf("storage: bad store magic")
	}
	blobUsed := make(map[uint64]bool)
	var blobRefs []uint64
	for pageNo := uint64(1); pageNo < s.pool.pageCount; pageNo++ {
		fr, err := s.pool.get(pageNo)
		if err != nil {
			return err
		}
		switch pageType(fr.data) {
		case pageTypeData:
			if err := pageCheck(pageNo, fr.data); err != nil {
				s.pool.unpin(fr, false)
				return err
			}
			n := pageNSlots(fr.data)
			for i := 0; i < n; i++ {
				sl := getSlot(fr.data, i)
				if sl.flags == slotDead {
					continue
				}
				if _, dup := s.dir[sl.oid]; dup {
					s.pool.unpin(fr, false)
					return fmt.Errorf("storage: duplicate oid %v on page %d", sl.oid, pageNo)
				}
				s.dir[sl.oid] = dirEntry{page: pageNo, slot: i}
				if sl.flags == slotBlobRef {
					rec := fr.data[sl.off : int(sl.off)+int(sl.len)]
					blobRefs = append(blobRefs, binary.LittleEndian.Uint64(rec[0:8]))
				}
			}
			s.freeSpace[pageNo] = pageFreeAfterCompaction(fr.data)
		case pageTypeBlob:
			// Ownership resolved after the scan.
		default:
			s.freePages = append(s.freePages, pageNo)
		}
		s.pool.unpin(fr, false)
	}
	// Walk blob chains from live refs; unreferenced blob pages are free.
	for _, first := range blobRefs {
		for pageNo := first; pageNo != 0; {
			blobUsed[pageNo] = true
			fr, err := s.pool.get(pageNo)
			if err != nil {
				return err
			}
			next := pageNext(fr.data)
			s.pool.unpin(fr, false)
			pageNo = next
		}
	}
	for pageNo := uint64(1); pageNo < s.pool.pageCount; pageNo++ {
		if _, isData := s.freeSpace[pageNo]; isData {
			continue
		}
		if !blobUsed[pageNo] {
			already := false
			for _, p := range s.freePages {
				if p == pageNo {
					already = true
					break
				}
			}
			if !already {
				s.freePages = append(s.freePages, pageNo)
			}
		}
	}
	return nil
}

// Get returns a copy of the record stored under oid.
func (s *PageStore) Get(oid xid.OID) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.dir[oid]
	if !ok {
		return nil, false, nil
	}
	fr, err := s.pool.get(e.page)
	if err != nil {
		return nil, false, err
	}
	sl := getSlot(fr.data, e.slot)
	rec := fr.data[sl.off : int(sl.off)+int(sl.len)]
	if sl.flags == slotBlobRef {
		first := binary.LittleEndian.Uint64(rec[0:8])
		total := binary.LittleEndian.Uint32(rec[8:12])
		s.pool.unpin(fr, false)
		data, err := s.readBlob(first, int(total))
		return data, err == nil, err
	}
	out := make([]byte, sl.len)
	copy(out, rec)
	s.pool.unpin(fr, false)
	return out, true, nil
}

// Put inserts or replaces the record under oid.
func (s *PageStore) Put(oid xid.OID, data []byte) error {
	if oid.IsNil() {
		return fmt.Errorf("storage: Put with null oid")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.dir[oid]; ok {
		// In-place overwrite when the new record is inline and fits in the
		// old slot.
		fr, err := s.pool.get(e.page)
		if err != nil {
			return err
		}
		sl := getSlot(fr.data, e.slot)
		if sl.flags == slotLive && len(data) <= int(sl.len) && len(data) <= maxInline {
			copy(fr.data[sl.off:], data)
			// Zero the tail of the old record so checksums stay clean.
			for i := int(sl.off) + len(data); i < int(sl.off)+int(sl.len); i++ {
				fr.data[i] = 0
			}
			old := int(sl.len)
			sl.len = uint16(len(data))
			putSlot(fr.data, e.slot, sl)
			s.freeSpace[e.page] += old - len(data)
			s.pool.unpin(fr, true)
			return nil
		}
		s.pool.unpin(fr, false)
		if err := s.deleteLocked(oid); err != nil {
			return err
		}
	}
	return s.insertLocked(oid, data)
}

// Delete removes the record under oid, reporting whether it existed.
func (s *PageStore) Delete(oid xid.OID) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.dir[oid]; !ok {
		return false, nil
	}
	return true, s.deleteLocked(oid)
}

func (s *PageStore) deleteLocked(oid xid.OID) error {
	e := s.dir[oid]
	fr, err := s.pool.get(e.page)
	if err != nil {
		return err
	}
	sl := getSlot(fr.data, e.slot)
	if sl.flags == slotBlobRef {
		rec := fr.data[sl.off : int(sl.off)+int(sl.len)]
		first := binary.LittleEndian.Uint64(rec[0:8])
		if err := s.freeBlob(first); err != nil {
			s.pool.unpin(fr, false)
			return err
		}
	}
	sl.flags = slotDead
	putSlot(fr.data, e.slot, sl)
	s.freeSpace[e.page] = pageFreeAfterCompaction(fr.data)
	s.pool.unpin(fr, true)
	delete(s.dir, oid)
	return nil
}

func (s *PageStore) insertLocked(oid xid.OID, data []byte) error {
	rec := data
	flags := uint16(slotLive)
	if len(data) > maxInline {
		first, err := s.writeBlob(data)
		if err != nil {
			return err
		}
		ref := make([]byte, blobRefSize)
		binary.LittleEndian.PutUint64(ref[0:8], first)
		binary.LittleEndian.PutUint32(ref[8:12], uint32(len(data)))
		rec = ref
		flags = slotBlobRef
	}
	need := slotSize + len(rec)
	pageNo, fr, err := s.findDataPage(need)
	if err != nil {
		return err
	}
	if pageContigFree(fr.data) < need {
		moved := compactPage(fr.data)
		for movedOID, idx := range moved {
			s.dir[movedOID] = dirEntry{page: pageNo, slot: idx}
		}
	}
	// Reuse a dead slot if one exists; otherwise append one.
	slotIdx := -1
	n := pageNSlots(fr.data)
	for i := 0; i < n; i++ {
		if getSlot(fr.data, i).flags == slotDead {
			slotIdx = i
			break
		}
	}
	if slotIdx == -1 {
		slotIdx = n
		setPageNSlots(fr.data, n+1)
	}
	off := pageFreeOff(fr.data) - len(rec)
	copy(fr.data[off:], rec)
	setPageFreeOff(fr.data, off)
	putSlot(fr.data, slotIdx, slot{oid: oid, off: uint16(off), len: uint16(len(rec)), flags: flags})
	s.freeSpace[pageNo] = pageFreeAfterCompaction(fr.data)
	s.hintPage = pageNo
	s.pool.unpin(fr, true)
	s.dir[oid] = dirEntry{page: pageNo, slot: slotIdx}
	return nil
}

// findDataPage returns a pinned data page with at least need bytes free
// after compaction, allocating a fresh one if necessary.
func (s *PageStore) findDataPage(need int) (uint64, *frame, error) {
	if free, ok := s.freeSpace[s.hintPage]; ok && free >= need {
		fr, err := s.pool.get(s.hintPage)
		if err != nil {
			return 0, nil, err
		}
		return s.hintPage, fr, nil
	}
	for pageNo, free := range s.freeSpace {
		if free >= need {
			fr, err := s.pool.get(pageNo)
			if err != nil {
				return 0, nil, err
			}
			return pageNo, fr, nil
		}
	}
	// Reuse a free page as a data page, or append.
	if len(s.freePages) > 0 {
		pageNo := s.freePages[len(s.freePages)-1]
		s.freePages = s.freePages[:len(s.freePages)-1]
		fr, err := s.pool.get(pageNo)
		if err != nil {
			return 0, nil, err
		}
		initDataPage(fr.data)
		fr.dirty = true
		s.freeSpace[pageNo] = pageFreeAfterCompaction(fr.data)
		return pageNo, fr, nil
	}
	fr, pageNo, err := s.pool.alloc()
	if err != nil {
		return 0, nil, err
	}
	initDataPage(fr.data)
	s.freeSpace[pageNo] = pageFreeAfterCompaction(fr.data)
	return pageNo, fr, nil
}

// writeBlob stores data across a chain of blob pages, returning the first
// page number.
func (s *PageStore) writeBlob(data []byte) (uint64, error) {
	var first uint64
	var prevFrame *frame
	for off := 0; off < len(data); off += blobChunkSize {
		end := off + blobChunkSize
		if end > len(data) {
			end = len(data)
		}
		fr, pageNo, err := s.allocBlobPage()
		if err != nil {
			if prevFrame != nil {
				s.pool.unpin(prevFrame, true)
			}
			return 0, err
		}
		setBlobChunkLen(fr.data, end-off)
		copy(fr.data[pageHeaderSize:], data[off:end])
		if first == 0 {
			first = pageNo
		}
		if prevFrame != nil {
			setPageNext(prevFrame.data, pageNo)
			s.pool.unpin(prevFrame, true)
		}
		prevFrame = fr
	}
	if prevFrame != nil {
		s.pool.unpin(prevFrame, true)
	}
	return first, nil
}

func (s *PageStore) allocBlobPage() (*frame, uint64, error) {
	if len(s.freePages) > 0 {
		pageNo := s.freePages[len(s.freePages)-1]
		s.freePages = s.freePages[:len(s.freePages)-1]
		fr, err := s.pool.get(pageNo)
		if err != nil {
			return nil, 0, err
		}
		initBlobPage(fr.data)
		fr.dirty = true
		return fr, pageNo, nil
	}
	fr, pageNo, err := s.pool.alloc()
	if err != nil {
		return nil, 0, err
	}
	initBlobPage(fr.data)
	return fr, pageNo, nil
}

func (s *PageStore) readBlob(first uint64, total int) ([]byte, error) {
	out := make([]byte, 0, total)
	for pageNo := first; pageNo != 0; {
		fr, err := s.pool.get(pageNo)
		if err != nil {
			return nil, err
		}
		n := blobChunkLen(fr.data)
		out = append(out, fr.data[pageHeaderSize:pageHeaderSize+n]...)
		next := pageNext(fr.data)
		s.pool.unpin(fr, false)
		pageNo = next
	}
	if len(out) != total {
		return nil, fmt.Errorf("storage: blob chain length %d, want %d", len(out), total)
	}
	return out, nil
}

func (s *PageStore) freeBlob(first uint64) error {
	for pageNo := first; pageNo != 0; {
		fr, err := s.pool.get(pageNo)
		if err != nil {
			return err
		}
		next := pageNext(fr.data)
		for i := range fr.data {
			fr.data[i] = 0
		}
		s.pool.unpin(fr, true)
		s.freePages = append(s.freePages, pageNo)
		pageNo = next
	}
	return nil
}

// Len returns the number of stored records.
func (s *PageStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.dir)
}

// ForEach calls fn for every record. The iteration order is unspecified.
func (s *PageStore) ForEach(fn func(oid xid.OID, data []byte) error) error {
	s.mu.Lock()
	oids := make([]xid.OID, 0, len(s.dir))
	for oid := range s.dir {
		oids = append(oids, oid)
	}
	s.mu.Unlock()
	for _, oid := range oids {
		data, ok, err := s.Get(oid)
		if err != nil {
			return err
		}
		if !ok {
			continue // deleted concurrently
		}
		if err := fn(oid, data); err != nil {
			return err
		}
	}
	return nil
}

// Sync makes all buffered changes durable (double-write protected).
func (s *PageStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pool.flushAll()
}

// Close syncs and closes the store.
func (s *PageStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.pool.flushAll()
	if s.dw != nil {
		if cerr := s.dw.close(); err == nil {
			err = cerr
		}
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}
