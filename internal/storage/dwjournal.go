package storage

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/faultfs"
)

// dwJournal is a double-write journal: before dirty pages are written in
// place, their full images are appended to a side file and fsynced. A crash
// between the journal write and the in-place writes leaves intact images to
// replay; a crash during the journal write leaves the store untouched. The
// journal is truncated once the in-place writes are durable.
//
// Journal format: repeated [pageNo u64][PageSize bytes], followed by a
// commit marker [^uint64(0)][count u64]. Without a valid trailing marker the
// journal is ignored.
type dwJournal struct {
	f faultfs.File
}

const dwMarker = ^uint64(0)

func openDWJournal(fsys faultfs.FS, path string) (*dwJournal, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open double-write journal: %w", err)
	}
	return &dwJournal{f: f}, nil
}

// capture appends the page images and a commit marker, then fsyncs.
func (j *dwJournal) capture(frames []*frame) error {
	if err := j.f.Truncate(0); err != nil {
		return err
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	var hdr [8]byte
	for _, fr := range frames {
		binary.LittleEndian.PutUint64(hdr[:], fr.pageNo)
		if _, err := j.f.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := j.f.Write(fr.data); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint64(hdr[:], dwMarker)
	if _, err := j.f.Write(hdr[:]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(frames)))
	if _, err := j.f.Write(hdr[:]); err != nil {
		return err
	}
	return j.f.Sync()
}

// clear truncates the journal after the in-place writes are durable.
func (j *dwJournal) clear() error {
	if err := j.f.Truncate(0); err != nil {
		return err
	}
	return j.f.Sync()
}

// replay applies a complete journal (if any) to the store file and clears
// it. Called at open, before anything reads the store.
func (j *dwJournal) replay(store faultfs.File) error {
	st, err := j.f.Stat()
	if err != nil {
		return err
	}
	size := st.Size()
	if size < 16 {
		return nil // empty or incomplete: nothing to do
	}
	var tail [16]byte
	if _, err := j.f.ReadAt(tail[:], size-16); err != nil {
		return err
	}
	if binary.LittleEndian.Uint64(tail[0:8]) != dwMarker {
		return j.clear() // incomplete capture: store is untouched
	}
	count := binary.LittleEndian.Uint64(tail[8:16])
	if int64(count)*(8+PageSize)+16 != size {
		return j.clear() // malformed: ignore
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	buf := make([]byte, PageSize)
	var hdr [8]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(j.f, hdr[:]); err != nil {
			return err
		}
		pageNo := binary.LittleEndian.Uint64(hdr[:])
		if _, err := io.ReadFull(j.f, buf); err != nil {
			return err
		}
		if err := verifyPage(pageNo, buf); err != nil {
			return err // journal itself torn mid-page: should not happen past marker check
		}
		if _, err := store.WriteAt(buf, int64(pageNo)*PageSize); err != nil {
			return err
		}
	}
	if err := store.Sync(); err != nil {
		return err
	}
	return j.clear()
}

func (j *dwJournal) close() error { return j.f.Close() }
