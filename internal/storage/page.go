// Package storage provides ASSET's storage substrate: the shared object
// cache that transactions operate on directly (§4 of the paper describes
// this mode of EOS), and a persistent page-based object store used as the
// checkpoint backend. The page store uses slotted data pages, overflow
// chains for large objects, a buffer pool with clock eviction, per-page
// checksums, and a double-write journal so that torn page writes cannot
// corrupt a checkpoint.
package storage

import (
	"encoding/binary"
	"fmt"

	"repro/internal/xid"
)

// PageSize is the unit of disk I/O and buffering.
const PageSize = 8192

// Page layout:
//
//	off 0:  type  u8   (0 free, 1 data, 2 blob)
//	off 1:  pad   u8
//	off 2:  nslots/chunkLen u16 (data: slot count; blob: chunk length)
//	off 4:  freeOff u16 (data pages: low end of the record area)
//	off 6:  pad   u16
//	off 8:  next  u64  (blob chain pointer; 0 = end)
//	off 16: crc   u32  (checksum of the rest of the page)
//	off 20: pad   u32
//	off 24: slot array (data pages) or chunk bytes (blob pages)
//
// Records grow downward from the end of data pages. Each slot is 16 bytes:
// oid u64, off u16, len u16, flags u16, pad u16.
const (
	pageHeaderSize = 24
	slotSize       = 16
	blobChunkSize  = PageSize - pageHeaderSize

	pageTypeFree = 0
	pageTypeData = 1
	pageTypeBlob = 2

	slotLive    = 0
	slotDead    = 1
	slotBlobRef = 2

	blobRefSize = 12 // firstPage u64 + totalLen u32

	// maxInline is the largest record stored inline in a data page.
	maxInline = PageSize - pageHeaderSize - slotSize
)

type slot struct {
	oid   xid.OID
	off   uint16
	len   uint16
	flags uint16
}

func pageType(p []byte) byte       { return p[0] }
func setPageType(p []byte, t byte) { p[0] = t }

func pageNSlots(p []byte) int        { return int(binary.LittleEndian.Uint16(p[2:4])) }
func setPageNSlots(p []byte, n int)  { binary.LittleEndian.PutUint16(p[2:4], uint16(n)) }
func pageFreeOff(p []byte) int       { return int(binary.LittleEndian.Uint16(p[4:6])) }
func setPageFreeOff(p []byte, o int) { binary.LittleEndian.PutUint16(p[4:6], uint16(o)) }
func pageNext(p []byte) uint64       { return binary.LittleEndian.Uint64(p[8:16]) }
func setPageNext(p []byte, n uint64) { binary.LittleEndian.PutUint64(p[8:16], n) }

func blobChunkLen(p []byte) int       { return int(binary.LittleEndian.Uint16(p[2:4])) }
func setBlobChunkLen(p []byte, n int) { binary.LittleEndian.PutUint16(p[2:4], uint16(n)) }

func initDataPage(p []byte) {
	for i := range p {
		p[i] = 0
	}
	setPageType(p, pageTypeData)
	setPageFreeOff(p, PageSize)
}

func initBlobPage(p []byte) {
	for i := range p {
		p[i] = 0
	}
	setPageType(p, pageTypeBlob)
}

func getSlot(p []byte, i int) slot {
	b := p[pageHeaderSize+i*slotSize:]
	return slot{
		oid:   xid.OID(binary.LittleEndian.Uint64(b[0:8])),
		off:   binary.LittleEndian.Uint16(b[8:10]),
		len:   binary.LittleEndian.Uint16(b[10:12]),
		flags: binary.LittleEndian.Uint16(b[12:14]),
	}
}

func putSlot(p []byte, i int, s slot) {
	b := p[pageHeaderSize+i*slotSize:]
	binary.LittleEndian.PutUint64(b[0:8], uint64(s.oid))
	binary.LittleEndian.PutUint16(b[8:10], s.off)
	binary.LittleEndian.PutUint16(b[10:12], s.len)
	binary.LittleEndian.PutUint16(b[12:14], s.flags)
	binary.LittleEndian.PutUint16(b[14:16], 0)
}

// pageContigFree returns the bytes available between the slot array and the
// record area of a data page.
func pageContigFree(p []byte) int {
	return pageFreeOff(p) - pageHeaderSize - pageNSlots(p)*slotSize
}

// pageLiveBytes sums live record bytes and counts live slots.
func pageLiveBytes(p []byte) (bytes, liveSlots int) {
	n := pageNSlots(p)
	for i := 0; i < n; i++ {
		s := getSlot(p, i)
		if s.flags != slotDead {
			bytes += int(s.len)
			liveSlots++
		}
	}
	return bytes, liveSlots
}

// pageFreeAfterCompaction returns the contiguous free space a compaction
// would yield (dead slots removed, live records packed).
func pageFreeAfterCompaction(p []byte) int {
	bytes, live := pageLiveBytes(p)
	return PageSize - pageHeaderSize - live*slotSize - bytes
}

// compactPage packs live records to the end of the page and removes dead
// slots. It returns the mapping from oid to new slot index so the caller can
// fix its directory.
func compactPage(p []byte) map[xid.OID]int {
	n := pageNSlots(p)
	type rec struct {
		s    slot
		data []byte
	}
	var recs []rec
	for i := 0; i < n; i++ {
		s := getSlot(p, i)
		if s.flags == slotDead {
			continue
		}
		d := make([]byte, s.len)
		copy(d, p[s.off:int(s.off)+int(s.len)])
		recs = append(recs, rec{s, d})
	}
	// Rebuild.
	moved := make(map[xid.OID]int, len(recs))
	freeOff := PageSize
	for i, r := range recs {
		freeOff -= len(r.data)
		copy(p[freeOff:], r.data)
		r.s.off = uint16(freeOff)
		putSlot(p, i, r.s)
		moved[r.s.oid] = i
	}
	setPageNSlots(p, len(recs))
	setPageFreeOff(p, freeOff)
	// Zero the gap so checksums are deterministic.
	for i := pageHeaderSize + len(recs)*slotSize; i < freeOff; i++ {
		p[i] = 0
	}
	return moved
}

func pageCheck(pageNo uint64, p []byte) error {
	if pageType(p) == pageTypeData {
		n := pageNSlots(p)
		if pageHeaderSize+n*slotSize > pageFreeOff(p) || pageFreeOff(p) > PageSize {
			return fmt.Errorf("storage: page %d: corrupt slot directory", pageNo)
		}
	}
	return nil
}
