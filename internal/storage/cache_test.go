package storage

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/xid"
)

func TestCacheBasics(t *testing.T) {
	c := NewCache()
	oid := c.AllocOID()
	if oid.IsNil() {
		t.Fatal("AllocOID returned nil oid")
	}
	if !c.Create(oid, []byte("a")) {
		t.Fatal("Create failed")
	}
	if c.Create(oid, []byte("b")) {
		t.Fatal("duplicate Create succeeded")
	}
	got, ok := c.Read(oid)
	if !ok || string(got) != "a" {
		t.Fatalf("Read = %q,%v", got, ok)
	}
	prev, existed := c.Install(oid, []byte("c"))
	if !existed || string(prev) != "a" {
		t.Fatalf("Install prev = %q,%v", prev, existed)
	}
	data, ok := c.Delete(oid)
	if !ok || string(data) != "c" {
		t.Fatalf("Delete = %q,%v", data, ok)
	}
	if _, ok := c.Read(oid); ok {
		t.Fatal("Read after Delete succeeded")
	}
}

func TestCacheReadReturnsCopy(t *testing.T) {
	c := NewCache()
	c.Create(1, []byte("abc"))
	got, _ := c.Read(1)
	got[0] = 'X'
	again, _ := c.Read(1)
	if string(again) != "abc" {
		t.Fatal("Read exposed the internal buffer")
	}
}

func TestCacheObjectLatchedWrite(t *testing.T) {
	c := NewCache()
	c.Create(1, []byte{0})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				o := c.Object(1)
				o.Lat.Lock()
				d := o.Data()
				cp := make([]byte, len(d))
				copy(cp, d)
				cp[0]++
				o.SetData(cp)
				o.Lat.Unlock()
			}
		}()
	}
	wg.Wait()
	got, _ := c.Read(1)
	if got[0] != byte(8*1000%256) {
		t.Fatalf("counter = %d, want %d (lost update under latch)", got[0], byte(8*1000%256))
	}
}

func TestCacheAllocAfterSetNextOID(t *testing.T) {
	c := NewCache()
	c.SetNextOID(100)
	if oid := c.AllocOID(); oid != 101 {
		t.Fatalf("AllocOID after SetNextOID(100) = %v, want ob101", oid)
	}
	c.SetNextOID(50) // must not regress
	if oid := c.AllocOID(); oid != 102 {
		t.Fatalf("AllocOID = %v, want ob102", oid)
	}
}

func TestCacheForEach(t *testing.T) {
	c := NewCache()
	for i := 1; i <= 10; i++ {
		c.Create(xid.OID(i), []byte{byte(i)})
	}
	n := 0
	c.ForEach(func(oid xid.OID, data []byte) bool {
		if data[0] != byte(oid) {
			t.Errorf("oid %v has data %v", oid, data)
		}
		n++
		return true
	})
	if n != 10 {
		t.Fatalf("ForEach visited %d, want 10", n)
	}
}

func TestMemBackendRoundTrip(t *testing.T) {
	b := NewMemBackend()
	b.Put(1, []byte("x"))
	b.Put(2, []byte("y"))
	b.Delete(1)
	got := map[xid.OID][]byte{}
	b.LoadAll(func(oid xid.OID, data []byte) error {
		got[oid] = data
		return nil
	})
	if len(got) != 1 || !bytes.Equal(got[2], []byte("y")) {
		t.Fatalf("LoadAll = %v", got)
	}
}

func TestPageBackendImplementsBackend(t *testing.T) {
	var _ Backend = PageBackend{}
	var _ Backend = NullBackend{}
	var _ Backend = (*MemBackend)(nil)
}
