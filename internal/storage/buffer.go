package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"repro/internal/faultfs"
)

// ErrPoisoned marks a store whose backing file is in an indeterminate
// state after a failed write or fsync (on Linux a failed fsync may mark
// dirty pages clean, so retrying can "succeed" without persisting
// anything). A poisoned store refuses all further I/O rather than let a
// later checkpoint silently claim durability.
var ErrPoisoned = errors.New("storage: store poisoned by an earlier write/sync failure")

// pool is a buffer pool of fixed capacity over the store file, with clock
// (second-chance) eviction. Page 0 of the file is the store header; data
// pages start at 1. The pool is not internally synchronized: PageStore
// serializes access.
type pool struct {
	f         faultfs.File
	capacity  int
	frames    map[uint64]*frame
	clock     []*frame
	hand      int
	pageCount uint64 // pages in the file, including header page 0
	dw        *dwJournal
	err       error // sticky ErrPoisoned state
}

// poison records an I/O failure that leaves the on-disk state
// indeterminate; every later pool operation fails with ErrPoisoned. The
// failing call itself returns the original cause.
func (p *pool) poison(cause error) error {
	if p.err == nil {
		p.err = fmt.Errorf("%w: %w", ErrPoisoned, cause)
	}
	return cause
}

type frame struct {
	pageNo uint64
	data   []byte
	dirty  bool
	pins   int
	ref    bool
}

var poolCRC = crc32.MakeTable(crc32.Castagnoli)

// pageChecksum computes the stored page checksum (covering everything but
// the checksum field itself).
func pageChecksum(p []byte) uint32 {
	crc := crc32.Update(0, poolCRC, p[:16])
	return crc32.Update(crc, poolCRC, p[20:])
}

func sealPage(p []byte) {
	binary.LittleEndian.PutUint32(p[16:20], pageChecksum(p))
}

func verifyPage(pageNo uint64, p []byte) error {
	want := binary.LittleEndian.Uint32(p[16:20])
	if got := pageChecksum(p); got != want {
		if isZeroPage(p) {
			return nil // never-written (hole) page: legitimately free
		}
		return fmt.Errorf("storage: page %d checksum mismatch (torn write?)", pageNo)
	}
	return nil
}

func isZeroPage(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}

func newPool(f faultfs.File, capacity int, dw *dwJournal) (*pool, error) {
	if capacity < 4 {
		capacity = 4
	}
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size()%PageSize != 0 {
		// A torn append: ignore the partial trailing page.
		if err := f.Truncate(st.Size() - st.Size()%PageSize); err != nil {
			return nil, err
		}
		st, err = f.Stat()
		if err != nil {
			return nil, err
		}
	}
	return &pool{
		f:         f,
		capacity:  capacity,
		frames:    make(map[uint64]*frame),
		pageCount: uint64(st.Size() / PageSize),
		dw:        dw,
	}, nil
}

// get pins and returns the frame for pageNo, reading it if absent.
func (p *pool) get(pageNo uint64) (*frame, error) {
	if p.err != nil {
		return nil, p.err
	}
	if fr, ok := p.frames[pageNo]; ok {
		fr.pins++
		fr.ref = true
		return fr, nil
	}
	fr, err := p.newFrame(pageNo)
	if err != nil {
		return nil, err
	}
	if _, err := p.f.ReadAt(fr.data, int64(pageNo)*PageSize); err != nil && !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("storage: read page %d: %w", pageNo, err)
	}
	if err := verifyPage(pageNo, fr.data); err != nil {
		return nil, err
	}
	return fr, nil
}

// alloc appends a zeroed page to the file and returns its pinned frame.
func (p *pool) alloc() (*frame, uint64, error) {
	if p.err != nil {
		return nil, 0, p.err
	}
	pageNo := p.pageCount
	p.pageCount++
	fr, err := p.newFrame(pageNo)
	if err != nil {
		return nil, 0, err
	}
	fr.dirty = true
	return fr, pageNo, nil
}

// newFrame makes room (evicting if needed) and installs a pinned zero frame
// for pageNo.
func (p *pool) newFrame(pageNo uint64) (*frame, error) {
	if len(p.clock) >= p.capacity {
		if err := p.evictOne(); err != nil {
			return nil, err
		}
	}
	fr := &frame{pageNo: pageNo, data: make([]byte, PageSize), pins: 1, ref: true}
	p.frames[pageNo] = fr
	p.clock = append(p.clock, fr)
	return fr, nil
}

// evictOne runs the clock hand to find an unpinned frame, writing it out if
// dirty, and removes it.
func (p *pool) evictOne() error {
	for sweep := 0; sweep < 2*len(p.clock)+1; sweep++ {
		if len(p.clock) == 0 {
			break
		}
		p.hand %= len(p.clock)
		fr := p.clock[p.hand]
		if fr.pins > 0 {
			p.hand++
			continue
		}
		if fr.ref {
			fr.ref = false
			p.hand++
			continue
		}
		if fr.dirty {
			if err := p.writeFrame(fr); err != nil {
				return err
			}
		}
		delete(p.frames, fr.pageNo)
		p.clock = append(p.clock[:p.hand], p.clock[p.hand+1:]...)
		return nil
	}
	return fmt.Errorf("storage: buffer pool exhausted (%d frames, all pinned)", len(p.clock))
}

// unpin releases a pin; dirty marks the page modified.
func (p *pool) unpin(fr *frame, dirty bool) {
	if fr.pins <= 0 {
		panic("storage: unpin of unpinned frame")
	}
	fr.pins--
	if dirty {
		fr.dirty = true
	}
}

// writeFrame seals and writes one page in place. The double-write journal,
// when active, has already captured the page image. A failed in-place
// write poisons the pool: the page may be half-written on disk.
func (p *pool) writeFrame(fr *frame) error {
	sealPage(fr.data)
	if _, err := p.f.WriteAt(fr.data, int64(fr.pageNo)*PageSize); err != nil {
		return p.poison(fmt.Errorf("storage: write page %d: %w", fr.pageNo, err))
	}
	fr.dirty = false
	return nil
}

// flushAll writes every dirty frame, using the double-write journal for
// torn-write protection, and fsyncs the store file. Any failure poisons
// the pool: writeFrame has already marked flushed frames clean, so
// without the sticky error a retry would find nothing dirty and
// "succeed" even though the failed fsync persisted nothing.
func (p *pool) flushAll() error {
	if p.err != nil {
		return p.err
	}
	var dirty []*frame
	for _, fr := range p.frames {
		if fr.dirty {
			dirty = append(dirty, fr)
		}
	}
	if len(dirty) == 0 {
		if err := p.f.Sync(); err != nil {
			return p.poison(err)
		}
		return nil
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].pageNo < dirty[j].pageNo })
	if p.dw != nil {
		for _, fr := range dirty {
			sealPage(fr.data)
		}
		if err := p.dw.capture(dirty); err != nil {
			return p.poison(err)
		}
	}
	for _, fr := range dirty {
		if err := p.writeFrame(fr); err != nil {
			return err
		}
	}
	if err := p.f.Sync(); err != nil {
		return p.poison(err)
	}
	if p.dw != nil {
		if err := p.dw.clear(); err != nil {
			return p.poison(err)
		}
	}
	return nil
}
