package storage

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/xid"
)

// TestFailedSyncPoisonsStore is the regression test for the silent-
// retry bug class: on the seed code, a failed fsync in Sync left every
// flushed frame marked clean, so a retried Sync found nothing dirty and
// returned nil — claiming durability for pages a failed fsync may never
// have written. The store must stay poisoned instead.
func TestFailedSyncPoisonsStore(t *testing.T) {
	mfs := faultfs.NewMem()
	s, err := OpenPageStore("/db", PageStoreOptions{FS: mfs})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(1, []byte("value")); err != nil {
		t.Fatal(err)
	}
	mfs.SetScript(faultfs.NewScript(faultfs.Rule{
		Op: faultfs.OpSync, Path: "store.dat", Nth: 1, Action: faultfs.ActError,
	}))
	if err := s.Sync(); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("first sync = %v, want injected fault", err)
	}
	// The retry must refuse, not silently succeed.
	if err := s.Sync(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("sync after failed fsync = %v, want ErrPoisoned", err)
	}
	if err := s.Put(2, []byte("more")); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("put after failed fsync = %v, want ErrPoisoned", err)
	}
	if _, _, err := s.Get(1); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("get after failed fsync = %v, want ErrPoisoned", err)
	}
}

// TestFailedInPlaceWritePoisonsStore: a failed page write (in place,
// after the journal capture) also poisons.
func TestFailedInPlaceWritePoisonsStore(t *testing.T) {
	mfs := faultfs.NewMem()
	s, err := OpenPageStore("/db", PageStoreOptions{FS: mfs})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(1, []byte("value")); err != nil {
		t.Fatal(err)
	}
	mfs.SetScript(faultfs.NewScript(faultfs.Rule{
		Op: faultfs.OpWrite, Path: "store.dat", Nth: 1, Action: faultfs.ActError,
	}))
	if err := s.Sync(); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("sync = %v, want injected fault", err)
	}
	if err := s.Sync(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("retry = %v, want ErrPoisoned", err)
	}
}

// populate fills a store with enough records to dirty several pages and
// returns their oids and values.
func populate(t *testing.T, s *PageStore, n int) map[xid.OID][]byte {
	t.Helper()
	want := make(map[xid.OID][]byte, n)
	for i := 1; i <= n; i++ {
		oid := xid.OID(i)
		val := bytes.Repeat([]byte{byte(i)}, 100+i)
		if err := s.Put(oid, val); err != nil {
			t.Fatal(err)
		}
		want[oid] = val
	}
	return want
}

func checkAll(t *testing.T, s *PageStore, want map[xid.OID][]byte) {
	t.Helper()
	for oid, val := range want {
		got, ok, err := s.Get(oid)
		if err != nil || !ok || !bytes.Equal(got, val) {
			t.Fatalf("oid %v: got %d bytes, ok=%v, err=%v", oid, len(got), ok, err)
		}
	}
}

// TestDoubleWriteHealsTornPage: crash mid in-place page write, leaving
// 512 surviving bytes of an 8 KiB page. The double-write journal was
// captured and fsynced before the in-place writes, so reopening must
// heal the torn page and lose nothing.
func TestDoubleWriteHealsTornPage(t *testing.T) {
	mfs := faultfs.NewMem()
	s, err := OpenPageStore("/db", PageStoreOptions{FS: mfs})
	if err != nil {
		t.Fatal(err)
	}
	want := populate(t, s, 30)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// Overwrite a record so its page is dirty again, then crash tearing
	// the first in-place page write of the next sync.
	want[5] = bytes.Repeat([]byte{0xaa}, 200)
	if err := s.Put(5, want[5]); err != nil {
		t.Fatal(err)
	}
	mfs.SetScript(faultfs.NewScript(faultfs.Rule{
		Op: faultfs.OpWrite, Path: "store.dat", Nth: 1, Action: faultfs.ActCrash, Keep: 512,
	}))
	if err := s.Sync(); !errors.Is(err, faultfs.ErrCrashed) {
		t.Fatalf("sync = %v, want crash", err)
	}
	s.Close()

	// The journal capture was synced before the in-place write, so it
	// survives even in drop-unsynced mode and heals the torn page.
	for _, mode := range []faultfs.CrashMode{faultfs.KeepAll, faultfs.DropUnsynced} {
		img := mfs.CrashImage(mode)
		s2, err := OpenPageStore("/db", PageStoreOptions{FS: img})
		if err != nil {
			t.Fatalf("%v: reopen: %v", mode, err)
		}
		checkAll(t, s2, want)
		s2.Close()
	}
}

// TestTornPageDetectedWithoutDoubleWrite: same tear with the journal
// disabled must NOT open silently — the page checksum catches it.
func TestTornPageDetectedWithoutDoubleWrite(t *testing.T) {
	mfs := faultfs.NewMem()
	s, err := OpenPageStore("/db", PageStoreOptions{FS: mfs, NoDoubleWrite: true})
	if err != nil {
		t.Fatal(err)
	}
	want := populate(t, s, 30)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	want[5] = bytes.Repeat([]byte{0xaa}, 200)
	if err := s.Put(5, want[5]); err != nil {
		t.Fatal(err)
	}
	mfs.SetScript(faultfs.NewScript(faultfs.Rule{
		Op: faultfs.OpWrite, Path: "store.dat", Nth: 1, Action: faultfs.ActCrash, Keep: 512,
	}))
	if err := s.Sync(); !errors.Is(err, faultfs.ErrCrashed) {
		t.Fatalf("sync = %v, want crash", err)
	}
	s.Close()

	img := mfs.CrashImage(faultfs.KeepAll)
	s2, err := OpenPageStore("/db", PageStoreOptions{FS: img, NoDoubleWrite: true})
	if err == nil {
		s2.Close()
		t.Fatal("torn page opened silently without double-write journal")
	}
}

// TestCrashDuringJournalCaptureLeavesStoreIntact: a crash while writing
// the journal itself (before any in-place write) must leave the store
// exactly at its previous synced state.
func TestCrashDuringJournalCaptureLeavesStoreIntact(t *testing.T) {
	mfs := faultfs.NewMem()
	s, err := OpenPageStore("/db", PageStoreOptions{FS: mfs})
	if err != nil {
		t.Fatal(err)
	}
	want := populate(t, s, 10)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(3, []byte("never-synced")); err != nil {
		t.Fatal(err)
	}
	mfs.SetScript(faultfs.NewScript(faultfs.Rule{
		Op: faultfs.OpWrite, Path: "store.dw", Nth: 1, Action: faultfs.ActCrash, Keep: 4,
	}))
	if err := s.Sync(); !errors.Is(err, faultfs.ErrCrashed) {
		t.Fatalf("sync = %v, want crash", err)
	}
	s.Close()
	s2, err := OpenPageStore("/db", PageStoreOptions{FS: mfs.CrashImage(faultfs.DropUnsynced)})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	checkAll(t, s2, want) // oid 3 still has its old value
}

// TestPageStoreOnMemFSRoundTrip: the store works end to end on the
// in-memory filesystem, across a clean close and reopen.
func TestPageStoreOnMemFSRoundTrip(t *testing.T) {
	mfs := faultfs.NewMem()
	s, err := OpenPageStore("/db", PageStoreOptions{FS: mfs})
	if err != nil {
		t.Fatal(err)
	}
	want := populate(t, s, 20)
	// A blob-sized record exercises overflow chains through the fs seam.
	want[99] = bytes.Repeat([]byte("blob"), 5000)
	if err := s.Put(99, want[99]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenPageStore("/db", PageStoreOptions{FS: mfs})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	checkAll(t, s2, want)
}
