package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultfs"
)

// SegmentedLog is the pipelined group-commit write-ahead log: a chain of
// fixed-size(ish) segment files (see segment.go) fed by a leader/cohort
// force protocol.
//
// Append is the enqueue fast path: it assigns the LSN and frames the
// record into an in-memory slab under a short latch — no file I/O — so
// appends never wait behind an fsync. Flush is the force: the first
// caller that finds no force in flight becomes the leader, swaps the
// slab for an empty spare, writes the whole batch with one file write,
// issues one fsync, and wakes the cohort; callers that arrive while a
// force is in flight park on the cohort condvar and are covered by a
// later batch. Appends keep landing in the fresh slab while the leader
// is on the disk, which is what pipelines commit throughput: batch N+1
// forms while batch N syncs, and commits-per-fsync grows with offered
// load instead of every committer paying a private force.
//
// A failed write or fsync poisons the log exactly like FileLog: the
// batch's records are in an indeterminate state on disk, so the leader
// returns the cause, every parked follower gets ErrPoisoned (no commit
// is ever acked over a hole), and all later appends and forces refuse.
type SegmentedLog struct {
	fsys     faultfs.FS
	dir      string
	segBytes int64
	syncOn   bool
	window   time.Duration

	// Cohort state: force leadership, the durability watermark the
	// cohort parks on, and the force counters. Ordered before the
	// append latch; the two are never held together — the leader
	// releases stateMu before draining the slab.
	//asset:latch order=70
	stateMu    sync.Mutex
	cond       *sync.Cond
	inFlight   bool   // a leader is off the latch forcing a batch
	durableLSN uint64 // every record at or below this LSN is forced
	forces     uint64 // physical forces (non-empty batches written)
	batchRecs  uint64 // records covered by those forces

	// Enqueue fast path: the slab the next batch drains. Held only for
	// the in-memory frame append and the swap; never across I/O.
	//asset:latch order=80
	appendMu  sync.Mutex
	slab      []byte
	spare     []byte // recycled batch buffer, swapped in at drain
	slabFirst uint64 // LSN of the slab's first record (0 = empty slab)
	slabRecs  uint64
	nextLSN   uint64
	lastLSN   atomic.Uint64

	closed   atomic.Bool
	poisoned atomic.Bool
	perr     error // set once, before poisoned; wraps ErrPoisoned

	// Writer-side state, owned by whoever holds force leadership
	// (inFlight) — the leader, Truncate, or Close. Not latched: the
	// leadership protocol serializes access.
	cur     faultfs.File
	curSeq  uint64
	curSize int64
	man     *manifest
}

// SegmentedOptions configures OpenSegmented.
type SegmentedOptions struct {
	// SegmentBytes is the rotation threshold: a batch that lands on a
	// segment already at or past it goes to a fresh segment. 0 picks
	// the default (16 MiB). Segments may overshoot by up to one batch.
	SegmentBytes int64
	// Sync makes every force an fsync (durable commits); false drains
	// to the OS cache only, the fast mode.
	Sync bool
	// Window makes the force leader linger before draining the slab,
	// letting more committers join the batch (latency for throughput).
	Window time.Duration
}

// DefaultSegmentBytes is the rotation threshold when
// SegmentedOptions.SegmentBytes is zero.
const DefaultSegmentBytes = 16 << 20

// OpenSegmented opens (creating if needed) the segmented log in dir and
// positions appends after the last intact record of the chain.
func OpenSegmented(dir string, opts SegmentedOptions) (*SegmentedLog, error) {
	return OpenSegmentedFS(faultfs.OS{}, dir, opts)
}

// OpenSegmentedFS is OpenSegmented over an injected filesystem.
func OpenSegmentedFS(fsys faultfs.FS, dir string, opts SegmentedOptions) (*SegmentedLog, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	info, err := scanChain(fsys, dir, 1, nil)
	if err != nil {
		return nil, err
	}
	l := &SegmentedLog{
		fsys:     fsys,
		dir:      dir,
		segBytes: opts.SegmentBytes,
		syncOn:   opts.Sync,
		window:   opts.Window,
		nextLSN:  info.nextLSN,
		man:      &manifest{},
	}
	l.cond = sync.NewCond(&l.stateMu)
	l.lastLSN.Store(info.nextLSN - 1)
	l.durableLSN = info.nextLSN - 1

	for _, e := range info.entries {
		if e.legacy {
			l.man.Legacy = true
			continue
		}
		l.man.Segments = append(l.man.Segments, manifestSegment{Seq: e.seq, FirstLSN: e.firstLSN})
	}

	manifestDirty := info.man == nil || info.man.Legacy != l.man.Legacy ||
		len(info.man.Segments) != len(l.man.Segments)

	if info.lastIsSegment {
		// Adopt the final segment as the write target, dropping its torn
		// tail the way FileLog.Open does.
		f, err := fsys.OpenFile(info.lastPath, os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: open %s: %w", info.lastPath, err)
		}
		if err := f.Truncate(info.lastEnd); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		if _, err := f.Seek(info.lastEnd, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		l.cur, l.curSeq, l.curSize = f, info.lastSeq, info.lastEnd
	} else {
		// Fresh database, legacy-only chain, or a torn trailing segment
		// whose header never became durable: start a new segment. A
		// legacy base first has its torn tail dropped so the chain stays
		// LSN-contiguous.
		if info.legacyPath != "" {
			lf, err := fsys.OpenFile(info.legacyPath, os.O_RDWR, 0o644)
			if err != nil {
				return nil, err
			}
			if err := lf.Truncate(info.legacyEnd); err != nil {
				lf.Close()
				return nil, fmt.Errorf("wal: truncate legacy torn tail: %w", err)
			}
			if err := lf.Sync(); err != nil {
				lf.Close()
				return nil, err
			}
			if err := lf.Close(); err != nil {
				return nil, err
			}
		}
		// A chain with no adoptable segment always starts numbering at 1:
		// either nothing exists yet, or only a legacy base does (a torn
		// probed wal-000001.seg is recreated in place by O_TRUNC).
		seq := uint64(1)
		f, err := createSegment(fsys, dir, seq, info.nextLSN)
		if err != nil {
			return nil, err
		}
		l.cur, l.curSeq, l.curSize = f, seq, segHeaderSize
		l.man.Segments = append(l.man.Segments, manifestSegment{Seq: seq, FirstLSN: info.nextLSN})
		manifestDirty = true
	}
	if manifestDirty {
		if err := writeManifest(fsys, dir, l.man); err != nil {
			l.cur.Close()
			return nil, err
		}
	}
	return l, nil
}

// createSegment creates a fresh segment file with a durable header.
func createSegment(fsys faultfs.FS, dir string, seq, firstLSN uint64) (faultfs.File, error) {
	f, err := fsys.OpenFile(segmentPath(dir, seq), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := encodeSegmentHeader(seq, firstLSN)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	// The header is fsynced before the segment is linked into the
	// manifest, so a manifest-listed segment always has a durable
	// header; a crash in between leaves an unlisted trailing segment
	// recovery discovers by probing.
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	// The directory entry must be as durable as the header: a segment
	// whose entry is lost in a crash takes every record forced into it
	// along — acked-durable commits silently gone behind a clean chain
	// end. Forcing it here, before the first batch can land (and so
	// before any force into this segment is acked), closes that window.
	if err := fsys.SyncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// Append encodes r, assigns it the next LSN (stored into r.LSN), and
// frames it into the pending batch slab. No file I/O happens here; the
// record becomes durable when a force covering its LSN completes.
// Allocation-free once the slab has warmed to the batch working set —
// verified by the compiler on every lint run, not just by the
// AllocsPerRun benchmark.
//asset:noalloc
func (l *SegmentedLog) Append(r *Record) (uint64, error) {
	l.appendMu.Lock()
	defer l.appendMu.Unlock()
	if l.closed.Load() {
		return 0, errAppendClosed
	}
	if l.poisoned.Load() {
		return 0, l.perr
	}
	r.LSN = l.nextLSN
	l.nextLSN++
	if l.slabFirst == 0 {
		l.slabFirst = r.LSN
	}
	l.slab = appendFrame(l.slab, r)
	l.slabRecs++
	l.lastLSN.Store(r.LSN)
	return r.LSN, nil
}

// takeBatch swaps the slab for the recycled spare and returns the
// pending batch. Called by whoever holds force leadership. high is the
// LSN of the batch's last record (0 for an empty batch), computed while
// the append latch is held: appends race the leader here — the core
// appends under m.mu, but the leader forces off-mutex under GroupCommit
// — and a record that slips into the fresh slab after the swap belongs
// to the NEXT batch. Reading lastLSN after the swap would cover it with
// this batch's watermark and ack its commit without its bytes ever
// reaching disk.
func (l *SegmentedLog) takeBatch() (batch []byte, first, recs, high uint64) {
	l.appendMu.Lock()
	batch, first, recs = l.slab, l.slabFirst, l.slabRecs
	if recs > 0 {
		// LSNs are assigned contiguously under appendMu, so the slab
		// covers exactly [first, first+recs-1].
		high = first + recs - 1
	}
	l.slab = l.spare[:0]
	l.spare = nil
	l.slabFirst, l.slabRecs = 0, 0
	l.appendMu.Unlock()
	return batch, first, recs, high
}

// recycleBatch returns a drained batch buffer for reuse as the next
// spare slab.
func (l *SegmentedLog) recycleBatch(batch []byte) {
	l.appendMu.Lock()
	if l.spare == nil {
		l.spare = batch[:0]
	}
	l.appendMu.Unlock()
}

// Flush forces every record appended so far, sharing the physical force
// with concurrent callers: one caller leads, the rest park and are woken
// when a force covering their records completes. A follower of a failed
// batch gets an error wrapping ErrPoisoned — its records may sit after a
// hole, so acking them would claim durability the disk cannot back.
func (l *SegmentedLog) Flush() error {
	need := l.lastLSN.Load()
	l.stateMu.Lock()
	defer l.stateMu.Unlock()
	for {
		// Records the cohort already forced stay good even if the log
		// was poisoned afterwards: durableLSN only ever advances over
		// batches whose fsync succeeded.
		if l.durableLSN >= need {
			return nil
		}
		if l.poisoned.Load() {
			return l.perr
		}
		if l.inFlight {
			l.cond.Wait()
			continue
		}
		// Become the force leader for everything pending, this caller's
		// records included.
		l.inFlight = true
		l.stateMu.Unlock()
		if l.window > 0 {
			time.Sleep(l.window) // accumulate followers into the batch
		}
		batch, first, recs, high := l.takeBatch()
		err := l.writeBatch(batch, first)
		l.recycleBatch(batch)
		l.stateMu.Lock()
		l.inFlight = false
		if err != nil {
			l.poisonLocked(err)
			l.cond.Broadcast() // wake the cohort to see the poison
			return err         // the leader reports the cause itself
		}
		if recs > 0 {
			l.forces++
			l.batchRecs += recs
			// Advance the watermark to exactly the batch's high LSN — an
			// empty batch leaves it alone, and it never retreats.
			if high > l.durableLSN {
				l.durableLSN = high
			}
		}
		l.cond.Broadcast()
	}
}

// poisonLocked records the first failure; later calls keep the original
// cause. Caller holds stateMu.
func (l *SegmentedLog) poisonLocked(cause error) {
	if !l.poisoned.Load() {
		l.perr = fmt.Errorf("%w: %w", ErrPoisoned, cause)
		l.poisoned.Store(true)
	}
}

// writeBatch writes one drained batch to the chain, rotating to a fresh
// segment first when the current one is full. Leader-owned; no latches
// held — appends keep flowing into the new slab meanwhile.
func (l *SegmentedLog) writeBatch(batch []byte, firstLSN uint64) error {
	if len(batch) == 0 {
		return nil
	}
	if l.curSize >= l.segBytes {
		if err := l.rotate(firstLSN); err != nil {
			return err
		}
	}
	if _, err := l.cur.Write(batch); err != nil {
		return err
	}
	l.curSize += int64(len(batch))
	if l.syncOn {
		if err := l.cur.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// rotate seals the current segment and switches writing to a fresh one
// whose first record will carry firstLSN. The seal fsync runs even in
// buffered mode: only the final segment of the chain may ever have a
// torn tail, which is what lets recovery treat any mid-chain hole as
// corruption instead of silently replaying around it.
//asset:durable before=createSegment
func (l *SegmentedLog) rotate(firstLSN uint64) error {
	if err := l.cur.Sync(); err != nil {
		return err
	}
	if err := l.cur.Close(); err != nil {
		return err
	}
	seq := l.curSeq + 1
	f, err := createSegment(l.fsys, l.dir, seq, firstLSN)
	if err != nil {
		return err
	}
	l.man.Segments = append(l.man.Segments, manifestSegment{Seq: seq, FirstLSN: firstLSN})
	if err := writeManifest(l.fsys, l.dir, l.man); err != nil {
		f.Close()
		return err
	}
	l.cur, l.curSeq, l.curSize = f, seq, segHeaderSize
	return nil
}

// acquireWriter takes force leadership for an exclusive writer-side
// operation (Truncate, Close), waiting out any in-flight force.
func (l *SegmentedLog) acquireWriter() {
	l.stateMu.Lock()
	for l.inFlight {
		l.cond.Wait()
	}
	l.inFlight = true
	l.stateMu.Unlock()
}

// releaseWriter drops leadership. A non-nil err is recorded as poison;
// otherwise high — the highest LSN the operation actually drained and
// settled, 0 for none — advances the durability watermark. The caller
// reports what it drained rather than this function reading lastLSN,
// because appends concurrent with the operation land in the fresh slab:
// marking them settled here would let a later Flush no-op over records
// that were never written.
func (l *SegmentedLog) releaseWriter(err error, high uint64) {
	l.stateMu.Lock()
	l.inFlight = false
	if err != nil {
		l.poisonLocked(err)
	} else if high > l.durableLSN {
		l.durableLSN = high
	}
	l.cond.Broadcast()
	l.stateMu.Unlock()
}

// ForceDurable drains the pending batch and fsyncs the chain regardless
// of the Sync policy. It is the checkpoint's write-ahead barrier: a
// checkpoint makes the store durably reflect every committed record, so
// before its first store write the log must be durable through those
// records. Otherwise a crash can leave the store ahead of a shorter
// durable log prefix (sealed by an earlier rotation), and replaying that
// stale prefix over the newer store would resurrect old images — the
// failure mode the crash matrix's buffered group-commit sweep catches.
func (l *SegmentedLog) ForceDurable() error {
	l.acquireWriter()
	high, err := l.forceDurable()
	l.releaseWriter(err, high)
	return err
}

// forceDurable drains and fsyncs, returning the high LSN of the batch
// it drained (0 for an empty one) for the release watermark.
func (l *SegmentedLog) forceDurable() (uint64, error) {
	if l.poisoned.Load() {
		return 0, l.perr
	}
	batch, first, _, high := l.takeBatch()
	err := l.writeBatch(batch, first)
	l.recycleBatch(batch)
	if err != nil {
		return 0, err
	}
	if err := l.cur.Sync(); err != nil {
		return 0, err
	}
	return high, nil
}

// Truncate drops the fully-applied chain after a quiescent checkpoint:
// a fresh segment (continuing the LSN sequence) becomes the entire log,
// the manifest is cut over to it atomically, and only then are the old
// segment files — and any legacy wal.log base — deleted. A crash
// anywhere in between recovers either the old chain or the new one;
// orphaned files below the manifest's first segment are ignored by
// recovery and swept on the next truncation-free open.
func (l *SegmentedLog) Truncate() error {
	l.acquireWriter()
	high, err := l.truncateChain()
	l.releaseWriter(err, high)
	return err
}

// truncateChain performs the cutover, returning the high LSN of the
// pending batch it drained into the old chain (0 for an empty one) so
// the release can settle exactly those records.
//
// Seal-before-publish: the old chain's fsync must dominate the new
// segment's creation, or a crash between them loses appended records
// (the PR 6 truncation-without-seal bug, §11).
//asset:durable before=createSegment
func (l *SegmentedLog) truncateChain() (uint64, error) {
	if l.poisoned.Load() {
		return 0, l.perr
	}
	// Drain whatever is still pending into the old chain first, so the
	// cutover never discards an appended record.
	batch, first, _, high := l.takeBatch()
	err := l.writeBatch(batch, first)
	l.recycleBatch(batch)
	if err != nil {
		return 0, err
	}
	// Seal the old chain before the new segment's header can become
	// durable: if a crash lands between the two, recovery must find the
	// old chain complete up to exactly the new segment's first LSN, not a
	// gap where buffered records evaporated (the crash matrix sweeps this
	// boundary).
	if err := l.cur.Sync(); err != nil {
		return 0, err
	}
	l.appendMu.Lock()
	next := l.nextLSN
	l.appendMu.Unlock()
	seq := l.curSeq + 1
	f, err := createSegment(l.fsys, l.dir, seq, next)
	if err != nil {
		return 0, err
	}
	old := l.man
	l.man = &manifest{Segments: []manifestSegment{{Seq: seq, FirstLSN: next}}}
	if err := writeManifest(l.fsys, l.dir, l.man); err != nil {
		f.Close()
		l.man = old
		return 0, err
	}
	// The manifest now starts at the new segment: the old chain is dead
	// regardless of whether these deletes all land before a crash.
	if err := l.cur.Close(); err != nil {
		return 0, err
	}
	l.cur, l.curSeq, l.curSize = f, seq, segHeaderSize
	var firstErr error
	for _, s := range old.Segments {
		if err := l.fsys.Remove(segmentPath(l.dir, s.Seq)); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if old.Legacy {
		if err := l.fsys.Remove(filepath.Join(l.dir, "wal.log")); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return high, firstErr
}

// Close drains the pending batch and closes the chain.
func (l *SegmentedLog) Close() error {
	l.acquireWriter()
	l.closed.Store(true)
	var err error
	var high uint64
	if !l.poisoned.Load() {
		var batch []byte
		var first uint64
		batch, first, _, high = l.takeBatch()
		err = l.writeBatch(batch, first)
		l.recycleBatch(batch)
	}
	if l.cur != nil {
		if cerr := l.cur.Close(); err == nil {
			err = cerr
		}
		l.cur = nil
	}
	l.releaseWriter(err, high)
	return err
}

// Forces reports the number of physical forces (non-empty batches
// written); Commits / Forces is the commits-per-fsync batching factor
// the WALGC experiment measures.
func (l *SegmentedLog) Forces() uint64 {
	l.stateMu.Lock()
	defer l.stateMu.Unlock()
	return l.forces
}

// BatchedRecords reports the total records covered by physical forces —
// BatchedRecords / Forces is the mean batch size.
func (l *SegmentedLog) BatchedRecords() uint64 {
	l.stateMu.Lock()
	defer l.stateMu.Unlock()
	return l.batchRecs
}

// CurrentSegment reports the active segment's sequence number, for
// tests asserting rotation behaviour. It drains nothing, so it releases
// with high 0 — the durability watermark must not move (an observer
// marking pending slab records settled would let a later Flush no-op
// over them).
func (l *SegmentedLog) CurrentSegment() uint64 {
	l.acquireWriter()
	seq := l.curSeq
	l.releaseWriter(nil, 0)
	return seq
}
