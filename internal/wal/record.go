// Package wal implements ASSET's write-ahead log. Per §4.2 of the paper,
// every write logs the before image and the after image of the object, a
// commit places a commit record (one record for a whole group commit), and
// abort installs before images — which this implementation also logs, as
// redo-able undo records, so that recovery reproduces exactly the state a
// crash-free run would have reached (including the paper's caveat that an
// abort can overwrite later updates by permitted cooperating transactions).
//
// The recovery policy is no-steal / redo-only: uncommitted data never
// reaches the persistent store, a commit forces the log, and recovery
// replays committed after-images (and undo installations) in log order.
// Delegation transfers undo/redo responsibility between transactions and is
// therefore logged too, so recovery attributes each update to the
// transaction that was responsible for it at commit time.
package wal

import (
	"encoding/binary"
	"fmt"

	"repro/internal/xid"
)

// Type discriminates log records.
type Type uint8

// Log record types.
const (
	TBegin      Type = iota + 1 // a transaction began executing
	TUpdate                     // before/after image of one object
	TDelegate                   // responsibility transfer between tids
	TCommit                     // commit record for one tid or a GC group
	TAbort                      // a transaction aborted (its updates are void)
	TUndo                       // an installation performed by abort
	TCheckpoint                 // quiescent checkpoint: store is current
	// TPrepare marks a local GC group as prepared under a distributed
	// commit: the participant has voted yes for group GID and may no
	// longer decide the listed transactions' fate unilaterally. Recovery
	// holds them in doubt until the coordinator's verdict arrives.
	TPrepare
	// TDecide is a coordinator decision record (coordinator log only):
	// group GID commits if Commit, aborts otherwise. The decision is
	// forced durable before any participant learns it.
	TDecide
)

// String returns the record type name.
func (t Type) String() string {
	switch t {
	case TBegin:
		return "begin"
	case TUpdate:
		return "update"
	case TDelegate:
		return "delegate"
	case TCommit:
		return "commit"
	case TAbort:
		return "abort"
	case TUndo:
		return "undo"
	case TCheckpoint:
		return "checkpoint"
	case TPrepare:
		return "prepare"
	case TDecide:
		return "decide"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// UpdateKind says what an update (or undo installation) does to the object.
type UpdateKind uint8

// Update kinds.
const (
	KindModify UpdateKind = iota + 1 // overwrite existing object
	KindCreate                       // object created (no before image)
	KindDelete                       // object deleted (no after image)
	// KindDelta is the §5 commutative-increment extension: After holds an
	// 8-byte little-endian delta added (mod 2^64) to an 8-byte counter
	// object. Undo negates the delta; redo re-adds it.
	KindDelta
)

// String returns the kind name.
func (k UpdateKind) String() string {
	switch k {
	case KindModify:
		return "modify"
	case KindCreate:
		return "create"
	case KindDelete:
		return "delete"
	case KindDelta:
		return "delta"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Record is one log record. Only the fields relevant to Type are set:
//
//	TBegin:      TID
//	TUpdate:     TID, OID, Kind, Before, After
//	TDelegate:   TID (from), TID2 (to), OIDs (nil = all objects)
//	TCommit:     TIDs (the committed group; a single txn is a group of one)
//	TAbort:      TID
//	TUndo:       TID (the aborter), OID, Kind (KindModify/KindCreate install
//	             After; KindDelete removes the object), After
//	TCheckpoint: nothing
//	TPrepare:    GID, TIDs (the prepared local group)
//	TDecide:     GID, Commit
type Record struct {
	LSN    uint64
	Type   Type
	TID    xid.TID
	TID2   xid.TID
	OID    xid.OID
	Kind   UpdateKind
	Before []byte
	After  []byte
	OIDs   []xid.OID
	TIDs   []xid.TID
	// GID is the distributed-commit group id of a TPrepare/TDecide record.
	GID uint64
	// Commit is a TDecide record's verdict.
	Commit bool
}

// appendBytes appends a length-prefixed byte string.
func appendBytes(dst, b []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

func takeBytes(src []byte) ([]byte, []byte, error) {
	if len(src) < 4 {
		return nil, nil, errTruncated
	}
	n := binary.LittleEndian.Uint32(src)
	src = src[4:]
	if uint64(len(src)) < uint64(n) {
		return nil, nil, errTruncated
	}
	b := make([]byte, n)
	copy(b, src[:n])
	return b, src[n:], nil
}

var errTruncated = fmt.Errorf("wal: truncated record payload")

// marshal encodes the record payload (everything after the frame header).
func (r *Record) marshal() []byte {
	return r.marshalInto(make([]byte, 0, 32+len(r.Before)+len(r.After)))
}

// marshalInto appends the record payload to buf and returns the extended
// slice. It allocates nothing beyond what append needs, which is what
// keeps the group-commit enqueue fast path allocation-free once the
// batch slab has warmed up.
func (r *Record) marshalInto(buf []byte) []byte {
	buf = append(buf, byte(r.Type))
	switch r.Type {
	case TBegin, TAbort:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.TID))
	case TUpdate:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.TID))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.OID))
		buf = append(buf, byte(r.Kind))
		buf = appendBytes(buf, r.Before)
		buf = appendBytes(buf, r.After)
	case TDelegate:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.TID))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.TID2))
		if r.OIDs == nil {
			buf = append(buf, 0) // all objects
		} else {
			buf = append(buf, 1)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.OIDs)))
			for _, o := range r.OIDs {
				buf = binary.LittleEndian.AppendUint64(buf, uint64(o))
			}
		}
	case TCommit:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.TIDs)))
		for _, t := range r.TIDs {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(t))
		}
	case TUndo:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.TID))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.OID))
		buf = append(buf, byte(r.Kind))
		buf = appendBytes(buf, r.After)
	case TCheckpoint:
		// no payload
	case TPrepare:
		buf = binary.LittleEndian.AppendUint64(buf, r.GID)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.TIDs)))
		for _, t := range r.TIDs {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(t))
		}
	case TDecide:
		buf = binary.LittleEndian.AppendUint64(buf, r.GID)
		if r.Commit {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// unmarshal decodes a record payload produced by marshal.
func unmarshal(payload []byte) (*Record, error) {
	if len(payload) < 1 {
		return nil, errTruncated
	}
	r := &Record{Type: Type(payload[0])}
	p := payload[1:]
	u64 := func() (uint64, error) {
		if len(p) < 8 {
			return 0, errTruncated
		}
		v := binary.LittleEndian.Uint64(p)
		p = p[8:]
		return v, nil
	}
	u32 := func() (uint32, error) {
		if len(p) < 4 {
			return 0, errTruncated
		}
		v := binary.LittleEndian.Uint32(p)
		p = p[4:]
		return v, nil
	}
	u8 := func() (byte, error) {
		if len(p) < 1 {
			return 0, errTruncated
		}
		v := p[0]
		p = p[1:]
		return v, nil
	}
	var err error
	var v uint64
	switch r.Type {
	case TBegin, TAbort:
		if v, err = u64(); err != nil {
			return nil, err
		}
		r.TID = xid.TID(v)
	case TUpdate:
		if v, err = u64(); err != nil {
			return nil, err
		}
		r.TID = xid.TID(v)
		if v, err = u64(); err != nil {
			return nil, err
		}
		r.OID = xid.OID(v)
		k, err := u8()
		if err != nil {
			return nil, err
		}
		r.Kind = UpdateKind(k)
		if r.Before, p, err = takeBytes(p); err != nil {
			return nil, err
		}
		if r.After, p, err = takeBytes(p); err != nil {
			return nil, err
		}
	case TDelegate:
		if v, err = u64(); err != nil {
			return nil, err
		}
		r.TID = xid.TID(v)
		if v, err = u64(); err != nil {
			return nil, err
		}
		r.TID2 = xid.TID(v)
		flag, err := u8()
		if err != nil {
			return nil, err
		}
		if flag == 1 {
			n, err := u32()
			if err != nil {
				return nil, err
			}
			if uint64(n)*8 > uint64(len(p)) {
				return nil, errTruncated // count exceeds remaining payload
			}
			r.OIDs = make([]xid.OID, 0, n)
			for i := uint32(0); i < n; i++ {
				if v, err = u64(); err != nil {
					return nil, err
				}
				r.OIDs = append(r.OIDs, xid.OID(v))
			}
		}
	case TCommit:
		n, err := u32()
		if err != nil {
			return nil, err
		}
		if uint64(n)*8 > uint64(len(p)) {
			return nil, errTruncated // count exceeds remaining payload
		}
		r.TIDs = make([]xid.TID, 0, n)
		for i := uint32(0); i < n; i++ {
			if v, err = u64(); err != nil {
				return nil, err
			}
			r.TIDs = append(r.TIDs, xid.TID(v))
		}
	case TUndo:
		if v, err = u64(); err != nil {
			return nil, err
		}
		r.TID = xid.TID(v)
		if v, err = u64(); err != nil {
			return nil, err
		}
		r.OID = xid.OID(v)
		k, err := u8()
		if err != nil {
			return nil, err
		}
		r.Kind = UpdateKind(k)
		if r.After, p, err = takeBytes(p); err != nil {
			return nil, err
		}
	case TCheckpoint:
		// no payload
	case TPrepare:
		if r.GID, err = u64(); err != nil {
			return nil, err
		}
		n, err := u32()
		if err != nil {
			return nil, err
		}
		if uint64(n)*8 > uint64(len(p)) {
			return nil, errTruncated // count exceeds remaining payload
		}
		r.TIDs = make([]xid.TID, 0, n)
		for i := uint32(0); i < n; i++ {
			if v, err = u64(); err != nil {
				return nil, err
			}
			r.TIDs = append(r.TIDs, xid.TID(v))
		}
	case TDecide:
		if r.GID, err = u64(); err != nil {
			return nil, err
		}
		flag, err := u8()
		if err != nil {
			return nil, err
		}
		r.Commit = flag == 1
	default:
		return nil, fmt.Errorf("wal: unknown record type %d", r.Type)
	}
	return r, nil
}
