package wal

import (
	"sync"
	"time"
)

// Coalescer wraps an Appender and batches Flush calls: concurrent
// committers share one physical log force (classic group commit, as
// opposed to the GC-dependency group commit of the paper, which shares a
// commit *record*). A caller's Flush returns once a force that began after
// the caller's appends has completed.
//
// The optional window makes the flush leader linger before forcing, giving
// followers time to append their commit records into the same force at the
// cost of added commit latency.
type Coalescer struct {
	Appender
	window time.Duration

	mu         sync.Mutex
	cond       *sync.Cond
	inFlight   bool
	gated      bool   // the in-flight leader has started the physical force
	startedGen uint64 // forces started
	doneGen    uint64 // forces completed
	err        error  // outcome of the last completed force
	forces     uint64
}

// NewCoalescer wraps log. A zero window still coalesces whatever arrives
// while a force is in flight.
func NewCoalescer(log Appender, window time.Duration) *Coalescer {
	c := &Coalescer{Appender: log, window: window}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Flush forces the log, sharing the force with concurrent callers.
func (c *Coalescer) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Which force generation covers this caller's appends? If a leader is
	// in flight and has not yet begun the physical force, its force will
	// include our appends; otherwise we need the next one.
	var need uint64
	if c.inFlight && !c.gated {
		need = c.startedGen
	} else {
		need = c.startedGen + 1
	}
	for c.doneGen < need {
		if c.inFlight {
			c.cond.Wait()
			continue
		}
		// Become the leader for force generation startedGen+1.
		c.inFlight = true
		c.gated = false
		c.startedGen++
		mine := c.startedGen
		if c.window > 0 {
			c.mu.Unlock()
			time.Sleep(c.window) // accumulate followers
			c.mu.Lock()
		}
		c.gated = true // appends after this point need the next force
		c.mu.Unlock()
		err := c.Appender.Flush()
		c.mu.Lock()
		c.err = err
		c.doneGen = mine
		c.inFlight = false
		c.forces++
		c.cond.Broadcast()
	}
	return c.err
}

// Forces returns the number of physical forces performed (for the E6
// batching measurements).
func (c *Coalescer) Forces() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.forces
}

// ForceDurable forwards the checkpoint's write-ahead barrier to the
// wrapped log when it supports on-demand fsync. Same quiescence contract
// as Truncate.
func (c *Coalescer) ForceDurable() error {
	type forceable interface{ ForceDurable() error }
	if f, ok := c.Appender.(forceable); ok {
		return f.ForceDurable()
	}
	return nil
}

// Truncate forwards to the wrapped log when it supports truncation. The
// caller must be quiescent (no concurrent flushes), as at a checkpoint.
func (c *Coalescer) Truncate() error {
	type truncatable interface{ Truncate() error }
	if t, ok := c.Appender.(truncatable); ok {
		return t.Truncate()
	}
	return nil
}
