package wal

import (
	"errors"
	"os"
	"reflect"
	"testing"

	"repro/internal/faultfs"
)

// typedChainErr reports whether err is one of the typed chain errors a
// damaged segmented log is allowed to produce. Anything else escaping
// recovery is a bug: the contract is clean prefix stop or typed refusal,
// never a silent partial replay and never an untyped failure.
func typedChainErr(err error) bool {
	return errors.Is(err, ErrManifestCorrupt) ||
		errors.Is(err, ErrSegmentCorrupt) ||
		errors.Is(err, ErrSegmentMissing) ||
		errors.Is(err, ErrSegmentGap)
}

// fuzzChain builds a small multi-segment chain and returns the MemFS
// plus the full record count of the pristine chain.
func fuzzChain(t testing.TB) (*faultfs.MemFS, int) {
	t.Helper()
	mfs := faultfs.NewMem()
	l, err := OpenSegmentedFS(mfs, "/db", SegmentedOptions{SegmentBytes: 256, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	appendCommitted(t, l, 1, 12)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return mfs, 12 * 3
}

// overwrite replaces path's content on mfs with data (creating it if
// the fuzz input resurrects a deleted file shape).
func overwrite(t testing.TB, mfs *faultfs.MemFS, path string, data []byte) {
	t.Helper()
	f, err := mfs.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// readBack returns path's current content on mfs.
func readBack(t testing.TB, mfs *faultfs.MemFS, path string) []byte {
	t.Helper()
	f, err := mfs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, st.Size())
	if _, err := f.ReadAt(data, 0); err != nil {
		t.Fatal(err)
	}
	return data
}

// FuzzManifestDecode: arbitrary manifest bytes must decode or error,
// never panic; whatever decodes must round-trip through encode.
func FuzzManifestDecode(f *testing.F) {
	good := (&manifest{Segments: []manifestSegment{{Seq: 1, FirstLSN: 1}, {Seq: 2, FirstLSN: 9}}}).encode()
	f.Add(good)
	f.Add((&manifest{Legacy: true, Segments: []manifestSegment{{Seq: 3, FirstLSN: 77}}}).encode())
	f.Add([]byte{})
	f.Add(good[:15])
	short := append([]byte{}, good...)
	short[20] = 9 // count disagrees with trailing bytes
	f.Add(short)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(data)
		if err != nil {
			if !errors.Is(err, ErrManifestCorrupt) {
				t.Fatalf("decode error is not ErrManifestCorrupt: %v", err)
			}
			return
		}
		again, err := decodeManifest(m.encode())
		if err != nil {
			t.Fatalf("re-decode of valid manifest failed: %v", err)
		}
		if !reflect.DeepEqual(again, m) {
			t.Fatalf("manifest round trip mismatch: %+v vs %+v", again, m)
		}
	})
}

// FuzzSegmentHeaderDecode: arbitrary header bytes must decode or produce
// ErrSegmentCorrupt; valid headers round-trip.
func FuzzSegmentHeaderDecode(f *testing.F) {
	h := encodeSegmentHeader(3, 12345)
	f.Add(h[:])
	f.Add(h[:10])
	f.Add([]byte{})
	flipped := append([]byte{}, h[:]...)
	flipped[20] ^= 0xff
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		seq, first, err := decodeSegmentHeader(data)
		if err != nil {
			if !errors.Is(err, ErrSegmentCorrupt) {
				t.Fatalf("decode error is not ErrSegmentCorrupt: %v", err)
			}
			return
		}
		again := encodeSegmentHeader(seq, first)
		s2, f2, err := decodeSegmentHeader(again[:])
		if err != nil || s2 != seq || f2 != first {
			t.Fatalf("header round trip mismatch: %d/%d vs %d/%d (%v)", s2, f2, seq, first, err)
		}
	})
}

// FuzzChainSegmentFile: replacing the final segment's bytes with
// arbitrary data must leave recovery panic-free and well-behaved —
// clean prefix recovery or a typed error — and the parallel and
// sequential replayers must stay in exact agreement about which.
func FuzzChainSegmentFile(f *testing.F) {
	mfs, _ := fuzzChain(f)
	last := segmentPath("/db", lastSegmentFuzz(f, mfs))
	good := readBack(f, mfs, last)
	f.Add(good)
	f.Add(good[:len(good)-5])
	f.Add(good[:segHeaderSize])
	f.Add(good[:segHeaderSize-3])
	f.Add([]byte{})
	mangled := append([]byte{}, good...)
	mangled[segHeaderSize+2] ^= 0xff
	f.Add(mangled)
	dup := append(append([]byte{}, good...), good[segHeaderSize:]...) // duplicated frames
	f.Add(dup)
	f.Fuzz(func(t *testing.T, data []byte) {
		mfs, total := fuzzChain(t)
		last := segmentPath("/db", lastSegmentFuzz(t, mfs))
		overwrite(t, mfs, last, data)
		seqSt, seqErr := RecoverDirSequentialFS(mfs, "/db")
		parSt, parErr := RecoverDirFS(mfs, "/db", RecoverOptions{Parallel: 4})
		if (seqErr == nil) != (parErr == nil) {
			t.Fatalf("replayer disagreement: sequential=%v parallel=%v", seqErr, parErr)
		}
		if seqErr != nil {
			if !typedChainErr(seqErr) || !typedChainErr(parErr) {
				t.Fatalf("untyped recovery error: sequential=%v parallel=%v", seqErr, parErr)
			}
			return
		}
		diffStates(t, 4, seqSt, parSt)
		// No invented state: the damaged chain can never recover more
		// LSNs than the pristine one held in its earlier segments plus
		// whatever the fuzzed tail legitimately decodes to.
		if parSt.NextLSN > uint64(total)+1+uint64(len(data)/frameHeader) {
			t.Fatalf("recovered NextLSN %d exceeds any plausible chain length", parSt.NextLSN)
		}
	})
}

// FuzzChainManifestFile: replacing the manifest's bytes with arbitrary
// data must yield clean recovery (only if the bytes are a valid
// manifest for the chain) or a typed error; never a panic, never an
// untyped failure, and never replayer disagreement.
func FuzzChainManifestFile(f *testing.F) {
	mfs, _ := fuzzChain(f)
	good := readBack(f, mfs, "/db/wal.manifest")
	f.Add(good)
	f.Add(good[:len(good)-1])
	f.Add([]byte{})
	flipped := append([]byte{}, good...)
	flipped[len(flipped)-2] ^= 0xff
	f.Add(flipped)
	// A forged valid manifest pointing at a segment that does not exist.
	f.Add((&manifest{Segments: []manifestSegment{{Seq: 40, FirstLSN: 1}}}).encode())
	// A forged valid manifest whose firstLSN contradicts the header.
	f.Add((&manifest{Segments: []manifestSegment{{Seq: 1, FirstLSN: 999}}}).encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		mfs, _ := fuzzChain(t)
		overwrite(t, mfs, "/db/wal.manifest", data)
		seqSt, seqErr := RecoverDirSequentialFS(mfs, "/db")
		parSt, parErr := RecoverDirFS(mfs, "/db", RecoverOptions{Parallel: 4})
		if (seqErr == nil) != (parErr == nil) {
			t.Fatalf("replayer disagreement: sequential=%v parallel=%v", seqErr, parErr)
		}
		if seqErr != nil {
			if !typedChainErr(seqErr) || !typedChainErr(parErr) {
				t.Fatalf("untyped recovery error: sequential=%v parallel=%v", seqErr, parErr)
			}
			return
		}
		diffStates(t, 4, seqSt, parSt)
	})
}

// lastSegmentFuzz is lastSegment for testing.TB (fuzz seeds run under
// *testing.F).
func lastSegmentFuzz(t testing.TB, fsys faultfs.FS) uint64 {
	t.Helper()
	var last uint64
	for seq := uint64(1); ; seq++ {
		if !fileExists(fsys, segmentPath("/db", seq)) {
			break
		}
		last = seq
	}
	if last == 0 {
		t.Fatal("no segments found")
	}
	return last
}
