package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/faultfs"
)

// Appender is the write side of a log. Append assigns LSNs in strictly
// increasing order; Flush forces everything appended so far to stable
// storage (the commit protocol calls it before declaring a commit durable).
type Appender interface {
	Append(r *Record) (lsn uint64, err error)
	Flush() error
	Close() error
}

// Frame layout on disk: [payloadLen u32][crc u32][lsn u64][payload].
// The crc covers lsn+payload. A short or corrupt frame marks the torn tail
// of the log; scanning stops there.
const frameHeader = 4 + 4 + 8

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrPoisoned marks a log handle on which a write, buffer drain, or
// fsync has failed. The on-disk suffix of such a log is indeterminate —
// on Linux a failed fsync may mark dirty pages clean, so a retried sync
// can "succeed" without persisting anything — so the handle refuses all
// further appends and flushes rather than let a later commit silently
// claim durability over a hole.
var ErrPoisoned = errors.New("wal: log poisoned by an earlier write/sync failure")

// errAppendClosed is a package sentinel so the Append fast path's
// closed-log check stays allocation-free (//asset:noalloc).
var errAppendClosed = errors.New("wal: append to closed log")

// FileLog is a durable log backed by a single append-only file.
type FileLog struct {
	mu      sync.Mutex
	f       faultfs.File
	w       *bufio.Writer
	nextLSN uint64
	sync    bool // fsync on Flush
	dirty   bool
	err     error // sticky ErrPoisoned state
}

// OpenFile opens (creating if needed) the log at path and positions appends
// after the last intact record. When syncOnFlush is true, Flush issues an
// fsync, making commits crash-durable; when false, Flush only drains
// buffers (fast mode for benchmarks).
func OpenFile(path string, syncOnFlush bool) (*FileLog, error) {
	return OpenFileFS(faultfs.OS{}, path, syncOnFlush)
}

// OpenFileFS is OpenFile over an injected filesystem (fault injection
// and crash simulation use it; production code uses OpenFile).
func OpenFileFS(fsys faultfs.FS, path string, syncOnFlush bool) (*FileLog, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	// The open may have just created the file; its directory entry must
	// be durable before any commit forced into it is acked, or a crash
	// can drop the whole log while every record in it was "fsynced".
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	// Find the end of the intact prefix and the next LSN.
	var nextLSN uint64 = 1
	end, err := scanReader(f, func(r *Record) error {
		nextLSN = r.LSN + 1
		return nil
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &FileLog{f: f, w: bufio.NewWriterSize(f, 1<<16), nextLSN: nextLSN, sync: syncOnFlush}, nil
}

// Append encodes r, assigns it the next LSN (stored into r.LSN), and buffers
// it for writing.
func (l *FileLog) Append(r *Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return 0, errAppendClosed
	}
	if l.err != nil {
		return 0, l.err
	}
	r.LSN = l.nextLSN
	l.nextLSN++
	payload := r.marshal()
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], r.LSN)
	crc := crc32.Update(0, crcTable, hdr[8:16])
	crc = crc32.Update(crc, crcTable, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	if _, err := l.w.Write(hdr[:]); err != nil {
		return 0, l.poison(err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return 0, l.poison(err)
	}
	l.dirty = true
	return r.LSN, nil
}

// poison records a write/sync failure, making every later Append, Flush,
// and Truncate fail with ErrPoisoned. The failing call itself returns
// the original cause. Caller holds l.mu.
func (l *FileLog) poison(cause error) error {
	if l.err == nil {
		l.err = fmt.Errorf("%w: %w", ErrPoisoned, cause)
	}
	return cause
}

// Flush drains the buffer and, if the log was opened with syncOnFlush,
// fsyncs the file.
func (l *FileLog) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

func (l *FileLog) flushLocked() error {
	if l.err != nil {
		return l.err
	}
	if l.f == nil || !l.dirty {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return l.poison(err)
	}
	if l.sync {
		if err := l.f.Sync(); err != nil {
			return l.poison(err)
		}
	}
	l.dirty = false
	return nil
}

// Truncate discards the entire log contents (used after a quiescent
// checkpoint has made the store current) while keeping LSNs monotonic.
func (l *FileLog) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.flushLocked(); err != nil {
		return err
	}
	if err := l.f.Truncate(0); err != nil {
		return l.poison(err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return l.poison(err)
	}
	l.w.Reset(l.f)
	return nil
}

// Close flushes and closes the log file.
func (l *FileLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.flushLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// MemLog is an in-memory log for tests and for managers configured without
// durability. Records are retained and can be scanned.
type MemLog struct {
	mu      sync.Mutex
	recs    []*Record
	nextLSN uint64
	flushes int
}

// NewMem returns an empty in-memory log.
func NewMem() *MemLog { return &MemLog{nextLSN: 1} }

// Append stores a copy-safe reference to r and assigns its LSN.
func (l *MemLog) Append(r *Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r.LSN = l.nextLSN
	l.nextLSN++
	l.recs = append(l.recs, r)
	return r.LSN, nil
}

// Flush counts forces; it has no durability effect.
func (l *MemLog) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.flushes++
	return nil
}

// Flushes returns the number of Flush calls, which benchmarks use to count
// log forces (experiment E6).
func (l *MemLog) Flushes() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushes
}

// Records returns a snapshot of the appended records.
func (l *MemLog) Records() []*Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*Record, len(l.recs))
	copy(out, l.recs)
	return out
}

// Truncate discards the log contents.
func (l *MemLog) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.recs = nil
	return nil
}

// Close releases the record storage.
func (l *MemLog) Close() error { return l.Truncate() }

// ScanFile reads every intact record of the log at path in order, invoking
// fn for each. It stops cleanly at a torn tail. fn errors abort the scan.
func ScanFile(path string, fn func(*Record) error) error {
	return ScanFileFS(faultfs.OS{}, path, fn)
}

// ScanFileFS is ScanFile over an injected filesystem.
func ScanFileFS(fsys faultfs.FS, path string, fn func(*Record) error) error {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	_, err = scanReader(f, fn)
	return err
}

// appendFrame appends the on-disk frame for r — with r.LSN already
// assigned — to buf and returns the extended slice. The framing matches
// what FileLog.Append writes; SegmentedLog batches frames into a shared
// slab with it. Allocation-free once buf has capacity.
func appendFrame(buf []byte, r *Record) []byte {
	start := len(buf)
	var zero [frameHeader]byte
	buf = append(buf, zero[:]...)
	buf = r.marshalInto(buf)
	payload := buf[start+frameHeader:]
	binary.LittleEndian.PutUint32(buf[start:start+4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(buf[start+8:start+16], r.LSN)
	crc := crc32.Update(0, crcTable, buf[start+8:start+16])
	crc = crc32.Update(crc, crcTable, payload)
	binary.LittleEndian.PutUint32(buf[start+4:start+8], crc)
	return buf
}

// scanReader scans records from r, returning the byte offset just past the
// last intact record.
func scanReader(r io.ReadSeeker, fn func(*Record) error) (int64, error) {
	return scanFrames(r, 0, fn)
}

// scanFrames scans record frames from r starting at byte offset start,
// returning the offset just past the last intact record. A torn or
// corrupt frame stops the scan cleanly; fn errors abort it.
func scanFrames(r io.ReadSeeker, start int64, fn func(*Record) error) (int64, error) {
	if _, err := r.Seek(start, io.SeekStart); err != nil {
		return start, err
	}
	br := bufio.NewReaderSize(r, 1<<16)
	off := start
	var hdr [frameHeader]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return off, nil // clean EOF or torn header: stop here
		}
		plen := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		lsn := binary.LittleEndian.Uint64(hdr[8:16])
		if plen > 1<<30 {
			return off, nil // absurd length: torn
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return off, nil // torn payload
		}
		crc := crc32.Update(0, crcTable, hdr[8:16])
		crc = crc32.Update(crc, crcTable, payload)
		if crc != want {
			return off, nil // corrupt: treat as torn tail
		}
		rec, err := unmarshal(payload)
		if err != nil {
			return off, nil
		}
		rec.LSN = lsn
		if err := fn(rec); err != nil {
			return off, err
		}
		off += int64(frameHeader) + int64(plen)
	}
}
