package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/xid"
)

// FuzzRecordRoundTrip: any record we can marshal must unmarshal to an
// equal record; any payload bytes must either decode or error, never
// panic or over-read.
func FuzzRecordRoundTrip(f *testing.F) {
	seeds := []*Record{
		{Type: TBegin, TID: 1},
		{Type: TUpdate, TID: 2, OID: 3, Kind: KindModify, Before: []byte("b"), After: []byte("a")},
		{Type: TDelegate, TID: 1, TID2: 2, OIDs: []xid.OID{5, 6}},
		{Type: TCommit, TIDs: []xid.TID{1, 2, 3}},
		{Type: TUndo, TID: 9, OID: 8, Kind: KindDelta, After: EncodeCounter(42)},
		{Type: TCheckpoint},
	}
	for _, r := range seeds {
		f.Add(r.marshal())
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		r, err := unmarshal(payload)
		if err != nil {
			return // malformed input is fine, as long as we didn't panic
		}
		// Whatever decoded must re-encode and decode back identically.
		again, err := unmarshal(r.marshal())
		if err != nil {
			t.Fatalf("re-decode of valid record failed: %v", err)
		}
		if again.Type != r.Type || again.TID != r.TID || again.TID2 != r.TID2 ||
			again.OID != r.OID || again.Kind != r.Kind ||
			!bytes.Equal(again.Before, r.Before) || !bytes.Equal(again.After, r.After) {
			t.Fatalf("round trip mismatch: %+v vs %+v", again, r)
		}
	})
}

// realisticLog renders a multi-transaction log — begins, updates, a
// delegate, an undo, commits, an abort, a checkpoint — to raw bytes, the
// base for the corrupted-tail corpus.
func realisticLog(tb testing.TB) []byte {
	tb.Helper()
	dir := tb.TempDir()
	path := filepath.Join(dir, "seed.log")
	l, err := OpenFile(path, false)
	if err != nil {
		tb.Fatal(err)
	}
	for _, r := range []*Record{
		{Type: TBegin, TID: 1},
		{Type: TUpdate, TID: 1, OID: 10, Kind: KindCreate, After: []byte("one")},
		{Type: TCommit, TIDs: []xid.TID{1}},
		{Type: TBegin, TID: 2},
		{Type: TBegin, TID: 3},
		{Type: TUpdate, TID: 2, OID: 11, Kind: KindModify, Before: []byte("one"), After: []byte("two")},
		{Type: TDelegate, TID: 2, TID2: 3, OIDs: []xid.OID{11}},
		{Type: TUndo, TID: 3, OID: 11, Kind: KindModify, After: []byte("one")},
		{Type: TAbort, TID: 3},
		{Type: TCommit, TIDs: []xid.TID{2}},
		{Type: TCheckpoint},
	} {
		if _, err := l.Append(r); err != nil {
			tb.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// corruptTail derives the realistic torn-tail shapes a crash leaves:
// a record truncated mid-payload, a checksum flipped in the last record,
// and a garbage (absurd) length prefix on the final frame.
func corruptTail(good []byte) (truncated, badCRC, badLen []byte) {
	truncated = append([]byte{}, good[:len(good)-3]...)
	badCRC = append([]byte{}, good...)
	badCRC[len(badCRC)-1] ^= 0xff
	badLen = append([]byte{}, good...)
	// The last frame is the 12-byte TCheckpoint: stamp its length prefix
	// (frameHeader bytes before the payload end) with garbage.
	if len(badLen) >= frameHeader {
		off := len(badLen) - frameHeader
		badLen[off] = 0xff
		badLen[off+1] = 0xff
		badLen[off+2] = 0xff
		badLen[off+3] = 0x7f
	}
	return truncated, badCRC, badLen
}

// FuzzScanRobustness: scanning arbitrary bytes as a log file must never
// panic and must stop cleanly.
func FuzzScanRobustness(f *testing.F) {
	// Seed with a real log plus garbage suffixes.
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.log")
	l, err := OpenFile(path, false)
	if err != nil {
		f.Fatal(err)
	}
	l.Append(&Record{Type: TBegin, TID: 1})
	l.Append(&Record{Type: TCommit, TIDs: []xid.TID{1}})
	l.Close()
	good, _ := os.ReadFile(path)
	f.Add(good)
	f.Add(append(append([]byte{}, good...), 0xde, 0xad, 0xbe, 0xef))
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02, 0x03})
	// Corrupted-tail corpus: the torn shapes recover.go must survive.
	multi := realisticLog(f)
	f.Add(multi)
	truncated, badCRC, badLen := corruptTail(multi)
	f.Add(truncated)
	f.Add(badCRC)
	f.Add(badLen)
	// A tail torn mid-header and one torn exactly at a frame boundary.
	f.Add(multi[:len(multi)-frameHeader+2])
	f.Add(multi[:len(multi)-frameHeader])
	// A hole: an all-zero frame splicing the middle of the log (lost
	// write under a later durable one).
	hole := append([]byte{}, multi...)
	for i := len(hole) / 2; i < len(hole)/2+frameHeader && i < len(hole); i++ {
		hole[i] = 0
	}
	f.Add(hole)

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.log")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		n := 0
		if err := ScanFile(p, func(*Record) error { n++; return nil }); err != nil {
			t.Fatalf("scan errored (must stop cleanly): %v", err)
		}
		// Recovery over the same bytes must also be panic-free.
		if _, err := Recover(p); err != nil {
			t.Fatalf("recover errored: %v", err)
		}
		// Reopening for append must truncate the torn tail and stay usable.
		l, err := OpenFile(p, false)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if _, err := l.Append(&Record{Type: TBegin, TID: 99}); err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		l.Close()
	})
}

// TestRecoverCorruptedTails pins down the exact semantics the fuzz
// corpus shapes exercise: every torn-tail class stops the scan at the
// last intact record, and recovery of the intact prefix is unaffected.
func TestRecoverCorruptedTails(t *testing.T) {
	good := realisticLog(t)
	truncated, badCRC, badLen := corruptTail(good)
	intact := 0
	mustWrite := func(data []byte) string {
		p := filepath.Join(t.TempDir(), "log")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if err := ScanFile(mustWrite(good), func(*Record) error { intact++; return nil }); err != nil {
		t.Fatal(err)
	}
	if intact != 11 {
		t.Fatalf("intact log has %d records, want 11", intact)
	}
	for name, data := range map[string][]byte{
		"truncated-record":  truncated,
		"bad-checksum":      badCRC,
		"garbage-length":    badLen,
		"torn-frame-header": good[:len(good)-frameHeader+2],
	} {
		t.Run(name, func(t *testing.T) {
			p := mustWrite(data)
			n := 0
			if err := ScanFile(p, func(*Record) error { n++; return nil }); err != nil {
				t.Fatal(err)
			}
			// Every corruption hits the final frame (the checkpoint):
			// exactly one record is lost, never more.
			if n != intact-1 {
				t.Fatalf("scanned %d records, want %d", n, intact-1)
			}
			// The committed state of the intact prefix is unaffected:
			// T1 created oid 10, T2's modify of oid 11 committed after
			// T3's undo installed the old image.
			st, err := Recover(p)
			if err != nil {
				t.Fatal(err)
			}
			if string(st.Objects[10]) != "one" {
				t.Fatalf("oid 10 = %q", st.Objects[10])
			}
			if len(st.Committed) != 2 {
				t.Fatalf("committed = %v", st.Committed)
			}
		})
	}
}
