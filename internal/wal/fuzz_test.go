package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/xid"
)

// FuzzRecordRoundTrip: any record we can marshal must unmarshal to an
// equal record; any payload bytes must either decode or error, never
// panic or over-read.
func FuzzRecordRoundTrip(f *testing.F) {
	seeds := []*Record{
		{Type: TBegin, TID: 1},
		{Type: TUpdate, TID: 2, OID: 3, Kind: KindModify, Before: []byte("b"), After: []byte("a")},
		{Type: TDelegate, TID: 1, TID2: 2, OIDs: []xid.OID{5, 6}},
		{Type: TCommit, TIDs: []xid.TID{1, 2, 3}},
		{Type: TUndo, TID: 9, OID: 8, Kind: KindDelta, After: EncodeCounter(42)},
		{Type: TCheckpoint},
	}
	for _, r := range seeds {
		f.Add(r.marshal())
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		r, err := unmarshal(payload)
		if err != nil {
			return // malformed input is fine, as long as we didn't panic
		}
		// Whatever decoded must re-encode and decode back identically.
		again, err := unmarshal(r.marshal())
		if err != nil {
			t.Fatalf("re-decode of valid record failed: %v", err)
		}
		if again.Type != r.Type || again.TID != r.TID || again.TID2 != r.TID2 ||
			again.OID != r.OID || again.Kind != r.Kind ||
			!bytes.Equal(again.Before, r.Before) || !bytes.Equal(again.After, r.After) {
			t.Fatalf("round trip mismatch: %+v vs %+v", again, r)
		}
	})
}

// FuzzScanRobustness: scanning arbitrary bytes as a log file must never
// panic and must stop cleanly.
func FuzzScanRobustness(f *testing.F) {
	// Seed with a real log plus garbage suffixes.
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.log")
	l, err := OpenFile(path, false)
	if err != nil {
		f.Fatal(err)
	}
	l.Append(&Record{Type: TBegin, TID: 1})
	l.Append(&Record{Type: TCommit, TIDs: []xid.TID{1}})
	l.Close()
	good, _ := os.ReadFile(path)
	f.Add(good)
	f.Add(append(append([]byte{}, good...), 0xde, 0xad, 0xbe, 0xef))
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02, 0x03})

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.log")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		n := 0
		if err := ScanFile(p, func(*Record) error { n++; return nil }); err != nil {
			t.Fatalf("scan errored (must stop cleanly): %v", err)
		}
		// Recovery over the same bytes must also be panic-free.
		if _, err := Recover(p); err != nil {
			t.Fatalf("recover errored: %v", err)
		}
		// Reopening for append must truncate the torn tail and stay usable.
		l, err := OpenFile(p, false)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if _, err := l.Append(&Record{Type: TBegin, TID: 99}); err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		l.Close()
	})
}
