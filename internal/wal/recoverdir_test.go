package wal

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/xid"
)

// randomWorkload drives a seeded random transaction mix — begins,
// creates, modifies, deletes, counter deltas, delegations, commits,
// aborts, undo installations, checkpoints — through a segmented log with
// a tiny rotation threshold, so the chain crosses many segment
// boundaries. Returns the MemFS holding the chain.
func randomWorkload(t testing.TB, seed int64, txns int, crash bool) faultfs.FS {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mfs := faultfs.NewMem()
	l, err := OpenSegmentedFS(mfs, "/db", SegmentedOptions{
		SegmentBytes: 512,
		// Crash runs use buffered mode so the tail is genuinely torn;
		// clean runs force every commit.
		Sync: !crash,
	})
	if err != nil {
		t.Fatal(err)
	}
	app := func(r *Record) {
		if _, err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	var nextTID uint64 = 1
	live := []xid.TID{}
	for i := 0; i < txns; i++ {
		tid := xid.TID(nextTID)
		nextTID++
		app(&Record{Type: TBegin, TID: tid})
		nops := 1 + rng.Intn(4)
		for j := 0; j < nops; j++ {
			oid := xid.OID(1 + rng.Intn(40))
			switch rng.Intn(5) {
			case 0:
				app(&Record{Type: TUpdate, TID: tid, OID: oid, Kind: KindCreate,
					After: []byte(fmt.Sprintf("c%d-%d", tid, j))})
			case 1:
				app(&Record{Type: TUpdate, TID: tid, OID: oid, Kind: KindModify,
					Before: []byte("old"), After: []byte(fmt.Sprintf("m%d-%d", tid, j))})
			case 2:
				app(&Record{Type: TUpdate, TID: tid, OID: oid, Kind: KindDelete,
					Before: []byte("old")})
			case 3:
				app(&Record{Type: TUpdate, TID: tid, OID: oid, Kind: KindDelta,
					After: EncodeCounter(uint64(rng.Intn(100)))})
			case 4:
				app(&Record{Type: TUndo, TID: tid, OID: oid, Kind: KindModify,
					After: []byte(fmt.Sprintf("u%d-%d", tid, j))})
			}
		}
		// Occasionally delegate the pending ops to another live txn.
		if len(live) > 0 && rng.Intn(4) == 0 {
			to := live[rng.Intn(len(live))]
			app(&Record{Type: TDelegate, TID: tid, TID2: to})
		}
		switch rng.Intn(10) {
		case 0, 1:
			app(&Record{Type: TAbort, TID: tid})
		case 2:
			live = append(live, tid) // left dangling: a loser at the crash
		default:
			// Commit, sometimes as a group with a live partner.
			tids := []xid.TID{tid}
			if len(live) > 0 && rng.Intn(3) == 0 {
				k := rng.Intn(len(live))
				tids = append(tids, live[k])
				live = append(live[:k], live[k+1:]...)
			}
			app(&Record{Type: TCommit, TIDs: tids})
			if err := l.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		if rng.Intn(25) == 0 {
			app(&Record{Type: TCheckpoint})
			if err := l.Flush(); err != nil {
				t.Fatal(err)
			}
			// Checkpoint without store flush: replay-level tests only
			// check that both replayers skip the same prefix, so the
			// truncation step is exercised separately.
			if rng.Intn(2) == 0 {
				if err := l.Truncate(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if crash {
		// Leave the log unclosed and take the post-crash disk image:
		// the chain ends in a genuinely torn tail.
		return mfs.CrashImage(faultfs.DropUnsynced)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return mfs
}

// TestDifferentialRecovery: the parallel recovery must produce exactly
// the state the dumb sequential reference produces, for seeded random
// workloads, clean and crashed chains, across GOMAXPROCS and worker
// counts. Any divergence is a merge-ordering bug.
func TestDifferentialRecovery(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		for _, crash := range []bool{false, true} {
			name := fmt.Sprintf("seed=%d/crash=%v", seed, crash)
			t.Run(name, func(t *testing.T) {
				fsys := randomWorkload(t, seed, 120, crash)
				ref, err := RecoverDirSequentialFS(fsys, "/db")
				if err != nil {
					t.Fatal(err)
				}
				for _, procs := range []int{1, 2, 8} {
					old := runtime.GOMAXPROCS(procs)
					st, err := RecoverDirFS(fsys, "/db", RecoverOptions{Parallel: procs})
					runtime.GOMAXPROCS(old)
					if err != nil {
						t.Fatalf("procs=%d: %v", procs, err)
					}
					diffStates(t, procs, ref, st)
				}
			})
		}
	}
}

// diffStates asserts two recovered states are identical, field by field,
// with readable output on mismatch.
func diffStates(t *testing.T, procs int, ref, got *State) {
	t.Helper()
	if got.NextLSN != ref.NextLSN {
		t.Errorf("procs=%d: NextLSN = %d, ref %d", procs, got.NextLSN, ref.NextLSN)
	}
	if got.MaxTID != ref.MaxTID {
		t.Errorf("procs=%d: MaxTID = %d, ref %d", procs, got.MaxTID, ref.MaxTID)
	}
	if !reflect.DeepEqual(got.Objects, ref.Objects) {
		t.Errorf("procs=%d: Objects diverge: %d vs %d entries", procs, len(got.Objects), len(ref.Objects))
		for oid, img := range ref.Objects {
			if g, ok := got.Objects[oid]; !ok || string(g) != string(img) {
				t.Errorf("  oid %d: got %q, ref %q", oid, got.Objects[oid], img)
			}
		}
		for oid := range got.Objects {
			if _, ok := ref.Objects[oid]; !ok {
				t.Errorf("  oid %d: extra in parallel result", oid)
			}
		}
	}
	if !reflect.DeepEqual(got.Deleted, ref.Deleted) {
		t.Errorf("procs=%d: Deleted diverge: got %v, ref %v", procs, got.Deleted, ref.Deleted)
	}
	if !reflect.DeepEqual(got.Deltas, ref.Deltas) {
		t.Errorf("procs=%d: Deltas diverge: got %v, ref %v", procs, got.Deltas, ref.Deltas)
	}
	if !reflect.DeepEqual(got.Committed, ref.Committed) {
		t.Errorf("procs=%d: Committed diverge: got %v, ref %v", procs, got.Committed, ref.Committed)
	}
	if !reflect.DeepEqual(got.Losers, ref.Losers) {
		t.Errorf("procs=%d: Losers diverge: got %v, ref %v", procs, got.Losers, ref.Losers)
	}
}

// TestRecoverDirMatchesLegacyRecover: on a chain that is just a legacy
// wal.log (no segments yet), directory recovery must agree with the
// original single-file Recover — the migration cannot reinterpret
// history.
func TestRecoverDirMatchesLegacyRecover(t *testing.T) {
	mfs := faultfs.NewMem()
	fl, err := OpenFileFS(mfs, "/db/wal.log", true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		tid := xid.TID(i)
		fl.Append(&Record{Type: TBegin, TID: tid})
		fl.Append(&Record{Type: TUpdate, TID: tid, OID: xid.OID(i), Kind: KindCreate, After: []byte{byte(i)}})
		if i%2 == 0 {
			fl.Append(&Record{Type: TCommit, TIDs: []xid.TID{tid}})
		} else {
			fl.Append(&Record{Type: TAbort, TID: tid})
		}
	}
	fl.Flush()
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}
	ref, err := RecoverFS(mfs, "/db/wal.log")
	if err != nil {
		t.Fatal(err)
	}
	got, err := RecoverDirFS(mfs, "/db", RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	diffStates(t, 0, ref, got)
}
