package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/faultfs"
)

// The segmented log lives in the database directory as a chain of
// fixed-size(ish) segment files plus a manifest:
//
//	wal-000001.seg  wal-000002.seg  ...  wal.manifest  [wal.log]
//
// Each segment starts with a 32-byte header naming its sequence number
// and the LSN of its first record; record frames (the FileLog framing)
// follow. Segments are append-only and sealed with an fsync before the
// next segment is created, so at any crash only the final segment of the
// chain can have a torn tail. A legacy single-file wal.log, when present
// and flagged in the manifest, is the read-only base of the chain.
//
// Typed errors distinguish corruption (a chain recovery must refuse to
// silently skip) from the clean torn tail every crash leaves.
var (
	// ErrManifestCorrupt marks an unreadable or internally inconsistent
	// wal.manifest.
	ErrManifestCorrupt = errors.New("wal: manifest corrupt")
	// ErrSegmentCorrupt marks a segment whose header is unreadable or
	// contradicts its name or the manifest.
	ErrSegmentCorrupt = errors.New("wal: segment corrupt")
	// ErrSegmentMissing marks a segment the manifest references but the
	// filesystem does not hold.
	ErrSegmentMissing = errors.New("wal: manifest references missing segment")
	// ErrSegmentGap marks a chain in which records follow a torn or
	// missing region: replaying around the hole would silently drop
	// committed effects, so recovery refuses.
	ErrSegmentGap = errors.New("wal: segment chain gap: records follow a torn or missing region")
)

const (
	segMagic      = "ASETWSEG"
	segVersion    = 1
	segHeaderSize = 8 + 4 + 4 + 8 + 8 // magic, version, crc, seq, firstLSN
)

// segmentName renders the file name of segment seq.
func segmentName(seq uint64) string { return fmt.Sprintf("wal-%06d.seg", seq) }

// segmentPath renders the full path of segment seq under dir.
func segmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, segmentName(seq))
}

// encodeSegmentHeader renders the header for segment seq whose first
// record will carry firstLSN.
func encodeSegmentHeader(seq, firstLSN uint64) [segHeaderSize]byte {
	var b [segHeaderSize]byte
	copy(b[0:8], segMagic)
	binary.LittleEndian.PutUint32(b[8:12], segVersion)
	binary.LittleEndian.PutUint64(b[16:24], seq)
	binary.LittleEndian.PutUint64(b[24:32], firstLSN)
	crc := crc32.Update(0, crcTable, b[8:12])
	crc = crc32.Update(crc, crcTable, b[16:32])
	binary.LittleEndian.PutUint32(b[12:16], crc)
	return b
}

// decodeSegmentHeader parses a segment header, returning the sequence
// number and first LSN. Errors wrap ErrSegmentCorrupt.
func decodeSegmentHeader(b []byte) (seq, firstLSN uint64, err error) {
	if len(b) < segHeaderSize {
		return 0, 0, fmt.Errorf("%w: short header (%d bytes)", ErrSegmentCorrupt, len(b))
	}
	if string(b[0:8]) != segMagic {
		return 0, 0, fmt.Errorf("%w: bad magic", ErrSegmentCorrupt)
	}
	if v := binary.LittleEndian.Uint32(b[8:12]); v != segVersion {
		return 0, 0, fmt.Errorf("%w: unsupported version %d", ErrSegmentCorrupt, v)
	}
	crc := crc32.Update(0, crcTable, b[8:12])
	crc = crc32.Update(crc, crcTable, b[16:32])
	if want := binary.LittleEndian.Uint32(b[12:16]); crc != want {
		return 0, 0, fmt.Errorf("%w: header checksum mismatch", ErrSegmentCorrupt)
	}
	return binary.LittleEndian.Uint64(b[16:24]), binary.LittleEndian.Uint64(b[24:32]), nil
}

// segmentScan is the outcome of scanning one segment file.
type segmentScan struct {
	seq      uint64 // from the header
	firstLSN uint64 // from the header
	recs     []*Record
	end      int64 // offset just past the last intact record
	torn     bool  // the scan stopped before end-of-file content ran out
}

// scanSegment reads the segment at path, verifying its header against
// wantSeq (its name / manifest entry) and collecting every intact record.
// A torn tail stops the collection cleanly; header damage is reported as
// ErrSegmentCorrupt for the caller to interpret (fatal for a
// manifest-listed segment, a clean chain end for a probed one).
func scanSegment(fsys faultfs.FS, path string, wantSeq uint64) (*segmentScan, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var hdr [segHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		// Shorter than a header: a crash during creation.
		return nil, fmt.Errorf("%w: truncated header: %w", ErrSegmentCorrupt, err)
	}
	seq, firstLSN, err := decodeSegmentHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	if seq != wantSeq {
		return nil, fmt.Errorf("%w: header says segment %d, expected %d (duplicated or misnamed file)",
			ErrSegmentCorrupt, seq, wantSeq)
	}
	sc := &segmentScan{seq: seq, firstLSN: firstLSN}
	end, err := scanFrames(f, segHeaderSize, func(r *Record) error {
		sc.recs = append(sc.recs, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sc.end = end
	if st, err := f.Stat(); err == nil && st.Size() > end {
		sc.torn = true
	}
	return sc, nil
}
