package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"repro/internal/faultfs"
)

// legacyLogName is the single-file log a pre-segmented database left
// behind; it becomes the read-only base of the chain on first open.
const legacyLogName = "wal.log"

// chainEntry is one element of the discovered log chain, in replay order.
type chainEntry struct {
	legacy   bool
	listed   bool // named by the manifest (vs discovered by probing)
	path     string
	seq      uint64 // 0 for the legacy base
	firstLSN uint64 // filled from the segment header during the scan
}

// chainInfo is what a chain walk learns beyond the records themselves:
// everything an opener needs to resume appending.
type chainInfo struct {
	man     *manifest    // manifest as read from disk; nil if absent
	entries []chainEntry // the validated chain, in order
	nextLSN uint64

	lastIsSegment bool   // the chain ends in a segment to adopt for writing
	lastPath      string // that segment's path
	lastSeq       uint64
	lastEnd       int64 // offset just past its last intact record

	legacyPath string // set when the chain ends at the legacy base
	legacyEnd  int64  // its intact length (torn tail starts here)
}

// discoverChain lists the chain: the manifest's entries (or the legacy
// wal.log when no manifest exists yet) plus any trailing segments found
// by probing consecutive sequence numbers past the last listed one — a
// crash between segment creation and the manifest update leaves exactly
// such a segment. Files below the manifest's first segment are dead
// (truncation leftovers) and deliberately not probed.
func discoverChain(fsys faultfs.FS, dir string) ([]chainEntry, *manifest, error) {
	man, err := readManifest(fsys, dir)
	if err != nil {
		return nil, nil, err
	}
	var entries []chainEntry
	legacyPath := filepath.Join(dir, legacyLogName)
	probeFrom := uint64(1)
	if man == nil {
		if fileExists(fsys, legacyPath) {
			entries = append(entries, chainEntry{legacy: true, path: legacyPath})
		}
	} else {
		if man.Legacy {
			entries = append(entries, chainEntry{legacy: true, listed: true, path: legacyPath})
		}
		for _, s := range man.Segments {
			entries = append(entries, chainEntry{
				listed: true, path: segmentPath(dir, s.Seq), seq: s.Seq, firstLSN: s.FirstLSN,
			})
		}
		probeFrom = man.Segments[len(man.Segments)-1].Seq + 1
	}
	for seq := probeFrom; ; seq++ {
		p := segmentPath(dir, seq)
		if !fileExists(fsys, p) {
			break
		}
		entries = append(entries, chainEntry{path: p, seq: seq})
	}
	return entries, man, nil
}

func fileExists(fsys faultfs.FS, path string) bool {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return false
	}
	f.Close()
	return true
}

// entryScan is the outcome of scanning one chain element.
type entryScan struct {
	sc      *segmentScan
	fatal   error // corruption recovery must refuse (manifest-listed damage)
	invalid bool  // a probed segment with a damaged header: clean chain end
}

// scanEntry reads one chain element. Damage to a manifest-listed element
// is fatal — the manifest promised it — while damage to a probed one
// just ends the chain: its header never became durable before the crash.
func scanEntry(fsys faultfs.FS, e chainEntry) entryScan {
	if e.legacy {
		f, err := fsys.OpenFile(e.path, os.O_RDONLY, 0)
		if err != nil {
			if os.IsNotExist(err) {
				err = fmt.Errorf("%w: legacy %s", ErrSegmentMissing, legacyLogName)
			}
			return entryScan{fatal: err}
		}
		defer f.Close()
		sc := &segmentScan{}
		end, err := scanFrames(f, 0, func(r *Record) error {
			sc.recs = append(sc.recs, r)
			return nil
		})
		if err != nil {
			return entryScan{fatal: err}
		}
		sc.end = end
		if st, err := f.Stat(); err == nil && st.Size() > end {
			sc.torn = true
		}
		return entryScan{sc: sc}
	}
	sc, err := scanSegment(fsys, e.path, e.seq)
	if err != nil {
		if !e.listed {
			return entryScan{invalid: true}
		}
		if os.IsNotExist(err) {
			err = fmt.Errorf("%w: %s", ErrSegmentMissing, filepath.Base(e.path))
		}
		return entryScan{fatal: err}
	}
	if e.listed && sc.firstLSN != e.firstLSN {
		return entryScan{fatal: fmt.Errorf("%w: %s header first LSN %d, manifest says %d",
			ErrSegmentCorrupt, filepath.Base(e.path), sc.firstLSN, e.firstLSN)}
	}
	return entryScan{sc: sc}
}

// scanChain discovers, scans, and validates the chain, delivering every
// usable record to fn in strict LSN order. Segment scans run on up to
// parallel goroutines (the chain's order constraint applies to delivery,
// not to reading); the validation merge is sequential.
//
// The chain invariant checked here is the crash-consistency argument in
// miniature: LSNs must be contiguous across the whole chain, only the
// final element may have a torn tail, and any records found after a
// torn or missing region mean corruption (ErrSegmentGap) — replaying
// around a hole would silently drop committed effects.
func scanChain(fsys faultfs.FS, dir string, parallel int, fn func(*Record) error) (*chainInfo, error) {
	entries, man, err := discoverChain(fsys, dir)
	if err != nil {
		return nil, err
	}
	results := make([]entryScan, len(entries))
	if parallel <= 1 || len(entries) <= 1 {
		for i, e := range entries {
			results[i] = scanEntry(fsys, e)
		}
	} else {
		var wg sync.WaitGroup
		idx := make(chan int)
		workers := parallel
		if workers > len(entries) {
			workers = len(entries)
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			//asset:goroutine joined-by=waitgroup
			go func() {
				defer wg.Done()
				for i := range idx {
					results[i] = scanEntry(fsys, entries[i])
				}
			}()
		}
		for i := range entries {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for _, res := range results {
		if res.fatal != nil {
			return nil, res.fatal
		}
	}

	info := &chainInfo{man: man, nextLSN: 1}
	var expected uint64 // next LSN the chain must produce; 0 = not yet known
	broken := false     // a torn/invalid region was passed; nothing may follow
	lastValid := -1
	for i := range entries {
		res := results[i]
		if broken {
			if res.sc != nil && len(res.sc.recs) > 0 {
				return nil, fmt.Errorf("%w: %s holds records after the break",
					ErrSegmentGap, filepath.Base(entries[i].path))
			}
			continue
		}
		if res.invalid {
			broken = true
			continue
		}
		sc := res.sc
		if !entries[i].legacy {
			if expected != 0 && sc.firstLSN != expected {
				if sc.firstLSN < expected {
					return nil, fmt.Errorf("%w: %s first LSN %d overlaps the chain (expected %d)",
						ErrSegmentCorrupt, filepath.Base(entries[i].path), sc.firstLSN, expected)
				}
				return nil, fmt.Errorf("%w: chain jumps from LSN %d to %d at %s",
					ErrSegmentGap, expected, sc.firstLSN, filepath.Base(entries[i].path))
			}
			if expected == 0 {
				expected = sc.firstLSN
			}
			entries[i].firstLSN = sc.firstLSN
		}
		for _, r := range sc.recs {
			if expected == 0 {
				expected = r.LSN // the legacy base starts the sequence
			}
			if r.LSN != expected {
				if r.LSN < expected {
					return nil, fmt.Errorf("%w: %s repeats LSN %d (expected %d)",
						ErrSegmentCorrupt, filepath.Base(entries[i].path), r.LSN, expected)
				}
				return nil, fmt.Errorf("%w: %s jumps from LSN %d to %d",
					ErrSegmentGap, filepath.Base(entries[i].path), expected, r.LSN)
			}
			if fn != nil {
				if err := fn(r); err != nil {
					return nil, err
				}
			}
			expected++
		}
		if sc.torn {
			broken = true // acceptable only if nothing with records follows
		}
		lastValid = i
	}

	if expected != 0 {
		info.nextLSN = expected
	}
	info.entries = entries[:lastValid+1]
	if lastValid >= 0 {
		e := entries[lastValid]
		if e.legacy {
			info.legacyPath = e.path
			info.legacyEnd = results[lastValid].sc.end
		} else {
			info.lastIsSegment = true
			info.lastPath = e.path
			info.lastSeq = e.seq
			info.lastEnd = results[lastValid].sc.end
		}
	}
	return info, nil
}

// RecoverOptions configures RecoverDir.
type RecoverOptions struct {
	// Parallel caps the segment-scan workers; 0 means GOMAXPROCS, 1
	// forces a sequential scan.
	Parallel int
}

// RecoverDir replays the segmented log chain in dir and returns the
// committed state. Segments are scanned and CRC-checked in parallel
// across cores; the redo merge itself is sequential in LSN order, so the
// result is bit-identical to a sequential replay (the differential suite
// holds it to that against RecoverDirSequential).
func RecoverDir(dir string, opts RecoverOptions) (*State, error) {
	return RecoverDirFS(faultfs.OS{}, dir, opts)
}

// RecoverDirFS is RecoverDir over an injected filesystem.
func RecoverDirFS(fsys faultfs.FS, dir string, opts RecoverOptions) (*State, error) {
	par := opts.Parallel
	if par == 0 {
		par = runtime.GOMAXPROCS(0)
	}
	var recs []*Record
	info, err := scanChain(fsys, dir, par, func(r *Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var lastCkpt uint64
	for _, r := range recs {
		if r.Type == TCheckpoint {
			lastCkpt = r.LSN
		}
	}
	rp := newReplayer()
	for _, r := range recs {
		if r.LSN <= lastCkpt {
			rp.note(r) // the checkpointed store already reflects it
		} else {
			rp.apply(r)
		}
	}
	st := rp.finish()
	if info.nextLSN > st.NextLSN {
		// An empty tail segment still pins the LSN sequence forward.
		st.NextLSN = info.nextLSN
	}
	return st, nil
}

// RecoverDirSequential is the reference replayer the differential suite
// compares RecoverDir against: strictly sequential, two streaming passes
// (checkpoint hunt, then replay), no worker machinery at all. It is
// deliberately the dumbest correct implementation.
func RecoverDirSequential(dir string) (*State, error) {
	return RecoverDirSequentialFS(faultfs.OS{}, dir)
}

// RecoverDirSequentialFS is RecoverDirSequential over an injected
// filesystem.
func RecoverDirSequentialFS(fsys faultfs.FS, dir string) (*State, error) {
	var lastCkpt uint64
	_, err := scanChain(fsys, dir, 1, func(r *Record) error {
		if r.Type == TCheckpoint {
			lastCkpt = r.LSN
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rp := newReplayer()
	info, err := scanChain(fsys, dir, 1, func(r *Record) error {
		if r.LSN <= lastCkpt {
			rp.note(r)
		} else {
			rp.apply(r)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	st := rp.finish()
	if info.nextLSN > st.NextLSN {
		st.NextLSN = info.nextLSN
	}
	return st, nil
}

// ScanChain reads every intact record of the chain in dir in LSN order,
// invoking fn for each (walinspect uses it).
func ScanChain(dir string, fn func(*Record) error) error {
	return ScanChainFS(faultfs.OS{}, dir, fn)
}

// ScanChainFS is ScanChain over an injected filesystem.
func ScanChainFS(fsys faultfs.FS, dir string, fn func(*Record) error) error {
	_, err := scanChain(fsys, dir, 1, fn)
	return err
}
