package wal

import (
	"fmt"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/xid"
)

// appendUntilCrash drives committed transactions through l until an
// append or flush fails (the scripted crash fired), returning how many
// transactions were fully acknowledged before the failure.
func appendUntilCrash(t *testing.T, l *SegmentedLog, max int) int {
	t.Helper()
	acked := 0
	for i := 0; i < max; i++ {
		if !tryCommitOne(l, acked+1) {
			return acked
		}
		acked++
	}
	t.Fatalf("crash never fired within %d transactions", max)
	return acked
}

// tryCommitOne appends one committed transaction (same shape as
// appendCommitted) and reports whether it was acknowledged.
func tryCommitOne(l *SegmentedLog, id int) bool {
	tid := xid.TID(id)
	recs := []*Record{
		{Type: TBegin, TID: tid},
		{Type: TUpdate, TID: tid, OID: xid.OID(id), Kind: KindCreate, After: []byte(fmt.Sprintf("v%d", id))},
		{Type: TCommit, TIDs: []xid.TID{tid}},
	}
	for _, r := range recs {
		if _, err := l.Append(r); err != nil {
			return false
		}
	}
	return l.Flush() == nil
}

// TestCrashAtRotationBoundary pins the ISSUE-named regression: a crash
// in the window between the new segment becoming durable (its header
// fsync) and the manifest rename that publishes it must recover exactly
// the pre-rotation prefix — every transaction acknowledged before the
// rotation, nothing more, nothing less, and the chain must remain
// reopenable. Two boundary flavours: losing the manifest rename itself,
// and losing the manifest tmp-file write just before it.
func TestCrashAtRotationBoundary(t *testing.T) {
	cases := []struct {
		name string
		rule faultfs.Rule
	}{
		// Rename #1 happens inside OpenSegmentedFS (fresh-chain manifest);
		// #2 is the first rotation's publish.
		{"lost-manifest-rename", faultfs.Rule{
			Op: faultfs.OpRename, Path: "wal.manifest", Nth: 2,
			Action: faultfs.ActCrash, Keep: -1}},
		// Same counting for the tmp file: write #2 is the rotation's.
		{"lost-manifest-tmp-write", faultfs.Rule{
			Op: faultfs.OpWrite, Path: "wal.manifest.tmp", Nth: 2,
			Action: faultfs.ActCrash, Keep: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mfs := faultfs.NewMem()
			mfs.SetScript(faultfs.NewScript(tc.rule))
			l, err := OpenSegmentedFS(mfs, "/db", testSegOpts(true))
			if err != nil {
				t.Fatal(err)
			}
			acked := appendUntilCrash(t, l, 50)
			if !mfs.Crashed() {
				t.Fatal("filesystem did not crash")
			}
			if acked == 0 {
				t.Fatal("crash fired before any transaction committed; boundary not exercised")
			}
			for _, mode := range []faultfs.CrashMode{faultfs.KeepAll, faultfs.DropUnsynced} {
				img := mfs.CrashImage(mode)
				for _, par := range []int{1, 4} {
					st, err := RecoverDirFS(img, "/db", RecoverOptions{Parallel: par})
					if err != nil {
						t.Fatalf("%v parallel=%d: %v", mode, par, err)
					}
					checkRecoveredRange(t, st, 1, acked)
					if want := uint64(3*acked + 1); st.NextLSN != want {
						t.Fatalf("%v parallel=%d: NextLSN = %d, want %d (exact pre-rotation prefix)",
							mode, par, st.NextLSN, want)
					}
				}
				// The chain must also be adoptable: reopen, extend, recover.
				l2, err := OpenSegmentedFS(img, "/db", testSegOpts(true))
				if err != nil {
					t.Fatalf("%v: reopen: %v", mode, err)
				}
				appendCommitted(t, l2, acked+1, 2)
				if err := l2.Close(); err != nil {
					t.Fatal(err)
				}
				st, err := RecoverDirFS(img, "/db", RecoverOptions{})
				if err != nil {
					t.Fatal(err)
				}
				checkRecoveredRange(t, st, 1, acked+2)
			}
		})
	}
}

// TestCrashAtDirectorySyncBoundaries sweeps a crash across every
// directory fsync the chain issues — after each segment creation and
// after each manifest rename, inside Open and inside every rotation.
// In DropUnsynced mode the crash deletes the not-yet-dir-synced entry
// (the new segment file, or the manifest rename rolls back), which is
// exactly the failure the plain crash matrix could not model before
// MemFS tracked directory-entry durability. Whatever survives, recovery
// must return exactly the acked prefix: the rotation's dir syncs run
// before the batch write, so the in-flight batch can never be on disk.
func TestCrashAtDirectorySyncBoundaries(t *testing.T) {
	swept := 0
	for nth := 1; nth < 200; nth++ {
		mfs := faultfs.NewMem()
		mfs.SetScript(faultfs.NewScript(faultfs.Rule{
			Op: faultfs.OpSyncDir, Nth: nth, Action: faultfs.ActCrash, Keep: -1,
		}))
		acked := 0
		l, err := OpenSegmentedFS(mfs, "/db", testSegOpts(true))
		if err == nil {
			for acked < 60 && tryCommitOne(l, acked+1) {
				acked++
			}
		}
		if !mfs.Crashed() {
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			break // nth exceeds the SyncDirs a 60-txn run issues
		}
		swept++
		for _, mode := range []faultfs.CrashMode{faultfs.KeepAll, faultfs.DropUnsynced} {
			img := mfs.CrashImage(mode)
			st, rerr := RecoverDirFS(img, "/db", RecoverOptions{Parallel: 4})
			if rerr != nil {
				t.Fatalf("syncdir #%d %v: %v", nth, mode, rerr)
			}
			checkRecoveredRange(t, st, 1, acked)
			if want := uint64(3*acked + 1); st.NextLSN != want {
				t.Fatalf("syncdir #%d %v: NextLSN = %d, want %d (exact acked prefix)",
					nth, mode, st.NextLSN, want)
			}
			// The survivor must stay adoptable and writable.
			l2, rerr := OpenSegmentedFS(img, "/db", testSegOpts(true))
			if rerr != nil {
				t.Fatalf("syncdir #%d %v: reopen: %v", nth, mode, rerr)
			}
			appendCommitted(t, l2, acked+1, 1)
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if swept < 4 {
		t.Fatalf("swept only %d directory-sync crash points; rotation boundaries not exercised", swept)
	}
}

// TestCrashAtTruncationCutover: a crash on the truncation's manifest
// cutover rename leaves the old manifest authoritative, so recovery must
// return the entire pre-truncation chain — the new, still-unpublished
// segment is probed, found empty, and contributes nothing.
func TestCrashAtTruncationCutover(t *testing.T) {
	mfs := faultfs.NewMem()
	l, err := OpenSegmentedFS(mfs, "/db", testSegOpts(true))
	if err != nil {
		t.Fatal(err)
	}
	appendCommitted(t, l, 1, 10)
	mfs.SetScript(faultfs.NewScript(faultfs.Rule{
		Op: faultfs.OpRename, Path: "wal.manifest", Nth: 1,
		Action: faultfs.ActCrash, Keep: -1,
	}))
	if err := l.Truncate(); err == nil {
		t.Fatal("Truncate succeeded despite scripted crash")
	}
	if !mfs.Crashed() {
		t.Fatal("filesystem did not crash")
	}
	for _, mode := range []faultfs.CrashMode{faultfs.KeepAll, faultfs.DropUnsynced} {
		img := mfs.CrashImage(mode)
		st, err := RecoverDirFS(img, "/db", RecoverOptions{Parallel: 4})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		checkRecoveredRange(t, st, 1, 10)
		if want := uint64(31); st.NextLSN != want {
			t.Fatalf("%v: NextLSN = %d, want %d", mode, st.NextLSN, want)
		}
	}
}

// TestCrashAtTruncationCleanup: once the cutover rename lands, the new
// single-segment manifest is authoritative. A crash during the removal
// of old segments leaves orphan files below the manifest's first listed
// sequence; recovery must ignore them completely and the chain must
// stay reopenable and writable.
func TestCrashAtTruncationCleanup(t *testing.T) {
	mfs := faultfs.NewMem()
	l, err := OpenSegmentedFS(mfs, "/db", testSegOpts(true))
	if err != nil {
		t.Fatal(err)
	}
	appendCommitted(t, l, 1, 10)
	mfs.SetScript(faultfs.NewScript(faultfs.Rule{
		Op: faultfs.OpRemove, Nth: 1, Action: faultfs.ActCrash, Keep: -1,
	}))
	if err := l.Truncate(); err == nil {
		t.Fatal("Truncate succeeded despite scripted crash")
	}
	if !mfs.Crashed() {
		t.Fatal("filesystem did not crash")
	}
	for _, mode := range []faultfs.CrashMode{faultfs.KeepAll, faultfs.DropUnsynced} {
		img := mfs.CrashImage(mode)
		st, err := RecoverDirFS(img, "/db", RecoverOptions{Parallel: 4})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(st.Objects) != 0 {
			t.Fatalf("%v: truncated chain recovered %d objects, want 0", mode, len(st.Objects))
		}
		if want := uint64(31); st.NextLSN != want {
			t.Fatalf("%v: NextLSN = %d, want %d (preserved across truncation)", mode, st.NextLSN, want)
		}
		l2, err := OpenSegmentedFS(img, "/db", testSegOpts(true))
		if err != nil {
			t.Fatalf("%v: reopen: %v", mode, err)
		}
		appendCommitted(t, l2, 11, 3)
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		st, err = RecoverDirFS(img, "/db", RecoverOptions{})
		if err != nil {
			t.Fatal(err)
		}
		checkRecoveredRange(t, st, 11, 3)
	}
}
