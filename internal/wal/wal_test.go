package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/xid"
)

func TestRecordRoundTrip(t *testing.T) {
	recs := []*Record{
		{Type: TBegin, TID: 7},
		{Type: TUpdate, TID: 7, OID: 42, Kind: KindModify, Before: []byte("old"), After: []byte("new")},
		{Type: TUpdate, TID: 7, OID: 43, Kind: KindCreate, After: []byte("born")},
		{Type: TUpdate, TID: 7, OID: 44, Kind: KindDelete, Before: []byte("gone")},
		{Type: TDelegate, TID: 7, TID2: 9, OIDs: []xid.OID{42, 43}},
		{Type: TDelegate, TID: 7, TID2: 9}, // all objects
		{Type: TCommit, TIDs: []xid.TID{7, 9, 11}},
		{Type: TAbort, TID: 12},
		{Type: TUndo, TID: 12, OID: 42, Kind: KindModify, After: []byte("restored")},
		{Type: TUndo, TID: 12, OID: 43, Kind: KindDelete},
		{Type: TCheckpoint},
	}
	for i, r := range recs {
		got, err := unmarshal(r.marshal())
		if err != nil {
			t.Fatalf("rec %d (%v): unmarshal: %v", i, r.Type, err)
		}
		if got.Type != r.Type || got.TID != r.TID || got.TID2 != r.TID2 ||
			got.OID != r.OID || got.Kind != r.Kind ||
			!bytes.Equal(got.Before, r.Before) || !bytes.Equal(got.After, r.After) ||
			len(got.OIDs) != len(r.OIDs) || len(got.TIDs) != len(r.TIDs) {
			t.Fatalf("rec %d round trip mismatch: %+v vs %+v", i, got, r)
		}
		if (got.OIDs == nil) != (r.OIDs == nil) {
			t.Fatalf("rec %d OIDs nil-ness lost (delegate-all must stay nil)", i)
		}
	}
}

func TestFileLogAppendScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		lsn, err := l.Append(&Record{Type: TBegin, TID: xid.TID(i)})
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i) {
			t.Fatalf("lsn = %d, want %d", lsn, i)
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var got []xid.TID
	if err := ScanFile(path, func(r *Record) error {
		got = append(got, r.TID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != 1 || got[9] != 10 {
		t.Fatalf("scan got %v", got)
	}
}

func TestFileLogReopenContinuesLSN(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := OpenFile(path, false)
	l.Append(&Record{Type: TBegin, TID: 1})
	l.Append(&Record{Type: TBegin, TID: 2})
	l.Close()
	l2, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	lsn, _ := l2.Append(&Record{Type: TBegin, TID: 3})
	if lsn != 3 {
		t.Fatalf("lsn after reopen = %d, want 3", lsn)
	}
}

func TestTornTailIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := OpenFile(path, true)
	l.Append(&Record{Type: TBegin, TID: 1})
	l.Append(&Record{Type: TCommit, TIDs: []xid.TID{1}})
	l.Close()
	// Simulate a crash mid-append: garbage partial frame at the tail.
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	f.Write([]byte{0x10, 0, 0, 0, 0xde, 0xad})
	f.Close()

	var n int
	if err := ScanFile(path, func(*Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("scan of torn log saw %d records, want 2", n)
	}
	// Reopen must truncate the tail and keep appending cleanly.
	l2, err := OpenFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if lsn, _ := l2.Append(&Record{Type: TBegin, TID: 2}); lsn != 3 {
		t.Fatalf("lsn after torn reopen = %d, want 3", lsn)
	}
	l2.Close()
	n = 0
	ScanFile(path, func(*Record) error { n++; return nil })
	if n != 3 {
		t.Fatalf("after repair scan saw %d records, want 3", n)
	}
}

func TestCorruptMiddleStopsScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := OpenFile(path, true)
	l.Append(&Record{Type: TBegin, TID: 1})
	l.Append(&Record{Type: TBegin, TID: 2})
	l.Close()
	data, _ := os.ReadFile(path)
	data[len(data)-3] ^= 0xff // corrupt last record's payload
	os.WriteFile(path, data, 0o644)
	var n int
	ScanFile(path, func(*Record) error { n++; return nil })
	if n != 1 {
		t.Fatalf("scan saw %d records, want 1 (corrupt record must stop scan)", n)
	}
}

func TestRecoverCommittedOnly(t *testing.T) {
	recs := []*Record{
		{LSN: 1, Type: TBegin, TID: 1},
		{LSN: 2, Type: TUpdate, TID: 1, OID: 10, Kind: KindCreate, After: []byte("a")},
		{LSN: 3, Type: TBegin, TID: 2},
		{LSN: 4, Type: TUpdate, TID: 2, OID: 20, Kind: KindCreate, After: []byte("b")},
		{LSN: 5, Type: TCommit, TIDs: []xid.TID{1}},
		// t2 never commits: loser.
	}
	st := RecoverRecords(recs)
	if string(st.Objects[10]) != "a" {
		t.Fatalf("committed object missing: %v", st.Objects)
	}
	if _, ok := st.Objects[20]; ok {
		t.Fatal("loser's object recovered")
	}
	if len(st.Losers) != 1 || st.Losers[0] != 2 {
		t.Fatalf("losers = %v, want [2]", st.Losers)
	}
	if st.MaxTID != 2 || st.NextLSN != 6 {
		t.Fatalf("MaxTID=%d NextLSN=%d", st.MaxTID, st.NextLSN)
	}
}

func TestRecoverAbortDiscards(t *testing.T) {
	recs := []*Record{
		{LSN: 1, Type: TBegin, TID: 1},
		{LSN: 2, Type: TUpdate, TID: 1, OID: 10, Kind: KindCreate, After: []byte("x")},
		{LSN: 3, Type: TAbort, TID: 1},
	}
	st := RecoverRecords(recs)
	if len(st.Objects) != 0 || len(st.Losers) != 0 {
		t.Fatalf("abort not clean: %+v", st)
	}
}

func TestRecoverDelegation(t *testing.T) {
	// t1 updates ob10 and ob11, delegates ob10 to t2, then aborts. t2
	// commits. Only ob10 must survive: responsibility moved with delegate.
	recs := []*Record{
		{LSN: 1, Type: TBegin, TID: 1},
		{LSN: 2, Type: TUpdate, TID: 1, OID: 10, Kind: KindCreate, After: []byte("ten")},
		{LSN: 3, Type: TUpdate, TID: 1, OID: 11, Kind: KindCreate, After: []byte("eleven")},
		{LSN: 4, Type: TBegin, TID: 2},
		{LSN: 5, Type: TDelegate, TID: 1, TID2: 2, OIDs: []xid.OID{10}},
		{LSN: 6, Type: TAbort, TID: 1},
		{LSN: 7, Type: TCommit, TIDs: []xid.TID{2}},
	}
	st := RecoverRecords(recs)
	if string(st.Objects[10]) != "ten" {
		t.Fatal("delegated update lost")
	}
	if _, ok := st.Objects[11]; ok {
		t.Fatal("aborter's retained update survived")
	}
}

func TestRecoverDelegateAll(t *testing.T) {
	recs := []*Record{
		{LSN: 1, Type: TBegin, TID: 1},
		{LSN: 2, Type: TUpdate, TID: 1, OID: 10, Kind: KindCreate, After: []byte("a")},
		{LSN: 3, Type: TUpdate, TID: 1, OID: 11, Kind: KindCreate, After: []byte("b")},
		{LSN: 4, Type: TDelegate, TID: 1, TID2: 2}, // all
		{LSN: 5, Type: TCommit, TIDs: []xid.TID{2}},
	}
	st := RecoverRecords(recs)
	if len(st.Objects) != 2 {
		t.Fatalf("delegate-all lost updates: %v", st.Objects)
	}
}

func TestRecoverUndoAppliesUnconditionally(t *testing.T) {
	// The paper's cooperating-transaction caveat: t1 creates ob and commits
	// a modify; t2 (permitted) modified it earlier; t2's abort installs its
	// before image over t1's committed value. Recovery must reproduce the
	// final (post-undo) state.
	recs := []*Record{
		{LSN: 1, Type: TBegin, TID: 1},
		{LSN: 2, Type: TUpdate, TID: 1, OID: 5, Kind: KindCreate, After: []byte("v0")},
		{LSN: 3, Type: TCommit, TIDs: []xid.TID{1}},
		{LSN: 4, Type: TBegin, TID: 2},
		{LSN: 5, Type: TUpdate, TID: 2, OID: 5, Kind: KindModify, Before: []byte("v0"), After: []byte("v2")},
		{LSN: 6, Type: TBegin, TID: 3},
		{LSN: 7, Type: TUpdate, TID: 3, OID: 5, Kind: KindModify, Before: []byte("v2"), After: []byte("v3")},
		{LSN: 8, Type: TCommit, TIDs: []xid.TID{3}},
		{LSN: 9, Type: TUndo, TID: 2, OID: 5, Kind: KindModify, After: []byte("v0")},
		{LSN: 10, Type: TAbort, TID: 2},
	}
	st := RecoverRecords(recs)
	if string(st.Objects[5]) != "v0" {
		t.Fatalf("object 5 = %q, want v0 (undo must override committed v3)", st.Objects[5])
	}
}

func TestRecoverGroupCommitOrdering(t *testing.T) {
	// Interleaved updates by two group members must apply in LSN order.
	recs := []*Record{
		{LSN: 1, Type: TBegin, TID: 1},
		{LSN: 2, Type: TBegin, TID: 2},
		{LSN: 3, Type: TUpdate, TID: 1, OID: 9, Kind: KindCreate, After: []byte("first")},
		{LSN: 4, Type: TUpdate, TID: 2, OID: 9, Kind: KindModify, Before: []byte("first"), After: []byte("second")},
		{LSN: 5, Type: TCommit, TIDs: []xid.TID{2, 1}}, // group, listed out of order
	}
	st := RecoverRecords(recs)
	if string(st.Objects[9]) != "second" {
		t.Fatalf("object 9 = %q, want second", st.Objects[9])
	}
}

func TestRecoverCheckpointSkipsPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := OpenFile(path, true)
	l.Append(&Record{Type: TBegin, TID: 1})
	l.Append(&Record{Type: TUpdate, TID: 1, OID: 1, Kind: KindCreate, After: []byte("pre")})
	l.Append(&Record{Type: TCommit, TIDs: []xid.TID{1}})
	l.Append(&Record{Type: TCheckpoint})
	l.Append(&Record{Type: TBegin, TID: 2})
	l.Append(&Record{Type: TUpdate, TID: 2, OID: 2, Kind: KindCreate, After: []byte("post")})
	l.Append(&Record{Type: TCommit, TIDs: []xid.TID{2}})
	l.Close()
	st, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Objects[1]; ok {
		t.Fatal("pre-checkpoint update replayed")
	}
	if string(st.Objects[2]) != "post" {
		t.Fatal("post-checkpoint update lost")
	}
	if st.MaxTID != 2 {
		t.Fatalf("MaxTID = %d, want 2", st.MaxTID)
	}
}

func TestFileLogTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := OpenFile(path, true)
	l.Append(&Record{Type: TBegin, TID: 1})
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	l.Append(&Record{Type: TBegin, TID: 2})
	l.Close()
	var tids []xid.TID
	ScanFile(path, func(r *Record) error { tids = append(tids, r.TID); return nil })
	if len(tids) != 1 || tids[0] != 2 {
		t.Fatalf("post-truncate scan = %v, want [2]", tids)
	}
}

// TestQuickRecoverEqualsDirectApply: for random sequences of single-txn
// create/modify/delete + always-commit, recovery equals applying operations
// directly in order.
func TestQuickRecoverEqualsDirectApply(t *testing.T) {
	f := func(steps []struct {
		Oid uint8
		Val uint8
		Op  uint8
	}) bool {
		var recs []*Record
		want := map[xid.OID][]byte{}
		lsn := uint64(1)
		tid := xid.TID(1)
		for _, s := range steps {
			oid := xid.OID(s.Oid%8) + 1
			val := []byte{s.Val}
			recs = append(recs, &Record{LSN: lsn, Type: TBegin, TID: tid})
			lsn++
			switch s.Op % 3 {
			case 0, 1: // create-or-modify
				kind := KindModify
				if _, ok := want[oid]; !ok {
					kind = KindCreate
				}
				recs = append(recs, &Record{LSN: lsn, Type: TUpdate, TID: tid, OID: oid, Kind: kind, After: val})
				want[oid] = val
			case 2:
				recs = append(recs, &Record{LSN: lsn, Type: TUpdate, TID: tid, OID: oid, Kind: KindDelete})
				delete(want, oid)
			}
			lsn++
			recs = append(recs, &Record{LSN: lsn, Type: TCommit, TIDs: []xid.TID{tid}})
			lsn++
			tid++
		}
		st := RecoverRecords(recs)
		if len(st.Objects) != len(want) {
			return false
		}
		for k, v := range want {
			if !bytes.Equal(st.Objects[k], v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMemLogBasics(t *testing.T) {
	l := NewMem()
	lsn1, _ := l.Append(&Record{Type: TBegin, TID: 1})
	lsn2, _ := l.Append(&Record{Type: TCommit, TIDs: []xid.TID{1}})
	if lsn1 != 1 || lsn2 != 2 {
		t.Fatalf("lsns = %d, %d", lsn1, lsn2)
	}
	l.Flush()
	l.Flush()
	if l.Flushes() != 2 {
		t.Fatalf("flushes = %d", l.Flushes())
	}
	recs := l.Records()
	if len(recs) != 2 || recs[0].Type != TBegin {
		t.Fatalf("records = %v", recs)
	}
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if len(l.Records()) != 0 {
		t.Fatal("truncate kept records")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTypeAndKindStrings(t *testing.T) {
	types := map[Type]string{
		TBegin: "begin", TUpdate: "update", TDelegate: "delegate",
		TCommit: "commit", TAbort: "abort", TUndo: "undo", TCheckpoint: "checkpoint",
	}
	for ty, want := range types {
		if ty.String() != want {
			t.Errorf("%d.String() = %q, want %q", ty, ty.String(), want)
		}
	}
	if Type(99).String() == "" {
		t.Error("unknown type must render")
	}
	kinds := map[UpdateKind]string{
		KindModify: "modify", KindCreate: "create", KindDelete: "delete", KindDelta: "delta",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("kind %d = %q, want %q", k, k.String(), want)
		}
	}
	if UpdateKind(99).String() == "" {
		t.Error("unknown kind must render")
	}
}

func TestCoalescerTruncatePassthrough(t *testing.T) {
	base := NewMem()
	c := NewCoalescer(base, 0)
	c.Append(&Record{Type: TBegin, TID: 1})
	if err := c.Truncate(); err != nil {
		t.Fatal(err)
	}
	if len(base.Records()) != 0 {
		t.Fatal("coalescer truncate did not reach the base log")
	}
}

func TestDecodeCounterShortImages(t *testing.T) {
	if DecodeCounter([]byte{0x01, 0x02}) != 0x0201 {
		t.Fatal("short image decode wrong")
	}
	if DecodeCounter(nil) != 0 {
		t.Fatal("nil image decode wrong")
	}
	if DecodeCounter(EncodeCounter(123456789)) != 123456789 {
		t.Fatal("round trip wrong")
	}
}

func TestRecoverLoserWithDelegatedInOps(t *testing.T) {
	// A transaction that never began but received delegated ops and never
	// terminated is a loser; its delegated ops are dropped.
	recs := []*Record{
		{LSN: 1, Type: TBegin, TID: 1},
		{LSN: 2, Type: TUpdate, TID: 1, OID: 5, Kind: KindCreate, After: []byte("x")},
		{LSN: 3, Type: TDelegate, TID: 1, TID2: 9}, // t9 never began
		{LSN: 4, Type: TAbort, TID: 1},
	}
	st := RecoverRecords(recs)
	if len(st.Objects) != 0 {
		t.Fatalf("objects = %v", st.Objects)
	}
	found := false
	for _, l := range st.Losers {
		if l == 9 {
			found = true
		}
	}
	if !found {
		t.Fatalf("losers = %v, want t9 included", st.Losers)
	}
}
