package wal

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// slowLog counts flushes and makes each take a while, so concurrent
// flushers overlap and coalesce.
type slowLog struct {
	MemLog
	delay   time.Duration
	flushes atomic.Int64
}

func (l *slowLog) Flush() error {
	l.flushes.Add(1)
	time.Sleep(l.delay)
	return l.MemLog.Flush()
}

func TestCoalescerSingleCaller(t *testing.T) {
	base := &slowLog{}
	c := NewCoalescer(base, 0)
	for i := 0; i < 3; i++ {
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if got := base.flushes.Load(); got != 3 {
		t.Fatalf("flushes = %d, want 3 (no spurious coalescing when serial)", got)
	}
}

func TestCoalescerBatchesConcurrentFlushes(t *testing.T) {
	base := &slowLog{delay: 20 * time.Millisecond}
	c := NewCoalescer(base, 0)
	const callers = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := c.Flush(); err != nil {
				t.Error(err)
			}
		}()
	}
	close(start)
	wg.Wait()
	got := base.flushes.Load()
	// All 16 arrive together: one leads, the rest coalesce into at most a
	// couple of follow-up forces.
	if got >= callers/2 {
		t.Fatalf("flushes = %d for %d concurrent callers; coalescing broken", got, callers)
	}
	if got < 1 {
		t.Fatal("no flush happened at all")
	}
}

// TestCoalescerCoversLateAppends: a Flush arriving after the leader began
// the physical force must trigger another force (its data was not covered).
func TestCoalescerCoversLateAppends(t *testing.T) {
	base := &slowLog{delay: 30 * time.Millisecond}
	c := NewCoalescer(base, 0)
	first := make(chan struct{})
	go func() {
		c.Flush()
		close(first)
	}()
	time.Sleep(10 * time.Millisecond) // leader is now inside the force
	// This caller's appends are NOT covered by the in-flight force.
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	<-first
	if got := base.flushes.Load(); got != 2 {
		t.Fatalf("flushes = %d, want 2 (late arrival needs its own force)", got)
	}
}

func TestCoalescerWindowAccumulates(t *testing.T) {
	base := &slowLog{}
	c := NewCoalescer(base, 30*time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			time.Sleep(time.Duration(i) * 2 * time.Millisecond) // staggered arrivals
			c.Flush()
		}(i)
	}
	wg.Wait()
	if got := base.flushes.Load(); got > 2 {
		t.Fatalf("flushes = %d; the window should have batched staggered arrivals", got)
	}
	if c.Forces() != uint64(base.flushes.Load()) {
		t.Fatalf("Forces() = %d, want %d", c.Forces(), base.flushes.Load())
	}
}

// errLog fails its flushes.
type errLog struct{ MemLog }

func (l *errLog) Flush() error { return errFlushBoom }

var errFlushBoom = errTruncated // reuse a sentinel; identity is what matters

func TestCoalescerPropagatesErrors(t *testing.T) {
	c := NewCoalescer(&errLog{}, 0)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Flush(); err == nil {
				t.Error("coalesced flush swallowed the error")
			}
		}()
	}
	wg.Wait()
}
