package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/faultfs"
)

const (
	manifestName = "wal.manifest"
	manMagic     = "ASETWMAN"
	manVersion   = 1
)

// manifestSegment is one chain entry: a segment's sequence number and
// the LSN of its first record.
type manifestSegment struct {
	Seq      uint64
	FirstLSN uint64
}

// manifest describes the segment chain: an optional legacy single-file
// wal.log base followed by consecutively numbered segments. The manifest
// is advisory about the chain's *end* — a crash between segment creation
// and the manifest update leaves a trailing segment recovery discovers
// by probing — but authoritative about its *start*: truncation moves the
// first listed segment forward, and files below it are dead.
type manifest struct {
	Legacy   bool // a legacy wal.log precedes the segments
	Segments []manifestSegment
}

// encode renders the manifest:
//
//	magic(8) version(4) crc(4) legacy(1) count(4) {seq(8) firstLSN(8)}*
//
// The crc covers everything after itself.
func (m *manifest) encode() []byte {
	buf := make([]byte, 0, 21+16*len(m.Segments))
	buf = append(buf, manMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, manVersion)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // crc backfilled below
	if m.Legacy {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Segments)))
	for _, s := range m.Segments {
		buf = binary.LittleEndian.AppendUint64(buf, s.Seq)
		buf = binary.LittleEndian.AppendUint64(buf, s.FirstLSN)
	}
	crc := crc32.Update(0, crcTable, buf[16:])
	binary.LittleEndian.PutUint32(buf[12:16], crc)
	return buf
}

// decodeManifest parses and validates manifest bytes. Errors wrap
// ErrManifestCorrupt.
func decodeManifest(b []byte) (*manifest, error) {
	if len(b) < 21 {
		return nil, fmt.Errorf("%w: short file (%d bytes)", ErrManifestCorrupt, len(b))
	}
	if string(b[0:8]) != manMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrManifestCorrupt)
	}
	if v := binary.LittleEndian.Uint32(b[8:12]); v != manVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrManifestCorrupt, v)
	}
	if crc := crc32.Update(0, crcTable, b[16:]); crc != binary.LittleEndian.Uint32(b[12:16]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrManifestCorrupt)
	}
	m := &manifest{Legacy: b[16] == 1}
	if b[16] > 1 {
		return nil, fmt.Errorf("%w: bad legacy flag %d", ErrManifestCorrupt, b[16])
	}
	count := binary.LittleEndian.Uint32(b[17:21])
	rest := b[21:]
	if uint64(len(rest)) != uint64(count)*16 {
		return nil, fmt.Errorf("%w: %d entries but %d trailing bytes", ErrManifestCorrupt, count, len(rest))
	}
	for i := uint32(0); i < count; i++ {
		s := manifestSegment{
			Seq:      binary.LittleEndian.Uint64(rest[0:8]),
			FirstLSN: binary.LittleEndian.Uint64(rest[8:16]),
		}
		rest = rest[16:]
		// The chain is consecutively numbered with ascending first LSNs;
		// anything else (duplicated entries included) is corruption.
		if n := len(m.Segments); n > 0 {
			prev := m.Segments[n-1]
			if s.Seq != prev.Seq+1 {
				return nil, fmt.Errorf("%w: segment %d follows %d", ErrManifestCorrupt, s.Seq, prev.Seq)
			}
			if s.FirstLSN < prev.FirstLSN {
				return nil, fmt.Errorf("%w: first LSN regresses at segment %d", ErrManifestCorrupt, s.Seq)
			}
		}
		m.Segments = append(m.Segments, s)
	}
	if len(m.Segments) == 0 {
		return nil, fmt.Errorf("%w: empty segment list", ErrManifestCorrupt)
	}
	return m, nil
}

// readManifest loads dir's manifest; a missing file returns (nil, nil).
func readManifest(fsys faultfs.FS, dir string) (*manifest, error) {
	f, err := fsys.OpenFile(filepath.Join(dir, manifestName), os.O_RDONLY, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrManifestCorrupt, err)
	}
	return decodeManifest(data)
}

// writeManifest atomically replaces dir's manifest: the new image is
// written to a temporary file, fsynced, and renamed over the old one, so
// a crash at any point leaves one intact manifest — the old chain or the
// new, never a torn in-between.
//asset:durable before=Rename
func writeManifest(fsys faultfs.FS, dir string, m *manifest) error {
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := fsys.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(m.encode()); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	// The rename itself is only a volatile directory update until the
	// directory is fsynced; without this a crash can roll the directory
	// back to the old manifest even though the new one was "renamed into
	// place", undoing a truncation cutover or segment-chain extension
	// the caller already acted on.
	return fsys.SyncDir(dir)
}
