package wal

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/xid"
)

// testSegOpts returns options with a tiny rotation threshold so tests
// cross many segment boundaries with little data.
func testSegOpts(sync bool) SegmentedOptions {
	return SegmentedOptions{SegmentBytes: 256, Sync: sync}
}

// appendCommitted appends n committed single-update transactions and
// returns the manager-visible images, flushing after every commit the
// way the commit protocol does.
func appendCommitted(t testing.TB, l *SegmentedLog, startTID, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		tid := xid.TID(startTID + i)
		oid := xid.OID(startTID + i)
		recs := []*Record{
			{Type: TBegin, TID: tid},
			{Type: TUpdate, TID: tid, OID: oid, Kind: KindCreate, After: []byte(fmt.Sprintf("v%d", tid))},
			{Type: TCommit, TIDs: []xid.TID{tid}},
		}
		for _, r := range recs {
			if _, err := l.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Flush(); err != nil {
			t.Fatal(err)
		}
	}
}

// checkRecoveredRange asserts the recovered state holds exactly the
// objects appendCommitted(startTID, n) created.
func checkRecoveredRange(t *testing.T, st *State, startTID, n int) {
	t.Helper()
	if len(st.Objects) != n {
		t.Fatalf("recovered %d objects, want %d", len(st.Objects), n)
	}
	for i := 0; i < n; i++ {
		oid := xid.OID(startTID + i)
		want := fmt.Sprintf("v%d", startTID+i)
		if got := string(st.Objects[oid]); got != want {
			t.Fatalf("object %d = %q, want %q", oid, got, want)
		}
	}
}

// TestSegmentedRoundTrip: records written through the segmented log
// across many rotations recover intact, in both recovery modes.
func TestSegmentedRoundTrip(t *testing.T) {
	mfs := faultfs.NewMem()
	l, err := OpenSegmentedFS(mfs, "/db", testSegOpts(true))
	if err != nil {
		t.Fatal(err)
	}
	appendCommitted(t, l, 1, 40)
	if seq := l.CurrentSegment(); seq < 3 {
		t.Fatalf("current segment %d: the 256-byte threshold should have rotated several times", seq)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 2, 8} {
		st, err := RecoverDirFS(mfs, "/db", RecoverOptions{Parallel: par})
		if err != nil {
			t.Fatalf("parallel=%d: %v", par, err)
		}
		checkRecoveredRange(t, st, 1, 40)
	}
	st, err := RecoverDirSequentialFS(mfs, "/db")
	if err != nil {
		t.Fatal(err)
	}
	checkRecoveredRange(t, st, 1, 40)
}

// TestSegmentedReopenContinues: a reopened log adopts the chain's tail
// segment and continues the LSN sequence without gaps or reuse.
func TestSegmentedReopenContinues(t *testing.T) {
	mfs := faultfs.NewMem()
	l, err := OpenSegmentedFS(mfs, "/db", testSegOpts(true))
	if err != nil {
		t.Fatal(err)
	}
	appendCommitted(t, l, 1, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = OpenSegmentedFS(mfs, "/db", testSegOpts(true))
	if err != nil {
		t.Fatal(err)
	}
	appendCommitted(t, l, 11, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := RecoverDirFS(mfs, "/db", RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkRecoveredRange(t, st, 1, 20)
	// LSN contiguity across the reopen is what scanChain validates; a
	// clean recovery already proves it, but assert the count explicitly:
	// 20 txns × 3 records each.
	if want := uint64(61); st.NextLSN != want {
		t.Fatalf("NextLSN = %d, want %d", st.NextLSN, want)
	}
}

// TestSegmentedBufferedCrashKeepsSealedSegments: in buffered mode
// (Sync=false) the tail segment's unsynced records are lost to a crash,
// but everything in sealed (rotated-away) segments must survive — the
// rotation seal fsync is what makes mid-chain holes impossible.
func TestSegmentedBufferedCrashKeepsSealedSegments(t *testing.T) {
	mfs := faultfs.NewMem()
	l, err := OpenSegmentedFS(mfs, "/db", testSegOpts(false))
	if err != nil {
		t.Fatal(err)
	}
	appendCommitted(t, l, 1, 40)
	tail := l.CurrentSegment()
	if tail < 3 {
		t.Fatalf("expected several rotations, tail segment is %d", tail)
	}
	// Crash without closing: the tail segment's buffered suffix is gone.
	img := mfs.CrashImage(faultfs.DropUnsynced)
	st, err := RecoverDirFS(img, "/db", RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Objects) >= 40 {
		t.Fatalf("recovered all %d objects from a buffered crash; tail loss expected", len(st.Objects))
	}
	// Every sealed segment's records must be there: the recovered prefix
	// must cover at least the records that rotated into sealed segments.
	if len(st.Objects) == 0 {
		t.Fatal("recovered nothing; sealed segments should have survived the crash")
	}
	for i := 1; i <= len(st.Objects); i++ {
		want := fmt.Sprintf("v%d", i)
		if got := string(st.Objects[xid.OID(i)]); got != want {
			t.Fatalf("object %d = %q, want %q (prefix must be exact)", i, got, want)
		}
	}
}

// TestSegmentedTruncate: truncation cuts the manifest over to a fresh
// segment, deletes the old chain, and keeps LSNs monotonic.
func TestSegmentedTruncate(t *testing.T) {
	mfs := faultfs.NewMem()
	l, err := OpenSegmentedFS(mfs, "/db", testSegOpts(true))
	if err != nil {
		t.Fatal(err)
	}
	appendCommitted(t, l, 1, 20)
	preTail := l.CurrentSegment()
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if seq := l.CurrentSegment(); seq != preTail+1 {
		t.Fatalf("post-truncate segment = %d, want %d", seq, preTail+1)
	}
	// The old segments must actually be gone.
	for seq := uint64(1); seq <= preTail; seq++ {
		if fileExists(mfs, segmentPath("/db", seq)) {
			t.Fatalf("segment %d survived truncation", seq)
		}
	}
	appendCommitted(t, l, 21, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := RecoverDirFS(mfs, "/db", RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkRecoveredRange(t, st, 21, 5)
	// LSNs continue past the truncated prefix: 25 txns × 3 records.
	if want := uint64(76); st.NextLSN != want {
		t.Fatalf("NextLSN = %d, want %d", st.NextLSN, want)
	}
}

// TestLegacyMigration: a database whose log is a pre-segmentation
// wal.log opens into the segmented world with the legacy file as the
// chain's read-only base; old and new records both recover.
func TestLegacyMigration(t *testing.T) {
	mfs := faultfs.NewMem()
	fl, err := OpenFileFS(mfs, "/db/wal.log", true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		tid := xid.TID(i)
		fl.Append(&Record{Type: TBegin, TID: tid})
		fl.Append(&Record{Type: TUpdate, TID: tid, OID: xid.OID(i), Kind: KindCreate, After: []byte(fmt.Sprintf("v%d", i))})
		fl.Append(&Record{Type: TCommit, TIDs: []xid.TID{tid}})
	}
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := OpenSegmentedFS(mfs, "/db", testSegOpts(true))
	if err != nil {
		t.Fatal(err)
	}
	appendCommitted(t, l, 6, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := RecoverDirFS(mfs, "/db", RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkRecoveredRange(t, st, 1, 10)
	// And truncation must clean the legacy base up too.
	l, err = OpenSegmentedFS(mfs, "/db", testSegOpts(true))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if fileExists(mfs, "/db/wal.log") {
		t.Fatal("legacy wal.log survived truncation")
	}
}

// TestGroupCommitSharesForce: committers that have all enqueued before
// any force starts share one physical force — the commits-per-fsync > 1
// property the WALGC experiment measures, in its deterministic core.
func TestGroupCommitSharesForce(t *testing.T) {
	mfs := faultfs.NewMem()
	l, err := OpenSegmentedFS(mfs, "/db", SegmentedOptions{Sync: true, Window: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 8
	var appended sync.WaitGroup
	var done sync.WaitGroup
	errs := make([]error, n)
	appended.Add(n)
	done.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer done.Done()
			_, err := l.Append(&Record{Type: TCommit, TIDs: []xid.TID{xid.TID(i + 1)}})
			appended.Done()
			if err != nil {
				errs[i] = err
				return
			}
			appended.Wait() // everyone enqueues before anyone forces
			errs[i] = l.Flush()
		}(i)
	}
	done.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("committer %d: %v", i, err)
		}
	}
	if f := l.Forces(); f < 1 || f >= n {
		t.Fatalf("forces = %d, want batching (1 <= forces < %d)", f, n)
	}
	if r := l.BatchedRecords(); r != n {
		t.Fatalf("batched records = %d, want %d", r, n)
	}
}

// TestGroupCommitFollowerPoisoned: when the leader's fsync fails, a
// follower parked on the cohort must get ErrPoisoned — its records sit
// after an indeterminate hole, so acking its commit would be a lie. The
// leader itself reports the raw cause.
func TestGroupCommitFollowerPoisoned(t *testing.T) {
	mfs := faultfs.NewMem()
	l, err := OpenSegmentedFS(mfs, "/db", SegmentedOptions{Sync: true, Window: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Fail the next segment fsync (the header syncs are done by now).
	mfs.SetScript(faultfs.NewScript(faultfs.Rule{Op: faultfs.OpSync, Nth: 1, Action: faultfs.ActError}))

	if _, err := l.Append(&Record{Type: TBegin, TID: 1}); err != nil {
		t.Fatal(err)
	}
	leaderErr := make(chan error, 1)
	go func() { leaderErr <- l.Flush() }()
	time.Sleep(10 * time.Millisecond) // let the leader take the latch and linger
	if _, err := l.Append(&Record{Type: TBegin, TID: 2}); err != nil {
		t.Fatal(err)
	}
	followerErr := l.Flush()
	lerr := <-leaderErr

	// Exactly one of the two was the leader and saw the raw injected
	// fault; the other was poisoned. Which is which can race (the
	// follower may have taken leadership), but no commit may be acked.
	if lerr == nil || followerErr == nil {
		t.Fatalf("a commit was acked over a failed fsync: leader=%v follower=%v", lerr, followerErr)
	}
	poisonCount := 0
	for _, err := range []error{lerr, followerErr} {
		if !errors.Is(err, faultfs.ErrInjected) && !errors.Is(err, ErrPoisoned) {
			t.Fatalf("unexpected error: %v", err)
		}
		if errors.Is(err, ErrPoisoned) {
			poisonCount++
		}
	}
	if poisonCount < 1 {
		t.Fatalf("no ErrPoisoned seen: leader=%v follower=%v", lerr, followerErr)
	}
	// The log stays poisoned for everything that follows.
	if _, err := l.Append(&Record{Type: TBegin, TID: 3}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after failed force = %v, want ErrPoisoned", err)
	}
	if err := l.Flush(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("flush after failed force = %v, want ErrPoisoned", err)
	}
	if err := l.Truncate(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("truncate after failed force = %v, want ErrPoisoned", err)
	}
}

// TestGroupCommitEarlierBatchStaysAcked: records forced by a successful
// earlier batch remain acked even after a later batch poisons the log —
// durableLSN never retreats.
func TestGroupCommitEarlierBatchStaysAcked(t *testing.T) {
	mfs := faultfs.NewMem()
	l, err := OpenSegmentedFS(mfs, "/db", SegmentedOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(&Record{Type: TBegin, TID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	mfs.SetScript(faultfs.NewScript(faultfs.Rule{Op: faultfs.OpSync, Nth: 1, Action: faultfs.ActError}))
	if _, err := l.Append(&Record{Type: TBegin, TID: 2}); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err == nil {
		t.Fatal("second force succeeded despite injected fsync failure")
	}
	// The first batch's records must still be on disk after the crash;
	// the second batch's must not have been acked (and are not there).
	st, err := RecoverDirFS(mfs.CrashImage(faultfs.DropUnsynced), "/db", RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxTID != 1 {
		t.Fatalf("recovered MaxTID = %d, want 1 (first batch durable, second not)", st.MaxTID)
	}
}

// TestBatchWatermarkExcludesPostDrainAppends pins the lost-durability
// race fix: the batch's high LSN is captured inside takeBatch while the
// append latch is held, so a record that lands in the fresh slab after
// the swap — reachable, because the force leader runs off the append
// latch — is NOT covered by the batch's durability watermark. Reading
// lastLSN after the swap instead would cover it, and that committer's
// Flush would return success without its record ever being written.
func TestBatchWatermarkExcludesPostDrainAppends(t *testing.T) {
	mfs := faultfs.NewMem()
	l, err := OpenSegmentedFS(mfs, "/db", testSegOpts(true))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 3; i++ {
		if _, err := l.Append(&Record{Type: TBegin, TID: xid.TID(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	batch, first, recs, high := l.takeBatch()
	// A racing committer appends while the leader is off the latch.
	lsn, err := l.Append(&Record{Type: TBegin, TID: 4})
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 || recs != 3 || high != 3 {
		t.Fatalf("takeBatch = first %d recs %d high %d, want 1/3/3", first, recs, high)
	}
	if high >= lsn {
		t.Fatalf("batch watermark %d covers the post-drain append at LSN %d", high, lsn)
	}
	// Write the drained records so Close's drain keeps the chain
	// LSN-contiguous for any later scan, then recycle the buffer.
	if err := l.writeBatch(batch, first); err != nil {
		t.Fatal(err)
	}
	l.recycleBatch(batch)
}

// TestObserverDoesNotSettlePending: CurrentSegment (and any exclusive
// writer-side operation that drains nothing) must not advance the
// durability watermark — before the fix it marked the pending slab
// settled, so the following Flush no-opped and the acked record was
// missing from the crash image.
func TestObserverDoesNotSettlePending(t *testing.T) {
	mfs := faultfs.NewMem()
	l, err := OpenSegmentedFS(mfs, "/db", testSegOpts(true))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Type: TBegin, TID: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Type: TUpdate, TID: 1, OID: 7, Kind: KindCreate, After: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Type: TCommit, TIDs: []xid.TID{1}}); err != nil {
		t.Fatal(err)
	}
	_ = l.CurrentSegment() // must not mark the three pending records durable
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	// Crash right after the acked Flush: the commit must be on disk.
	st, err := RecoverDirFS(mfs.CrashImage(faultfs.DropUnsynced), "/db", RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if string(st.Objects[7]) != "x" {
		t.Fatalf("acked commit missing after CurrentSegment+Flush: objects %v", st.Objects)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWriterReleaseSettlesOnlyDrainedRecords: ForceDurable and Truncate
// settle exactly the records they drained. A record appended while the
// operation held leadership (appends stay enabled — only forces are
// serialized) must still be written by the next Flush, not silently
// marked durable at release.
func TestWriterReleaseSettlesOnlyDrainedRecords(t *testing.T) {
	mfs := faultfs.NewMem()
	l, err := OpenSegmentedFS(mfs, "/db", testSegOpts(true))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Type: TBegin, TID: 1}); err != nil {
		t.Fatal(err)
	}
	// White-box ForceDurable with an append landing mid-operation.
	l.acquireWriter()
	high, ferr := l.forceDurable() // drains TID 1
	if _, err := l.Append(&Record{Type: TBegin, TID: 2}); err != nil {
		t.Fatal(err)
	}
	l.releaseWriter(ferr, high)
	if ferr != nil {
		t.Fatal(ferr)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := RecoverDirFS(mfs.CrashImage(faultfs.DropUnsynced), "/db", RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxTID != 2 {
		t.Fatalf("recovered MaxTID = %d, want 2 (mid-operation append must survive the next Flush)", st.MaxTID)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentedAppendAllocFree: the enqueue fast path must not allocate
// once the batch slab has warmed up — committers on the fast path pay a
// latch and a memcpy, nothing else.
func TestSegmentedAppendAllocFree(t *testing.T) {
	mfs := faultfs.NewMem()
	l, err := OpenSegmentedFS(mfs, "/db", SegmentedOptions{Sync: false})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rec := &Record{Type: TUpdate, TID: 1, OID: 2, Kind: KindModify, Before: make([]byte, 64), After: make([]byte, 64)}
	warm := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := l.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	// Two warm cycles fill both sides of the double-buffered slab.
	warm(500)
	warm(500)
	allocs := testing.AllocsPerRun(400, func() {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("append allocates %.1f objects/op on the warmed fast path, want 0", allocs)
	}
}

// BenchmarkSegmentedAppend measures the enqueue fast path (run with
// -benchmem; the steady-state figure is 0 allocs/op — the CI wal-stress
// job asserts that via TestSegmentedAppendAllocFree, which is the same
// path without benchmark noise).
func BenchmarkSegmentedAppend(b *testing.B) {
	dir := b.TempDir()
	l, err := OpenSegmented(dir, SegmentedOptions{Sync: false})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	rec := &Record{Type: TUpdate, TID: 1, OID: 2, Kind: KindModify, Before: make([]byte, 64), After: make([]byte, 64)}
	// Warm both slab buffers so the measurement sees the steady state.
	for i := 0; i < 2; i++ {
		for j := 0; j < 4096; j++ {
			l.Append(rec)
		}
		l.Flush()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
		if i%4096 == 4095 {
			b.StopTimer()
			l.Flush() // drain off the clock so the slab doesn't grow unboundedly
			b.StartTimer()
		}
	}
}

// TestSegmentChainDamage: every damage shape a segment chain can take
// yields either a clean prefix recovery (torn tails, unlisted trailing
// segments) or a typed error (manifest-listed damage, holes with
// records after them) — never a silent partial replay.
func TestSegmentChainDamage(t *testing.T) {
	// build writes a 3+-segment chain and returns the MemFS.
	build := func(t *testing.T) *faultfs.MemFS {
		mfs := faultfs.NewMem()
		l, err := OpenSegmentedFS(mfs, "/db", testSegOpts(true))
		if err != nil {
			t.Fatal(err)
		}
		appendCommitted(t, l, 1, 20)
		if l.CurrentSegment() < 3 {
			t.Fatal("test chain too short")
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		return mfs
	}
	damage := func(t *testing.T, mfs *faultfs.MemFS, path string, f func(data []byte) []byte) {
		t.Helper()
		fh, err := mfs.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer fh.Close()
		st, err := fh.Stat()
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, st.Size())
		if _, err := fh.ReadAt(data, 0); err != nil {
			t.Fatal(err)
		}
		out := f(data)
		if err := fh.Truncate(0); err != nil {
			t.Fatal(err)
		}
		if _, err := fh.WriteAt(out, 0); err != nil {
			t.Fatal(err)
		}
		if err := fh.Sync(); err != nil {
			t.Fatal(err)
		}
	}

	cases := []struct {
		name    string
		mutate  func(t *testing.T, mfs *faultfs.MemFS)
		wantErr error // nil = must recover cleanly
		clean   bool  // expect full 20-object recovery
	}{
		{
			name:   "pristine",
			mutate: func(t *testing.T, mfs *faultfs.MemFS) {},
			clean:  true,
		},
		{
			name: "torn final segment tail",
			mutate: func(t *testing.T, mfs *faultfs.MemFS) {
				// Chop bytes off the last segment: prefix recovery.
				seq := lastSegment(t, mfs)
				damage(t, mfs, segmentPath("/db", seq), func(d []byte) []byte {
					return d[:len(d)-7]
				})
			},
		},
		{
			name: "missing listed segment",
			mutate: func(t *testing.T, mfs *faultfs.MemFS) {
				if err := mfs.Remove(segmentPath("/db", 2)); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: ErrSegmentMissing,
		},
		{
			name: "corrupt listed header",
			mutate: func(t *testing.T, mfs *faultfs.MemFS) {
				damage(t, mfs, segmentPath("/db", 1), func(d []byte) []byte {
					d[3] ^= 0xff // break the magic
					return d
				})
			},
			wantErr: ErrSegmentCorrupt,
		},
		{
			name: "duplicated segment content",
			mutate: func(t *testing.T, mfs *faultfs.MemFS) {
				// Copy segment 1's bytes over segment 2: the header's
				// self-identification catches the duplication.
				var seg1 []byte
				damage(t, mfs, segmentPath("/db", 1), func(d []byte) []byte {
					seg1 = append([]byte(nil), d...)
					return d
				})
				damage(t, mfs, segmentPath("/db", 2), func(d []byte) []byte {
					return seg1
				})
			},
			wantErr: ErrSegmentCorrupt,
		},
		{
			name: "mid-chain records lost",
			mutate: func(t *testing.T, mfs *faultfs.MemFS) {
				// Empty segment 2 down to its header: segment 3's records
				// now follow a hole.
				damage(t, mfs, segmentPath("/db", 2), func(d []byte) []byte {
					return d[:segHeaderSize]
				})
			},
			wantErr: ErrSegmentGap,
		},
		{
			name: "manifest corrupt",
			mutate: func(t *testing.T, mfs *faultfs.MemFS) {
				damage(t, mfs, "/db/wal.manifest", func(d []byte) []byte {
					d[len(d)-1] ^= 0xff
					return d
				})
			},
			wantErr: ErrManifestCorrupt,
		},
		{
			name: "manifest truncated",
			mutate: func(t *testing.T, mfs *faultfs.MemFS) {
				damage(t, mfs, "/db/wal.manifest", func(d []byte) []byte {
					return d[:10]
				})
			},
			wantErr: ErrManifestCorrupt,
		},
		{
			name: "unlisted trailing segment with torn header",
			mutate: func(t *testing.T, mfs *faultfs.MemFS) {
				// Simulate a crash mid-creation: a probe segment whose
				// header never finished. Clean chain end, full recovery.
				seq := lastSegment(t, mfs) + 1
				fh, err := mfs.OpenFile(segmentPath("/db", seq), os.O_RDWR|os.O_CREATE, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				fh.Write([]byte("ASETW")) // half a magic
				fh.Sync()
				fh.Close()
			},
			clean: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mfs := build(t)
			tc.mutate(t, mfs)
			for _, par := range []int{1, 4} {
				st, err := RecoverDirFS(mfs, "/db", RecoverOptions{Parallel: par})
				if tc.wantErr != nil {
					if !errors.Is(err, tc.wantErr) {
						t.Fatalf("parallel=%d: err = %v, want %v", par, err, tc.wantErr)
					}
					continue
				}
				if err != nil {
					t.Fatalf("parallel=%d: %v", par, err)
				}
				if tc.clean {
					checkRecoveredRange(t, st, 1, 20)
				}
			}
		})
	}
}

// lastSegment returns the highest segment seq present in /db.
func lastSegment(t *testing.T, fsys faultfs.FS) uint64 {
	t.Helper()
	var last uint64
	for seq := uint64(1); ; seq++ {
		if !fileExists(fsys, segmentPath("/db", seq)) {
			break
		}
		last = seq
	}
	if last == 0 {
		t.Fatal("no segments found")
	}
	return last
}
