package wal

import (
	"bytes"
	"testing"

	"repro/internal/xid"
)

func TestPrepareDecideRoundTrip(t *testing.T) {
	recs := []*Record{
		{Type: TPrepare, GID: 0xdeadbeef, TIDs: []xid.TID{3, 5, 8}},
		{Type: TPrepare, GID: 1, TIDs: []xid.TID{42}},
		{Type: TDecide, GID: 7, Commit: true},
		{Type: TDecide, GID: 7, Commit: false},
	}
	for i, r := range recs {
		got, err := unmarshal(r.marshal())
		if err != nil {
			t.Fatalf("rec %d (%v): unmarshal: %v", i, r.Type, err)
		}
		if got.Type != r.Type || got.GID != r.GID || got.Commit != r.Commit ||
			len(got.TIDs) != len(r.TIDs) {
			t.Fatalf("rec %d round trip mismatch: %+v vs %+v", i, got, r)
		}
		for j := range r.TIDs {
			if got.TIDs[j] != r.TIDs[j] {
				t.Fatalf("rec %d tid %d: %v vs %v", i, j, got.TIDs[j], r.TIDs[j])
			}
		}
	}
	// Truncated payloads must error, never partially decode.
	full := (&Record{Type: TPrepare, GID: 9, TIDs: []xid.TID{1, 2}}).marshal()
	for cut := 1; cut < len(full); cut++ {
		if _, err := unmarshal(full[:cut]); err == nil {
			t.Fatalf("truncated prepare at %d bytes decoded silently", cut)
		}
	}
}

// TestRecoverInDoubt: a prepared-but-undecided group is neither a loser nor
// committed — its updates are withheld as InDoubtOps for the opener.
func TestRecoverInDoubt(t *testing.T) {
	st := RecoverRecords([]*Record{
		{LSN: 1, Type: TBegin, TID: 1},
		{LSN: 2, Type: TUpdate, TID: 1, OID: 10, Kind: KindModify, Before: []byte("a"), After: []byte("b")},
		{LSN: 3, Type: TBegin, TID: 2},
		{LSN: 4, Type: TUpdate, TID: 2, OID: 11, Kind: KindCreate, After: []byte("c")},
		{LSN: 5, Type: TPrepare, GID: 77, TIDs: []xid.TID{1, 2}},
	})
	if len(st.Objects) != 0 {
		t.Fatalf("in-doubt updates leaked into Objects: %v", st.Objects)
	}
	if len(st.Losers) != 0 {
		t.Fatalf("prepared transactions classified as losers: %v", st.Losers)
	}
	if got := st.InDoubt[77]; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("InDoubt[77] = %v, want [t1 t2]", got)
	}
	ops1 := st.InDoubtOps[1]
	if len(ops1) != 1 || ops1[0].OID != 10 || !bytes.Equal(ops1[0].After, []byte("b")) {
		t.Fatalf("InDoubtOps[1] = %+v", ops1)
	}
}

// TestRecoverPreparedThenDecided: a commit or abort record after the
// prepare resolves the doubt — commit installs, abort discards.
func TestRecoverPreparedThenDecided(t *testing.T) {
	base := []*Record{
		{LSN: 1, Type: TBegin, TID: 1},
		{LSN: 2, Type: TUpdate, TID: 1, OID: 10, Kind: KindModify, After: []byte("b")},
		{LSN: 3, Type: TPrepare, GID: 5, TIDs: []xid.TID{1}},
	}
	commit := append(append([]*Record(nil), base...),
		&Record{LSN: 4, Type: TCommit, TIDs: []xid.TID{1}})
	st := RecoverRecords(commit)
	if len(st.InDoubt) != 0 {
		t.Fatalf("decided group still in doubt: %v", st.InDoubt)
	}
	if !bytes.Equal(st.Objects[10], []byte("b")) {
		t.Fatalf("committed prepared update not installed: %v", st.Objects)
	}
	abort := append(append([]*Record(nil), base...),
		&Record{LSN: 4, Type: TAbort, TID: 1})
	st = RecoverRecords(abort)
	if len(st.InDoubt) != 0 || len(st.Objects) != 0 || len(st.Losers) != 0 {
		t.Fatalf("aborted prepared txn left state: indoubt=%v objects=%v losers=%v",
			st.InDoubt, st.Objects, st.Losers)
	}
}
