package wal

import (
	"encoding/binary"

	"repro/internal/faultfs"
	"repro/internal/xid"
)

// State is the outcome of replaying a log: the committed object images to
// apply over the checkpointed base store, the committed deletions, and
// bookkeeping for resuming the manager.
type State struct {
	// Objects maps every object touched by a committed (or undo-installed)
	// operation to its final image.
	Objects map[xid.OID][]byte
	// Deleted holds objects whose final committed operation was a delete
	// (or whose creation was undone).
	Deleted map[xid.OID]bool
	// NextLSN is one past the largest LSN seen.
	NextLSN uint64
	// MaxTID is the largest transaction id seen, so a resuming manager can
	// continue the tid sequence without reuse.
	MaxTID xid.TID
	// Deltas carries committed counter deltas whose base value lives in the
	// checkpointed store (the opener adds them to the loaded objects).
	Deltas map[xid.OID]uint64
	// Committed lists the transactions whose commit records were found.
	Committed []xid.TID
	// Losers lists transactions that had begun but neither committed nor
	// aborted by the end of the log (they lose: their updates are dropped).
	Losers []xid.TID
	// InDoubt maps each distributed-commit group id whose prepare record
	// was found without a matching commit or abort to its prepared local
	// members. These transactions are NOT losers: the participant voted
	// yes, so their fate belongs to the coordinator, and the opener must
	// hold their updates (InDoubtOps) and locks until the verdict arrives.
	InDoubt map[uint64][]xid.TID
	// InDoubtOps maps each in-doubt transaction to its pending redo
	// operations in LSN order, to be installed if the verdict is commit
	// and discarded if it is abort.
	InDoubtOps map[xid.TID][]RedoOp
}

// RedoOp is one withheld update of an in-doubt (prepared) transaction.
type RedoOp struct {
	LSN   uint64
	OID   xid.OID
	Kind  UpdateKind
	After []byte
}

// pendingOp is an update awaiting its responsible transaction's commit.
type pendingOp struct {
	lsn   uint64
	oid   xid.OID
	kind  UpdateKind
	after []byte
}

// replayer applies the recovery algorithm described in the package comment.
type replayer struct {
	pending map[xid.TID][]pendingOp
	began   map[xid.TID]bool
	// prepared tracks TPrepare records awaiting their verdict: group id →
	// members, and the member → group reverse index. A TCommit or TAbort
	// covering a member resolves the whole group.
	prepared   map[uint64][]xid.TID
	preparedBy map[xid.TID]uint64
	st         *State
}

// Recover replays the log at path and returns the committed state. Records
// before the last checkpoint are skipped (the checkpointed store already
// reflects them); a checkpoint is only ever written at a quiescent point.
func Recover(path string) (*State, error) {
	return RecoverFS(faultfs.OS{}, path)
}

// RecoverFS is Recover over an injected filesystem.
func RecoverFS(fsys faultfs.FS, path string) (*State, error) {
	// First pass: find the LSN of the last checkpoint.
	var lastCkpt uint64
	err := ScanFileFS(fsys, path, func(r *Record) error {
		if r.Type == TCheckpoint {
			lastCkpt = r.LSN
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rp := newReplayer()
	err = ScanFileFS(fsys, path, func(r *Record) error {
		if r.LSN <= lastCkpt {
			rp.note(r) // keep NextLSN/MaxTID monotone across the skipped prefix
			return nil
		}
		rp.apply(r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rp.finish(), nil
}

// RecoverRecords replays an in-memory record sequence; tests and the MemLog
// path use it.
func RecoverRecords(recs []*Record) *State {
	rp := newReplayer()
	for _, r := range recs {
		rp.apply(r)
	}
	return rp.finish()
}

func newReplayer() *replayer {
	return &replayer{
		pending:    make(map[xid.TID][]pendingOp),
		began:      make(map[xid.TID]bool),
		prepared:   make(map[uint64][]xid.TID),
		preparedBy: make(map[xid.TID]uint64),
		st: &State{
			Objects: make(map[xid.OID][]byte),
			Deleted: make(map[xid.OID]bool),
			Deltas:  make(map[xid.OID]uint64),
			NextLSN: 1,
		},
	}
}

// note records LSN/tid bookkeeping for records that precede the checkpoint
// and therefore need no replay.
func (rp *replayer) note(r *Record) {
	if r.LSN >= rp.st.NextLSN {
		rp.st.NextLSN = r.LSN + 1
	}
	rp.bumpTID(r.TID)
	rp.bumpTID(r.TID2)
	for _, t := range r.TIDs {
		rp.bumpTID(t)
	}
}

func (rp *replayer) bumpTID(t xid.TID) {
	if t > rp.st.MaxTID {
		rp.st.MaxTID = t
	}
}

// apply replays one record.
func (rp *replayer) apply(r *Record) {
	rp.note(r)
	switch r.Type {
	case TBegin:
		rp.began[r.TID] = true
	case TUpdate:
		rp.pending[r.TID] = append(rp.pending[r.TID], pendingOp{
			lsn: r.LSN, oid: r.OID, kind: r.Kind, after: r.After,
		})
	case TDelegate:
		rp.delegate(r.TID, r.TID2, r.OIDs)
	case TCommit:
		// Gather the group's pending ops and apply them in LSN order, which
		// is the order the updates actually happened.
		var ops []pendingOp
		for _, t := range r.TIDs {
			ops = append(ops, rp.pending[t]...)
			delete(rp.pending, t)
			delete(rp.began, t)
			rp.st.Committed = append(rp.st.Committed, t)
		}
		sortOps(ops)
		for _, op := range ops {
			rp.install(op.oid, op.kind, op.after)
		}
		for _, t := range r.TIDs {
			rp.resolvePrepared(t)
		}
	case TAbort:
		delete(rp.pending, r.TID)
		delete(rp.began, r.TID)
		rp.resolvePrepared(r.TID)
	case TUndo:
		// Physical undo installations change live (possibly committed)
		// state — an aborter's before-image may deliberately clobber a
		// permitted cooperator's later committed write — and are redone
		// unconditionally in log order. A logical inverse delta is the
		// exception: it is not idempotent, and the forward delta it
		// cancels is never part of replayed state (checkpoints are
		// quiescent, so the base holds no uncommitted effects, and the
		// aborter's forward op is still pending here — TAbort discards
		// it). Redoing it would subtract the delta a second time, so the
		// pair cancels by dropping both sides.
		if r.Kind == KindDelta {
			return
		}
		rp.install(r.OID, r.Kind, r.After)
	case TCheckpoint:
		// No-op during replay: Recover already skipped the prefix.
	case TPrepare:
		rp.prepared[r.GID] = append([]xid.TID(nil), r.TIDs...)
		for _, t := range r.TIDs {
			rp.preparedBy[t] = r.GID
		}
	case TDecide:
		// Coordinator decision records live in the coordinator's own log;
		// a participant log never carries them. Bookkeeping only (note()).
	}
}

// resolvePrepared clears the prepared tracking for t's group once a commit
// or abort record decides it — the group is no longer in doubt.
func (rp *replayer) resolvePrepared(t xid.TID) {
	gid, ok := rp.preparedBy[t]
	if !ok {
		return
	}
	for _, member := range rp.prepared[gid] {
		delete(rp.preparedBy, member)
	}
	delete(rp.prepared, gid)
}

// delegate moves pending ops for the given objects (nil = all) from one
// transaction to another, preserving each op's LSN for final ordering.
func (rp *replayer) delegate(from, to xid.TID, oids []xid.OID) {
	if from == to {
		return
	}
	src := rp.pending[from]
	if len(src) == 0 {
		return
	}
	if oids == nil {
		rp.pending[to] = append(rp.pending[to], src...)
		delete(rp.pending, from)
		return
	}
	want := make(map[xid.OID]bool, len(oids))
	for _, o := range oids {
		want[o] = true
	}
	var keep, move []pendingOp
	for _, op := range src {
		if want[op.oid] {
			move = append(move, op)
		} else {
			keep = append(keep, op)
		}
	}
	if len(keep) == 0 {
		delete(rp.pending, from)
	} else {
		rp.pending[from] = keep
	}
	rp.pending[to] = append(rp.pending[to], move...)
}

func (rp *replayer) install(oid xid.OID, kind UpdateKind, image []byte) {
	switch kind {
	case KindDelete:
		delete(rp.st.Objects, oid)
		delete(rp.st.Deltas, oid)
		rp.st.Deleted[oid] = true
		return
	case KindDelta:
		d := DecodeCounter(image)
		if img, ok := rp.st.Objects[oid]; ok {
			// Full image known: fold the delta in directly.
			rp.st.Objects[oid] = EncodeCounter(DecodeCounter(img) + d)
			return
		}
		if rp.st.Deleted[oid] {
			// Recreated-by-delta cannot happen (Apply requires the object),
			// but fold defensively from zero.
			delete(rp.st.Deleted, oid)
			rp.st.Objects[oid] = EncodeCounter(d)
			return
		}
		// Base value lives in the checkpointed store; carry the delta out
		// for the opener to add.
		rp.st.Deltas[oid] += d
		return
	}
	img := make([]byte, len(image))
	copy(img, image)
	rp.st.Objects[oid] = img
	delete(rp.st.Deltas, oid)
	delete(rp.st.Deleted, oid)
}

// EncodeCounter renders a counter value as its 8-byte object image.
func EncodeCounter(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

// DecodeCounter reads a counter object image (short images read as their
// available low bytes).
func DecodeCounter(b []byte) uint64 {
	if len(b) >= 8 {
		return binary.LittleEndian.Uint64(b)
	}
	var v uint64
	for i := len(b) - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func (rp *replayer) finish() *State {
	// Prepared-but-undecided transactions are in doubt, not losers: carry
	// their withheld updates out for the opener to hold until the verdict.
	if len(rp.prepared) > 0 {
		rp.st.InDoubt = make(map[uint64][]xid.TID, len(rp.prepared))
		rp.st.InDoubtOps = make(map[xid.TID][]RedoOp)
		for gid, members := range rp.prepared {
			ms := append([]xid.TID(nil), members...)
			sortTIDs(ms)
			rp.st.InDoubt[gid] = ms
			for _, t := range ms {
				ops := rp.pending[t]
				sortOps(ops)
				redo := make([]RedoOp, 0, len(ops))
				for _, op := range ops {
					redo = append(redo, RedoOp{LSN: op.lsn, OID: op.oid, Kind: op.kind, After: op.after})
				}
				rp.st.InDoubtOps[t] = redo
				delete(rp.pending, t)
				delete(rp.began, t)
			}
		}
	}
	for t := range rp.began {
		rp.st.Losers = append(rp.st.Losers, t)
	}
	for t := range rp.pending {
		if !rp.began[t] {
			rp.st.Losers = append(rp.st.Losers, t)
		}
	}
	sortTIDs(rp.st.Losers)
	sortTIDs(rp.st.Committed)
	return rp.st
}

func sortOps(ops []pendingOp) {
	// Insertion sort: groups are small and mostly ordered already.
	for i := 1; i < len(ops); i++ {
		for j := i; j > 0 && ops[j].lsn < ops[j-1].lsn; j-- {
			ops[j], ops[j-1] = ops[j-1], ops[j]
		}
	}
}

func sortTIDs(ts []xid.TID) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
