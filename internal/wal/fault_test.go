package wal

import (
	"errors"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/xid"
)

// TestFailedSyncPoisonsLog is the regression test for the unpoisoned-
// handle bug class: on the seed code, a commit whose fsync failed left
// the log usable, so the *next* commit's flush could succeed and claim
// durability even though the log now has an indeterminate hole before
// it (a failed fsync may never write those pages). The handle must stay
// poisoned instead.
func TestFailedSyncPoisonsLog(t *testing.T) {
	mfs := faultfs.NewMem()
	mfs.SetScript(faultfs.NewScript(faultfs.Rule{Op: faultfs.OpSync, Nth: 1, Action: faultfs.ActError}))
	l, err := OpenFileFS(mfs, "/wal.log", true)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(&Record{Type: TBegin, TID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("first flush = %v, want injected fault", err)
	}
	// Every later operation must refuse, not silently succeed.
	if err := l.Flush(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("flush after failed sync = %v, want ErrPoisoned", err)
	}
	if _, err := l.Append(&Record{Type: TCommit, TIDs: []xid.TID{1}}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after failed sync = %v, want ErrPoisoned", err)
	}
	if err := l.Truncate(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("truncate after failed sync = %v, want ErrPoisoned", err)
	}
}

// TestFailedWritePoisonsLog: a failed buffer drain poisons the handle
// the same way (the buffered suffix is in an unknown state on disk).
func TestFailedWritePoisonsLog(t *testing.T) {
	mfs := faultfs.NewMem()
	mfs.SetScript(faultfs.NewScript(faultfs.Rule{Op: faultfs.OpWrite, Path: "wal", Nth: 1, Action: faultfs.ActError}))
	l, err := OpenFileFS(mfs, "/wal.log", false)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(&Record{Type: TBegin, TID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("first flush = %v, want injected fault", err)
	}
	if _, err := l.Append(&Record{Type: TBegin, TID: 2}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after failed write = %v, want ErrPoisoned", err)
	}
}

// TestLostFlushNotSilentlyCommitted reconstructs the end-to-end disaster
// the poisoning prevents: commit A's records lost to a failed fsync,
// commit B synced fine after it. Without poisoning the log accepts B and
// a crash leaves a hole before B's records, so the scan never reaches
// them — B's "durable" commit evaporates.
func TestLostFlushNotSilentlyCommitted(t *testing.T) {
	mfs := faultfs.NewMem()
	mfs.SetScript(faultfs.NewScript(faultfs.Rule{Op: faultfs.OpSync, Nth: 1, Action: faultfs.ActError}))
	l, err := OpenFileFS(mfs, "/wal.log", true)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(&Record{Type: TBegin, TID: 1})
	l.Append(&Record{Type: TCommit, TIDs: []xid.TID{1}})
	if err := l.Flush(); err == nil {
		t.Fatal("flush of commit A succeeded despite failed fsync")
	}
	// Commit B must NOT be accepted on the poisoned handle.
	if _, err := l.Append(&Record{Type: TBegin, TID: 2}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("commit B accepted on poisoned log: %v", err)
	}
	l.Close()
	// Crash: nothing claimed durability, so an empty surviving log is a
	// correct outcome (no acknowledged commit is missing).
	img := mfs.CrashImage(faultfs.DropUnsynced)
	var tids []xid.TID
	if err := ScanFileFS(img, "/wal.log", func(r *Record) error {
		if r.Type == TCommit {
			tids = append(tids, r.TIDs...)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(tids) != 0 {
		t.Fatalf("unexpected durable commits %v", tids)
	}
}

// TestScanOverFaultInjectedFS exercises ScanFileFS/RecoverFS over the
// in-memory filesystem end to end.
func TestScanOverFaultInjectedFS(t *testing.T) {
	mfs := faultfs.NewMem()
	l, err := OpenFileFS(mfs, "/wal.log", true)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(&Record{Type: TBegin, TID: 1})
	l.Append(&Record{Type: TUpdate, TID: 1, OID: 7, Kind: KindCreate, After: []byte("x")})
	l.Append(&Record{Type: TCommit, TIDs: []xid.TID{1}})
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	st, err := RecoverFS(mfs, "/wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if string(st.Objects[7]) != "x" || len(st.Committed) != 1 {
		t.Fatalf("recovered %+v", st)
	}
	// A crash image in DropUnsynced mode keeps the synced records.
	st, err = RecoverFS(mfs.CrashImage(faultfs.DropUnsynced), "/wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if string(st.Objects[7]) != "x" {
		t.Fatalf("recovered from crash image: %+v", st)
	}
}
