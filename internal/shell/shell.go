// Package shell implements the assetsh command language: an interactive
// (and scriptable) front end to an ASSET database in which transactions
// stay open across input lines, so the extended-transaction primitives —
// permit, delegate, form_dependency — can be exercised by hand between
// operations of live transactions.
package shell

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	asset "repro"
)

// itx is an interactive transaction: its body loops executing closures
// sent over ops until the channel closes.
type itx struct {
	id  asset.TID
	ops chan func(tx *asset.Tx) error
	res chan error
}

// Shell interprets commands against one manager.
type Shell struct {
	m    *asset.Manager
	out  io.Writer
	txns map[asset.TID]*itx
	// Echo makes the shell print each command before its output (script
	// transcripts).
	Echo bool
}

// New returns a shell over m writing output to out.
func New(m *asset.Manager, out io.Writer) *Shell {
	return &Shell{m: m, out: out, txns: make(map[asset.TID]*itx)}
}

// Run executes commands from r until EOF or the quit command. Errors from
// individual commands are printed, not fatal; only I/O errors abort.
func (s *Shell) Run(r io.Reader) error {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if s.Echo {
			fmt.Fprintf(s.out, "> %s\n", line)
		}
		quit, err := s.Exec(line)
		if err != nil {
			fmt.Fprintf(s.out, "error: %v\n", err)
		}
		if quit {
			break
		}
	}
	s.closeAll()
	return sc.Err()
}

// closeAll finishes any interactive transactions still open (leaving them
// completed-but-unterminated would leak goroutines).
func (s *Shell) closeAll() {
	for id, t := range s.txns {
		close(t.ops)
		delete(s.txns, id)
	}
}

// Exec runs one command line; it reports whether the shell should quit.
func (s *Shell) Exec(line string) (quit bool, err error) {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "help":
		s.help()
	case "quit", "exit":
		return true, nil
	case "begin":
		return false, s.begin()
	case "commit":
		return false, s.finishAnd(args, s.m.Commit)
	case "abort":
		return false, s.abortCmd(args)
	case "read":
		return false, s.readCmd(args)
	case "write":
		return false, s.writeCmd(args)
	case "create":
		return false, s.createCmd(args)
	case "delete":
		return false, s.deleteCmd(args)
	case "add":
		return false, s.addCmd(args)
	case "permit":
		return false, s.permitCmd(args)
	case "delegate":
		return false, s.delegateCmd(args)
	case "dep":
		return false, s.depCmd(args)
	case "status":
		return false, s.statusCmd(args)
	case "objects":
		s.objectsCmd()
	case "ps":
		for _, info := range s.m.Transactions() {
			parent := ""
			if !info.Parent.IsNil() {
				parent = fmt.Sprintf(" parent=%v", info.Parent)
			}
			fmt.Fprintf(s.out, "%v %v%s\n", info.ID, info.Status, parent)
		}
	case "stats":
		st := s.m.Stats()
		fmt.Fprintf(s.out, "commits=%d aborts=%d deadlocks=%d log-forces=%d\n",
			st.Commits, st.Aborts, st.Deadlocks, st.LogForces)
	case "checkpoint":
		return false, s.m.Checkpoint()
	default:
		return false, fmt.Errorf("unknown command %q (try help)", cmd)
	}
	return false, nil
}

func (s *Shell) help() {
	fmt.Fprint(s.out, `commands:
  begin                         start an interactive transaction (prints its tid)
  read <t> <oid>                read an object inside transaction t
  write <t> <oid> <value...>    write an object
  create <t> <value...>         create an object (prints its oid)
  delete <t> <oid>              delete an object
  add <t> <oid> <n>             escrow-increment an 8-byte counter
  commit <t> | abort <t>        terminate transaction t
  permit <ti> <tj|any> [r|w|rw|all] [oid...]   ti permits tj (no oids = all)
  delegate <ti> <tj> [oid...]   delegate ti's work (no oids = all)
  dep <CD|AD|GC|BD|BAD|EXC> <ti> <tj>          form_dependency
  status <t> | ps | objects | stats | checkpoint | quit
`)
}

func parseID(s string) (uint64, error) {
	s = strings.TrimPrefix(strings.TrimPrefix(s, "t"), "ob")
	return strconv.ParseUint(s, 10, 64)
}

func (s *Shell) tx(arg string) (*itx, error) {
	id, err := parseID(arg)
	if err != nil {
		return nil, fmt.Errorf("bad tid %q", arg)
	}
	t, ok := s.txns[asset.TID(id)]
	if !ok {
		return nil, fmt.Errorf("no open interactive transaction t%d", id)
	}
	return t, nil
}

func (s *Shell) oid(arg string) (asset.OID, error) {
	id, err := parseID(arg)
	if err != nil {
		return asset.NilOID, fmt.Errorf("bad oid %q", arg)
	}
	return asset.OID(id), nil
}

func (s *Shell) begin() error {
	t := &itx{
		ops: make(chan func(tx *asset.Tx) error),
		res: make(chan error),
	}
	id, err := s.m.Initiate(func(tx *asset.Tx) error {
		for f := range t.ops {
			t.res <- f(tx)
		}
		return nil
	})
	if err != nil {
		return err
	}
	t.id = id
	if err := s.m.Begin(id); err != nil {
		return err
	}
	s.txns[id] = t
	fmt.Fprintf(s.out, "%v\n", id)
	return nil
}

// do runs one operation inside the interactive transaction. The body
// goroutine keeps draining ops until the shell closes the channel — even
// after an external abort, in which case the operations themselves fail
// with ErrAborted — so a blocking send here is safe while t is tracked.
func (s *Shell) do(t *itx, f func(tx *asset.Tx) error) error {
	t.ops <- f
	return <-t.res
}

// finishAnd closes the transaction's body and applies term (Commit).
func (s *Shell) finishAnd(args []string, term func(asset.TID) error) error {
	if len(args) != 1 {
		return errors.New("usage: commit <t>")
	}
	t, err := s.tx(args[0])
	if err != nil {
		return err
	}
	close(t.ops)
	delete(s.txns, t.id)
	if err := term(t.id); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "%v %v\n", t.id, s.m.StatusOf(t.id))
	return nil
}

func (s *Shell) abortCmd(args []string) error {
	if len(args) != 1 {
		return errors.New("usage: abort <t>")
	}
	id, err := parseID(args[0])
	if err != nil {
		return err
	}
	if t, ok := s.txns[asset.TID(id)]; ok {
		close(t.ops)
		delete(s.txns, t.id)
	}
	if err := s.m.Abort(asset.TID(id)); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "t%d aborted\n", id)
	return nil
}

func (s *Shell) readCmd(args []string) error {
	if len(args) != 2 {
		return errors.New("usage: read <t> <oid>")
	}
	t, err := s.tx(args[0])
	if err != nil {
		return err
	}
	oid, err := s.oid(args[1])
	if err != nil {
		return err
	}
	var data []byte
	if err := s.do(t, func(tx *asset.Tx) error {
		var e error
		data, e = tx.Read(oid)
		return e
	}); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "%v = %q\n", oid, data)
	return nil
}

func (s *Shell) writeCmd(args []string) error {
	if len(args) < 3 {
		return errors.New("usage: write <t> <oid> <value...>")
	}
	t, err := s.tx(args[0])
	if err != nil {
		return err
	}
	oid, err := s.oid(args[1])
	if err != nil {
		return err
	}
	val := strings.Join(args[2:], " ")
	return s.do(t, func(tx *asset.Tx) error { return tx.Write(oid, []byte(val)) })
}

func (s *Shell) createCmd(args []string) error {
	if len(args) < 2 {
		return errors.New("usage: create <t> <value...>")
	}
	t, err := s.tx(args[0])
	if err != nil {
		return err
	}
	val := strings.Join(args[1:], " ")
	var oid asset.OID
	if err := s.do(t, func(tx *asset.Tx) error {
		var e error
		oid, e = tx.Create([]byte(val))
		return e
	}); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "%v\n", oid)
	return nil
}

func (s *Shell) deleteCmd(args []string) error {
	if len(args) != 2 {
		return errors.New("usage: delete <t> <oid>")
	}
	t, err := s.tx(args[0])
	if err != nil {
		return err
	}
	oid, err := s.oid(args[1])
	if err != nil {
		return err
	}
	return s.do(t, func(tx *asset.Tx) error { return tx.Delete(oid) })
}

func (s *Shell) addCmd(args []string) error {
	if len(args) != 3 {
		return errors.New("usage: add <t> <oid> <n>")
	}
	t, err := s.tx(args[0])
	if err != nil {
		return err
	}
	oid, err := s.oid(args[1])
	if err != nil {
		return err
	}
	n, err := strconv.ParseInt(args[2], 10, 64)
	if err != nil {
		return fmt.Errorf("bad delta %q", args[2])
	}
	return s.do(t, func(tx *asset.Tx) error { return tx.Add(oid, n) })
}

func (s *Shell) permitCmd(args []string) error {
	if len(args) < 2 {
		return errors.New("usage: permit <ti> <tj|any> [r|w|rw|all] [oid...]")
	}
	ti, err := parseID(args[0])
	if err != nil {
		return err
	}
	var tj asset.TID
	if args[1] != "any" {
		id, err := parseID(args[1])
		if err != nil {
			return err
		}
		tj = asset.TID(id)
	}
	ops := asset.OpAll
	rest := args[2:]
	if len(rest) > 0 {
		switch rest[0] {
		case "r":
			ops, rest = asset.OpRead, rest[1:]
		case "w":
			ops, rest = asset.OpWrite, rest[1:]
		case "rw", "all":
			ops, rest = asset.OpAll, rest[1:]
		}
	}
	var oids []asset.OID
	for _, a := range rest {
		oid, err := s.oid(a)
		if err != nil {
			return err
		}
		oids = append(oids, oid)
	}
	return s.m.Permit(asset.TID(ti), tj, oids, ops)
}

func (s *Shell) delegateCmd(args []string) error {
	if len(args) < 2 {
		return errors.New("usage: delegate <ti> <tj> [oid...]")
	}
	ti, err := parseID(args[0])
	if err != nil {
		return err
	}
	tj, err := parseID(args[1])
	if err != nil {
		return err
	}
	var oids []asset.OID
	for _, a := range args[2:] {
		oid, err := s.oid(a)
		if err != nil {
			return err
		}
		oids = append(oids, oid)
	}
	return s.m.Delegate(asset.TID(ti), asset.TID(tj), oids...)
}

func (s *Shell) depCmd(args []string) error {
	if len(args) != 3 {
		return errors.New("usage: dep <CD|AD|GC|BD|BAD|EXC> <ti> <tj>")
	}
	var typ asset.DepType
	switch strings.ToUpper(args[0]) {
	case "CD":
		typ = asset.CD
	case "AD":
		typ = asset.AD
	case "GC":
		typ = asset.GC
	case "BD":
		typ = asset.BD
	case "BAD":
		typ = asset.BAD
	case "EXC":
		typ = asset.EXC
	default:
		return fmt.Errorf("unknown dependency type %q", args[0])
	}
	ti, err := parseID(args[1])
	if err != nil {
		return err
	}
	tj, err := parseID(args[2])
	if err != nil {
		return err
	}
	return s.m.FormDependency(typ, asset.TID(ti), asset.TID(tj))
}

func (s *Shell) statusCmd(args []string) error {
	if len(args) != 1 {
		return errors.New("usage: status <t>")
	}
	id, err := parseID(args[0])
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "t%d %v\n", id, s.m.StatusOf(asset.TID(id)))
	return nil
}

func (s *Shell) objectsCmd() {
	type obj struct {
		oid  asset.OID
		data string
	}
	var objs []obj
	s.m.Cache().ForEach(func(oid asset.OID, data []byte) bool {
		objs = append(objs, obj{oid, string(data)})
		return true
	})
	sort.Slice(objs, func(i, j int) bool { return objs[i].oid < objs[j].oid })
	for _, o := range objs {
		fmt.Fprintf(s.out, "%v = %q\n", o.oid, o.data)
	}
	fmt.Fprintf(s.out, "(%d objects)\n", len(objs))
}
