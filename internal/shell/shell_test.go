package shell

import (
	"strings"
	"testing"

	asset "repro"
)

func runScript(t *testing.T, script string) (string, *asset.Manager) {
	t.Helper()
	m, err := asset.Open(asset.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	var out strings.Builder
	sh := New(m, &out)
	if err := sh.Run(strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	return out.String(), m
}

func TestBasicSession(t *testing.T) {
	out, m := runScript(t, `
# create and commit
begin
create t1 hello world
commit t1
objects
`)
	if !strings.Contains(out, "t1\n") || !strings.Contains(out, "ob1\n") {
		t.Fatalf("missing ids in output:\n%s", out)
	}
	if !strings.Contains(out, `ob1 = "hello world"`) {
		t.Fatalf("object listing wrong:\n%s", out)
	}
	if !strings.Contains(out, "t1 committed") {
		t.Fatalf("commit status missing:\n%s", out)
	}
	if m.Cache().Len() != 1 {
		t.Fatal("object not committed")
	}
}

func TestAbortRollsBack(t *testing.T) {
	out, m := runScript(t, `
begin
create t1 keep
commit t1
begin
write t2 ob1 dirty
abort t2
`)
	_ = out
	if b, _ := m.Cache().Read(1); string(b) != "keep" {
		t.Fatalf("rollback failed: %q", b)
	}
}

func TestTwoTransactionsPermitAndDependency(t *testing.T) {
	out, m := runScript(t, `
begin
create t1 base
begin
permit t1 t2 w ob1
dep CD t1 t2
write t2 ob1 cooperative
commit t1
commit t2
`)
	if strings.Contains(out, "error:") {
		t.Fatalf("script errored:\n%s", out)
	}
	if b, _ := m.Cache().Read(1); string(b) != "cooperative" {
		t.Fatalf("object = %q", b)
	}
}

func TestDelegateCommand(t *testing.T) {
	out, m := runScript(t, `
begin
create t1 owned
begin
delegate t1 t2
abort t1
commit t2
`)
	if strings.Contains(out, "error:") {
		t.Fatalf("script errored:\n%s", out)
	}
	if b, ok := m.Cache().Read(1); !ok || string(b) != "owned" {
		t.Fatalf("delegated create lost: %q %v", b, ok)
	}
}

func TestCounterAdd(t *testing.T) {
	out, m := runScript(t, "begin\ncreate t1 \x00\x00\x00\x00\x00\x00\x00\x00\ncommit t1\n")
	_ = out
	_ = m
	// Binary via script is awkward; drive the add path directly instead.
	m2, _ := asset.Open(asset.Config{})
	defer m2.Close()
	var sb strings.Builder
	sh := New(m2, &sb)
	seedCounter(t, m2)
	if err := sh.Run(strings.NewReader("begin\nadd t2 ob1 5\ncommit t2\n")); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "error:") {
		t.Fatalf("add errored:\n%s", sb.String())
	}
	b, _ := m2.Cache().Read(1)
	if b[0] != 5 {
		t.Fatalf("counter = %v", b)
	}
}

func seedCounter(t *testing.T, m *asset.Manager) {
	t.Helper()
	id, err := m.Initiate(func(tx *asset.Tx) error {
		_, err := tx.Create(make([]byte, 8))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Begin(id)
	if err := m.Commit(id); err != nil {
		t.Fatal(err)
	}
}

func TestErrorsAreReportedNotFatal(t *testing.T) {
	out, _ := runScript(t, `
bogus-command
commit t99
status t1
stats
quit
begin
`)
	if !strings.Contains(out, "error: unknown command") {
		t.Fatalf("unknown command not reported:\n%s", out)
	}
	if !strings.Contains(out, "error: no open interactive transaction") {
		t.Fatalf("bad tid not reported:\n%s", out)
	}
	if !strings.Contains(out, "commits=") {
		t.Fatalf("stats missing:\n%s", out)
	}
	// Nothing after quit may run.
	if strings.Count(out, "t1\n") != 0 {
		t.Fatalf("command after quit ran:\n%s", out)
	}
}

func TestDanglingTransactionsClosedAtEOF(t *testing.T) {
	// A script that leaves a transaction open must not hang Run.
	out, m := runScript(t, "begin\ncreate t1 orphan\n")
	_ = out
	// The transaction completed but was never committed; its create is
	// invisible (locks held until terminate, data volatile).
	if m.StatusOf(1) == asset.StatusCommitted {
		t.Fatal("uncommitted transaction committed itself")
	}
}

func TestHelpAndStatus(t *testing.T) {
	out, _ := runScript(t, "help\nbegin\nstatus t1\ncommit t1\nstatus t1\n")
	if !strings.Contains(out, "commands:") {
		t.Fatal("help missing")
	}
	if !strings.Contains(out, "t1 running") && !strings.Contains(out, "t1 completed") {
		t.Fatalf("status of live txn missing:\n%s", out)
	}
	if !strings.Contains(out, "t1 committed") {
		t.Fatalf("status after commit missing:\n%s", out)
	}
}

func TestExclusionDep(t *testing.T) {
	out, m := runScript(t, `
begin
begin
dep EXC t1 t2
commit t1
status t2
`)
	if !strings.Contains(out, "t2 aborted") {
		t.Fatalf("exclusion not applied:\n%s", out)
	}
	_ = m
}

func TestPsAndPermitVariants(t *testing.T) {
	out, m := runScript(t, `
begin
create t1 shared
begin
permit t1 any w ob1
permit t1 t2 r ob1
permit t1 t2 rw
ps
commit t1
commit t2
`)
	if strings.Contains(out, "error:") {
		t.Fatalf("script errored:\n%s", out)
	}
	if !strings.Contains(out, "t1 running") && !strings.Contains(out, "t1 completed") {
		t.Fatalf("ps output missing:\n%s", out)
	}
	_ = m
}

func TestUsageErrors(t *testing.T) {
	out, _ := runScript(t, `
begin
read t1
write t1
create t1
delete t1
add t1 ob1 xyz
permit t1
delegate t1
dep XX t1 t2
status
commit
abort
commit t1
`)
	for _, want := range []string{
		"usage: read", "usage: write", "usage: create", "usage: delete",
		"usage: permit", "usage: delegate", "unknown dependency type",
		"usage: status", "usage: commit", "usage: abort",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "bad delta") {
		t.Fatalf("bad delta unreported:\n%s", out)
	}
}

func TestBadIDsReported(t *testing.T) {
	out, _ := runScript(t, `
begin
read t1 obXYZ
write tFOO ob1 v
delegate tx ty
dep CD a b
commit t1
`)
	if !strings.Contains(out, "bad oid") || !strings.Contains(out, "bad tid") {
		t.Fatalf("id errors unreported:\n%s", out)
	}
}

func TestCheckpointCommand(t *testing.T) {
	out, _ := runScript(t, `
begin
create t1 persist-me
commit t1
checkpoint
`)
	if strings.Contains(out, "error:") {
		t.Fatalf("checkpoint errored:\n%s", out)
	}
}

func TestEchoMode(t *testing.T) {
	m, err := asset.Open(asset.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var out strings.Builder
	sh := New(m, &out)
	sh.Echo = true
	sh.Run(strings.NewReader("stats\n"))
	if !strings.Contains(out.String(), "> stats") {
		t.Fatalf("echo missing:\n%s", out.String())
	}
}

func TestDeleteCommand(t *testing.T) {
	_, m := runScript(t, `
begin
create t1 doomed
commit t1
begin
delete t2 ob1
commit t2
`)
	if m.Cache().Len() != 0 {
		t.Fatal("delete command did not remove the object")
	}
}
