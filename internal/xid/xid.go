// Package xid defines the identifier and enumeration types shared by every
// ASSET subsystem: transaction identifiers (TID), object identifiers (OID),
// operation sets, transaction statuses, and dependency types.
//
// The types mirror the vocabulary of the paper: a TID names a transaction
// descriptor, an OID names an object in the store, an OpSet is the
// "operations" argument of the permit primitive, and DepType enumerates the
// dependency kinds accepted by form_dependency.
package xid

import "fmt"

// TID identifies a transaction. The zero value is the null tid returned by
// initiate on failure and by parent() for top-level transactions.
type TID uint64

// NilTID is the null transaction identifier.
const NilTID TID = 0

// IsNil reports whether t is the null tid.
func (t TID) IsNil() bool { return t == NilTID }

// String renders a tid as "t<N>", or "t∅" for the null tid.
func (t TID) String() string {
	if t == NilTID {
		return "t∅"
	}
	return fmt.Sprintf("t%d", uint64(t))
}

// OID identifies a persistent object. The zero value is the null oid; stores
// never allocate it.
type OID uint64

// NilOID is the null object identifier.
const NilOID OID = 0

// IsNil reports whether o is the null oid.
func (o OID) IsNil() bool { return o == NilOID }

// String renders an oid as "ob<N>", or "ob∅" for the null oid.
func (o OID) String() string {
	if o == NilOID {
		return "ob∅"
	}
	return fmt.Sprintf("ob%d", uint64(o))
}

// OpSet is a set of elementary operations, used both as a lock mode request
// and as the "operations" argument of permit. OpAll is the wildcard used by
// the permit(ti, tj) form ("any conflicting operation").
type OpSet uint32

// Elementary operations. OpIncr and OpDecr are the §5 "future work"
// extension: class-specific commutative operations (escrow-style counter
// increment/decrement). Addition commutes regardless of sign, so the two
// modes are compatible with each other and with themselves, but conflict
// with reads and writes; the sign distinction matters to bounded escrow
// accounting, which charges increments against the upper bound and
// decrements against the lower.
const (
	OpRead  OpSet = 1 << iota // read the object
	OpWrite                   // update the object
	OpIncr                    // commutative increment (semantic locking)
	OpDecr                    // commutative decrement (semantic locking)

	// OpAll is every operation; it is the permit wildcard.
	OpAll = OpRead | OpWrite | OpIncr | OpDecr
)

// Has reports whether s contains every operation in ops.
func (s OpSet) Has(ops OpSet) bool { return s&ops == ops }

// Intersect returns the operations present in both sets. Permit transitivity
// composes permissions with Intersect, per the paper's rule
// permit(ti,tk, ob∩ob', op∩op').
func (s OpSet) Intersect(o OpSet) OpSet { return s & o }

// Union returns the operations present in either set.
func (s OpSet) Union(o OpSet) OpSet { return s | o }

// Conflicts reports whether an operation in s conflicts with an operation
// in o on the same object. Reads are compatible with reads, increments and
// decrements commute with each other, and every other combination
// conflicts.
func (s OpSet) Conflicts(o OpSet) bool {
	if s == 0 || o == 0 {
		return false
	}
	u := s.Union(o)
	return u != OpRead && u&^(OpIncr|OpDecr) != 0
}

// String renders the set from the letters r, w, i, and d, or "-" when
// empty.
func (s OpSet) String() string {
	if s == 0 {
		return "-"
	}
	var b []byte
	if s.Has(OpRead) {
		b = append(b, 'r')
	}
	if s.Has(OpWrite) {
		b = append(b, 'w')
	}
	if s.Has(OpIncr) {
		b = append(b, 'i')
	}
	if s.Has(OpDecr) {
		b = append(b, 'd')
	}
	return string(b)
}

// Status is the life-cycle state of a transaction, per §2.1 of the paper:
// initiated -> running -> completed -> {committing -> committed | aborting ->
// aborted}. A transaction is "active" while running or completed, and
// "terminated" once committed or aborted.
type Status int32

// Transaction statuses.
const (
	StatusInitiated  Status = iota // registered, not yet begun
	StatusRunning                  // executing its function
	StatusCompleted                // function returned, not yet terminated
	StatusCommitting               // inside the commit protocol
	StatusCommitted                // terminated successfully
	StatusAborting                 // inside the abort protocol
	StatusAborted                  // terminated by abort
	// StatusPrepared is the distributed-commit extension: the transaction
	// has voted yes in a cross-manager group commit and holds its locks
	// until the coordinator's verdict arrives — no unilateral abort (lease
	// expiry, watchdog, explicit abort) may touch it. Appended after the
	// original statuses because the value crosses the wire.
	StatusPrepared
)

// Active reports whether the transaction has begun executing and has not
// terminated (it may be running or completed).
func (s Status) Active() bool {
	return s == StatusRunning || s == StatusCompleted || s == StatusCommitting ||
		s == StatusAborting || s == StatusPrepared
}

// Terminated reports whether the transaction has committed or aborted.
func (s Status) Terminated() bool { return s == StatusCommitted || s == StatusAborted }

// String returns the lower-case status name.
func (s Status) String() string {
	switch s {
	case StatusInitiated:
		return "initiated"
	case StatusRunning:
		return "running"
	case StatusCompleted:
		return "completed"
	case StatusCommitting:
		return "committing"
	case StatusCommitted:
		return "committed"
	case StatusAborting:
		return "aborting"
	case StatusAborted:
		return "aborted"
	case StatusPrepared:
		return "prepared"
	default:
		return fmt.Sprintf("status(%d)", int32(s))
	}
}

// DepType enumerates the dependency kinds accepted by form_dependency.
type DepType int32

// Dependency types. CD, AD, and GC are the paper's §2.2 set; BD is the
// begin-on-commit extension mentioned in DESIGN.md.
const (
	// DepCD is a commit dependency: if both commit, tj cannot commit before
	// ti commits; if ti aborts, tj may still commit.
	DepCD DepType = iota
	// DepAD is an abort dependency: if ti aborts, tj must abort. AD covers
	// CD.
	DepAD
	// DepGC is a group commit dependency: either both ti and tj commit or
	// neither does.
	DepGC
	// DepBD is a begin-on-commit dependency (extension): tj may not begin
	// until ti commits; ti's abort aborts tj.
	DepBD
	// DepBAD is a begin-on-abort dependency (extension, ACTA's
	// compensation pattern): tj may begin only after ti aborts; ti's
	// commit aborts tj.
	DepBAD
	// DepEXC is an exclusion dependency (extension): at most one of ti and
	// tj commits — whichever commits first aborts the other (contingent
	// transactions expressed declaratively).
	DepEXC
)

// String returns the dependency type name used by the paper.
func (d DepType) String() string {
	switch d {
	case DepCD:
		return "CD"
	case DepAD:
		return "AD"
	case DepGC:
		return "GC"
	case DepBD:
		return "BD"
	case DepBAD:
		return "BAD"
	case DepEXC:
		return "EXC"
	default:
		return fmt.Sprintf("dep(%d)", int32(d))
	}
}
