package xid

import (
	"testing"
	"testing/quick"
)

func TestNilIDs(t *testing.T) {
	if !NilTID.IsNil() || !NilOID.IsNil() {
		t.Fatal("zero values must be nil ids")
	}
	if TID(1).IsNil() || OID(1).IsNil() {
		t.Fatal("non-zero ids must not be nil")
	}
	if NilTID.String() != "t∅" || NilOID.String() != "ob∅" {
		t.Fatalf("nil strings: %q %q", NilTID.String(), NilOID.String())
	}
	if TID(7).String() != "t7" || OID(9).String() != "ob9" {
		t.Fatalf("strings: %q %q", TID(7).String(), OID(9).String())
	}
}

func TestOpSetAlgebra(t *testing.T) {
	if !OpAll.Has(OpRead) || !OpAll.Has(OpWrite) || !OpAll.Has(OpIncr) {
		t.Fatal("OpAll must contain every op")
	}
	if OpRead.Has(OpWrite) {
		t.Fatal("read does not contain write")
	}
	if (OpRead | OpWrite).Intersect(OpWrite|OpIncr) != OpWrite {
		t.Fatal("intersect wrong")
	}
	if OpRead.Union(OpWrite) != OpRead|OpWrite {
		t.Fatal("union wrong")
	}
}

func TestConflictMatrix(t *testing.T) {
	cases := []struct {
		a, b OpSet
		want bool
	}{
		{OpRead, OpRead, false},
		{OpRead, OpWrite, true},
		{OpWrite, OpWrite, true},
		{OpIncr, OpIncr, false},
		{OpIncr, OpRead, true},
		{OpIncr, OpWrite, true},
		{OpRead | OpIncr, OpRead, true}, // incr in the mix conflicts with reads
		{0, OpWrite, false},             // empty set conflicts with nothing
		{OpWrite, 0, false},
	}
	for _, c := range cases {
		if got := c.a.Conflicts(c.b); got != c.want {
			t.Errorf("Conflicts(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestConflictsSymmetric(t *testing.T) {
	f := func(a, b uint8) bool {
		x, y := OpSet(a)&OpAll, OpSet(b)&OpAll
		return x.Conflicts(y) == y.Conflicts(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpSetString(t *testing.T) {
	cases := map[OpSet]string{
		0:               "-",
		OpRead:          "r",
		OpWrite:         "w",
		OpIncr:          "i",
		OpDecr:          "d",
		OpRead | OpIncr: "ri",
		OpIncr | OpDecr: "id",
		OpAll:           "rwid",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%b.String() = %q, want %q", uint32(s), got, want)
		}
	}
}

func TestStatusPredicates(t *testing.T) {
	active := []Status{StatusRunning, StatusCompleted, StatusCommitting, StatusAborting}
	for _, s := range active {
		if !s.Active() {
			t.Errorf("%v should be active", s)
		}
	}
	for _, s := range []Status{StatusInitiated, StatusCommitted, StatusAborted} {
		if s.Active() {
			t.Errorf("%v should not be active", s)
		}
	}
	for _, s := range []Status{StatusCommitted, StatusAborted} {
		if !s.Terminated() {
			t.Errorf("%v should be terminated", s)
		}
	}
	if StatusRunning.Terminated() {
		t.Error("running is not terminated")
	}
}

func TestStatusStrings(t *testing.T) {
	names := map[Status]string{
		StatusInitiated:  "initiated",
		StatusRunning:    "running",
		StatusCompleted:  "completed",
		StatusCommitting: "committing",
		StatusCommitted:  "committed",
		StatusAborting:   "aborting",
		StatusAborted:    "aborted",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if Status(99).String() == "" {
		t.Error("unknown status must still render")
	}
}

func TestDepTypeStrings(t *testing.T) {
	names := map[DepType]string{DepCD: "CD", DepAD: "AD", DepGC: "GC", DepBD: "BD"}
	for d, want := range names {
		if d.String() != want {
			t.Errorf("%v, want %q", d, want)
		}
	}
}
