package faultnet

import (
	"math/rand"
	"sync"
	"time"
)

// Direction names one side of a connection's traffic; scripts can target
// a fault at client→server messages, server→client messages, or both.
type Direction int

const (
	// Both matches messages in either direction (rule matching only; a
	// Conn's own dir is always one of the two concrete directions).
	Both Direction = iota
	// ClientToServer matches messages written by the dialing endpoint.
	ClientToServer
	// ServerToClient matches messages written by the accepting endpoint.
	ServerToClient
)

func (d Direction) String() string {
	switch d {
	case ClientToServer:
		return "c2s"
	case ServerToClient:
		return "s2c"
	default:
		return "both"
	}
}

// Kind is the injected network fault.
type Kind int

const (
	// Delay holds the message for Duration before delivering it.
	Delay Kind = iota
	// Drop silently loses the message; the writer still sees success,
	// exactly as a kernel that buffered a frame the wire then ate.
	Drop
	// Dup delivers the message twice back to back.
	Dup
	// Reorder holds the message and delivers it after the next one on
	// the same direction (a pairwise swap).
	Reorder
	// Truncate delivers only the first Keep bytes of the message and
	// hard-disconnects the connection — the mid-frame cut the CRC'd
	// framing must detect.
	Truncate
	// Partition cuts this direction (messages silently dropped, reads
	// hang) starting with this message; Duration > 0 heals the cut after
	// that long, 0 leaves it cut forever.
	Partition
	// Disconnect resets the connection: both sides' reads and writes
	// fail immediately.
	Disconnect
)

func (k Kind) String() string {
	switch k {
	case Delay:
		return "delay"
	case Drop:
		return "drop"
	case Dup:
		return "dup"
	case Reorder:
		return "reorder"
	case Truncate:
		return "truncate"
	case Partition:
		return "partition"
	case Disconnect:
		return "disconnect"
	default:
		return "?"
	}
}

// Rule triggers one fault at an exact point in the message stream.
type Rule struct {
	Dir      Direction // which traffic it can match (Both = either)
	Conn     int       // connection ID to match, 0 = any
	Nth      int       // fire on the Nth matching message (1-based); 0 = every match
	Kind     Kind
	Keep     int           // Truncate: bytes delivered before the cut
	Duration time.Duration // Delay: hold time; Partition: heal-after (0 = forever)
}

func (r Rule) matches(dir Direction, connID int, seen int) bool {
	if r.Dir != Both && r.Dir != dir {
		return false
	}
	if r.Conn != 0 && r.Conn != connID {
		return false
	}
	return r.Nth == 0 || r.Nth == seen
}

// Script is an ordered rule list evaluated against every message entering
// the fabric. Counting is per-script and global across connections (like
// faultfs Script's op counter): the Nth message the script sees, not the
// Nth on some particular conn — which is what makes a sweep index
// meaningful across a whole protocol exchange. Each rule fires at most
// once unless Nth is 0.
type Script struct {
	mu    sync.Mutex
	rules []Rule
	rnd   func(dir Direction, connID int) (Rule, bool) // RandomScript generator
	seen  int
	fired []bool
	log   []string
}

// NewScript builds a script from rules.
func NewScript(rules ...Rule) *Script {
	return &Script{rules: rules, fired: make([]bool, len(rules))}
}

// decide consumes one message event and reports the first matching
// unfired rule, if any. A nil script matches nothing.
func (s *Script) decide(dir Direction, connID int) (Rule, bool) {
	if s == nil {
		return Rule{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seen++
	if s.rnd != nil {
		r, ok := s.rnd(dir, connID)
		if ok {
			s.log = append(s.log, r.Kind.String())
		}
		return r, ok
	}
	for i, r := range s.rules {
		if s.fired[i] && r.Nth != 0 {
			continue
		}
		if r.matches(dir, connID, s.seen) {
			s.fired[i] = true
			s.log = append(s.log, r.Kind.String())
			return r, true
		}
	}
	return Rule{}, false
}

// Fired reports how many faults this script has injected.
func (s *Script) Fired() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.log)
}

// Seen reports how many messages this script has been consulted on.
func (s *Script) Seen() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seen
}

// RandomScript builds a seeded chaos script for torture runs: every
// message has faultEvery⁻¹ odds of drawing a transient fault (delay,
// drop, dup, reorder, or a short self-healing partition). Faults that
// kill the connection outright (truncate, disconnect) are drawn an order
// of magnitude more rarely so sessions live long enough to make
// progress. The same seed yields the same script decisions given the
// same message sequence.
func RandomScript(seed int64, faultEvery int) *Script {
	if faultEvery < 2 {
		faultEvery = 2
	}
	rng := rand.New(rand.NewSource(seed))
	return &Script{rnd: func(dir Direction, connID int) (Rule, bool) {
		if rng.Intn(faultEvery) != 0 {
			return Rule{}, false
		}
		switch rng.Intn(12) {
		case 0, 1, 2:
			return Rule{Kind: Delay, Duration: time.Duration(rng.Intn(2000)) * time.Microsecond}, true
		case 3, 4, 5:
			return Rule{Kind: Drop}, true
		case 6, 7:
			return Rule{Kind: Dup}, true
		case 8, 9:
			return Rule{Kind: Reorder}, true
		case 10:
			return Rule{Kind: Partition, Duration: time.Duration(1+rng.Intn(3)) * time.Millisecond}, true
		default:
			return Rule{Kind: Disconnect}, true
		}
	}}
}
