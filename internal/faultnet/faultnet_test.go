package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

// pipe dials a fresh connection pair on a fabric with one listener.
func pipe(t *testing.T, n *Network) (cli, srv net.Conn) {
	t.Helper()
	l, err := n.Listen("asset")
	if err != nil {
		l2, ok := n.listeners["asset"]
		if !ok {
			t.Fatalf("listen: %v", err)
		}
		_ = l2
	}
	if l == nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- nil
			return
		}
		done <- c
	}()
	cli, err = n.Dial("asset")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	srv = <-done
	if srv == nil {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { cli.Close(); srv.Close(); l.Close() })
	return cli, srv
}

func send(t *testing.T, c net.Conn, msg string) {
	t.Helper()
	if _, err := c.Write([]byte(msg)); err != nil {
		t.Fatalf("write %q: %v", msg, err)
	}
}

func recv(t *testing.T, c net.Conn) string {
	t.Helper()
	buf := make([]byte, 256)
	n, err := c.Read(buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return string(buf[:n])
}

func TestPlainDelivery(t *testing.T) {
	n := New()
	cli, srv := pipe(t, n)
	send(t, cli, "hello")
	if got := recv(t, srv); got != "hello" {
		t.Fatalf("got %q", got)
	}
	send(t, srv, "world")
	if got := recv(t, cli); got != "world" {
		t.Fatalf("got %q", got)
	}
	if n.Messages() != 2 {
		t.Fatalf("messages = %d, want 2", n.Messages())
	}
}

func TestDialRefusedAndClosedListener(t *testing.T) {
	n := New()
	if _, err := n.Dial("nobody"); !errors.Is(err, ErrRefused) {
		t.Fatalf("dial to nothing: %v", err)
	}
	l, err := n.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := l.Accept(); !errors.Is(err, ErrClosed) {
		t.Fatalf("accept on closed: %v", err)
	}
	// Address is released for reuse.
	if _, err := n.Listen("a"); err != nil {
		t.Fatalf("relisten: %v", err)
	}
}

func TestCloseGivesEOFAfterDrain(t *testing.T) {
	n := New()
	cli, srv := pipe(t, n)
	send(t, cli, "last words")
	cli.Close()
	if got := recv(t, srv); got != "last words" {
		t.Fatalf("got %q", got)
	}
	if _, err := srv.Read(make([]byte, 8)); err != io.EOF {
		t.Fatalf("after drain: %v, want EOF", err)
	}
}

func TestDrop(t *testing.T) {
	n := New()
	n.SetScript(NewScript(Rule{Dir: ClientToServer, Nth: 1, Kind: Drop}))
	cli, srv := pipe(t, n)
	send(t, cli, "eaten")
	send(t, cli, "kept")
	if got := recv(t, srv); got != "kept" {
		t.Fatalf("got %q, want the dropped message gone", got)
	}
}

func TestDup(t *testing.T) {
	n := New()
	n.SetScript(NewScript(Rule{Nth: 1, Kind: Dup}))
	cli, srv := pipe(t, n)
	send(t, cli, "twice")
	if got := recv(t, srv); got != "twice" {
		t.Fatalf("first copy %q", got)
	}
	if got := recv(t, srv); got != "twice" {
		t.Fatalf("second copy %q", got)
	}
}

func TestReorderSwapsAdjacentMessages(t *testing.T) {
	n := New()
	n.SetScript(NewScript(Rule{Dir: ClientToServer, Nth: 1, Kind: Reorder}))
	cli, srv := pipe(t, n)
	send(t, cli, "first")
	send(t, cli, "second")
	if got := recv(t, srv); got != "second" {
		t.Fatalf("got %q, want the later message first", got)
	}
	if got := recv(t, srv); got != "first" {
		t.Fatalf("got %q, want the held message released", got)
	}
}

func TestReorderFlushesOnClose(t *testing.T) {
	n := New()
	n.SetScript(NewScript(Rule{Nth: 1, Kind: Reorder}))
	cli, srv := pipe(t, n)
	send(t, cli, "orphan")
	cli.Close()
	if got := recv(t, srv); got != "orphan" {
		t.Fatalf("got %q, want held message flushed at close", got)
	}
}

func TestTruncateDeliversStumpThenResets(t *testing.T) {
	n := New()
	n.SetScript(NewScript(Rule{Nth: 1, Kind: Truncate, Keep: 3}))
	cli, srv := pipe(t, n)
	if _, err := cli.Write([]byte("abcdef")); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("write: %v, want ErrDisconnected", err)
	}
	buf := make([]byte, 16)
	// The stump may or may not be readable depending on reset ordering;
	// what matters is the connection errors out, never delivering a
	// complete message.
	nr, err := srv.Read(buf)
	if err == nil && !bytes.Equal(buf[:nr], []byte("abc")) {
		t.Fatalf("read %q, want the 3-byte stump or an error", buf[:nr])
	}
	if err == nil {
		if _, err = srv.Read(buf); err == nil {
			t.Fatal("second read succeeded on reset connection")
		}
	}
	if _, err := cli.Write([]byte("more")); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("write after reset: %v", err)
	}
}

func TestPartitionDropsUntilHeal(t *testing.T) {
	n := New()
	n.SetScript(NewScript(Rule{Dir: ClientToServer, Nth: 1, Kind: Partition, Duration: 30 * time.Millisecond}))
	cli, srv := pipe(t, n)
	send(t, cli, "casualty") // triggers the cut and is lost
	send(t, cli, "also lost")
	// Server sees nothing while the partition holds.
	srv.SetReadDeadline(time.Now().Add(10 * time.Millisecond))
	if _, err := srv.Read(make([]byte, 8)); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("read during partition: %v", err)
	}
	srv.SetReadDeadline(time.Time{})
	time.Sleep(35 * time.Millisecond)
	send(t, cli, "after heal")
	if got := recv(t, srv); got != "after heal" {
		t.Fatalf("got %q after heal", got)
	}
	// The reverse direction was never cut.
	send(t, srv, "reverse")
	if got := recv(t, cli); got != "reverse" {
		t.Fatalf("reverse direction: %q", got)
	}
}

func TestDisconnectResetsBothSides(t *testing.T) {
	n := New()
	n.SetScript(NewScript(Rule{Nth: 2, Kind: Disconnect}))
	cli, srv := pipe(t, n)
	send(t, cli, "ok")
	if got := recv(t, srv); got != "ok" {
		t.Fatalf("got %q", got)
	}
	if _, err := cli.Write([]byte("boom")); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("write: %v", err)
	}
	if _, err := srv.Read(make([]byte, 8)); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("server read: %v", err)
	}
	if _, err := cli.Read(make([]byte, 8)); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("client read: %v", err)
	}
}

func TestDelayHoldsDelivery(t *testing.T) {
	n := New()
	n.SetScript(NewScript(Rule{Nth: 1, Kind: Delay, Duration: 20 * time.Millisecond}))
	cli, srv := pipe(t, n)
	start := time.Now()
	send(t, cli, "late")
	if got := recv(t, srv); got != "late" {
		t.Fatalf("got %q", got)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delivered after %v, want >= ~20ms", d)
	}
}

func TestReadDeadline(t *testing.T) {
	n := New()
	cli, _ := pipe(t, n)
	cli.SetReadDeadline(time.Now().Add(15 * time.Millisecond))
	start := time.Now()
	_, err := cli.Read(make([]byte, 8))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("read: %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("deadline took %v", d)
	}
	// Clearing the deadline unblocks future reads that get data.
	cli.SetReadDeadline(time.Time{})
}

func TestPartialReadsReassembleMessage(t *testing.T) {
	n := New()
	cli, srv := pipe(t, n)
	send(t, cli, "abcdefgh")
	var got []byte
	buf := make([]byte, 3)
	for len(got) < 8 {
		nr, err := srv.Read(buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		got = append(got, buf[:nr]...)
	}
	if string(got) != "abcdefgh" {
		t.Fatalf("reassembled %q", got)
	}
}

func TestEveryMatchRuleAndScriptCounters(t *testing.T) {
	s := NewScript(Rule{Kind: Drop}) // Nth 0: every message
	n := New()
	n.SetScript(s)
	cli, srv := pipe(t, n)
	for i := 0; i < 5; i++ {
		send(t, cli, "x")
	}
	if s.Seen() != 5 || s.Fired() != 5 {
		t.Fatalf("seen=%d fired=%d, want 5/5", s.Seen(), s.Fired())
	}
	srv.SetReadDeadline(time.Now().Add(5 * time.Millisecond))
	if _, err := srv.Read(make([]byte, 8)); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("read: %v", err)
	}
}

func TestRandomScriptDeterministic(t *testing.T) {
	run := func(seed int64) []string {
		s := RandomScript(seed, 3)
		for i := 0; i < 200; i++ {
			s.decide(ClientToServer, 1)
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		return append([]string(nil), s.log...)
	}
	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("no faults drawn in 200 messages at 1/3 odds")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed diverged: %d vs %d faults", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %s vs %s", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault streams")
	}
}

func TestConcurrentTrafficUnderRace(t *testing.T) {
	n := New()
	n.SetScript(RandomScript(7, 10))
	l, err := n.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var wg sync.WaitGroup
	// Echo server: one goroutine per accepted conn.
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 64)
				for {
					nr, err := c.Read(buf)
					if err != nil {
						return
					}
					if _, err := c.Write(buf[:nr]); err != nil {
						return
					}
				}
			}()
		}
	}()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := n.Dial("srv")
			if err != nil {
				return
			}
			defer c.Close()
			c.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
			buf := make([]byte, 64)
			for j := 0; j < 50; j++ {
				if _, err := c.Write([]byte("ping")); err != nil {
					return
				}
				if _, err := c.Read(buf); err != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
}
