// Package faultnet is the pluggable network beneath the ASSET RPC tier,
// plus a deterministic fault-injection implementation of it — the network
// sibling of internal/faultfs.
//
// Production code dials real TCP. Tests run on a Network, an in-process
// message-switched fabric whose connections satisfy net.Conn: every
// Write is one message, messages flow through a per-direction queue, and
// a Script can delay, drop, duplicate, reorder, or truncate any message,
// partition a direction, or hard-disconnect a connection — all at exact
// message counts, so every network failure is reproducible and a failing
// sweep index replays exactly.
//
// The message granularity matches the RPC framing discipline: the wire
// protocol writes one frame per Write call, so "drop message 17" means
// "lose exactly the 17th frame on the wire", and a truncation models a
// connection dying mid-frame (the CRC'd framing must detect the stump).
package faultnet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"
)

// Errors surfaced by the fabric.
var (
	// ErrRefused is returned by Dial when nothing listens on the address.
	ErrRefused = errors.New("faultnet: connection refused")
	// ErrClosed is returned by operations on a closed connection,
	// listener, or network.
	ErrClosed = errors.New("faultnet: closed")
	// ErrDisconnected is returned by reads and writes after an injected
	// hard disconnect.
	ErrDisconnected = errors.New("faultnet: connection reset by fault injection")
)

// Network is an in-process fabric of listeners and connections sharing
// one fault script and one global message counter.
type Network struct {
	mu        sync.Mutex
	listeners map[string]*Listener
	script    *Script
	msgs      int
	conns     int
	closed    bool
}

// New creates an empty fabric.
func New() *Network {
	return &Network{listeners: make(map[string]*Listener)}
}

// SetScript installs (or clears, with nil) the fault script. The global
// message counter keeps running across SetScript calls.
func (n *Network) SetScript(s *Script) {
	n.mu.Lock()
	n.script = s
	n.mu.Unlock()
}

// Messages reports how many messages have entered the fabric since New —
// the sweep domain: a fault-free dry run's count bounds the Nth of every
// deterministic rule.
func (n *Network) Messages() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.msgs
}

// Listen claims addr on the fabric.
func (n *Network) Listen(addr string) (*Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, taken := n.listeners[addr]; taken {
		return nil, fmt.Errorf("faultnet: address %s already in use", addr)
	}
	l := &Listener{net: n, addr: addr, backlog: make(chan *Conn, 16)}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects to addr, returning the client half of the connection.
func (n *Network) Dial(addr string) (net.Conn, error) {
	return n.DialContext(context.Background(), addr)
}

// DialContext is Dial bounded by a context.
func (n *Network) DialContext(ctx context.Context, addr string) (net.Conn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	l := n.listeners[addr]
	n.conns++
	id := n.conns
	n.mu.Unlock()
	if l == nil {
		return nil, ErrRefused
	}
	cli, srv := newPair(n, id, addr)
	select {
	case l.backlog <- srv:
		return cli, nil
	case <-l.done():
		cli.Close()
		return nil, ErrRefused
	case <-ctx.Done():
		cli.Close()
		return nil, ctx.Err()
	}
}

// Close shuts the whole fabric down: every listener stops accepting and
// future dials fail.
func (n *Network) Close() {
	n.mu.Lock()
	ls := make([]*Listener, 0, len(n.listeners))
	for _, l := range n.listeners {
		ls = append(ls, l)
	}
	n.closed = true
	n.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
}

// decide routes one message through the script; it runs under no latch of
// the caller.
func (n *Network) decide(dir Direction, connID int) (Rule, bool) {
	n.mu.Lock()
	n.msgs++
	s := n.script
	n.mu.Unlock()
	return s.decide(dir, connID)
}

// Listener accepts fabric connections; it satisfies net.Listener.
type Listener struct {
	net     *Network
	addr    string
	backlog chan *Conn

	mu     sync.Mutex
	closed bool
	doneCh chan struct{}
}

func (l *Listener) done() chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.doneCh == nil {
		l.doneCh = make(chan struct{})
	}
	return l.doneCh
}

// Accept waits for the next inbound connection.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done():
		return nil, ErrClosed
	}
}

// Close stops the listener and releases its address.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	if l.doneCh == nil {
		l.doneCh = make(chan struct{})
	}
	close(l.doneCh)
	l.mu.Unlock()
	l.net.mu.Lock()
	if l.net.listeners[l.addr] == l {
		delete(l.net.listeners, l.addr)
	}
	l.net.mu.Unlock()
	return nil
}

// Addr returns the listening address.
func (l *Listener) Addr() net.Addr { return fabricAddr(l.addr) }

type fabricAddr string

func (a fabricAddr) Network() string { return "faultnet" }
func (a fabricAddr) String() string  { return string(a) }

// half is one direction of a connection: a queue of delivered messages
// feeding the peer's reads.
type half struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queue    [][]byte
	pos      int // read offset into queue[0]
	held     []byte
	holding  bool // a reordered message awaits the next send
	cut      bool // one-way partition: drop everything from now on
	healAt   time.Time
	closed   bool // writer half closed (EOF after drain)
	reset    bool // hard disconnect (error immediately)
	deadline time.Time
}

func newHalf() *half {
	h := &half{}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// Conn is one endpoint of a fabric connection. Writes enqueue onto out
// (the peer's in); reads drain in.
type Conn struct {
	net    *Network
	id     int
	addr   string
	dir    Direction // direction of this endpoint's writes
	in     *half
	out    *half
	closed sync.Once
}

// newPair builds the two endpoints of a connection. The client endpoint
// writes in direction ClientToServer.
func newPair(n *Network, id int, addr string) (cli, srv *Conn) {
	a, b := newHalf(), newHalf()
	cli = &Conn{net: n, id: id, addr: addr, dir: ClientToServer, in: b, out: a}
	srv = &Conn{net: n, id: id, addr: addr, dir: ServerToClient, in: a, out: b}
	return cli, srv
}

// ConnID returns the fabric-wide connection number (1-based dial order),
// which scripts can match on.
func (c *Conn) ConnID() int { return c.id }

// Write sends p as one message, subject to the script. The returned
// length is always len(p) unless the connection is down: like a kernel
// socket buffer, a fabric write succeeds as soon as the message is
// queued, even if a fault later eats it.
func (c *Conn) Write(p []byte) (int, error) {
	msg := append([]byte(nil), p...)
	rule, ok := c.net.decide(c.dir, c.id)
	if !ok {
		if err := c.out.deliver(msg); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	switch rule.Kind {
	case Drop:
		c.out.observeHeal() // a decided drop still lets timed cuts heal
		return len(p), nil
	case Dup:
		if err := c.out.deliver(msg); err != nil {
			return 0, err
		}
		if err := c.out.deliver(append([]byte(nil), msg...)); err != nil {
			return 0, err
		}
		return len(p), nil
	case Reorder:
		// Hold this message; it is delivered after the next one on the
		// same half (or on close, if no successor ever comes).
		c.out.hold(msg)
		return len(p), nil
	case Truncate:
		keep := rule.Keep
		if keep > len(msg) {
			keep = len(msg)
		}
		c.out.deliver(msg[:keep])
		c.disconnect()
		return 0, ErrDisconnected
	case Partition:
		c.out.cutFor(rule.Duration)
		return len(p), nil // the message itself is the first casualty
	case Disconnect:
		c.disconnect()
		return 0, ErrDisconnected
	case Delay:
		d := rule.Duration
		out := c.out
		time.AfterFunc(d, func() { out.deliver(msg) })
		return len(p), nil
	}
	if err := c.out.deliver(msg); err != nil {
		return 0, err
	}
	return len(p), nil
}

// deliver queues a message for the peer, first flushing any held
// (reordered) predecessor *after* it — the swap that Reorder promised.
func (h *half) deliver(msg []byte) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.reset {
		return ErrDisconnected
	}
	if h.closed {
		return ErrClosed
	}
	if h.cut {
		if h.healAt.IsZero() || time.Now().Before(h.healAt) {
			return nil // partitioned: silently dropped
		}
		h.cut = false
	}
	h.queue = append(h.queue, msg)
	if h.holding {
		h.queue = append(h.queue, h.held)
		h.held, h.holding = nil, false
	}
	h.cond.Broadcast()
	return nil
}

// observeHeal lets a timed partition heal even when the current message
// was consumed by another rule.
func (h *half) observeHeal() {
	h.mu.Lock()
	if h.cut && !h.healAt.IsZero() && !time.Now().Before(h.healAt) {
		h.cut = false
	}
	h.mu.Unlock()
}

func (h *half) hold(msg []byte) {
	h.mu.Lock()
	if h.holding {
		// Two consecutive reorders: release the earlier one first.
		h.queue = append(h.queue, h.held)
		h.cond.Broadcast()
	}
	h.held, h.holding = msg, true
	h.mu.Unlock()
}

func (h *half) cutFor(d time.Duration) {
	h.mu.Lock()
	h.cut = true
	if d > 0 {
		h.healAt = time.Now().Add(d)
	} else {
		h.healAt = time.Time{}
	}
	h.mu.Unlock()
}

// Read drains the inbound queue, blocking until data, EOF, disconnect, or
// the read deadline.
func (c *Conn) Read(p []byte) (int, error) {
	h := c.in
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		if h.reset {
			return 0, ErrDisconnected
		}
		if len(h.queue) > 0 {
			msg := h.queue[0]
			n := copy(p, msg[h.pos:])
			h.pos += n
			if h.pos >= len(msg) {
				h.queue = h.queue[1:]
				h.pos = 0
			}
			return n, nil
		}
		if h.closed {
			return 0, io.EOF
		}
		if !h.deadline.IsZero() {
			now := time.Now()
			if !now.Before(h.deadline) {
				return 0, os.ErrDeadlineExceeded
			}
			// Wake ourselves when the deadline passes; Broadcast is
			// harmless if the read completed meanwhile.
			t := time.AfterFunc(h.deadline.Sub(now), h.cond.Broadcast)
			h.cond.Wait()
			t.Stop()
			continue
		}
		h.cond.Wait()
	}
}

// disconnect models an RST: both halves error immediately, queued data
// included.
func (c *Conn) disconnect() {
	for _, h := range []*half{c.in, c.out} {
		h.mu.Lock()
		h.reset = true
		if h.holding {
			h.held, h.holding = nil, false
		}
		h.cond.Broadcast()
		h.mu.Unlock()
	}
}

// Close closes this endpoint: the peer drains what was delivered and then
// reads EOF; our own reads fail.
func (c *Conn) Close() error {
	c.closed.Do(func() {
		c.out.mu.Lock()
		c.out.closed = true
		if c.out.holding {
			// A held reordered message with no successor flushes on close.
			c.out.queue = append(c.out.queue, c.out.held)
			c.out.held, c.out.holding = nil, false
		}
		c.out.cond.Broadcast()
		c.out.mu.Unlock()

		c.in.mu.Lock()
		c.in.closed = true
		c.in.cond.Broadcast()
		c.in.mu.Unlock()
	})
	return nil
}

// LocalAddr identifies the endpoint.
func (c *Conn) LocalAddr() net.Addr { return fabricAddr(fmt.Sprintf("%s/#%d/%s", c.addr, c.id, c.dir)) }

// RemoteAddr identifies the peer.
func (c *Conn) RemoteAddr() net.Addr { return fabricAddr(c.addr) }

// SetDeadline sets both read and write deadlines.
func (c *Conn) SetDeadline(t time.Time) error {
	c.SetReadDeadline(t)
	return c.SetWriteDeadline(t)
}

// SetReadDeadline bounds future (and in-flight) reads.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.in.mu.Lock()
	c.in.deadline = t
	c.in.cond.Broadcast()
	c.in.mu.Unlock()
	return nil
}

// SetWriteDeadline is accepted and ignored: fabric writes never block.
func (c *Conn) SetWriteDeadline(time.Time) error { return nil }
