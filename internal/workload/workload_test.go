package workload

import (
	"errors"
	"testing"
	"time"
)

func TestUniformRange(t *testing.T) {
	g := NewUniform(1, 10)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		k := g.Next()
		if k >= 10 {
			t.Fatalf("key %d out of range", k)
		}
		seen[k] = true
	}
	if len(seen) < 8 {
		t.Fatalf("uniform generator too narrow: %d distinct", len(seen))
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewZipf(1, 1000, 1.3)
	counts := map[uint64]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[g.Next()]++
	}
	// The hottest key must take a disproportionate share.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max)/n < 0.05 {
		t.Fatalf("zipf not skewed: hottest key only %.2f%%", 100*float64(max)/n)
	}
}

func TestHistPercentiles(t *testing.T) {
	var h Hist
	for i := 0; i < 1000; i++ {
		h.Record(time.Microsecond)
	}
	h.Record(time.Second) // outlier
	if h.Count() != 1001 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Percentile(0.50)
	if p50 > 10*time.Microsecond {
		t.Fatalf("p50 = %v, want ~1µs", p50)
	}
	p999 := h.Percentile(0.9999)
	if p999 < 500*time.Millisecond {
		t.Fatalf("p99.99 = %v, want ~1s (outlier)", p999)
	}
	if h.Mean() < 500*time.Microsecond {
		t.Fatalf("mean = %v, outlier should pull it up", h.Mean())
	}
}

func TestHistMerge(t *testing.T) {
	var a, b Hist
	a.Record(time.Millisecond)
	b.Record(time.Millisecond)
	a.Merge(&b)
	if a.Count() != 2 {
		t.Fatalf("merged count = %d", a.Count())
	}
}

func TestRunClosedCountsOpsAndErrors(t *testing.T) {
	res := RunClosed(4, 50*time.Millisecond, func(w, i int) error {
		if i%10 == 0 {
			return errors.New("planned")
		}
		return nil
	})
	if res.Ops == 0 {
		t.Fatal("no ops recorded")
	}
	if res.Errors == 0 || res.Errors >= res.Ops {
		t.Fatalf("errors = %d of %d", res.Errors, res.Ops)
	}
	if res.Throughput() <= 0 {
		t.Fatal("throughput not positive")
	}
}

func TestRunOpsExactCount(t *testing.T) {
	res := RunOps(4, 1000, func(w, i int) error { return nil })
	if res.Ops != 1000 {
		t.Fatalf("ops = %d, want exactly 1000", res.Ops)
	}
}
