// Package workload provides access-pattern generators and latency
// statistics for the benchmark harness: uniform and Zipfian key choices,
// log-scale latency histograms with percentiles, and a closed-loop driver
// that runs N workers for a fixed duration or operation count.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Generator yields object indexes in [0, n).
type Generator interface {
	Next() uint64
}

// Uniform picks keys uniformly at random. Not safe for concurrent use;
// give each worker its own.
type Uniform struct {
	rng *rand.Rand
	n   uint64
}

// NewUniform returns a uniform generator over [0, n).
func NewUniform(seed int64, n uint64) *Uniform {
	return &Uniform{rng: rand.New(rand.NewSource(seed)), n: n}
}

// Next returns the next key.
func (u *Uniform) Next() uint64 { return u.rng.Uint64() % u.n }

// Zipf picks keys with a Zipfian distribution (popular keys dominate),
// the standard model for skewed/hot-spot workloads. Not safe for
// concurrent use.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf returns a Zipfian generator over [0, n) with skew s (> 1;
// higher is more skewed; 1.2 is a realistic hot-spot workload).
func NewZipf(seed int64, n uint64, s float64) *Zipf {
	if s <= 1 {
		s = 1.0001
	}
	return &Zipf{z: rand.NewZipf(rand.New(rand.NewSource(seed)), s, 1, n-1)}
}

// Next returns the next key.
func (z *Zipf) Next() uint64 { return z.z.Uint64() }

// Hist is a lock-free log-scale latency histogram (64 power-of-two
// buckets of nanoseconds).
type Hist struct {
	buckets [64]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Record adds one latency observation.
func (h *Hist) Record(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	if d < 0 {
		ns = 0
	}
	b := 0
	for v := ns; v > 1; v >>= 1 {
		b++
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.count.Load() }

// Mean returns the mean latency.
func (h *Hist) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Percentile returns an upper-bound estimate of the p-th percentile
// latency (p in (0,1]).
func (h *Hist) Percentile(p float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	target := uint64(math.Ceil(p * float64(n)))
	if target == 0 {
		target = 1
	}
	if target > n {
		target = n
	}
	var seen uint64
	for b := 0; b < len(h.buckets); b++ {
		seen += h.buckets[b].Load()
		if seen >= target {
			return time.Duration(uint64(1) << uint(b))
		}
	}
	return time.Duration(1<<63 - 1)
}

// Merge folds other into h.
func (h *Hist) Merge(other *Hist) {
	for i := range h.buckets {
		h.buckets[i].Add(other.buckets[i].Load())
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
}

// Result summarizes a closed-loop run.
type Result struct {
	Ops    uint64
	Errors uint64
	Wall   time.Duration
	Lat    *Hist
}

// Throughput returns operations per second.
func (r Result) Throughput() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Wall.Seconds()
}

// String renders the result for harness tables.
func (r Result) String() string {
	return fmt.Sprintf("%.0f ops/s (p50 %v, p99 %v, %d errs)",
		r.Throughput(), r.Lat.Percentile(0.50), r.Lat.Percentile(0.99), r.Errors)
}

// RunClosed runs `workers` goroutines for the given duration, each calling
// fn in a closed loop (fn's error counts as an error, not a stop). fn
// receives the worker index and the iteration number.
func RunClosed(workers int, duration time.Duration, fn func(worker, iter int) error) Result {
	var (
		hist   Hist
		ops    atomic.Uint64
		errs   atomic.Uint64
		stop   atomic.Bool
		wgroup sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wgroup.Add(1)
		//asset:goroutine joined-by=waitgroup
		go func(w int) {
			defer wgroup.Done()
			for i := 0; !stop.Load(); i++ {
				t0 := time.Now()
				err := fn(w, i)
				hist.Record(time.Since(t0))
				ops.Add(1)
				if err != nil {
					errs.Add(1)
				}
			}
		}(w)
	}
	time.Sleep(duration)
	stop.Store(true)
	wgroup.Wait()
	return Result{Ops: ops.Load(), Errors: errs.Load(), Wall: time.Since(start), Lat: &hist}
}

// RunOps runs `workers` goroutines until a total of totalOps calls have
// completed.
func RunOps(workers int, totalOps uint64, fn func(worker, iter int) error) Result {
	var (
		hist Hist
		ops  atomic.Uint64
		errs atomic.Uint64
		wg   sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//asset:goroutine joined-by=waitgroup
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				if ops.Add(1) > totalOps {
					ops.Add(^uint64(0))
					return
				}
				t0 := time.Now()
				if err := fn(w, i); err != nil {
					errs.Add(1)
				}
				hist.Record(time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	return Result{Ops: ops.Load(), Errors: errs.Load(), Wall: time.Since(start), Lat: &hist}
}
