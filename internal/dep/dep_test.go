package dep

import (
	"errors"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/xid"
)

func edgeTypes(es []Edge, other xid.TID) Mask {
	for _, e := range es {
		if e.Other == other {
			return e.Types
		}
	}
	return 0
}

func TestCDEdgeDirection(t *testing.T) {
	g := New()
	// form_dependency(CD, t1, t2): t2 cannot commit before t1 terminates.
	if err := g.Form(xid.DepCD, 1, 2); err != nil {
		t.Fatal(err)
	}
	if !edgeTypes(g.Outgoing(2), 1).Has(xid.DepCD) {
		t.Fatal("t2 should have an outgoing CD on t1")
	}
	if len(g.Outgoing(1)) != 0 {
		t.Fatal("t1 must not block on t2")
	}
	if !edgeTypes(g.Incoming(1), 2).Has(xid.DepCD) {
		t.Fatal("t1 should have incoming CD from t2")
	}
}

func TestADMask(t *testing.T) {
	g := New()
	g.Form(xid.DepAD, 1, 2)
	m := edgeTypes(g.Outgoing(2), 1)
	if !m.Has(xid.DepAD) || !m.Blocking() {
		t.Fatalf("mask = %v", m)
	}
}

func TestGCSymmetric(t *testing.T) {
	g := New()
	g.Form(xid.DepGC, 1, 2)
	if !edgeTypes(g.Outgoing(1), 2).Has(xid.DepGC) ||
		!edgeTypes(g.Outgoing(2), 1).Has(xid.DepGC) {
		t.Fatal("GC edge not symmetric")
	}
}

func TestGCComponentTransitive(t *testing.T) {
	g := New()
	g.Form(xid.DepGC, 1, 2)
	g.Form(xid.DepGC, 2, 3)
	g.Form(xid.DepGC, 5, 6) // separate component
	comp := g.GCComponent(1)
	sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
	if len(comp) != 3 || comp[0] != 1 || comp[1] != 2 || comp[2] != 3 {
		t.Fatalf("component = %v, want [1 2 3]", comp)
	}
	if len(g.GCComponent(7)) != 1 {
		t.Fatal("singleton component wrong")
	}
}

func TestSelfAndNilVacuous(t *testing.T) {
	g := New()
	if err := g.Form(xid.DepAD, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Form(xid.DepCD, xid.NilTID, 2); err != nil {
		t.Fatal(err)
	}
	if len(g.Outgoing(1))+len(g.Outgoing(2)) != 0 {
		t.Fatal("vacuous dependencies stored")
	}
}

func TestCDCycleRejected(t *testing.T) {
	g := New()
	g.Form(xid.DepCD, 1, 2) // 2 blocks on 1
	err := g.Form(xid.DepCD, 2, 1)
	if !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
	// Graph unchanged: t1 has no outgoing edge.
	if len(g.Outgoing(1)) != 0 {
		t.Fatal("rejected edge partially applied")
	}
}

func TestLongBlockingCycleRejected(t *testing.T) {
	g := New()
	g.Form(xid.DepCD, 1, 2)
	g.Form(xid.DepAD, 2, 3)
	g.Form(xid.DepBD, 3, 4)
	if err := g.Form(xid.DepCD, 4, 1); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
}

func TestGCCycleAllowed(t *testing.T) {
	// A pure GC "cycle" is just one group.
	g := New()
	g.Form(xid.DepGC, 1, 2)
	g.Form(xid.DepGC, 2, 3)
	if err := g.Form(xid.DepGC, 3, 1); err != nil {
		t.Fatal(err)
	}
}

func TestBlockingInsideGCGroupAllowed(t *testing.T) {
	// CD within a group is satisfied by simultaneous commit.
	g := New()
	g.Form(xid.DepGC, 1, 2)
	if err := g.Form(xid.DepCD, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.Form(xid.DepCD, 2, 1); err != nil {
		t.Fatal(err)
	}
}

func TestGCMergeClosingBlockingCycleRejected(t *testing.T) {
	// CD a→c and CD c→b exist (c blocks on a... direction check):
	// form(CD, c, a): a blocks on c. form(CD, b, c): c blocks on b.
	// Merging {a,b} by GC creates: merged blocks on c, c blocks on merged.
	g := New()
	g.Form(xid.DepCD, 3, 1) // 1 blocks on 3
	g.Form(xid.DepCD, 2, 3) // 3 blocks on 2
	if err := g.Form(xid.DepGC, 1, 2); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v, want ErrCycle (merge closes 1↔3 loop)", err)
	}
}

func TestBlockingEdgeThroughGCGroupRejected(t *testing.T) {
	// GC(1,2); 3 blocks on 1; forming "2 blocks on 3" closes a loop through
	// the super-node {1,2}.
	g := New()
	g.Form(xid.DepGC, 1, 2)
	g.Form(xid.DepCD, 1, 3) // 3 blocks on 1
	if err := g.Form(xid.DepCD, 3, 2); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
}

func TestRemoveNode(t *testing.T) {
	g := New()
	g.Form(xid.DepCD, 1, 2)
	g.Form(xid.DepAD, 2, 3)
	g.Form(xid.DepGC, 1, 4)
	g.RemoveNode(1)
	if len(g.Outgoing(2)) != 0 {
		t.Fatal("incoming edge to removed node survived")
	}
	if len(g.Outgoing(4)) != 0 {
		t.Fatal("GC edge to removed node survived")
	}
	// After removal the previously cyclic edge is legal.
	if err := g.Form(xid.DepCD, 2, 1); err != nil {
		t.Fatal(err)
	}
}

func TestDropEdge(t *testing.T) {
	g := New()
	g.Form(xid.DepCD, 1, 2) // 2 blocks on 1
	g.DropEdge(2, 1)
	if len(g.Outgoing(2)) != 0 {
		t.Fatal("edge not dropped")
	}
	if err := g.Form(xid.DepCD, 2, 1); err != nil {
		t.Fatal("drop did not unblock reverse edge")
	}
}

func TestMaskCombination(t *testing.T) {
	g := New()
	g.Form(xid.DepCD, 1, 2)
	g.Form(xid.DepAD, 1, 2)
	m := edgeTypes(g.Outgoing(2), 1)
	if !m.Has(xid.DepCD) || !m.Has(xid.DepAD) {
		t.Fatalf("mask = %v, want CD|AD", m)
	}
}

// TestQuickNoCommitDeadlock: after any sequence of Form calls (some
// rejected), the contracted blocking graph must remain acyclic — i.e. there
// is always a super-node with no outgoing blocking edge among those with
// edges (a topological "exit"), which is what lets the commit protocol make
// progress.
func TestQuickNoCommitDeadlock(t *testing.T) {
	f := func(ops []struct {
		T    uint8
		A, B uint8
	}) bool {
		g := New()
		for _, op := range ops {
			typ := []xid.DepType{xid.DepCD, xid.DepAD, xid.DepGC, xid.DepBD}[op.T%4]
			a := xid.TID(op.A%8) + 1
			b := xid.TID(op.B%8) + 1
			_ = g.Form(typ, a, b) // may reject; both outcomes fine
		}
		// Verify acyclicity of the contracted blocking graph by Kahn.
		g.mu.Lock()
		comp, adj := g.contractedGraph(xid.NilTID, xid.NilTID)
		g.mu.Unlock()
		_ = comp
		indeg := map[int]int{}
		for c := range adj {
			if _, ok := indeg[c]; !ok {
				indeg[c] = 0
			}
			for n := range adj[c] {
				indeg[n]++
			}
		}
		queue := []int{}
		for c, d := range indeg {
			if d == 0 {
				queue = append(queue, c)
			}
		}
		removed := 0
		for len(queue) > 0 {
			c := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			removed++
			for n := range adj[c] {
				indeg[n]--
				if indeg[n] == 0 {
					queue = append(queue, n)
				}
			}
		}
		return removed == len(indeg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
