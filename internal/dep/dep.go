// Package dep implements ASSET's transaction dependency graph (§4.1/§4.2).
// Nodes are transactions; an edge records a dependency formed with
// form_dependency. Internally edges point from the *dependent* transaction
// to the transaction it depends on:
//
//	form_dependency(CD, ti, tj)  ⇒  edge tj → ti (tj cannot commit before ti
//	                                terminates; if ti aborts, tj may commit)
//	form_dependency(AD, ti, tj)  ⇒  edge tj → ti (if ti aborts, tj must
//	                                abort; AD covers CD)
//	form_dependency(GC, ti, tj)  ⇒  symmetric edges (both commit or neither)
//	form_dependency(BD, ti, tj)  ⇒  edge tj → ti (extension: tj may not
//	                                begin until ti commits)
//
// The paper's commit algorithm blocks on outgoing edges, so a cycle of
// blocking (CD/AD/BD) edges would deadlock every commit on it; group-commit
// cycles, in contrast, are the mechanism itself. Form therefore performs
// the "check to prevent certain dependency cycles": it contracts GC
// components into super-nodes and rejects any blocking edge (or GC merge)
// that would close a cycle among super-nodes.
package dep

import (
	"errors"
	"sort"
	"sync"

	"repro/internal/xid"
)

// ErrCycle reports that forming the dependency would deadlock the commit
// protocol.
var ErrCycle = errors.New("dep: dependency would create a commit-blocking cycle")

// Mask is a set of dependency types between one ordered pair.
type Mask uint8

// Mask bits.
const (
	MCD Mask = 1 << iota
	MAD
	MGC
	MBD
	MBAD
	MEXC
)

// Has reports whether the mask contains the given dependency type.
func (m Mask) Has(t xid.DepType) bool { return m&maskOf(t) != 0 }

// Blocking reports whether the mask contains a type that makes the
// dependent wait for the supporter's progress (everything but GC and the
// non-waiting EXC). A cycle of blocking edges would deadlock.
func (m Mask) Blocking() bool { return m&(MCD|MAD|MBD|MBAD) != 0 }

// CommitBlocking reports whether the mask delays the dependent's *commit*
// until the supporter terminates (BD/BAD only gate begin).
func (m Mask) CommitBlocking() bool { return m&(MCD|MAD) != 0 }

func maskOf(t xid.DepType) Mask {
	switch t {
	case xid.DepCD:
		return MCD
	case xid.DepAD:
		return MAD
	case xid.DepGC:
		return MGC
	case xid.DepBD:
		return MBD
	case xid.DepBAD:
		return MBAD
	case xid.DepEXC:
		return MEXC
	}
	return 0
}

// Edge is one adjacency of a transaction in the graph.
type Edge struct {
	Other xid.TID
	Types Mask
}

// Graph is the dependency graph. All methods are safe for concurrent use.
type Graph struct {
	//asset:latch order=60
	mu  sync.Mutex
	out map[xid.TID]map[xid.TID]Mask // dependent -> supporter
	in  map[xid.TID]map[xid.TID]Mask // supporter -> dependent
}

// New returns an empty dependency graph.
func New() *Graph {
	return &Graph{
		out: make(map[xid.TID]map[xid.TID]Mask),
		in:  make(map[xid.TID]map[xid.TID]Mask),
	}
}

// Form records form_dependency(typ, ti, tj). It returns ErrCycle if the new
// dependency would deadlock the commit protocol, leaving the graph
// unchanged.
func (g *Graph) Form(typ xid.DepType, ti, tj xid.TID) error {
	if ti == tj || ti.IsNil() || tj.IsNil() {
		return nil // self- and null-dependencies are vacuous
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	switch typ {
	case xid.DepGC:
		if g.wouldCycleWithGC(ti, tj) {
			return ErrCycle
		}
		g.addEdge(ti, tj, MGC)
		g.addEdge(tj, ti, MGC)
	case xid.DepEXC:
		// Exclusion is symmetric and never blocks anyone's progress, so no
		// cycle check is needed.
		g.addEdge(ti, tj, MEXC)
		g.addEdge(tj, ti, MEXC)
	default:
		// Dependent tj blocks on supporter ti.
		if g.wouldCycleWithBlocking(tj, ti) {
			return ErrCycle
		}
		g.addEdge(tj, ti, maskOf(typ))
	}
	return nil
}

func (g *Graph) addEdge(from, to xid.TID, m Mask) {
	om := g.out[from]
	if om == nil {
		om = make(map[xid.TID]Mask)
		g.out[from] = om
	}
	om[to] |= m
	im := g.in[to]
	if im == nil {
		im = make(map[xid.TID]Mask)
		g.in[to] = im
	}
	im[from] |= m
}

// Outgoing returns the dependencies t has on other transactions
// ("dependencies emanating from t" in the commit algorithm).
func (g *Graph) Outgoing(t xid.TID) []Edge {
	g.mu.Lock()
	defer g.mu.Unlock()
	return edgesOf(g.out[t])
}

// Incoming returns the dependencies other transactions have on t
// ("dependencies incoming to t" in the abort algorithm).
func (g *Graph) Incoming(t xid.TID) []Edge {
	g.mu.Lock()
	defer g.mu.Unlock()
	return edgesOf(g.in[t])
}

func edgesOf(m map[xid.TID]Mask) []Edge {
	out := make([]Edge, 0, len(m))
	for other, mask := range m {
		out = append(out, Edge{Other: other, Types: mask})
	}
	return out
}

// GCComponent returns the transactions connected to t by GC edges,
// including t itself.
func (g *Graph) GCComponent(t xid.TID) []xid.TID {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.gcComponentLocked(t)
}

func (g *Graph) gcComponentLocked(t xid.TID) []xid.TID {
	seen := map[xid.TID]bool{t: true}
	stack := []xid.TID{t}
	comp := []xid.TID{t}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for other, mask := range g.out[cur] {
			if mask&MGC != 0 && !seen[other] {
				seen[other] = true
				stack = append(stack, other)
				comp = append(comp, other)
			}
		}
	}
	return comp
}

// GCClosure returns the union of the GC components of the given roots,
// deduplicated and sorted ascending. This is the atomic commit unit of a
// distributed prepare: a participant may not prepare half of a GC
// component, so the vote covers the closure of everything it was asked
// to prepare.
func (g *Graph) GCClosure(roots ...xid.TID) []xid.TID {
	g.mu.Lock()
	defer g.mu.Unlock()
	seen := make(map[xid.TID]bool, len(roots))
	var closure []xid.TID
	for _, r := range roots {
		for _, t := range g.gcComponentLocked(r) {
			if !seen[t] {
				seen[t] = true
				closure = append(closure, t)
			}
		}
	}
	sort.Slice(closure, func(i, j int) bool { return closure[i] < closure[j] })
	return closure
}

// RemoveNode deletes t and all its edges (commit step 5 / abort step 5).
func (g *Graph) RemoveNode(t xid.TID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for other := range g.out[t] {
		delete(g.in[other], t)
		if len(g.in[other]) == 0 {
			delete(g.in, other)
		}
	}
	delete(g.out, t)
	for other := range g.in[t] {
		delete(g.out[other], t)
		if len(g.out[other]) == 0 {
			delete(g.out, other)
		}
	}
	delete(g.in, t)
}

// DropEdge removes every dependency of dependent on supporter (the abort
// algorithm removes CD edges of dependents without aborting them).
func (g *Graph) DropEdge(dependent, supporter xid.TID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if m := g.out[dependent]; m != nil {
		delete(m, supporter)
		if len(m) == 0 {
			delete(g.out, dependent)
		}
	}
	if m := g.in[supporter]; m != nil {
		delete(m, dependent)
		if len(m) == 0 {
			delete(g.in, supporter)
		}
	}
}

// --- cycle prevention -------------------------------------------------
//
// GC components are contracted into super-nodes; blocking (CD/AD/BD) edges
// between distinct super-nodes form the contracted graph. A blocking edge
// inside one GC component is satisfied by the simultaneous group commit and
// never deadlocks, so intra-component edges are dropped.

// contractedGraph builds the super-node adjacency. extraA/extraB, when
// non-nil, are treated as already GC-merged (to test a prospective GC
// edge). Caller holds g.mu.
func (g *Graph) contractedGraph(extraA, extraB xid.TID) (comp map[xid.TID]int, adj map[int]map[int]bool) {
	// Collect nodes.
	nodes := make(map[xid.TID]bool)
	for t, m := range g.out {
		nodes[t] = true
		for o := range m {
			nodes[o] = true
		}
	}
	if !extraA.IsNil() {
		nodes[extraA] = true
		nodes[extraB] = true
	}
	// Union-find over GC edges.
	parent := make(map[xid.TID]xid.TID, len(nodes))
	var find func(t xid.TID) xid.TID
	find = func(t xid.TID) xid.TID {
		p, ok := parent[t]
		if !ok || p == t {
			parent[t] = t
			return t
		}
		r := find(p)
		parent[t] = r
		return r
	}
	union := func(a, b xid.TID) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for t, m := range g.out {
		for o, mask := range m {
			if mask&MGC != 0 {
				union(t, o)
			}
		}
	}
	if !extraA.IsNil() {
		union(extraA, extraB)
	}
	// Number the components and build blocking adjacency.
	comp = make(map[xid.TID]int, len(nodes))
	next := 0
	id := func(t xid.TID) int {
		r := find(t)
		if c, ok := comp[r]; ok {
			comp[t] = c
			return c
		}
		comp[r] = next
		comp[t] = next
		next++
		return comp[t]
	}
	adj = make(map[int]map[int]bool)
	for t := range nodes {
		id(t)
	}
	for t, m := range g.out {
		for o, mask := range m {
			if !mask.Blocking() {
				continue
			}
			ca, cb := id(t), id(o)
			if ca == cb {
				continue
			}
			if adj[ca] == nil {
				adj[ca] = make(map[int]bool)
			}
			adj[ca][cb] = true
		}
	}
	return comp, adj
}

func reach(adj map[int]map[int]bool, from, to int) bool {
	if from == to {
		return true
	}
	seen := map[int]bool{from: true}
	stack := []int{from}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for n := range adj[c] {
			if n == to {
				return true
			}
			if !seen[n] {
				seen[n] = true
				stack = append(stack, n)
			}
		}
	}
	return false
}

// wouldCycleWithBlocking reports whether adding the blocking edge
// dependent → supporter closes a cycle in the contracted graph. Caller
// holds g.mu.
func (g *Graph) wouldCycleWithBlocking(dependent, supporter xid.TID) bool {
	comp, adj := g.contractedGraph(xid.NilTID, xid.NilTID)
	cs, okS := comp[supporter]
	cd, okD := comp[dependent]
	if !okS || !okD {
		return false // an isolated endpoint cannot be on a path back
	}
	if cd == cs {
		return false // intra-component: satisfied by group commit
	}
	return reach(adj, cs, cd)
}

// wouldCycleWithGC reports whether merging a's and b's GC components would
// put the merged super-node on a blocking cycle. Caller holds g.mu.
func (g *Graph) wouldCycleWithGC(a, b xid.TID) bool {
	comp, adj := g.contractedGraph(a, b)
	merged := comp[a]
	for n := range adj[merged] {
		if reach(adj, n, merged) {
			return true
		}
	}
	return false
}
