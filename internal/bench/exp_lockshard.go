package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/lock"
	"repro/internal/waitgraph"
	"repro/internal/workload"
	"repro/internal/xid"
)

func init() {
	register(Experiment{
		ID:     "LOCK",
		Title:  "Sharded lock-table contention (shards × workers × GOMAXPROCS × distribution)",
		Anchor: "§4.1 OD-chain latching",
		Run:    runLockShard,
	})
}

// LockPoint is one measured cell of the lock-contention sweep; the slice of
// points is what assetbench -baseline serializes into BENCH_baseline.json.
type LockPoint struct {
	Dist        string  `json:"dist"`    // "disjoint" (worker-private keys) | "hotspot" (8 shared keys)
	Shards      int     `json:"shards"`  // 1 = the single-latch (pre-sharding) table
	Workers     int     `json:"workers"` // concurrent closed-loop workers
	Procs       int     `json:"gomaxprocs"`
	LocksPerSec float64 `json:"locks_per_sec"`
	P99Micros   float64 `json:"p99_us"`
}

// LockContention runs the multi-worker contention sweep over shard counts,
// worker counts, GOMAXPROCS settings, and two key distributions:
//
//   - disjoint: every worker locks (write mode) keys private to it, so no
//     two requests ever conflict logically — throughput is bounded purely
//     by lock-table infrastructure, which is exactly what sharding targets.
//     With Shards=1 every grant serializes on one latch; with many shards
//     workers proceed independently.
//   - hotspot: every worker read-locks the same 8 keys. Read locks are
//     mutually compatible, so again no logical blocking — but all traffic
//     lands on 8 ODs, bounding the gain sharding can deliver (at most 8
//     shards' worth of spread).
//
// Transactions release in batches of 16 grants so the (deliberately
// global) waits-for-graph teardown in ReleaseAll does not dominate the
// measurement.
func LockContention(quick bool) []LockPoint {
	dur := pick(quick, 30*time.Millisecond, 250*time.Millisecond)
	shardCounts := pick(quick, []int{1, 64}, []int{1, 4, 16, 64})
	workerCounts := pick(quick, []int{1, 8}, []int{1, 2, 4, 8, 16})
	procsList := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		if n > 2 {
			procsList = append(procsList, n/2)
		}
		procsList = append(procsList, n)
	} else {
		// Single-core host: still exercise an oversubscribed scheduler so
		// latch backoff paths are measured, even without real parallelism.
		procsList = append(procsList, 2)
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var out []LockPoint
	for _, procs := range procsList {
		runtime.GOMAXPROCS(procs)
		for _, dist := range []string{"disjoint", "hotspot"} {
			for _, shards := range shardCounts {
				for _, workers := range workerCounts {
					lm := lock.New(waitgraph.New(), lock.Options{EagerClosure: true, Shards: shards})
					res := workload.RunClosed(workers, dur, func(w, i int) error {
						tid := xid.TID(uint64(w)*1e9 + uint64(i/16) + 1)
						var oid xid.OID
						var mode xid.OpSet
						if dist == "disjoint" {
							oid = xid.OID(uint64(w)*1_000_000 + uint64(i%512) + 1)
							mode = xid.OpWrite
						} else {
							oid = xid.OID(uint64(i+w)%8 + 1)
							mode = xid.OpRead
						}
						err := lm.Lock(tid, oid, mode)
						if i%16 == 15 {
							lm.ReleaseAll(tid)
						}
						return err
					})
					out = append(out, LockPoint{
						Dist:        dist,
						Shards:      lm.NumShards(),
						Workers:     workers,
						Procs:       procs,
						LocksPerSec: res.Throughput(),
						P99Micros:   float64(res.Lat.Percentile(0.99)) / float64(time.Microsecond),
					})
				}
			}
		}
	}
	return out
}

func runLockShard(w io.Writer, quick bool) error {
	points := LockContention(quick)
	var t Table
	t.Headers = []string{"procs", "dist", "shards", "workers", "locks/s", "p99", "vs 1-shard"}
	// Index single-shard throughput for the speedup column.
	base := make(map[[3]any]float64)
	for _, p := range points {
		if p.Shards == 1 {
			base[[3]any{p.Procs, p.Dist, p.Workers}] = p.LocksPerSec
		}
	}
	for _, p := range points {
		speedup := "-"
		if b := base[[3]any{p.Procs, p.Dist, p.Workers}]; b > 0 && p.Shards > 1 {
			speedup = fmt.Sprintf("%.2fx", p.LocksPerSec/b)
		}
		t.Add(p.Procs, p.Dist, p.Shards, p.Workers,
			fmt.Sprintf("%.0f", p.LocksPerSec),
			time.Duration(p.P99Micros*float64(time.Microsecond)).Round(time.Microsecond/10),
			speedup)
	}
	t.Fprint(w)
	fmt.Fprintln(w, "  (disjoint: worker-private write locks, pure infrastructure scaling; hotspot: 8 shared read-locked keys)")
	return nil
}
