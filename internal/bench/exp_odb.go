package bench

import (
	"fmt"
	"io"
	"time"

	asset "repro"
	"repro/internal/workload"
	"repro/models"
)

func init() {
	register(Experiment{
		ID:     "E9",
		Title:  "Cursor stability vs repeatable read: writer throughput under a scanner",
		Anchor: "§3.2.2",
		Run:    runE9,
	})
	register(Experiment{
		ID:     "E14",
		Title:  "Commutative increments (OpIncr) vs read-modify-write on a hot counter",
		Anchor: "§5 future work",
		Run:    runE14,
	})
}

// runE9: a scanner walks all records with think time per record; writers
// update random records. Under repeatable read the scanner's read locks
// accumulate and block writers until the scan commits; under cursor
// stability each record is released (permitted for writing) as the cursor
// moves past it.
func runE9(w io.Writer, quick bool) error {
	var t Table
	t.Headers = []string{"mode", "records", "writers", "writer txn/s", "writer p99"}
	records := pick(quick, 32, 128)
	think := pick(quick, 100*time.Microsecond, 500*time.Microsecond)
	dur := pick(quick, 80*time.Millisecond, 600*time.Millisecond)
	const writers = 4

	for _, mode := range []models.CursorMode{models.RepeatableRead, models.CursorStability} {
		m, err := memManager()
		if err != nil {
			return err
		}
		oids, err := seedObjects(m, records, 32)
		if err != nil {
			m.Close()
			return err
		}
		stop := make(chan struct{})
		scannerDone := make(chan struct{})
		//asset:goroutine joined-by=channel
		go func() {
			defer close(scannerDone)
			for {
				select {
				case <-stop:
					return
				default:
				}
				models.Atomic(m, func(tx *asset.Tx) error {
					return models.Scan(tx, mode, oids, func(oid asset.OID, data []byte) error {
						time.Sleep(think)
						return nil
					})
				})
			}
		}()
		gens := make([]workload.Generator, writers)
		for i := range gens {
			gens[i] = workload.NewUniform(int64(i+1), uint64(records))
		}
		res := workload.RunClosed(writers, dur, func(wkr, i int) error {
			oid := oids[gens[wkr].Next()]
			return models.Atomic(m, func(tx *asset.Tx) error {
				return tx.Write(oid, []byte("written"))
			})
		})
		close(stop)
		<-scannerDone
		name := "repeatable-read"
		if mode == models.CursorStability {
			name = "cursor-stability"
		}
		t.Add(name, records, writers, fmt.Sprintf("%.0f", res.Throughput()), res.Lat.Percentile(0.99))
		m.Close()
	}
	t.Fprint(w)
	fmt.Fprintln(w, "  (cursor stability's post-read write permits let writers proceed mid-scan)")
	return nil
}

func runE14(w io.Writer, quick bool) error {
	var t Table
	t.Headers = []string{"workers", "OpIncr (commuting) txn/s", "RMW write-lock txn/s", "speedup"}
	dur := pick(quick, 60*time.Millisecond, 400*time.Millisecond)
	for _, workers := range pick(quick, []int{1, 8}, []int{1, 4, 16, 32}) {
		m, err := memManager()
		if err != nil {
			return err
		}
		ctrs, err := seedCounters(m, 1)
		if err != nil {
			m.Close()
			return err
		}
		hot := ctrs[0]

		incr := workload.RunClosed(workers, dur, func(wkr, i int) error {
			return models.Atomic(m, func(tx *asset.Tx) error { return tx.Add(hot, 1) })
		})
		rmw := workload.RunClosed(workers, dur, func(wkr, i int) error {
			return models.AtomicRetry(m, 10, func(tx *asset.Tx) error {
				return tx.Update(hot, func(b []byte) []byte {
					v := uint64(0)
					for j := 7; j >= 0; j-- {
						v = v<<8 | uint64(b[j])
					}
					v++
					for j := 0; j < 8; j++ {
						b[j] = byte(v >> (8 * j))
					}
					return b
				})
			})
		})
		t.Add(workers,
			fmt.Sprintf("%.0f", incr.Throughput()),
			fmt.Sprintf("%.0f", rmw.Throughput()),
			fmt.Sprintf("%.2fx", incr.Throughput()/rmw.Throughput()))
		m.Close()
	}
	t.Fprint(w)
	fmt.Fprintln(w, "  (increment locks commute: no blocking on the hot counter; RMW serializes on the write lock)")
	return nil
}
