// Package bench is the experiment harness that regenerates every
// experiment table listed in DESIGN.md (E1–E14 for the paper's models and
// implementation section, A1–A4 for design-choice ablations). Each
// experiment prints a table; cmd/assetbench drives them from the command
// line, and bench_test.go exposes them as testing.B benchmarks.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Experiment is one harness entry.
type Experiment struct {
	ID     string
	Title  string
	Anchor string // the paper section / figure it reproduces
	Run    func(w io.Writer, quick bool) error
}

var registry = map[string]Experiment{}

// register adds an experiment; experiments self-register from init.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("bench: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every experiment sorted by ID: E* experiments first, A*
// ablations second, then named experiments (LOCK, RESIL, ...)
// alphabetically.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	group := func(id string) int {
		var n int
		if _, err := fmt.Sscanf(id[1:], "%d", &n); err == nil {
			if id[0] == 'E' {
				return 0
			}
			if id[0] == 'A' {
				return 1
			}
		}
		return 2
	}
	sort.Slice(out, func(i, j int) bool {
		gi, gj := group(out[i].ID), group(out[j].ID)
		if gi != gj {
			return gi < gj
		}
		if gi == 2 {
			return out[i].ID < out[j].ID
		}
		// numeric order within the E/A groups
		var ni, nj int
		fmt.Sscanf(out[i].ID[1:], "%d", &ni)
		fmt.Sscanf(out[j].ID[1:], "%d", &nj)
		return ni < nj
	})
	return out
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	e, ok := registry[strings.ToUpper(id)]
	return e, ok
}

// Table accumulates rows and prints them column-aligned.
type Table struct {
	Headers []string
	Rows    [][]string
}

// Add appends a row, stringifying each cell.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond / 10).String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint writes the aligned table.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Headers)
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
}

// pick returns a when quick mode is on, b otherwise.
func pick[T any](quick bool, a, b T) T {
	if quick {
		return a
	}
	return b
}
