package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	asset "repro"
	"repro/internal/wal"
	"repro/internal/workload"
	"repro/models"
)

func init() {
	register(Experiment{
		ID:     "HOTKEY",
		Title:  "Zipf hot-key counters: exclusive RMW vs bounded escrow increments",
		Anchor: "§5 commutativity",
		Run:    runHotkey,
	})
}

// HotkeyPoint is one measured cell of the hot-key sweep; the slice of
// points is what assetbench -hotkey-baseline serializes into
// BENCH_hotkey_baseline.json.
type HotkeyPoint struct {
	Mode       string  `json:"mode"` // "exclusive" (write-lock RMW) | "escrow" (bounded Add)
	Counters   int     `json:"counters"`
	Workers    int     `json:"workers"`
	TxnsPerSec float64 `json:"txns_per_sec"`
	P99Micros  float64 `json:"p99_us"`
	Errors     uint64  `json:"errors"`
}

// hotkeyInit is the seeded value of every counter; escrow bounds are
// [0, 2*hotkeyInit], wide enough that the ±1 workload never trips
// ErrEscrow — the sweep measures lock-mode commutativity, not bound
// pressure.
const hotkeyInit = uint64(1) << 20

// HotKey runs the hot-key counter sweep: every transaction adjusts
// keysPerTxn distinct counters drawn from a Zipf distribution (so one
// counter absorbs most of the traffic), alternating +1/-1 deltas, then
// spends `think` doing the rest of its (simulated) work before
// committing — strict two-phase locking holds the counter grants across
// that work.
//
//   - exclusive: each adjustment is a read-modify-write under a write
//     lock, the pre-escrow idiom. Whichever worker holds the hot
//     counter's write lock blocks every other transaction that needs it
//     for its entire think time, so the hot key serializes the workload.
//   - escrow: each adjustment is tx.Add on a counter with declared
//     escrow bounds. Increment/decrement grants commute, so every
//     worker's think time overlaps through the hot counter.
//
// Keys are visited in sorted order so the exclusive arm cannot
// deadlock; its retry budget exists only for robustness.
func HotKey(quick bool) []HotkeyPoint {
	dur := pick(quick, 80*time.Millisecond, 500*time.Millisecond)
	think := pick(quick, 100*time.Microsecond, 200*time.Microsecond)
	counters := pick(quick, 16, 64)
	workerCounts := pick(quick, []int{1, 8}, []int{1, 4, 8, 16})
	const keysPerTxn = 2
	const skew = 1.5

	var out []HotkeyPoint
	for _, workers := range workerCounts {
		for _, mode := range []string{"exclusive", "escrow"} {
			m, err := memManager()
			if err != nil {
				return out
			}
			oids, err := seedHotCounters(m, counters, mode == "escrow")
			if err != nil {
				m.Close()
				return out
			}
			gens := make([]workload.Generator, workers)
			for i := range gens {
				gens[i] = workload.NewZipf(int64(i+1), uint64(counters), skew)
			}
			res := workload.RunClosed(workers, dur, func(wkr, i int) error {
				keys := pickDistinct(gens[wkr], keysPerTxn, counters)
				delta := int64(1)
				if (wkr+i)%2 == 1 {
					delta = -1
				}
				if mode == "escrow" {
					return models.Atomic(m, func(tx *asset.Tx) error {
						for _, k := range keys {
							if err := tx.Add(oids[k], delta); err != nil {
								return err
							}
						}
						time.Sleep(think)
						return nil
					})
				}
				return models.AtomicRetry(m, 10, func(tx *asset.Tx) error {
					for _, k := range keys {
						err := tx.Update(oids[k], func(b []byte) []byte {
							return wal.EncodeCounter(wal.DecodeCounter(b) + uint64(delta))
						})
						if err != nil {
							return err
						}
					}
					time.Sleep(think)
					return nil
				})
			})
			m.Close()
			out = append(out, HotkeyPoint{
				Mode:       mode,
				Counters:   counters,
				Workers:    workers,
				TxnsPerSec: res.Throughput(),
				P99Micros:  float64(res.Lat.Percentile(0.99)) / float64(time.Microsecond),
				Errors:     res.Errors,
			})
		}
	}
	return out
}

// seedHotCounters creates n counters at hotkeyInit and, for the escrow
// arm, declares bounds [0, 2*hotkeyInit] on each.
func seedHotCounters(m *asset.Manager, n int, escrow bool) ([]asset.OID, error) {
	oids := make([]asset.OID, 0, n)
	err := models.Atomic(m, func(tx *asset.Tx) error {
		for i := 0; i < n; i++ {
			oid, err := tx.Create(wal.EncodeCounter(hotkeyInit))
			if err != nil {
				return err
			}
			if escrow {
				if err := tx.DeclareEscrow(oid, 0, 2*hotkeyInit); err != nil {
					return err
				}
			}
			oids = append(oids, oid)
		}
		return nil
	})
	return oids, err
}

// pickDistinct draws k distinct keys from gen (range [0,n)) and returns
// them sorted ascending, the deadlock-free visit order.
func pickDistinct(gen workload.Generator, k, n int) []int {
	if k > n {
		k = n
	}
	keys := make([]int, 0, k)
draw:
	for len(keys) < k {
		c := int(gen.Next()) % n
		for _, have := range keys {
			if have == c {
				continue draw
			}
		}
		keys = append(keys, c)
	}
	sort.Ints(keys)
	return keys
}

func runHotkey(w io.Writer, quick bool) error {
	points := HotKey(quick)
	var t Table
	t.Headers = []string{"workers", "mode", "txn/s", "p99", "errs", "vs exclusive"}
	base := make(map[int]float64)
	for _, p := range points {
		if p.Mode == "exclusive" {
			base[p.Workers] = p.TxnsPerSec
		}
	}
	for _, p := range points {
		speedup := "-"
		if b := base[p.Workers]; b > 0 && p.Mode == "escrow" {
			speedup = fmt.Sprintf("%.2fx", p.TxnsPerSec/b)
		}
		t.Add(p.Workers, p.Mode,
			fmt.Sprintf("%.0f", p.TxnsPerSec),
			time.Duration(p.P99Micros*float64(time.Microsecond)).Round(time.Microsecond/10),
			p.Errors, speedup)
	}
	t.Fprint(w)
	fmt.Fprintln(w, "  (2 Zipf-drawn counters per txn + think time under 2PL; exclusive serializes on the hot key's write lock, escrow grants commute)")
	return nil
}
