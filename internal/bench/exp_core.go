package bench

import (
	"fmt"
	"io"
	"time"

	asset "repro"
	"repro/internal/wal"
	"repro/internal/workload"
	"repro/models"
)

func memManager() (*asset.Manager, error) {
	return asset.Open(asset.Config{ReapTerminated: true})
}

// seedObjects creates n committed objects of the given size and returns
// their oids.
func seedObjects(m *asset.Manager, n, size int) ([]asset.OID, error) {
	oids := make([]asset.OID, 0, n)
	err := models.Atomic(m, func(tx *asset.Tx) error {
		data := make([]byte, size)
		for i := 0; i < n; i++ {
			oid, err := tx.Create(data)
			if err != nil {
				return err
			}
			oids = append(oids, oid)
		}
		return nil
	})
	return oids, err
}

func seedCounters(m *asset.Manager, n int) ([]asset.OID, error) {
	oids := make([]asset.OID, 0, n)
	err := models.Atomic(m, func(tx *asset.Tx) error {
		for i := 0; i < n; i++ {
			oid, err := tx.Create(wal.EncodeCounter(0))
			if err != nil {
				return err
			}
			oids = append(oids, oid)
		}
		return nil
	})
	return oids, err
}

func init() {
	register(Experiment{
		ID:     "E1",
		Title:  "Basic primitive latency (empty transactions)",
		Anchor: "§2.1",
		Run:    runE1,
	})
	register(Experiment{
		ID:     "E6",
		Title:  "Group commit: log forces amortized over group size",
		Anchor: "§3.1.2 / §4.2 commit",
		Run:    runE6,
	})
	register(Experiment{
		ID:     "E7",
		Title:  "Delegation cost vs delegated set size",
		Anchor: "§3.1.5 split/join",
		Run:    runE7,
	})
}

func runE1(w io.Writer, quick bool) error {
	m, err := memManager()
	if err != nil {
		return err
	}
	defer m.Close()
	iters := pick(quick, 2_000, 50_000)
	noop := func(tx *asset.Tx) error { return nil }

	measure := func(fn func() error) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := fn(); err != nil {
				return 0, err
			}
		}
		return time.Duration(int64(time.Since(start)) / int64(iters)), nil
	}

	var t Table
	t.Headers = []string{"primitive sequence", "latency/txn"}

	d, err := measure(func() error {
		t, err := m.Initiate(noop)
		if err != nil {
			return err
		}
		if err := m.Begin(t); err != nil {
			return err
		}
		return m.Commit(t)
	})
	if err != nil {
		return err
	}
	t.Add("initiate; begin; commit", d)

	d, err = measure(func() error {
		t, err := m.Initiate(noop)
		if err != nil {
			return err
		}
		if err := m.Begin(t); err != nil {
			return err
		}
		if err := m.Wait(t); err != nil {
			return err
		}
		return m.Commit(t)
	})
	if err != nil {
		return err
	}
	t.Add("initiate; begin; wait; commit", d)

	d, err = measure(func() error {
		t, err := m.Initiate(noop)
		if err != nil {
			return err
		}
		if err := m.Begin(t); err != nil {
			return err
		}
		if err := m.Wait(t); err != nil {
			return err
		}
		return m.Abort(t)
	})
	if err != nil {
		return err
	}
	t.Add("initiate; begin; wait; abort", d)

	d, err = measure(func() error {
		t, err := m.Initiate(noop)
		if err != nil {
			return err
		}
		return m.Abort(t) // abort before begin
	})
	if err != nil {
		return err
	}
	t.Add("initiate; abort", d)

	t.Fprint(w)
	return nil
}

func runE6(w io.Writer, quick bool) error {
	var t Table
	t.Headers = []string{"group size", "txns", "commit records", "forces/txn", "txn/s"}
	total := pick(quick, 256, 4096)
	for _, size := range []int{1, 2, 4, 8, 16, 32} {
		m, err := memManager()
		if err != nil {
			return err
		}
		groups := total / size
		fns := make([]asset.TxnFunc, size)
		for i := range fns {
			fns[i] = func(tx *asset.Tx) error { return nil }
		}
		start := time.Now()
		for g := 0; g < groups; g++ {
			if err := models.Distributed(m, fns...); err != nil {
				m.Close()
				return err
			}
		}
		wall := time.Since(start)
		st := m.Stats()
		t.Add(size, st.Commits, st.LogForces,
			fmt.Sprintf("%.3f", float64(st.LogForces)/float64(st.Commits)),
			fmt.Sprintf("%.0f", float64(st.Commits)/wall.Seconds()))
		m.Close()
	}
	t.Fprint(w)
	fmt.Fprintln(w, "  (one commit record and one log force cover a whole GC group)")

	// Part 2: classic group commit — independent concurrent transactions
	// share a physical force via the commit coalescer.
	var t2 Table
	t2.Headers = []string{"workers", "commits", "flush requests", "physical forces", "forces/txn"}
	dur := pick(quick, 60*time.Millisecond, 300*time.Millisecond)
	for _, workers := range pick(quick, []int{1, 8}, []int{1, 4, 16, 64}) {
		m, err := asset.Open(asset.Config{
			ReapTerminated: true,
			BatchedCommits: true,
			CommitWindow:   500 * time.Microsecond,
		})
		if err != nil {
			return err
		}
		res := workload.RunClosed(workers, dur, func(_, _ int) error {
			return models.Atomic(m, func(tx *asset.Tx) error { return nil })
		})
		st := m.Stats()
		phys := m.PhysicalForces()
		t2.Add(workers, st.Commits, st.LogForces, phys,
			fmt.Sprintf("%.3f", float64(phys)/float64(st.Commits)))
		m.Close()
		_ = res
	}
	t2.Fprint(w)
	fmt.Fprintln(w, "  (classic group commit: concurrent committers coalesce into shared physical forces)")
	return nil
}

func runE7(w io.Writer, quick bool) error {
	var t Table
	t.Headers = []string{"|ob_set|", "delegate(ti,tj,obs)", "delegate(ti,tj) all", "per object"}
	sizes := pick(quick, []int{10, 100, 1000}, []int{10, 100, 1000, 10000})
	for _, n := range sizes {
		m, err := memManager()
		if err != nil {
			return err
		}
		oids, err := seedObjects(m, n, 32)
		if err != nil {
			m.Close()
			return err
		}
		prep := func() (asset.TID, asset.TID, error) {
			worker, err := m.Initiate(func(tx *asset.Tx) error {
				for _, oid := range oids {
					if err := tx.Write(oid, []byte("w")); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return 0, 0, err
			}
			holder, err := m.Initiate(func(tx *asset.Tx) error { return nil })
			if err != nil {
				return 0, 0, err
			}
			if err := m.Begin(worker, holder); err != nil {
				return 0, 0, err
			}
			if err := m.Wait(worker); err != nil {
				return 0, 0, err
			}
			return worker, holder, nil
		}

		worker, holder, err := prep()
		if err != nil {
			m.Close()
			return err
		}
		start := time.Now()
		if err := m.Delegate(worker, holder, oids...); err != nil {
			m.Close()
			return err
		}
		dExplicit := time.Since(start)
		m.Commit(holder)
		m.Commit(worker)

		worker, holder, err = prep()
		if err != nil {
			m.Close()
			return err
		}
		start = time.Now()
		if err := m.Delegate(worker, holder); err != nil {
			m.Close()
			return err
		}
		dAll := time.Since(start)
		m.Commit(holder)
		m.Commit(worker)

		t.Add(n, dExplicit, dAll, time.Duration(int64(dAll)/int64(n)))
		m.Close()
	}
	t.Fprint(w)
	return nil
}
