package bench

import (
	"context"
	"fmt"
	"io"
	"net"
	"time"

	asset "repro"
	"repro/client"
	"repro/internal/faultnet"
	"repro/internal/server"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:     "RPC",
		Title:  "Remote transaction path: local vs networked commit, goodput under injected faults",
		Anchor: "§5 client/server architecture (assetd sessions)",
		Run:    runRPC,
	})
}

// RPCPoint is one measured cell of the remote-path sweep; the slice of
// points is what assetbench -rpc-baseline serializes into
// BENCH_rpc_baseline.json.
type RPCPoint struct {
	Arm           string  `json:"arm"` // local | remote | remote+chaos
	Workers       int     `json:"workers"`
	GoodputPerSec float64 `json:"goodput_per_sec"`
	P50Micros     float64 `json:"p50_us"`
	P99Millis     float64 `json:"p99_ms"`
	Errors        uint64  `json:"errors"` // Run engagements that exhausted retries
	Faults        int     `json:"faults"` // chaos arm: script faults actually fired
}

// rpcFaultEvery is the chaos arm's injection rate: roughly one scripted
// fault (drop/dup/delay/reorder/disconnect/short partition) per this
// many wire messages. The fabric moves hundreds of thousands of messages
// a second, so even this sparse a script fires dozens of faults per
// sweep cell; denser scripts (the torture tests run 1-in-30) saturate
// the client with detect-and-recover stalls and measure recovery
// latency rather than goodput under plausible flakiness.
const rpcFaultEvery = 2000

// RPCSweep measures what the wire costs. Each worker runs closed-loop
// single-write transactions against its own object (no lock conflicts, so
// the protocol — not the lock table — is what's being measured) through
// three arms: "local" calls the embedded engine directly and is the
// floor; "remote" runs the same workload through a leased client session
// over an in-process faultnet fabric with no faults, isolating pure
// framing/dispatch overhead; "remote+chaos" turns on a seeded random
// fault script and reports the goodput the retransmit + retry machinery
// salvages. Latencies are whole Run engagements, so chaos-arm p99 shows
// retransmit and backoff stalls, not just smooth-path RPC cost.
func RPCSweep(quick bool) []RPCPoint {
	dur := pick(quick, 60*time.Millisecond, 400*time.Millisecond)
	workerCounts := pick(quick, []int{1, 4}, []int{1, 4, 16})

	var out []RPCPoint
	for _, workers := range workerCounts {
		for _, arm := range []string{"local", "remote", "remote+chaos"} {
			out = append(out, rpcCell(arm, workers, dur))
		}
	}
	return out
}

func rpcCell(arm string, workers int, dur time.Duration) RPCPoint {
	m, err := asset.Open(asset.Config{ReapTerminated: true})
	if err != nil {
		panic(err) // in-memory open cannot fail
	}
	defer m.Close()
	objs, err := seedObjects(m, workers, 64)
	if err != nil {
		panic(err)
	}
	payload := []byte("rpc-bench-payload")
	// Generous attempt budget with short backoff: the chaos arm is
	// measuring how much goodput survives faults, so an engagement should
	// fail only when the script is genuinely relentless.
	opts := asset.RunOptions{MaxAttempts: 12, BaseBackoff: 200 * time.Microsecond, MaxBackoff: 5 * time.Millisecond}

	var res workload.Result
	var faults int
	switch arm {
	case "local":
		res = workload.RunClosed(workers, dur, func(w, i int) error {
			return asset.Run(context.Background(), m, opts, func(tx *asset.Tx) error {
				return tx.Write(objs[w], payload)
			})
		})

	default: // remote, remote+chaos
		fabric := faultnet.New()
		defer fabric.Close()
		lis, err := fabric.Listen("assetd")
		if err != nil {
			panic(err)
		}
		srv := server.Serve(m, lis, server.Config{LeaseTTL: 2 * time.Second})
		defer srv.Close()

		cli, err := client.Dial(context.Background(), client.Options{
			Dial: func(ctx context.Context) (net.Conn, error) {
				return fabric.DialContext(ctx, "assetd")
			},
			RetransmitEvery: 3 * time.Millisecond,
			// Aggressive probing: with the default lease-derived cadence a
			// one-way loss during a handshake or probe stalls the session
			// for ~a second, and the chaos arm would measure detection
			// latency instead of retry goodput.
			HeartbeatEvery:   20 * time.Millisecond,
			ProbeTimeout:     25 * time.Millisecond,
			HandshakeTimeout: 30 * time.Millisecond,
		})
		if err != nil {
			panic(err)
		}
		defer cli.Close()

		var script *faultnet.Script
		if arm == "remote+chaos" {
			// Seeded script: the same fault sequence every run, so two
			// baselines differ by code, not dice.
			script = faultnet.RandomScript(1, rpcFaultEvery)
			fabric.SetScript(script)
		}
		res = workload.RunClosed(workers, dur, func(w, i int) error {
			return cli.Run(context.Background(), opts, func(ctx context.Context, tx *client.Tx) error {
				return tx.Write(ctx, objs[w], payload)
			})
		})
		// Heal before teardown so Close handshakes don't fight the script.
		fabric.SetScript(nil)
		faults = script.Fired()
	}

	goodput := 0.0
	if res.Wall > 0 {
		goodput = float64(res.Ops-res.Errors) / res.Wall.Seconds()
	}
	return RPCPoint{
		Arm:           arm,
		Workers:       workers,
		GoodputPerSec: goodput,
		P50Micros:     float64(res.Lat.Percentile(0.50)) / float64(time.Microsecond),
		P99Millis:     float64(res.Lat.Percentile(0.99)) / float64(time.Millisecond),
		Errors:        res.Errors,
		Faults:        faults,
	}
}

func runRPC(w io.Writer, quick bool) error {
	points := RPCSweep(quick)
	var t Table
	t.Headers = []string{"arm", "workers", "goodput/s", "p50", "p99", "errs", "faults", "vs local"}
	base := make(map[int]float64)
	for _, p := range points {
		if p.Arm == "local" {
			base[p.Workers] = p.GoodputPerSec
		}
	}
	for _, p := range points {
		vs := "-"
		if p.Arm != "local" {
			if b := base[p.Workers]; b > 0 {
				vs = fmt.Sprintf("%.2fx", p.GoodputPerSec/b)
			}
		}
		t.Add(p.Arm, p.Workers,
			fmt.Sprintf("%.0f", p.GoodputPerSec),
			time.Duration(p.P50Micros*float64(time.Microsecond)).Round(time.Microsecond),
			time.Duration(p.P99Millis*float64(time.Millisecond)).Round(10*time.Microsecond),
			p.Errors, p.Faults, vs)
	}
	t.Fprint(w)
	fmt.Fprintf(w, "  (single-write txns, one object per worker; chaos arm injects ~1 fault per %d wire messages)\n", rpcFaultEvery)
	return nil
}
