package bench

import (
	"bytes"
	"io"
	"sort"
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every registered experiment in quick mode
// and sanity-checks that each prints a non-empty table. This is the
// harness's own integration test; full runs happen via cmd/assetbench.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still take seconds")
	}
	exps := All()
	if len(exps) < 16 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	for _, e := range exps {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, true); err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			out := buf.String()
			if !strings.Contains(out, "---") && !strings.Contains(out, "--") {
				t.Fatalf("%s produced no table:\n%s", e.ID, out)
			}
			if len(strings.Split(strings.TrimSpace(out), "\n")) < 3 {
				t.Fatalf("%s table too small:\n%s", e.ID, out)
			}
		})
	}
}

func TestRegistryOrderAndLookup(t *testing.T) {
	exps := All()
	// E* must precede A*, both numerically ordered; named experiments
	// (LOCK, RESIL, ...) come last, alphabetically.
	const (
		groupE = iota
		groupA
		groupNamed
	)
	group := func(id string) int {
		if len(id) > 1 && id[1] >= '0' && id[1] <= '9' {
			switch id[0] {
			case 'E':
				return groupE
			case 'A':
				return groupA
			}
		}
		return groupNamed
	}
	lastGroup := groupE
	lastE, lastA := 0, 0
	lastName := ""
	for _, e := range exps {
		g := group(e.ID)
		if g < lastGroup {
			t.Fatalf("group order broken at %v", e.ID)
		}
		lastGroup = g
		var n int
		switch g {
		case groupE:
			if _, err := parseNum(e.ID, &n); err != nil {
				t.Fatal(err)
			}
			if n <= lastE {
				t.Fatalf("E order broken at %s", e.ID)
			}
			lastE = n
		case groupA:
			if _, err := parseNum(e.ID, &n); err != nil {
				t.Fatal(err)
			}
			if n <= lastA {
				t.Fatalf("A order broken at %s", e.ID)
			}
			lastA = n
		default:
			if e.ID <= lastName {
				t.Fatalf("named order broken at %s", e.ID)
			}
			lastName = e.ID
		}
	}
	if _, ok := Get("e1"); !ok {
		t.Fatal("case-insensitive Get failed")
	}
	if _, ok := Get("E999"); ok {
		t.Fatal("Get of unknown experiment succeeded")
	}
}

// TestRegistryOrderWithNewNamedExperiment registers a fresh named
// experiment and checks All() keeps the three-group order (E* numeric, A*
// numeric, named alphabetical) with the newcomer slotted into the named
// group — the contract a new registration must not silently break.
func TestRegistryOrderWithNewNamedExperiment(t *testing.T) {
	for _, id := range []string{"AAANEW", "ZZZNEW", "MIDNEW"} {
		register(Experiment{ID: id, Title: "ordering probe " + id,
			Run: func(io.Writer, bool) error { return nil }})
	}
	t.Cleanup(func() {
		delete(registry, "AAANEW")
		delete(registry, "ZZZNEW")
		delete(registry, "MIDNEW")
	})

	exps := All()
	seen := map[string]bool{}
	boundary := 0 // index where the named group starts
	for i, e := range exps {
		seen[e.ID] = true
		numeric := len(e.ID) > 1 && e.ID[1] >= '0' && e.ID[1] <= '9' &&
			(e.ID[0] == 'E' || e.ID[0] == 'A')
		if numeric {
			if boundary != 0 {
				t.Fatalf("numeric experiment %s after the named group began", e.ID)
			}
		} else if boundary == 0 {
			boundary = i
		}
	}
	for _, id := range []string{"AAANEW", "ZZZNEW", "MIDNEW"} {
		if !seen[id] {
			t.Fatalf("registered experiment %s missing from All()", id)
		}
	}
	named := exps[boundary:]
	if !sort.SliceIsSorted(named, func(i, j int) bool { return named[i].ID < named[j].ID }) {
		ids := make([]string, len(named))
		for i, e := range named {
			ids[i] = e.ID
		}
		t.Fatalf("named group not alphabetical after registration: %v", ids)
	}
	if _, ok := Get("midnew"); !ok {
		t.Fatal("case-insensitive Get missed the new experiment")
	}
}

// TestRegistryHotkeyOrdering pins the HOTKEY experiment's place in the
// registry: present and retrievable case-insensitively, slotted into the
// named group alphabetically (HOTKEY < LOCK < RESIL < WALGC), and after
// every numeric experiment — the order baseline tooling that walks All()
// depends on for stable output.
func TestRegistryHotkeyOrdering(t *testing.T) {
	exps := All()
	idx := make(map[string]int, len(exps))
	for i, e := range exps {
		idx[e.ID] = i
	}
	want := []string{"HOTKEY", "LOCK", "RESIL", "WALGC"}
	for _, id := range want {
		if _, ok := idx[id]; !ok {
			t.Fatalf("%s missing from All()", id)
		}
	}
	for i := 1; i < len(want); i++ {
		if idx[want[i-1]] >= idx[want[i]] {
			t.Fatalf("named group out of order: %s (index %d) not before %s (index %d)",
				want[i-1], idx[want[i-1]], want[i], idx[want[i]])
		}
	}
	if idx["E14"] >= idx["HOTKEY"] {
		t.Fatalf("numeric E14 (index %d) must precede named HOTKEY (index %d)", idx["E14"], idx["HOTKEY"])
	}
	if e, ok := Get("hotkey"); !ok || e.ID != "HOTKEY" {
		t.Fatalf("case-insensitive Get(hotkey) = %v, %v", e.ID, ok)
	}
}

// TestRegistryRPCOrdering pins the RPC experiment's place in the
// registry: present and retrievable case-insensitively, slotted into the
// named group alphabetically (HOTKEY < LOCK < RESIL < RPC < WALGC), and
// after every numeric experiment — so baseline tooling that walks All()
// keeps stable output with the remote-path sweep included.
func TestRegistryRPCOrdering(t *testing.T) {
	exps := All()
	idx := make(map[string]int, len(exps))
	for i, e := range exps {
		idx[e.ID] = i
	}
	want := []string{"HOTKEY", "LOCK", "RESIL", "RPC", "WALGC"}
	for _, id := range want {
		if _, ok := idx[id]; !ok {
			t.Fatalf("%s missing from All()", id)
		}
	}
	for i := 1; i < len(want); i++ {
		if idx[want[i-1]] >= idx[want[i]] {
			t.Fatalf("named group out of order: %s (index %d) not before %s (index %d)",
				want[i-1], idx[want[i-1]], want[i], idx[want[i]])
		}
	}
	if idx["E14"] >= idx["RPC"] {
		t.Fatalf("numeric E14 (index %d) must precede named RPC (index %d)", idx["E14"], idx["RPC"])
	}
	if e, ok := Get("rpc"); !ok || e.ID != "RPC" {
		t.Fatalf("case-insensitive Get(rpc) = %v, %v", e.ID, ok)
	}
}

func parseNum(id string, n *int) (int, error) {
	var v int
	for _, c := range id[1:] {
		v = v*10 + int(c-'0')
	}
	*n = v
	return v, nil
}

func TestTableFormatting(t *testing.T) {
	var tb Table
	tb.Headers = []string{"col", "value"}
	tb.Add("short", 1)
	tb.Add("a-much-longer-cell", 2.5)
	var buf bytes.Buffer
	tb.Fprint(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Fatalf("header and rule misaligned:\n%s", buf.String())
	}
}
