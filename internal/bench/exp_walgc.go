package bench

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	asset "repro"
	"repro/internal/faultfs"
	"repro/internal/wal"
	"repro/internal/workload"
	"repro/internal/xid"
	"repro/models"
)

func init() {
	register(Experiment{
		ID:     "WALGC",
		Title:  "Group-commit WAL pipeline: commits per fsync, and parallel recovery",
		Anchor: "§4 log / commit protocol",
		Run:    runWALGC,
	})
}

// WALGCPoint is one measured cell of the commit-pipeline sweep; the
// points are what assetbench -walgc-baseline serializes into
// BENCH_walgc_baseline.json.
type WALGCPoint struct {
	Workers         int     `json:"workers"`           // concurrent closed-loop committers
	Group           bool    `json:"group"`             // pipelined group commit vs serial force
	CommitsPerSec   float64 `json:"commits_per_sec"`   // acknowledged commit throughput
	CommitsPerFsync float64 `json:"commits_per_fsync"` // batching factor (1.0 = serial)
	P50Micros       float64 `json:"p50_us"`            // median commit latency
	P99Micros       float64 `json:"p99_us"`            // tail commit latency
}

// WALGCRecoveryPoint is one cell of the parallel-recovery sweep.
type WALGCRecoveryPoint struct {
	Procs   int     `json:"procs"`   // scan workers (and GOMAXPROCS)
	Records int     `json:"records"` // chain length replayed
	Millis  float64 `json:"ms"`      // wall time for RecoverDir
}

// WALGCBaseline bundles both sweeps for the JSON baseline.
type WALGCBaseline struct {
	Sweep    []WALGCPoint         `json:"sweep"`
	Recovery []WALGCRecoveryPoint `json:"recovery"`
}

// WALGC measures the group-commit pipeline against the serial
// force-per-commit protocol on a durable store. Every transaction
// updates one of a few objects and commits synchronously; the serial
// arm holds the manager lock across its own fsync, the group arm
// enqueues into the pipelined writer and shares the leader's fsync with
// whoever arrived in the same window. No commit window is configured:
// batching is purely the natural overlap of concurrent committers, so
// a single worker pays no added latency. The recovery sweep replays one
// multi-segment chain with increasing scan parallelism.
func WALGC(quick bool) WALGCBaseline {
	dur := pick(quick, 60*time.Millisecond, 400*time.Millisecond)
	workerCounts := pick(quick, []int{1, 4}, []int{1, 2, 4, 8, 16})

	var out WALGCBaseline
	for _, workers := range workerCounts {
		for _, group := range []bool{false, true} {
			out.Sweep = append(out.Sweep, walgcCell(workers, group, dur))
		}
	}
	out.Recovery = walgcRecovery(quick)
	return out
}

func walgcCell(workers int, group bool, dur time.Duration) WALGCPoint {
	dir, err := os.MkdirTemp("", "asset-walgc-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	m, err := asset.Open(asset.Config{
		Dir:            dir,
		SyncCommits:    true,
		GroupCommit:    group,
		ReapTerminated: true,
	})
	if err != nil {
		panic(err)
	}
	defer m.Close()
	oids, err := seedObjects(m, 64, 64)
	if err != nil {
		panic(err)
	}
	res := workload.RunClosed(workers, dur, func(w, i int) error {
		oid := oids[(w*31+i)%len(oids)]
		return models.Atomic(m, func(tx *asset.Tx) error {
			return tx.Write(oid, []byte("y"))
		})
	})
	commits := m.Stats().Commits
	forces := m.PhysicalForces()
	perFsync := 0.0
	if forces > 0 {
		perFsync = float64(commits) / float64(forces)
	}
	return WALGCPoint{
		Workers:         workers,
		Group:           group,
		CommitsPerSec:   float64(commits) / res.Wall.Seconds(),
		CommitsPerFsync: perFsync,
		P50Micros:       float64(res.Lat.Percentile(0.50)) / float64(time.Microsecond),
		P99Micros:       float64(res.Lat.Percentile(0.99)) / float64(time.Microsecond),
	}
}

// walgcRecovery builds one multi-segment chain of committed updates and
// times the directory recovery at increasing scan parallelism, moving
// GOMAXPROCS with the worker count so one-core numbers are honest.
func walgcRecovery(quick bool) []WALGCRecoveryPoint {
	txns := pick(quick, 2_000, 20_000)
	dir, err := os.MkdirTemp("", "asset-walgc-rec-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	fsys := faultfs.OS{}
	l, err := wal.OpenSegmentedFS(fsys, dir, wal.SegmentedOptions{
		SegmentBytes: 64 << 10,
		Sync:         false, // buffered build; Close seals the tail
	})
	if err != nil {
		panic(err)
	}
	for i := 1; i <= txns; i++ {
		tid := xid.TID(i)
		l.Append(&wal.Record{Type: wal.TBegin, TID: tid})
		l.Append(&wal.Record{Type: wal.TUpdate, TID: tid, OID: xid.OID(i % 512),
			Kind: wal.KindModify, After: []byte(fmt.Sprintf("r%d", i))})
		l.Append(&wal.Record{Type: wal.TCommit, TIDs: []xid.TID{tid}})
	}
	if err := l.Flush(); err != nil {
		panic(err)
	}
	if err := l.Close(); err != nil {
		panic(err)
	}
	var out []WALGCRecoveryPoint
	for _, procs := range []int{1, 2, 8} {
		old := runtime.GOMAXPROCS(procs)
		start := time.Now()
		st, err := wal.RecoverDirFS(fsys, dir, wal.RecoverOptions{Parallel: procs})
		elapsed := time.Since(start)
		runtime.GOMAXPROCS(old)
		if err != nil {
			panic(err)
		}
		if st.NextLSN != uint64(3*txns+1) {
			panic(fmt.Sprintf("walgc recovery replayed to LSN %d, want %d", st.NextLSN, 3*txns+1))
		}
		out = append(out, WALGCRecoveryPoint{
			Procs:   procs,
			Records: 3 * txns,
			Millis:  float64(elapsed) / float64(time.Millisecond),
		})
	}
	return out
}

func runWALGC(w io.Writer, quick bool) error {
	b := WALGC(quick)
	var t Table
	t.Headers = []string{"workers", "protocol", "commits/s", "commits/fsync", "p50", "p99"}
	for _, p := range b.Sweep {
		proto := "serial force"
		if p.Group {
			proto = "group commit"
		}
		t.Add(p.Workers, proto, fmt.Sprintf("%.0f", p.CommitsPerSec),
			fmt.Sprintf("%.2f", p.CommitsPerFsync),
			time.Duration(p.P50Micros*float64(time.Microsecond)).Round(time.Microsecond),
			time.Duration(p.P99Micros*float64(time.Microsecond)).Round(time.Microsecond))
	}
	t.Fprint(w)
	fmt.Fprintln(w, "  (group commit shares one fsync across overlapping committers; no window, so batching is pure overlap)")
	var rt Table
	rt.Headers = []string{"scan workers", "records", "recovery"}
	for _, p := range b.Recovery {
		rt.Add(p.Procs, p.Records, time.Duration(p.Millis*float64(time.Millisecond)).Round(time.Millisecond))
	}
	rt.Fprint(w)
	fmt.Fprintln(w, "  (one chain, segments scanned in parallel then merged in LSN order)")
	return nil
}
