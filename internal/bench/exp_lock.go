package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/htab"
	"repro/internal/latch"
	"repro/internal/lock"
	"repro/internal/waitgraph"
	"repro/internal/workload"
	"repro/internal/xid"
)

func init() {
	register(Experiment{
		ID:     "E2",
		Title:  "Lock manager throughput (workers × mix × distribution)",
		Anchor: "§4.2 read-lock/write-lock",
		Run:    runE2,
	})
	register(Experiment{
		ID:     "E11",
		Title:  "Lock path cost vs permit-list length (Figure 1's OD lists)",
		Anchor: "Figure 1",
		Run:    runE11,
	})
	register(Experiment{
		ID:     "A1",
		Title:  "Ablation: test-and-set latch vs sync.Mutex vs sync.RWMutex",
		Anchor: "§4.1 latches",
		Run:    runA1,
	})
	register(Experiment{
		ID:     "A2",
		Title:  "Ablation: permit transitivity — materialize-on-insert vs walk-on-lookup",
		Anchor: "§2.2 permit rule 3",
		Run:    runA2,
	})
	register(Experiment{
		ID:     "A3",
		Title:  "Ablation: sharded chained hash table vs mutex-guarded map",
		Anchor: "§4.1 TD/PD tables",
		Run:    runA3,
	})
	register(Experiment{
		ID:     "A4",
		Title:  "Ablation: waits-for deadlock detection overhead (deadlock-free load)",
		Anchor: "§4.2 blocking",
		Run:    runA4,
	})
}

func runE2(w io.Writer, quick bool) error {
	var t Table
	t.Headers = []string{"workers", "objects", "dist", "write%", "locks/s", "p99"}
	dur := pick(quick, 40*time.Millisecond, 400*time.Millisecond)
	workerCounts := pick(quick, []int{1, 8}, []int{1, 4, 16, 64})
	for _, workers := range workerCounts {
		for _, objects := range []uint64{1_000, 100_000} {
			for _, dist := range []string{"uniform", "zipf"} {
				for _, writePct := range []int{10, 50} {
					lm := lock.New(waitgraph.New(), lock.Options{EagerClosure: true})
					gens := make([]workload.Generator, workers)
					for i := range gens {
						if dist == "zipf" {
							gens[i] = workload.NewZipf(int64(i+1), objects, 1.2)
						} else {
							gens[i] = workload.NewUniform(int64(i+1), objects)
						}
					}
					res := workload.RunClosed(workers, dur, func(worker, iter int) error {
						tid := xid.TID(uint64(worker)*1e9 + uint64(iter) + 1)
						oid := xid.OID(gens[worker].Next() + 1)
						mode := xid.OpRead
						if iter%100 < writePct {
							mode = xid.OpWrite
						}
						err := lm.Lock(tid, oid, mode)
						lm.ReleaseAll(tid)
						return err
					})
					t.Add(workers, objects, dist, writePct,
						fmt.Sprintf("%.0f", res.Throughput()), res.Lat.Percentile(0.99))
				}
			}
		}
	}
	t.Fprint(w)
	return nil
}

func runE11(w io.Writer, quick bool) error {
	var t Table
	t.Headers = []string{"PDs on OD", "grant latency (permitted conflicting lock)"}
	sizes := pick(quick, []int{0, 16, 64}, []int{0, 4, 16, 64, 256})
	iters := pick(quick, 2_000, 20_000)
	for _, pds := range sizes {
		lm := lock.New(waitgraph.New(), lock.Options{EagerClosure: true})
		const obj = xid.OID(1)
		holder := xid.TID(1)
		if err := lm.Lock(holder, obj, xid.OpWrite); err != nil {
			return err
		}
		// Decoy permits between unrelated transactions lengthen the PD
		// list the grant scan walks (Figure 1's permission list).
		for i := 0; i < pds; i++ {
			lm.Permit(xid.TID(1000+i), xid.TID(2000+i), []xid.OID{obj}, xid.OpRead)
		}
		// The holder permits everyone; each requester's grant must find
		// this PD behind the decoys.
		lm.Permit(holder, xid.NilTID, []xid.OID{obj}, xid.OpAll)
		start := time.Now()
		for i := 0; i < iters; i++ {
			tid := xid.TID(10_000 + i)
			if err := lm.Lock(tid, obj, xid.OpWrite); err != nil {
				return err
			}
			lm.ReleaseAll(tid)
		}
		t.Add(pds+1, time.Duration(int64(time.Since(start))/int64(iters)))
	}
	t.Fprint(w)
	fmt.Fprintln(w, "  (grant latency grows with the OD's permit-list length: the scan in §4.2 step 1b)")
	return nil
}

func runA1(w io.Writer, quick bool) error {
	var t Table
	t.Headers = []string{"goroutines", "latch X", "sync.Mutex", "latch S (read)", "RWMutex RLock"}
	dur := pick(quick, 30*time.Millisecond, 200*time.Millisecond)
	for _, workers := range pick(quick, []int{1, 8}, []int{1, 4, 16, 64}) {
		var l latch.Latch
		var mu sync.Mutex
		var rw sync.RWMutex
		shared := 0
		xLatch := workload.RunClosed(workers, dur, func(_, _ int) error {
			l.Lock()
			shared++
			l.Unlock()
			return nil
		})
		mtx := workload.RunClosed(workers, dur, func(_, _ int) error {
			mu.Lock()
			shared++
			mu.Unlock()
			return nil
		})
		sLatch := workload.RunClosed(workers, dur, func(_, _ int) error {
			l.RLock()
			_ = shared
			l.RUnlock()
			return nil
		})
		rwm := workload.RunClosed(workers, dur, func(_, _ int) error {
			rw.RLock()
			_ = shared
			rw.RUnlock()
			return nil
		})
		t.Add(workers,
			fmt.Sprintf("%.1fM/s", xLatch.Throughput()/1e6),
			fmt.Sprintf("%.1fM/s", mtx.Throughput()/1e6),
			fmt.Sprintf("%.1fM/s", sLatch.Throughput()/1e6),
			fmt.Sprintf("%.1fM/s", rwm.Throughput()/1e6))
	}
	t.Fprint(w)
	return nil
}

func runA2(w io.Writer, quick bool) error {
	var t Table
	t.Headers = []string{"chain length", "eager: insert chain", "eager: grant", "lazy: insert chain", "lazy: grant"}
	lengths := pick(quick, []int{2, 8}, []int{2, 8, 16, 32, 64})
	iters := pick(quick, 500, 5_000)
	for _, n := range lengths {
		var insertD, grantD [2]time.Duration
		for mode, eager := range []bool{true, false} {
			lm := lock.New(waitgraph.New(), lock.Options{EagerClosure: eager})
			const obj = xid.OID(1)
			root := xid.TID(1)
			if err := lm.Lock(root, obj, xid.OpWrite); err != nil {
				return err
			}
			start := time.Now()
			// Chain root -> 2 -> 3 -> ... -> n: eager materializes the
			// closure at each insert; lazy stores single edges.
			for i := 0; i < n-1; i++ {
				lm.Permit(xid.TID(i+1), xid.TID(i+2), []xid.OID{obj}, xid.OpAll)
			}
			insertD[mode] = time.Since(start)
			// Grant for the chain's tail against the root's lock.
			tail := xid.TID(n)
			start = time.Now()
			for i := 0; i < iters; i++ {
				if !lm.Permitted(root, tail, obj, xid.OpWrite) {
					return fmt.Errorf("A2: chain permit missing (eager=%v n=%d)", eager, n)
				}
			}
			grantD[mode] = time.Duration(int64(time.Since(start)) / int64(iters))
		}
		t.Add(n, insertD[0], grantD[0], insertD[1], grantD[1])
	}
	t.Fprint(w)
	fmt.Fprintln(w, "  (eager pays O(chain) at insert for O(1)-ish grants; lazy inserts are O(1) but every grant walks the chain)")
	return nil
}

func runA3(w io.Writer, quick bool) error {
	var t Table
	t.Headers = []string{"goroutines", "htab (sharded)", "mutex map"}
	dur := pick(quick, 30*time.Millisecond, 200*time.Millisecond)
	for _, workers := range pick(quick, []int{1, 8}, []int{1, 4, 16, 64}) {
		hm := htab.New[int](0)
		hres := workload.RunClosed(workers, dur, func(w, i int) error {
			k := uint64(w)<<32 | uint64(i%4096)
			switch i % 4 {
			case 0:
				hm.Put(k, i)
			case 3:
				hm.Delete(k)
			default:
				hm.Get(k)
			}
			return nil
		})
		var mu sync.Mutex
		mm := map[uint64]int{}
		mres := workload.RunClosed(workers, dur, func(w, i int) error {
			k := uint64(w)<<32 | uint64(i%4096)
			mu.Lock()
			switch i % 4 {
			case 0:
				mm[k] = i
			case 3:
				delete(mm, k)
			default:
				_ = mm[k]
			}
			mu.Unlock()
			return nil
		})
		t.Add(workers,
			fmt.Sprintf("%.1fM/s", hres.Throughput()/1e6),
			fmt.Sprintf("%.1fM/s", mres.Throughput()/1e6))
	}
	t.Fprint(w)
	return nil
}

func runA4(w io.Writer, quick bool) error {
	var t Table
	t.Headers = []string{"workers", "detection ON locks/s", "detection OFF locks/s", "overhead"}
	dur := pick(quick, 40*time.Millisecond, 300*time.Millisecond)
	for _, workers := range pick(quick, []int{4}, []int{4, 16, 64}) {
		run := func(detect bool) float64 {
			var onVictim func(xid.TID)
			if detect {
				onVictim = func(xid.TID) {}
			}
			lm := lock.New(waitgraph.New(), lock.Options{EagerClosure: true, OnVictim: onVictim})
			// Ordered two-object acquisition: contention but no deadlock,
			// isolating the detector's bookkeeping cost.
			res := workload.RunClosed(workers, dur, func(w, i int) error {
				tid := xid.TID(uint64(w)*1e9 + uint64(i) + 1)
				a := xid.OID(uint64(i)%64 + 1)
				b := a + 64
				if err := lm.Lock(tid, a, xid.OpWrite); err != nil {
					return err
				}
				err := lm.Lock(tid, b, xid.OpWrite)
				lm.ReleaseAll(tid)
				return err
			})
			return res.Throughput()
		}
		// Note: detection cannot actually be switched off inside the lock
		// manager (it always registers waits); we measure the waits-for
		// graph cost by comparing against single-object locking.
		on := run(true)
		lmBaseline := lock.New(waitgraph.New(), lock.Options{EagerClosure: true})
		base := workload.RunClosed(workers, dur, func(w, i int) error {
			tid := xid.TID(uint64(w)*1e9 + uint64(i) + 1)
			a := xid.OID(uint64(i)%64 + 1)
			err := lmBaseline.Lock(tid, a, xid.OpWrite)
			lmBaseline.ReleaseAll(tid)
			return err
		})
		t.Add(workers, fmt.Sprintf("%.0f", on),
			fmt.Sprintf("%.0f", base.Throughput()),
			fmt.Sprintf("%.2fx", base.Throughput()/on))
	}
	t.Fprint(w)
	fmt.Fprintln(w, "  (two-object vs one-object acquisition; the gap bounds detector + second-lock cost)")
	return nil
}
