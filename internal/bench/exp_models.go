package bench

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	asset "repro"
	"repro/internal/workload"
	"repro/models"
	"repro/workflow"
)

func init() {
	register(Experiment{
		ID:     "E3",
		Title:  "Cooperating transactions: permit ping-pong vs commit-per-handoff",
		Anchor: "§3.2.1",
		Run:    runE3,
	})
	register(Experiment{
		ID:     "E4",
		Title:  "Nested transaction overhead vs flat (depth sweep)",
		Anchor: "§3.1.4",
		Run:    runE4,
	})
	register(Experiment{
		ID:     "E5",
		Title:  "Saga vs monolithic long transaction: background throughput",
		Anchor: "§3.1.6 / §1 motivation",
		Run:    runE5,
	})
	register(Experiment{
		ID:     "E8",
		Title:  "Saga abort: compensation latency (t1..tk ct_k..ct_1)",
		Anchor: "§3.1.6",
		Run:    runE8,
	})
	register(Experiment{
		ID:     "E12",
		Title:  "Contingent transactions: cost vs alternatives and failure rate",
		Anchor: "§3.1.3",
		Run:    runE12,
	})
	register(Experiment{
		ID:     "E13",
		Title:  "Conference-trip workflow throughput (appendix program)",
		Anchor: "appendix",
		Run:    runE13,
	})
}

// runE3: two transactions must apply strictly alternating updates to one
// shared object. With permits both stay active and hand the object back
// and forth inside one transaction each (2 commits total); without
// permits, each handoff requires a commit to release the lock (2N
// commits). We measure wall time per handoff.
func runE3(w io.Writer, quick bool) error {
	var t Table
	t.Headers = []string{"handoffs", "permit ping-pong", "commit-per-handoff", "speedup"}
	rounds := pick(quick, 200, 2_000)

	m, err := memManager()
	if err != nil {
		return err
	}
	defer m.Close()
	oids, err := seedObjects(m, 1, 8)
	if err != nil {
		return err
	}
	oid := oids[0]

	// Cooperative version (§3.2.1): ti and tj alternate under permits.
	turnA := make(chan struct{}, 1)
	turnB := make(chan struct{}, 1)
	startCoop := time.Now()
	ti, _ := m.Initiate(func(tx *asset.Tx) error {
		for r := 0; r < rounds; r++ {
			<-turnA
			if err := tx.Update(oid, func(b []byte) []byte { b[0]++; return b }); err != nil {
				return err
			}
			turnB <- struct{}{}
		}
		return nil
	})
	tj, _ := m.Initiate(func(tx *asset.Tx) error {
		for r := 0; r < rounds; r++ {
			<-turnB
			if err := tx.Update(oid, func(b []byte) []byte { b[0]++; return b }); err != nil {
				return err
			}
			turnA <- struct{}{}
		}
		return nil
	})
	if err := m.FormDependency(asset.CD, ti, tj); err != nil {
		return err
	}
	if err := m.Permit(ti, tj, []asset.OID{oid}, asset.OpAll); err != nil {
		return err
	}
	if err := m.Permit(tj, ti, []asset.OID{oid}, asset.OpAll); err != nil {
		return err
	}
	if err := m.Begin(ti, tj); err != nil {
		return err
	}
	turnA <- struct{}{}
	if err := m.Commit(ti); err != nil {
		return err
	}
	if err := m.Commit(tj); err != nil {
		return err
	}
	coop := time.Since(startCoop)

	// Baseline: every handoff is a full commit so the other side can lock.
	startBase := time.Now()
	for r := 0; r < 2*rounds; r++ {
		if err := models.Atomic(m, func(tx *asset.Tx) error {
			return tx.Update(oid, func(b []byte) []byte { b[0]++; return b })
		}); err != nil {
			return err
		}
	}
	base := time.Since(startBase)

	t.Add(2*rounds,
		time.Duration(int64(coop)/int64(2*rounds)),
		time.Duration(int64(base)/int64(2*rounds)),
		fmt.Sprintf("%.2fx", float64(base)/float64(coop)))
	t.Fprint(w)
	fmt.Fprintln(w, "  (cooperation keeps both transactions active: 2 commits instead of one per handoff)")
	return nil
}

func runE4(w io.Writer, quick bool) error {
	var t Table
	t.Headers = []string{"depth", "flat txn (d writes)", "nested (d levels)", "overhead/level"}
	iters := pick(quick, 100, 1_000)
	for _, depth := range []int{1, 2, 4, 8} {
		m, err := memManager()
		if err != nil {
			return err
		}
		oids, err := seedObjects(m, depth, 16)
		if err != nil {
			m.Close()
			return err
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := models.Atomic(m, func(tx *asset.Tx) error {
				for _, oid := range oids {
					if err := tx.Write(oid, []byte("flat")); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				m.Close()
				return err
			}
		}
		flat := time.Duration(int64(time.Since(start)) / int64(iters))

		var nest func(tx *asset.Tx, level int) error
		nest = func(tx *asset.Tx, level int) error {
			if err := tx.Write(oids[level], []byte("nest")); err != nil {
				return err
			}
			if level+1 == depth {
				return nil
			}
			return models.Sub(tx, func(c *asset.Tx) error { return nest(c, level+1) })
		}
		start = time.Now()
		for i := 0; i < iters; i++ {
			if err := models.Atomic(m, func(tx *asset.Tx) error { return nest(tx, 0) }); err != nil {
				m.Close()
				return err
			}
		}
		nested := time.Duration(int64(time.Since(start)) / int64(iters))
		t.Add(depth, flat, nested, time.Duration(int64(nested-flat)/int64(depth)))
		m.Close()
	}
	t.Fprint(w)
	fmt.Fprintln(w, "  (each nesting level costs one initiate/permit/begin/wait/delegate/commit sequence)")
	return nil
}

// runE5: one long-lived activity updates k hot objects with think time per
// step, while background workers run short transactions on the same
// objects. As a single transaction the activity holds every lock until the
// end; as a saga each step releases its lock at commit.
func runE5(w io.Writer, quick bool) error {
	var t Table
	t.Headers = []string{"steps k", "mode", "bg txn/s", "bg p99", "bg deadlock aborts"}
	think := pick(quick, 200*time.Microsecond, time.Millisecond)
	dur := pick(quick, 60*time.Millisecond, 500*time.Millisecond)
	stepsList := pick(quick, []int{4, 16}, []int{2, 4, 8, 16, 32})
	const bgWorkers = 4

	for _, k := range stepsList {
		for _, mode := range []string{"long-txn", "saga"} {
			m, err := memManager()
			if err != nil {
				return err
			}
			hot, err := seedObjects(m, k, 16)
			if err != nil {
				m.Close()
				return err
			}
			stop := make(chan struct{})
			activityDone := make(chan struct{})
			// The activity loops for the whole measurement window.
			//asset:goroutine joined-by=channel
			go func() {
				defer close(activityDone)
				for {
					select {
					case <-stop:
						return
					default:
					}
					if mode == "long-txn" {
						models.Atomic(m, func(tx *asset.Tx) error {
							for _, oid := range hot {
								if err := tx.Write(oid, []byte("activity")); err != nil {
									return err
								}
								time.Sleep(think)
							}
							return nil
						})
					} else {
						s := models.NewSaga(m)
						for _, oid := range hot {
							oid := oid
							s.Step("s", func(tx *asset.Tx) error {
								if err := tx.Write(oid, []byte("activity")); err != nil {
									return err
								}
								time.Sleep(think)
								return nil
							}, nil)
						}
						s.Run()
					}
				}
			}()
			rng := rand.New(rand.NewSource(7))
			_ = rng
			res := workload.RunClosed(bgWorkers, dur, func(wkr, i int) error {
				oid := hot[(wkr+i)%len(hot)]
				return models.Atomic(m, func(tx *asset.Tx) error {
					return tx.Write(oid, []byte("bg"))
				})
			})
			close(stop)
			<-activityDone
			st := m.Stats()
			t.Add(k, mode, fmt.Sprintf("%.0f", res.Throughput()),
				res.Lat.Percentile(0.99), st.Deadlocks)
			m.Close()
		}
	}
	t.Fprint(w)
	fmt.Fprintln(w, "  (the saga releases each step's locks at step commit; the long txn starves the background)")
	return nil
}

func runE8(w io.Writer, quick bool) error {
	var t Table
	t.Headers = []string{"fail after step k", "committed", "compensated", "compensation wall"}
	for _, k := range pick(quick, []int{2, 8}, []int{1, 2, 4, 8, 16}) {
		m, err := memManager()
		if err != nil {
			return err
		}
		oids, err := seedObjects(m, k, 16)
		if err != nil {
			m.Close()
			return err
		}
		s := models.NewSaga(m)
		for i := 0; i < k; i++ {
			oid := oids[i]
			s.Step(fmt.Sprintf("s%d", i+1),
				func(tx *asset.Tx) error { return tx.Write(oid, []byte("done")) },
				func(tx *asset.Tx) error { return tx.Write(oid, []byte("undone")) })
		}
		s.Step("fail", func(tx *asset.Tx) error { return errors.New("step fails") }, nil)
		start := time.Now()
		res, err := s.Run()
		if err != nil {
			m.Close()
			return err
		}
		t.Add(k, len(res.Committed), len(res.Compensated), time.Since(start))
		m.Close()
	}
	t.Fprint(w)
	return nil
}

func runE12(w io.Writer, quick bool) error {
	var t Table
	t.Headers = []string{"alternatives", "fail prob", "activities/s", "avg tried"}
	iters := pick(quick, 300, 3_000)
	for _, n := range []int{1, 2, 4, 8} {
		for _, failPct := range []int{25, 75} {
			m, err := memManager()
			if err != nil {
				return err
			}
			rng := rand.New(rand.NewSource(int64(n*100 + failPct)))
			tried := 0
			start := time.Now()
			for i := 0; i < iters; i++ {
				fns := make([]asset.TxnFunc, n)
				for j := range fns {
					fail := rng.Intn(100) < failPct
					fns[j] = func(tx *asset.Tx) error {
						tried++
						if fail {
							return errors.New("alternative failed")
						}
						return nil
					}
				}
				models.Contingent(m, fns...)
			}
			wall := time.Since(start)
			t.Add(n, fmt.Sprintf("%d%%", failPct),
				fmt.Sprintf("%.0f", float64(iters)/wall.Seconds()),
				fmt.Sprintf("%.2f", float64(tried)/float64(iters)))
			m.Close()
		}
	}
	t.Fprint(w)
	return nil
}

func runE13(w io.Writer, quick bool) error {
	var t Table
	t.Headers = []string{"scenario", "activities/s", "outcome"}
	iters := pick(quick, 100, 1_000)
	scenarios := []struct {
		name                  string
		hotelFull, flightFull bool
	}{
		{"happy path", false, false},
		{"hotel full (compensate flight)", true, false},
		{"no flight (fail fast)", false, true},
	}
	for _, sc := range scenarios {
		m, err := memManager()
		if err != nil {
			return err
		}
		oids, err := seedObjects(m, 3, 32)
		if err != nil {
			m.Close()
			return err
		}
		flight, hotel, car := oids[0], oids[1], oids[2]
		build := func() *workflow.Workflow {
			book := func(name string, full bool, oid asset.OID) workflow.Task {
				return workflow.Task{
					Name: name,
					Action: func(tx *asset.Tx) error {
						if full {
							return errors.New("sold out")
						}
						return tx.Write(oid, []byte(name))
					},
					Compensate: func(tx *asset.Tx) error { return tx.Write(oid, []byte("-")) },
				}
			}
			return workflow.New("X_conference").
				Alternatives("flight",
					book("Delta", sc.flightFull, flight),
					book("United", sc.flightFull, flight),
					book("American", sc.flightFull, flight)).
				Step(book("Equator", sc.hotelFull, hotel)).
				Race("car",
					book("National", false, car),
					book("Avis", false, car)).Optional()
		}
		start := time.Now()
		var lastOutcome string
		for i := 0; i < iters; i++ {
			res, err := build().Run(m)
			if err != nil {
				m.Close()
				return err
			}
			if res.Err() == nil {
				lastOutcome = "booked"
			} else {
				lastOutcome = res.Err().Error()
			}
		}
		wall := time.Since(start)
		t.Add(sc.name, fmt.Sprintf("%.0f", float64(iters)/wall.Seconds()), lastOutcome)
		m.Close()
	}
	t.Fprint(w)
	return nil
}
