package bench

import (
	"context"
	"fmt"
	"io"
	"net"
	"time"

	asset "repro"
	"repro/client"
	"repro/internal/faultfs"
	"repro/internal/faultnet"
	"repro/internal/server"
	"repro/internal/txcoord"
	"repro/internal/wal"
	"repro/internal/workload"
	"repro/internal/xid"
)

func init() {
	register(Experiment{
		ID:     "DIST",
		Title:  "Distributed group commit: 2-node 2PC cost vs the single-node RPC baseline",
		Anchor: "§3.2.1 form_dependency(GC) across managers (txcoord)",
		Run:    runDist,
	})
}

// DistPoint is one measured cell of the distributed-commit sweep; the
// slice of points is what assetbench -dist-baseline serializes into
// BENCH_dist_baseline.json.
type DistPoint struct {
	Arm           string  `json:"arm"` // 1node-rpc | 2node-2pc
	Workers       int     `json:"workers"`
	CommitsPerSec float64 `json:"commits_per_sec"`
	P50Micros     float64 `json:"p50_us"`
	P99Millis     float64 `json:"p99_ms"`
	Errors        uint64  `json:"errors"`
}

// DistSweep measures what spanning managers costs. Both arms run the same
// logical work — a transfer touching two counters, built interactively
// over leased sessions on an in-process faultnet fabric — but "1node-rpc"
// keeps both counters in one manager and commits with a single OpCommit,
// while "2node-2pc" splits them across two managers GC-linked by a
// distributed group: two prepares (each forcing a TPrepare record), a
// coordinator decision-log force, and two verdict deliveries. The ratio
// is the price of the paper's group-commit dependency once it has to
// cross a node boundary.
func DistSweep(quick bool) []DistPoint {
	dur := pick(quick, 60*time.Millisecond, 400*time.Millisecond)
	workerCounts := pick(quick, []int{1, 4}, []int{1, 4, 16})

	var out []DistPoint
	for _, workers := range workerCounts {
		for _, arm := range []string{"1node-rpc", "2node-2pc"} {
			out = append(out, distCell(arm, workers, dur))
		}
	}
	return out
}

// distNode is one served manager plus a dialed client session.
type distNode struct {
	m      *asset.Manager
	fabric *faultnet.Network
	srv    *server.Server
	cli    *client.Client
	oids   []asset.OID
}

func startDistNode(workers int, init uint64) *distNode {
	m, err := asset.Open(asset.Config{ReapTerminated: true})
	if err != nil {
		panic(err)
	}
	fabric := faultnet.New()
	lis, err := fabric.Listen("assetd")
	if err != nil {
		panic(err)
	}
	srv := server.Serve(m, lis, server.Config{LeaseTTL: 2 * time.Second})
	cli, err := client.Dial(context.Background(), client.Options{
		Dial: func(ctx context.Context) (net.Conn, error) {
			return fabric.DialContext(ctx, "assetd")
		},
		RetransmitEvery: 3 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	n := &distNode{m: m, fabric: fabric, srv: srv, cli: cli}
	// One counter per worker: disjoint objects, so the protocol — not the
	// lock table — is what's measured.
	if err := m.Run(context.Background(), asset.RunOptions{}, func(tx *asset.Tx) error {
		n.oids = n.oids[:0]
		for i := 0; i < workers; i++ {
			oid, err := tx.Create(wal.EncodeCounter(init))
			if err != nil {
				return err
			}
			n.oids = append(n.oids, oid)
		}
		return nil
	}); err != nil {
		panic(err)
	}
	return n
}

func (n *distNode) close() {
	n.cli.Close() //nolint:errcheck
	n.srv.Close()
	n.fabric.Close()
	n.m.Close() //nolint:errcheck
}

// buildHalf makes one interactive, uncommitted transfer half: the body
// stays open until the commit path (OpCommit or OpPrepare) finishes it.
func (n *distNode) buildHalf(ctx context.Context, w int, delta int64) (xid.TID, error) {
	tid, err := n.cli.Initiate(ctx)
	if err != nil {
		return tid, err
	}
	if err := n.cli.Begin(ctx, tid); err != nil {
		return tid, err
	}
	return tid, n.cli.Tx(tid).Add(ctx, n.oids[w], delta)
}

func distCell(arm string, workers int, dur time.Duration) DistPoint {
	ctx := context.Background()
	var res workload.Result
	switch arm {
	case "1node-rpc":
		// Both counters on one node; same interactive shape, one commit.
		a := startDistNode(2*workers, 1<<40)
		defer a.close()
		res = workload.RunClosed(workers, dur, func(w, i int) error {
			tid, err := a.cli.Initiate(ctx)
			if err != nil {
				return err
			}
			if err := a.cli.Begin(ctx, tid); err != nil {
				return err
			}
			if err := a.cli.Tx(tid).Add(ctx, a.oids[2*w], -1); err != nil {
				return err
			}
			if err := a.cli.Tx(tid).Add(ctx, a.oids[2*w+1], 1); err != nil {
				return err
			}
			return a.cli.Commit(ctx, tid)
		})

	default: // 2node-2pc
		a := startDistNode(workers, 1<<40)
		defer a.close()
		b := startDistNode(workers, 0)
		defer b.close()
		coord, err := txcoord.Open(faultfs.NewMem(), "coord")
		if err != nil {
			panic(err)
		}
		defer coord.Close() //nolint:errcheck
		res = workload.RunClosed(workers, dur, func(w, i int) error {
			tidA, err := a.buildHalf(ctx, w, -1)
			if err != nil {
				return err
			}
			tidB, err := b.buildHalf(ctx, w, 1)
			if err != nil {
				return err
			}
			ok, err := coord.CommitGroup(ctx, coord.NewGID(), []txcoord.Member{
				txcoord.Remote("a", a.cli, tidA),
				txcoord.Remote("b", b.cli, tidB),
			})
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("group aborted")
			}
			return nil
		})
	}

	goodput := 0.0
	if res.Wall > 0 {
		goodput = float64(res.Ops-res.Errors) / res.Wall.Seconds()
	}
	return DistPoint{
		Arm:           arm,
		Workers:       workers,
		CommitsPerSec: goodput,
		P50Micros:     float64(res.Lat.Percentile(0.50)) / float64(time.Microsecond),
		P99Millis:     float64(res.Lat.Percentile(0.99)) / float64(time.Millisecond),
		Errors:        res.Errors,
	}
}

func runDist(w io.Writer, quick bool) error {
	points := DistSweep(quick)
	var t Table
	t.Headers = []string{"arm", "workers", "commits/s", "p50", "p99", "errs", "vs 1node"}
	base := make(map[int]float64)
	for _, p := range points {
		if p.Arm == "1node-rpc" {
			base[p.Workers] = p.CommitsPerSec
		}
	}
	for _, p := range points {
		vs := "-"
		if p.Arm != "1node-rpc" {
			if b := base[p.Workers]; b > 0 {
				vs = fmt.Sprintf("%.2fx", p.CommitsPerSec/b)
			}
		}
		t.Add(p.Arm, p.Workers,
			fmt.Sprintf("%.0f", p.CommitsPerSec),
			time.Duration(p.P50Micros*float64(time.Microsecond)).Round(time.Microsecond),
			time.Duration(p.P99Millis*float64(time.Millisecond)).Round(10*time.Microsecond),
			p.Errors, vs)
	}
	t.Fprint(w)
	fmt.Fprintln(w, "  (one transfer = two counter deltas; the 2PC arm pays 2 prepares + a coordinator log force + 2 verdict deliveries)")
	return nil
}
