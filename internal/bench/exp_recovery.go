package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	asset "repro"
	"repro/models"
)

func init() {
	register(Experiment{
		ID:     "E10",
		Title:  "Recovery time vs log size; crash consistency",
		Anchor: "§4 log / recovery",
		Run:    runE10,
	})
}

func runE10(w io.Writer, quick bool) error {
	var t Table
	t.Headers = []string{"committed updates", "log replay + open", "objects recovered", "consistent"}
	sizes := pick(quick, []int{1_000, 5_000}, []int{1_000, 10_000, 100_000})
	for _, n := range sizes {
		dir, err := os.MkdirTemp("", "asset-e10-*")
		if err != nil {
			return err
		}
		m, err := asset.Open(asset.Config{Dir: dir, ReapTerminated: true})
		if err != nil {
			return err
		}
		const objects = 256
		oids, err := seedObjects(m, objects, 64)
		if err != nil {
			m.Close()
			return err
		}
		// n committed updates in batches, plus one in-flight loser at the
		// end (crash mid-transaction).
		const batch = 50
		want := make(map[asset.OID]byte, objects)
		for i := 0; i < n/batch; i++ {
			i := i
			if err := models.Atomic(m, func(tx *asset.Tx) error {
				for j := 0; j < batch; j++ {
					oid := oids[(i*batch+j)%objects]
					v := byte(i + j)
					if err := tx.Write(oid, []byte{v}); err != nil {
						return err
					}
					want[oid] = v
				}
				return nil
			}); err != nil {
				m.Close()
				return err
			}
		}
		hold := make(chan struct{})
		started := make(chan struct{})
		loser, _ := m.Initiate(func(tx *asset.Tx) error {
			tx.Write(oids[0], []byte{0xFF})
			close(started)
			<-hold
			return nil
		})
		m.Begin(loser)
		<-started
		m.Close() // crash
		close(hold)

		start := time.Now()
		m2, err := asset.Open(asset.Config{Dir: dir})
		if err != nil {
			return err
		}
		openTime := time.Since(start)
		consistent := true
		for oid, v := range want {
			got, ok := m2.Cache().Read(oid)
			if !ok || got[0] != v {
				consistent = false
				break
			}
		}
		recovered := m2.Cache().Len()
		m2.Close()
		os.RemoveAll(dir)
		t.Add(n, openTime, recovered, consistent)
	}
	t.Fprint(w)
	fmt.Fprintln(w, "  (redo-only recovery: committed updates replayed, the in-flight loser discarded)")
	return nil
}
