package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	asset "repro"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:     "RESIL",
		Title:  "Admission control under oversubscription (workers × MaxLive gate)",
		Anchor: "§2.2 overload / resilience layer",
		Run:    runResil,
	})
}

// ResilPoint is one measured cell of the overload sweep; the slice of
// points is what assetbench -resil-baseline serializes into
// BENCH_resil_baseline.json.
type ResilPoint struct {
	Workers       int     `json:"workers"`  // concurrent closed-loop clients
	MaxLive       int     `json:"max_live"` // 0 = ungated
	GoodputPerSec float64 `json:"goodput_per_sec"`
	P99Millis     float64 `json:"p99_ms"` // p99 Run (whole-engagement) latency
	Deadlocks     uint64  `json:"deadlocks"`
	Retries       uint64  `json:"retries"`
	Sheds         uint64  `json:"sheds"`
}

// resilGate is the admission bound the gated arm of the sweep uses. Four
// slots undercuts the eight-object hotspot: beyond a few live transactions
// every additional one mostly adds conflict, not useful concurrency.
const resilGate = 4

// ResilOverload measures what happens when client concurrency outruns the
// useful concurrency of a hotspot workload. Each client runs closed-loop
// transactions through the Run retry engine; every transaction write-locks
// two of eight hot objects in arrival order (so lock-order deadlocks are
// common) and does a little CPU work while holding the first lock. The
// sweep crosses worker counts with the admission gate off (MaxLive=0) and
// on (MaxLive=resilGate): ungated, goodput decays as workers multiply
// deadlock victims and wasted retries; gated, excess clients queue at the
// gate instead of piling onto the lock table, so goodput holds near its
// peak.
func ResilOverload(quick bool) []ResilPoint {
	dur := pick(quick, 50*time.Millisecond, 400*time.Millisecond)
	workerCounts := pick(quick, []int{4, 16}, []int{4, 8, 16, 32})

	var out []ResilPoint
	for _, workers := range workerCounts {
		for _, gate := range []int{0, resilGate} {
			m, err := asset.Open(asset.Config{
				ReapTerminated: true,
				MaxLive:        gate,
				AdmitTimeout:   50 * time.Millisecond,
			})
			if err != nil {
				panic(err) // in-memory open cannot fail
			}
			hot, err := seedObjects(m, 8, 64)
			if err != nil {
				panic(err)
			}
			opts := asset.RunOptions{MaxAttempts: 8, BaseBackoff: 100 * time.Microsecond}
			res := workload.RunClosed(workers, dur, func(w, i int) error {
				a := hot[(i*7+w)%len(hot)]
				b := hot[(i*3+w*5+1)%len(hot)]
				if a == b {
					b = hot[(i*3+w*5+2)%len(hot)]
				}
				return asset.Run(context.Background(), m, opts, func(tx *asset.Tx) error {
					if err := tx.Write(a, []byte("x")); err != nil {
						return err
					}
					spin(20 * time.Microsecond)
					return tx.Write(b, []byte("y"))
				})
			})
			st := m.Stats()
			m.Close()
			goodput := 0.0
			if res.Wall > 0 {
				goodput = float64(res.Ops-res.Errors) / res.Wall.Seconds()
			}
			out = append(out, ResilPoint{
				Workers:       workers,
				MaxLive:       gate,
				GoodputPerSec: goodput,
				P99Millis:     float64(res.Lat.Percentile(0.99)) / float64(time.Millisecond),
				Deadlocks:     st.Deadlocks,
				Retries:       st.Retries,
				Sheds:         st.Overloads,
			})
		}
	}
	return out
}

// spin busy-works for roughly d, standing in for the computation a real
// transaction does while holding locks (sleeping would park the goroutine
// and understate lock-hold pressure).
func spin(d time.Duration) {
	for start := time.Now(); time.Since(start) < d; {
	}
}

func runResil(w io.Writer, quick bool) error {
	points := ResilOverload(quick)
	var t Table
	t.Headers = []string{"workers", "gate", "goodput/s", "p99", "deadlocks", "retries", "sheds", "vs ungated"}
	base := make(map[int]float64)
	for _, p := range points {
		if p.MaxLive == 0 {
			base[p.Workers] = p.GoodputPerSec
		}
	}
	for _, p := range points {
		gate := "off"
		vs := "-"
		if p.MaxLive > 0 {
			gate = fmt.Sprint(p.MaxLive)
			if b := base[p.Workers]; b > 0 {
				vs = fmt.Sprintf("%.2fx", p.GoodputPerSec/b)
			}
		}
		t.Add(p.Workers, gate,
			fmt.Sprintf("%.0f", p.GoodputPerSec),
			time.Duration(p.P99Millis*float64(time.Millisecond)).Round(10*time.Microsecond),
			p.Deadlocks, p.Retries, p.Sheds, vs)
	}
	t.Fprint(w)
	fmt.Fprintln(w, "  (two write locks on an 8-object hotspot per txn; goodput = committed Run engagements/sec)")
	return nil
}
