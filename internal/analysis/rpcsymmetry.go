package analysis

import (
	"go/ast"
	"go/constant"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// rpcsymmetry: registry-consistency checks over the wire protocol. The
// protocol lives in three places that must agree — the Op constants and
// opNames table in the rpc package, the server's dispatch switch, and
// the client's encoders — plus the Sentinels table that gives errors a
// wire identity. PR 9 added three ops by hand; drift between these
// registries is silent until a chaos cell trips over an op the server
// does not dispatch or an error that loses its identity crossing the
// wire. The checker makes the symmetry structural:
//
//   - every Op* constant has a non-empty opNames entry,
//   - every Op* constant is referenced by a package named "server"
//     (a dispatch case) and by a package named "client" (an encoder),
//   - every Op* constant is exercised by the rpc package's tests —
//     by name, or via an exhaustive `opMax` loop,
//   - every exported Err* sentinel in the core package appears in the
//     rpc package's Sentinels table, with no duplicates and at most 63
//     entries (the wire bitmask is a uint64 with bit 0 reserved).
//
// The checker runs only when the analyzed packages include an rpc-style
// package (one declaring type Op, var opNames, and var Sentinels), so
// fixture runs and partial loads are unaffected.

// rpcsymmetry runs the registry checks over the analyzed packages.
func (r *Runner) rpcsymmetry() {
	if !r.enabled("rpcsymmetry") {
		return
	}
	rpcPkg := findRPCPackage(r.packages)
	if rpcPkg == nil {
		return
	}
	ops := collectOps(rpcPkg)
	if len(ops) == 0 {
		return
	}
	r.checkOpNames(rpcPkg, ops)
	r.checkOpUses(rpcPkg, ops)
	r.checkOpTests(rpcPkg, ops)
	r.checkSentinels(rpcPkg)
}

// findRPCPackage locates the package declaring the wire registry.
func findRPCPackage(pkgs []*Package) *Package {
	for _, p := range pkgs {
		if p.Fixture && !strings.Contains(p.Path, "rpcsym") {
			continue
		}
		scope := p.Pkg.Scope()
		if tn, ok := scope.Lookup("Op").(*types.TypeName); ok && tn != nil &&
			scope.Lookup("opNames") != nil && scope.Lookup("Sentinels") != nil {
			return p
		}
	}
	return nil
}

// opConst is one Op* protocol constant.
type opConst struct {
	obj   *types.Const
	value int64
	pos   token.Pos
}

// collectOps gathers the exported Op* constants of the rpc package's Op
// type (opMax, the unexported bound, is excluded by the prefix rule).
func collectOps(p *Package) []opConst {
	var ops []opConst
	scope := p.Pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !strings.HasPrefix(name, "Op") || !c.Exported() {
			continue
		}
		named, ok := c.Type().(*types.Named)
		if !ok || named.Obj().Name() != "Op" {
			continue
		}
		v, ok := constant.Int64Val(c.Val())
		if !ok {
			continue
		}
		ops = append(ops, opConst{obj: c, value: v, pos: c.Pos()})
	}
	return ops
}

// checkOpNames requires a non-empty opNames entry per op, read from the
// keyed composite literal.
func (r *Runner) checkOpNames(p *Package, ops []opConst) {
	lit := findVarLiteral(p, "opNames")
	if lit == nil {
		r.report(p.Files[0].Pos(), "rpcsymmetry", "cannot find the opNames composite literal")
		return
	}
	named := make(map[int64]bool)
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		tv, ok := p.Info.Types[kv.Key]
		if !ok || tv.Value == nil {
			continue
		}
		idx, ok := constant.Int64Val(tv.Value)
		if !ok {
			continue
		}
		if s, ok := kv.Value.(*ast.BasicLit); ok && s.Kind == token.STRING && len(s.Value) > 2 {
			named[idx] = true
		}
	}
	for _, op := range ops {
		if !named[op.value] {
			r.report(op.pos, "rpcsymmetry", "%s has no opNames entry (its String() would print op(%d))",
				op.obj.Name(), op.value)
		}
	}
}

// checkOpUses requires each op to be referenced by the server package (a
// dispatch case) and the client package (an encoder).
func (r *Runner) checkOpUses(rpcPkg *Package, ops []opConst) {
	have := make(map[string]bool)
	for _, p := range r.packages {
		have[p.Pkg.Name()] = true
	}
	if !have["server"] || !have["client"] {
		return // partial load (assetlint on a sub-pattern): nothing to compare
	}
	usedBy := make(map[*types.Const]map[string]bool)
	for _, op := range ops {
		usedBy[op.obj] = make(map[string]bool)
	}
	for _, p := range r.packages {
		if p == rpcPkg {
			continue
		}
		for _, obj := range p.Info.Uses {
			c, ok := obj.(*types.Const)
			if !ok {
				continue
			}
			if m := usedBy[c]; m != nil {
				m[p.Pkg.Name()] = true
			}
		}
	}
	for _, op := range ops {
		if !usedBy[op.obj]["server"] {
			r.report(op.pos, "rpcsymmetry", "%s has no server dispatch case (not referenced by any package named server)",
				op.obj.Name())
		}
		if !usedBy[op.obj]["client"] {
			r.report(op.pos, "rpcsymmetry", "%s has no client encoder (not referenced by any package named client)",
				op.obj.Name())
		}
	}
}

// opTestIdentRe extracts identifiers from the rpc test corpus.
var opTestIdentRe = regexp.MustCompile(`\b\w+\b`)

// checkOpTests requires round-trip codec coverage: the rpc package's own
// _test.go files must reference each op by name, or range exhaustively
// via opMax. Test files are outside the type-checked load, so this is a
// parse-level scan of the package directory.
func (r *Runner) checkOpTests(p *Package, ops []opConst) {
	entries, err := os.ReadDir(p.Dir)
	if err != nil {
		r.report(p.Files[0].Pos(), "rpcsymmetry", "cannot scan %s for test files: %v", p.Dir, err)
		return
	}
	idents := make(map[string]bool)
	sawTests := false
	fset := token.NewFileSet()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, e.Name()), nil, parser.SkipObjectResolution)
		if err != nil {
			continue
		}
		sawTests = true
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				idents[id.Name] = true
			}
			return true
		})
	}
	if !sawTests {
		r.report(p.Files[0].Pos(), "rpcsymmetry", "rpc package has no _test.go round-trip coverage")
		return
	}
	if idents["opMax"] {
		return // an exhaustive loop over the op range covers every op
	}
	for _, op := range ops {
		if !idents[op.obj.Name()] {
			r.report(op.pos, "rpcsymmetry", "%s has no round-trip coverage in the rpc package tests",
				op.obj.Name())
		}
	}
}

// checkSentinels requires every exported Err* error variable of the core
// package to be registered in the Sentinels table, the table to be
// duplicate-free, and its length to fit the wire bitmask.
func (r *Runner) checkSentinels(rpcPkg *Package) {
	lit := findVarLiteral(rpcPkg, "Sentinels")
	if lit == nil {
		r.report(rpcPkg.Files[0].Pos(), "rpcsymmetry", "cannot find the Sentinels composite literal")
		return
	}
	registered := make(map[types.Object]bool)
	for _, el := range lit.Elts {
		obj := exprObject(rpcPkg, el)
		if obj == nil {
			r.report(el.Pos(), "rpcsymmetry", "Sentinels entry is not a resolvable error variable")
			continue
		}
		if registered[obj] {
			r.report(el.Pos(), "rpcsymmetry", "duplicate Sentinels entry %s (bit positions are wire ABI)", obj.Name())
		}
		registered[obj] = true
	}
	if len(lit.Elts) > 63 {
		r.report(lit.Pos(), "rpcsymmetry",
			"Sentinels has %d entries; the wire bitmask holds at most 63 (uint64 with bit 0 reserved)", len(lit.Elts))
	}
	for _, p := range r.packages {
		if p.Pkg.Name() != "core" {
			continue
		}
		if p.Fixture != rpcPkg.Fixture {
			continue // fixture rpc registries pair with fixture core packages
		}
		scope := p.Pkg.Scope()
		for _, name := range scope.Names() {
			v, ok := scope.Lookup(name).(*types.Var)
			if !ok || !strings.HasPrefix(name, "Err") || !v.Exported() {
				continue
			}
			if !isErrorTypeT(v.Type()) {
				continue
			}
			if !registered[v] && !registeredByName(registered, name) {
				r.report(v.Pos(), "rpcsymmetry",
					"core.%s crosses the wire without a Sentinels entry (clients would lose its identity)", name)
			}
		}
	}
}

// registeredByName covers re-exported sentinels: core.ErrDeadlock is
// lock.ErrDeadlock by assignment, so the Sentinels element resolves to
// either object; name equality bridges the aliasing.
func registeredByName(registered map[types.Object]bool, name string) bool {
	for obj := range registered {
		if obj.Name() == name {
			return true
		}
	}
	return false
}

// findVarLiteral returns the composite literal initializing a package
// variable of the given name.
func findVarLiteral(p *Package, name string) *ast.CompositeLit {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					if id.Name != name || i >= len(vs.Values) {
						continue
					}
					if cl, ok := ast.Unparen(vs.Values[i]).(*ast.CompositeLit); ok {
						return cl
					}
				}
			}
		}
	}
	return nil
}

// exprObject resolves an identifier or selector expression to its object.
func exprObject(p *Package, e ast.Expr) types.Object {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return p.Info.Uses[v]
	case *ast.SelectorExpr:
		return p.Info.Uses[v.Sel]
	}
	return nil
}
