package analysis

import (
	"go/ast"
	"go/types"
)

// ctxflow: inside a function that receives a context.Context, calling a
// primitive that has a context-aware sibling (Lock vs LockCtx, Wait vs
// WaitCtx, Begin vs BeginCtx, ...) by its non-ctx name silently drops
// cancellation and deadlines on the floor — exactly the bug class the
// resilience layer exists to prevent. The checker flags any call to X(...)
// from a ctx-bearing function when the same receiver (or package) also
// defines XCtx(..., context.Context, ...).

// ctxflow runs the checker over one package.
func (r *Runner) ctxflow(p *Package) {
	if !r.enabled("ctxflow") {
		return
	}
	eachFunc(p, func(decl *ast.FuncDecl) {
		fn, ok := p.Info.Defs[decl.Name].(*types.Func)
		if !ok || !hasCtxParam(fn.Type().(*types.Signature)) {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			// Nested literals may legitimately not see the context (timer
			// callbacks, goroutines with their own lifetime); skip them.
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			r.checkCtxCall(p, call)
			return true
		})
	})
}

func (r *Runner) checkCtxCall(p *Package, call *ast.CallExpr) {
	var callee *types.Func
	var fun *ast.SelectorExpr
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fun = f
		callee, _ = p.Info.Uses[f.Sel].(*types.Func)
	case *ast.Ident:
		// Same-package function call.
		callee, _ = p.Info.Uses[f].(*types.Func)
		if callee != nil && callee.Type().(*types.Signature).Recv() != nil {
			return // method value through an ident: out of scope
		}
	}
	if callee == nil {
		return
	}
	name := callee.Name()
	// An already-ctx call, or a name where the Ctx suffix would be silly.
	if len(name) >= 3 && name[len(name)-3:] == "Ctx" {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || hasCtxParam(sig) {
		return // the callee itself takes a ctx; nothing dropped
	}

	var variant *types.Func
	if fun == nil {
		// Same-package call: look for <name>Ctx in the package scope.
		if callee.Pkg() != nil {
			obj := callee.Pkg().Scope().Lookup(name + "Ctx")
			variant, _ = obj.(*types.Func)
		}
	} else if sel, selOK := p.Info.Selections[fun]; selOK && sel.Kind() == types.MethodVal {
		// Method call: look for a <name>Ctx method on the receiver type.
		recvT := sel.Recv()
		obj, _, _ := types.LookupFieldOrMethod(recvT, true, callee.Pkg(), name+"Ctx")
		variant, _ = obj.(*types.Func)
	} else if pkgID, idOK := ast.Unparen(fun.X).(*ast.Ident); idOK {
		// Package-qualified call: look for pkg.<name>Ctx.
		if pn, pnOK := p.Info.Uses[pkgID].(*types.PkgName); pnOK {
			obj := pn.Imported().Scope().Lookup(name + "Ctx")
			variant, _ = obj.(*types.Func)
		}
	}
	if variant == nil {
		return
	}
	vsig, ok := variant.Type().(*types.Signature)
	if !ok || !hasCtxParam(vsig) {
		return
	}
	r.report(call.Pos(), "ctxflow",
		"calls %s in a context-bearing function; %s exists and would propagate cancellation",
		name, variant.Name())
}

// hasCtxParam reports whether any parameter of sig is a context.Context.
func hasCtxParam(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
