package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the checker that produced it, and a
// human-readable message.
type Diagnostic struct {
	Pos     token.Position
	Checker string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Checker, d.Message)
}

// CheckerNames lists every registered checker, in the order they run.
var CheckerNames = []string{
	"latchorder",
	"leakedlatch",
	"holdblock",
	"atomicmix",
	"ctxflow",
	"errcmp",
	"goroleak",
	"forceorder",
	"rpcsymmetry",
	"noalloc",
}

// Runner runs checkers over a loaded module (plus any fixture packages).
type Runner struct {
	Mod      *Module
	Enabled  map[string]bool // nil = all
	latches  *latchSet
	summary  map[funcKey]*funcSummary
	effects  map[funcKey]*effects
	diags    []Diagnostic
	packages []*Package

	// atomicmix caches, valid for one Run invocation.
	atomicF  map[*types.Var]bool
	atomicOK map[*ast.SelectorExpr]bool
}

// NewRunner prepares a runner for the module with the given checkers
// enabled (nil or empty enables all).
func NewRunner(mod *Module, enabled []string) (*Runner, error) {
	r := &Runner{Mod: mod}
	if len(enabled) > 0 {
		r.Enabled = make(map[string]bool)
		for _, name := range enabled {
			ok := false
			for _, known := range CheckerNames {
				if known == name {
					ok = true
				}
			}
			if !ok {
				return nil, fmt.Errorf("analysis: unknown checker %q (have %s)", name, strings.Join(CheckerNames, ", "))
			}
			r.Enabled[name] = true
		}
	}
	return r, nil
}

func (r *Runner) enabled(name string) bool {
	return r.Enabled == nil || r.Enabled[name]
}

// report records a diagnostic if its checker is enabled.
func (r *Runner) report(pos token.Pos, checker, format string, args ...any) {
	if !r.enabled(checker) {
		return
	}
	r.diags = append(r.diags, Diagnostic{
		Pos:     r.Mod.Fset.Position(pos),
		Checker: checker,
		Message: fmt.Sprintf(format, args...),
	})
}

// Run analyzes the given packages (defaulting to every module package) and
// returns the surviving diagnostics, sorted by position, with //lint:allow
// suppressions already applied.
func (r *Runner) Run(pkgs ...*Package) []Diagnostic {
	if len(pkgs) == 0 {
		pkgs = r.Mod.Packages
	}
	r.packages = pkgs
	r.diags = nil
	r.atomicF, r.atomicOK = nil, nil

	// The latch registry and function summaries span the whole module: a
	// fixture package may reference annotated module types, and transitive
	// order checks must see callees in other packages.
	all := append(append([]*Package(nil), r.Mod.Packages...), fixturesOf(pkgs)...)
	r.latches = collectLatches(r, all)
	r.summary = buildSummaries(r, all)
	r.effects = buildEffects(r, all)

	for _, p := range pkgs {
		r.runFlow(p) // latchorder + leakedlatch + holdblock
		r.atomicmix(p, all)
		r.ctxflow(p)
		r.errcmp(p)
		r.goroleak(p)
		r.forceorder(p)
	}
	r.rpcsymmetry() // whole-module registry symmetry
	r.noalloc()     // escape-analysis gate over annotated hot paths

	kept := suppress(r.Mod.Fset, pkgs, r.diags)
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return kept[i].Checker < kept[j].Checker
	})
	return kept
}

func fixturesOf(pkgs []*Package) []*Package {
	var out []*Package
	for _, p := range pkgs {
		if p.Fixture {
			out = append(out, p)
		}
	}
	return out
}

// suppressRe matches //lint:allow <checker> <reason>. The reason is
// mandatory: a suppression that does not say why does not suppress.
var suppressRe = regexp.MustCompile(`^//\s*lint:allow\s+([a-z]+)\s+(\S.*)$`)

// suppress drops diagnostics covered by a //lint:allow comment on the same
// line or the line directly above.
func suppress(fset *token.FileSet, pkgs []*Package, diags []Diagnostic) []Diagnostic {
	type key struct {
		file string
		line int
	}
	allowed := make(map[key][]string)
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := suppressRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					allowed[k] = append(allowed[k], m[1])
				}
			}
		}
	}
	var kept []Diagnostic
	for _, d := range diags {
		ok := false
		for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
			for _, checker := range allowed[key{d.Pos.Filename, line}] {
				if checker == d.Checker || checker == "all" {
					ok = true
				}
			}
		}
		if !ok {
			kept = append(kept, d)
		}
	}
	return kept
}

// WriteText prints diagnostics one per line, relative to root when possible.
func WriteText(w io.Writer, root string, diags []Diagnostic) {
	for _, d := range diags {
		name := d.Pos.Filename
		if root != "" {
			if rel, err := relPath(root, name); err == nil {
				name = rel
			}
		}
		fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", name, d.Pos.Line, d.Pos.Column, d.Checker, d.Message)
	}
}

// WriteJSON prints diagnostics as a JSON array of objects.
func WriteJSON(w io.Writer, root string, diags []Diagnostic) error {
	type jsonDiag struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Checker string `json:"checker"`
		Message string `json:"message"`
	}
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		name := d.Pos.Filename
		if root != "" {
			if rel, err := relPath(root, name); err == nil {
				name = rel
			}
		}
		out = append(out, jsonDiag{name, d.Pos.Line, d.Pos.Column, d.Checker, d.Message})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func relPath(root, name string) (string, error) {
	if !strings.HasPrefix(name, root) {
		return "", fmt.Errorf("outside root")
	}
	return strings.TrimPrefix(strings.TrimPrefix(name, root), "/"), nil
}

// eachFunc visits every function declaration with a body in the package.
func eachFunc(p *Package, fn func(decl *ast.FuncDecl)) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}
