package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"
)

// LatchClass is one annotated mutex/latch field — a "class" of latch in the
// global acquisition order. Two runtime instances of the same class (two
// lock-table shards, say) share one order number, which is how the ≤1-latch
// rule for shards falls out of the ordering check: acquiring a class while
// already holding it is never in strictly ascending order.
type LatchClass struct {
	Field *types.Var // the struct field carrying the annotation
	Name  string     // display name: pkg.Struct.field
	Order int        // position in the global acquisition order (ascending)
	Spin  bool       // short-term spin latch: no blocking while held
}

// latchSet is the module-wide registry of annotated latch classes.
type latchSet struct {
	byField map[*types.Var]*LatchClass
	classes []*LatchClass
}

// classOf returns the latch class of a struct field, or nil.
func (s *latchSet) classOf(v *types.Var) *LatchClass {
	if s == nil || v == nil {
		return nil
	}
	return s.byField[v]
}

var annotRe = regexp.MustCompile(`^//\s*asset:latch\b(.*)$`)
var attrRe = regexp.MustCompile(`(\w+)(?:=(\S+))?`)

// collectLatches scans every struct field of the given packages for
// //asset:latch annotations. Malformed annotations and annotations on
// non-lockable fields are reported under the latchorder checker: a broken
// annotation silently weakens the whole discipline.
func collectLatches(r *Runner, pkgs []*Package) *latchSet {
	set := &latchSet{byField: make(map[*types.Var]*LatchClass)}
	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					text, ok := annotationText(field)
					if !ok {
						continue
					}
					order, spin, perr := parseLatchAttrs(text)
					if perr != "" {
						r.report(field.Pos(), "latchorder", "bad //asset:latch annotation: %s", perr)
						continue
					}
					for _, name := range field.Names {
						v, ok := p.Info.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						if !lockableType(v.Type()) {
							r.report(field.Pos(), "latchorder",
								"//asset:latch annotation on non-latch field %s (type %s)", name.Name, v.Type())
							continue
						}
						cls := &LatchClass{
							Field: v,
							Name:  p.Pkg.Name() + "." + ts.Name.Name + "." + name.Name,
							Order: order,
							Spin:  spin,
						}
						set.byField[v] = cls
						set.classes = append(set.classes, cls)
					}
				}
				return true
			})
		}
	}
	return set
}

// annotationText returns the //asset:latch comment attached to a struct
// field (doc comment above it or line comment after it), if any.
func annotationText(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if m := annotRe.FindStringSubmatch(c.Text); m != nil {
				return m[1], true
			}
		}
	}
	return "", false
}

// parseLatchAttrs parses the attribute list of an //asset:latch comment:
// order=<n> is required; spin marks a short-term spin latch under which
// blocking operations are forbidden (the holdblock checker's domain).
func parseLatchAttrs(text string) (order int, spin bool, problem string) {
	order = -1
	for _, m := range attrRe.FindAllStringSubmatch(text, -1) {
		switch m[1] {
		case "order":
			n, err := strconv.Atoi(m[2])
			if err != nil || n < 0 {
				return 0, false, "order must be a non-negative integer"
			}
			order = n
		case "spin":
			spin = true
		default:
			return 0, false, "unknown attribute " + m[1]
		}
	}
	if order < 0 {
		return 0, false, "missing order=<n>"
	}
	return order, spin, ""
}

// lockableType reports whether t is a type the latch checkers track:
// sync.Mutex, sync.RWMutex, or the project's latch.Latch.
func lockableType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "sync":
		return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
	default:
		return obj.Name() == "Latch" && pathTail(obj.Pkg().Path()) == "latch"
	}
}

func pathTail(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}
