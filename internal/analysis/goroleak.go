package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
)

// goroleak: every `go` statement must be provably joined. The spawn site
// declares its join mechanism with an annotation on the go statement's
// line (or the line above):
//
//	//asset:goroutine joined-by=waitgroup   Add before the spawn, Done in the body
//	//asset:goroutine joined-by=channel     body sends on or closes a channel
//	//asset:goroutine joined-by=ctx         body parks on a termination signal
//
// and the checker verifies the declared evidence against the goroutine
// body (transitively, via effect summaries). Fire-and-forget spawns that
// genuinely have no join — callback invocations, say — carry a
// //lint:allow goroleak <reason> instead, so every unjoined goroutine in
// the tree is a recorded decision rather than an accident (the finishBody
// leak of PR 8 was exactly an unrecorded one).

var goAnnotRe = regexp.MustCompile(`^//\s*asset:goroutine\b(.*)$`)

// goAnnot is one //asset:goroutine annotation, keyed by file line.
type goAnnot struct {
	mech string
	pos  token.Pos
	used bool
}

// goroleak checks every go statement in the package.
func (r *Runner) goroleak(p *Package) {
	if !r.enabled("goroleak") {
		return
	}
	annots := r.collectGoAnnots(p)
	eachFunc(p, func(decl *ast.FuncDecl) {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			pos := r.Mod.Fset.Position(gs.Pos())
			var a *goAnnot
			for _, line := range []int{pos.Line, pos.Line - 1} {
				if found := annots[lineKey{pos.Filename, line}]; found != nil {
					a = found
					break
				}
			}
			if a == nil {
				r.report(gs.Pos(), "goroleak",
					"unannotated go statement: declare its join with //asset:goroutine joined-by=<waitgroup|channel|ctx> (or //lint:allow goroleak <reason> for fire-and-forget)")
				return true
			}
			a.used = true
			r.checkJoin(p, decl, gs, a)
			return true
		})
	})
	for _, a := range annots {
		if !a.used {
			r.report(a.pos, "goroleak", "//asset:goroutine annotation matches no go statement")
		}
	}
}

type lineKey struct {
	file string
	line int
}

// collectGoAnnots scans the package's comments for //asset:goroutine
// annotations, validating their attribute list.
func (r *Runner) collectGoAnnots(p *Package) map[lineKey]*goAnnot {
	annots := make(map[lineKey]*goAnnot)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := goAnnotRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				a := &goAnnot{pos: c.Pos()}
				bad := ""
				for _, attr := range attrRe.FindAllStringSubmatch(m[1], -1) {
					switch attr[1] {
					case "joined":
						// attrRe splits "joined-by=x" at the hyphen; accept the
						// bare "joined" token and read the mechanism from "by".
					case "by":
						a.mech = attr[2]
					default:
						bad = "unknown attribute " + attr[1]
					}
				}
				switch a.mech {
				case "waitgroup", "channel", "ctx":
				case "":
					bad = "missing joined-by=<waitgroup|channel|ctx>"
				default:
					bad = "unknown join mechanism " + a.mech
				}
				if bad != "" {
					r.report(c.Pos(), "goroleak", "bad //asset:goroutine annotation: %s", bad)
					continue
				}
				pos := r.Mod.Fset.Position(c.Pos())
				annots[lineKey{pos.Filename, pos.Line}] = a
			}
		}
	}
	return annots
}

// checkJoin verifies the annotated mechanism against the goroutine body.
func (r *Runner) checkJoin(p *Package, decl *ast.FuncDecl, gs *ast.GoStmt, a *goAnnot) {
	ev := r.spawnEffects(p, gs.Call)
	if ev == nil {
		r.report(gs.Pos(), "goroleak",
			"goroutine target is not statically resolvable (function value or external callee); use //lint:allow goroleak <reason>")
		return
	}
	switch a.mech {
	case "waitgroup":
		if !ev.wgDone {
			r.report(gs.Pos(), "goroleak",
				"joined-by=waitgroup but the goroutine body never calls WaitGroup.Done")
			return
		}
		if !wgAddBefore(p, decl, gs) {
			r.report(gs.Pos(), "goroleak",
				"joined-by=waitgroup but no WaitGroup.Add call precedes the go statement in %s", decl.Name.Name)
		}
	case "channel":
		if !ev.chanSig {
			r.report(gs.Pos(), "goroleak",
				"joined-by=channel but the goroutine body never sends on or closes a channel")
		}
	case "ctx":
		if !ev.ctxRecv {
			r.report(gs.Pos(), "goroleak",
				"joined-by=ctx but the goroutine body never blocks on a termination signal (ctx.Done() or a done/stop channel)")
		}
	}
}

// spawnEffects computes the effect summary of the spawned body: a literal
// is analyzed in place (callee bits merged from the transitive
// summaries); a named module function uses its summary directly. Returns
// nil when the target is opaque (function values, external callees).
func (r *Runner) spawnEffects(p *Package, call *ast.CallExpr) *effects {
	if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		e := &effects{callees: make(map[funcKey]bool)}
		collectEffectFacts(r, p, fl.Body, e)
		for callee := range e.callees {
			if ce := r.effects[callee]; ce != nil {
				e.wgDone = e.wgDone || ce.wgDone
				e.chanSig = e.chanSig || ce.chanSig
				e.ctxRecv = e.ctxRecv || ce.ctxRecv
				e.forces = e.forces || ce.forces
			}
		}
		return e
	}
	fn := calleeFunc(p, call)
	if fn == nil || !inModule(r, fn) {
		return nil
	}
	return r.effects[fn]
}

// wgAddBefore reports whether some WaitGroup.Add call textually precedes
// the go statement inside the spawning function — the Add-before-spawn
// half of the waitgroup join contract (Wait must observe the count).
func wgAddBefore(p *Package, decl *ast.FuncDecl, gs *ast.GoStmt) bool {
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.End() > gs.Pos() {
			return true
		}
		if fn := calleeFunc(p, call); fn != nil && fn.Name() == "Add" && isWaitGroupMethod(fn) {
			found = true
		}
		return !found
	})
	return found
}
