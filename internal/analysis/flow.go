package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// funcKey identifies a function across packages: the canonical *types.Func
// from the defining package (call sites resolve to the same object because
// every module package is type-checked from one shared identity space).
type funcKey = *types.Func

// funcSummary is the transitive effect summary of one module function, used
// to check calls made while latches are held without inlining the callee.
type funcSummary struct {
	name     string
	acquires map[*LatchClass]bool // annotated classes possibly acquired inside
	// acquiresUnannotated: locks some shared (field or package-level) mutex
	// that carries no //asset:latch annotation — opaque to the order check,
	// so forbidden under a spin latch.
	acquiresUnannotated bool
	blocks              bool // may perform a blocking op (channel, I/O, sleep)
	callees             map[funcKey]bool
}

// callInfo is the classification of one call expression.
type callInfo struct {
	lockOp   string   // "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock" ("" if not a locker method)
	recvExpr ast.Expr // the mutex/latch operand of a locker method
	class    *LatchClass
	shared   bool // mutex operand is a struct field or package-level var
	condWait bool // sync.Cond.Wait — sanctioned parking, never a violation
	callee   funcKey
	inModule bool
	blocking bool // known-blocking stdlib call
	isPanic  bool
}

// classifyCall decides what a call expression means to the latch checkers.
func (r *Runner) classifyCall(p *Package, call *ast.CallExpr) callInfo {
	var ci callInfo
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return ci // conversion, not a call
	}
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fun]
		if b, ok := obj.(*types.Builtin); ok {
			ci.isPanic = b.Name() == "panic"
			return ci
		}
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return ci // function value, closure, or unresolvable
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ci
	}
	if recv := sig.Recv(); recv != nil {
		rt := recv.Type()
		if ptr, ok := rt.(*types.Pointer); ok {
			rt = ptr.Elem()
		}
		if lockableType(rt) && isLockerMethod(fn.Name()) {
			ci.lockOp = fn.Name()
			if se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				ci.recvExpr = se.X
				ci.class, ci.shared = r.resolveLatchExpr(p, se.X)
			}
			return ci
		}
		if named, ok := rt.(*types.Named); ok && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Cond" && fn.Name() == "Wait" {
			ci.condWait = true
			return ci
		}
	}
	ci.callee = fn
	ci.inModule = fn.Pkg() != nil &&
		(fn.Pkg().Path() == r.Mod.Path || strings.HasPrefix(fn.Pkg().Path(), r.Mod.Path+"/"))
	if !ci.inModule {
		ci.blocking = isBlockingStdlib(fn)
	}
	return ci
}

func isLockerMethod(name string) bool {
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
		return true
	}
	return false
}

// resolveLatchExpr maps the operand of a locker method to its latch class
// (nil when unannotated) and whether it is shared state (a struct field or
// package-level variable, as opposed to a local).
func (r *Runner) resolveLatchExpr(p *Package, e ast.Expr) (*LatchClass, bool) {
	switch v := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[v]; ok && sel.Kind() == types.FieldVal {
			fv, _ := sel.Obj().(*types.Var)
			return r.latches.classOf(fv), true
		}
		// Package-qualified variable (pkg.mu).
		if obj, ok := p.Info.Uses[v.Sel].(*types.Var); ok {
			return r.latches.classOf(obj), isPackageLevel(obj)
		}
	case *ast.Ident:
		if obj, ok := p.Info.Uses[v].(*types.Var); ok {
			return r.latches.classOf(obj), isPackageLevel(obj)
		}
	}
	return nil, false
}

func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// isBlockingStdlib reports whether a standard-library call is forbidden
// while a spin latch is held: I/O, sleeping, and rendezvous primitives.
func isBlockingStdlib(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "time":
		return fn.Name() == "Sleep"
	case "os", "io", "net", "bufio", "os/exec", "net/http":
		return true
	case "fmt":
		n := fn.Name()
		return strings.HasPrefix(n, "Print") || strings.HasPrefix(n, "Fprint") ||
			strings.HasPrefix(n, "Scan") || strings.HasPrefix(n, "Fscan") || strings.HasPrefix(n, "Sscan")
	case "log":
		return true
	case "sync":
		// WaitGroup.Wait blocks; Cond.Wait was classified earlier (allowed).
		return fn.Name() == "Wait"
	}
	return false
}

// buildSummaries computes the transitive effect summary of every function
// declared in the given packages: a direct-facts pass per function, then a
// fixed point over the static call graph. Function literals launched as
// goroutines or passed as callbacks are excluded — they run on other stacks
// or at unknowable points, and charging them to the enclosing function would
// drown the checkers in false positives.
func buildSummaries(r *Runner, pkgs []*Package) map[funcKey]*funcSummary {
	sums := make(map[funcKey]*funcSummary)
	for _, p := range pkgs {
		p := p
		eachFunc(p, func(decl *ast.FuncDecl) {
			fn, ok := p.Info.Defs[decl.Name].(*types.Func)
			if !ok {
				return
			}
			s := &funcSummary{
				name:     fn.FullName(),
				acquires: make(map[*LatchClass]bool),
				callees:  make(map[funcKey]bool),
			}
			collectDirectFacts(r, p, decl.Body, s)
			sums[fn] = s
		})
	}
	// Fixed point: propagate callee effects until stable.
	for changed := true; changed; {
		changed = false
		for _, s := range sums {
			for callee := range s.callees {
				cs := sums[callee]
				if cs == nil {
					continue
				}
				for c := range cs.acquires {
					if !s.acquires[c] {
						s.acquires[c] = true
						changed = true
					}
				}
				if cs.acquiresUnannotated && !s.acquiresUnannotated {
					s.acquiresUnannotated = true
					changed = true
				}
				if cs.blocks && !s.blocks {
					s.blocks = true
					changed = true
				}
			}
		}
	}
	return sums
}

// collectDirectFacts records the locks, blocking operations, and resolvable
// module callees that appear directly in body (function literals and
// goroutine launches excluded).
func collectDirectFacts(r *Runner, p *Package, body *ast.BlockStmt, s *funcSummary) {
	// An Unlock appearing before a Lock of the same operand is the xxxLocked
	// unlock/relock pattern: the relock restores the caller's hold and must
	// not count as an acquisition of this function.
	unlocked := make(map[string]int)
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SendStmt:
			s.blocks = true
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				s.blocks = true
			}
		case *ast.SelectStmt:
			if !selectHasDefault(v) {
				s.blocks = true
			}
		case *ast.RangeStmt:
			if isChanType(p, v.X) {
				s.blocks = true
			}
		case *ast.CallExpr:
			ci := r.classifyCall(p, v)
			key := ""
			if ci.recvExpr != nil {
				key = types.ExprString(ci.recvExpr)
			}
			switch {
			case ci.lockOp == "Unlock" || ci.lockOp == "RUnlock":
				unlocked[key]++
			case ci.lockOp == "Lock" || ci.lockOp == "RLock":
				if unlocked[key] > 0 {
					unlocked[key]--
					break
				}
				if ci.class != nil {
					s.acquires[ci.class] = true
				} else if ci.shared {
					s.acquiresUnannotated = true
				}
			case ci.blocking:
				s.blocks = true
			case ci.callee != nil:
				// Stdlib callees have no summary and drop out of the fixed
				// point; analyzed callees (module and fixture) propagate.
				s.callees[ci.callee] = true
			}
		}
		return true
	})
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func isChanType(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}
