// Package analysis implements assetlint, the project's static analyzer. It
// loads the whole module with go/parser and go/types (stdlib only — export
// data for dependencies comes from `go list -export`, read back through
// go/importer's gc reader) and runs a set of project-specific checkers that
// enforce the concurrency discipline documented in DESIGN.md §8/§10: latch
// acquisition order, the ≤1-shard-latch rule, no leaked latches on early
// returns, no blocking while spinning, atomic-access consistency, context
// plumbing, and errors.Is-based sentinel comparison.
package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Fixture marks packages loaded from a testdata directory by the test
	// harness rather than discovered in the module.
	Fixture bool
}

// Module is the fully loaded module: every package parsed with comments and
// type-checked from source, sharing one FileSet and one type identity space.
type Module struct {
	Root     string // module root directory (contains go.mod)
	Path     string // module path from go.mod
	Fset     *token.FileSet
	Packages []*Package // module packages in dependency order

	byPath  map[string]*Package
	exports map[string]string // import path -> export data file (non-module deps)
	gcImp   types.Importer    // reads export data via lookup into exports
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Imports    []string
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// modulePath extracts the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s/go.mod", root)
}

// LoadModule loads and type-checks every package of the module rooted at (or
// above) dir. Test files are excluded: the discipline checkers target
// production code, and fixtures exercise the checkers themselves.
func LoadModule(dir string) (*Module, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command("go", "list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,Imports", "./...")
	cmd.Dir = root
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list failed: %w\n%s", err, errb.String())
	}

	m := &Module{
		Root:    root,
		Path:    modPath,
		Fset:    token.NewFileSet(),
		byPath:  make(map[string]*Package),
		exports: make(map[string]string),
	}
	m.gcImp = importer.ForCompiler(m.Fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := m.exports[path]
		if !ok || exp == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(exp)
	})

	var local []*listEntry
	dec := json.NewDecoder(&out)
	for {
		var e listEntry
		if err := dec.Decode(&e); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if e.ImportPath == modPath || strings.HasPrefix(e.ImportPath, modPath+"/") {
			local = append(local, &e)
		} else if e.Export != "" {
			m.exports[e.ImportPath] = e.Export
		}
	}
	// Load module packages in dependency order so every intra-module import
	// resolves to an already-checked package.
	sortByDeps(local, modPath)
	for _, e := range local {
		if err := m.loadLocal(e); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// sortByDeps topologically sorts the module's own packages by their
// intra-module imports (stable on import path for determinism).
func sortByDeps(entries []*listEntry, modPath string) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].ImportPath < entries[j].ImportPath })
	byPath := make(map[string]*listEntry, len(entries))
	for _, e := range entries {
		byPath[e.ImportPath] = e
	}
	var ordered []*listEntry
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(e *listEntry)
	visit = func(e *listEntry) {
		if state[e.ImportPath] != 0 {
			return // visiting (import cycle: the type checker will report it) or done
		}
		state[e.ImportPath] = 1
		for _, imp := range e.Imports {
			if d, ok := byPath[imp]; ok {
				visit(d)
			}
		}
		state[e.ImportPath] = 2
		ordered = append(ordered, e)
	}
	for _, e := range entries {
		visit(e)
	}
	copy(entries, ordered)
}

// loadLocal parses and type-checks one module package from source.
func (m *Module) loadLocal(e *listEntry) error {
	var files []*ast.File
	for _, name := range e.GoFiles {
		f, err := parser.ParseFile(m.Fset, filepath.Join(e.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("analysis: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	pkg, info, err := m.check(e.ImportPath, files)
	if err != nil {
		return err
	}
	p := &Package{Path: e.ImportPath, Dir: e.Dir, Files: files, Pkg: pkg, Info: info}
	m.Packages = append(m.Packages, p)
	m.byPath[e.ImportPath] = p
	return nil
}

// LoadFixture parses and type-checks a standalone directory (a golden test
// fixture under testdata) against the module's package space. Fixture
// imports are limited to packages the module itself already depends on.
func (m *Module) LoadFixture(dir, asPath string) (*Package, error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, de := range names {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, de.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing fixture %s: %w", de.Name(), err)
		}
		files = append(files, f)
	}
	pkg, info, err := m.check(asPath, files)
	if err != nil {
		return nil, err
	}
	return &Package{Path: asPath, Dir: dir, Files: files, Pkg: pkg, Info: info, Fixture: true}, nil
}

// check type-checks one package's files.
func (m *Module) check(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var firstErr error
	conf := types.Config{
		Importer: moduleImporter{m},
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := conf.Check(path, m.Fset, files, info)
	if firstErr != nil {
		return nil, nil, fmt.Errorf("analysis: type-checking %s: %w", path, firstErr)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return pkg, info, nil
}

// moduleImporter resolves intra-module imports to source-checked packages
// and everything else to gc export data.
type moduleImporter struct{ m *Module }

func (mi moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := mi.m.byPath[path]; ok {
		return p.Pkg, nil
	}
	if strings.HasPrefix(path, mi.m.Path+"/") || path == mi.m.Path {
		return nil, fmt.Errorf("analysis: module package %q not yet loaded (dependency order bug)", path)
	}
	return mi.m.gcImp.Import(path)
}
