package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// errcmp: sentinel errors (package-level error variables like ErrDeadlock)
// must be compared with errors.Is, never ==/!= — the resilience layer wraps
// errors with %w, and an == comparison silently stops matching the moment a
// wrap is added anywhere on the return path. Companion rule: fmt.Errorf
// calls that embed an error value must use %w so the chain stays unwrappable.

func (r *Runner) errcmp(p *Package) {
	if !r.enabled("errcmp") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.BinaryExpr:
				if v.Op == token.EQL || v.Op == token.NEQ {
					r.checkErrCompare(p, v)
				}
			case *ast.SwitchStmt:
				r.checkErrSwitch(p, v)
			case *ast.CallExpr:
				r.checkErrorf(p, v)
			}
			return true
		})
	}
}

// checkErrCompare flags x == ErrFoo / ErrFoo != x.
func (r *Runner) checkErrCompare(p *Package, be *ast.BinaryExpr) {
	for _, side := range []ast.Expr{be.X, be.Y} {
		if s := sentinelError(p, side); s != nil {
			op := "=="
			if be.Op == token.NEQ {
				op = "!="
			}
			r.report(be.OpPos, "errcmp",
				"sentinel error %s compared with %s; use errors.Is so wrapped errors still match", s.Name(), op)
			return
		}
	}
}

// checkErrSwitch flags `switch err { case ErrFoo: }`.
func (r *Runner) checkErrSwitch(p *Package, sw *ast.SwitchStmt) {
	if sw.Tag == nil || !isErrorType(p, sw.Tag) {
		return
	}
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if s := sentinelError(p, e); s != nil {
				r.report(e.Pos(), "errcmp",
					"sentinel error %s matched by switch case (an == comparison); use errors.Is in an if/else chain", s.Name())
			}
		}
	}
}

// checkErrorf flags fmt.Errorf calls that pass an error value to a verb
// other than %w.
func (r *Runner) checkErrorf(p *Package, call *ast.CallExpr) {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || fun.Sel.Name != "Errorf" {
		return
	}
	fn, ok := p.Info.Uses[fun.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs, indexed := formatVerbs(format)
	if indexed {
		return // explicit argument indexes: too clever to analyze, bail
	}
	args := call.Args[1:]
	for i, verb := range verbs {
		if i >= len(args) {
			break
		}
		if verb == 'w' {
			continue
		}
		if isErrorType(p, args[i]) {
			r.report(args[i].Pos(), "errcmp",
				"error value formatted with %%%c in fmt.Errorf; use %%w so callers can errors.Is/As through the wrap", verb)
		}
	}
}

// formatVerbs returns the verb letter consuming each successive argument of
// a format string, in order. A '*' width/precision consumes an argument of
// its own. Returns indexed=true (give up) when %[n] argument indexes appear.
func formatVerbs(format string) (verbs []rune, indexed bool) {
	i := 0
	for i < len(format) {
		if format[i] != '%' {
			i++
			continue
		}
		i++ // past '%'
		if i < len(format) && format[i] == '%' {
			i++
			continue
		}
		// flags, width, precision
		for i < len(format) {
			c := format[i]
			if c == '[' {
				return nil, true
			}
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if strings.ContainsRune("+-# 0.", rune(c)) || (c >= '0' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			verbs = append(verbs, rune(format[i]))
			i++
		}
	}
	return verbs, false
}

// sentinelError returns the package-level error variable an expression
// resolves to, or nil. Nil literals and non-error variables don't count.
func sentinelError(p *Package, e ast.Expr) *types.Var {
	var obj types.Object
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = p.Info.Uses[v]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[v.Sel]
	default:
		return nil
	}
	vr, ok := obj.(*types.Var)
	if !ok || vr.Pkg() == nil || vr.Parent() != vr.Pkg().Scope() {
		return nil
	}
	if !isErrorTypeT(vr.Type()) {
		return nil
	}
	return vr
}

func isErrorType(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Type != nil && isErrorTypeT(tv.Type)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorTypeT(t types.Type) bool {
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
		return true
	}
	// Any concrete or interface type identical to error counts; broader
	// implements-error matching would flag comparisons of rich error structs,
	// which can legitimately use ==.
	return types.Identical(t, errorIface) || types.Identical(t.Underlying(), errorIface)
}
