package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// TestAnnotationRegistry pins the //asset: annotation grammar and the
// tree's annotated-site inventory. Every annotation kind in the module
// must be one the analyzer parses, and every durability or hot-path
// claim is a recorded decision: adding a //asset:durable or
// //asset:noalloc site (or a new goroutine join) means updating this
// table, the same discipline TestLatchRegistry applies to latches.
func TestAnnotationRegistry(t *testing.T) {
	m := repoModule(t)
	kindRe := regexp.MustCompile(`^//\s*asset:(\w+)`)
	known := map[string]bool{"latch": true, "goroutine": true, "durable": true, "noalloc": true}

	latches := 0
	mechs := make(map[string]int)
	var durable, noalloc []string
	for _, p := range m.Packages {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					km := kindRe.FindStringSubmatch(c.Text)
					if km == nil {
						continue
					}
					if !known[km[1]] {
						t.Errorf("%s: unknown annotation kind asset:%s (the analyzer parses %v)",
							m.Fset.Position(c.Pos()), km[1], sortedKeys(known))
						continue
					}
					base := filepath.Base(m.Fset.Position(c.Pos()).Filename)
					switch km[1] {
					case "latch":
						latches++
					case "goroutine":
						gm := goAnnotRe.FindStringSubmatch(c.Text)
						mech := "?"
						for _, attr := range attrRe.FindAllStringSubmatch(gm[1], -1) {
							if attr[1] == "by" {
								mech = attr[2]
							}
						}
						mechs[mech]++
					case "durable":
						dm := durableRe.FindStringSubmatch(c.Text)
						durable = append(durable, base+" "+strings.TrimSpace(dm[1]))
					case "noalloc":
						noalloc = append(noalloc, base)
					}
				}
			}
		}
	}

	// One annotation per latch class; the classes themselves (names and
	// orders) are pinned by TestLatchRegistry.
	if latches != 14 {
		t.Errorf("latch annotations: got %d, want 14 (update TestLatchRegistry and DESIGN.md §10 too)", latches)
	}

	wantMechs := map[string]int{"waitgroup": 16, "channel": 5, "ctx": 2}
	if fmt.Sprint(sortedCounts(mechs)) != fmt.Sprint(sortedCounts(wantMechs)) {
		t.Errorf("goroutine join mechanisms: got %v, want %v", sortedCounts(mechs), sortedCounts(wantMechs))
	}

	sort.Strings(durable)
	wantDurable := []string{
		"commit.go before=ReleaseAll,EscrowCommit",
		"groupcommit.go before=createSegment",
		"groupcommit.go before=createSegment",
		"manager.go before=Truncate",
		"manifest.go before=Rename",
		"prepared.go before=ReleaseAll,EscrowCommit",
		"prepared.go before=close",
		"txcoord.go before=Decide",
		"txcoord.go before=Rename",
	}
	if fmt.Sprint(durable) != fmt.Sprint(wantDurable) {
		t.Errorf("durable sites:\n got %v\nwant %v", durable, wantDurable)
	}

	sort.Strings(noalloc)
	wantNoalloc := []string{"groupcommit.go", "ops.go", "ops.go", "ops.go"}
	if fmt.Sprint(noalloc) != fmt.Sprint(wantNoalloc) {
		t.Errorf("noalloc sites:\n got %v\nwant %v", noalloc, wantNoalloc)
	}
}

func sortedKeys(m map[string]bool) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sortedCounts(m map[string]int) []string {
	var out []string
	for k, n := range m {
		out = append(out, fmt.Sprintf("%s=%d", k, n))
	}
	sort.Strings(out)
	return out
}

// writeModule lays out a throwaway on-disk module and loads it — the
// registry and escape checkers need real buildable packages, not
// type-checked fixtures.
func writeModule(t *testing.T, files map[string]string) *Module {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	m, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("loading seeded module: %v", err)
	}
	return m
}

// rpcSeedFiles is a minimal wire registry in the shape rpcsymmetry
// expects: an rpc package with Op/opNames/Sentinels, a core package with
// an exported sentinel, server dispatch, client encoding, and an
// exhaustive round-trip test.
func rpcSeedFiles() map[string]string {
	return map[string]string{
		"go.mod": "module seedrpc\n\ngo 1.22\n",
		"core/core.go": `package core

import "errors"

var ErrBusy = errors.New("busy")
`,
		"rpc/wire.go": `package rpc

import "seedrpc/core"

type Op uint8

const (
	OpHello Op = 1 + iota
	OpPut
	opMax
)

var opNames = [...]string{
	OpHello: "Hello",
	OpPut:   "Put",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "op?"
}

var Sentinels = []error{core.ErrBusy}
`,
		"server/server.go": `package server

import "seedrpc/rpc"

func Dispatch(op rpc.Op) bool {
	switch op {
	case rpc.OpHello:
		return true
	case rpc.OpPut:
		return true
	}
	return false
}
`,
		"client/client.go": `package client

import "seedrpc/rpc"

func Encode(op rpc.Op) byte {
	switch op {
	case rpc.OpHello, rpc.OpPut:
		return byte(op)
	}
	return 0
}
`,
		"rpc/rpc_test.go": `package rpc

import "testing"

func TestRoundTrip(t *testing.T) {
	for o := Op(1); o < opMax; o++ {
		if o.String() == "op?" {
			t.Fatal(o)
		}
	}
}
`,
	}
}

// TestRPCSymmetrySeeded drifts each leg of the wire registry in turn —
// dropped dispatch case, dropped name, dropped sentinel, dropped test
// coverage — and requires rpcsymmetry to catch exactly that drift.
func TestRPCSymmetrySeeded(t *testing.T) {
	cases := []struct {
		name     string
		override map[string]string
		wantMsg  string // "" = expect a clean run
	}{
		{name: "clean"},
		{
			name: "dropped-dispatch",
			override: map[string]string{"server/server.go": `package server

import "seedrpc/rpc"

func Dispatch(op rpc.Op) bool {
	switch op {
	case rpc.OpHello:
		return true
	}
	return false
}
`},
			wantMsg: "OpPut has no server dispatch case",
		},
		{
			name: "dropped-opname",
			override: map[string]string{"rpc/wire.go": `package rpc

import "seedrpc/core"

type Op uint8

const (
	OpHello Op = 1 + iota
	OpPut
	opMax
)

var opNames = [...]string{
	OpHello: "Hello",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "op?"
}

var Sentinels = []error{core.ErrBusy}
`},
			wantMsg: "OpPut has no opNames entry",
		},
		{
			name: "dropped-sentinel",
			override: map[string]string{"rpc/wire.go": `package rpc

type Op uint8

const (
	OpHello Op = 1 + iota
	OpPut
	opMax
)

var opNames = [...]string{
	OpHello: "Hello",
	OpPut:   "Put",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "op?"
}

var Sentinels = []error{}
`},
			wantMsg: "core.ErrBusy crosses the wire without a Sentinels entry",
		},
		{
			name: "dropped-test-coverage",
			override: map[string]string{"rpc/rpc_test.go": `package rpc

import "testing"

func TestHello(t *testing.T) {
	if OpHello.String() != "Hello" {
		t.Fatal("hello")
	}
}
`},
			wantMsg: "OpPut has no round-trip coverage",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			files := rpcSeedFiles()
			for name, src := range tc.override {
				files[name] = src
			}
			m := writeModule(t, files)
			r, err := NewRunner(m, []string{"rpcsymmetry"})
			if err != nil {
				t.Fatal(err)
			}
			diags := r.Run()
			if tc.wantMsg == "" {
				if len(diags) != 0 {
					t.Fatalf("clean registry produced diagnostics: %v", diags)
				}
				return
			}
			found := false
			for _, d := range diags {
				if d.Checker == "rpcsymmetry" && strings.Contains(d.Message, tc.wantMsg) {
					found = true
				}
			}
			if !found {
				t.Fatalf("seeded drift not detected: want %q in %v", tc.wantMsg, diags)
			}
		})
	}
}

// TestNoallocSeeded verifies the escape gate end to end against the real
// compiler: an annotated function that heap-allocates is flagged, and
// one that stays in registers is not.
func TestNoallocSeeded(t *testing.T) {
	m := writeModule(t, map[string]string{
		"go.mod": "module seednoalloc\n\ngo 1.22\n",
		"pkg/pkg.go": `// Package pkg exercises the noalloc escape gate.
package pkg

// Box is returned by pointer, so its literal escapes.
type Box struct{ N [4]int64 }

// Escapes heap-allocates inside an annotated function.
//
//asset:noalloc
func Escapes() *Box {
	return &Box{}
}

// Clean stays in registers.
//
//asset:noalloc
func Clean(x int) int {
	return x*2 + 1
}
`,
	})
	r, err := NewRunner(m, []string{"noalloc"})
	if err != nil {
		t.Fatal(err)
	}
	diags := r.Run()
	if len(diags) == 0 {
		t.Fatal("seeded heap escape not detected")
	}
	for _, d := range diags {
		if d.Checker != "noalloc" || !strings.Contains(d.Message, "Escapes") ||
			!strings.Contains(d.Message, "heap-allocates") {
			t.Errorf("unexpected diagnostic: %s", d)
		}
		if strings.Contains(d.Message, "Clean") {
			t.Errorf("clean function flagged: %s", d)
		}
	}
}
