package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// effects is the transitive effect summary the goroleak and forceorder
// checkers consult: unlike funcSummary (which deliberately excludes
// function literals, since charging a queued closure's locks to its
// enclosing function would drown the latch checkers in false positives),
// effects descend into literals — a termination signal raised inside a
// sync.Once.Do closure is still the caller's synchronous effect. Spawned
// goroutine bodies stay excluded: work on another stack is nobody's
// synchronous effect.
type effects struct {
	// wgDone: calls (*sync.WaitGroup).Done, directly or transitively.
	wgDone bool
	// chanSig: sends on or closes a channel — the body signals completion.
	chanSig bool
	// ctxRecv: blocks on a termination signal (a receive whose channel is
	// a Done() call or a done/stop/term/quit/close/ctx-named channel).
	ctxRecv bool
	// forces: issues a durable force — a call to a method or function
	// named Sync, SyncDir, Force, ForceDurable, or Flush (may-force:
	// name-based so interface and external callees count).
	forces  bool
	callees map[funcKey]bool
}

// forceName reports whether a callee name counts as a durable force for
// the forceorder checker's force-debt dataflow.
func forceName(name string) bool {
	switch name {
	case "Sync", "SyncDir", "Force", "ForceDurable", "Flush":
		return true
	}
	return false
}

// buildEffects computes effect summaries for every declared function:
// direct facts (descending into function literals), then a fixed point
// over the static call graph.
func buildEffects(r *Runner, pkgs []*Package) map[funcKey]*effects {
	sums := make(map[funcKey]*effects)
	for _, p := range pkgs {
		p := p
		eachFunc(p, func(decl *ast.FuncDecl) {
			fn, ok := p.Info.Defs[decl.Name].(*types.Func)
			if !ok {
				return
			}
			e := &effects{callees: make(map[funcKey]bool)}
			collectEffectFacts(r, p, decl.Body, e)
			sums[fn] = e
		})
	}
	for changed := true; changed; {
		changed = false
		for _, e := range sums {
			for callee := range e.callees {
				ce := sums[callee]
				if ce == nil {
					continue
				}
				if ce.wgDone && !e.wgDone {
					e.wgDone = true
					changed = true
				}
				if ce.chanSig && !e.chanSig {
					e.chanSig = true
					changed = true
				}
				if ce.ctxRecv && !e.ctxRecv {
					e.ctxRecv = true
					changed = true
				}
				if ce.forces && !e.forces {
					e.forces = true
					changed = true
				}
			}
		}
	}
	return sums
}

// collectEffectFacts records the direct effect facts of body, descending
// into function literals but not spawned goroutine bodies.
func collectEffectFacts(r *Runner, p *Package, body ast.Node, e *effects) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.SendStmt:
			e.chanSig = true
		case *ast.UnaryExpr:
			if v.Op == token.ARROW && signalChanExpr(v.X) {
				e.ctxRecv = true
			}
		case *ast.SelectStmt:
			for _, c := range v.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				if ch := recvChan(cc.Comm); ch != nil && signalChanExpr(ch) {
					e.ctxRecv = true
				}
			}
		case *ast.CallExpr:
			recordCallEffects(r, p, v, e)
		}
		return true
	})
}

// recordCallEffects classifies one call for the effect summary.
func recordCallEffects(r *Runner, p *Package, call *ast.CallExpr, e *effects) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := p.Info.Uses[fun].(*types.Builtin); ok {
			if b.Name() == "close" && len(call.Args) == 1 {
				e.chanSig = true
			}
			return
		}
	case *ast.SelectorExpr:
		_ = fun
	}
	fn := calleeFunc(p, call)
	if fn == nil {
		return
	}
	if forceName(fn.Name()) {
		e.forces = true
	}
	if fn.Name() == "Done" && isWaitGroupMethod(fn) {
		e.wgDone = true
	}
	if inModule(r, fn) {
		e.callees[fn] = true
	}
}

// calleeFunc resolves a call expression to its *types.Func, or nil for
// function values, closures, and conversions.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return nil
	}
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

func inModule(r *Runner, fn *types.Func) bool {
	return fn.Pkg() != nil &&
		(fn.Pkg().Path() == r.Mod.Path || strings.HasPrefix(fn.Pkg().Path(), r.Mod.Path+"/") ||
			strings.HasPrefix(fn.Pkg().Path(), "fixture/"))
}

// isWaitGroupMethod reports whether fn is a method of sync.WaitGroup.
func isWaitGroupMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// recvChan extracts the channel expression of a receive comm clause
// (`<-ch` or `x := <-ch`), or nil.
func recvChan(comm ast.Stmt) ast.Expr {
	switch s := comm.(type) {
	case *ast.ExprStmt:
		if u, ok := s.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return u.X
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if u, ok := s.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return u.X
			}
		}
	}
	return nil
}

// signalChanExpr reports whether a received-from channel expression looks
// like a termination signal: the result of a Done() call (context.Context
// and friends) or a channel whose name follows the done/stop convention.
// Name-based by design — the ctx join mechanism asserts the goroutine
// parks on a signal the spawner (or its context) controls, and the
// repo-wide convention is what makes that statically visible.
func signalChanExpr(ch ast.Expr) bool {
	ch = ast.Unparen(ch)
	if call, ok := ch.(*ast.CallExpr); ok {
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			return fun.Name == "Done"
		case *ast.SelectorExpr:
			return fun.Sel.Name == "Done"
		}
		return false
	}
	name := strings.ToLower(types.ExprString(ch))
	for _, frag := range []string{"done", "stop", "term", "quit", "close", "ctx"} {
		if strings.Contains(name, frag) {
			return true
		}
	}
	return false
}
