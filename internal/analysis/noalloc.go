package analysis

import (
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// noalloc: a function annotated //asset:noalloc (doc comment) must not
// heap-allocate in its own frame. The checker compiles each annotated
// package with `go build -gcflags=<pkg>=-m` and flags any escape-analysis
// diagnostic ("escapes to heap" / "moved to heap") whose position falls
// inside an annotated function's line range. This turns the AllocsPerRun
// spot checks into a repo-wide gate (ROADMAP item 4): the claim "the
// enqueue is allocation-free once warmed" is verified by the compiler on
// every lint run, not asserted by one benchmark.
//
// Escapes attributed to inlined callees land on the call-site line and
// are charged to the annotated function — correctly so, since the
// allocation happens in its frame. Cold paths that must allocate (error
// construction, say) are outlined into //go:noinline helpers, which are
// accounted to themselves.

var noallocRe = regexp.MustCompile(`^//\s*asset:noalloc\s*$`)

// noallocFn is one annotated function: its file and body line range.
type noallocFn struct {
	name      string
	file      string
	from, to  int
	declPos   token.Pos
	tokenFile *token.File
}

// escapeLineRe matches one compiler diagnostic line: file:line:col: msg.
var escapeLineRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// noalloc runs the escape-analysis gate over every annotated function in
// the analyzed (non-fixture) packages.
func (r *Runner) noalloc() {
	if !r.enabled("noalloc") {
		return
	}
	byPkg := make(map[string][]noallocFn)
	for _, p := range r.packages {
		if p.Fixture {
			continue // fixtures are not buildable packages
		}
		eachFunc(p, func(decl *ast.FuncDecl) {
			if !hasNoallocAnnot(decl) {
				return
			}
			start := r.Mod.Fset.Position(decl.Pos())
			end := r.Mod.Fset.Position(decl.End())
			byPkg[p.Path] = append(byPkg[p.Path], noallocFn{
				name:      decl.Name.Name,
				file:      start.Filename,
				from:      start.Line,
				to:        end.Line,
				declPos:   decl.Pos(),
				tokenFile: r.Mod.Fset.File(decl.Pos()),
			})
		})
	}
	paths := make([]string, 0, len(byPkg))
	for path := range byPkg {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		r.noallocPackage(path, byPkg[path])
	}
}

func hasNoallocAnnot(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if noallocRe.MatchString(c.Text) {
			return true
		}
	}
	return false
}

// noallocPackage compiles one package with escape diagnostics enabled
// and reports heap escapes inside annotated functions.
func (r *Runner) noallocPackage(path string, fns []noallocFn) {
	cmd := exec.Command("go", "build", "-gcflags="+path+"=-m", path)
	cmd.Dir = r.Mod.Root
	out, err := cmd.CombinedOutput()
	if err != nil {
		r.report(fns[0].declPos, "noalloc", "go build -gcflags=-m %s failed: %v: %s",
			path, err, strings.TrimSpace(string(out)))
		return
	}
	for _, line := range strings.Split(string(out), "\n") {
		m := escapeLineRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		if strings.Contains(msg, "does not escape") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(r.Mod.Root, file)
		}
		lineNo := atoiSafe(m[2])
		for _, fn := range fns {
			if fn.file != file || lineNo < fn.from || lineNo > fn.to {
				continue
			}
			pos := fn.declPos
			if fn.tokenFile != nil && lineNo <= fn.tokenFile.LineCount() {
				pos = fn.tokenFile.LineStart(lineNo)
			}
			r.report(pos, "noalloc", "//asset:noalloc function %s heap-allocates: %s", fn.name, msg)
			break
		}
	}
}

func atoiSafe(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	return n
}
