// Package errcmp is a golden fixture for the errcmp checker: sentinel
// errors are matched with errors.Is, and fmt.Errorf wraps with %w.
package errcmp

import (
	"errors"
	"fmt"
)

var ErrGone = errors.New("gone")

// compare matches a sentinel by identity.
func compare(err error) bool {
	return err == ErrGone // want `sentinel error ErrGone compared with ==`
}

// compareNeq is the negated form.
func compareNeq(err error) bool {
	return err != ErrGone // want `sentinel error ErrGone compared with !=`
}

func compareOK(err error) bool {
	return errors.Is(err, ErrGone)
}

// viaSwitch hides the identity comparison in a switch.
func viaSwitch(err error) string {
	switch err {
	case ErrGone: // want `sentinel error ErrGone matched by switch case`
		return "gone"
	}
	return ""
}

// wrapBad formats an error with a verb that breaks the unwrap chain.
func wrapBad(err error) error {
	return fmt.Errorf("op failed: %v", err) // want `error value formatted with %v in fmt\.Errorf`
}

func wrapOK(err error) error {
	return fmt.Errorf("op failed: %w", err)
}

// mixedArgs: only the error argument position matters.
func mixedArgs(err error, n int) error {
	return fmt.Errorf("attempt %d: %s", n, err) // want `error value formatted with %s in fmt\.Errorf`
}

// nilOK: comparing against nil is the normal presence check.
func nilOK(err error) bool {
	return err == nil
}

// suppressed shows a reasoned exception.
func suppressed(err error) bool {
	//lint:allow errcmp comparing identity on purpose: sentinel is never wrapped
	return err == ErrGone
}
