// Package holdblock is a golden fixture for the holdblock checker: no
// blocking operation may run while a spin-annotated latch is held.
package holdblock

import (
	"fmt"
	"sync"
	"time"
)

type table struct {
	//asset:latch order=10 spin
	lat sync.Mutex
	aux sync.Mutex // unannotated
	n   int
}

// sleeps parks the CPU while every other contender spins.
func sleeps(t *table) {
	t.lat.Lock()
	time.Sleep(time.Millisecond) // want `call to time\.Sleep while holding spin latch holdblock\.table\.lat`
	t.lat.Unlock()
}

// sends performs a channel rendezvous under the latch.
func sends(t *table, ch chan int) {
	t.lat.Lock()
	ch <- 1 // want `channel send while holding spin latch`
	t.lat.Unlock()
}

// receives blocks on a channel read under the latch.
func receives(t *table, ch chan int) {
	t.lat.Lock()
	<-ch // want `channel receive while holding spin latch`
	t.lat.Unlock()
}

// prints does I/O under the latch.
func prints(t *table) {
	t.lat.Lock()
	fmt.Println(t.n) // want `call to fmt\.Println while holding spin latch`
	t.lat.Unlock()
}

// locksAux acquires an order-opaque lock under the spin latch.
func locksAux(t *table) {
	t.lat.Lock()
	t.aux.Lock() // want `acquires unannotated lock "t\.aux" while holding spin latch`
	t.aux.Unlock()
	t.lat.Unlock()
}

func helper(ch chan int) { <-ch }

// transitive blocks through a callee.
func transitive(t *table, ch chan int) {
	t.lat.Lock()
	helper(ch) // want `may block .* while holding spin latch`
	t.lat.Unlock()
}

// nonBlockingOK: plain computation under the latch is fine, as is the same
// blocking call made after release.
func nonBlockingOK(t *table, ch chan int) {
	t.lat.Lock()
	t.n++
	t.lat.Unlock()
	ch <- t.n
}

// condOK: sync.Cond.Wait is the sanctioned parking primitive.
func condOK(t *table, c *sync.Cond) {
	t.lat.Lock()
	for t.n == 0 {
		c.Wait()
	}
	t.lat.Unlock()
}

// suppressed shows a reasoned exception.
func suppressed(t *table, ch chan int) {
	t.lat.Lock()
	//lint:allow holdblock buffered channel sized for worst case, cannot block
	ch <- 1
	t.lat.Unlock()
}
