// Package goroleak is a golden fixture for the goroleak checker: every
// go statement declares its join mechanism with //asset:goroutine, and
// the checker verifies the declared evidence against the spawned body —
// transitively, via effect summaries.
package goroleak

import (
	"context"
	"sync"
)

// joinedByWaitGroup is the canonical shape: Add precedes the spawn,
// Done in the body, Wait joins.
func joinedByWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	//asset:goroutine joined-by=waitgroup
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// missingDone declares a waitgroup join whose body never calls Done.
func missingDone(wg *sync.WaitGroup) {
	wg.Add(1)
	//asset:goroutine joined-by=waitgroup
	go func() { // want `never calls WaitGroup\.Done`
	}()
}

// missingAdd has Done in the body but no Add before the spawn, so Wait
// cannot observe the count.
func missingAdd(wg *sync.WaitGroup) {
	//asset:goroutine joined-by=waitgroup
	go func() { // want `no WaitGroup\.Add call precedes the go statement`
		wg.Done()
	}()
}

// joinedByChannel closes its completion channel.
func joinedByChannel() chan struct{} {
	done := make(chan struct{})
	//asset:goroutine joined-by=channel
	go func() {
		close(done)
	}()
	return done
}

// signaller carries the join evidence for joinedNamed.
func signaller(done chan<- struct{}) { done <- struct{}{} }

// joinedNamed spawns a named function; the evidence comes from its
// transitive effect summary.
func joinedNamed() {
	done := make(chan struct{})
	//asset:goroutine joined-by=channel
	go signaller(done)
	<-done
}

// noSignal declares a channel join whose body never signals.
func noSignal() {
	//asset:goroutine joined-by=channel
	go func() { // want `never sends on or closes a channel`
	}()
}

// joinedByCtx parks on the context's termination signal.
func joinedByCtx(ctx context.Context) {
	//asset:goroutine joined-by=ctx
	go func() {
		<-ctx.Done()
	}()
}

// joinedByStopChan parks on a stop-named signal channel.
func joinedByStopChan(stop chan struct{}) {
	//asset:goroutine joined-by=ctx
	go func() {
		<-stop
	}()
}

// unannotated spawns carry no declared join at all.
func unannotated() {
	go func() {}() // want `unannotated go statement`
}

// fireAndForget spawns a function value: opaque to the checker, so the
// decision is recorded with an explicit allow instead.
func fireAndForget(f func()) {
	//lint:allow goroleak fixture callback; the callee owns its lifetime
	go f()
}
