// Package atomicmix is a golden fixture for the atomicmix checker: a field
// touched through sync/atomic anywhere must be touched that way everywhere.
package atomicmix

import "sync/atomic"

type counters struct {
	hits  uint64
	total uint64 // never touched atomically: plain access is fine
}

func bump(c *counters) {
	atomic.AddUint64(&c.hits, 1)
}

// read mixes a plain load into an atomically-written field.
func read(c *counters) uint64 {
	return c.hits // want `field hits is accessed with sync/atomic elsewhere`
}

// write mixes a plain store.
func write(c *counters) {
	c.hits = 0 // want `field hits is accessed with sync/atomic elsewhere`
}

func readOK(c *counters) uint64 {
	return atomic.LoadUint64(&c.hits)
}

func plainOnly(c *counters) uint64 {
	return c.total
}

// suppressed shows a reasoned exception.
func suppressed(c *counters) uint64 {
	//lint:allow atomicmix constructor runs before any goroutine exists
	return c.hits
}
