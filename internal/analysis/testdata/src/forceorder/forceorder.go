// Package forceorder is a golden fixture for the forceorder checker: a
// function annotated //asset:durable before=<event> must dominate each
// direct call to the event with a durable force on every path.
package forceorder

type log struct{}

// Flush is a durable force by name, like wal.Log.Flush.
func (l *log) Flush() {}

type locks struct{}

// ReleaseAll is the release event, like lock.Manager.ReleaseAll.
func (l *locks) ReleaseAll() {}

// good forces before releasing.
//
//asset:durable before=ReleaseAll
func good(l *log, lk *locks) {
	l.Flush()
	lk.ReleaseAll()
}

// bad releases first: the commit would be visible before it is durable.
//
//asset:durable before=ReleaseAll
func bad(l *log, lk *locks) {
	lk.ReleaseAll() // want `releases "ReleaseAll" before a durable force`
	l.Flush()
}

// earlyReturn bails before the event; the abort path owes no force.
//
//asset:durable before=ReleaseAll
func earlyReturn(l *log, lk *locks, fail bool) {
	if fail {
		return
	}
	l.Flush()
	lk.ReleaseAll()
}

// halfForced forces on only one arm of the fork, so the merge point is
// unforced.
//
//asset:durable before=ReleaseAll
func halfForced(l *log, lk *locks, ok bool) {
	if ok {
		l.Flush()
	}
	lk.ReleaseAll() // want `releases "ReleaseAll" before a durable force`
}

// helperForce carries the force through a callee's effect summary.
func helperForce(l *log) { l.Flush() }

// forceViaHelper is forced transitively, not by a direct Flush.
//
//asset:durable before=ReleaseAll
func forceViaHelper(l *log, lk *locks) {
	helperForce(l)
	lk.ReleaseAll()
}

// gate names the builtin close as its event: the ack gate must not open
// before the vote is durable.
//
//asset:durable before=close
func gate(l *log, ack chan struct{}) {
	l.Flush()
	close(ack)
}

// spawns launches the release in a goroutine after forcing: the
// spawn-time state dominates the inlined body.
//
//asset:durable before=ReleaseAll
func spawns(l *log, lk *locks, done chan struct{}) {
	l.Flush()
	//asset:goroutine joined-by=channel
	go func() {
		lk.ReleaseAll()
		close(done)
	}()
}

// spawnsUnforced launches the release before the force lands.
//
//asset:durable before=ReleaseAll
func spawnsUnforced(l *log, lk *locks, done chan struct{}) {
	//asset:goroutine joined-by=channel
	go func() {
		lk.ReleaseAll() // want `releases "ReleaseAll" before a durable force`
		close(done)
	}()
	l.Flush()
}

// loopBody re-releases each iteration, but the force lands late: the
// next iteration's entry (and the first) runs unforced.
//
//asset:durable before=ReleaseAll
func loopBody(l *log, lk *locks, n int) {
	for i := 0; i < n; i++ {
		lk.ReleaseAll() // want `releases "ReleaseAll" before a durable force`
		l.Flush()
	}
}
