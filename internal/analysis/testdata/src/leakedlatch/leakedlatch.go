// Package leakedlatch is a golden fixture for the leakedlatch checker. The
// checker applies to every mutex, annotated or not.
package leakedlatch

import (
	"errors"
	"sync"
)

type guarded struct {
	mu  sync.Mutex
	val int
}

var errBad = errors.New("bad")

// leaky is the canonical bug: an early return with the Unlock removed.
func leaky(g *guarded, fail bool) error {
	g.mu.Lock()
	if fail {
		return errBad // want `return while "g\.mu" is still locked`
	}
	g.mu.Unlock()
	return nil
}

// balanced unlocks on every path by hand.
func balanced(g *guarded, fail bool) error {
	g.mu.Lock()
	if fail {
		g.mu.Unlock()
		return errBad
	}
	g.mu.Unlock()
	return nil
}

// deferred is covered on every path by the defer.
func deferred(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.val
}

// panicLeak escapes through a panic with the latch held.
func panicLeak(g *guarded, n int) {
	g.mu.Lock()
	if n < 0 {
		panic("negative") // want `panic while "g\.mu" is still locked`
	}
	g.mu.Unlock()
}

// funcEnd falls off the end of the function still holding the latch.
func funcEnd(g *guarded) {
	g.mu.Lock()
	g.val++
} // want `function end while "g\.mu" is still locked`

// relock releases and reacquires under an up-front defer (the pattern used
// around blocking sections); the defer still covers the second hold.
func relock(g *guarded) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.mu.Unlock()
	err := sideEffect()
	g.mu.Lock()
	if err != nil {
		return err
	}
	g.val++
	return nil
}

func sideEffect() error { return nil }

// suppressedLeak hands the latch to the caller on purpose.
func suppressedLeak(g *guarded) {
	g.mu.Lock()
	g.val++
	//lint:allow leakedlatch lock handoff: caller releases via unlock helper
}
