// Package latchorder is a golden fixture for the latchorder checker.
package latchorder

import "sync"

type low struct {
	//asset:latch order=10
	mu sync.Mutex
}

type high struct {
	//asset:latch order=20
	mu sync.Mutex
}

// ascending is the sanctioned shape: strictly increasing order numbers.
func ascending(a *low, b *high) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// descending reorders the two acquisitions and must fail.
func descending(a *low, b *high) {
	b.mu.Lock()
	a.mu.Lock() // want `acquires latchorder\.low\.mu \(order 10\) while holding latchorder\.high\.mu \(order 20\)`
	a.mu.Unlock()
	b.mu.Unlock()
}

// twoOfAKind holds two instances of one class: never in ascending order.
func twoOfAKind(x, y *high) {
	x.mu.Lock()
	y.mu.Lock() // want `at most one latch of a class may be held`
	y.mu.Unlock()
	x.mu.Unlock()
}

func lockLow(a *low) {
	a.mu.Lock()
	a.mu.Unlock()
}

// transitive violates the order through a callee.
func transitive(a *low, b *high) {
	b.mu.Lock()
	lockLow(a) // want `may acquire latchorder\.low\.mu \(order 10\) while holding latchorder\.high\.mu \(order 20\)`
	b.mu.Unlock()
}

// loopGain stacks one class across iterations (the all-shard freeze shape).
func loopGain(hs []*high) {
	defer func() {
		for i := range hs {
			hs[i].mu.Unlock()
		}
	}()
	for i := range hs {
		hs[i].mu.Lock() // want `acquired in a loop without release`
	}
}

// suppressed shows a reasoned //lint:allow exception.
func suppressed(a *low, b *high) {
	b.mu.Lock()
	//lint:allow latchorder fixture demonstrates a reasoned exception
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}
