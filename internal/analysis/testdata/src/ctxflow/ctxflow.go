// Package ctxflow is a golden fixture for the ctxflow checker: a function
// that receives a context must use the Ctx variant of any primitive that has
// one.
package ctxflow

import "context"

type store struct{ n int }

func (s *store) Wait()                       { s.n++ }
func (s *store) WaitCtx(ctx context.Context) { s.n++ }
func (s *store) Poke()                       { s.n++ }

func begin()                       {}
func beginCtx(ctx context.Context) { _ = ctx }

// driver drops its context on the floor.
func driver(ctx context.Context, s *store) {
	s.Wait() // want `calls Wait in a context-bearing function; WaitCtx exists`
	s.WaitCtx(ctx)
	s.Poke() // no Ctx variant: fine
}

// pkgLevel drops the context on a package-level call.
func pkgLevel(ctx context.Context) {
	begin() // want `calls begin in a context-bearing function; beginCtx exists`
	beginCtx(ctx)
}

// noCtx has no context, so the plain variants are the right ones.
func noCtx(s *store) {
	s.Wait()
	begin()
}

// nested function literals may legitimately outlive the caller's context.
func detached(ctx context.Context, s *store) func() {
	return func() {
		s.Wait()
	}
}

// suppressed shows a reasoned exception.
func suppressed(ctx context.Context, s *store) {
	//lint:allow ctxflow teardown must run to completion even when cancelled
	s.Wait()
}
