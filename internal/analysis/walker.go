package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// This file implements the latchorder, leakedlatch, and holdblock checkers.
// They share one abstract interpretation: every function body is walked in
// source order with a stack of currently-held latches. Branches fork the
// held set and merge conservatively; a branch that ends in return/panic/
// break/continue contributes nothing past its end. The model is deliberately
// optimistic about what it cannot resolve (interface calls, callbacks,
// goroutine bodies): a finding it does report is close to certainly real.

// heldEntry is one latch currently held on the walked path.
type heldEntry struct {
	class    *LatchClass // nil for unannotated mutexes
	key      string      // printed operand expression, e.g. "s.lat"
	rlock    bool
	deferred bool // a defer guarantees release on every exit
	pos      token.Pos
}

// lockFX is one lock/unlock a local closure performs on captured state.
type lockFX struct {
	class *LatchClass
	key   string
	rlock bool
}

// closureFX summarizes a local closure's direct effect on captured latches,
// so `return exit(err)` patterns — where the unlock lives in the closure —
// do not read as leaks.
type closureFX struct {
	locks   []lockFX
	unlocks []lockFX
}

// flowWalker walks one function (or function literal).
type flowWalker struct {
	r        *Runner
	p        *Package
	fname    string
	held     []heldEntry
	closures map[types.Object]*closureFX
	queue    *[]*ast.FuncLit // pending function literals, analyzed standalone
	queued   map[*ast.FuncLit]bool
	// debt holds keys of caller-held locks this function released (an
	// unmatched Unlock): a later Lock on the same key restores the caller's
	// hold rather than acquiring anew — the xxxLocked unlock/relock pattern
	// around a blocking section.
	debt []string
	// deferredKeys records keys with a registered deferred unlock; once a
	// defer covers a key, every re-acquisition of it is covered too (the
	// unlock/relock-under-defer pattern). Shared across forks: monotone over
	// the function.
	deferredKeys map[string]bool
}

// runFlow runs the three latch checkers over every function of p.
func (r *Runner) runFlow(p *Package) {
	eachFunc(p, func(decl *ast.FuncDecl) {
		var queue []*ast.FuncLit
		w := &flowWalker{
			r: r, p: p, fname: decl.Name.Name,
			closures: prescanClosures(r, p, decl.Body),
			queue:    &queue, queued: make(map[*ast.FuncLit]bool),
			deferredKeys: make(map[string]bool),
		}
		w.walkTop(decl.Body)
		// Function literals run on their own stacks (goroutines, timers,
		// callbacks) or at call sites handled via closure effects; analyze
		// each as an independent function with an empty held set.
		for i := 0; i < len(queue); i++ {
			lit := queue[i]
			lw := &flowWalker{
				r: r, p: p, fname: w.fname + ".func",
				closures: prescanClosures(r, p, lit.Body),
				queue:    &queue, queued: w.queued,
				deferredKeys: make(map[string]bool),
			}
			lw.walkTop(lit.Body)
		}
	})
}

func (w *flowWalker) walkTop(body *ast.BlockStmt) {
	if !w.stmts(body.List) {
		w.leakCheck(body.Rbrace, "function end")
	}
}

// prescanClosures records, for every `name := func(...){...}` in the body,
// the locks and unlocks the literal performs on captured latches.
func prescanClosures(r *Runner, p *Package, body *ast.BlockStmt) map[types.Object]*closureFX {
	out := make(map[types.Object]*closureFX)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			lit, ok := rhs.(*ast.FuncLit)
			if !ok {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := p.Info.Defs[id]
			if obj == nil {
				obj = p.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			fx := &closureFX{}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if _, isLit := m.(*ast.FuncLit); isLit {
					return false
				}
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				ci := r.classifyCall(p, call)
				if ci.lockOp == "" || ci.recvExpr == nil {
					return true
				}
				e := lockFX{class: ci.class, key: types.ExprString(ci.recvExpr)}
				switch ci.lockOp {
				case "Lock":
					fx.locks = append(fx.locks, e)
				case "RLock":
					e.rlock = true
					fx.locks = append(fx.locks, e)
				case "Unlock":
					fx.unlocks = append(fx.unlocks, e)
				case "RUnlock":
					e.rlock = true
					fx.unlocks = append(fx.unlocks, e)
				}
				return true
			})
			if len(fx.locks)+len(fx.unlocks) > 0 {
				out[obj] = fx
			}
		}
		return true
	})
	return out
}

func (w *flowWalker) fork() *flowWalker {
	cp := *w
	cp.held = append([]heldEntry(nil), w.held...)
	cp.debt = append([]string(nil), w.debt...)
	return &cp
}

// mergeHeld joins two branch outcomes: a latch counts as held afterwards if
// either branch may still hold it (over-approximating held keeps the order
// checks sound for the paths that matter).
func mergeHeld(a, b []heldEntry) []heldEntry {
	out := append([]heldEntry(nil), a...)
	count := func(list []heldEntry, key string) int {
		n := 0
		for _, h := range list {
			if h.key == key {
				n++
			}
		}
		return n
	}
	for _, h := range b {
		if count(out, h.key) < count(b, h.key) {
			out = append(out, h)
		}
	}
	return out
}

// stmts walks a statement list; true means the path terminated (return,
// panic, or branch out) and nothing after it on this path executes.
func (w *flowWalker) stmts(list []ast.Stmt) bool {
	for _, s := range list {
		if w.stmt(s) {
			return true
		}
	}
	return false
}

func (w *flowWalker) stmt(s ast.Stmt) bool {
	switch v := s.(type) {
	case *ast.ExprStmt:
		if call, ok := v.X.(*ast.CallExpr); ok {
			if w.call(call) { // panic()
				w.leakCheck(v.Pos(), "panic")
				return true
			}
			return false
		}
		w.expr(v.X)
	case *ast.AssignStmt:
		for _, e := range v.Rhs {
			w.expr(e)
		}
		for _, e := range v.Lhs {
			w.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.expr(v.X)
	case *ast.ReturnStmt:
		for _, e := range v.Results {
			w.expr(e)
		}
		w.leakCheck(v.Pos(), "return")
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave the linear path; fallthrough stays.
		return v.Tok != token.FALLTHROUGH
	case *ast.BlockStmt:
		return w.stmts(v.List)
	case *ast.LabeledStmt:
		return w.stmt(v.Stmt)
	case *ast.IfStmt:
		if v.Init != nil {
			w.stmt(v.Init)
		}
		w.expr(v.Cond)
		thenW := w.fork()
		thenTerm := thenW.stmts(v.Body.List)
		if v.Else == nil {
			if !thenTerm {
				w.held = mergeHeld(w.held, thenW.held)
			}
			return false
		}
		elseW := w.fork()
		elseTerm := elseW.stmt(v.Else)
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			w.held = elseW.held
		case elseTerm:
			w.held = thenW.held
		default:
			w.held = mergeHeld(thenW.held, elseW.held)
		}
	case *ast.ForStmt:
		if v.Init != nil {
			w.stmt(v.Init)
		}
		w.expr(v.Cond)
		w.loopBody(v.Body, v.Post)
		// A `for {}` with no break never falls through: every live path exits
		// via return/panic inside the body (each already leak-checked), so
		// nothing after the loop executes.
		if v.Cond == nil && !hasLoopExit(v.Body) {
			return true
		}
	case *ast.RangeStmt:
		w.expr(v.X)
		if isChanType(w.p, v.X) {
			w.holdblockOp(v.X.Pos(), "range over channel")
		}
		w.loopBody(v.Body, nil)
	case *ast.SwitchStmt:
		if v.Init != nil {
			w.stmt(v.Init)
		}
		w.expr(v.Tag)
		w.caseClauses(v.Body.List)
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			w.stmt(v.Init)
		}
		w.caseClauses(v.Body.List)
	case *ast.SelectStmt:
		if !selectHasDefault(v) {
			w.holdblockOp(v.Pos(), "blocking select")
		}
		w.caseClauses(v.Body.List)
	case *ast.SendStmt:
		w.expr(v.Chan)
		w.expr(v.Value)
		w.holdblockOp(v.Pos(), "channel send")
	case *ast.GoStmt:
		// The goroutine body runs on another stack; queue any literal for
		// standalone analysis and charge nothing to this path.
		if lit, ok := v.Call.Fun.(*ast.FuncLit); ok {
			w.enqueue(lit)
		}
		for _, a := range v.Call.Args {
			w.expr(a)
		}
	case *ast.DeferStmt:
		w.deferStmt(v)
	}
	return false
}

// loopBody walks a loop body once and continues with the union of the entry
// and exit states. A net gain of an annotated latch across one iteration
// means successive iterations stack instances of the same class — the
// multi-instance pattern the ≤1-shard rule forbids.
func (w *flowWalker) loopBody(body *ast.BlockStmt, post ast.Stmt) {
	entry := append([]heldEntry(nil), w.held...)
	bw := w.fork()
	term := bw.stmts(body.List)
	if post != nil && !term {
		bw.stmt(post)
	}
	if term {
		return
	}
	for _, cls := range classCounts(bw.held) {
		if cls.n > classCount(entry, cls.class) {
			w.r.report(cls.pos, "latchorder",
				"%s (order %d) acquired in a loop without release: successive iterations hold multiple instances (≤1-latch rule)",
				cls.class.Name, cls.class.Order)
		}
	}
	w.held = mergeHeld(w.held, bw.held)
}

type classTally struct {
	class *LatchClass
	n     int
	pos   token.Pos
}

func classCounts(held []heldEntry) []classTally {
	var out []classTally
	for _, h := range held {
		if h.class == nil {
			continue
		}
		found := false
		for i := range out {
			if out[i].class == h.class {
				out[i].n++
				found = true
			}
		}
		if !found {
			out = append(out, classTally{h.class, 1, h.pos})
		}
	}
	return out
}

func classCount(held []heldEntry, c *LatchClass) int {
	n := 0
	for _, h := range held {
		if h.class == c {
			n++
		}
	}
	return n
}

// caseClauses walks switch/select clause bodies as parallel branches.
func (w *flowWalker) caseClauses(list []ast.Stmt) {
	merged := append([]heldEntry(nil), w.held...)
	for _, c := range list {
		cw := w.fork()
		var body []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				cw.expr(e)
			}
			body = cc.Body
		case *ast.CommClause:
			if cc.Comm != nil {
				cw.stmt(cc.Comm)
			}
			body = cc.Body
		}
		if !cw.stmts(body) {
			merged = mergeHeld(merged, cw.held)
		}
	}
	w.held = merged
}

// deferStmt handles defers: a deferred Unlock (directly or inside a deferred
// closure) guarantees release on every exit path of the function.
func (w *flowWalker) deferStmt(d *ast.DeferStmt) {
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		w.enqueue(lit)
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit && n != lit {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				ci := w.r.classifyCall(w.p, call)
				if (ci.lockOp == "Unlock" || ci.lockOp == "RUnlock") && ci.recvExpr != nil {
					w.markDeferred(types.ExprString(ci.recvExpr))
				}
			}
			return true
		})
		return
	}
	ci := w.r.classifyCall(w.p, d.Call)
	if (ci.lockOp == "Unlock" || ci.lockOp == "RUnlock") && ci.recvExpr != nil {
		w.markDeferred(types.ExprString(ci.recvExpr))
		return
	}
	for _, a := range d.Call.Args {
		w.expr(a)
	}
}

func (w *flowWalker) markDeferred(key string) {
	w.deferredKeys[key] = true
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i].key == key && !w.held[i].deferred {
			w.held[i].deferred = true
			return
		}
	}
}

// expr walks an expression in evaluation order, dispatching calls and
// channel receives.
func (w *flowWalker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			w.enqueue(v)
			return false
		case *ast.CallExpr:
			w.call(v)
			return false
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				w.holdblockOp(v.Pos(), "channel receive")
			}
		}
		return true
	})
}

// call processes one call expression (operands first) and reports true if
// it is a call to panic.
func (w *flowWalker) call(c *ast.CallExpr) bool {
	if se, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok {
		w.expr(se.X)
	} else if _, ok := ast.Unparen(c.Fun).(*ast.Ident); !ok {
		w.expr(c.Fun)
	}
	for _, a := range c.Args {
		w.expr(a)
	}

	ci := w.r.classifyCall(w.p, c)
	if ci.isPanic {
		return true
	}
	if ci.lockOp != "" {
		key := ""
		if ci.recvExpr != nil {
			key = types.ExprString(ci.recvExpr)
		}
		switch ci.lockOp {
		case "Lock", "RLock":
			w.acquire(c.Pos(), ci, key)
		case "Unlock", "RUnlock":
			w.release(key)
			// TryLock/TryRLock never block and are not tracked: the typical
			// `if l.TryLock()` guard would otherwise poison the held set.
		}
		return false
	}
	if ci.condWait {
		return false // Cond.Wait releases and reacquires its latch; sanctioned
	}
	// A call to a local closure applies its recorded lock effects here.
	if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok {
		if obj := w.p.Info.Uses[id]; obj != nil {
			if fx, ok := w.closures[obj]; ok {
				for _, u := range fx.unlocks {
					w.release(u.key)
				}
				for _, l := range fx.locks {
					w.acquire(c.Pos(), callInfo{class: l.class}, l.key)
				}
				return false
			}
		}
	}
	if ci.callee != nil {
		// Summaries exist for every analyzed function (module and fixtures);
		// absence means an external callee, where only the blocking-stdlib
		// classification applies.
		if sum := w.r.summary[ci.callee]; sum != nil {
			w.checkCallSummary(c.Pos(), sum)
		} else if ci.blocking {
			w.holdblockOp(c.Pos(), "call to "+ci.callee.FullName())
		}
	}
	return false
}

// hasLoopExit reports whether a loop body contains a break or goto that
// could leave the loop: an unlabeled break outside nested breakable
// statements, or (conservatively) any labeled break or goto.
func hasLoopExit(body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node, breakable bool)
	walk = func(n ast.Node, breakable bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if found {
				return false
			}
			switch v := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				if m == n {
					return true // the node walk() was called on itself
				}
				walk(m, true)
				return false
			case *ast.BranchStmt:
				switch v.Tok {
				case token.GOTO:
					found = true
				case token.BREAK:
					if v.Label != nil || !breakable {
						found = true
					}
				}
			}
			return true
		})
	}
	walk(body, false)
	return found
}

// acquire pushes a latch and runs the order checks.
func (w *flowWalker) acquire(pos token.Pos, ci callInfo, key string) {
	// A Lock on a key this function previously unlocked without holding it
	// restores the caller's hold (the xxxLocked unlock/relock pattern); it is
	// the caller's lock, not a new acquisition.
	for i, d := range w.debt {
		if d == key {
			w.debt = append(w.debt[:i], w.debt[i+1:]...)
			return
		}
	}
	if ci.class != nil {
		for _, h := range w.held {
			if h.class == nil {
				continue
			}
			if h.class == ci.class {
				w.r.report(pos, "latchorder",
					"acquires %s (order %d) while already holding %s (locked at %s): at most one latch of a class may be held",
					ci.class.Name, ci.class.Order, h.key, w.fpos(h.pos))
			} else if ci.class.Order <= h.class.Order {
				w.r.report(pos, "latchorder",
					"acquires %s (order %d) while holding %s (order %d): latch order requires strictly ascending acquisition",
					ci.class.Name, ci.class.Order, h.class.Name, h.class.Order)
			}
		}
	} else if w.spinHeld() != nil && ci.shared {
		s := w.spinHeld()
		w.r.report(pos, "holdblock",
			"acquires unannotated lock %q while holding spin latch %s: annotate it with //asset:latch or restructure",
			key, s.class.Name)
	}
	w.held = append(w.held, heldEntry{
		class: ci.class, key: key, rlock: ci.lockOp == "RLock", pos: pos,
		// A defer already registered for this key covers re-acquisitions too
		// (unlock/relock under an up-front defer).
		deferred: w.deferredKeys[key],
	})
}

// release pops the most recent hold of key. An unmatched unlock releases a
// lock the caller holds (xxxLocked convention); recording it as debt lets
// the matching re-lock cancel out instead of reading as a fresh acquisition.
func (w *flowWalker) release(key string) {
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i].key == key {
			w.held = append(w.held[:i], w.held[i+1:]...)
			return
		}
	}
	w.debt = append(w.debt, key)
}

// checkCallSummary applies a callee's transitive summary at a call site made
// with latches held.
func (w *flowWalker) checkCallSummary(pos token.Pos, sum *funcSummary) {
	if len(w.held) == 0 {
		return
	}
	for _, h := range w.held {
		if h.class == nil {
			continue
		}
		for c := range sum.acquires {
			if c == h.class {
				w.r.report(pos, "latchorder",
					"call to %s may acquire %s (order %d) while %s is already held (≤1-latch rule)",
					sum.name, c.Name, c.Order, h.key)
			} else if c.Order <= h.class.Order {
				w.r.report(pos, "latchorder",
					"call to %s may acquire %s (order %d) while holding %s (order %d): latch order violation",
					sum.name, c.Name, c.Order, h.class.Name, h.class.Order)
			}
		}
	}
	if s := w.spinHeld(); s != nil {
		if sum.blocks {
			w.r.report(pos, "holdblock",
				"call to %s may block (channel/I/O/sleep) while holding spin latch %s", sum.name, s.class.Name)
		}
		if sum.acquiresUnannotated {
			w.r.report(pos, "holdblock",
				"call to %s acquires an unannotated lock while holding spin latch %s", sum.name, s.class.Name)
		}
	}
}

// holdblockOp reports a directly blocking operation performed under a spin
// latch.
func (w *flowWalker) holdblockOp(pos token.Pos, what string) {
	if s := w.spinHeld(); s != nil {
		w.r.report(pos, "holdblock",
			"%s while holding spin latch %s (locked at %s)", what, s.class.Name, w.fpos(s.pos))
	}
}

// spinHeld returns a currently held spin-annotated latch, or nil.
func (w *flowWalker) spinHeld() *heldEntry {
	for i := range w.held {
		if w.held[i].class != nil && w.held[i].class.Spin {
			return &w.held[i]
		}
	}
	return nil
}

// leakCheck fires at every path exit: anything still held without a defer
// leaks past this return/panic.
func (w *flowWalker) leakCheck(pos token.Pos, kind string) {
	for _, h := range w.held {
		if h.deferred {
			continue
		}
		w.r.report(pos, "leakedlatch",
			"%s while %q is still locked (acquired at %s) with no deferred unlock on this path", kind, h.key, w.fpos(h.pos))
	}
}

func (w *flowWalker) enqueue(lit *ast.FuncLit) {
	if !w.queued[lit] {
		w.queued[lit] = true
		*w.queue = append(*w.queue, lit)
	}
}

func (w *flowWalker) fpos(pos token.Pos) string {
	p := w.r.Mod.Fset.Position(pos)
	return fmt.Sprintf("line %d", p.Line)
}
