package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// forceorder: mechanizes the decide-before-release / seal-before-publish
// durability rules (DESIGN.md §11/§14). A function annotated
//
//	//asset:durable before=<event>[,<event>...]
//
// promises that on every path, each direct call to a named event — the
// point where a verdict, ack, or manifest becomes visible to others —
// is dominated by a durable force: a call to Sync/SyncDir/Force/
// ForceDurable/Flush, directly or through a module callee whose
// transitive effect summary may force (a may-force model: the checker
// errs toward trusting callees, like the rest of the analyzer).
//
// Events match direct calls only. That is deliberate: an abort path
// calling abortLocked — which transitively releases locks — owes no
// force, while the success path's own ReleaseAll does. The annotation
// names exactly the publication calls the function itself makes.
//
// Goroutine literals launched inside an annotated function are analyzed
// inline at the spawn point: a force dominating the spawn dominates the
// body (the coordinator's verdict-delivery goroutines are the motivating
// case — decide() forces the decision log before they exist).

var durableRe = regexp.MustCompile(`^//\s*asset:durable\b(.*)$`)

// durableAnnot is one annotated function: the events whose direct calls
// must be force-dominated.
type durableAnnot struct {
	events map[string]bool
}

// forceorder checks every annotated function declaration in the package.
func (r *Runner) forceorder(p *Package) {
	if !r.enabled("forceorder") {
		return
	}
	eachFunc(p, func(decl *ast.FuncDecl) {
		a := r.durableAnnotOf(p, decl)
		if a == nil {
			return
		}
		w := &forceWalker{r: r, p: p, annot: a, fn: decl.Name.Name}
		w.stmts(decl.Body.List, false)
	})
}

// durableAnnotOf parses the //asset:durable annotation from a function's
// doc comment, reporting malformed ones.
func (r *Runner) durableAnnotOf(p *Package, decl *ast.FuncDecl) *durableAnnot {
	if decl.Doc == nil {
		return nil
	}
	for _, c := range decl.Doc.List {
		m := durableRe.FindStringSubmatch(c.Text)
		if m == nil {
			continue
		}
		rest := strings.TrimSpace(m[1])
		const prefix = "before="
		if !strings.HasPrefix(rest, prefix) {
			r.report(c.Pos(), "forceorder", "bad //asset:durable annotation: missing before=<event>[,<event>...]")
			return nil
		}
		a := &durableAnnot{events: make(map[string]bool)}
		for _, ev := range strings.Split(rest[len(prefix):], ",") {
			ev = strings.TrimSpace(ev)
			if ev == "" {
				r.report(c.Pos(), "forceorder", "bad //asset:durable annotation: empty event name")
				return nil
			}
			a.events[ev] = true
		}
		return a
	}
	return nil
}

// forceWalker runs the force-debt dataflow over one annotated function:
// `forced` is true when every execution reaching the current point has
// passed a durable force. Fork points (if/switch/select) merge with AND;
// terminating branches (return/panic) drop out of the merge, so an
// error path that bails before the event owes nothing.
type forceWalker struct {
	r     *Runner
	p     *Package
	annot *durableAnnot
	fn    string
}

// stmts walks a statement list from the entry state and returns the exit
// state plus whether the list terminates (cannot fall through).
func (w *forceWalker) stmts(list []ast.Stmt, forced bool) (exit bool, terminated bool) {
	for _, s := range list {
		forced, terminated = w.stmt(s, forced)
		if terminated {
			return forced, true
		}
	}
	return forced, false
}

// stmt walks one statement and returns the updated state and whether the
// statement terminates the path.
func (w *forceWalker) stmt(s ast.Stmt, forced bool) (bool, bool) {
	switch v := s.(type) {
	case *ast.ReturnStmt:
		forced = w.scan(v, forced)
		return forced, true
	case *ast.BranchStmt:
		// break/continue/goto leave this walker's straight-line view;
		// treat as terminating the current path (conservative for merges).
		return forced, true
	case *ast.IfStmt:
		if v.Init != nil {
			forced = w.scan(v.Init, forced)
		}
		forced = w.scan(v.Cond, forced)
		thenExit, thenTerm := w.stmts(v.Body.List, forced)
		elseExit, elseTerm := forced, false
		switch e := v.Else.(type) {
		case *ast.BlockStmt:
			elseExit, elseTerm = w.stmts(e.List, forced)
		case *ast.IfStmt:
			elseExit, elseTerm = w.stmt(e, forced)
		}
		switch {
		case thenTerm && elseTerm:
			return forced, true
		case thenTerm:
			return elseExit, false
		case elseTerm:
			return thenExit, false
		default:
			return thenExit && elseExit, false
		}
	case *ast.BlockStmt:
		return w.stmts(v.List, forced)
	case *ast.ForStmt:
		if v.Init != nil {
			forced = w.scan(v.Init, forced)
		}
		if v.Cond != nil {
			forced = w.scan(v.Cond, forced)
		}
		// The body is checked from the entry state (a force late in the
		// body does not dominate the next iteration's start — iteration 1
		// already ran unforced); gains inside the loop do not escape it
		// (the loop may run zero times).
		w.stmts(v.Body.List, forced)
		if v.Post != nil {
			w.scan(v.Post, forced)
		}
		return forced, false
	case *ast.RangeStmt:
		forced = w.scan(v.X, forced)
		w.stmts(v.Body.List, forced)
		return forced, false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.cases(v, forced)
	case *ast.GoStmt:
		// Inline the literal at the spawn point: the spawn-time state
		// dominates the body. Named targets contribute no direct events.
		if fl, ok := ast.Unparen(v.Call.Fun).(*ast.FuncLit); ok {
			for _, arg := range v.Call.Args {
				forced = w.scan(arg, forced)
			}
			w.stmts(fl.Body.List, forced)
			return forced, false
		}
		return w.scan(v.Call, forced), false
	case *ast.DeferStmt:
		// Deferred calls run at return: they dominate nothing and are
		// dominated by everything, so they are outside the dataflow.
		return forced, false
	case *ast.LabeledStmt:
		return w.stmt(v.Stmt, forced)
	case *ast.ExprStmt:
		forced = w.scan(v, forced)
		if call, ok := v.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return forced, true
			}
		}
		return forced, false
	default:
		return w.scan(s, forced), false
	}
}

// cases walks each case body of a switch/select from the entry state and
// merges with AND over the non-terminating cases.
func (w *forceWalker) cases(s ast.Stmt, forced bool) (bool, bool) {
	var body *ast.BlockStmt
	switch v := s.(type) {
	case *ast.SwitchStmt:
		if v.Init != nil {
			forced = w.scan(v.Init, forced)
		}
		if v.Tag != nil {
			forced = w.scan(v.Tag, forced)
		}
		body = v.Body
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			forced = w.scan(v.Init, forced)
		}
		forced = w.scan(v.Assign, forced)
		body = v.Body
	case *ast.SelectStmt:
		body = v.Body
	}
	exit := forced
	allTerm := len(body.List) > 0
	for _, c := range body.List {
		var list []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			list = cc.Body
		case *ast.CommClause:
			if cc.Comm != nil {
				w.scan(cc.Comm, forced)
			}
			list = cc.Body
		}
		cExit, cTerm := w.stmts(list, forced)
		if !cTerm {
			exit = exit && cExit
			allTerm = false
		}
	}
	return exit, allTerm
}

// scan visits the calls inside one expression or simple statement in
// syntactic order, updating the forced state and reporting events that
// execute unforced. Function literals are skipped — they run at unknown
// points (goroutine literals are handled at their spawn statement).
func (w *forceWalker) scan(n ast.Node, forced bool) bool {
	if n == nil {
		return forced
	}
	ast.Inspect(n, func(nn ast.Node) bool {
		switch v := nn.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			name, isForce := w.classify(v)
			if name != "" && w.annot.events[name] && !forced {
				w.r.report(v.Pos(), "forceorder",
					"%s releases %q before a durable force on this path (//asset:durable before=%s)",
					w.fn, name, eventList(w.annot.events))
			}
			if isForce {
				forced = true
			}
		}
		return true
	})
	return forced
}

// classify resolves a call to its event name (last selector ident, or
// the builtin close) and whether it counts as a durable force.
func (w *forceWalker) classify(call *ast.CallExpr) (name string, isForce bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := w.p.Info.Uses[fun].(*types.Builtin); ok {
			if b.Name() == "close" {
				return "close", false
			}
			return "", false
		}
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return "", false
	}
	if forceName(name) {
		return name, true
	}
	if fn := calleeFunc(w.p, call); fn != nil && inModule(w.r, fn) {
		if e := w.r.effects[fn]; e != nil && e.forces {
			return name, true
		}
	}
	return name, false
}

func eventList(events map[string]bool) string {
	var names []string
	for ev := range events {
		names = append(names, ev)
	}
	// Deterministic order for messages and tests.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return strings.Join(names, ",")
}
