package analysis

import (
	"go/ast"
	"go/types"
)

// atomicmix: a struct field accessed through sync/atomic anywhere in the
// module must be accessed through sync/atomic everywhere. A single plain
// read of an atomically-written counter is a data race the race detector
// only catches when the schedule cooperates; this checker catches it from
// the source alone.
//
// Typed atomics (atomic.Bool, atomic.Int64, ...) are immune by construction
// and are not tracked — only the old-style `atomic.LoadUint64(&x.field)`
// functions over plain integer fields can be mixed.

// atomicFields finds, across all packages, every struct field that appears
// as the &-operand of a sync/atomic function call, and remembers the exact
// selector nodes used in those calls (the sanctioned accesses).
func atomicFields(pkgs []*Package) (fields map[*types.Var]bool, sanctioned map[*ast.SelectorExpr]bool) {
	fields = make(map[*types.Var]bool)
	sanctioned = make(map[*ast.SelectorExpr]bool)
	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				pkgID, ok := ast.Unparen(fun.X).(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := p.Info.Uses[pkgID].(*types.PkgName)
				if !ok || pn.Imported().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || ue.Op.String() != "&" {
						continue
					}
					se, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					sel, ok := p.Info.Selections[se]
					if !ok || sel.Kind() != types.FieldVal {
						continue
					}
					if fv, ok := sel.Obj().(*types.Var); ok {
						fields[fv] = true
						sanctioned[se] = true
					}
				}
				return true
			})
		}
	}
	return fields, sanctioned
}

// atomicmix flags every selector in p that resolves to an atomic field but
// is not itself an operand of a sync/atomic call. The field and sanctioned
// sets are computed over `all` packages so cross-package mixing is caught.
func (r *Runner) atomicmix(p *Package, all []*Package) {
	if !r.enabled("atomicmix") {
		return
	}
	if r.atomicF == nil {
		r.atomicF, r.atomicOK = atomicFields(all)
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			se, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			sel, ok := p.Info.Selections[se]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			fv, ok := sel.Obj().(*types.Var)
			if !ok || !r.atomicF[fv] || r.atomicOK[se] {
				return true
			}
			r.report(se.Sel.Pos(), "atomicmix",
				"field %s is accessed with sync/atomic elsewhere; this plain access races with those (use the atomic helpers everywhere)",
				fv.Name())
			return true
		})
	}
}
