package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The module load (go list + full type-check) is expensive; every test
// shares one instance.
var (
	modOnce sync.Once
	mod     *Module
	modErr  error
)

func repoModule(t *testing.T) *Module {
	t.Helper()
	modOnce.Do(func() { mod, modErr = LoadModule(".") })
	if modErr != nil {
		t.Fatalf("loading module: %v", modErr)
	}
	return mod
}

// TestSelfCheck runs every checker over the real repository and requires a
// clean bill: the tree must satisfy its own discipline (CI enforces the same
// via cmd/assetlint).
func TestSelfCheck(t *testing.T) {
	m := repoModule(t)
	r, err := NewRunner(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range r.Run() {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestFixtures runs the checkers over each golden package in testdata/src
// and matches the diagnostics against the fixtures' `// want "regex"`
// comments: every want must be hit, every diagnostic must be wanted.
func TestFixtures(t *testing.T) {
	m := repoModule(t)
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", name)
			p, err := m.LoadFixture(dir, "fixture/"+name)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			r, err := NewRunner(m, nil)
			if err != nil {
				t.Fatal(err)
			}
			diags := r.Run(p)
			checkWants(t, m, p, diags)
		})
	}
}

// wantRe matches one `// want "regex"` (or backquoted) comment; multiple
// expectations on one line each get their own quoted pattern.
var wantRe = regexp.MustCompile("//\\s*want\\s+((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)")
var wantPatRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

type want struct {
	re  *regexp.Regexp
	hit bool
}

func checkWants(t *testing.T, m *Module, p *Package, diags []Diagnostic) {
	t.Helper()
	wants := make(map[int][]*want) // line -> expectations
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				g := wantRe.FindStringSubmatch(c.Text)
				if g == nil {
					continue
				}
				line := m.Fset.Position(c.Pos()).Line
				for _, pat := range wantPatRe.FindAllString(g[1], -1) {
					body := pat[1 : len(pat)-1]
					if pat[0] == '"' {
						body = strings.ReplaceAll(body, `\"`, `"`)
					}
					re, err := regexp.Compile(body)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", f.Name.Name, line, pat, err)
					}
					wants[line] = append(wants[line], &want{re: re})
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants[d.Pos.Line] {
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for line, ws := range wants {
		for _, w := range ws {
			if !w.hit {
				t.Errorf("line %d: want %q not reported", line, w.re)
			}
		}
	}
}

// TestSeededViolations mutates fixture shapes the way a regressing editor
// would — reordering two latch acquisitions, deleting an early-return
// Unlock — and requires the corresponding checker to fail. This guards the
// checkers themselves against silent decay.
func TestSeededViolations(t *testing.T) {
	m := repoModule(t)
	cases := []struct {
		name    string
		checker string
		src     string
		wantMsg string
	}{
		{
			name:    "reordered-acquisition",
			checker: "latchorder",
			src: `package seeded

import "sync"

type lo struct {
	//asset:latch order=1
	mu sync.Mutex
}
type hi struct {
	//asset:latch order=2
	mu sync.Mutex
}

func f(a *lo, b *hi) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}
`,
			wantMsg: "strictly ascending",
		},
		{
			name:    "removed-unlock",
			checker: "leakedlatch",
			src: `package seeded

import "sync"

type g struct{ mu sync.Mutex }

func f(x *g, fail bool) bool {
	x.mu.Lock()
	if fail {
		return false
	}
	x.mu.Unlock()
	return true
}
`,
			wantMsg: "still locked",
		},
		{
			name:    "goroleak-removed-done",
			checker: "goroleak",
			src: `package seeded

import "sync"

func f() {
	var wg sync.WaitGroup
	wg.Add(1)
	//asset:goroutine joined-by=waitgroup
	go func() {}()
	wg.Wait()
}
`,
			wantMsg: "never calls WaitGroup.Done",
		},
		{
			name:    "goroleak-unannotated-spawn",
			checker: "goroleak",
			src: `package seeded

func f() {
	go func() {}()
}
`,
			wantMsg: "unannotated go statement",
		},
		{
			name:    "forceorder-release-above-force",
			checker: "forceorder",
			src: `package seeded

type wlog struct{}

func (l *wlog) Flush() {}

type locks struct{}

func (l *locks) ReleaseAll() {}

// f publishes the verdict before the log force lands.
//
//asset:durable before=ReleaseAll
func f(l *wlog, lk *locks) {
	lk.ReleaseAll()
	l.Flush()
}
`,
			wantMsg: "before a durable force",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "seeded.go"), []byte(tc.src), 0o644); err != nil {
				t.Fatal(err)
			}
			p, err := m.LoadFixture(dir, "fixture/seeded/"+tc.name)
			if err != nil {
				t.Fatalf("loading seeded fixture: %v", err)
			}
			r, err := NewRunner(m, []string{tc.checker})
			if err != nil {
				t.Fatal(err)
			}
			diags := r.Run(p)
			found := false
			for _, d := range diags {
				if d.Checker == tc.checker && strings.Contains(d.Message, tc.wantMsg) {
					found = true
				}
			}
			if !found {
				t.Fatalf("seeded %s violation not detected; got %d diagnostics: %v", tc.checker, len(diags), diags)
			}
		})
	}
}

// TestSuppressionRequiresReason: //lint:allow without a trailing reason must
// not suppress anything.
func TestSuppressionRequiresReason(t *testing.T) {
	m := repoModule(t)
	src := `package seeded

import "errors"

var ErrX = errors.New("x")

func f(err error) bool {
	//lint:allow errcmp
	return err == ErrX
}
`
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "s.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := m.LoadFixture(dir, "fixture/seeded/noreason")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(m, []string{"errcmp"})
	if err != nil {
		t.Fatal(err)
	}
	if diags := r.Run(p); len(diags) != 1 {
		t.Fatalf("reasonless //lint:allow suppressed the diagnostic: got %v", diags)
	}
}

// TestAnnotationValidation: malformed //asset:latch annotations are
// themselves diagnostics — a broken annotation silently weakens the
// discipline.
func TestAnnotationValidation(t *testing.T) {
	m := repoModule(t)
	src := `package seeded

import "sync"

type s struct {
	//asset:latch spin
	mu sync.Mutex
	//asset:latch order=3
	n int
}
`
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "s.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := m.LoadFixture(dir, "fixture/seeded/badannot")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(m, []string{"latchorder"})
	if err != nil {
		t.Fatal(err)
	}
	diags := r.Run(p)
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.Message)
	}
	joined := fmt.Sprint(msgs)
	if len(diags) != 2 || !strings.Contains(joined, "missing order") || !strings.Contains(joined, "non-latch field") {
		t.Fatalf("expected missing-order and non-latch-field diagnostics, got %v", diags)
	}
}

// TestUnknownChecker: NewRunner rejects checker names that do not exist
// instead of silently running nothing.
func TestUnknownChecker(t *testing.T) {
	m := repoModule(t)
	if _, err := NewRunner(m, []string{"latchodrer"}); err == nil {
		t.Fatal("expected an error for a misspelled checker name")
	}
}

// TestReporters: text output is root-relative file:line:col, JSON round-trips
// the same fields.
func TestReporters(t *testing.T) {
	diags := []Diagnostic{{Checker: "errcmp", Message: "m"}}
	diags[0].Pos.Filename = "/r/pkg/f.go"
	diags[0].Pos.Line, diags[0].Pos.Column = 3, 7

	var text strings.Builder
	WriteText(&text, "/r", diags)
	if got, want := text.String(), "pkg/f.go:3:7: [errcmp] m\n"; got != want {
		t.Errorf("WriteText = %q, want %q", got, want)
	}
	var js strings.Builder
	if err := WriteJSON(&js, "/r", diags); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{`"file": "pkg/f.go"`, `"line": 3`, `"checker": "errcmp"`} {
		if !strings.Contains(js.String(), frag) {
			t.Errorf("WriteJSON output missing %s:\n%s", frag, js.String())
		}
	}
}

// TestLatchRegistry: the module's annotated latch classes form the exact
// documented global order (DESIGN.md §10). A new latch must be annotated and
// added there; this test pins the table.
func TestLatchRegistry(t *testing.T) {
	m := repoModule(t)
	r, err := NewRunner(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.Run()
	got := make(map[string]string)
	for _, c := range r.latches.classes {
		attrs := fmt.Sprintf("order=%d", c.Order)
		if c.Spin {
			attrs += " spin"
		}
		got[c.Name] = attrs
	}
	want := map[string]string{
		// The distributed-commit coordinator's latch is outermost of all:
		// it is held only around its decision map and log, never across a
		// participant (client/network) call, so nothing it guards can ever
		// wait on anything ordered after it.
		"txcoord.Coordinator.mu": "order=1",

		// The networked tier's latches order before every engine latch:
		// client and server dispatch hold their session/connection state
		// only around queue and table manipulation, never across a core
		// call that could take an engine latch inward of them.
		"client.Client.mu":  "order=2",
		"client.cliConn.mu": "order=3",
		"server.Server.mu":  "order=4",
		"server.session.mu": "order=6",
		"server.srvConn.mu": "order=8",

		"core.Manager.mu":    "order=10",
		"lock.lockShard.lat": "order=20 spin",
		"htab.shard.mu":      "order=30",
		"lock.txnState.lat":  "order=40 spin",
		"waitgraph.Graph.mu": "order=50",
		"dep.Graph.mu":       "order=60",

		// The segmented WAL's group-commit latches order after everything
		// above: commit paths append to the log while holding core latches
		// (Tx.Write under core.Manager.mu is the paper's §4.2 design), so
		// the log's own latches must be innermost.
		"wal.SegmentedLog.stateMu":  "order=70",
		"wal.SegmentedLog.appendMu": "order=80",
	}
	for name, attrs := range want {
		if got[name] != attrs {
			t.Errorf("latch %s: got %q, want %q", name, got[name], attrs)
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("unexpected annotated latch %s (update the table in DESIGN.md §10 and this test)", name)
		}
	}
}
