// Package core implements the ASSET transaction primitives of §2 of the
// paper — initiate, begin, commit, wait, abort, self, parent, delegate,
// permit, and form_dependency — on top of the lock manager, dependency
// graph, write-ahead log, and shared object cache. The package asset at the
// module root re-exports the public surface.
package core

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dep"
	"repro/internal/faultfs"
	"repro/internal/htab"
	"repro/internal/lock"
	"repro/internal/storage"
	"repro/internal/waitgraph"
	"repro/internal/wal"
	"repro/internal/xid"
)

// Config configures a Manager.
type Config struct {
	// Dir, when non-empty, makes the database durable: the write-ahead log
	// and the page-store checkpoint backend live there, and Open performs
	// recovery. When empty the manager is purely in-memory.
	Dir string
	// SyncCommits forces an fsync on every commit record (durable mode
	// only). Off, commits are buffered and only checkpoints force.
	SyncCommits bool
	// BatchedCommits enables classic group commit: concurrent committers
	// share one physical log force (the commit protocol releases the
	// manager mutex around the force). Complements the paper's
	// GC-dependency groups, which share a commit *record*.
	BatchedCommits bool
	// GroupCommit enables the pipelined group-commit WAL protocol
	// (durable mode only): committers enqueue their commit record into
	// the segmented log's batch slab and park; a force leader writes the
	// whole batch with one write and one fsync and wakes the cohort. The
	// commit protocol releases the manager mutex around the force, so
	// batch N+1 forms while batch N is on the disk. Distinct from
	// BatchedCommits, which coalesces Flush calls in front of any log;
	// GroupCommit is the segmented log's native cohort protocol.
	GroupCommit bool
	// CommitWindow, with BatchedCommits or GroupCommit, makes the flush
	// leader linger to accumulate more committers into the same force
	// (latency for throughput).
	CommitWindow time.Duration
	// WALSegmentBytes sets the segmented log's rotation threshold
	// (durable mode only). 0 picks the default (16 MiB). Small values
	// are useful to tests that need to cross many rotation boundaries.
	WALSegmentBytes int64
	// MaxTransactions bounds concurrently live (non-terminated)
	// transactions; initiate fails beyond it. 0 means no limit.
	MaxTransactions int
	// LockShards sets the number of lock-table shards (rounded up to a
	// power of two). 0 picks the default (64); 1 degenerates to a single
	// global lock-table latch, the pre-sharding behaviour.
	LockShards int
	// NoQueueFairness and LazyPermitClosure select lock-manager ablations.
	NoQueueFairness   bool
	LazyPermitClosure bool
	// DisableDeadlockDetection leaves blocked requests waiting instead of
	// selecting victims (ablation A4; combine with LockTimeout).
	DisableDeadlockDetection bool
	// LockTimeout bounds how long any lock request may block; 0 = forever.
	// It is the deadlock resolution of last resort with detection
	// disabled. Per-transaction deadlines (TxnDeadline, TxnOptions) and
	// contexts bound via BeginCtx give finer-grained bounds per request.
	LockTimeout time.Duration
	// TxnDeadline bounds the lifetime of every transaction: the watchdog
	// reaper aborts (with ErrTxnDeadline) any transaction still live that
	// long after initiation. 0 disables the watchdog unless individual
	// transactions set deadlines via TxnOptions.
	TxnDeadline time.Duration
	// MaxLive bounds transactions admitted past begin — the running set
	// that actually holds locks — independent of MaxTransactions, which
	// bounds initiated descriptors. When the gate is full, begin queues
	// (deadline-aware, see AdmitTimeout) and sheds with ErrOverload rather
	// than letting the lock table collapse under contention. 0 = no gate.
	MaxLive int
	// AdmitTimeout is how long begin may queue for an admission slot when
	// the MaxLive gate is full. The wait is additionally capped by the
	// transaction's deadline and context. 0 means shed immediately unless
	// a deadline or context bounds the wait.
	AdmitTimeout time.Duration
	// ReapTerminated drops transaction descriptors as soon as they
	// terminate, bounding memory in long runs. Status queries and waits on
	// reaped transactions return ErrUnknownTxn, so enable it only when
	// callers act solely on commit/abort return values (benchmarks do).
	ReapTerminated bool
	// VerdictRetention bounds how many decided distributed-commit groups
	// the manager remembers for idempotent verdict redelivery. Beyond it
	// the oldest entries are dropped, and a duplicate Decide for a dropped
	// group reports ErrUnknownGroup — which coordinators treat as already
	// delivered. 0 picks the default (DefaultVerdictRetention); negative
	// retains every verdict forever.
	VerdictRetention int
	// FS, when non-nil, replaces the OS filesystem for every durable file
	// (WAL, page store, double-write journal). Used by the fault-injection
	// and crash-simulation tests; nil means the real filesystem.
	FS faultfs.FS
}

// DefaultVerdictRetention is the verdicts-map bound applied when
// Config.VerdictRetention is zero.
const DefaultVerdictRetention = 4096

// truncatableLog is satisfied by logs that can drop their contents after a
// checkpoint.
type truncatableLog interface {
	Truncate() error
}

// forceableLog is satisfied by logs that can be fsynced on demand
// regardless of their commit-durability policy. The checkpoint uses it as
// a write-ahead barrier before touching the backend.
type forceableLog interface {
	ForceDurable() error
}

// dirtyKind records what a checkpoint must do for a changed object.
type dirtyKind uint8

const (
	dirtyUpsert dirtyKind = iota + 1
	dirtyDelete
)

// Stats are cumulative manager counters, used by the benchmark harness.
type Stats struct {
	Commits   uint64 // committed transactions
	Aborts    uint64 // aborted transactions
	Deadlocks uint64 // deadlock victims
	LogForces uint64 // log flushes issued by commits
	GroupSize uint64 // sum of group sizes over group commits (avg = /Commits)
	Reaped    uint64 // transactions aborted by the watchdog (ErrTxnDeadline)
	Expired   uint64 // aborts caused by context deadline expiry
	Cancelled uint64 // aborts caused by context cancellation
	Overloads uint64 // transactions shed by admission control (ErrOverload)
	Retries   uint64 // re-executions performed by Run
}

// Manager is the ASSET transaction manager.
type Manager struct {
	cfg Config

	// The manager mutex is the outermost lock of the system: it may be held
	// while calling into the lock manager (Delegate, Permit), so it orders
	// before every latch below.
	//asset:latch order=10
	mu   sync.Mutex
	cond *sync.Cond

	txns    *htab.Map[*txn] // the chained hash table of TDs (§4.1)
	nextTID atomic.Uint64
	live    atomic.Int64 // non-terminated transactions, for MaxTransactions

	locks *lock.Manager
	deps  *dep.Graph
	waits *waitgraph.Graph
	cache *storage.Cache

	log     wal.Appender
	backend storage.Backend
	dirty   map[xid.OID]dirtyKind // committed changes since last checkpoint

	// Distributed-commit participant state, guarded by mu. prepared maps a
	// group id to its local members (runtime-prepared or recovered in
	// doubt); verdicts remembers decided groups so retransmitted votes and
	// verdicts stay idempotent, with verdictOrder the FIFO pruning order
	// bounding it to cfg.VerdictRetention; preparing gates any window in
	// which a vote's TPrepare flush or a verdict's TCommit flush released
	// mu (group-commit modes) — duplicate votes and verdicts wait it out.
	prepared     map[uint64][]xid.TID
	verdicts     map[uint64]bool
	verdictOrder []uint64
	preparing    map[uint64]chan struct{}

	closed atomic.Bool
	// closeCh closes when Close begins, waking admission queuers and
	// stopping the watchdog.
	closeCh chan struct{}
	// admit is the MaxLive admission gate (nil when unbounded): a begin
	// deposits a token to enter, commit/abort withdraws it.
	admit chan struct{}
	// The watchdog reaper starts lazily, on the first transaction that
	// carries a deadline; watchdogDone closes when it exits.
	watchdogOnce sync.Once
	watchdogOn   atomic.Bool
	watchdogDone chan struct{}

	stats struct {
		commits, aborts, deadlocks, logForces, groupSize atomic.Uint64
		reaped, expired, cancelled, overloads, retries   atomic.Uint64
	}
}

// Open creates a Manager. With cfg.Dir set it opens (or creates) the
// durable database there and recovers committed state from the checkpoint
// and log; otherwise everything is in-memory.
func Open(cfg Config) (*Manager, error) {
	m := &Manager{
		cfg:          cfg,
		deps:         dep.New(),
		waits:        waitgraph.New(),
		cache:        storage.NewCache(),
		txns:         htab.New[*txn](0),
		dirty:        make(map[xid.OID]dirtyKind),
		prepared:     make(map[uint64][]xid.TID),
		verdicts:     make(map[uint64]bool),
		preparing:    make(map[uint64]chan struct{}),
		closeCh:      make(chan struct{}),
		watchdogDone: make(chan struct{}),
	}
	m.cond = sync.NewCond(&m.mu)
	if cfg.MaxLive > 0 {
		m.admit = make(chan struct{}, cfg.MaxLive)
	}
	onVictim := func(t xid.TID) {
		m.mu.Lock()
		if vt, ok := m.txns.Get(uint64(t)); ok {
			m.abortLocked(vt, fmt.Errorf("%w: chosen as deadlock victim: %w", ErrAborted, ErrDeadlock))
		}
		m.mu.Unlock()
	}
	if cfg.DisableDeadlockDetection {
		// The waits-for graph is still maintained for diagnostics, but no
		// victims are selected: blocked requests wait until granted,
		// cancelled by an explicit abort, or timed out by LockTimeout.
		onVictim = nil
	}
	m.locks = lock.New(m.waits, lock.Options{
		OnVictim:        onVictim,
		Shards:          cfg.LockShards,
		NoQueueFairness: cfg.NoQueueFairness,
		EagerClosure:    !cfg.LazyPermitClosure,
		WaitTimeout:     cfg.LockTimeout,
		NoDetection:     cfg.DisableDeadlockDetection,
	})

	if cfg.Dir == "" {
		m.log = wal.NewMem()
		if cfg.BatchedCommits || cfg.GroupCommit {
			// The in-memory log has no cohort protocol of its own, so
			// both group-commit flavours degrade to flush coalescing.
			m.log = wal.NewCoalescer(m.log, cfg.CommitWindow)
		}
		m.backend = storage.NullBackend{}
		return m, nil
	}

	fsys := cfg.FS
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	ps, err := storage.OpenPageStore(filepath.Join(cfg.Dir, "pages"), storage.PageStoreOptions{FS: fsys})
	if err != nil {
		return nil, err
	}
	m.backend = storage.PageBackend{Store: ps}
	var maxOID xid.OID
	if err := m.backend.LoadAll(func(oid xid.OID, data []byte) error {
		if !m.cache.Create(oid, data) {
			return fmt.Errorf("core: duplicate oid %v in backend", oid)
		}
		if oid > maxOID {
			maxOID = oid
		}
		return nil
	}); err != nil {
		ps.Close()
		return nil, err
	}
	// The log is a segmented chain (with any pre-segmentation wal.log as
	// its read-only base); recovery scans the segments in parallel across
	// cores and merges them sequentially in redo order.
	st, err := wal.RecoverDirFS(fsys, cfg.Dir, wal.RecoverOptions{})
	if err != nil {
		ps.Close()
		return nil, err
	}
	for oid, data := range st.Objects {
		m.cache.Install(oid, data)
		m.dirty[oid] = dirtyUpsert
		if oid > maxOID {
			maxOID = oid
		}
	}
	for oid := range st.Deleted {
		m.cache.Delete(oid)
		m.dirty[oid] = dirtyDelete
	}
	for oid, d := range st.Deltas {
		base, _ := m.cache.Read(oid) // missing base reads as zero
		m.cache.Install(oid, wal.EncodeCounter(wal.DecodeCounter(base)+d))
		m.dirty[oid] = dirtyUpsert
		if oid > maxOID {
			maxOID = oid
		}
	}
	// An in-doubt transaction's created OIDs are in neither the backend nor
	// st.Objects (their images are withheld), so fold them into the
	// allocator's floor before SetNextOID or a new create could collide.
	for _, ops := range st.InDoubtOps {
		for _, op := range ops {
			if op.OID > maxOID {
				maxOID = op.OID
			}
		}
	}
	m.cache.SetNextOID(maxOID)
	m.nextTID.Store(uint64(st.MaxTID))
	if err := m.installInDoubt(st); err != nil {
		ps.Close()
		return nil, err
	}
	segOpts := wal.SegmentedOptions{
		SegmentBytes: cfg.WALSegmentBytes,
		Sync:         cfg.SyncCommits,
	}
	if cfg.GroupCommit {
		// The linger window belongs to the log's force leader; without
		// GroupCommit the commit protocol flushes while holding m.mu, and
		// sleeping there would serialize everyone.
		segOpts.Window = cfg.CommitWindow
	}
	log, err := wal.OpenSegmentedFS(fsys, cfg.Dir, segOpts)
	if err != nil {
		ps.Close()
		return nil, err
	}
	m.log = log
	if cfg.BatchedCommits && !cfg.GroupCommit {
		m.log = wal.NewCoalescer(m.log, cfg.CommitWindow)
	}
	return m, nil
}

// Close shuts the manager down gracefully: every live transaction is
// aborted with a reason wrapping ErrClosed — which wakes waiters parked on
// lock-shard conds (their waits are cancelled), dependency and commit waits
// (done/term close), and admission queuers — then the watchdog is drained
// and the log flushed and closed. In-flight commit groups that already
// appended their commit record are allowed to finish; recovery treats
// everything else as a loser.
func (m *Manager) Close() error {
	if m.closed.Swap(true) {
		return nil
	}
	close(m.closeCh)
	var live, committing []*txn
	m.txns.Range(func(_ uint64, t *txn) bool {
		live = append(live, t)
		return true
	})
	m.mu.Lock()
	for _, t := range live {
		switch st := t.st(); {
		case st == xid.StatusCommitting:
			committing = append(committing, t)
		case !st.Terminated():
			m.abortLocked(t, fmt.Errorf("%w: %w", ErrAborted, ErrClosed))
		}
	}
	m.mu.Unlock()
	// A committing group is past its commit record — a batched-commit
	// driver may be off the mutex forcing the log — so wait for the outcome
	// instead of yanking the log from under the flush.
	for _, t := range committing {
		<-t.term
	}
	if m.watchdogOn.Load() {
		<-m.watchdogDone
	}
	err := m.log.Flush()
	if cerr := m.log.Close(); err == nil {
		err = cerr
	}
	if cerr := m.backend.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats returns a snapshot of the manager counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Commits:   m.stats.commits.Load(),
		Aborts:    m.stats.aborts.Load(),
		Deadlocks: m.stats.deadlocks.Load(),
		LogForces: m.stats.logForces.Load(),
		GroupSize: m.stats.groupSize.Load(),
		Reaped:    m.stats.reaped.Load(),
		Expired:   m.stats.expired.Load(),
		Cancelled: m.stats.cancelled.Load(),
		Overloads: m.stats.overloads.Load(),
		Retries:   m.stats.retries.Load(),
	}
}

// StatusOf returns the status of t, or StatusAborted for unknown (reaped)
// transactions — a terminated descriptor may be dropped at any time.
// Mutex-free: the descriptor table is a concurrent hash table and status is
// an atomic field.
func (m *Manager) StatusOf(t xid.TID) xid.Status {
	if tx, ok := m.txns.Get(uint64(t)); ok {
		return tx.st()
	}
	return xid.StatusAborted
}

// TxnInfo describes one live (or unreaped terminated) transaction.
type TxnInfo struct {
	ID     xid.TID
	Parent xid.TID
	Status xid.Status
}

// Transactions lists every tracked transaction in ascending tid order —
// one of the §2.1 "primitives to query the status of transactions". The
// listing is a moment-in-time snapshot, not a consistent cut: it takes no
// manager-wide lock, so transactions that begin or terminate concurrently
// may or may not appear.
func (m *Manager) Transactions() []TxnInfo {
	var out []TxnInfo
	m.txns.Range(func(_ uint64, t *txn) bool {
		out = append(out, TxnInfo{ID: t.id, Parent: t.parent, Status: t.st()})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Active lists the transactions that have begun and not terminated.
func (m *Manager) Active() []xid.TID {
	var out []xid.TID
	for _, info := range m.Transactions() {
		if info.Status.Active() {
			out = append(out, info.ID)
		}
	}
	return out
}

// lookup returns the descriptor for t.
func (m *Manager) lookup(t xid.TID) (*txn, error) {
	if tx, ok := m.txns.Get(uint64(t)); ok {
		return tx, nil
	}
	return nil, fmt.Errorf("%w: %v", ErrUnknownTxn, t)
}

// Checkpoint persists all committed changes to the backend and truncates
// the log. The manager must be quiescent (no live transactions); it is the
// caller's job to arrange that.
//
// Truncation discards the only redo history; the TCheckpoint flush must
// dominate it (the PR 6 checkpoint-ahead-of-buffered-log bug, §11).
//asset:durable before=Truncate
func (m *Manager) Checkpoint() error {
	m.mu.Lock()
	if m.closed.Load() {
		m.mu.Unlock()
		return ErrClosed
	}
	if n := m.live.Load(); n != 0 {
		m.mu.Unlock()
		return fmt.Errorf("%w: %d live transactions", ErrNotQuiescent, n)
	}
	dirty := m.dirty
	m.dirty = make(map[xid.OID]dirtyKind)
	// Holding m.mu keeps the manager quiescent: initiate is mutex-free, but
	// a freshly initiated transaction cannot touch any object until Begin,
	// and beginOne blocks on m.mu.
	defer m.mu.Unlock()
	// Write-ahead barrier: force the log durable — even under buffered
	// commits — before the first backend write. Segment rotation can leave
	// an old prefix of a buffered log durable on its own (the rotation
	// seal fsync); if the checkpoint then made the store durable through
	// later transactions whose records were still buffered, a crash would
	// replay that stale prefix over the newer store and resurrect old
	// images. Forcing first keeps the durable log at least as new as
	// anything the store can reflect.
	if fl, ok := m.log.(forceableLog); ok {
		if err := fl.ForceDurable(); err != nil {
			return err
		}
	}
	for oid, kind := range dirty {
		if kind == dirtyDelete {
			if err := m.backend.Delete(oid); err != nil {
				return err
			}
			continue
		}
		data, ok := m.cache.Read(oid)
		if !ok {
			if err := m.backend.Delete(oid); err != nil {
				return err
			}
			continue
		}
		if err := m.backend.Put(oid, data); err != nil {
			return err
		}
	}
	if err := m.backend.Sync(); err != nil {
		return err
	}
	if _, err := m.log.Append(&wal.Record{Type: wal.TCheckpoint}); err != nil {
		return err
	}
	if err := m.log.Flush(); err != nil {
		return err
	}
	if tl, ok := m.log.(truncatableLog); ok {
		return tl.Truncate()
	}
	return nil
}

// Cache exposes the shared object cache for read-only inspection by tools
// and tests.
func (m *Manager) Cache() *storage.Cache { return m.cache }

// LockManager exposes the lock manager for benchmarks and diagnostics.
func (m *Manager) LockManager() *lock.Manager { return m.locks }

// WaitGraph exposes the waits-for graph for diagnostics and tests (e.g.
// asserting that cancelled transactions leave no edges behind).
func (m *Manager) WaitGraph() *waitgraph.Graph { return m.waits }

// MemLog returns the in-memory log when the manager is non-durable, for
// tests and flush-counting benchmarks (unwrapping a commit coalescer).
func (m *Manager) MemLog() *wal.MemLog {
	log := m.log
	if c, ok := log.(*wal.Coalescer); ok {
		log = c.Appender
	}
	if ml, ok := log.(*wal.MemLog); ok {
		return ml
	}
	return nil
}

// PhysicalForces reports the number of physical log forces when batched
// commits are enabled (0 otherwise); compare with Stats().LogForces, which
// counts commit flush *requests*.
func (m *Manager) PhysicalForces() uint64 {
	if c, ok := m.log.(*wal.Coalescer); ok {
		return c.Forces()
	}
	if s, ok := m.log.(*wal.SegmentedLog); ok {
		return s.Forces()
	}
	return 0
}
