package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/xid"
)

// TestLockTimeoutResolvesDeadlockWithoutDetection covers the A4
// ablation: deadlock detection off, LockTimeout as the resolution of
// last resort. Two transactions lock a pair of objects in opposite
// orders; with no victim selection, only the timeout can break the
// cycle.
func TestLockTimeoutResolvesDeadlockWithoutDetection(t *testing.T) {
	m, err := Open(Config{
		DisableDeadlockDetection: true,
		LockTimeout:              50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	setup, _ := m.Initiate(func(tx *Tx) error {
		if err := tx.CreateAt(1, []byte("a")); err != nil {
			return err
		}
		return tx.CreateAt(2, []byte("b"))
	})
	m.Begin(setup)
	m.Wait(setup)
	if err := m.Commit(setup); err != nil {
		t.Fatal(err)
	}

	aHolds := make(chan struct{})
	bHolds := make(chan struct{})
	a, _ := m.Initiate(func(tx *Tx) error {
		if err := tx.Lock(1, xid.OpWrite); err != nil {
			return err
		}
		close(aHolds)
		<-bHolds
		return tx.Lock(2, xid.OpWrite)
	})
	b, _ := m.Initiate(func(tx *Tx) error {
		if err := tx.Lock(2, xid.OpWrite); err != nil {
			return err
		}
		close(bHolds)
		<-aHolds
		return tx.Lock(1, xid.OpWrite)
	})
	if err := m.Begin(a, b); err != nil {
		t.Fatal(err)
	}
	errA, errB := m.Wait(a), m.Wait(b)

	timedOut := 0
	for name, werr := range map[string]error{"A": errA, "B": errB} {
		if werr == nil {
			continue
		}
		if !errors.Is(werr, ErrAborted) {
			t.Fatalf("txn %s failed without ErrAborted: %v", name, werr)
		}
		if !errors.Is(werr, ErrLockTimeout) {
			t.Fatalf("txn %s aborted for a reason other than the lock timeout: %v", name, werr)
		}
		timedOut++
	}
	if timedOut == 0 {
		t.Fatal("deadlock resolved without any lock timeout firing")
	}
	// With detection disabled no victims may be counted.
	if d := m.Stats().Deadlocks; d != 0 {
		t.Fatalf("deadlock counter = %d with detection disabled", d)
	}
	// Survivors (if any) must be committable, and the manager must stay
	// fully usable after the timeout-resolved deadlock.
	if errA == nil {
		if err := m.Commit(a); err != nil {
			t.Fatalf("committing survivor A: %v", err)
		}
	}
	if errB == nil {
		if err := m.Commit(b); err != nil {
			t.Fatalf("committing survivor B: %v", err)
		}
	}
	after, _ := m.Initiate(func(tx *Tx) error { return tx.Write(1, []byte("after")) })
	m.Begin(after)
	m.Wait(after)
	if err := m.Commit(after); err != nil {
		t.Fatalf("manager unusable after timeout: %v", err)
	}
}

// TestLockTimeoutAgainstPlainHolder: a timeout also bounds waiting on an
// ordinary (non-deadlocked) long lock hold, and identifies itself as a
// timeout rather than a deadlock.
func TestLockTimeoutAgainstPlainHolder(t *testing.T) {
	m, err := Open(Config{
		DisableDeadlockDetection: true,
		LockTimeout:              30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	setup, _ := m.Initiate(func(tx *Tx) error { return tx.CreateAt(1, []byte("x")) })
	m.Begin(setup)
	m.Wait(setup)
	m.Commit(setup)

	release := make(chan struct{})
	held := make(chan struct{})
	holder, _ := m.Initiate(func(tx *Tx) error {
		if err := tx.Lock(1, xid.OpWrite); err != nil {
			return err
		}
		close(held)
		<-release
		return nil
	})
	m.Begin(holder)
	<-held
	waiter, _ := m.Initiate(func(tx *Tx) error { return tx.Lock(1, xid.OpWrite) })
	m.Begin(waiter)
	werr := m.Wait(waiter)
	if !errors.Is(werr, ErrLockTimeout) || !errors.Is(werr, ErrAborted) {
		t.Fatalf("waiter error = %v, want lock timeout abort", werr)
	}
	if errors.Is(werr, ErrDeadlock) {
		t.Fatalf("timeout mislabeled as deadlock: %v", werr)
	}
	close(release)
	m.Wait(holder)
	if err := m.Commit(holder); err != nil {
		t.Fatalf("holder commit: %v", err)
	}
}

// TestReapTerminatedQueries pins the documented query semantics under
// ReapTerminated: waits and status queries that start before termination
// see the outcome; queries on already-reaped transactions get
// ErrUnknownTxn / StatusAborted; reaped descriptors vanish from
// Transactions().
func TestReapTerminatedQueries(t *testing.T) {
	m, err := Open(Config{ReapTerminated: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// A Wait that starts while the transaction is live observes the
	// commit even though the descriptor is reaped at termination.
	gate := make(chan struct{})
	id, _ := m.Initiate(func(tx *Tx) error {
		if err := tx.CreateAt(7, []byte("v")); err != nil {
			return err
		}
		<-gate
		return nil
	})
	if err := m.Begin(id); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- m.Wait(id) }()
	time.Sleep(20 * time.Millisecond) // let Wait find the live descriptor
	close(gate)
	if err := <-waitErr; err != nil {
		t.Fatalf("wait started before completion: %v", err)
	}
	if err := m.Commit(id); err != nil {
		t.Fatalf("commit: %v", err)
	}

	// The descriptor is gone: every query on the reaped tid degrades the
	// documented way.
	if err := m.Wait(id); !errors.Is(err, ErrUnknownTxn) {
		t.Fatalf("Wait on reaped = %v, want ErrUnknownTxn", err)
	}
	if err := m.Commit(id); !errors.Is(err, ErrUnknownTxn) {
		t.Fatalf("Commit on reaped = %v, want ErrUnknownTxn", err)
	}
	if err := m.Abort(id); !errors.Is(err, ErrUnknownTxn) {
		t.Fatalf("Abort on reaped = %v, want ErrUnknownTxn", err)
	}
	if st := m.StatusOf(id); st != xid.StatusAborted {
		t.Fatalf("StatusOf reaped = %v, want StatusAborted fallback", st)
	}
	if txns := m.Transactions(); len(txns) != 0 {
		t.Fatalf("Transactions() lists reaped descriptors: %v", txns)
	}

	// An aborting transaction is reaped too, but a Wait already blocked
	// on it still reports the abort.
	gate2 := make(chan struct{})
	bad, _ := m.Initiate(func(tx *Tx) error {
		<-gate2
		return errors.New("boom")
	})
	if err := m.Begin(bad); err != nil {
		t.Fatal(err)
	}
	waitErr2 := make(chan error, 1)
	go func() { waitErr2 <- m.Wait(bad) }()
	time.Sleep(20 * time.Millisecond) // let Wait find the live descriptor
	close(gate2)
	if err := <-waitErr2; !errors.Is(err, ErrAborted) {
		t.Fatalf("wait on aborting txn = %v, want ErrAborted", err)
	}
	if txns := m.Transactions(); len(txns) != 0 {
		t.Fatalf("aborted txn not reaped: %v", txns)
	}
	// The committed object survives the reaping of its creator.
	if v, ok := m.Cache().Read(7); !ok || string(v) != "v" {
		t.Fatalf("object 7 = %q (%v)", v, ok)
	}
	if c := m.Stats().Commits; c != 1 {
		t.Fatalf("commits = %d, want 1", c)
	}
}
