package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/xid"
)

func newMem(t *testing.T) *Manager {
	t.Helper()
	m, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// runTxn initiates, begins, and commits fn, failing the test on any error.
func runTxn(t *testing.T, m *Manager, fn TxnFunc) xid.TID {
	t.Helper()
	id, err := m.Initiate(fn)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(id); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(id); err != nil {
		t.Fatalf("commit %v: %v", id, err)
	}
	return id
}

// seedObject creates one committed object and returns its oid.
func seedObject(t *testing.T, m *Manager, data []byte) xid.OID {
	t.Helper()
	var oid xid.OID
	runTxn(t, m, func(tx *Tx) error {
		var err error
		oid, err = tx.Create(data)
		return err
	})
	return oid
}

func TestBasicLifecycle(t *testing.T) {
	m := newMem(t)
	var ran atomic.Bool
	id, err := m.Initiate(func(tx *Tx) error {
		ran.Store(true)
		return nil
	})
	if err != nil || id.IsNil() {
		t.Fatalf("Initiate = %v, %v", id, err)
	}
	if got := m.StatusOf(id); got != xid.StatusInitiated {
		t.Fatalf("status = %v, want initiated", got)
	}
	if ran.Load() {
		t.Fatal("function ran before Begin")
	}
	if err := m.Begin(id); err != nil {
		t.Fatal(err)
	}
	if err := m.Wait(id); err != nil {
		t.Fatal(err)
	}
	if !ran.Load() {
		t.Fatal("function did not run")
	}
	if got := m.StatusOf(id); got != xid.StatusCompleted {
		t.Fatalf("status after wait = %v, want completed (commit is explicit)", got)
	}
	if err := m.Commit(id); err != nil {
		t.Fatal(err)
	}
	if got := m.StatusOf(id); got != xid.StatusCommitted {
		t.Fatalf("status = %v, want committed", got)
	}
	// Commit of a committed transaction returns success (paper: returns 1).
	if err := m.Commit(id); err != nil {
		t.Fatal(err)
	}
	// Abort after commit fails (paper: returns 0).
	if err := m.Abort(id); !errors.Is(err, ErrAlreadyCommitted) {
		t.Fatalf("abort after commit = %v", err)
	}
}

func TestCommitBlocksUntilCompletion(t *testing.T) {
	m := newMem(t)
	release := make(chan struct{})
	id, _ := m.Initiate(func(tx *Tx) error {
		<-release
		return nil
	})
	m.Begin(id)
	done := make(chan error, 1)
	go func() { done <- m.Commit(id) }()
	select {
	case err := <-done:
		t.Fatalf("commit returned %v before completion", err)
	case <-time.After(30 * time.Millisecond):
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestCommitBeforeBegin(t *testing.T) {
	m := newMem(t)
	id, _ := m.Initiate(func(tx *Tx) error { return nil })
	if err := m.Commit(id); !errors.Is(err, ErrNotBegun) {
		t.Fatalf("err = %v, want ErrNotBegun", err)
	}
}

func TestDoubleBegin(t *testing.T) {
	m := newMem(t)
	id, _ := m.Initiate(func(tx *Tx) error { return nil })
	m.Begin(id)
	m.Wait(id)
	if err := m.Begin(id); !errors.Is(err, ErrAlreadyBegun) {
		t.Fatalf("err = %v, want ErrAlreadyBegun", err)
	}
}

func TestBeginMany(t *testing.T) {
	m := newMem(t)
	var n atomic.Int32
	var ids []xid.TID
	for i := 0; i < 5; i++ {
		id, _ := m.Initiate(func(tx *Tx) error { n.Add(1); return nil })
		ids = append(ids, id)
	}
	if err := m.Begin(ids...); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if err := m.Commit(id); err != nil {
			t.Fatal(err)
		}
	}
	if n.Load() != 5 {
		t.Fatalf("ran %d, want 5", n.Load())
	}
}

func TestFnErrorAborts(t *testing.T) {
	m := newMem(t)
	boom := fmt.Errorf("boom")
	id, _ := m.Initiate(func(tx *Tx) error { return boom })
	m.Begin(id)
	if err := m.Wait(id); !errors.Is(err, ErrAborted) {
		t.Fatalf("wait = %v, want ErrAborted", err)
	}
	if err := m.Commit(id); !errors.Is(err, ErrAborted) {
		t.Fatalf("commit = %v, want ErrAborted", err)
	}
	if got := m.StatusOf(id); got != xid.StatusAborted {
		t.Fatalf("status = %v", got)
	}
}

func TestPanicAborts(t *testing.T) {
	m := newMem(t)
	id, _ := m.Initiate(func(tx *Tx) error { panic("kaboom") })
	m.Begin(id)
	if err := m.Wait(id); !errors.Is(err, ErrAborted) {
		t.Fatalf("wait = %v, want ErrAborted", err)
	}
}

func TestAbortInitiated(t *testing.T) {
	m := newMem(t)
	id, _ := m.Initiate(func(tx *Tx) error { return nil })
	if err := m.Abort(id); err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(id); !errors.Is(err, ErrAborted) {
		t.Fatalf("begin after abort = %v", err)
	}
	// Abort of an aborted transaction succeeds (paper: returns 1).
	if err := m.Abort(id); err != nil {
		t.Fatal(err)
	}
}

func TestAbortRunning(t *testing.T) {
	m := newMem(t)
	started := make(chan struct{})
	blocked := make(chan struct{})
	id, _ := m.Initiate(func(tx *Tx) error {
		close(started)
		<-blocked
		// Post-abort operations fail.
		if _, err := tx.Create([]byte("x")); !errors.Is(err, ErrAborted) {
			t.Errorf("Create after abort = %v", err)
		}
		return nil
	})
	m.Begin(id)
	<-started
	if err := m.Abort(id); err != nil {
		t.Fatal(err)
	}
	close(blocked)
	if err := m.Wait(id); !errors.Is(err, ErrAborted) {
		t.Fatalf("wait = %v, want ErrAborted", err)
	}
}

func TestSelfAndParent(t *testing.T) {
	m := newMem(t)
	var parentID, childSelf, childParent xid.TID
	id, _ := m.Initiate(func(tx *Tx) error {
		parentID = tx.ID()
		if !tx.Parent().IsNil() {
			t.Errorf("top-level parent = %v, want nil", tx.Parent())
		}
		child, err := tx.Initiate(func(ctx *Tx) error {
			childSelf = ctx.ID()
			childParent = ctx.Parent()
			return nil
		})
		if err != nil {
			return err
		}
		if err := tx.Manager().Begin(child); err != nil {
			return err
		}
		if err := tx.Manager().Wait(child); err != nil {
			return err
		}
		return tx.Manager().Commit(child)
	})
	m.Begin(id)
	if err := m.Commit(id); err != nil {
		t.Fatal(err)
	}
	if childParent != parentID || childSelf == parentID {
		t.Fatalf("child self=%v parent=%v, outer=%v", childSelf, childParent, parentID)
	}
}

func TestMaxTransactions(t *testing.T) {
	m, err := Open(Config{MaxTransactions: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	a, _ := m.Initiate(func(tx *Tx) error { return nil })
	if _, err := m.Initiate(func(tx *Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Initiate(func(tx *Tx) error { return nil }); !errors.Is(err, ErrTooManyTxns) {
		t.Fatalf("err = %v, want ErrTooManyTxns", err)
	}
	// Terminating one frees a slot.
	m.Begin(a)
	m.Commit(a)
	if _, err := m.Initiate(func(tx *Tx) error { return nil }); err != nil {
		t.Fatalf("after commit: %v", err)
	}
}

func TestUnknownTxn(t *testing.T) {
	m := newMem(t)
	if err := m.Begin(999); !errors.Is(err, ErrUnknownTxn) {
		t.Fatalf("begin = %v", err)
	}
	if err := m.Commit(999); !errors.Is(err, ErrUnknownTxn) {
		t.Fatalf("commit = %v", err)
	}
	if err := m.Abort(999); !errors.Is(err, ErrUnknownTxn) {
		t.Fatalf("abort = %v", err)
	}
	if err := m.Wait(999); !errors.Is(err, ErrUnknownTxn) {
		t.Fatalf("wait = %v", err)
	}
}

func TestInitiateAfterClose(t *testing.T) {
	m, _ := Open(Config{})
	m.Close()
	if _, err := m.Initiate(func(tx *Tx) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestConcurrentIndependentTxns(t *testing.T) {
	m := newMem(t)
	const n = 32
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			id, err := m.Initiate(func(tx *Tx) error {
				_, err := tx.Create([]byte("v"))
				return err
			})
			if err != nil {
				errs <- err
				return
			}
			if err := m.Begin(id); err != nil {
				errs <- err
				return
			}
			errs <- m.Commit(id)
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if m.Cache().Len() != n {
		t.Fatalf("cache has %d objects, want %d", m.Cache().Len(), n)
	}
	if st := m.Stats(); st.Commits != n {
		t.Fatalf("commits = %d, want %d", st.Commits, n)
	}
}

func TestExplicitLockPrimitive(t *testing.T) {
	m := newMem(t)
	oid := seedObject(t, m, []byte("v"))
	locked := make(chan struct{})
	hold := make(chan struct{})
	a, _ := m.Initiate(func(tx *Tx) error {
		if err := tx.Lock(oid, xid.OpWrite); err != nil {
			return err
		}
		close(locked)
		<-hold
		return nil
	})
	m.Begin(a)
	<-locked
	// Another writer blocks on the explicit lock.
	bDone := make(chan error, 1)
	b, _ := m.Initiate(func(tx *Tx) error {
		err := tx.Write(oid, []byte("b"))
		bDone <- err
		return err
	})
	m.Begin(b)
	select {
	case err := <-bDone:
		t.Fatalf("writer proceeded (%v) against an explicit lock", err)
	case <-time.After(30 * time.Millisecond):
	}
	close(hold)
	if err := m.Commit(a); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(b); err != nil {
		t.Fatal(err)
	}
	if err := <-bDone; err != nil {
		t.Fatal(err)
	}
}

func TestLockTimeoutConfig(t *testing.T) {
	m, err := Open(Config{LockTimeout: 40 * time.Millisecond, DisableDeadlockDetection: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	oid := seedObject(t, m, []byte("v"))
	hold := make(chan struct{})
	holdStarted := make(chan struct{})
	a, _ := m.Initiate(func(tx *Tx) error {
		if err := tx.Lock(oid, xid.OpWrite); err != nil {
			return err
		}
		close(holdStarted)
		<-hold
		return nil
	})
	m.Begin(a)
	<-holdStarted
	b, _ := m.Initiate(func(tx *Tx) error { return tx.Write(oid, []byte("b")) })
	m.Begin(b)
	err = m.Wait(b)
	if !errors.Is(err, ErrAborted) || !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("wait = %v, want aborted-by-lock-timeout", err)
	}
	close(hold)
	if err := m.Commit(a); err != nil {
		t.Fatal(err)
	}
}

func TestTransactionsListing(t *testing.T) {
	m := newMem(t)
	hold := make(chan struct{})
	running, _ := m.Initiate(func(tx *Tx) error { <-hold; return nil })
	pending, _ := m.Initiate(noop)
	m.Begin(running)
	done := runTxn(t, m, noop)
	infos := m.Transactions()
	if len(infos) != 3 {
		t.Fatalf("listed %d transactions", len(infos))
	}
	byID := map[xid.TID]xid.Status{}
	for _, info := range infos {
		byID[info.ID] = info.Status
	}
	if byID[pending] != xid.StatusInitiated || byID[done] != xid.StatusCommitted {
		t.Fatalf("statuses = %v", byID)
	}
	active := m.Active()
	if len(active) != 1 || active[0] != running {
		t.Fatalf("active = %v", active)
	}
	close(hold)
	m.Commit(running)
}
