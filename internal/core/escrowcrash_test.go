package core

import (
	"errors"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/wal"
)

// The escrow crash-matrix workload: a bounded counter driven by logical
// delta records, with an aborted delta and a checkpoint wedged into the
// history, chosen so every recovered state identifies exactly one
// committed prefix:
//
//	T1: create 201 = counter(100), declare escrow [0, 10000]
//	T2: add(201, +5)                     -> 105
//	A:  add(201, +1000), then abort      -> unchanged (undo is the
//	    inverse delta, never a physical before-image)
//	    checkpoint
//	T3: add(201, -3), create 202 = "x"   -> 102 (mixes a logical delta
//	    and a physical create in one atomic transaction)
//
// The prefix values 100/105/102 are pairwise distinct, and 202's
// existence separates prefix 3, so a partial, doubled, or leaked delta
// (e.g. the aborted +1000) recovers to a value matching no prefix.
func escrowWorkload(acks *[3]bool) func(m *Manager) {
	run := func(m *Manager, fn TxnFunc) bool {
		id, err := m.Initiate(fn)
		if err != nil {
			return false
		}
		if err := m.Begin(id); err != nil {
			return false
		}
		m.Wait(id)
		return m.Commit(id) == nil
	}
	return func(m *Manager) {
		acks[0] = run(m, func(tx *Tx) error {
			if err := tx.CreateAt(201, wal.EncodeCounter(100)); err != nil {
				return err
			}
			return tx.DeclareEscrow(201, 0, 10000)
		})
		acks[1] = run(m, func(tx *Tx) error { return tx.Add(201, 5) })
		run(m, func(tx *Tx) error { // A: always aborts
			if err := tx.Add(201, 1000); err != nil {
				return err
			}
			return errors.New("deliberate abort after reserving +1000")
		})
		m.Checkpoint() // may fail after the crash point
		acks[2] = run(m, func(tx *Tx) error {
			if err := tx.Add(201, -3); err != nil {
				return err
			}
			return tx.CreateAt(202, []byte("x"))
		})
	}
}

// recoveredEscrowPrefix maps the recovered counter state back to the
// number of committed workload transactions it reflects, or -1 if it
// matches no prefix — a lost, partial, doubled, or leaked delta.
func recoveredEscrowPrefix(m *Manager) int {
	raw, ok := m.Cache().Read(201)
	_, ok202 := m.Cache().Read(202)
	if !ok {
		if ok202 {
			return -1
		}
		return 0
	}
	if len(raw) != 8 {
		return -1
	}
	switch v := wal.DecodeCounter(raw); {
	case v == 100 && !ok202:
		return 1
	case v == 105 && !ok202:
		return 2
	case v == 102 && ok202:
		return 3
	}
	return -1
}

func checkEscrowRecovered(t *testing.T, img *faultfs.MemFS, acks [3]bool, syncCommits bool, ctx string) {
	t.Helper()
	m, err := Open(Config{Dir: "/db", FS: img})
	if err != nil {
		t.Fatalf("%s: reopen after crash: %v", ctx, err)
	}
	defer m.Close()
	r := recoveredEscrowPrefix(m)
	if r < 0 {
		raw, ok := m.Cache().Read(201)
		_, ok202 := m.Cache().Read(202)
		var v uint64
		if len(raw) == 8 {
			v = wal.DecodeCounter(raw)
		}
		t.Fatalf("%s: recovered counter matches no committed prefix: 201=%d(%v raw %q) 202 present=%v",
			ctx, v, ok, raw, ok202)
	}
	if !syncCommits {
		return // buffered commits promise nothing until a checkpoint
	}
	for i, acked := range acks {
		if acked && i >= r {
			t.Fatalf("%s: commit T%d was acknowledged but recovery kept only %d transactions",
				ctx, i+1, r)
		}
	}
}

// TestEscrowCrashRecoveryMatrix sweeps a simulated crash across every
// durability-relevant filesystem operation of the escrow workload under
// the commit configurations the delta path must survive — including
// group commit over a segmented log rotating every 128 bytes, so crashes
// land inside segment rotation and checkpoint truncation as well as
// plain appends — with the crashing write either wholly lost or torn,
// recovering under both crash-image corners. The recovered counter must
// always equal the committed-prefix sum: never a partial transaction,
// never a doubled redo, never a leaked aborted delta.
func TestEscrowCrashRecoveryMatrix(t *testing.T) {
	configs := []struct {
		name          string
		sync, batched bool
		group         bool
		segBytes      int64
	}{
		{name: "buffered"},
		{name: "sync", sync: true},
		{name: "sync-batched", sync: true, batched: true},
		{name: "groupcommit", sync: true, group: true, segBytes: 128},
		{name: "groupcommit-buffered", group: true, segBytes: 128},
	}
	tears := []int{-1, 512}
	modes := []faultfs.CrashMode{faultfs.KeepAll, faultfs.DropUnsynced}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			var acks [3]bool
			sim := CrashSim{
				Cfg: Config{Dir: "/db", SyncCommits: tc.sync, BatchedCommits: tc.batched,
					GroupCommit: tc.group, WALSegmentBytes: tc.segBytes},
				Workload: escrowWorkload(&acks),
			}
			n := sim.CountOps()
			if n < 10 {
				t.Fatalf("workload issued only %d filesystem ops", n)
			}
			for at := 1; at <= n; at++ {
				for _, tear := range tears {
					acks = [3]bool{}
					mfs := sim.RunToCrash(at, tear)
					if !mfs.Crashed() {
						t.Fatalf("crash point %d/%d never fired", at, n)
					}
					for _, mode := range modes {
						ctx := testCtx(at, n, tear, mode)
						checkEscrowRecovered(t, mfs.CrashImage(mode), acks, tc.sync, ctx)
					}
				}
			}
		})
	}
}

// TestEscrowRandomFaultTorture drives the escrow workload under seeded
// random single-fault scripts — injected errors, short writes, torn
// writes, and crashes at arbitrary points — and asserts the same
// committed-prefix invariants over the recovered counter.
func TestEscrowRandomFaultTorture(t *testing.T) {
	var acks [3]bool
	sim := CrashSim{
		Cfg:      Config{Dir: "/db", SyncCommits: true},
		Workload: escrowWorkload(&acks),
	}
	n := sim.CountOps()
	for seed := int64(0); seed < 40; seed++ {
		acks = [3]bool{}
		mfs := sim.RunWithScript(faultfs.RandomScript(seed, n))
		if mfs.Crashed() {
			for _, mode := range []faultfs.CrashMode{faultfs.KeepAll, faultfs.DropUnsynced} {
				ctx := "seed " + itoa(int(seed)) + " (" + mode.String() + ")"
				checkEscrowRecovered(t, mfs.CrashImage(mode), acks, true, ctx)
			}
			continue
		}
		checkEscrowRecovered(t, mfs, acks, true, "seed "+itoa(int(seed))+" (no crash)")
	}
}
