package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/xid"
)

// TestBeginOnAbortGatesOnAbort: the BAD dependent may begin only once its
// supporter aborts (the ACTA compensation pattern).
func TestBeginOnAbortGatesOnAbort(t *testing.T) {
	m := newMem(t)
	oid := seedObject(t, m, []byte("v0"))
	component := initiated(t, m, func(tx *Tx) error { return tx.Write(oid, []byte("component")) })
	var compensationRan bool
	compensation := initiated(t, m, func(tx *Tx) error {
		compensationRan = true
		return tx.Write(oid, []byte("compensated"))
	})
	if err := m.FormDependency(xid.DepBAD, component, compensation); err != nil {
		t.Fatal(err)
	}
	m.Begin(component)
	m.Wait(component)

	began := make(chan error, 1)
	go func() { began <- m.Begin(compensation) }()
	select {
	case err := <-began:
		t.Fatalf("compensation began (%v) before component terminated", err)
	case <-time.After(30 * time.Millisecond):
	}
	// The component aborts: the compensation is now enabled.
	if err := m.Abort(component); err != nil {
		t.Fatal(err)
	}
	if err := <-began; err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(compensation); err != nil {
		t.Fatal(err)
	}
	if !compensationRan {
		t.Fatal("compensation did not run")
	}
	got, _ := m.Cache().Read(oid)
	if string(got) != "compensated" {
		t.Fatalf("object = %q", got)
	}
}

// TestBeginOnAbortAbortedByCommit: the supporter committing forecloses the
// BAD dependent.
func TestBeginOnAbortAbortedByCommit(t *testing.T) {
	m := newMem(t)
	component := initiated(t, m, noop)
	compensation := initiated(t, m, noop)
	m.FormDependency(xid.DepBAD, component, compensation)
	m.Begin(component)
	if err := m.Commit(component); err != nil {
		t.Fatal(err)
	}
	if got := m.StatusOf(compensation); got != xid.StatusAborted {
		t.Fatalf("compensation status = %v, want aborted", got)
	}
	// Begin of the foreclosed dependent fails.
	if err := m.Begin(compensation); !errors.Is(err, ErrAborted) {
		t.Fatalf("begin = %v", err)
	}
}

// TestBeginOnAbortWaiterAbortedByCommit: same foreclosure while the
// dependent is blocked inside Begin.
func TestBeginOnAbortWaiterAbortedByCommit(t *testing.T) {
	m := newMem(t)
	component := initiated(t, m, noop)
	compensation := initiated(t, m, noop)
	m.FormDependency(xid.DepBAD, component, compensation)
	m.Begin(component)
	m.Wait(component)
	began := make(chan error, 1)
	go func() { began <- m.Begin(compensation) }()
	time.Sleep(20 * time.Millisecond)
	if err := m.Commit(component); err != nil {
		t.Fatal(err)
	}
	if err := <-began; !errors.Is(err, ErrAborted) {
		t.Fatalf("begin = %v, want ErrAborted", err)
	}
}

// TestExclusionFirstCommitWins: with EXC, whichever transaction commits
// first aborts the other.
func TestExclusionFirstCommitWins(t *testing.T) {
	m := newMem(t)
	a := initiated(t, m, noop)
	b := initiated(t, m, noop)
	if err := m.FormDependency(xid.DepEXC, a, b); err != nil {
		t.Fatal(err)
	}
	m.Begin(a, b)
	m.Wait(a)
	m.Wait(b)
	if err := m.Commit(b); err != nil {
		t.Fatal(err)
	}
	if got := m.StatusOf(a); got != xid.StatusAborted {
		t.Fatalf("a status = %v, want aborted (excluded)", got)
	}
	if err := m.Commit(a); !errors.Is(err, ErrAborted) {
		t.Fatalf("excluded commit = %v", err)
	}
}

// TestExclusionAbortLeavesPartnerFree: aborting one EXC partner does not
// constrain the other.
func TestExclusionAbortLeavesPartnerFree(t *testing.T) {
	m := newMem(t)
	a := initiated(t, m, noop)
	b := initiated(t, m, noop)
	m.FormDependency(xid.DepEXC, a, b)
	m.Begin(a, b)
	m.Wait(a)
	m.Wait(b)
	m.Abort(a)
	if err := m.Commit(b); err != nil {
		t.Fatal(err)
	}
}

// TestExclusionOnCommittedPartner: forming EXC against an already
// committed transaction forecloses the dependent immediately.
func TestExclusionOnCommittedPartner(t *testing.T) {
	m := newMem(t)
	a := runTxn(t, m, noop)
	b := initiated(t, m, noop)
	if err := m.FormDependency(xid.DepEXC, a, b); err != nil {
		t.Fatal(err)
	}
	if got := m.StatusOf(b); got != xid.StatusAborted {
		t.Fatalf("b status = %v, want aborted", got)
	}
}

// TestContingentViaExclusionDeps: the §3.1.3 contingent model expressed
// declaratively — all alternatives run in parallel under pairwise EXC +
// begin order via BAD chains is overkill; here we just show EXC enforces
// "at most one commits" among racing alternatives.
func TestContingentViaExclusionDeps(t *testing.T) {
	m := newMem(t)
	oid := seedObject(t, m, []byte("-"))
	mk := func(val string) xid.TID {
		return initiated(t, m, func(tx *Tx) error { return tx.Write(oid, []byte(val)) })
	}
	// Alternatives write the same object, so they serialize on its lock;
	// EXC guarantees only one ever commits regardless of commit order.
	a, b := mk("plan-A"), mk("plan-B")
	if err := m.FormDependency(xid.DepEXC, a, b); err != nil {
		t.Fatal(err)
	}
	m.Begin(a)
	if err := m.Commit(a); err != nil {
		t.Fatal(err)
	}
	m.Begin(b) // b now blocks/fails: its partner committed
	err := m.Commit(b)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("second alternative commit = %v", err)
	}
	got, _ := m.Cache().Read(oid)
	if string(got) != "plan-A" {
		t.Fatalf("object = %q", got)
	}
	if m.StatusOf(a) != xid.StatusCommitted || m.StatusOf(b) != xid.StatusAborted {
		t.Fatal("exactly one alternative must commit")
	}
}

// TestCrossMechanismDeadlock: t1 commits while holding a lock, waiting (via
// CD) for t2 to terminate; t2 is blocked on the lock t1 holds. Neither the
// lock manager nor the dependency graph alone sees a cycle — the unified
// waits-for graph must.
func TestCrossMechanismDeadlock(t *testing.T) {
	m := newMem(t)
	oid := seedObject(t, m, []byte("x"))
	t2Started := make(chan struct{})

	// t1 writes the object and completes, holding the lock until commit.
	t1 := initiated(t, m, func(tx *Tx) error { return tx.Write(oid, []byte("t1")) })
	// t2 will try to write the same object.
	t2 := initiated(t, m, func(tx *Tx) error {
		close(t2Started)
		return tx.Write(oid, []byte("t2"))
	})
	// t1 cannot commit before t2 terminates.
	if err := m.FormDependency(xid.DepCD, t2, t1); err != nil {
		t.Fatal(err)
	}
	m.Begin(t1)
	m.Wait(t1)

	commitRes := make(chan error, 1)
	go func() { commitRes <- m.Commit(t1) }() // blocks on CD: t2 active
	time.Sleep(20 * time.Millisecond)
	m.Begin(t2) // t2 blocks on t1's lock -> cycle across mechanisms
	<-t2Started

	select {
	case err := <-commitRes:
		// Either t1 committed (t2 was chosen as victim and aborted,
		// resolving the CD) or t1 itself was the victim.
		if err != nil && !errors.Is(err, ErrAborted) {
			t.Fatalf("commit returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cross-mechanism deadlock not detected: commit hung")
	}
	if m.Stats().Deadlocks == 0 {
		t.Fatal("no deadlock victim recorded")
	}
	// Exactly one of t1/t2 terminates committed... t1 may commit after t2's
	// abort; t2 must be aborted (it was younger and blocked).
	if err := m.Wait(t2); !errors.Is(err, ErrAborted) {
		t.Fatalf("t2 = %v, want aborted victim", err)
	}
}

// TestCommitWaitDeadlockBetweenDependencies is prevented at formation (CD
// cycles are rejected), so the only commit-commit deadlocks possible are
// those crossing mechanisms; this test pins the invariant.
func TestCommitWaitDeadlockBetweenDependencies(t *testing.T) {
	m := newMem(t)
	a := initiated(t, m, noop)
	b := initiated(t, m, noop)
	c := initiated(t, m, noop)
	if err := m.FormDependency(xid.DepCD, a, b); err != nil {
		t.Fatal(err)
	}
	if err := m.FormDependency(xid.DepAD, b, c); err != nil {
		t.Fatal(err)
	}
	if err := m.FormDependency(xid.DepCD, c, a); !errors.Is(err, ErrDependencyCycle) {
		t.Fatalf("closing dependency cycle = %v", err)
	}
	m.Begin(a, b, c)
	// All three commit fine in supporter order.
	if err := m.Commit(a); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(b); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(c); err != nil {
		t.Fatal(err)
	}
}

func TestAbortReason(t *testing.T) {
	m := newMem(t)
	id := initiated(t, m, func(tx *Tx) error { return errors.New("business rule violated") })
	if m.AbortReason(id) != nil {
		t.Fatal("reason before abort")
	}
	m.Begin(id)
	m.Wait(id)
	reason := m.AbortReason(id)
	if reason == nil || !errors.Is(reason, ErrAborted) {
		t.Fatalf("reason = %v", reason)
	}
	if got := reason.Error(); !contains(got, "business rule violated") {
		t.Fatalf("reason lost the cause: %q", got)
	}
	// Committed transactions have no abort reason.
	ok := runTxn(t, m, noop)
	if m.AbortReason(ok) != nil {
		t.Fatal("committed transaction has an abort reason")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
