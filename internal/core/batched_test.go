package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/xid"
)

func newBatched(t *testing.T) *Manager {
	t.Helper()
	m, err := Open(Config{BatchedCommits: true, CommitWindow: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func TestBatchedCommitsCoalesceForces(t *testing.T) {
	m := newBatched(t)
	const txns = 24
	var wg sync.WaitGroup
	errs := make(chan error, txns)
	for i := 0; i < txns; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			id, err := m.Initiate(func(tx *Tx) error {
				_, err := tx.Create([]byte("batched"))
				return err
			})
			if err != nil {
				errs <- err
				return
			}
			m.Begin(id)
			errs <- m.Commit(id)
		}()
	}
	wg.Wait()
	for i := 0; i < txns; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if m.Cache().Len() != txns {
		t.Fatalf("cache len = %d, want %d", m.Cache().Len(), txns)
	}
	st := m.Stats()
	physical := m.PhysicalForces()
	if st.LogForces != txns {
		t.Fatalf("flush requests = %d, want %d", st.LogForces, txns)
	}
	if physical == 0 || physical >= txns {
		t.Fatalf("physical forces = %d for %d commits; batching ineffective", physical, txns)
	}
	t.Logf("%d commits -> %d physical forces", txns, physical)
}

func TestBatchedAbortDuringCommitWindowWaits(t *testing.T) {
	m := newBatched(t)
	id, _ := m.Initiate(func(tx *Tx) error {
		_, err := tx.Create([]byte("x"))
		return err
	})
	m.Begin(id)
	res := make(chan error, 1)
	go func() { res <- m.Commit(id) }()
	// Hammer Abort concurrently; it must never yank a half-committed
	// transaction — the outcome is exactly one of committed-with-
	// ErrAlreadyCommitted or aborted-before-committing.
	abortErr := m.Abort(id)
	commitErr := <-res
	switch {
	case abortErr == nil:
		// Abort won the race pre-commit: commit must report the abort.
		if !errors.Is(commitErr, ErrAborted) {
			t.Fatalf("abort won but commit = %v", commitErr)
		}
		if m.Cache().Len() != 0 {
			t.Fatal("aborted create visible")
		}
	case errors.Is(abortErr, ErrAlreadyCommitted):
		if commitErr != nil {
			t.Fatalf("commit = %v after winning race", commitErr)
		}
		if m.Cache().Len() != 1 {
			t.Fatal("committed create missing")
		}
	default:
		t.Fatalf("abort = %v", abortErr)
	}
}

func TestBatchedExclusionStillExclusive(t *testing.T) {
	// Race many EXC pairs through batched commits: exactly one of each
	// pair may commit.
	m := newBatched(t)
	for round := 0; round < 20; round++ {
		a := initiated(t, m, noop)
		b := initiated(t, m, noop)
		if err := m.FormDependency(xid.DepEXC, a, b); err != nil {
			t.Fatal(err)
		}
		m.Begin(a, b)
		m.Wait(a)
		m.Wait(b)
		res := make(chan error, 2)
		go func() { res <- m.Commit(a) }()
		go func() { res <- m.Commit(b) }()
		e1, e2 := <-res, <-res
		okCount := 0
		if e1 == nil {
			okCount++
		}
		if e2 == nil {
			okCount++
		}
		if okCount != 1 {
			t.Fatalf("round %d: %d of the EXC pair committed (e1=%v e2=%v)", round, okCount, e1, e2)
		}
		committed := 0
		for _, id := range []xid.TID{a, b} {
			if m.StatusOf(id) == xid.StatusCommitted {
				committed++
			}
		}
		if committed != 1 {
			t.Fatalf("round %d: %d committed statuses", round, committed)
		}
	}
}

func TestBatchedDurableCommits(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(Config{Dir: dir, SyncCommits: true, BatchedCommits: true})
	if err != nil {
		t.Fatal(err)
	}
	const txns = 8
	var wg sync.WaitGroup
	oids := make([]xid.OID, txns)
	for i := 0; i < txns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, _ := m.Initiate(func(tx *Tx) error {
				var err error
				oids[i], err = tx.Create([]byte{byte(i)})
				return err
			})
			m.Begin(id)
			if err := m.Commit(id); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	m.Close()
	m2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	for i, oid := range oids {
		got, ok := m2.Cache().Read(oid)
		if !ok || got[0] != byte(i) {
			t.Fatalf("object %d not durable after batched commit", i)
		}
	}
}

func TestBatchedGroupAndDependenciesStillWork(t *testing.T) {
	m := newBatched(t)
	// GC group under batched commits.
	a := initiated(t, m, noop)
	b := initiated(t, m, noop)
	m.FormDependency(xid.DepGC, a, b)
	m.Begin(a, b)
	if err := m.Commit(a); err != nil {
		t.Fatal(err)
	}
	if m.StatusOf(b) != xid.StatusCommitted {
		t.Fatal("GC partner not committed")
	}
	// CD ordering under batched commits.
	c := initiated(t, m, noop)
	d := initiated(t, m, noop)
	m.FormDependency(xid.DepCD, c, d)
	m.Begin(c, d)
	res := make(chan error, 1)
	go func() { res <- m.Commit(d) }()
	select {
	case err := <-res:
		t.Fatalf("dependent committed early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if err := m.Commit(c); err != nil {
		t.Fatal(err)
	}
	if err := <-res; err != nil {
		t.Fatal(err)
	}
}

func TestDelegateToCommittingRejected(t *testing.T) {
	m := newBatched(t)
	oid := seedObject(t, m, []byte("v"))
	worker := initiated(t, m, func(tx *Tx) error { return tx.Write(oid, []byte("w")) })
	slow := initiated(t, m, noop)
	m.Begin(worker, slow)
	m.Wait(worker)
	m.Wait(slow)
	// Start slow's commit and, during its window, try to delegate to it.
	done := make(chan error, 1)
	go func() { done <- m.Commit(slow) }()
	// Delegation races the commit: whichever side wins, the result must be
	// consistent — either the delegate landed before commit (and commits
	// with slow) or it was rejected.
	err := m.Delegate(worker, slow)
	if cerr := <-done; cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		if !errors.Is(err, ErrTerminated) {
			t.Fatalf("delegate = %v", err)
		}
		// Rejected: worker still owns its write; abort undoes it.
		m.Abort(worker)
		got, _ := m.Cache().Read(oid)
		if string(got) != "v" {
			t.Fatalf("object = %q", got)
		}
		return
	}
	// Accepted: the write committed with slow and survives worker's abort.
	m.Abort(worker)
	got, _ := m.Cache().Read(oid)
	if string(got) != "w" {
		t.Fatalf("object = %q, want delegated write committed", got)
	}
}
