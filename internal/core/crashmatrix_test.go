package core

import (
	"testing"

	"repro/internal/faultfs"
)

// The crash-matrix workload: three sequential transactions with a
// checkpoint wedged between T2 and T3, chosen so every recovered state
// identifies exactly one committed prefix:
//
//	T1: create 101 = "v1"
//	T2: 101 = "v2", create 102 = "w1"
//	    checkpoint
//	T3: 102 = "w2", delete 101
//
// acks records which commits were acknowledged (returned nil) before
// the crash.
func matrixWorkload(acks *[3]bool) func(m *Manager) {
	bodies := []TxnFunc{
		func(tx *Tx) error { return tx.CreateAt(101, []byte("v1")) },
		func(tx *Tx) error {
			if err := tx.Write(101, []byte("v2")); err != nil {
				return err
			}
			return tx.CreateAt(102, []byte("w1"))
		},
		func(tx *Tx) error {
			if err := tx.Write(102, []byte("w2")); err != nil {
				return err
			}
			return tx.Delete(101)
		},
	}
	return func(m *Manager) {
		for i, fn := range bodies {
			if i == 2 {
				m.Checkpoint() // may fail after the crash point
			}
			id, err := m.Initiate(fn)
			if err != nil {
				continue
			}
			if err := m.Begin(id); err != nil {
				continue
			}
			m.Wait(id)
			if m.Commit(id) == nil {
				acks[i] = true
			}
		}
	}
}

// recoveredPrefix maps the recovered object state back to the number of
// workload transactions it reflects, or -1 if it matches no prefix —
// i.e. recovery produced a state no crash-consistent execution could
// (lost committed effects, leaked uncommitted ones, or a torn
// non-atomic transaction).
func recoveredPrefix(m *Manager) int {
	v101, ok101 := m.Cache().Read(101)
	v102, ok102 := m.Cache().Read(102)
	switch {
	case !ok101 && !ok102:
		return 0
	case ok101 && string(v101) == "v1" && !ok102:
		return 1
	case ok101 && string(v101) == "v2" && ok102 && string(v102) == "w1":
		return 2
	case !ok101 && ok102 && string(v102) == "w2":
		return 3
	}
	return -1
}

// checkRecovered reopens the database over img and asserts the two
// recovery invariants: the state is some committed prefix of the
// workload, and (when commits are synchronous) every acknowledged
// commit survived.
func checkRecovered(t *testing.T, img *faultfs.MemFS, acks [3]bool, syncCommits bool, ctx string) {
	t.Helper()
	m, err := Open(Config{Dir: "/db", FS: img})
	if err != nil {
		t.Fatalf("%s: reopen after crash: %v", ctx, err)
	}
	defer m.Close()
	r := recoveredPrefix(m)
	if r < 0 {
		v101, ok101 := m.Cache().Read(101)
		v102, ok102 := m.Cache().Read(102)
		t.Fatalf("%s: recovered state matches no committed prefix: 101=%q(%v) 102=%q(%v)",
			ctx, v101, ok101, v102, ok102)
	}
	if !syncCommits {
		return // buffered commits promise nothing until a checkpoint
	}
	for i, acked := range acks {
		if acked && i >= r {
			t.Fatalf("%s: commit T%d was acknowledged but recovery kept only %d transactions",
				ctx, i+1, r)
		}
	}
}

// TestCrashRecoveryMatrix sweeps a simulated crash across every
// durability-relevant filesystem operation of the workload — every WAL
// and page write, truncate, and fsync, including those inside Open,
// Checkpoint, and Close — under all four commit configurations, with
// the crashing write either wholly lost or torn at 512 bytes, and
// recovers under both crash-image corners.
func TestCrashRecoveryMatrix(t *testing.T) {
	configs := []struct {
		name          string
		sync, batched bool
		group         bool
		segBytes      int64
	}{
		{name: "buffered"},
		{name: "sync", sync: true},
		{name: "batched", batched: true},
		{name: "sync-batched", sync: true, batched: true},
		// Group-commit over the segmented log, with a rotation threshold
		// tiny enough that the workload crosses several segment
		// boundaries: the op sweep then lands crashes inside rotation
		// (seal fsync, header write/fsync, manifest tmp write/fsync,
		// manifest rename) and inside checkpoint truncation (cutover
		// rename, old-chain removes) as well as inside plain appends.
		{name: "groupcommit", sync: true, group: true, segBytes: 128},
		{name: "groupcommit-buffered", group: true, segBytes: 128},
		{name: "sync-tiny-seg", sync: true, segBytes: 128},
	}
	tears := []int{-1, 512}
	modes := []faultfs.CrashMode{faultfs.KeepAll, faultfs.DropUnsynced}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			var acks [3]bool
			sim := CrashSim{
				Cfg: Config{Dir: "/db", SyncCommits: tc.sync, BatchedCommits: tc.batched,
					GroupCommit: tc.group, WALSegmentBytes: tc.segBytes},
				Workload: matrixWorkload(&acks),
			}
			n := sim.CountOps()
			if n < 10 {
				t.Fatalf("workload issued only %d filesystem ops", n)
			}
			for at := 1; at <= n; at++ {
				for _, tear := range tears {
					acks = [3]bool{}
					mfs := sim.RunToCrash(at, tear)
					if !mfs.Crashed() {
						t.Fatalf("crash point %d/%d never fired", at, n)
					}
					for _, mode := range modes {
						ctx := testCtx(at, n, tear, mode)
						checkRecovered(t, mfs.CrashImage(mode), acks, tc.sync, ctx)
					}
				}
			}
		})
	}
}

func testCtx(at, n, tear int, mode faultfs.CrashMode) string {
	torn := "lost"
	if tear >= 0 {
		torn = "torn"
	}
	return "crash at op " + itoa(at) + "/" + itoa(n) + " (" + torn + " write, " + mode.String() + ")"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestRandomFaultTorture drives the workload under seeded random
// single-fault scripts — injected errors, short writes, torn writes,
// and crashes at arbitrary points — and asserts the same invariants.
// Non-crash faults leave a live filesystem that is reopened in place
// (the fault a deployed system would ride through); crashes go through
// both crash-image corners.
func TestRandomFaultTorture(t *testing.T) {
	var acks [3]bool
	sim := CrashSim{
		Cfg:      Config{Dir: "/db", SyncCommits: true},
		Workload: matrixWorkload(&acks),
	}
	n := sim.CountOps()
	for seed := int64(0); seed < 40; seed++ {
		acks = [3]bool{}
		mfs := sim.RunWithScript(faultfs.RandomScript(seed, n))
		if mfs.Crashed() {
			for _, mode := range []faultfs.CrashMode{faultfs.KeepAll, faultfs.DropUnsynced} {
				ctx := "seed " + itoa(int(seed)) + " (" + mode.String() + ")"
				checkRecovered(t, mfs.CrashImage(mode), acks, true, ctx)
			}
			continue
		}
		checkRecovered(t, mfs, acks, true, "seed "+itoa(int(seed))+" (no crash)")
	}
}
