package core

import (
	"errors"

	"repro/internal/dep"
	"repro/internal/lock"
)

// Sentinel errors. The paper's primitives return 0/1; this implementation
// returns nil for 1 and one of these for 0, so callers can distinguish the
// reasons.
var (
	// ErrAborted is returned by commit/wait (and by data operations) when
	// the transaction is aborted.
	ErrAborted = errors.New("core: transaction aborted")
	// ErrAlreadyCommitted is returned by abort when the transaction has
	// already committed (abort returns 0 in the paper).
	ErrAlreadyCommitted = errors.New("core: transaction already committed")
	// ErrNotBegun is returned by commit on an initiated transaction that
	// was never begun.
	ErrNotBegun = errors.New("core: transaction initiated but never begun")
	// ErrAlreadyBegun is returned by begin on a transaction that is not in
	// the initiated state.
	ErrAlreadyBegun = errors.New("core: transaction already begun")
	// ErrUnknownTxn is returned when a tid does not name a live
	// transaction.
	ErrUnknownTxn = errors.New("core: unknown transaction")
	// ErrTooManyTxns is returned by initiate when the configured
	// transaction limit is reached ("if no resources are available").
	ErrTooManyTxns = errors.New("core: too many concurrent transactions")
	// ErrTerminated is returned when a primitive requires a live
	// transaction but the target has terminated.
	ErrTerminated = errors.New("core: transaction already terminated")
	// ErrNoObject is returned by data operations on a missing object.
	ErrNoObject = errors.New("core: no such object")
	// ErrObjectExists is returned by CreateAt on an existing oid.
	ErrObjectExists = errors.New("core: object already exists")
	// ErrClosed is returned after the manager is closed.
	ErrClosed = errors.New("core: manager closed")
	// ErrNotQuiescent is returned by Checkpoint while transactions are
	// active.
	ErrNotQuiescent = errors.New("core: checkpoint requires a quiescent manager")
	// ErrOverload is returned by begin when admission control
	// (Config.MaxLive) sheds the transaction: the gate was full and the
	// request could not be queued within its deadline. The transaction is
	// aborted; re-initiate to retry (Run does this automatically).
	ErrOverload = errors.New("core: overloaded, transaction shed by admission control")
	// ErrTxnDeadline is the abort reason used by the watchdog reaper when a
	// transaction exceeds its deadline (Config.TxnDeadline or the per-txn
	// override in TxnOptions).
	ErrTxnDeadline = errors.New("core: transaction deadline exceeded")
	// ErrRetryable classifies failures that a fresh attempt may not hit
	// again (deadlock victims, lock timeouts, overload sheds, reaped
	// deadlines). Run retries errors matching errors.Is(err, ErrRetryable)
	// — see Retryable — and wraps its own give-up error with it so callers
	// can distinguish "lost every race" from terminal failures.
	ErrRetryable = errors.New("core: retryable transaction failure")
	// ErrLeaseExpired is returned by the networked tier when a session's
	// lease lapsed (heartbeats stopped reaching the server) and its live
	// transactions were handed to the watchdog for abort. Retryable: a
	// fresh session can re-run the transaction body.
	ErrLeaseExpired = errors.New("core: session lease expired")
	// ErrConnLost classifies transport failures (dial refused, connection
	// reset, read/write on a dead conn) in the networked tier. Retryable:
	// the client reconnects and either resumes or re-attempts.
	ErrConnLost = errors.New("core: connection lost")
	// ErrUnknownOutcome is returned when a commit was sent but its verdict
	// can no longer be learned — the server restarted (epoch changed)
	// before the client heard the decision, so the transaction may have
	// durably committed or aborted. Terminal, NOT retryable: blindly
	// re-running could double-apply; the caller must reconcile from
	// durable state.
	ErrUnknownOutcome = errors.New("core: transaction outcome unknown")
	// ErrPrepared is returned when an operation would unilaterally decide
	// the fate of a transaction that has voted in a distributed commit:
	// once prepared, only the coordinator's verdict (Decide) may terminate
	// it — explicit aborts, lease expiry, and the watchdog all bounce.
	ErrPrepared = errors.New("core: transaction prepared, awaiting coordinator verdict")
	// ErrUnknownGroup is returned by Decide when the group id names no
	// prepared transactions and no recorded verdict on this manager.
	ErrUnknownGroup = errors.New("core: unknown distributed commit group")

	// ErrDeadlock is returned to deadlock victims (re-exported from the
	// lock manager so callers need only this package).
	ErrDeadlock = lock.ErrDeadlock
	// ErrLockTimeout is returned when a lock request exceeded
	// Config.LockTimeout.
	ErrLockTimeout = lock.ErrTimeout
	// ErrEscrow is returned by Add on a bounds-declared counter when the
	// delta can never be admitted within the declared escrow bounds
	// (re-exported from the lock manager).
	ErrEscrow = lock.ErrEscrow
	// ErrDependencyCycle is returned by FormDependency when the dependency
	// would deadlock the commit protocol.
	ErrDependencyCycle = dep.ErrCycle
)
